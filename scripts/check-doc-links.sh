#!/bin/sh
# check-doc-links.sh — verify that every relative markdown link in the
# documentation set points at a file (or file#anchor) that exists.
#
# Scope: README.md and docs/*.md. External links (http/https/mailto)
# are ignored; in-page anchors (#...) are ignored (they cannot dangle
# across files, which is the failure mode this guards against —
# renaming or moving a doc and leaving stale links behind).
#
# Usage: scripts/check-doc-links.sh   (from the repo root; CI runs it)
# Exit: 0 when every link resolves, 1 otherwise (each failure listed).

set -eu

fail=0
for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Pull out every inline markdown link target: [text](target).
    # One target per line; titles ("...") are not used in this repo.
    grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' |
    while IFS= read -r target; do
        case "$target" in
        http://*|https://*|mailto:*) continue ;;  # external
        '#'*) continue ;;                         # in-page anchor
        esac
        path=${target%%#*}                        # strip cross-file anchor
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $doc -> $target ($dir/$path does not exist)" >&2
            # The while runs in a pipeline subshell; signal via a file.
            touch /tmp/doc-links-failed.$$
        fi
    done
done

if [ -e "/tmp/doc-links-failed.$$" ]; then
    rm -f "/tmp/doc-links-failed.$$"
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "doc links: OK (README.md docs/*.md)"
fi
exit "$fail"
