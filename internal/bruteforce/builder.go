package bruteforce

import (
	"time"

	"kiff/internal/engine"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
)

// Name is the engine registry key of the brute-force builder.
const Name = "brute-force"

func init() { engine.Register(builder{}) }

// builder plugs the exhaustive O(|U|²) sweep into the engine, so brute
// force is dispatchable and instrumented like every other algorithm
// (wall time, similarity-evaluation count, phase breakdown).
type builder struct{}

// Name implements engine.Builder.
func (builder) Name() string { return Name }

// Normalize implements engine.Builder; brute force has no parameters
// beyond the shared ones.
func (builder) Normalize(*engine.Options) error { return nil }

// Refine implements engine.Builder: evaluate every unordered pair once
// and offer it to both endpoints' heaps, like the pivot strategy of the
// real algorithms. There are no iterations to trace.
func (builder) Refine(s *engine.Session) error {
	n := s.Dataset.NumUsers()
	simStart := time.Now()
	parallel.Blocks(n, s.Opts.Workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < n; v++ {
				sim := s.Sim(uint32(u), uint32(v))
				s.Heaps.Update(uint32(u), uint32(v), sim)
				s.Heaps.Update(uint32(v), uint32(u), sim)
			}
		}
	})
	s.Wall.Add(runstats.PhaseSimilarity, time.Since(simStart))
	return nil
}
