package bruteforce

import (
	"time"

	"kiff/internal/engine"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
)

// Name is the engine registry key of the brute-force builder.
const Name = "brute-force"

func init() { engine.Register(builder{}) }

// bruteChunk bounds the one-vs-many scoring chunks: large enough to
// amortize the pivot scatter over many gathers, small enough that the
// candidate-ID and score buffers stay cache-resident.
const bruteChunk = 1024

// builder plugs the exhaustive O(|U|²) sweep into the engine, so brute
// force is dispatchable and instrumented like every other algorithm
// (wall time, similarity-evaluation count, phase breakdown).
type builder struct{}

// Name implements engine.Builder.
func (builder) Name() string { return Name }

// Normalize implements engine.Builder; brute force has no parameters
// beyond the shared ones.
func (builder) Normalize(*engine.Options) error { return nil }

// Refine implements engine.Builder: evaluate every unordered pair once
// and offer it to both endpoints' heaps, like the pivot strategy of the
// real algorithms. Each pivot u is scored against v ∈ (u, n) in batched
// chunks — the pivot's profile is scattered once per chunk instead of
// merged once per pair. There are no iterations to trace.
func (builder) Refine(s *engine.Session) error {
	n := s.Dataset.NumUsers()
	simStart := time.Now()
	parallel.Blocks(n, s.Opts.Workers, func(_, lo, hi int) {
		kernel := s.Batcher()
		cands := make([]uint32, bruteChunk)
		scores := make([]float64, bruteChunk)
		for u := lo; u < hi; u++ {
			for v := u + 1; v < n; v += bruteChunk {
				m := n - v
				if m > bruteChunk {
					m = bruteChunk
				}
				for i := 0; i < m; i++ {
					cands[i] = uint32(v + i)
				}
				kernel.ScoreInto(scores[:m], uint32(u), cands[:m])
				for i := 0; i < m; i++ {
					s.Heaps.Update(uint32(u), cands[i], scores[i])
					s.Heaps.Update(cands[i], uint32(u), scores[i])
				}
			}
		}
	})
	s.Wall.Add(runstats.PhaseSimilarity, time.Since(simStart))
	return nil
}
