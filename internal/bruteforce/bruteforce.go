// Package bruteforce computes exact KNN graphs by exhaustive pairwise
// comparison. The paper uses exactly this as ground truth: "for each
// dataset, an ideal KNN is constructed using a brute force approach"
// (§IV-C). It also provides a sampled variant for datasets where the full
// O(|U|²) sweep is too expensive; per-user recall averaged over a uniform
// sample is an unbiased estimate of Eq. (4).
package bruteforce

import (
	"math/rand"
	"sort"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/knnheap"
	"kiff/internal/parallel"
	"kiff/internal/similarity"
)

// Exact computes ground truth for every user: the exact top-k lists plus
// tie thresholds. workers < 1 uses all CPUs.
func Exact(d *dataset.Dataset, metric similarity.Metric, k, workers int) *knngraph.Exact {
	n := d.NumUsers()
	sim := metric.Prepare(d)
	heaps := knnheap.NewSet(n, k)
	// Shard the outer user; each pair (u,v) with u<v is evaluated once and
	// offered to both heaps, like the pivot strategy of the real algorithms.
	parallel.Blocks(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < n; v++ {
				s := sim(uint32(u), uint32(v))
				heaps.Update(uint32(u), uint32(v), s)
				heaps.Update(uint32(v), uint32(u), s)
			}
		}
	})
	g := knngraph.FromSet(heaps)
	return knngraph.BuildExact(k, nil, g.Views())
}

// Sampled computes ground truth for sampleSize users drawn uniformly
// without replacement (deterministically from seed). Each sampled user is
// compared against the full population, so its top-k list is exact.
func Sampled(d *dataset.Dataset, metric similarity.Metric, k, sampleSize int, seed int64, workers int) *knngraph.Exact {
	n := d.NumUsers()
	if sampleSize >= n {
		return Exact(d, metric, k, workers)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:sampleSize]
	users := make([]uint32, sampleSize)
	for i, u := range perm {
		users[i] = uint32(u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })

	sim := metric.Prepare(d)
	lists := make([][]knngraph.Neighbor, sampleSize)
	parallel.For(sampleSize, workers, func(_, i int) {
		u := users[i]
		heap := knnheap.NewSet(1, k)
		for v := 0; v < n; v++ {
			if uint32(v) == u {
				continue
			}
			heap.Update(0, uint32(v), sim(u, uint32(v)))
		}
		g := knngraph.FromSet(heap)
		lists[i] = g.Neighbors(0)
	})
	return knngraph.BuildExact(k, users, lists)
}

// Graph computes the exact KNN graph itself (rather than the recall
// ground-truth wrapper); used by the γ=∞ optimality tests and by
// downstream users who want the true graph at small scale.
func Graph(d *dataset.Dataset, metric similarity.Metric, k, workers int) *knngraph.Graph {
	n := d.NumUsers()
	sim := metric.Prepare(d)
	heaps := knnheap.NewSet(n, k)
	parallel.Blocks(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < n; v++ {
				s := sim(uint32(u), uint32(v))
				heaps.Update(uint32(u), uint32(v), s)
				heaps.Update(uint32(v), uint32(u), s)
			}
		}
	})
	return knngraph.FromSet(heaps)
}
