package bruteforce

import (
	"math"
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/similarity"
)

func TestExactSelfConsistent(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	e := Exact(d, similarity.Cosine{}, k, 4)
	if e.NumEvaluated() != d.NumUsers() {
		t.Fatalf("evaluated %d users, want %d", e.NumEvaluated(), d.NumUsers())
	}
	g := Graph(d, similarity.Cosine{}, k, 4)
	if err := g.Validate(); err != nil {
		t.Fatalf("exact graph invalid: %v", err)
	}
	// The exact graph must score a perfect recall against itself.
	if got := e.Recall(g); math.Abs(got-1) > 1e-12 {
		t.Errorf("self recall = %v, want 1", got)
	}
}

func TestExactMatchesNaive(t *testing.T) {
	// Tiny dataset: verify against a hand-rolled O(n²) top-k selection.
	d := dataset.FromProfiles("naive", []map[uint32]float64{
		{0: 1, 1: 1},
		{0: 1, 1: 1},
		{1: 1, 2: 1},
		{3: 1},
		{0: 1, 2: 1},
	}, true)
	k := 2
	sim := similarity.Cosine{}.Prepare(d)
	e := Exact(d, similarity.Cosine{}, k, 1)
	n := d.NumUsers()
	for u := 0; u < n; u++ {
		list := e.Lists[u]
		// Check the list is the true top-k under (sim desc, id asc).
		for _, nb := range list {
			if int(nb.ID) == u {
				t.Fatalf("user %d: self in exact list", u)
			}
			if got := sim(uint32(u), nb.ID); math.Abs(got-nb.Sim) > 1e-12 {
				t.Fatalf("user %d: stored sim %v != %v", u, nb.Sim, got)
			}
		}
		// No non-member may beat a member under the total order.
		if len(list) > 0 {
			worst := list[len(list)-1]
			inList := map[uint32]bool{}
			for _, nb := range list {
				inList[nb.ID] = true
			}
			for v := 0; v < n; v++ {
				if v == u || inList[uint32(v)] {
					continue
				}
				s := sim(uint32(u), uint32(v))
				if s > worst.Sim || (s == worst.Sim && uint32(v) < worst.ID) {
					t.Fatalf("user %d: %d (sim %v) beats worst member %d (sim %v)",
						u, v, s, worst.ID, worst.Sim)
				}
			}
		}
	}
}

func TestExactParallelEqualsSerial(t *testing.T) {
	d, err := dataset.Arxiv.Generate(0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	a := Exact(d, similarity.Cosine{}, k, 1)
	b := Exact(d, similarity.Cosine{}, k, 8)
	for u := range a.Lists {
		if len(a.Lists[u]) != len(b.Lists[u]) {
			t.Fatalf("user %d: list size differs serial vs parallel", u)
		}
		for i := range a.Lists[u] {
			if a.Lists[u][i] != b.Lists[u][i] {
				t.Fatalf("user %d: exact list differs serial vs parallel", u)
			}
		}
		if a.Thresholds[u] != b.Thresholds[u] {
			t.Fatalf("user %d: threshold differs serial vs parallel", u)
		}
	}
}

func TestSampledSubsetOfExact(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	full := Exact(d, similarity.Cosine{}, k, 4)
	sampled := Sampled(d, similarity.Cosine{}, k, 30, 99, 4)
	if sampled.NumEvaluated() != 30 {
		t.Fatalf("sampled %d users, want 30", sampled.NumEvaluated())
	}
	for i := 0; i < sampled.NumEvaluated(); i++ {
		u := sampled.UserAt(i)
		fl, sl := full.Lists[u], sampled.Lists[i]
		if len(fl) != len(sl) {
			t.Fatalf("user %d: sampled list size %d != full %d", u, len(sl), len(fl))
		}
		for j := range fl {
			if fl[j] != sl[j] {
				t.Fatalf("user %d: sampled ground truth differs from full", u)
			}
		}
	}
}

func TestSampledFallsBackToExact(t *testing.T) {
	d := dataset.FromProfiles("tiny", []map[uint32]float64{
		{0: 1}, {0: 1}, {1: 1},
	}, true)
	e := Sampled(d, similarity.Cosine{}, 1, 10, 1, 1)
	if e.NumEvaluated() != 3 {
		t.Errorf("oversized sample must fall back to full exact, got %d", e.NumEvaluated())
	}
	if e.Users != nil {
		t.Error("full exact must have nil Users")
	}
}

func TestSampledDeterministic(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := Sampled(d, similarity.Cosine{}, 3, 20, 7, 2)
	b := Sampled(d, similarity.Cosine{}, 3, 20, 7, 8)
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatal("sample selection must be seed-deterministic")
		}
	}
}
