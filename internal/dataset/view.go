package dataset

// Copy-on-write view publication. A View is the frozen dataset half of a
// kiff.Snapshot: the writer keeps mutating the live Dataset while any
// number of readers serve from Views published earlier. Row storage was
// always safe to share (mutations replace whole rows or append past
// published lengths — see the Dataset doc); what used to cost O(|U|+|I|)
// per publication was copying the header arrays. Views therefore chunk
// the headers into fixed-size pages, and the Dataset remembers the last
// View it produced plus the rows dirtied since: the next View() copies
// only the pages containing dirty rows and shares every other page with
// its predecessor, making dataset publication O(dirty pages).

import (
	"errors"
	"fmt"

	"kiff/internal/sparse"
)

const (
	// viewPageShift sets the header page granularity (users or items per
	// page), matching knngraph's page size so the publication stats count
	// in one unit.
	viewPageShift = 6
	// ViewPageRows is the number of row headers per view page.
	ViewPageRows = 1 << viewPageShift
)

// View is an immutable, page-shared snapshot of a Dataset: the user and
// item row headers frozen at one publication point, with row storage
// shared with the live dataset (safe under its copy-on-write mutation
// discipline). Obtain one from Dataset.View; treat it as strictly
// read-only. All methods are safe for any number of concurrent readers.
type View struct {
	name     string
	numUsers int
	numItems int
	users    [][]sparse.Vector
	items    [][][]uint32
}

// Name returns the dataset name the view was published from.
func (v *View) Name() string { return v.name }

// NumUsers returns |U| at the publication point.
func (v *View) NumUsers() int { return v.numUsers }

// NumItems returns |I| at the publication point.
func (v *View) NumItems() int { return v.numItems }

// User returns user u's frozen profile (do not mutate).
func (v *View) User(u uint32) sparse.Vector {
	return v.users[u>>viewPageShift][u&(ViewPageRows-1)]
}

// Item returns item i's frozen inverted-index row, the users that rated
// i in ascending order (do not mutate).
func (v *View) Item(i uint32) []uint32 {
	return v.items[i>>viewPageShift][i&(ViewPageRows-1)]
}

// NumRatings returns |E| at the publication point.
func (v *View) NumRatings() int {
	n := 0
	for _, pg := range v.users {
		for _, u := range pg {
			n += u.Len()
		}
	}
	return n
}

// Validate checks the frozen structural invariants — the same checks
// Dataset.Validate runs, over the paged headers.
func (v *View) Validate() error {
	if v.numItems < 0 {
		return errors.New("dataset: negative item count")
	}
	for uid := 0; uid < v.numUsers; uid++ {
		u := v.User(uint32(uid))
		if err := u.Validate(); err != nil {
			return fmt.Errorf("dataset: user %d: %w", uid, err)
		}
		if u.Len() > 0 && int(u.IDs[u.Len()-1]) >= v.numItems {
			return fmt.Errorf("dataset: user %d references item %d ≥ numItems %d",
				uid, u.IDs[u.Len()-1], v.numItems)
		}
	}
	n := 0
	for i := 0; i < v.numItems; i++ {
		ip := v.Item(uint32(i))
		for j, uid := range ip {
			if int(uid) >= v.numUsers {
				return fmt.Errorf("dataset: item %d references user %d out of range", i, uid)
			}
			if j > 0 && ip[j-1] >= uid {
				return fmt.Errorf("dataset: item %d profile not strictly ascending", i)
			}
		}
		n += len(ip)
	}
	if n != v.NumRatings() {
		return fmt.Errorf("dataset: inverted index has %d edges, profiles have %d", n, v.NumRatings())
	}
	return nil
}

// viewCache is the Dataset's publication memory: the last View handed
// out, the rows dirtied since, and the page accounting of the most
// recent View() call.
type viewCache struct {
	last       *View
	dirtyUsers map[uint32]struct{}
	dirtyItems map[uint32]struct{}
	copied     int
	shared     int
}

// markUser records that user u's row header changed (row replaced or
// appended) since the last published view.
func (d *Dataset) markUser(u uint32) {
	if d.vc.last == nil {
		return // nothing to patch against; the next view is a full build
	}
	if d.vc.dirtyUsers == nil {
		d.vc.dirtyUsers = make(map[uint32]struct{})
	}
	d.vc.dirtyUsers[u] = struct{}{}
}

// markItem records that item i's inverted-index row header changed.
func (d *Dataset) markItem(i uint32) {
	if d.vc.last == nil {
		return
	}
	if d.vc.dirtyItems == nil {
		d.vc.dirtyItems = make(map[uint32]struct{})
	}
	d.vc.dirtyItems[i] = struct{}{}
}

// invalidateView drops the publication memory: the next View() is a full
// header copy. Called by whole-dataset rewrites (Compact, building the
// item index).
func (d *Dataset) invalidateView() {
	d.vc = viewCache{}
}

// LastViewStats reports the page accounting of the most recent View()
// call: how many header pages it copied versus shared with its
// predecessor. Writer-side observability (read it right after View).
func (d *Dataset) LastViewStats() (copied, shared int) {
	return d.vc.copied, d.vc.shared
}

// viewPages returns the page count covering n rows.
func viewPages(n int) int { return (n + ViewPageRows - 1) >> viewPageShift }

// dirtyPageSet folds a dirty-row set into its covering page set.
func dirtyPageSet(rows map[uint32]struct{}) map[int]struct{} {
	if len(rows) == 0 {
		return nil
	}
	pages := make(map[int]struct{}, len(rows))
	for r := range rows {
		pages[int(r)>>viewPageShift] = struct{}{}
	}
	return pages
}

// View returns a frozen snapshot of the dataset (see View's doc). The
// item-profile index is built first if missing, so views are always
// query-ready. Publication is copy-on-write at page granularity: pages
// without a dirty row are shared with the previously returned View, so
// after the first call the cost is O(dirty pages), not O(|U| + |I|).
// View is writer-side (it must not race mutations), like every mutator.
func (d *Dataset) View() *View {
	d.EnsureItemProfiles()
	nU, nI := len(d.Users), len(d.Items)
	v := &View{
		name:     d.Name,
		numUsers: nU,
		numItems: d.numItems,
		users:    make([][]sparse.Vector, viewPages(nU)),
		items:    make([][][]uint32, viewPages(nI)),
	}
	last := d.vc.last
	copied, shared := 0, 0
	dirtyU := dirtyPageSet(d.vc.dirtyUsers)
	for p := range v.users {
		lo, hi := p<<viewPageShift, min((p+1)<<viewPageShift, nU)
		_, dirty := dirtyU[p]
		if !dirty && last != nil && p < len(last.users) && len(last.users[p]) == hi-lo {
			v.users[p] = last.users[p]
			shared++
			continue
		}
		pg := make([]sparse.Vector, hi-lo)
		copy(pg, d.Users[lo:hi])
		v.users[p] = pg
		copied++
	}
	dirtyI := dirtyPageSet(d.vc.dirtyItems)
	for p := range v.items {
		lo, hi := p<<viewPageShift, min((p+1)<<viewPageShift, nI)
		_, dirty := dirtyI[p]
		if !dirty && last != nil && p < len(last.items) && len(last.items[p]) == hi-lo {
			v.items[p] = last.items[p]
			shared++
			continue
		}
		pg := make([][]uint32, hi-lo)
		copy(pg, d.Items[lo:hi])
		v.items[p] = pg
		copied++
	}
	d.vc = viewCache{last: v, copied: copied, shared: shared}
	return v
}
