package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"kiff/internal/sparse"
)

// LoadOptions controls edge-list parsing.
type LoadOptions struct {
	// Name labels the resulting dataset.
	Name string
	// BuildItemProfiles builds the item-profile inverted index during the
	// same pass that builds user profiles, as KIFF does (Algorithm 1 lines
	// 1–2, "executed at loading time"). When false only user profiles are
	// built; the Table IV experiment contrasts the two.
	BuildItemProfiles bool
	// Binary discards ratings, producing unweighted profiles.
	Binary bool
}

// Load parses a whitespace-separated edge list: one "user item [rating]"
// triple per line, '#' comments and blank lines ignored. User and item
// identifiers are arbitrary tokens and are densely renumbered in order of
// first appearance; a missing rating defaults to 1.
//
// Duplicate (user, item) pairs accumulate their ratings, matching how the
// Gowalla check-in counts and DBLP co-publication counts are formed.
func Load(r io.Reader, opts LoadOptions) (*Dataset, error) {
	type edge struct {
		item   uint32
		rating float64
	}
	userIDs := make(map[string]uint32)
	itemIDs := make(map[string]uint32)
	var profiles [][]edge

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	sawRating := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d: want 'user item [rating]', got %q", lineNo, line)
		}
		rating := 1.0
		if len(fields) >= 3 && !opts.Binary {
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad rating %q: %v", lineNo, fields[2], err)
			}
			rating = v
			sawRating = true
		}
		uid, ok := userIDs[fields[0]]
		if !ok {
			uid = uint32(len(userIDs))
			userIDs[fields[0]] = uid
			profiles = append(profiles, nil)
		}
		iid, ok := itemIDs[fields[1]]
		if !ok {
			iid = uint32(len(itemIDs))
			itemIDs[fields[1]] = iid
		}
		profiles[uid] = append(profiles[uid], edge{item: iid, rating: rating})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}

	// A file with no rating column anywhere is a binary dataset; keeping
	// implicit all-ones weight slices would only waste memory and make the
	// round trip through Write/Load lose binariness.
	binary := opts.Binary || !sawRating

	users := make([]sparse.Vector, len(profiles))
	for uid, es := range profiles {
		sort.Slice(es, func(a, b int) bool { return es[a].item < es[b].item })
		ids := make([]uint32, 0, len(es))
		var weights []float64
		if !binary {
			weights = make([]float64, 0, len(es))
		}
		for i := 0; i < len(es); {
			j := i
			r := 0.0
			for j < len(es) && es[j].item == es[i].item {
				r += es[j].rating
				j++
			}
			ids = append(ids, es[i].item)
			if !binary {
				weights = append(weights, r)
			}
			i = j
		}
		users[uid] = sparse.Vector{IDs: ids, Weights: weights}
	}

	d := &Dataset{Name: opts.Name, Users: users, numItems: len(itemIDs)}
	d.Compact()
	if opts.BuildItemProfiles {
		// The inverted index is built from the deduplicated profiles into
		// one CSR arena (Algorithm 1 lines 1–2, still at loading time).
		d.EnsureItemProfiles()
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Write emits the dataset as a parseable edge list. Binary datasets omit
// the rating column. The output round-trips through Load.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# dataset %s: %d users, %d items, %d ratings\n",
		d.Name, d.NumUsers(), d.NumItems(), d.NumRatings())
	for uid, u := range d.Users {
		for i, item := range u.IDs {
			if u.IsBinary() {
				if _, err := fmt.Fprintf(bw, "%d %d\n", uid, item); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%d %d %g\n", uid, item, u.Weights[i]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}
