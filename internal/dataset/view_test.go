package dataset

import (
	"testing"

	"kiff/internal/sparse"
)

// viewFixture builds a dataset big enough to span several header pages.
func viewFixture(t *testing.T, users int) *Dataset {
	t.Helper()
	profiles := make([]sparse.Vector, users)
	for u := range profiles {
		profiles[u] = sparse.Vector{IDs: []uint32{uint32(u % 50), uint32(50 + u%30)}}
	}
	d, err := New("viewfix", profiles, 80)
	if err != nil {
		t.Fatal(err)
	}
	d.EnsureItemProfiles()
	return d
}

func requireViewMatchesLive(t *testing.T, v *View, d *Dataset) {
	t.Helper()
	if v.NumUsers() != d.NumUsers() || v.NumItems() != d.NumItems() {
		t.Fatalf("view %d users / %d items, live %d / %d", v.NumUsers(), v.NumItems(), d.NumUsers(), d.NumItems())
	}
	for u := 0; u < d.NumUsers(); u++ {
		a, b := v.User(uint32(u)), d.Users[u]
		if a.Len() != b.Len() {
			t.Fatalf("user %d: view has %d items, live %d", u, a.Len(), b.Len())
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] || a.Weight(i) != b.Weight(i) {
				t.Fatalf("user %d entry %d diverges", u, i)
			}
		}
	}
	for i := 0; i < d.NumItems(); i++ {
		a, b := v.Item(uint32(i)), d.Items[i]
		if len(a) != len(b) {
			t.Fatalf("item %d: view has %d users, live %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("item %d entry %d diverges", i, j)
			}
		}
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestViewMatchesLiveAcrossSizes(t *testing.T) {
	for _, users := range []int{1, 63, 64, 65, 150} {
		d := viewFixture(t, users)
		requireViewMatchesLive(t, d.View(), d)
	}
}

func TestViewSharesCleanPages(t *testing.T) {
	d := viewFixture(t, 150) // user pages: 3, item pages: 2
	d.View()
	copied, shared := d.LastViewStats()
	if shared != 0 || copied != 5 {
		t.Fatalf("first view: copied %d, shared %d; want 5 copied", copied, shared)
	}

	// A clean republication shares every page.
	d.View()
	if copied, shared = d.LastViewStats(); copied != 0 || shared != 5 {
		t.Fatalf("clean view: copied %d, shared %d; want 5 shared", copied, shared)
	}

	// One rating on user 70 (page 1) touching item 10 (page 0): exactly
	// those two pages are rebuilt. (Item 10 gains user 70 — an insert into
	// the inverted index — because user 70's profile holds 70%50=20 and
	// 50+70%30=60, not 10.)
	if err := d.AddRating(70, 10, 1); err != nil {
		t.Fatal(err)
	}
	v := d.View()
	if copied, shared = d.LastViewStats(); copied != 2 || shared != 3 {
		t.Fatalf("after one rating: copied %d, shared %d; want 2 copied, 3 shared", copied, shared)
	}
	requireViewMatchesLive(t, v, d)
}

func TestViewImmutableUnderMutation(t *testing.T) {
	d := viewFixture(t, 100)
	v := d.View()
	before := v.User(5)
	beforeLen := before.Len()
	beforeItem := append([]uint32(nil), v.Item(5)...)

	if err := d.AddRating(5, 5, 1); err != nil { // user 5 gains item 5
		t.Fatal(err)
	}
	if _, err := d.AddUser(sparse.Vector{IDs: []uint32{5}}); err != nil {
		t.Fatal(err)
	}

	if v.NumUsers() != 100 {
		t.Fatalf("old view now covers %d users", v.NumUsers())
	}
	if got := v.User(5); got.Len() != beforeLen {
		t.Fatalf("old view's user 5 grew: %d -> %d items", beforeLen, got.Len())
	}
	got := v.Item(5)
	if len(got) != len(beforeItem) {
		t.Fatalf("old view's item 5 grew: %d -> %d users", len(beforeItem), len(got))
	}
	for i := range got {
		if got[i] != beforeItem[i] {
			t.Fatalf("old view's item 5 changed at %d", i)
		}
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}

	// The next view picks up both mutations and still matches live.
	requireViewMatchesLive(t, d.View(), d)
}

func TestViewGrowthRebuildsTailPages(t *testing.T) {
	d := viewFixture(t, 70) // partial tail user page [64..69]
	d.View()
	if _, err := d.AddUser(sparse.Vector{IDs: []uint32{0}}); err != nil {
		t.Fatal(err)
	}
	v := d.View()
	// User page 0 may be shared; the tail page grew and must be rebuilt
	// (plus the item page of item 0).
	copied, shared := d.LastViewStats()
	if copied == 0 || shared == 0 {
		t.Fatalf("growth view: copied %d, shared %d; want a mix", copied, shared)
	}
	requireViewMatchesLive(t, v, d)
}

func TestCompactInvalidatesViewCache(t *testing.T) {
	d := viewFixture(t, 100)
	d.View()
	d.Compact()
	v := d.View()
	copied, shared := d.LastViewStats()
	if shared != 0 {
		t.Fatalf("view after Compact shared %d pages with a pre-Compact view", shared)
	}
	if copied == 0 {
		t.Fatal("view after Compact copied nothing")
	}
	requireViewMatchesLive(t, v, d)
}
