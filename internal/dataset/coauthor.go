package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kiff/internal/sparse"
)

// CoauthorConfig parameterizes the co-authorship generator standing in for
// the paper's Arxiv and DBLP datasets: users and items are both authors
// (|U| = |I|), two authors appear in each other's profiles when they have
// co-authored a paper, and — for DBLP — the rating is the number of
// co-publications (§IV-A1, §IV-A4).
type CoauthorConfig struct {
	Name    string
	Authors int
	// TargetRatings is the number of directed co-authorship edges |E| to
	// approximate; generation stops once reached.
	TargetRatings int
	// MeanPaperSize is the mean number of authors per paper (≥ 2);
	// paper sizes are 2 + Poisson(MeanPaperSize-2), giving the small dense
	// cliques that make co-authorship graphs clustered.
	MeanPaperSize float64
	// AuthorSkew is the Zipf exponent of author productivity (> 1): a few
	// prolific authors, a long tail of occasional ones, matching Fig 4.
	AuthorSkew float64
	// Weighted keeps co-publication counts as ratings (DBLP); when false
	// the profiles are binary (Arxiv carries no ratings).
	Weighted bool
	// CommunitySize is the number of authors per research community
	// (0 = 64). Papers draw most of their authors from a single
	// community, giving the generated graph the strong local clustering
	// of real co-authorship networks — the property that makes shared-
	// collaborator counts predictive of similarity (paper Fig 7).
	CommunitySize int
	// Locality is the probability that a paper author is drawn from the
	// paper's home community rather than the global pool (0 = 0.85).
	Locality float64
	Seed     int64
}

// SynthesizeCoauthor draws a symmetric co-authorship dataset.
func SynthesizeCoauthor(cfg CoauthorConfig) (*Dataset, error) {
	if cfg.Authors < 3 {
		return nil, fmt.Errorf("dataset: coauthor %q: need ≥ 3 authors", cfg.Name)
	}
	if cfg.MeanPaperSize < 2 {
		return nil, fmt.Errorf("dataset: coauthor %q: MeanPaperSize must be ≥ 2", cfg.Name)
	}
	if cfg.AuthorSkew <= 1 {
		return nil, fmt.Errorf("dataset: coauthor %q: AuthorSkew must be > 1", cfg.Name)
	}
	if cfg.TargetRatings < 2 {
		return nil, fmt.Errorf("dataset: coauthor %q: TargetRatings must be ≥ 2", cfg.Name)
	}
	commSize := cfg.CommunitySize
	if commSize == 0 {
		commSize = 64
	}
	if commSize < 3 {
		return nil, fmt.Errorf("dataset: coauthor %q: CommunitySize must be ≥ 3 (or 0 for the default)", cfg.Name)
	}
	if commSize > cfg.Authors {
		commSize = cfg.Authors
	}
	locality := cfg.Locality
	if locality == 0 {
		locality = 0.85
	}
	if locality < 0 || locality > 1 {
		return nil, fmt.Errorf("dataset: coauthor %q: Locality must be in [0, 1]", cfg.Name)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// Author productivity is Zipfian, but the Zipf offset scales with the
	// population: with a small constant offset the head few authors would
	// appear in nearly every paper, producing hub profiles three orders of
	// magnitude above the mean — far more extreme than real co-authorship
	// graphs (the DBLP snapshot averages 16.4 collaborators with hubs in
	// the hundreds, not thousands).
	offset := 1 + float64(cfg.Authors)/64
	globalZipf := rand.NewZipf(rng, cfg.AuthorSkew, offset, uint64(cfg.Authors-1))
	// Within-community productivity is Zipfian too, with a gentle head.
	localZipf := rand.NewZipf(rng, cfg.AuthorSkew, 1+float64(commSize)/8, uint64(commSize-1))
	numComm := (cfg.Authors + commSize - 1) / commSize
	// Zipf ranks are relabeled through a random permutation so author IDs
	// carry no information about productivity or community. Without this,
	// ID-based tie-breaks downstream (RCS count ties, pivot rule) would be
	// systematically aligned with degree — a correlation real
	// bibliographic datasets do not have.
	perm := rng.Perm(cfg.Authors)

	// occurrences[a] collects every co-author of a, with repetition — one
	// entry per shared paper. Duplicates become co-publication counts.
	occurrences := make([][]uint32, cfg.Authors)
	totalDirected := 0
	paper := make([]uint32, 0, 16)
	seen := make(map[uint32]bool, 16)
	// Hard cap on papers prevents an infinite loop if parameters are
	// inconsistent (e.g. a target far above what the author pool supports).
	maxPapers := cfg.TargetRatings * 4
	for p := 0; p < maxPapers && totalDirected < cfg.TargetRatings; p++ {
		size := 2 + poisson(rng, cfg.MeanPaperSize-2)
		if size > cfg.Authors {
			size = cfg.Authors
		}
		// Each paper has a home community; most of its authors come from
		// there, the rest from the global productivity distribution.
		home := rng.Intn(numComm)
		homeLo := home * commSize
		homeHi := homeLo + commSize
		if homeHi > cfg.Authors {
			homeHi = cfg.Authors
		}
		paper = paper[:0]
		clear(seen)
		attempts := 0
		for len(paper) < size {
			var a uint32
			if rng.Float64() < locality {
				r := int(localZipf.Uint64())
				if homeLo+r >= homeHi {
					r = r % (homeHi - homeLo)
				}
				a = uint32(perm[homeLo+r])
			} else {
				a = uint32(perm[globalZipf.Uint64()])
			}
			attempts++
			if attempts > 50*size {
				break // degenerate community smaller than the paper
			}
			if seen[a] {
				continue
			}
			seen[a] = true
			paper = append(paper, a)
		}
		for _, a := range paper {
			for _, b := range paper {
				if a == b {
					continue
				}
				occurrences[a] = append(occurrences[a], b)
				totalDirected++
			}
		}
	}

	users := make([]sparse.Vector, cfg.Authors)
	for a, occ := range occurrences {
		sort.Slice(occ, func(i, j int) bool { return occ[i] < occ[j] })
		ids := make([]uint32, 0, len(occ))
		var weights []float64
		if cfg.Weighted {
			weights = make([]float64, 0, len(occ))
		}
		for i := 0; i < len(occ); {
			j := i
			for j < len(occ) && occ[j] == occ[i] {
				j++
			}
			ids = append(ids, occ[i])
			if cfg.Weighted {
				weights = append(weights, float64(j-i))
			}
			i = j
		}
		users[a] = sparse.Vector{IDs: ids, Weights: weights}
	}
	d := &Dataset{Name: cfg.Name, Users: users, numItems: cfg.Authors}
	d.Compact()
	d.EnsureItemProfiles()
	return d, nil
}

// poisson draws from a Poisson distribution with mean lambda using Knuth's
// multiplication method, which is fine for the small lambdas used here.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // numerically unreachable for sane lambda
		}
	}
}
