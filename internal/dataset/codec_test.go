package dataset

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"kiff/internal/arena"
	"kiff/internal/sparse"
)

func codecFixture(t *testing.T) *Dataset {
	t.Helper()
	d, err := New("fixture", []sparse.Vector{
		{IDs: []uint32{0, 2, 5}},                                  // binary
		{IDs: []uint32{1, 2}, Weights: []float64{0.5, 1.0 / 3.0}}, // weighted
		{}, // empty profile
		{IDs: []uint32{0, 5, 6}, Weights: []float64{4, 2.5, math.Pi}}, // weighted
		{IDs: []uint32{3}}, // binary singleton
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	d.EnsureItemProfiles()
	return d
}

func TestDatasetBinaryRoundTrip(t *testing.T) {
	orig := codecFixture(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if back.Name != orig.Name || back.NumUsers() != orig.NumUsers() || back.NumItems() != orig.NumItems() {
		t.Fatalf("shape changed: %s/%d/%d vs %s/%d/%d",
			back.Name, back.NumUsers(), back.NumItems(), orig.Name, orig.NumUsers(), orig.NumItems())
	}
	// Dataset-level binariness is preserved; in a *mixed* dataset the v2
	// format materializes binary users' implicit 1.0 ratings (one offsets
	// array describes both arenas), so per-user IsBinary may flip while
	// Weight stays bit-identical.
	if orig.Binary() != back.Binary() {
		t.Fatalf("dataset binariness changed: %v vs %v", back.Binary(), orig.Binary())
	}
	for u := range orig.Users {
		a, b := orig.Users[u], back.Users[u]
		if a.Len() != b.Len() {
			t.Fatalf("user %d: profile shape changed", u)
		}
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] {
				t.Fatalf("user %d item %d: %d vs %d", u, i, a.IDs[i], b.IDs[i])
			}
			// Ratings must be bit-identical, not approximately equal.
			if math.Float64bits(a.Weight(i)) != math.Float64bits(b.Weight(i)) {
				t.Fatalf("user %d item %d: weight %v vs %v", u, i, a.Weight(i), b.Weight(i))
			}
		}
	}
	// The index is built lazily (decode allocates O(input) only); after
	// EnsureItemProfiles the loaded dataset passes the full invariant
	// check, inverted index included.
	if back.Items != nil {
		t.Fatal("decoder built the item index eagerly; it must stay lazy")
	}
	back.EnsureItemProfiles()
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetBinaryRoundTripEmpty(t *testing.T) {
	d, err := New("empty", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUsers() != 0 || back.NumItems() != 0 {
		t.Fatalf("empty dataset decoded as %d users, %d items", back.NumUsers(), back.NumItems())
	}
}

func TestDatasetBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, codecFixture(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("every truncation errors", func(t *testing.T) {
		for cut := 0; cut < len(raw); cut++ {
			if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("every bit flip errors", func(t *testing.T) {
		for i := 0; i < len(raw); i++ {
			bad := append([]byte(nil), raw...)
			bad[i] ^= 0x01
			if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, arena.ErrCorrupt) {
				t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", i, err)
			}
		}
	})
}

// FuzzDatasetDecode asserts the dataset decoder never panics and accepted
// datasets are valid and re-encode byte-identically.
func FuzzDatasetDecode(f *testing.F) {
	var buf bytes.Buffer
	d, err := New("seed", []sparse.Vector{{IDs: []uint32{0, 1}}}, 2)
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteBinary(&buf, d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("KFD1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadBinary(bytes.NewReader(data))
		dv, errv := ViewBinary(bytes.Clone(data))
		// The streaming and zero-copy decoders must accept exactly the
		// same inputs and agree on the decoded shape.
		if (err == nil) != (errv == nil) {
			t.Fatalf("decoder disagreement: ReadBinary err=%v, ViewBinary err=%v", err, errv)
		}
		if err != nil {
			return
		}
		if dv.NumUsers() != d.NumUsers() || dv.NumItems() != d.NumItems() || dv.NumRatings() != d.NumRatings() {
			t.Fatalf("decoder shape disagreement")
		}
		if vErr := d.Validate(); vErr != nil {
			t.Fatalf("decoder accepted invalid dataset: %v", vErr)
		}
		var out bytes.Buffer
		if wErr := WriteBinary(&out, d); wErr != nil {
			t.Fatalf("re-encode failed: %v", wErr)
		}
		if _, rErr := ReadBinary(bytes.NewReader(out.Bytes())); rErr != nil {
			t.Fatalf("re-decode failed: %v", rErr)
		}
	})
}
