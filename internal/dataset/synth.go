package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"kiff/internal/sparse"
)

// SynthConfig parameterizes the generic sparse bipartite generator used as
// the stand-in for the paper's Wikipedia and Gowalla datasets (see
// DESIGN.md §3 for the substitution rationale). Profile sizes follow a
// discrete power law so the generated CCDFs show the long tails of Fig 4;
// item popularity follows a Zipf law so item-profile sizes are long-tailed
// too.
type SynthConfig struct {
	Name  string
	Users int
	Items int
	// AvgProfile is the target mean user-profile size; |E| ≈ Users·AvgProfile.
	AvgProfile float64
	// Alpha is the power-law exponent of user profile sizes (must be > 2
	// for a finite mean; the paper's datasets are well fit by 2.1–2.6).
	Alpha float64
	// ItemSkew is the Zipf exponent of item popularity (> 1).
	ItemSkew float64
	// MaxRating, when > 1, draws integer ratings uniformly in [1, MaxRating]
	// producing weighted profiles; 0 or 1 produces binary profiles.
	MaxRating int
	// Communities is the number of interest communities items are
	// partitioned into (0 = auto: one community per 64 items, at least 4).
	// Users have a home community and draw most of their items from it,
	// giving the dataset the overlap clustering of real rating data —
	// without it, two users only ever meet on globally popular items and
	// shared-item counts stop predicting similarity.
	Communities int
	// Locality is the probability that an item is drawn from the user's
	// home community rather than the global popularity law (0 = 0.8).
	Locality float64
	Seed     int64
}

// Synthesize draws a dataset from the configuration. Generation is fully
// deterministic for a fixed config (including Seed).
func Synthesize(cfg SynthConfig) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("dataset: synth %q: need positive Users and Items", cfg.Name)
	}
	if cfg.Alpha <= 2 {
		return nil, fmt.Errorf("dataset: synth %q: Alpha must be > 2, got %v", cfg.Name, cfg.Alpha)
	}
	if cfg.ItemSkew <= 1 {
		return nil, fmt.Errorf("dataset: synth %q: ItemSkew must be > 1, got %v", cfg.Name, cfg.ItemSkew)
	}
	if cfg.AvgProfile < 1 {
		return nil, fmt.Errorf("dataset: synth %q: AvgProfile must be ≥ 1, got %v", cfg.Name, cfg.AvgProfile)
	}
	numComm := cfg.Communities
	if numComm == 0 {
		numComm = cfg.Items / 64
		if numComm < 4 {
			numComm = 4
		}
	}
	if numComm < 1 || numComm > cfg.Items {
		return nil, fmt.Errorf("dataset: synth %q: Communities must be in [1, Items]", cfg.Name)
	}
	locality := cfg.Locality
	if locality == 0 {
		locality = 0.8
	}
	if locality < 0 || locality > 1 {
		return nil, fmt.Errorf("dataset: synth %q: Locality must be in [0, 1]", cfg.Name)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// The Zipf offset scales with the catalogue so the most popular items
	// stay within a plausible multiple of the mean item profile (Fig 4b
	// shows long tails, not a handful of items rated by everyone).
	offset := 1 + float64(cfg.Items)/128
	zipf := rand.NewZipf(rng, cfg.ItemSkew, offset, uint64(cfg.Items-1))
	commSize := (cfg.Items + numComm - 1) / numComm
	// Rounding commSize up can leave the nominal last communities empty;
	// re-derive the community count so every home block is non-empty.
	numComm = (cfg.Items + commSize - 1) / commSize
	localZipf := rand.NewZipf(rng, cfg.ItemSkew, 1+float64(commSize)/16, uint64(commSize-1))
	// Item IDs are relabeled through a random permutation so ID order
	// carries no popularity or community information.
	perm := rng.Perm(cfg.Items)

	users := make([]sparse.Vector, cfg.Users)
	maxSize := cfg.Items / 2
	if maxSize < 1 {
		maxSize = 1
	}
	picked := make(map[uint32]bool)
	for u := range users {
		size := powerLawSize(rng, cfg.AvgProfile, cfg.Alpha, maxSize)
		home := rng.Intn(numComm)
		homeLo := home * commSize
		homeHi := homeLo + commSize
		if homeHi > cfg.Items {
			homeHi = cfg.Items
		}
		clear(picked)
		ids := make([]uint32, 0, size)
		// Rejection-sample distinct items; fall back to sequential probing
		// if the popularity head is saturated.
		attempts := 0
		for len(ids) < size {
			var it uint32
			if rng.Float64() < locality {
				r := int(localZipf.Uint64())
				if homeLo+r >= homeHi {
					r = r % (homeHi - homeLo)
				}
				it = uint32(perm[homeLo+r])
			} else {
				it = uint32(perm[zipf.Uint64()])
			}
			attempts++
			if attempts > 30*size {
				// Saturated: walk the item space deterministically.
				for it2 := uint32(0); len(ids) < size && int(it2) < cfg.Items; it2++ {
					if !picked[it2] {
						picked[it2] = true
						ids = append(ids, it2)
					}
				}
				break
			}
			if picked[it] {
				continue
			}
			picked[it] = true
			ids = append(ids, it)
		}
		m := make(map[uint32]float64, len(ids))
		for _, id := range ids {
			if cfg.MaxRating > 1 {
				m[id] = float64(1 + rng.Intn(cfg.MaxRating))
			} else {
				m[id] = 1
			}
		}
		users[u] = sparse.FromMap(m, cfg.MaxRating <= 1)
	}
	d := &Dataset{Name: cfg.Name, Users: users, numItems: cfg.Items}
	d.Compact()
	d.EnsureItemProfiles()
	return d, nil
}

// powerLawSize draws a discrete Pareto-distributed profile size with the
// given mean: X = ceil(xmin·U^(-1/(α-1))) where xmin = mean·(α-2)/(α-1).
// The continuous Pareto with scale xmin and shape α-1 has mean
// xmin·(α-1)/(α-2); solving for xmin targets the requested mean.
func powerLawSize(rng *rand.Rand, mean, alpha float64, maxSize int) int {
	xmin := mean * (alpha - 2) / (alpha - 1)
	if xmin < 1 {
		xmin = 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	x := xmin * math.Pow(u, -1/(alpha-1))
	size := int(math.Ceil(x))
	if size < 1 {
		size = 1
	}
	if size > maxSize {
		size = maxSize
	}
	return size
}

// Downsample returns a copy of d in which each rating is kept independently
// with probability keep. This is the paper's procedure for deriving the
// ML-2..ML-5 density family from ML-1 (§V-B3: "we progressively remove
// randomly chosen ratings"). Users left with empty profiles are retained so
// |U| and |I| — and hence the density denominator — stay fixed.
func Downsample(d *Dataset, keep float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	users := make([]sparse.Vector, len(d.Users))
	for uid, u := range d.Users {
		ids := make([]uint32, 0, u.Len())
		var weights []float64
		if !u.IsBinary() {
			weights = make([]float64, 0, u.Len())
		}
		for i, id := range u.IDs {
			if rng.Float64() < keep {
				ids = append(ids, id)
				if weights != nil {
					weights = append(weights, u.Weights[i])
				}
			}
		}
		users[uid] = sparse.Vector{IDs: ids, Weights: weights}
	}
	out := &Dataset{Name: d.Name, Users: users, numItems: d.numItems}
	out.Compact()
	out.EnsureItemProfiles()
	return out
}
