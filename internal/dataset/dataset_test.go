package dataset

import (
	"math"
	"testing"

	"kiff/internal/sparse"
)

func mustNew(t *testing.T, name string, users []sparse.Vector, items int) *Dataset {
	t.Helper()
	d, err := New(name, users, items)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestNewValidates(t *testing.T) {
	users := []sparse.Vector{{IDs: []uint32{0, 5}}}
	if _, err := New("bad", users, 3); err == nil {
		t.Fatal("New must reject out-of-range item ids")
	}
	if _, err := New("ok", users, 6); err != nil {
		t.Fatalf("New rejected valid dataset: %v", err)
	}
}

func TestCounts(t *testing.T) {
	d := mustNew(t, "t", []sparse.Vector{
		{IDs: []uint32{0, 1}},
		{IDs: []uint32{1}},
		{},
	}, 4)
	if d.NumUsers() != 3 {
		t.Errorf("NumUsers = %d, want 3", d.NumUsers())
	}
	if d.NumItems() != 4 {
		t.Errorf("NumItems = %d, want 4", d.NumItems())
	}
	if d.NumRatings() != 3 {
		t.Errorf("NumRatings = %d, want 3", d.NumRatings())
	}
	wantDensity := 3.0 / 12.0
	if math.Abs(d.Density()-wantDensity) > 1e-12 {
		t.Errorf("Density = %v, want %v", d.Density(), wantDensity)
	}
}

func TestBinary(t *testing.T) {
	bin := mustNew(t, "b", []sparse.Vector{{IDs: []uint32{0}}}, 1)
	if !bin.Binary() {
		t.Error("dataset without weights must be binary")
	}
	w := mustNew(t, "w", []sparse.Vector{{IDs: []uint32{0}, Weights: []float64{2}}}, 1)
	if w.Binary() {
		t.Error("dataset with weights must not be binary")
	}
}

func TestItemProfiles(t *testing.T) {
	d := mustNew(t, "t", []sparse.Vector{
		{IDs: []uint32{0, 1}}, // user 0: items 0,1
		{IDs: []uint32{1, 2}}, // user 1: items 1,2
		{IDs: []uint32{1}},    // user 2: item 1
	}, 3)
	d.EnsureItemProfiles()
	want := [][]uint32{{0}, {0, 1, 2}, {1}}
	for i := range want {
		if len(d.Items[i]) != len(want[i]) {
			t.Fatalf("item %d profile = %v, want %v", i, d.Items[i], want[i])
		}
		for j := range want[i] {
			if d.Items[i][j] != want[i][j] {
				t.Fatalf("item %d profile = %v, want %v", i, d.Items[i], want[i])
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after EnsureItemProfiles: %v", err)
	}
}

func TestProfileSizes(t *testing.T) {
	d := mustNew(t, "t", []sparse.Vector{
		{IDs: []uint32{0, 1, 2}},
		{IDs: []uint32{2}},
	}, 3)
	up := d.UserProfileSizes()
	if up[0] != 3 || up[1] != 1 {
		t.Errorf("UserProfileSizes = %v", up)
	}
	ip := d.ItemProfileSizes()
	if ip[0] != 1 || ip[1] != 1 || ip[2] != 2 {
		t.Errorf("ItemProfileSizes = %v", ip)
	}
}

func TestStats(t *testing.T) {
	d := mustNew(t, "stats", []sparse.Vector{
		{IDs: []uint32{0, 1}},
		{IDs: []uint32{0}},
	}, 4)
	s := d.Stats()
	if s.Users != 2 || s.Items != 4 || s.Ratings != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if math.Abs(s.AvgUP-1.5) > 1e-12 || math.Abs(s.AvgIP-0.75) > 1e-12 {
		t.Errorf("Stats averages = %+v", s)
	}
	if s.String() == "" {
		t.Error("Stats.String must not be empty")
	}
}

func TestToy(t *testing.T) {
	d, users, items := Toy()
	if len(users) != 4 || len(items) != 4 {
		t.Fatalf("Toy sizes: %d users %d items", len(users), len(items))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Toy dataset invalid: %v", err)
	}
	// Figure 2: Alice and Bob share coffee (item 1).
	if got := sparse.CommonCount(d.Users[0], d.Users[1]); got != 1 {
		t.Errorf("Alice∩Bob = %d, want 1", got)
	}
	// Carl and Dave share shopping.
	if got := sparse.CommonCount(d.Users[2], d.Users[3]); got != 1 {
		t.Errorf("Carl∩Dave = %d, want 1", got)
	}
	// Alice and Carl share nothing.
	if got := sparse.CommonCount(d.Users[0], d.Users[2]); got != 0 {
		t.Errorf("Alice∩Carl = %d, want 0", got)
	}
	// IPcoffee = {Alice, Bob}.
	if len(d.Items[1]) != 2 || d.Items[1][0] != 0 || d.Items[1][1] != 1 {
		t.Errorf("IPcoffee = %v, want [0 1]", d.Items[1])
	}
}

func TestFromProfiles(t *testing.T) {
	d := FromProfiles("fp", []map[uint32]float64{
		{3: 2.0, 1: 1.0},
		{3: 5.0},
	}, false)
	if d.NumItems() != 4 {
		t.Errorf("NumItems = %d, want 4", d.NumItems())
	}
	if d.Users[0].WeightOf(3) != 2.0 {
		t.Errorf("weight = %v, want 2", d.Users[0].WeightOf(3))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesBadIndex(t *testing.T) {
	d := mustNew(t, "t", []sparse.Vector{{IDs: []uint32{0}}}, 1)
	d.Items = [][]uint32{{5}} // user 5 does not exist
	if err := d.Validate(); err == nil {
		t.Error("Validate must reject out-of-range user in item profile")
	}
	d.Items = [][]uint32{{0, 0}} // duplicate
	if err := d.Validate(); err == nil {
		t.Error("Validate must reject non-ascending item profile")
	}
}
