package dataset

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

// failAfterWriter errors after n bytes; used to verify Write surfaces I/O
// failures instead of swallowing them.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

func TestLoadSurfacesReaderErrors(t *testing.T) {
	wantErr := errors.New("disk on fire")
	r := iotest.TimeoutReader(io.MultiReader(
		strings.NewReader("u i 1\n"),
		iotest.ErrReader(wantErr),
	))
	if _, err := Load(r, LoadOptions{}); err == nil {
		t.Error("Load must surface reader errors")
	}
}

func TestLoadPartialLineAtEOF(t *testing.T) {
	// No trailing newline must still parse.
	d, err := Load(strings.NewReader("u i 1"), LoadOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.NumRatings() != 1 {
		t.Errorf("ratings = %d, want 1", d.NumRatings())
	}
}

func TestLoadVeryLongLine(t *testing.T) {
	// Lines beyond the default bufio.Scanner token size must work (the
	// loader raises the buffer cap).
	long := "u" + strings.Repeat("x", 1<<17) + " item 1\n"
	d, err := Load(strings.NewReader(long), LoadOptions{})
	if err != nil {
		t.Fatalf("Load long line: %v", err)
	}
	if d.NumUsers() != 1 {
		t.Errorf("users = %d, want 1", d.NumUsers())
	}
}

func TestWriteSurfacesWriterErrors(t *testing.T) {
	d := FromProfiles("w", []map[uint32]float64{{0: 1}, {1: 2}}, false)
	wantErr := errors.New("pipe closed")
	if err := Write(&failAfterWriter{n: 4, err: wantErr}, d); err == nil {
		t.Error("Write must surface writer errors")
	}
}

func TestLoadEmptyInput(t *testing.T) {
	d, err := Load(strings.NewReader(""), LoadOptions{Name: "empty"})
	if err != nil {
		t.Fatalf("Load empty: %v", err)
	}
	if d.NumUsers() != 0 || d.NumItems() != 0 {
		t.Errorf("empty input produced %d users %d items", d.NumUsers(), d.NumItems())
	}
}

func TestLoadWhitespaceVariants(t *testing.T) {
	// Tabs, multiple spaces and surrounding blanks must all parse.
	in := "u1\ti1\t2\n  u2   i1   3  \n"
	d, err := Load(strings.NewReader(in), LoadOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.NumUsers() != 2 || d.NumRatings() != 2 {
		t.Errorf("parsed %d users %d ratings", d.NumUsers(), d.NumRatings())
	}
}
