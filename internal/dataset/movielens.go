package dataset

import (
	"fmt"
	"math/rand"

	"kiff/internal/sparse"
)

// MovieLensConfig parameterizes the dense rating generator standing in for
// the MovieLens ML-1 dataset of Table IX: 6,040 users × 3,706 movies,
// every user with ≥ 20 ratings, 165.1 ratings per user on average (4.47%
// density), and 5-star ratings in half-star increments.
type MovieLensConfig struct {
	Name  string
	Users int
	Items int
	// MinProfile is the per-user floor (the ML collection protocol kept
	// only users with at least 20 ratings).
	MinProfile int
	// AvgProfile is the target mean profile size.
	AvgProfile float64
	// ItemSkew is the Zipf exponent of movie popularity (> 1).
	ItemSkew float64
	Seed     int64
}

// DefaultMovieLens mirrors ML-1 of Table IX scaled by the given factor
// (scale 1 = the published 6,040×3,706, 1,000,209-rating dataset).
func DefaultMovieLens(scale float64, seed int64) MovieLensConfig {
	users := int(float64(6040) * scale)
	items := int(float64(3706) * scale)
	if users < 20 {
		users = 20
	}
	if items < 40 {
		items = 40
	}
	return MovieLensConfig{
		Name:       "ML-1",
		Users:      users,
		Items:      items,
		MinProfile: 20,
		AvgProfile: 165.1,
		ItemSkew:   1.25,
		Seed:       seed,
	}
}

// SynthesizeMovieLens draws the dense rating dataset. Ratings are drawn
// from the 5-star half-increment scale {0.5, 1.0, ..., 5.0} with a mild
// central tendency (most mass on 3–4 stars, as in the real ML data).
func SynthesizeMovieLens(cfg MovieLensConfig) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("dataset: movielens %q: need positive Users and Items", cfg.Name)
	}
	if cfg.MinProfile < 1 || float64(cfg.MinProfile) > cfg.AvgProfile {
		return nil, fmt.Errorf("dataset: movielens %q: need 1 ≤ MinProfile ≤ AvgProfile", cfg.Name)
	}
	if cfg.ItemSkew <= 1 {
		return nil, fmt.Errorf("dataset: movielens %q: ItemSkew must be > 1", cfg.Name)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ItemSkew, 4, uint64(cfg.Items-1))

	maxSize := cfg.Items * 4 / 5
	if maxSize < cfg.MinProfile {
		maxSize = cfg.MinProfile
	}
	users := make([]sparse.Vector, cfg.Users)
	picked := make(map[uint32]bool)
	for u := range users {
		// Profile size: MinProfile + exponential tail targeting the mean.
		size := cfg.MinProfile + int(rng.ExpFloat64()*(cfg.AvgProfile-float64(cfg.MinProfile)))
		if size > maxSize {
			size = maxSize
		}
		clear(picked)
		m := make(map[uint32]float64, size)
		attempts := 0
		for len(m) < size {
			it := uint32(zipf.Uint64())
			attempts++
			if attempts > 30*size {
				for it2 := uint32(0); len(m) < size && int(it2) < cfg.Items; it2++ {
					if !picked[it2] {
						picked[it2] = true
						m[it2] = drawStarRating(rng)
					}
				}
				break
			}
			if picked[it] {
				continue
			}
			picked[it] = true
			m[it] = drawStarRating(rng)
		}
		users[u] = sparse.FromMap(m, false)
	}
	d := &Dataset{Name: cfg.Name, Users: users, numItems: cfg.Items}
	d.Compact()
	d.EnsureItemProfiles()
	return d, nil
}

// drawStarRating draws from {0.5, 1.0, ..., 5.0} with a triangular-ish
// central tendency peaking around 3.5–4 stars.
func drawStarRating(rng *rand.Rand) float64 {
	// Sum of two uniform half-star draws re-centered: cheap triangular law.
	a := rng.Intn(6) // 0..5
	b := rng.Intn(6) // 0..5
	halfStars := a + b
	if halfStars == 0 {
		halfStars = 1
	}
	return float64(halfStars) * 0.5
}

// MovieLensFamily reproduces the ML-1..ML-5 density ladder of Table IX by
// downsampling ML-1 with the published keep ratios.
func MovieLensFamily(scale float64, seed int64) ([]*Dataset, error) {
	ml1, err := SynthesizeMovieLens(DefaultMovieLens(scale, seed))
	if err != nil {
		return nil, err
	}
	// Published rating counts: 1,000,209 / 500,009 / 255,188 / 131,668 / 68,415.
	ratios := []float64{1, 0.49990, 0.25513, 0.13164, 0.06840}
	out := make([]*Dataset, len(ratios))
	out[0] = ml1
	for i := 1; i < len(ratios); i++ {
		d := Downsample(ml1, ratios[i], seed+int64(i))
		d.Name = fmt.Sprintf("ML-%d", i+1)
		out[i] = d
	}
	return out, nil
}
