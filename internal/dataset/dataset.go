// Package dataset implements the labeled bipartite graph substrate of the
// paper (§III-A): a set of users U, a set of items I, and a rating function
// ρ : U × I → R materialized as per-user profiles (UPu) plus an inverted
// index of per-item profiles (IPi).
//
// Because the module must run offline, the package also provides
// deterministic synthetic generators calibrated to the published statistics
// of the paper's four SNAP datasets (Table I, Fig 4) and of the MovieLens
// density family (Table IX); see synth.go, coauthor.go and movielens.go.
package dataset

import (
	"errors"
	"fmt"
	"sort"

	"kiff/internal/arena"
	"kiff/internal/sparse"
)

// Dataset is an in-memory user–item bipartite graph. Users and items are
// densely numbered from 0; external identifier mappings are handled by the
// loader (load.go).
//
// Storage follows the module's arena discipline: loaders and generators
// compact user profiles onto shared flat backing arrays (Compact), and
// the item-profile inverted index is built as one CSR arena. Mutations
// (AddUser, AddRating) are single-writer and copy-on-write at row
// granularity — they never modify elements of row storage that an
// existing header can see, only replace whole rows or append past every
// published length — which is what lets View publish consistent frozen
// snapshots to concurrent readers while the writer keeps mutating.
type Dataset struct {
	// Name identifies the dataset in tables and reports.
	Name string
	// Users holds one sparse profile per user: the items the user rated,
	// with the ratings as weights (nil weights = binary, the single-valued
	// rating special case of §III-A).
	Users []sparse.Vector
	// Items is the inverted index: Items[i] lists the users that rated
	// item i, in ascending order (the item profiles IPi of §II-B). It may
	// be nil until EnsureItemProfiles is called; loaders and generators
	// normally populate it at construction time, mirroring Algorithm 1
	// lines 1–2 ("executed at loading time").
	Items [][]uint32

	numItems int

	// vc remembers the last published View and the rows dirtied since, so
	// the next View() can share clean header pages with it (view.go).
	vc viewCache
}

// New creates a dataset from user profiles. numItems must be at least one
// greater than the largest item ID referenced by any profile. The
// profiles are compacted onto shared arenas; the caller's slices are not
// retained.
func New(name string, users []sparse.Vector, numItems int) (*Dataset, error) {
	d := &Dataset{Name: name, Users: users, numItems: numItems}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	d.Compact()
	return d, nil
}

// Compact re-lays every user profile onto shared contiguous arenas (see
// sparse.Compact). Constructors call it once; long-mutated datasets may
// call it again to re-pack rows that copy-on-write mutations scattered
// across the heap. Single-writer, like every mutator.
func (d *Dataset) Compact() {
	d.Users = sparse.Compact(d.Users)
	// Every row header just moved onto new arenas; pages shared from the
	// previous view no longer describe the live rows.
	d.invalidateView()
}

// NumUsers returns |U|.
func (d *Dataset) NumUsers() int { return len(d.Users) }

// NumItems returns |I|.
func (d *Dataset) NumItems() int { return d.numItems }

// User returns user u's current profile (do not mutate). Together with
// Item and NumItems it gives the live dataset the same read surface as a
// frozen View, so query evaluation can run over either.
func (d *Dataset) User(u uint32) sparse.Vector { return d.Users[u] }

// Item returns item i's inverted-index row (do not mutate). The index
// must have been built (EnsureItemProfiles).
func (d *Dataset) Item(i uint32) []uint32 { return d.Items[i] }

// NumRatings returns |E|, the number of user→item edges.
func (d *Dataset) NumRatings() int {
	n := 0
	for _, u := range d.Users {
		n += u.Len()
	}
	return n
}

// Density returns |E| / (|U|·|I|), the fill ratio of the bipartite
// adjacency matrix (Table I).
func (d *Dataset) Density() float64 {
	if len(d.Users) == 0 || d.numItems == 0 {
		return 0
	}
	return float64(d.NumRatings()) / (float64(len(d.Users)) * float64(d.numItems))
}

// Binary reports whether every profile is unweighted.
func (d *Dataset) Binary() bool {
	for _, u := range d.Users {
		if !u.IsBinary() {
			return false
		}
	}
	return true
}

// UserProfileSizes returns |UPu| for every user (Fig 4a input).
func (d *Dataset) UserProfileSizes() []int {
	sizes := make([]int, len(d.Users))
	for i, u := range d.Users {
		sizes[i] = u.Len()
	}
	return sizes
}

// ItemProfileSizes returns |IPi| for every item (Fig 4b input). It builds
// the inverted index if necessary.
func (d *Dataset) ItemProfileSizes() []int {
	d.EnsureItemProfiles()
	sizes := make([]int, len(d.Items))
	for i, ip := range d.Items {
		sizes[i] = len(ip)
	}
	return sizes
}

// EnsureItemProfiles builds the item-profile inverted index if it has not
// been built yet. The index reverses every user→item edge into an
// item→user entry; users appear in ascending order because user IDs are
// scanned in order.
func (d *Dataset) EnsureItemProfiles() {
	if d.Items != nil {
		return
	}
	d.Items = BuildItemProfiles(d.Users, d.numItems)
	// Building the index rewrites every item row wholesale.
	d.invalidateView()
}

// BuildItemProfiles computes the inverted index for the given profiles
// as capacity-clamped views into one CSR arena (two-pass counted fill).
// It is exposed separately so the Table IV experiment can time item-profile
// construction in isolation.
func BuildItemProfiles(users []sparse.Vector, numItems int) [][]uint32 {
	counts := make([]int, numItems)
	for _, u := range users {
		for _, it := range u.IDs {
			counts[it]++
		}
	}
	f := arena.NewFiller[uint32](counts)
	for uid := range users {
		for _, it := range users[uid].IDs {
			f.Push(int(it), uint32(uid))
		}
	}
	return f.Rows().Views()
}

// AddUser appends profile p as a new user and returns its ID. The item
// space grows automatically if p references items beyond NumItems. The
// item-profile inverted index, if already built, is patched by appending
// — the new user's ID is the largest, so each touched item profile stays
// ascending, and the append lands either in a fresh array or past every
// length a published View can see (row storage visible to views is never
// overwritten).
//
// Mutations are single-writer: AddUser must not run concurrently with
// other mutations of the same dataset. Readers holding a View are safe.
// The profile is cloned; the caller's slices are not retained.
func (d *Dataset) AddUser(p sparse.Vector) (uint32, error) {
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("dataset: add user: %w", err)
	}
	p = p.Clone()
	if p.Len() > 0 {
		if maxID := int(p.IDs[p.Len()-1]); maxID >= d.numItems {
			d.growItems(maxID + 1)
		}
	}
	id := uint32(len(d.Users))
	d.Users = append(d.Users, p)
	d.markUser(id)
	if d.Items != nil {
		for _, it := range p.IDs {
			d.Items[it] = append(d.Items[it], id)
			d.markItem(it)
		}
	}
	return id, nil
}

// AddRating sets user u's rating of item to rating, inserting the item
// into the profile if it is absent and replacing it otherwise. The item
// space grows automatically for a new item ID. A binary profile stays
// binary for rating == 1 and is materialized into an explicitly weighted
// one otherwise.
//
// Like AddUser, AddRating is single-writer but safe to interleave with
// readers holding a View: mutated rows (the user's profile, the item's
// inverted-index entry) are rebuilt in fresh arrays and swapped in whole
// — copy-on-write — so a reader sees either the old or the new row,
// never a half-shifted one.
func (d *Dataset) AddRating(u uint32, item uint32, rating float64) error {
	if int(u) >= len(d.Users) {
		return fmt.Errorf("dataset: add rating: user %d out of range (have %d users)", u, len(d.Users))
	}
	if int(item) >= d.numItems {
		d.growItems(int(item) + 1)
	}
	p := d.Users[u]
	pos := sort.Search(p.Len(), func(i int) bool { return p.IDs[i] >= item })
	present := pos < p.Len() && p.IDs[pos] == item
	weighted := p.Weights != nil || rating != 1
	if present {
		if !weighted {
			return nil // binary profile, rating 1: already recorded
		}
		weights := make([]float64, p.Len())
		if p.Weights == nil {
			for i := range weights {
				weights[i] = 1
			}
		} else {
			copy(weights, p.Weights)
		}
		weights[pos] = rating
		d.Users[u] = sparse.Vector{IDs: p.IDs, Weights: weights}
		d.markUser(u)
		return nil
	}
	ids := make([]uint32, p.Len()+1)
	copy(ids, p.IDs[:pos])
	ids[pos] = item
	copy(ids[pos+1:], p.IDs[pos:])
	var weights []float64
	if weighted {
		weights = make([]float64, p.Len()+1)
		for i := 0; i < pos; i++ {
			weights[i] = p.Weight(i)
		}
		weights[pos] = rating
		for i := pos; i < p.Len(); i++ {
			weights[i+1] = p.Weight(i)
		}
	}
	d.Users[u] = sparse.Vector{IDs: ids, Weights: weights}
	d.markUser(u)
	if d.Items != nil {
		ip := d.Items[item]
		ipos := sort.Search(len(ip), func(i int) bool { return ip[i] >= u })
		nip := make([]uint32, len(ip)+1)
		copy(nip, ip[:ipos])
		nip[ipos] = u
		copy(nip[ipos+1:], ip[ipos:])
		d.Items[item] = nip
		d.markItem(item)
	}
	return nil
}

// growItems extends the item space to n items, padding the inverted index
// (if built) with empty profiles.
func (d *Dataset) growItems(n int) {
	if n <= d.numItems {
		return
	}
	if d.Items != nil {
		for len(d.Items) < n {
			d.Items = append(d.Items, nil)
		}
	}
	d.numItems = n
}

// Stats summarizes a dataset in the shape of the paper's Table I.
type Stats struct {
	Name    string
	Users   int
	Items   int
	Ratings int
	Density float64
	AvgUP   float64
	AvgIP   float64
	Binary  bool
}

// Stats computes the Table I row for the dataset.
func (d *Dataset) Stats() Stats {
	ratings := d.NumRatings()
	s := Stats{
		Name:    d.Name,
		Users:   d.NumUsers(),
		Items:   d.NumItems(),
		Ratings: ratings,
		Density: d.Density(),
		Binary:  d.Binary(),
	}
	if s.Users > 0 {
		s.AvgUP = float64(ratings) / float64(s.Users)
	}
	if s.Items > 0 {
		s.AvgIP = float64(ratings) / float64(s.Items)
	}
	return s
}

// String renders the stats as a single table row.
func (s Stats) String() string {
	return fmt.Sprintf("%-12s |U|=%-8d |I|=%-8d |E|=%-10d density=%.4f%% avg|UP|=%.1f avg|IP|=%.1f",
		s.Name, s.Users, s.Items, s.Ratings, s.Density*100, s.AvgUP, s.AvgIP)
}

// Validate checks structural invariants: profiles well-formed, item IDs in
// range, and (if present) the inverted index consistent with the profiles.
func (d *Dataset) Validate() error {
	if d.numItems < 0 {
		return errors.New("dataset: negative item count")
	}
	for uid, u := range d.Users {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("dataset: user %d: %w", uid, err)
		}
		if u.Len() > 0 && int(u.IDs[u.Len()-1]) >= d.numItems {
			return fmt.Errorf("dataset: user %d references item %d ≥ numItems %d",
				uid, u.IDs[u.Len()-1], d.numItems)
		}
	}
	if d.Items != nil {
		if len(d.Items) != d.numItems {
			return fmt.Errorf("dataset: item index has %d entries, want %d", len(d.Items), d.numItems)
		}
		n := 0
		for i, ip := range d.Items {
			for j, uid := range ip {
				if int(uid) >= len(d.Users) {
					return fmt.Errorf("dataset: item %d references user %d out of range", i, uid)
				}
				if j > 0 && ip[j-1] >= uid {
					return fmt.Errorf("dataset: item %d profile not strictly ascending", i)
				}
			}
			n += len(ip)
		}
		if n != d.NumRatings() {
			return fmt.Errorf("dataset: inverted index has %d edges, profiles have %d", n, d.NumRatings())
		}
	}
	return nil
}
