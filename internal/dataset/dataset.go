// Package dataset implements the labeled bipartite graph substrate of the
// paper (§III-A): a set of users U, a set of items I, and a rating function
// ρ : U × I → R materialized as per-user profiles (UPu) plus an inverted
// index of per-item profiles (IPi).
//
// Because the module must run offline, the package also provides
// deterministic synthetic generators calibrated to the published statistics
// of the paper's four SNAP datasets (Table I, Fig 4) and of the MovieLens
// density family (Table IX); see synth.go, coauthor.go and movielens.go.
package dataset

import (
	"errors"
	"fmt"
	"sort"

	"kiff/internal/sparse"
)

// Dataset is an in-memory user–item bipartite graph. Users and items are
// densely numbered from 0; external identifier mappings are handled by the
// loader (load.go).
type Dataset struct {
	// Name identifies the dataset in tables and reports.
	Name string
	// Users holds one sparse profile per user: the items the user rated,
	// with the ratings as weights (nil weights = binary, the single-valued
	// rating special case of §III-A).
	Users []sparse.Vector
	// Items is the inverted index: Items[i] lists the users that rated
	// item i, in ascending order (the item profiles IPi of §II-B). It may
	// be nil until EnsureItemProfiles is called; loaders and generators
	// normally populate it at construction time, mirroring Algorithm 1
	// lines 1–2 ("executed at loading time").
	Items [][]uint32

	numItems int
}

// New creates a dataset from user profiles. numItems must be at least one
// greater than the largest item ID referenced by any profile.
func New(name string, users []sparse.Vector, numItems int) (*Dataset, error) {
	d := &Dataset{Name: name, Users: users, numItems: numItems}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// NumUsers returns |U|.
func (d *Dataset) NumUsers() int { return len(d.Users) }

// NumItems returns |I|.
func (d *Dataset) NumItems() int { return d.numItems }

// NumRatings returns |E|, the number of user→item edges.
func (d *Dataset) NumRatings() int {
	n := 0
	for _, u := range d.Users {
		n += u.Len()
	}
	return n
}

// Density returns |E| / (|U|·|I|), the fill ratio of the bipartite
// adjacency matrix (Table I).
func (d *Dataset) Density() float64 {
	if len(d.Users) == 0 || d.numItems == 0 {
		return 0
	}
	return float64(d.NumRatings()) / (float64(len(d.Users)) * float64(d.numItems))
}

// Binary reports whether every profile is unweighted.
func (d *Dataset) Binary() bool {
	for _, u := range d.Users {
		if !u.IsBinary() {
			return false
		}
	}
	return true
}

// UserProfileSizes returns |UPu| for every user (Fig 4a input).
func (d *Dataset) UserProfileSizes() []int {
	sizes := make([]int, len(d.Users))
	for i, u := range d.Users {
		sizes[i] = u.Len()
	}
	return sizes
}

// ItemProfileSizes returns |IPi| for every item (Fig 4b input). It builds
// the inverted index if necessary.
func (d *Dataset) ItemProfileSizes() []int {
	d.EnsureItemProfiles()
	sizes := make([]int, len(d.Items))
	for i, ip := range d.Items {
		sizes[i] = len(ip)
	}
	return sizes
}

// EnsureItemProfiles builds the item-profile inverted index if it has not
// been built yet. The index reverses every user→item edge into an
// item→user entry; users appear in ascending order because user IDs are
// scanned in order.
func (d *Dataset) EnsureItemProfiles() {
	if d.Items != nil {
		return
	}
	d.Items = BuildItemProfiles(d.Users, d.numItems)
}

// BuildItemProfiles computes the inverted index for the given profiles.
// It is exposed separately so the Table IV experiment can time item-profile
// construction in isolation.
func BuildItemProfiles(users []sparse.Vector, numItems int) [][]uint32 {
	counts := make([]int, numItems)
	for _, u := range users {
		for _, it := range u.IDs {
			counts[it]++
		}
	}
	// One backing array, sliced per item, to avoid per-item allocations.
	total := 0
	for _, c := range counts {
		total += c
	}
	backing := make([]uint32, total)
	items := make([][]uint32, numItems)
	offset := 0
	for i, c := range counts {
		items[i] = backing[offset : offset : offset+c]
		offset += c
	}
	for uid := range users {
		for _, it := range users[uid].IDs {
			items[it] = append(items[it], uint32(uid))
		}
	}
	return items
}

// AddUser appends profile p as a new user and returns its ID. The item
// space grows automatically if p references items beyond NumItems. The
// item-profile inverted index, if already built, is patched in place —
// the new user's ID is the largest, so each touched item profile stays
// ascending with a plain append.
//
// Mutations are append-only and single-writer: AddUser must not run
// concurrently with reads of the same dataset.
func (d *Dataset) AddUser(p sparse.Vector) (uint32, error) {
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("dataset: add user: %w", err)
	}
	if p.Len() > 0 {
		if maxID := int(p.IDs[p.Len()-1]); maxID >= d.numItems {
			d.growItems(maxID + 1)
		}
	}
	id := uint32(len(d.Users))
	d.Users = append(d.Users, p)
	if d.Items != nil {
		for _, it := range p.IDs {
			d.Items[it] = append(d.Items[it], id)
		}
	}
	return id, nil
}

// AddRating sets user u's rating of item to rating, inserting the item
// into the profile if it is absent and updating it in place otherwise.
// The item space grows automatically for a new item ID. A binary profile
// stays binary for rating == 1 and is materialized into an explicitly
// weighted one otherwise.
//
// Like AddUser, AddRating is single-writer: it must not run concurrently
// with reads of the same dataset.
func (d *Dataset) AddRating(u uint32, item uint32, rating float64) error {
	if int(u) >= len(d.Users) {
		return fmt.Errorf("dataset: add rating: user %d out of range (have %d users)", u, len(d.Users))
	}
	if int(item) >= d.numItems {
		d.growItems(int(item) + 1)
	}
	p := &d.Users[u]
	pos := sort.Search(p.Len(), func(i int) bool { return p.IDs[i] >= item })
	present := pos < p.Len() && p.IDs[pos] == item
	if p.IsBinary() && rating != 1 {
		d.materializeWeights(u)
	}
	if present {
		if p.Weights != nil {
			p.Weights[pos] = rating
		}
		return nil
	}
	p.IDs = append(p.IDs, 0)
	copy(p.IDs[pos+1:], p.IDs[pos:])
	p.IDs[pos] = item
	if p.Weights != nil {
		p.Weights = append(p.Weights, 0)
		copy(p.Weights[pos+1:], p.Weights[pos:])
		p.Weights[pos] = rating
	}
	if d.Items != nil {
		ip := d.Items[item]
		ipos := sort.Search(len(ip), func(i int) bool { return ip[i] >= u })
		ip = append(ip, 0)
		copy(ip[ipos+1:], ip[ipos:])
		ip[ipos] = u
		d.Items[item] = ip
	}
	return nil
}

// materializeWeights converts user u's binary profile into an explicitly
// weighted one (all existing ratings are 1 by definition).
func (d *Dataset) materializeWeights(u uint32) {
	p := &d.Users[u]
	if p.Weights != nil {
		return
	}
	p.Weights = make([]float64, p.Len())
	for i := range p.Weights {
		p.Weights[i] = 1
	}
}

// growItems extends the item space to n items, padding the inverted index
// (if built) with empty profiles.
func (d *Dataset) growItems(n int) {
	if n <= d.numItems {
		return
	}
	if d.Items != nil {
		for len(d.Items) < n {
			d.Items = append(d.Items, nil)
		}
	}
	d.numItems = n
}

// Stats summarizes a dataset in the shape of the paper's Table I.
type Stats struct {
	Name    string
	Users   int
	Items   int
	Ratings int
	Density float64
	AvgUP   float64
	AvgIP   float64
	Binary  bool
}

// Stats computes the Table I row for the dataset.
func (d *Dataset) Stats() Stats {
	ratings := d.NumRatings()
	s := Stats{
		Name:    d.Name,
		Users:   d.NumUsers(),
		Items:   d.NumItems(),
		Ratings: ratings,
		Density: d.Density(),
		Binary:  d.Binary(),
	}
	if s.Users > 0 {
		s.AvgUP = float64(ratings) / float64(s.Users)
	}
	if s.Items > 0 {
		s.AvgIP = float64(ratings) / float64(s.Items)
	}
	return s
}

// String renders the stats as a single table row.
func (s Stats) String() string {
	return fmt.Sprintf("%-12s |U|=%-8d |I|=%-8d |E|=%-10d density=%.4f%% avg|UP|=%.1f avg|IP|=%.1f",
		s.Name, s.Users, s.Items, s.Ratings, s.Density*100, s.AvgUP, s.AvgIP)
}

// Validate checks structural invariants: profiles well-formed, item IDs in
// range, and (if present) the inverted index consistent with the profiles.
func (d *Dataset) Validate() error {
	if d.numItems < 0 {
		return errors.New("dataset: negative item count")
	}
	for uid, u := range d.Users {
		if err := u.Validate(); err != nil {
			return fmt.Errorf("dataset: user %d: %w", uid, err)
		}
		if u.Len() > 0 && int(u.IDs[u.Len()-1]) >= d.numItems {
			return fmt.Errorf("dataset: user %d references item %d ≥ numItems %d",
				uid, u.IDs[u.Len()-1], d.numItems)
		}
	}
	if d.Items != nil {
		if len(d.Items) != d.numItems {
			return fmt.Errorf("dataset: item index has %d entries, want %d", len(d.Items), d.numItems)
		}
		n := 0
		for i, ip := range d.Items {
			for j, uid := range ip {
				if int(uid) >= len(d.Users) {
					return fmt.Errorf("dataset: item %d references user %d out of range", i, uid)
				}
				if j > 0 && ip[j-1] >= uid {
					return fmt.Errorf("dataset: item %d profile not strictly ascending", i)
				}
			}
			n += len(ip)
		}
		if n != d.NumRatings() {
			return fmt.Errorf("dataset: inverted index has %d edges, profiles have %d", n, d.NumRatings())
		}
	}
	return nil
}
