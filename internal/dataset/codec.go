package dataset

// Binary dataset codec, the profile-side companion of the graph codec:
// a serving process loads the dataset (for queries and profile lookups)
// and the prebuilt graph, and skips construction entirely.
// docs/FORMATS.md is the normative specification.
//
// Version 2 (written by WriteBinary) lays the profile CSR out as
// 8-byte-aligned fixed-width sections so a serving process can map the
// file and view the arenas in place (see mapped.go):
//
//	magic "KFD1", version 2 (arena codec framing, CRC32 trailer)
//	bytes  name
//	uvarint numUsers
//	uvarint numItems
//	uvarint numRatings (total profile entries)
//	uvarint weighted flag (1 = a weights section follows the IDs)
//	zero padding to an 8-byte payload offset
//	(numUsers+1) × int64 profile offsets, little-endian
//	numRatings × uint32 item ID (absolute, strictly ascending per user)
//	[weighted only] zero padding to 8 bytes, then
//	numRatings × float64 rating bits
//
// If any user carries explicit weights, every user's weights are
// materialized (binary profiles as literal 1.0s) so a single offsets
// array describes both arenas. Ratings keep their IEEE-754 bits, so every
// similarity computed from a loaded dataset is bit-identical. A dataset
// whose users are all binary stays binary (no weights section).
//
// Version 1 (varint-packed, delta-coded IDs) stays readable through
// ReadBinary; it cannot be viewed in place.
//
// Profiles are decoded straight into shared arenas (the same layout
// Compact produces). The item-profile index is NOT rebuilt eagerly: it
// is a pure function of the profiles, costs O(|E| + numItems), and
// numItems is a claimed field — rebuilding it inside the decoder would
// let a few crafted bytes force a numItems-sized allocation. Consumers
// build it on first use (EnsureItemProfiles), which the query/index/
// maintenance paths already do; the decoder itself allocates no more
// than a constant factor of the input size.

import (
	"fmt"
	"io"

	"kiff/internal/arena"
	"kiff/internal/sparse"
)

const (
	datasetMagic   = "KFD1"
	datasetVersion = 2
	maxNameLen     = 1 << 16
	// maxUsers / maxRatings bound the claimed counts so the offset and
	// section-size arithmetic can never overflow; both are far beyond any
	// file that fits on disk.
	maxUsers   = 1 << 40
	maxRatings = 1 << 44
)

// WriteBinary serializes the dataset in the current (version 2, mappable)
// binary format. Ratings keep their exact IEEE-754 bits, so a load
// reproduces the dataset bit-identically (unlike the text edge-list round
// trip, which goes through decimal formatting).
func WriteBinary(w io.Writer, d *Dataset) error {
	if len(d.Name) > maxNameLen {
		// The decoder bounds the name field; enforcing the same bound here
		// keeps every written file loadable.
		return fmt.Errorf("dataset: name is %d bytes, max %d", len(d.Name), maxNameLen)
	}
	nnz := 0
	weighted := false
	for _, u := range d.Users {
		nnz += u.Len()
		weighted = weighted || u.Weights != nil
	}
	aw := arena.NewWriter(w, datasetMagic, datasetVersion)
	aw.Bytes([]byte(d.Name))
	aw.Uvarint(uint64(len(d.Users)))
	aw.Uvarint(uint64(d.numItems))
	aw.Uvarint(uint64(nnz))
	flag := uint64(0)
	if weighted {
		flag = 1
	}
	aw.Uvarint(flag)
	aw.Align(8)
	offsets := make([]int64, 0, len(d.Users)+1)
	total := int64(0)
	offsets = append(offsets, 0)
	for _, u := range d.Users {
		total += int64(u.Len())
		offsets = append(offsets, total)
	}
	aw.Int64s(offsets)
	for _, u := range d.Users {
		aw.Uint32s(u.IDs)
	}
	if weighted {
		aw.Align(8)
		var ones []float64
		for _, u := range d.Users {
			if u.Weights != nil {
				aw.Float64s(u.Weights)
				continue
			}
			// Binary profile in a weighted file: materialize the implicit
			// 1.0 ratings (Vector.Weight's contract).
			if len(ones) < u.Len() {
				ones = make([]float64, max(u.Len(), 256))
				for i := range ones {
					ones[i] = 1
				}
			}
			aw.Float64s(ones[:u.Len()])
		}
	}
	return aw.Close()
}

// ReadBinary decodes a dataset written by WriteBinary (either format
// version), verifying the checksum and the dataset invariants, with every
// byte copied through the heap — the portable path. For the zero-copy
// alternative see ViewBinary/OpenMapped. The item-profile index is left
// unbuilt (see the package comment); EnsureItemProfiles builds it on
// first use. Corrupt input yields an error wrapping arena.ErrCorrupt;
// decoding never panics and allocates no more than a constant factor of
// the input size.
func ReadBinary(r io.Reader) (*Dataset, error) {
	ar, version, err := arena.NewReader(r, datasetMagic)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	switch version {
	case 1:
		return readV1(ar)
	case datasetVersion:
		return decodeV2(ar)
	default:
		return nil, fmt.Errorf("dataset: %w: unsupported version %d", arena.ErrCorrupt, version)
	}
}

// readV1 decodes the legacy varint-packed, delta-coded layout.
func readV1(ar *arena.Reader) (*Dataset, error) {
	name := ar.Bytes(maxNameLen)
	numUsers := ar.Uvarint()
	numItems := ar.UvarintMax(1<<32, "item count")
	users := make([]sparse.Vector, 0, arena.PreallocCap(numUsers))
	ids := make([]uint32, 0, arena.PreallocCap(numUsers)) // grows with input
	var weights []float64
	for u := uint64(0); u < numUsers && ar.Err() == nil; u++ {
		header := ar.Uvarint()
		plen := header >> 1
		weighted := header&1 == 1
		if plen > numItems {
			return nil, fmt.Errorf("dataset: %w: user %d profile length %d exceeds item count %d",
				arena.ErrCorrupt, u, plen, numItems)
		}
		lo := len(ids)
		prev := uint64(0)
		for i := uint64(0); i < plen && ar.Err() == nil; i++ {
			delta := ar.Uvarint()
			var id uint64
			if i == 0 {
				id = delta
			} else {
				id = prev + delta
				if delta == 0 {
					return nil, fmt.Errorf("dataset: %w: user %d profile not strictly ascending", arena.ErrCorrupt, u)
				}
			}
			if id >= numItems {
				return nil, fmt.Errorf("dataset: %w: user %d references item %d ≥ %d",
					arena.ErrCorrupt, u, id, numItems)
			}
			prev = id
			ids = append(ids, uint32(id))
		}
		v := sparse.Vector{IDs: ids[lo:len(ids):len(ids)]}
		if weighted {
			wlo := len(weights)
			for i := uint64(0); i < plen && ar.Err() == nil; i++ {
				weights = append(weights, ar.Float64())
			}
			v.Weights = weights[wlo:len(weights):len(weights)]
		}
		users = append(users, v)
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if err := ar.Close(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	d := &Dataset{Name: string(name), Users: users, numItems: int(numItems)}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %w: %v", arena.ErrCorrupt, err)
	}
	// The streaming decode may have left early profiles in retired growth
	// arrays; one compaction pass re-unifies them into a single arena.
	d.Compact()
	return d, nil
}

// decodeV2 walks the aligned-section layout through either decode path —
// arena.Reader (heap) or arena.View (zero-copy) — so the two can never
// diverge field by field.
func decodeV2(dec arena.Decoder) (*Dataset, error) {
	name := dec.Bytes(maxNameLen)
	numUsers := dec.UvarintMax(maxUsers, "user count")
	numItems := dec.UvarintMax(1<<32, "item count")
	nnz := dec.UvarintMax(maxRatings, "rating count")
	weighted := dec.UvarintMax(1, "weighted flag")
	dec.Align(8)
	offsets := dec.Int64s(numUsers + 1)
	ids := dec.Uint32s(nnz)
	var weights []float64
	if weighted == 1 {
		dec.Align(8)
		weights = dec.Float64s(nnz)
	}
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if err := dec.Close(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return assembleV2(string(name), numItems, offsets, ids, weights, nnz)
}

// assembleV2 builds the Dataset over decoded (or viewed) arenas, checking
// every structural invariant of the format. Shared by readV2 and
// ViewBinary.
func assembleV2(name string, numItems uint64, offsets []int64, ids []uint32, weights []float64, nnz uint64) (*Dataset, error) {
	if len(offsets) == 0 || offsets[0] != 0 {
		return nil, fmt.Errorf("dataset: %w: malformed offsets", arena.ErrCorrupt)
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("dataset: %w: offsets decrease at %d", arena.ErrCorrupt, i)
		}
	}
	if last := offsets[len(offsets)-1]; uint64(last) != nnz {
		return nil, fmt.Errorf("dataset: %w: offsets end at %d, %d ratings claimed", arena.ErrCorrupt, last, nnz)
	}
	users := make([]sparse.Vector, len(offsets)-1)
	for i := range users {
		lo, hi := offsets[i], offsets[i+1]
		users[i] = sparse.Vector{IDs: ids[lo:hi:hi]}
		if weights != nil {
			users[i].Weights = weights[lo:hi:hi]
		}
	}
	d := &Dataset{Name: name, Users: users, numItems: int(numItems)}
	// Validate covers the per-profile invariants the flat sections cannot
	// express structurally: IDs strictly ascending and below numItems.
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %w: %v", arena.ErrCorrupt, err)
	}
	return d, nil
}
