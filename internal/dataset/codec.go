package dataset

// Binary dataset codec, the profile-side companion of the graph codec:
// a serving process loads the dataset (for queries and profile lookups)
// and the prebuilt graph, and skips construction entirely.
//
//	magic "KFD1", version 1 (arena codec framing, CRC32 trailer)
//	bytes  name
//	uvarint numUsers
//	uvarint numItems
//	per user:
//	  uvarint 2·|UP| + weightedBit
//	  |UP| × uvarint item-ID delta (profiles are strictly ascending;
//	         first entry is the raw ID)
//	  |UP| × float64 rating bits, weighted profiles only
//
// Profiles are decoded straight into shared arenas (the same layout
// Compact produces). The item-profile index is NOT rebuilt eagerly: it
// is a pure function of the profiles, costs O(|E| + numItems), and
// numItems is a claimed field — rebuilding it inside the decoder would
// let a few crafted bytes force a numItems-sized allocation. Consumers
// build it on first use (EnsureItemProfiles), which the query/index/
// maintenance paths already do; the decoder itself allocates no more
// than a constant factor of the input size.

import (
	"fmt"
	"io"

	"kiff/internal/arena"
	"kiff/internal/sparse"
)

const (
	datasetMagic   = "KFD1"
	datasetVersion = 1
	maxNameLen     = 1 << 16
)

// WriteBinary serializes the dataset in the binary format. Ratings keep
// their exact IEEE-754 bits, so a load reproduces the dataset
// bit-identically (unlike the text edge-list round trip, which goes
// through decimal formatting).
func WriteBinary(w io.Writer, d *Dataset) error {
	if len(d.Name) > maxNameLen {
		// The decoder bounds the name field; enforcing the same bound here
		// keeps every written file loadable.
		return fmt.Errorf("dataset: name is %d bytes, max %d", len(d.Name), maxNameLen)
	}
	aw := arena.NewWriter(w, datasetMagic, datasetVersion)
	aw.Bytes([]byte(d.Name))
	aw.Uvarint(uint64(len(d.Users)))
	aw.Uvarint(uint64(d.numItems))
	for _, u := range d.Users {
		header := uint64(u.Len()) << 1
		if u.Weights != nil {
			header |= 1
		}
		aw.Uvarint(header)
		prev := uint32(0)
		for i, id := range u.IDs {
			if i == 0 {
				aw.Uvarint(uint64(id))
			} else {
				aw.Uvarint(uint64(id - prev))
			}
			prev = id
		}
		for _, w := range u.Weights {
			aw.Float64(w)
		}
	}
	return aw.Close()
}

// ReadBinary decodes a dataset written by WriteBinary, verifying the
// checksum and the dataset invariants. The item-profile index is left
// unbuilt (see the package comment); EnsureItemProfiles builds it on
// first use. Corrupt input yields an error wrapping arena.ErrCorrupt;
// decoding never panics and allocates no more than a constant factor of
// the input size.
func ReadBinary(r io.Reader) (*Dataset, error) {
	ar, version, err := arena.NewReader(r, datasetMagic)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if version != datasetVersion {
		return nil, fmt.Errorf("dataset: %w: unsupported version %d", arena.ErrCorrupt, version)
	}
	name := ar.Bytes(maxNameLen)
	numUsers := ar.Uvarint()
	numItems := ar.UvarintMax(1<<32, "item count")
	users := make([]sparse.Vector, 0, arena.PreallocCap(numUsers))
	ids := make([]uint32, 0, arena.PreallocCap(numUsers)) // grows with input
	var weights []float64
	for u := uint64(0); u < numUsers && ar.Err() == nil; u++ {
		header := ar.Uvarint()
		plen := header >> 1
		weighted := header&1 == 1
		if plen > numItems {
			return nil, fmt.Errorf("dataset: %w: user %d profile length %d exceeds item count %d",
				arena.ErrCorrupt, u, plen, numItems)
		}
		lo := len(ids)
		prev := uint64(0)
		for i := uint64(0); i < plen && ar.Err() == nil; i++ {
			delta := ar.Uvarint()
			var id uint64
			if i == 0 {
				id = delta
			} else {
				id = prev + delta
				if delta == 0 {
					return nil, fmt.Errorf("dataset: %w: user %d profile not strictly ascending", arena.ErrCorrupt, u)
				}
			}
			if id >= numItems {
				return nil, fmt.Errorf("dataset: %w: user %d references item %d ≥ %d",
					arena.ErrCorrupt, u, id, numItems)
			}
			prev = id
			ids = append(ids, uint32(id))
		}
		v := sparse.Vector{IDs: ids[lo:len(ids):len(ids)]}
		if weighted {
			wlo := len(weights)
			for i := uint64(0); i < plen && ar.Err() == nil; i++ {
				weights = append(weights, ar.Float64())
			}
			v.Weights = weights[wlo:len(weights):len(weights)]
		}
		users = append(users, v)
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if err := ar.Close(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	d := &Dataset{Name: string(name), Users: users, numItems: int(numItems)}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %w: %v", arena.ErrCorrupt, err)
	}
	// The streaming decode may have left early profiles in retired growth
	// arrays; one compaction pass re-unifies them into a single arena.
	d.Compact()
	return d, nil
}
