package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad asserts the edge-list parser never panics and that everything
// it accepts is structurally valid and round-trips through Write.
func FuzzLoad(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"u i\n",
		"u i 2.5\nu j 1\nv i 3\n",
		"a b -1\n",
		"a b 1e300\n",
		"a b NaN\n",
		"one\n",
		"u i notanumber\n",
		"\x00\x01\x02\n",
		"u\ti\t5\n",
		strings.Repeat("u i\n", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Load(strings.NewReader(input), LoadOptions{Name: "fuzz", BuildItemProfiles: true})
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if vErr := d.Validate(); vErr != nil {
			t.Fatalf("accepted invalid dataset: %v\ninput: %q", vErr, input)
		}
		var buf bytes.Buffer
		if wErr := Write(&buf, d); wErr != nil {
			t.Fatalf("Write failed on accepted dataset: %v", wErr)
		}
		back, rErr := Load(bytes.NewReader(buf.Bytes()), LoadOptions{Name: "fuzz2"})
		if rErr != nil {
			t.Fatalf("round trip failed: %v\noriginal input: %q\nserialized: %q", rErr, input, buf.String())
		}
		if back.NumRatings() != d.NumRatings() {
			t.Fatalf("round trip changed |E|: %d vs %d (input %q)", back.NumRatings(), d.NumRatings(), input)
		}
	})
}
