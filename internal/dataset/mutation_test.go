package dataset

import (
	"testing"

	"kiff/internal/sparse"
)

func TestAddUserPatchesIndex(t *testing.T) {
	d, _, _ := Toy()
	d.EnsureItemProfiles()
	nBefore := d.NumUsers()
	ratingsBefore := d.NumRatings()

	id, err := d.AddUser(sparse.Vector{IDs: []uint32{1, 2}}) // coffee, cheese
	if err != nil {
		t.Fatal(err)
	}
	if int(id) != nBefore {
		t.Errorf("AddUser id = %d, want %d", id, nBefore)
	}
	if d.NumUsers() != nBefore+1 || d.NumRatings() != ratingsBefore+2 {
		t.Errorf("shape after AddUser: %d users %d ratings", d.NumUsers(), d.NumRatings())
	}
	// The inverted index must have been patched in place and stay valid.
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after AddUser: %v", err)
	}
	found := false
	for _, u := range d.Items[1] {
		if u == id {
			found = true
		}
	}
	if !found {
		t.Error("new user missing from item profile")
	}
}

func TestAddUserGrowsItemSpace(t *testing.T) {
	d, _, _ := Toy()
	d.EnsureItemProfiles()
	items := d.NumItems()
	id, err := d.AddUser(sparse.Vector{IDs: []uint32{uint32(items + 2)}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumItems() != items+3 {
		t.Errorf("NumItems = %d, want %d", d.NumItems(), items+3)
	}
	if len(d.Items) != d.NumItems() {
		t.Errorf("index has %d entries, want %d", len(d.Items), d.NumItems())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after item growth: %v", err)
	}
	if got := d.Items[items+2]; len(got) != 1 || got[0] != id {
		t.Errorf("grown item profile = %v, want [%d]", got, id)
	}
}

func TestAddUserRejectsMalformedProfile(t *testing.T) {
	d, _, _ := Toy()
	if _, err := d.AddUser(sparse.Vector{IDs: []uint32{3, 1}}); err == nil {
		t.Error("unsorted profile must be rejected")
	}
	if _, err := d.AddUser(sparse.Vector{IDs: []uint32{1}, Weights: []float64{1, 2}}); err == nil {
		t.Error("length-mismatched profile must be rejected")
	}
}

func TestAddRatingInsertAndUpdate(t *testing.T) {
	d, _, _ := Toy()
	d.EnsureItemProfiles()

	// Update an existing (binary) rating to a weighted value: the profile
	// materializes weights.
	u := uint32(0)
	it := d.Users[u].IDs[0]
	if err := d.AddRating(u, it, 4); err != nil {
		t.Fatal(err)
	}
	if d.Users[u].IsBinary() {
		t.Error("profile must materialize weights for a non-unit rating")
	}
	if got := d.Users[u].WeightOf(it); got != 4 {
		t.Errorf("updated weight = %v, want 4", got)
	}
	// Other entries of the materialized profile keep their implicit 1.
	if d.Users[u].Len() > 1 {
		if got := d.Users[u].Weight(1); got != 1 {
			t.Errorf("untouched weight = %v, want 1", got)
		}
	}

	// Insert a new item mid-profile; the inverted index must stay sorted.
	ratingsBefore := d.NumRatings()
	if err := d.AddRating(2, 0, 2); err != nil { // Carl rates item 0
		t.Fatal(err)
	}
	if d.NumRatings() != ratingsBefore+1 {
		t.Errorf("ratings = %d, want %d", d.NumRatings(), ratingsBefore+1)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after AddRating: %v", err)
	}

	// Rating 1 on a binary profile stays binary.
	if d.Users[3].IsBinary() {
		if err := d.AddRating(3, 0, 1); err != nil {
			t.Fatal(err)
		}
		if !d.Users[3].IsBinary() {
			t.Error("unit rating must not materialize weights")
		}
	}

	// New item IDs grow the space; unknown users are rejected.
	if err := d.AddRating(0, uint32(d.NumItems())+5, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after item-growing AddRating: %v", err)
	}
	if err := d.AddRating(uint32(d.NumUsers()), 0, 1); err == nil {
		t.Error("out-of-range user must be rejected")
	}
}
