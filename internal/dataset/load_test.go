package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadBasic(t *testing.T) {
	in := `# comment
u1 i1 2.5
u1 i2
u2 i1 1

u3 i3 4
`
	d, err := Load(strings.NewReader(in), LoadOptions{Name: "x", BuildItemProfiles: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.NumUsers() != 3 || d.NumItems() != 3 || d.NumRatings() != 4 {
		t.Fatalf("loaded %d users %d items %d ratings", d.NumUsers(), d.NumItems(), d.NumRatings())
	}
	// u1 is user 0, i1 is item 0 with rating 2.5; i2 got default rating 1.
	if got := d.Users[0].WeightOf(0); got != 2.5 {
		t.Errorf("u1/i1 rating = %v, want 2.5", got)
	}
	if got := d.Users[0].WeightOf(1); got != 1 {
		t.Errorf("u1/i2 rating = %v, want 1", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestLoadBinaryDropsRatings(t *testing.T) {
	in := "a x 5\nb x 3\n"
	d, err := Load(strings.NewReader(in), LoadOptions{Binary: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !d.Binary() {
		t.Error("binary load must drop ratings")
	}
}

func TestLoadAccumulatesDuplicates(t *testing.T) {
	// Gowalla-style repeated check-ins accumulate.
	in := "u loc 1\nu loc 1\nu loc 1\n"
	d, err := Load(strings.NewReader(in), LoadOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.NumRatings() != 1 {
		t.Fatalf("duplicates must collapse to one edge, got %d", d.NumRatings())
	}
	if got := d.Users[0].WeightOf(0); got != 3 {
		t.Errorf("accumulated rating = %v, want 3", got)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("justonefield\n"), LoadOptions{}); err == nil {
		t.Error("Load must reject malformed lines")
	}
	if _, err := Load(strings.NewReader("u i notanumber\n"), LoadOptions{}); err == nil {
		t.Error("Load must reject bad ratings")
	}
}

func TestLoadWithoutItemProfiles(t *testing.T) {
	d, err := Load(strings.NewReader("u i\n"), LoadOptions{BuildItemProfiles: false})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d.Items != nil {
		t.Error("item profiles must not be built unless requested")
	}
	d.EnsureItemProfiles()
	if len(d.Items) != 1 || len(d.Items[0]) != 1 {
		t.Errorf("EnsureItemProfiles built %v", d.Items)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	orig := FromProfiles("rt", []map[uint32]float64{
		{0: 1.5, 2: 3},
		{1: 2},
		{0: 1, 1: 1, 2: 1},
	}, false)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), LoadOptions{Name: "rt", BuildItemProfiles: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	so, sb := orig.Stats(), back.Stats()
	if so.Users != sb.Users || so.Items != sb.Items || so.Ratings != sb.Ratings {
		t.Errorf("round trip stats changed: %+v vs %+v", so, sb)
	}
	// Weights must survive (ids may be renumbered, so compare via totals).
	sum := func(d *Dataset) float64 {
		var s float64
		for _, u := range d.Users {
			for i := range u.IDs {
				s += u.Weight(i)
			}
		}
		return s
	}
	if sum(orig) != sum(back) {
		t.Errorf("total rating mass changed: %v vs %v", sum(orig), sum(back))
	}
}

func TestWriteBinaryRoundTrip(t *testing.T) {
	orig, _, _ := Toy()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), LoadOptions{BuildItemProfiles: true})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !back.Binary() {
		t.Error("binary dataset must round-trip as binary")
	}
	if back.NumRatings() != orig.NumRatings() {
		t.Errorf("ratings changed: %d vs %d", back.NumRatings(), orig.NumRatings())
	}
}
