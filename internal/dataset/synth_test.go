package dataset

import (
	"math"
	"testing"
)

func TestSynthesizeShape(t *testing.T) {
	d, err := Synthesize(SynthConfig{
		Name: "s", Users: 500, Items: 300,
		AvgProfile: 12, Alpha: 2.4, ItemSkew: 1.4, Seed: 1,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumUsers() != 500 || d.NumItems() != 300 {
		t.Fatalf("shape %dx%d", d.NumUsers(), d.NumItems())
	}
	if !d.Binary() {
		t.Error("MaxRating ≤ 1 must give a binary dataset")
	}
	// The mean should be within 40% of the target (power-law draws are
	// high-variance; the seed keeps this deterministic).
	avg := d.Stats().AvgUP
	if avg < 12*0.6 || avg > 12*1.4 {
		t.Errorf("avg |UP| = %v, want ≈ 12", avg)
	}
	// Every user has at least one item.
	for uid, u := range d.Users {
		if u.Len() == 0 {
			t.Fatalf("user %d has an empty profile", uid)
		}
	}
}

func TestSynthesizeWeighted(t *testing.T) {
	d, err := Synthesize(SynthConfig{
		Name: "w", Users: 100, Items: 200,
		AvgProfile: 8, Alpha: 2.5, ItemSkew: 1.5, MaxRating: 5, Seed: 2,
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if d.Binary() {
		t.Error("MaxRating > 1 must give weighted profiles")
	}
	for _, u := range d.Users {
		for i := range u.IDs {
			w := u.Weight(i)
			if w < 1 || w > 5 {
				t.Fatalf("rating %v outside [1,5]", w)
			}
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{Name: "d", Users: 200, Items: 150, AvgProfile: 10, Alpha: 2.3, ItemSkew: 1.3, Seed: 7}
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for uid := range a.Users {
		if a.Users[uid].Len() != b.Users[uid].Len() {
			t.Fatalf("user %d profile size differs across identical seeds", uid)
		}
		for i := range a.Users[uid].IDs {
			if a.Users[uid].IDs[i] != b.Users[uid].IDs[i] {
				t.Fatalf("user %d profile differs across identical seeds", uid)
			}
		}
	}
}

func TestSynthesizeRejectsBadConfig(t *testing.T) {
	bads := []SynthConfig{
		{Users: 0, Items: 10, AvgProfile: 5, Alpha: 2.5, ItemSkew: 1.5},
		{Users: 10, Items: 0, AvgProfile: 5, Alpha: 2.5, ItemSkew: 1.5},
		{Users: 10, Items: 10, AvgProfile: 5, Alpha: 1.5, ItemSkew: 1.5},
		{Users: 10, Items: 10, AvgProfile: 5, Alpha: 2.5, ItemSkew: 0.9},
		{Users: 10, Items: 10, AvgProfile: 0.5, Alpha: 2.5, ItemSkew: 1.5},
	}
	for i, cfg := range bads {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("case %d: Synthesize accepted invalid config", i)
		}
	}
}

func TestSynthesizeLongTail(t *testing.T) {
	d, err := Synthesize(SynthConfig{
		Name: "tail", Users: 3000, Items: 2000,
		AvgProfile: 15, Alpha: 2.3, ItemSkew: 1.4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := d.UserProfileSizes()
	// Long tail: the max should far exceed the mean (Fig 4 shape), and the
	// median should sit below the mean.
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	mean := d.Stats().AvgUP
	if float64(maxSize) < 4*mean {
		t.Errorf("max profile %d not long-tailed vs mean %.1f", maxSize, mean)
	}
}

func TestDownsample(t *testing.T) {
	d, err := Synthesize(SynthConfig{
		Name: "ds", Users: 400, Items: 300, AvgProfile: 20, Alpha: 2.5, ItemSkew: 1.4, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	half := Downsample(d, 0.5, 99)
	if half.NumUsers() != d.NumUsers() || half.NumItems() != d.NumItems() {
		t.Fatal("Downsample must preserve |U| and |I|")
	}
	ratio := float64(half.NumRatings()) / float64(d.NumRatings())
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("kept ratio = %v, want ≈ 0.5", ratio)
	}
	if err := half.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Downsampling must never invent ratings.
	for uid := range half.Users {
		for i, id := range half.Users[uid].IDs {
			if !d.Users[uid].Contains(id) {
				t.Fatalf("user %d gained item %d", uid, id)
			}
			if half.Users[uid].Weight(i) != d.Users[uid].WeightOf(id) {
				t.Fatalf("user %d item %d weight changed", uid, id)
			}
		}
	}
}

func TestCoauthorSymmetric(t *testing.T) {
	d, err := SynthesizeCoauthor(CoauthorConfig{
		Name: "ca", Authors: 300, TargetRatings: 3000,
		MeanPaperSize: 3.0, AuthorSkew: 1.3, Weighted: true, Seed: 5,
	})
	if err != nil {
		t.Fatalf("SynthesizeCoauthor: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumUsers() != d.NumItems() {
		t.Fatal("co-authorship must have |U| = |I|")
	}
	// Symmetry: b ∈ UP_a ⇔ a ∈ UP_b with equal weight.
	for a := range d.Users {
		ua := d.Users[a]
		for i, b := range ua.IDs {
			if int(b) == a {
				t.Fatalf("author %d lists itself", a)
			}
			w := d.Users[b].WeightOf(uint32(a))
			if w != ua.Weight(i) {
				t.Fatalf("asymmetric co-pub count between %d and %d: %v vs %v",
					a, b, ua.Weight(i), w)
			}
		}
	}
}

func TestCoauthorBinaryAndTarget(t *testing.T) {
	target := 5000
	d, err := SynthesizeCoauthor(CoauthorConfig{
		Name: "arxiv-ish", Authors: 500, TargetRatings: target,
		MeanPaperSize: 3.4, AuthorSkew: 1.35, Weighted: false, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Binary() {
		t.Error("unweighted co-author dataset must be binary")
	}
	// NumRatings counts distinct pairs which is ≤ total directed
	// occurrences but should reach a sizeable share of the target.
	if d.NumRatings() < target/4 {
		t.Errorf("ratings = %d, want a sizeable fraction of target %d", d.NumRatings(), target)
	}
}

func TestCoauthorRejectsBadConfig(t *testing.T) {
	bads := []CoauthorConfig{
		{Authors: 2, TargetRatings: 10, MeanPaperSize: 3, AuthorSkew: 1.3},
		{Authors: 10, TargetRatings: 10, MeanPaperSize: 1, AuthorSkew: 1.3},
		{Authors: 10, TargetRatings: 10, MeanPaperSize: 3, AuthorSkew: 0.5},
		{Authors: 10, TargetRatings: 0, MeanPaperSize: 3, AuthorSkew: 1.3},
	}
	for i, cfg := range bads {
		if _, err := SynthesizeCoauthor(cfg); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestMovieLensShape(t *testing.T) {
	cfg := DefaultMovieLens(0.05, 11)
	d, err := SynthesizeMovieLens(cfg)
	if err != nil {
		t.Fatalf("SynthesizeMovieLens: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.Binary() {
		t.Error("MovieLens must carry star ratings")
	}
	for uid, u := range d.Users {
		if u.Len() < cfg.MinProfile {
			t.Fatalf("user %d has %d < MinProfile ratings", uid, u.Len())
		}
		for i := range u.IDs {
			w := u.Weight(i)
			if w < 0.5 || w > 5 || math.Mod(w*2, 1) != 0 {
				t.Fatalf("rating %v not on the half-star scale", w)
			}
		}
	}
}

func TestMovieLensFamilyDensityLadder(t *testing.T) {
	family, err := MovieLensFamily(0.05, 12)
	if err != nil {
		t.Fatalf("MovieLensFamily: %v", err)
	}
	if len(family) != 5 {
		t.Fatalf("family size = %d, want 5", len(family))
	}
	for i := 1; i < len(family); i++ {
		if family[i].NumRatings() >= family[i-1].NumRatings() {
			t.Errorf("ML-%d not sparser than ML-%d", i+1, i)
		}
		if family[i].NumUsers() != family[0].NumUsers() {
			t.Errorf("ML-%d user count changed", i+1)
		}
	}
	// Published ladder halves then roughly halves again.
	r01 := float64(family[1].NumRatings()) / float64(family[0].NumRatings())
	if math.Abs(r01-0.5) > 0.05 {
		t.Errorf("ML-2/ML-1 = %v, want ≈ 0.5", r01)
	}
}

func TestPresetGenerateSmall(t *testing.T) {
	for _, p := range Presets {
		d, err := p.Generate(0.01, 42)
		if err != nil {
			t.Fatalf("preset %s: %v", p, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", p, err)
		}
		if d.NumUsers() < 50 {
			t.Errorf("preset %s too small: %d users", p, d.NumUsers())
		}
	}
}

func TestPresetDefaultK(t *testing.T) {
	if Wikipedia.DefaultK() != 20 || DBLP.DefaultK() != 50 {
		t.Error("DefaultK must be 20 (50 for DBLP)")
	}
	if Wikipedia.ReducedK() != 10 || DBLP.ReducedK() != 20 {
		t.Error("ReducedK must be 10 (20 for DBLP)")
	}
}

func TestPresetRejectsBadScale(t *testing.T) {
	if _, err := Wikipedia.Generate(0, 1); err == nil {
		t.Error("scale 0 must be rejected")
	}
	if _, err := Preset("nope").Generate(1, 1); err == nil {
		t.Error("unknown preset must be rejected")
	}
}
