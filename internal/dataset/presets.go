package dataset

import (
	"fmt"
	"sort"

	"kiff/internal/sparse"
)

// Preset names one of the paper's evaluation datasets (Table I). Each
// preset is a calibrated synthetic replica; see DESIGN.md §3.
type Preset string

const (
	// Wikipedia: administrator-election votes, binary ratings,
	// 6,110 users × 2,381 items, 103,689 ratings, density 0.71%.
	Wikipedia Preset = "wikipedia"
	// Arxiv: GR-QC/ASTRO-PH co-authorship, users = items = 18,772 authors,
	// 396,160 edges, no ratings, density 0.11%.
	Arxiv Preset = "arxiv"
	// Gowalla: location check-ins with visit counts,
	// 107,092 users × 1,280,969 items, 3,981,334 ratings, density 0.0029%.
	Gowalla Preset = "gowalla"
	// DBLP: co-authorship with co-publication counts, 715,610 authors,
	// 11,755,605 edges, density 0.0011%.
	DBLP Preset = "dblp"
)

// Presets lists the four Table I datasets in paper order.
var Presets = []Preset{Arxiv, Wikipedia, Gowalla, DBLP}

// DefaultK returns the paper's neighborhood size for the preset (§IV-D:
// k = 20 everywhere except DBLP, where k = 50).
func (p Preset) DefaultK() int {
	if p == DBLP {
		return 50
	}
	return 20
}

// ReducedK returns the smaller k of the Table VIII sensitivity study
// (k = 10 everywhere except DBLP, where k = 20).
func (p Preset) ReducedK() int {
	if p == DBLP {
		return 20
	}
	return 10
}

// Generate materializes the preset at the given scale. scale 1 reproduces
// the published |U|, |I| and |E|; smaller scales shrink the user and item
// populations proportionally while keeping the average profile sizes (and
// hence the per-user workload) intact.
func (p Preset) Generate(scale float64, seed int64) (*Dataset, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("dataset: preset %s: scale must be > 0", p)
	}
	n := func(published int) int {
		v := int(float64(published) * scale)
		if v < 50 {
			v = 50
		}
		return v
	}
	switch p {
	case Wikipedia:
		return Synthesize(SynthConfig{
			Name:       string(p),
			Users:      n(6110),
			Items:      n(2381),
			AvgProfile: 16.9,
			Alpha:      2.35,
			ItemSkew:   1.35,
			MaxRating:  1, // binary votes
			Seed:       seed,
		})
	case Gowalla:
		return Synthesize(SynthConfig{
			Name:       string(p),
			Users:      n(107092),
			Items:      n(1280969),
			AvgProfile: 37.1,
			Alpha:      2.25,
			ItemSkew:   1.45,
			MaxRating:  8, // visit counts
			Seed:       seed,
		})
	case Arxiv:
		authors := n(18772)
		return SynthesizeCoauthor(CoauthorConfig{
			Name:          string(p),
			Authors:       authors,
			TargetRatings: int(21.1 * float64(authors)),
			MeanPaperSize: 3.4,
			AuthorSkew:    1.35,
			Weighted:      false, // "this dataset does not include ratings"
			Seed:          seed,
		})
	case DBLP:
		authors := n(715610)
		return SynthesizeCoauthor(CoauthorConfig{
			Name:          string(p),
			Authors:       authors,
			TargetRatings: int(16.4 * float64(authors)),
			MeanPaperSize: 3.2,
			AuthorSkew:    1.30,
			Weighted:      true, // co-publication counts
			Seed:          seed,
		})
	default:
		return nil, fmt.Errorf("dataset: unknown preset %q", p)
	}
}

// Toy returns the running example of the paper's Figure 2: Alice likes
// books and coffee, Bob coffee and cheese, Carl and Dave like shopping.
// It is used by the quickstart example and by documentation tests.
func Toy() (d *Dataset, userNames, itemNames []string) {
	userNames = []string{"Alice", "Bob", "Carl", "Dave"}
	itemNames = []string{"book", "coffee", "cheese", "shopping"}
	users := []sparse.Vector{
		{IDs: []uint32{0, 1}}, // Alice: book, coffee
		{IDs: []uint32{1, 2}}, // Bob: coffee, cheese
		{IDs: []uint32{3}},    // Carl: shopping
		{IDs: []uint32{3}},    // Dave: shopping
	}
	d = &Dataset{Name: "toy", Users: users, numItems: len(itemNames)}
	d.Compact()
	d.EnsureItemProfiles()
	return d, userNames, itemNames
}

// FromProfiles builds a dataset directly from profile maps, a convenience
// for tests and small programs. Item space is sized to the largest ID + 1.
func FromProfiles(name string, profiles []map[uint32]float64, binary bool) *Dataset {
	users := make([]sparse.Vector, len(profiles))
	maxItem := -1
	for i, m := range profiles {
		users[i] = sparse.FromMap(m, binary)
		for id := range m {
			if int(id) > maxItem {
				maxItem = int(id)
			}
		}
	}
	d := &Dataset{Name: name, Users: users, numItems: maxItem + 1}
	d.Compact()
	d.EnsureItemProfiles()
	return d
}

// SortedPresetNames returns preset names for flag help text.
func SortedPresetNames() []string {
	names := make([]string, 0, len(Presets))
	for _, p := range Presets {
		names = append(names, string(p))
	}
	sort.Strings(names)
	return names
}
