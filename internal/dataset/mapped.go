package dataset

// Zero-copy load path: ViewBinary decodes a version-2 dataset file
// straight out of a byte buffer, and OpenMapped does so over a file
// mapping. The ID and weight arenas alias the buffer (on little-endian
// hosts with the sections aligned — see arena.View); only the per-user
// slice headers (O(numUsers), not O(ratings)) and the lazily built
// item-profile index live on the heap.
//
// A mapped dataset supports the full single-writer mutation discipline:
// AddUser and AddRating are copy-on-write at row granularity, so they
// allocate fresh rows on the heap and never write through the mapping.
// Compact, however, would copy every profile back onto heap arenas —
// long-lived maintainers that want to stay zero-copy should avoid it.

import (
	"bytes"
	"fmt"

	"kiff/internal/arena"
)

// ViewBinary decodes a dataset from an in-memory buffer, aliasing the
// buffer wherever the platform allows instead of copying. The returned
// Dataset's profiles are valid only as long as buf is; do not mutate buf
// afterwards. Version-1 input falls back to a heap decode, which imposes
// no lifetime constraint.
func ViewBinary(buf []byte) (*Dataset, error) {
	v, version, err := arena.NewView(buf, datasetMagic)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if version == 1 {
		return ReadBinary(bytes.NewReader(buf))
	}
	if version != datasetVersion {
		return nil, fmt.Errorf("dataset: %w: unsupported version %d", arena.ErrCorrupt, version)
	}
	// decodeV2 runs the same field walk the streaming path uses; through
	// a View its raw sections alias buf (the name is copied out by the
	// string conversion inside, so Name survives the mapping).
	return decodeV2(v)
}

// Mapped couples a zero-copy decoded Dataset with the file mapping that
// backs its profile arenas. Close invalidates the Dataset; a server
// closes it only after the last reader is done (or leaves it open for the
// process lifetime).
type Mapped struct {
	d *Dataset
	m *arena.Mapping
}

// OpenMapped maps the file at path (see arena.OpenMapping for the
// portable fallback) and decodes the dataset in place.
func OpenMapped(path string) (*Mapped, error) {
	m, err := arena.OpenMapping(path)
	if err != nil {
		return nil, err
	}
	d, err := ViewBinary(m.Data())
	if err != nil {
		m.Close()
		return nil, err
	}
	return &Mapped{d: d, m: m}, nil
}

// Dataset returns the decoded dataset, valid until Close.
func (mp *Mapped) Dataset() *Dataset { return mp.d }

// Mapped reports whether the backing storage is a true memory mapping
// (false = the portable read-to-heap fallback).
func (mp *Mapped) Mapped() bool { return mp.m.Mapped() }

// Close releases the mapping. The Dataset (and every profile read from
// it) must not be used afterwards.
func (mp *Mapped) Close() error {
	mp.d = nil
	return mp.m.Close()
}
