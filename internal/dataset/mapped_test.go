package dataset

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"kiff/internal/arena"
	"kiff/internal/sparse"
)

// datasetsEquivalent fails unless a and b expose identical profiles
// (Weight compared bit-for-bit, so implicit and materialized 1.0 ratings
// agree).
func datasetsEquivalent(t *testing.T, a, b *Dataset) {
	t.Helper()
	if a.Name != b.Name || a.NumUsers() != b.NumUsers() || a.NumItems() != b.NumItems() {
		t.Fatalf("shape differs: %s/%d/%d vs %s/%d/%d",
			a.Name, a.NumUsers(), a.NumItems(), b.Name, b.NumUsers(), b.NumItems())
	}
	for u := range a.Users {
		pa, pb := a.Users[u], b.Users[u]
		if pa.Len() != pb.Len() {
			t.Fatalf("user %d: %d vs %d entries", u, pa.Len(), pb.Len())
		}
		for i := range pa.IDs {
			if pa.IDs[i] != pb.IDs[i] {
				t.Fatalf("user %d entry %d: item %d vs %d", u, i, pa.IDs[i], pb.IDs[i])
			}
			if math.Float64bits(pa.Weight(i)) != math.Float64bits(pb.Weight(i)) {
				t.Fatalf("user %d entry %d: weight bits differ", u, i)
			}
		}
	}
}

// TestViewBinaryMatchesReadBinary: the zero-copy decode and the streaming
// decode of the same bytes must agree.
func TestViewBinaryMatchesReadBinary(t *testing.T) {
	for _, fix := range []struct {
		name string
		d    func(t *testing.T) *Dataset
	}{
		{"mixed", codecFixture},
		{"all-binary", func(t *testing.T) *Dataset {
			d, err := New("bin", []sparse.Vector{
				{IDs: []uint32{0, 1}}, {}, {IDs: []uint32{2}},
			}, 3)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
	} {
		t.Run(fix.name, func(t *testing.T) {
			orig := fix.d(t)
			var buf bytes.Buffer
			if err := WriteBinary(&buf, orig); err != nil {
				t.Fatal(err)
			}
			viewed, err := ViewBinary(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			read, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			datasetsEquivalent(t, orig, viewed)
			datasetsEquivalent(t, read, viewed)
			if orig.Binary() != viewed.Binary() {
				t.Fatal("binariness changed through the view")
			}
		})
	}
}

// TestViewBinaryReadsLegacyV1 pins backward compatibility with the
// varint-packed, delta-coded version 1 layout.
func TestViewBinaryReadsLegacyV1(t *testing.T) {
	orig := codecFixture(t)
	raw := encodeV1(t, orig)
	read, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadBinary(v1): %v", err)
	}
	viewed, err := ViewBinary(raw)
	if err != nil {
		t.Fatalf("ViewBinary(v1): %v", err)
	}
	datasetsEquivalent(t, orig, read)
	datasetsEquivalent(t, orig, viewed)
	// v1 preserves per-user binariness exactly.
	for u := range orig.Users {
		if orig.Users[u].IsBinary() != read.Users[u].IsBinary() {
			t.Fatalf("user %d: v1 binariness changed", u)
		}
	}
}

// encodeV1 re-implements the legacy layout (delta-coded IDs, per-user
// weighted bit) so decoder compatibility stays pinned.
func encodeV1(t *testing.T, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := arena.NewWriter(&buf, datasetMagic, 1)
	w.Bytes([]byte(d.Name))
	w.Uvarint(uint64(len(d.Users)))
	w.Uvarint(uint64(d.NumItems()))
	for _, u := range d.Users {
		header := uint64(u.Len()) << 1
		if u.Weights != nil {
			header |= 1
		}
		w.Uvarint(header)
		prev := uint32(0)
		for i, id := range u.IDs {
			if i == 0 {
				w.Uvarint(uint64(id))
			} else {
				w.Uvarint(uint64(id - prev))
			}
			prev = id
		}
		for _, wt := range u.Weights {
			w.Float64(wt)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOpenMapped(t *testing.T) {
	orig := codecFixture(t)
	path := filepath.Join(t.TempDir(), "data.kfd")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mp, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	d := mp.Dataset()
	datasetsEquivalent(t, orig, d)

	// A mapped dataset is fully serviceable: the lazy item index builds,
	// and the copy-on-write mutators work without touching the mapping.
	d.EnsureItemProfiles()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddUser(sparse.Vector{IDs: []uint32{1, 6}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRating(0, 2, 3.5); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The file bytes must be untouched by the mutations above.
	if err := mp.Close(); err != nil {
		t.Fatal(err)
	}
	reread, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reread.Close()
	datasetsEquivalent(t, orig, reread.Dataset())
}

// TestDecodersRejectTrailingData: both decode paths refuse bytes after
// the checksum trailer (a file is exactly one section).
func TestDecodersRejectTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, codecFixture(t)); err != nil {
		t.Fatal(err)
	}
	raw := append(buf.Bytes(), 0xAB)
	if _, err := ReadBinary(bytes.NewReader(raw)); !errors.Is(err, arena.ErrCorrupt) {
		t.Fatalf("ReadBinary accepted trailing data: err = %v", err)
	}
	if _, err := ViewBinary(raw); !errors.Is(err, arena.ErrCorrupt) {
		t.Fatalf("ViewBinary accepted trailing data: err = %v", err)
	}
}

// TestViewBinaryRejectsCorruption mirrors the streaming decoder's
// corruption tests on the zero-copy path.
func TestViewBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, codecFixture(t)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ViewBinary(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if _, err := ViewBinary(bad); !errors.Is(err, arena.ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v", i, err)
		}
	}
}
