package bucket

import (
	"slices"
	"sort"

	"kiff/internal/arena"
)

// bucketize groups the band-b minhash keys into size-bounded buckets and
// returns the member lists as one CSR arena (global user IDs, ascending
// within each bucket).
//
// The grouping runs in three deterministic steps over the (key, user)
// pairs sorted by key then user:
//
//   - cluster: a run of equal keys is one raw cluster — users whose
//     band-b minhash collided, i.e. likely-similar users;
//   - split: a cluster larger than maxSize is cut into near-equal chunks
//     of at most maxSize (an oversized cluster would reintroduce the
//     quadratic blow-up the bucketing exists to avoid);
//   - merge: consecutive small clusters are greedily packed into one
//     bucket while they fit within maxSize. Packing trades a little
//     locality for load balance, and the random co-location it creates
//     is itself useful — Cluster-and-Conquer style, arbitrary co-bucketed
//     pairs seed edges the conquer sweeps then propagate.
func bucketize(sig []uint64, bands, band, maxSize int) *arena.Rows[uint32] {
	n := len(sig) / bands
	order := make([]uint32, n)
	for u := range order {
		order[u] = uint32(u)
	}
	key := func(u uint32) uint64 { return sig[int(u)*bands+band] }
	sort.Slice(order, func(i, j int) bool {
		ki, kj := key(order[i]), key(order[j])
		if ki != kj {
			return ki < kj
		}
		return order[i] < order[j]
	})

	out := arena.NewBuilder[uint32]((n+maxSize-1)/maxSize, n)
	pack := make([]uint32, 0, maxSize)
	flush := func() {
		if len(pack) > 0 {
			slices.Sort(pack)
			out.AppendRow(pack)
			pack = pack[:0]
		}
	}
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && key(order[hi]) == key(order[lo]) {
			hi++
		}
		size := hi - lo
		if size > maxSize {
			// Split: near-equal chunks, each ≤ maxSize.
			flush()
			chunks := (size + maxSize - 1) / maxSize
			for c := 0; c < chunks; c++ {
				clo := lo + c*size/chunks
				chi := lo + (c+1)*size/chunks
				out.AppendRow(order[clo:chi])
			}
		} else {
			// Merge: pack while the cluster still fits.
			if len(pack)+size > maxSize {
				flush()
			}
			pack = append(pack, order[lo:hi]...)
		}
		lo = hi
	}
	flush()
	return out.Rows()
}
