// Package bucket implements the locality-bucketed construction engine:
// a sub-quadratic KNN-graph builder in the Cluster-and-Conquer mold.
// Users are sketched with one minhash per band, grouped into size-bounded
// buckets per band, each bucket is solved exactly with the KIFF
// counting+scoring machinery, and a bounded number of cross-bucket
// neighbor-of-neighbor sweeps repairs the neighborhoods the bucketing
// split apart. Bands × sweeps is the recall-vs-SimEvals knob: both add
// recovered true neighbors at a proportional evaluation cost, while the
// per-bucket work stays O(|U| · BucketSize) per band instead of
// O(candidate pairs) — the change to the cost curve, not its constant.
//
// Every stage is deterministic for a fixed Options.Seed: the sketch is a
// pure hash of (seed, band, item), the bucketizer sorts, and both the
// per-bucket builds and the sweeps score fixed pair sets whose results
// land in knnheap's total order — so the output graph is bit-reproducible
// regardless of scheduling.
package bucket

import (
	"math"

	"kiff/internal/dataset"
	"kiff/internal/parallel"
)

// mix64 is the splitmix64 finalizer: a cheap, statistically strong
// avalanche over 64 bits (same mixer as shard.Owner).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// emptyKey is the minhash of an empty profile. MaxUint64 sorts after
// every real hash, so profile-less users cluster into the trailing
// buckets instead of polluting real ones.
const emptyKey = uint64(math.MaxUint64)

// sketch computes one minhash per (user, band): sig[u*bands+b] is the
// minimum of mix64(bandSalt_b ^ item) over u's items. With one hash row
// per band, two users land in the same band-b cluster with probability
// equal to their profile Jaccard similarity — the locality signal the
// bucketizer groups on. The signature matrix is a flat arena
// (bands-major per user) filled in parallel over user blocks.
func sketch(d *dataset.Dataset, bands int, seed int64, workers int) []uint64 {
	n := d.NumUsers()
	sig := make([]uint64, n*bands)
	salt := make([]uint64, bands)
	for b := range salt {
		salt[b] = mix64(uint64(seed)<<8 + uint64(b))
	}
	parallel.Blocks(n, workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			ids := d.Users[u].IDs
			row := sig[u*bands : (u+1)*bands]
			for b := range row {
				s := salt[b]
				mn := emptyKey
				for _, id := range ids {
					if h := mix64(s ^ uint64(id)); h < mn {
						mn = h
					}
				}
				row[b] = mn
			}
		}
	})
	return sig
}
