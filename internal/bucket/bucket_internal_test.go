package bucket

import (
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Wikipedia.Generate(0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSketchDeterministicAndSeedSensitive(t *testing.T) {
	d := testData(t)
	a := sketch(d, 3, 42, 1)
	b := sketch(d, 3, 42, 4)
	if len(a) != d.NumUsers()*3 {
		t.Fatalf("signature length %d, want %d", len(a), d.NumUsers()*3)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("signature differs across worker counts at %d", i)
		}
	}
	c := sketch(d, 3, 43, 1)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("changing the seed must change the sketch")
	}
}

func TestSketchEmptyProfile(t *testing.T) {
	d, err := dataset.New("empty", make([]sparse.Vector, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sketch(d, 2, 1, 1) {
		if s != emptyKey {
			t.Fatalf("empty profile hashed to %d, want emptyKey", s)
		}
	}
}

// TestBucketizeInvariants checks the partition contract per band: every
// user lands in exactly one bucket, no bucket exceeds the size bound,
// and members are listed in ascending order (the order the per-bucket
// builds and the determinism guarantee rely on).
func TestBucketizeInvariants(t *testing.T) {
	d := testData(t)
	n := d.NumUsers()
	const bands = 4
	sig := sketch(d, bands, 3, 0)
	for _, maxSize := range []int{2, 16, 64, n + 10} {
		for band := 0; band < bands; band++ {
			buckets := bucketize(sig, bands, band, maxSize)
			seen := make([]int, n)
			for i := 0; i < buckets.NumRows(); i++ {
				row := buckets.Row(i)
				if len(row) == 0 {
					t.Fatalf("maxSize=%d band=%d: empty bucket %d", maxSize, band, i)
				}
				if len(row) > maxSize {
					t.Fatalf("maxSize=%d band=%d: bucket %d holds %d users", maxSize, band, i, len(row))
				}
				for j, u := range row {
					seen[u]++
					if j > 0 && row[j-1] >= u {
						t.Fatalf("maxSize=%d band=%d: bucket %d not ascending", maxSize, band, i)
					}
				}
			}
			for u, c := range seen {
				if c != 1 {
					t.Fatalf("maxSize=%d band=%d: user %d in %d buckets", maxSize, band, u, c)
				}
			}
		}
	}
}

func TestCoBucketed(t *testing.T) {
	if coBucketed([]uint32{1, 2, 3}, []uint32{4, 5, 6}) {
		t.Error("disjoint IDs must not be co-bucketed")
	}
	if !coBucketed([]uint32{1, 2, 3}, []uint32{4, 2, 6}) {
		t.Error("matching band must be co-bucketed")
	}
	if coBucketed(nil, nil) {
		t.Error("empty prefix must not be co-bucketed")
	}
}
