package bucket_test

import (
	"bytes"
	"testing"

	"kiff/internal/bruteforce"
	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/similarity"

	"kiff/internal/bucket"
)

// buildBytes runs the bucketed builder and returns the serialized graph
// plus the similarity-evaluation count.
func buildBytes(t *testing.T, d *dataset.Dataset, o engine.Options) ([]byte, int64) {
	t.Helper()
	res, err := engine.Build(bucket.Name, d, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	var buf bytes.Buffer
	if _, err := res.Graph.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.Run.SimEvals
}

// TestBucketedDeterministicForFixedSeed pins the bit-reproducibility
// contract: for a fixed seed the bucketed builder emits the identical
// serialized graph and the identical SimEvals count regardless of the
// worker count. The serialized form covers neighbor IDs, order, and
// bit-exact similarity values.
func TestBucketedDeterministicForFixedSeed(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{K: 8, Seed: 11, Bands: 3, BucketSize: 48, Sweeps: 1}
	ref, refEvals := buildBytes(t, d, opts)
	for _, workers := range []int{1, 3, 0} {
		o := opts
		o.Workers = workers
		got, evals := buildBytes(t, d, o)
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d: serialized graph differs from reference", workers)
		}
		if evals != refEvals {
			t.Errorf("workers=%d: SimEvals = %d, want %d", workers, evals, refEvals)
		}
	}

	// A different seed must reshuffle the bucketing (and hence the graph).
	o := opts
	o.Seed = 12
	if got, _ := buildBytes(t, d, o); bytes.Equal(ref, got) {
		t.Error("changing the seed produced the identical graph bytes")
	}
}

// TestBucketedRecallAndSavings checks the point of the divide-and-conquer
// engine on a small replica: high overlap with the exact graph at a
// fraction of the exact pairwise cost.
func TestBucketedRecallAndSavings(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	res, err := engine.Build(bucket.Name, d, engine.Options{K: k, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	exact := bruteforce.Graph(d, similarity.Cosine{}, k, 0)

	var hit, total int
	for u := 0; u < d.NumUsers(); u++ {
		want := exact.Neighbors(uint32(u))
		got := res.Graph.Neighbors(uint32(u))
		in := make(map[uint32]bool, len(got))
		for _, e := range got {
			in[e.ID] = true
		}
		for _, e := range want {
			total++
			if in[e.ID] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(total)
	if recall < 0.85 {
		t.Errorf("recall = %.3f vs exact graph, want ≥ 0.85", recall)
	}

	n := int64(d.NumUsers())
	exhaustive := n * (n - 1) / 2
	if res.Run.SimEvals >= exhaustive*3/4 {
		t.Errorf("SimEvals = %d, want < 3/4 of exhaustive %d", res.Run.SimEvals, exhaustive)
	}
}

func TestBucketedOptionValidation(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	bads := []engine.Options{
		{K: 2, Bands: -1},
		{K: 2, BucketSize: 1},
		{K: 2, BucketSize: -3},
	}
	for i, o := range bads {
		if _, err := engine.Build(bucket.Name, d, o); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, o)
		}
	}
	// Sweeps < 0 means "no refinement sweeps" and must be accepted.
	if _, err := engine.Build(bucket.Name, d, engine.Options{K: 2, Sweeps: -1}); err != nil {
		t.Errorf("Sweeps=-1 must disable sweeps, not error: %v", err)
	}
}

func TestBucketedEmptyDataset(t *testing.T) {
	d, err := dataset.New("empty", nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Build(bucket.Name, d, engine.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumUsers() != 0 {
		t.Errorf("graph over empty dataset has %d users", res.Graph.NumUsers())
	}
}
