package bucket

import (
	"fmt"
	"sync/atomic"
	"time"

	"kiff/internal/arena"
	"kiff/internal/engine"
	"kiff/internal/knngraph"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Name is the registry key of the locality-bucketed builder.
const Name = "bucketed"

func init() { engine.Register(builder{}) }

const (
	defaultBands      = 4
	defaultBucketSize = 192
	defaultSweeps     = 2
)

type builder struct{}

func (builder) Name() string { return Name }

// Normalize applies the bucketed defaults: 4 bands, buckets of at most
// 192 users, 2 conquer sweeps. A negative Sweeps disables the conquer
// stage entirely (the divide-only ablation).
func (builder) Normalize(o *engine.Options) error {
	if o.Bands == 0 {
		o.Bands = defaultBands
	}
	if o.Bands < 0 {
		return fmt.Errorf("kiff: bucketed: Bands must be ≥ 1, got %d", o.Bands)
	}
	if o.BucketSize == 0 {
		o.BucketSize = defaultBucketSize
	}
	if o.BucketSize < 2 {
		return fmt.Errorf("kiff: bucketed: BucketSize must be ≥ 2, got %d", o.BucketSize)
	}
	switch {
	case o.Sweeps == 0:
		o.Sweeps = defaultSweeps
	case o.Sweeps < 0:
		o.Sweeps = 0
	}
	return nil
}

// Refine runs divide → conquer: sketch and bucketize the population
// (PhasePreprocess), solve every bucket of every band exactly with the
// KIFF counting+scoring core (iteration 0), then repair across bucket
// boundaries with bounded neighbor-of-neighbor sweeps (iterations 1..S).
//
// Every stage scores a pair set that is a pure function of (dataset,
// options): per-bucket builds exhaust their bucket's co-rating pairs
// rather than consulting shared-heap state, and sweeps generate
// candidates from a frozen snapshot of the heaps, never the live ones.
// Combined with knnheap's insertion-order independence, that makes the
// output graph — and the SimEvals count — identical across runs and
// worker counts for a fixed seed.
func (b builder) Refine(s *engine.Session) error {
	o := s.Opts
	n := s.Dataset.NumUsers()
	if n == 0 {
		s.RecordIteration(0, 0)
		return nil
	}

	t0 := time.Now()
	sig := sketch(s.Dataset, o.Bands, o.Seed, o.Workers)
	bandBuckets := make([]*arena.Rows[uint32], o.Bands)
	// bid records every user's bucket ID per band (bands-major per user).
	// Two users were co-bucketed in band b iff their band-b IDs match —
	// the exact-duplicate test that lets later bands and the conquer
	// sweeps skip pairs an earlier stage already scored, without changing
	// the union of scored pairs (and hence without changing the output).
	bid := make([]uint32, n*o.Bands)
	for band := range bandBuckets {
		buckets := bucketize(sig, o.Bands, band, o.BucketSize)
		bandBuckets[band] = buckets
		for i := 0; i < buckets.NumRows(); i++ {
			for _, u := range buckets.Row(i) {
				bid[int(u)*o.Bands+band] = uint32(i)
			}
		}
	}
	s.Wall.Add(runstats.PhasePreprocess, time.Since(t0))

	// Divide: one task per bucket through the bounded work group — bucket
	// sizes are uneven, so contiguous block sharding would load-balance
	// poorly. Scratch states are handed out through a free list so at most
	// `workers` exist, each confined to one task at a time.
	workers := parallel.Workers(o.Workers)
	free := make(chan *bucketWorker, workers)
	for i := 0; i < workers; i++ {
		free <- newBucketWorker(s)
	}
	var changes atomic.Int64
	g := parallel.NewGroup(workers)
	for band, buckets := range bandBuckets {
		for i := 0; i < buckets.NumRows(); i++ {
			members := buckets.Row(i)
			if len(members) < 2 {
				continue
			}
			g.Go(func() error {
				w := <-free
				changes.Add(w.build(s, members, bid, o.Bands, band))
				free <- w
				return nil
			})
		}
	}
	if err := g.Wait(); err != nil {
		return err
	}
	s.RecordIteration(0, changes.Load())

	// Conquer: frozen-snapshot neighbor-of-neighbor sweeps until the
	// budget is spent, the graph stops changing, or MaxIterations bites.
	for sweep := 1; sweep <= o.Sweeps; sweep++ {
		if o.MaxIterations > 0 && s.Run.Iterations >= o.MaxIterations {
			break
		}
		ch := b.sweep(s, bid)
		s.RecordIteration(sweep, ch)
		if ch == 0 {
			break
		}
	}
	return nil
}

// bucketWorker is the per-goroutine scratch of the divide stage. One
// build call solves one bucket: a local inverted index generates every
// within-bucket co-rating pair exactly once (KIFF's counting phase at
// bucket scope), then the batch kernel scores each member against its
// candidates and offers both directions to the shared heaps.
type bucketWorker struct {
	kernel similarity.Batcher
	// itemUsers is the bucket-local inverted index: item → local member
	// indices seen so far. Entries are length-reset between buckets so
	// their capacity is reused; touched lists the keys to reset.
	itemUsers map[uint32][]uint32
	touched   []uint32
	// seen de-duplicates candidates per pivot member (epoch stamps over
	// local indices).
	seen  []uint32
	epoch uint32
	// offs/flat hold the per-member candidate lists (global IDs) between
	// the counting and scoring passes, CSR-style.
	offs   []int32
	flat   []uint32
	scores []float64
}

func newBucketWorker(s *engine.Session) *bucketWorker {
	return &bucketWorker{kernel: s.Batcher(), itemUsers: make(map[uint32][]uint32)}
}

// build solves one bucket of one band and reports the number of heap
// changes. The candidate pass mirrors rcs: member li's candidates are
// the earlier members sharing at least one threshold-passing item, so
// each pair is generated once (pivot = later member); a pair already
// co-bucketed in an earlier band is skipped — band band−1 scored it.
// The surviving pair set is exhausted — no γ budget or β test, whose
// outcome would depend on what other buckets already wrote to the
// shared heaps — which is what keeps the result scheduling-independent.
func (w *bucketWorker) build(s *engine.Session, members []uint32, bid []uint32, bands, band int) int64 {
	minRating := s.Opts.MinRating
	m := len(members)
	if cap(w.seen) < m {
		w.seen = make([]uint32, m)
		w.epoch = 0
	}
	seen := w.seen[:m]

	t := time.Now()
	w.offs = append(w.offs[:0], 0)
	w.flat = w.flat[:0]
	for li, u := range members {
		p := s.Dataset.Users[u]
		bu := bid[int(u)*bands : int(u)*bands+band]
		w.epoch++
		if w.epoch == 0 {
			clear(w.seen)
			w.epoch = 1
		}
		for i, id := range p.IDs {
			if minRating > 0 && p.Weight(i) < minRating {
				continue
			}
			for _, lj := range w.itemUsers[id] {
				if seen[lj] != w.epoch {
					seen[lj] = w.epoch
					v := members[lj]
					if !coBucketed(bu, bid[int(v)*bands:int(v)*bands+band]) {
						w.flat = append(w.flat, v)
					}
				}
			}
			w.itemUsers[id] = append(w.itemUsers[id], uint32(li))
			if len(w.itemUsers[id]) == 1 {
				w.touched = append(w.touched, id)
			}
		}
		w.offs = append(w.offs, int32(len(w.flat)))
	}
	for _, id := range w.touched {
		w.itemUsers[id] = w.itemUsers[id][:0]
	}
	w.touched = w.touched[:0]
	s.Work.Add(runstats.PhaseCandidates, time.Since(t))

	t = time.Now()
	var changes int64
	for li, u := range members {
		cands := w.flat[w.offs[li]:w.offs[li+1]]
		if len(cands) == 0 {
			continue
		}
		if cap(w.scores) < len(cands) {
			w.scores = make([]float64, len(cands))
		}
		scores := w.scores[:len(cands)]
		w.kernel.ScoreInto(scores, u, cands)
		for i, v := range cands {
			sc := scores[i]
			changes += int64(s.Heaps.Update(u, v, sc) + s.Heaps.Update(v, u, sc))
		}
	}
	s.Work.Add(runstats.PhaseSimilarity, time.Since(t))
	return changes
}

// sweep runs one conquer pass over a frozen snapshot of the heaps.
//
// Two sub-steps, both free of any dependence on concurrent writes:
//
//  1. reverse offers — every frozen edge (v → u, sim) is offered to u's
//     heap. The similarity is already on the edge, so this recovers the
//     symmetric closure at zero SimEvals;
//  2. bounded join — for each user u, candidates are the users at
//     undirected distance exactly 2 in the frozen graph (neighbors of
//     in- or out-neighbors, minus direct neighbors), capped at
//     joinBudget·k per user in frozen-graph order; each surviving pair
//     is batch-scored once (pivot = smaller ID) and offered both ways.
func (builder) sweep(s *engine.Session, bid []uint32) int64 {
	o := s.Opts
	n := s.Dataset.NumUsers()

	t := time.Now()
	g := knngraph.FromSet(s.Heaps)
	rev := reverseOf(g)
	s.Wall.Add(runstats.PhaseCandidates, time.Since(t))

	changes := parallel.SumInt64(n, o.Workers, func(_, lo, hi int) int64 {
		var c int64
		for u := lo; u < hi; u++ {
			for _, e := range g.Neighbors(uint32(u)) {
				c += int64(s.Heaps.Update(e.ID, uint32(u), e.Sim))
			}
		}
		return c
	})

	t = time.Now()
	changes += parallel.SumInt64(n, o.Workers, func(_, lo, hi int) int64 {
		w := &sweepWorker{kernel: s.Batcher(), mark: make([]uint32, n)}
		var c int64
		for u := lo; u < hi; u++ {
			c += w.join(s, g, rev, bid, o.Bands, uint32(u))
		}
		return c
	})
	s.Work.Add(runstats.PhaseSimilarity, time.Since(t))
	return changes
}

// coBucketed reports whether two users shared a bucket in any of the
// bands covered by the two ID slices (equal length; a prefix checks
// only earlier bands).
func coBucketed(a, b []uint32) bool {
	for i := range a {
		if a[i] == b[i] {
			return true
		}
	}
	return false
}

// joinBudget bounds a sweep's candidates per user at joinBudget·k —
// what makes a sweep O(|U|·k) similarity evaluations instead of
// O(|U|·k²). The frozen neighbor lists are similarity-sorted, so the
// cap keeps the two-hop extensions of the strongest neighbors.
const joinBudget = 4

// reverseOf inverts a frozen graph's edges into a CSR of in-neighbor
// IDs (ascending — rows are filled in source order).
func reverseOf(g *knngraph.Graph) *arena.Rows[uint32] {
	n := g.NumUsers()
	counts := make([]int, n)
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(uint32(u)) {
			counts[e.ID]++
		}
	}
	f := arena.NewFiller[uint32](counts)
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(uint32(u)) {
			f.Push(int(e.ID), uint32(u))
		}
	}
	return f.Rows()
}

// sweepWorker is the per-goroutine scratch of the conquer stage.
type sweepWorker struct {
	kernel similarity.Batcher
	mark   []uint32
	epoch  uint32
	cands  []uint32
	scores []float64
}

// join gathers and scores u's bounded two-hop candidates against the
// frozen graph. Direct neighbors (either direction) are excluded — their
// pairs already carry a scored edge, re-delivered by the reverse-offer
// step — as are pairs co-bucketed in any band, which the divide stage
// scored; the u-side pivot rule (w > u) scores each cross pair once.
func (w *sweepWorker) join(s *engine.Session, g *knngraph.Graph, rev *arena.Rows[uint32], bid []uint32, bands int, u uint32) int64 {
	w.epoch++
	if w.epoch == 0 {
		clear(w.mark)
		w.epoch = 1
	}
	mark := w.mark
	mark[u] = w.epoch
	bu := bid[int(u)*bands : (int(u)+1)*bands]
	fwd := g.Neighbors(u)
	ru := rev.Row(int(u))
	for _, e := range fwd {
		mark[e.ID] = w.epoch
	}
	for _, v := range ru {
		mark[v] = w.epoch
	}

	budget := joinBudget * s.Opts.K
	w.cands = w.cands[:0]
	gather := func(v uint32) {
		for _, e := range g.Neighbors(v) {
			if len(w.cands) >= budget {
				return
			}
			if wid := e.ID; wid > u && mark[wid] != w.epoch {
				mark[wid] = w.epoch
				if !coBucketed(bu, bid[int(wid)*bands:(int(wid)+1)*bands]) {
					w.cands = append(w.cands, wid)
				}
			}
		}
		for _, wid := range rev.Row(int(v)) {
			if len(w.cands) >= budget {
				return
			}
			if wid > u && mark[wid] != w.epoch {
				mark[wid] = w.epoch
				if !coBucketed(bu, bid[int(wid)*bands:(int(wid)+1)*bands]) {
					w.cands = append(w.cands, wid)
				}
			}
		}
	}
	for _, e := range fwd {
		if len(w.cands) >= budget {
			break
		}
		gather(e.ID)
	}
	for _, v := range ru {
		if len(w.cands) >= budget {
			break
		}
		gather(v)
	}
	if len(w.cands) == 0 {
		return 0
	}

	if cap(w.scores) < len(w.cands) {
		w.scores = make([]float64, len(w.cands))
	}
	scores := w.scores[:len(w.cands)]
	w.kernel.ScoreInto(scores, u, w.cands)
	var c int64
	for i, v := range w.cands {
		sc := scores[i]
		c += int64(s.Heaps.Update(u, v, sc) + s.Heaps.Update(v, u, sc))
	}
	return c
}
