package arena

// Zero-copy counterpart of Reader: a View decodes one checksummed section
// directly from an in-memory byte buffer — typically a file Mapping — and
// hands aligned raw sections out as typed slices that alias the buffer
// instead of copying them through the heap. The checksum is verified once
// over the whole buffer up front (one sequential pass, no allocation), so
// the per-field accessors do no hashing at all.
//
// Aliasing contract: every slice a View returns (Bytes, Raw, Uint32s,
// Int64s, Float64s) points into the buffer handed to NewView and is valid
// only as long as that buffer is — for a Mapping, until Close. Callers
// must treat the views as immutable; writing through them to a read-only
// mapping faults.
//
// Zero-copy requires the host to be little-endian (every Go port except
// wasm big-endian experiments is) and the section start to be 8-byte
// aligned within an 8-byte-aligned buffer (Writer.Align provides the
// former, page-aligned mappings the latter). When either fails the typed
// accessors transparently fall back to an allocate-and-decode path, so
// View is correct everywhere and zero-copy nearly everywhere.

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"unsafe"
)

// HostLittleEndian reports whether the running machine stores integers
// little-endian — the precondition for viewing raw sections without
// byte-swapping. Format-specific viewers (the graph codec's neighbor
// records) consult it before casting.
var HostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Aligned8 reports whether p starts on an 8-byte boundary.
func Aligned8(p []byte) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(p)))%8 == 0
}

// View reads one checksummed section from a byte buffer. Errors are
// sticky, exactly as on Reader.
type View struct {
	buf []byte
	pos int // read cursor
	end int // offset of the checksum trailer
	err error
}

// NewView verifies the framing (length, magic, CRC32 trailer) and returns
// a View positioned after the version field, plus the decoded version.
// The CRC of the whole payload is checked here, once.
func NewView(buf []byte, magic string) (*View, uint64, error) {
	if len(magic) != 4 {
		panic("arena: magic must be 4 bytes")
	}
	v := &View{buf: buf}
	if len(buf) < len(magic)+1+4 {
		return nil, 0, v.fail("buffer of %d bytes is too short for a section", len(buf))
	}
	v.end = len(buf) - 4
	if string(buf[:4]) != magic {
		return nil, 0, v.fail("magic %q, want %q", buf[:4], magic)
	}
	if got, want := binary.LittleEndian.Uint32(buf[v.end:]), crc32.ChecksumIEEE(buf[:v.end]); got != want {
		return nil, 0, v.fail("checksum mismatch: stored %08x, computed %08x", got, want)
	}
	v.pos = 4
	version := v.Uvarint()
	if v.err != nil {
		return nil, 0, v.err
	}
	return v, version, nil
}

// fail records and returns a wrapped ErrCorrupt (sticky).
func (v *View) fail(format string, args ...any) error {
	err := corruptf(format, args...)
	if v.err == nil {
		v.err = err
	}
	return v.err
}

// Err returns the sticky decoding error, if any.
func (v *View) Err() error { return v.err }

// Count returns the payload offset of the cursor — the mirror of
// Reader.Count.
func (v *View) Count() int64 { return int64(v.pos) }

// remaining returns the number of unread payload bytes.
func (v *View) remaining() int { return v.end - v.pos }

// Uvarint reads one LEB128 value.
func (v *View) Uvarint() uint64 {
	if v.err != nil {
		return 0
	}
	x, n := binary.Uvarint(v.buf[v.pos:v.end])
	if n <= 0 {
		v.fail("bad uvarint at offset %d", v.pos)
		return 0
	}
	v.pos += n
	return x
}

// UvarintMax reads one LEB128 value and fails if it exceeds max.
func (v *View) UvarintMax(max uint64, what string) uint64 {
	x := v.Uvarint()
	if v.err == nil && x > max {
		v.fail("%s = %d exceeds %d", what, x, max)
		return 0
	}
	return x
}

// Float64 reads 8 little-endian bytes as IEEE-754 bits.
func (v *View) Float64() float64 {
	if v.err != nil {
		return 0
	}
	if v.remaining() < 8 {
		v.fail("truncated float64 at offset %d", v.pos)
		return 0
	}
	x := math.Float64frombits(binary.LittleEndian.Uint64(v.buf[v.pos:]))
	v.pos += 8
	return x
}

// Bytes reads a length-prefixed byte string of at most max bytes. Unlike
// Reader.Bytes the result aliases the underlying buffer.
func (v *View) Bytes(max uint64) []byte {
	n := v.UvarintMax(max, "byte string length")
	if v.err != nil {
		return nil
	}
	return v.Raw(n)
}

// Align skips the zero padding Writer.Align emitted, failing on non-zero
// padding bytes.
func (v *View) Align(boundary int64) {
	for v.err == nil && int64(v.pos)%boundary != 0 {
		if v.remaining() < 1 {
			v.fail("truncated alignment padding at offset %d", v.pos)
			return
		}
		if v.buf[v.pos] != 0 {
			v.fail("non-zero alignment padding byte %#x at offset %d", v.buf[v.pos], v.pos)
			return
		}
		v.pos++
	}
}

// Raw returns the next n payload bytes as a capacity-clamped view into
// the buffer.
func (v *View) Raw(n uint64) []byte {
	if v.err != nil {
		return nil
	}
	if n > uint64(v.remaining()) {
		v.fail("raw section of %d bytes exceeds the %d remaining", n, v.remaining())
		return nil
	}
	lo, hi := v.pos, v.pos+int(n)
	v.pos = hi
	return v.buf[lo:hi:hi]
}

// Uint32s reads a raw little-endian array of n values. Zero-copy when the
// host is little-endian and the section is 4-byte aligned; decoded into a
// fresh slice otherwise.
func (v *View) Uint32s(n uint64) []uint32 {
	if n > uint64(v.remaining())/4 {
		v.fail("uint32 section of %d values exceeds the %d bytes remaining", n, v.remaining())
	}
	p := v.Raw(n * 4)
	if v.err != nil || n == 0 {
		return nil
	}
	if HostLittleEndian && uintptr(unsafe.Pointer(unsafe.SliceData(p)))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(p))), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out
}

// Int64s reads a raw little-endian array of n values. Zero-copy when the
// host is little-endian and the section is 8-byte aligned.
func (v *View) Int64s(n uint64) []int64 {
	if n > uint64(v.remaining())/8 {
		v.fail("int64 section of %d values exceeds the %d bytes remaining", n, v.remaining())
	}
	p := v.Raw(n * 8)
	if v.err != nil || n == 0 {
		return nil
	}
	if HostLittleEndian && Aligned8(p) {
		return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(p))), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out
}

// Float64s reads a raw array of n little-endian IEEE-754 values.
// Zero-copy when the host is little-endian and the section is 8-byte
// aligned.
func (v *View) Float64s(n uint64) []float64 {
	if n > uint64(v.remaining())/8 {
		v.fail("float64 section of %d values exceeds the %d bytes remaining", n, v.remaining())
	}
	p := v.Raw(n * 8)
	if v.err != nil || n == 0 {
		return nil
	}
	if HostLittleEndian && Aligned8(p) {
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(p))), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out
}

// Close checks that the payload was consumed exactly: a decoder that
// stops early (or ran past into the trailer) mis-parsed the format.
func (v *View) Close() error {
	if v.err != nil {
		return v.err
	}
	if v.pos != v.end {
		return v.fail("payload not fully consumed: cursor at %d of %d", v.pos, v.end)
	}
	return nil
}
