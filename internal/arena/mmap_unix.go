//go:build unix

package arena

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// openMapping maps path read-only via mmap(2). The file descriptor is
// closed immediately after mapping — the mapping keeps the inode alive on
// its own. If mmap itself fails (some network and FUSE filesystems reject
// it), the file is read into the heap instead, so OpenMapping succeeds
// wherever plain reading would.
func openMapping(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("arena: %s is %d bytes, too large to map on this platform", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Read through the descriptor already open, not the path: the
		// file may have been atomically replaced since os.Open, and the
		// fallback must see the same inode the caller opened.
		buf, rerr := io.ReadAll(f)
		if rerr != nil {
			return nil, fmt.Errorf("arena: mmap %s: %w (heap fallback also failed: %v)", path, err, rerr)
		}
		return &Mapping{data: buf}, nil
	}
	return &Mapping{data: data, mapped: true}, nil
}

func (m *Mapping) close() error {
	data, wasMapped := m.data, m.mapped
	m.data, m.mapped = nil, false
	if !wasMapped || data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
