package arena

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"unsafe"
)

// sliceAddr returns the address of a slice's first element, for the
// did-it-copy assertions.
func sliceAddr[T any](s []T) uintptr {
	return uintptr(unsafe.Pointer(unsafe.SliceData(s)))
}

// patchCRC recomputes the trailer after a test mutated payload bytes.
func patchCRC(raw []byte) {
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(raw[:len(raw)-4]))
}

// writeSection emits one section exercising every raw-section feature:
// varint header fields, 8-byte alignment, and one array of each width.
func writeSection(t *testing.T) ([]byte, []int64, []uint32, []float64) {
	t.Helper()
	offsets := []int64{0, 3, 3, 7}
	ids := []uint32{9, 8, 7, 0, 1, 2, math.MaxUint32}
	sims := []float64{1.5, -0.25, math.Pi, math.Inf(1), math.NaN(), 0, -0}
	var buf bytes.Buffer
	w := NewWriter(&buf, "TSV1", 2)
	w.Uvarint(uint64(len(offsets)))
	w.Uvarint(uint64(len(ids)))
	w.Align(8)
	w.Int64s(offsets)
	w.Uint32s(ids)
	w.Align(8)
	w.Float64s(sims)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), offsets, ids, sims
}

func TestViewRoundTrip(t *testing.T) {
	raw, offsets, ids, sims := writeSection(t)
	v, version, err := NewView(raw, "TSV1")
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("version = %d, want 2", version)
	}
	no := v.Uvarint()
	ni := v.Uvarint()
	v.Align(8)
	gotOffsets := v.Int64s(no)
	gotIDs := v.Uint32s(ni)
	v.Align(8)
	gotSims := v.Float64s(ni)
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotOffsets, offsets) || !slices.Equal(gotIDs, ids) {
		t.Fatalf("offsets/ids mismatch: %v %v", gotOffsets, gotIDs)
	}
	for i := range sims {
		if math.Float64bits(gotSims[i]) != math.Float64bits(sims[i]) {
			t.Fatalf("sim %d: bits %x, want %x", i, math.Float64bits(gotSims[i]), math.Float64bits(sims[i]))
		}
	}
}

// TestViewMatchesReader decodes the same section through the streaming
// Reader and the View; both paths must agree exactly.
func TestViewMatchesReader(t *testing.T) {
	raw, offsets, ids, sims := writeSection(t)
	r, _, err := NewReader(bytes.NewReader(raw), "TSV1")
	if err != nil {
		t.Fatal(err)
	}
	no := r.Uvarint()
	ni := r.Uvarint()
	r.Align(8)
	gotOffsets := r.Int64s(no)
	gotIDs := r.Uint32s(ni)
	r.Align(8)
	gotSims := r.Float64s(ni)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(gotOffsets, offsets) || !slices.Equal(gotIDs, ids) {
		t.Fatalf("reader offsets/ids mismatch: %v %v", gotOffsets, gotIDs)
	}
	for i := range sims {
		if math.Float64bits(gotSims[i]) != math.Float64bits(sims[i]) {
			t.Fatalf("reader sim %d bits differ", i)
		}
	}
}

// TestViewZeroCopy pins the tentpole property: on little-endian hosts an
// aligned raw section is returned as a view into the input buffer, not a
// copy.
func TestViewZeroCopy(t *testing.T) {
	if !HostLittleEndian {
		t.Skip("zero-copy views require a little-endian host")
	}
	raw, _, _, _ := writeSection(t)
	if !Aligned8(raw) {
		t.Skip("test buffer not 8-byte aligned (allocator quirk)")
	}
	v, _, err := NewView(raw, "TSV1")
	if err != nil {
		t.Fatal(err)
	}
	no := v.Uvarint()
	ni := v.Uvarint()
	v.Align(8)
	gotOffsets := v.Int64s(no)
	gotIDs := v.Uint32s(ni)
	v.Align(8)
	gotSims := v.Float64s(ni)
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	base := sliceAddr(raw)
	inBuf := func(p uintptr) bool { return p >= base && p < base+uintptr(len(raw)) }
	if !inBuf(sliceAddr(gotOffsets)) {
		t.Error("Int64s copied instead of viewing")
	}
	if !inBuf(sliceAddr(gotIDs)) {
		t.Error("Uint32s copied instead of viewing")
	}
	if !inBuf(sliceAddr(gotSims)) {
		t.Error("Float64s copied instead of viewing")
	}
}

func TestViewRejectsCorruption(t *testing.T) {
	raw, _, _, _ := writeSection(t)

	// Bad magic.
	if _, _, err := NewView(raw, "XXXX"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}
	// Flipped payload byte fails the up-front CRC.
	bad := slices.Clone(raw)
	bad[10] ^= 0x40
	if _, _, err := NewView(bad, "TSV1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v", err)
	}
	// Truncation.
	if _, _, err := NewView(raw[:5], "TSV1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v", err)
	}
	// Oversized claimed section must fail, not panic or over-allocate.
	v, _, err := NewView(raw, "TSV1")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Int64s(1 << 60); got != nil || v.Err() == nil {
		t.Fatalf("oversized section: got %v, err %v", got, v.Err())
	}
}

// TestViewCloseRequiresFullConsumption: a decoder that stops early holds
// a mis-parse; Close must say so.
func TestViewCloseRequiresFullConsumption(t *testing.T) {
	raw, _, _, _ := writeSection(t)
	v, _, err := NewView(raw, "TSV1")
	if err != nil {
		t.Fatal(err)
	}
	v.Uvarint()
	if err := v.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("early close: err = %v", err)
	}
}

func TestMappingRoundTrip(t *testing.T) {
	raw, _, ids, _ := writeSection(t)
	path := filepath.Join(t.TempDir(), "section.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Data(), raw) {
		t.Fatal("mapping contents differ from file")
	}
	v, _, err := NewView(m.Data(), "TSV1")
	if err != nil {
		t.Fatal(err)
	}
	no := v.Uvarint()
	ni := v.Uvarint()
	v.Align(8)
	v.Int64s(no)
	gotIDs := v.Uint32s(ni)
	if !slices.Equal(gotIDs, ids) {
		t.Fatalf("ids via mapping = %v, want %v", gotIDs, ids)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := OpenMapping(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("opening a missing file must fail")
	}
}

func TestMappingEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapping(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(m.Data()) != 0 {
		t.Fatalf("empty file mapped to %d bytes", len(m.Data()))
	}
	if _, _, err := NewView(m.Data(), "TSV1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty view: err = %v", err)
	}
}

// TestReaderAlignRejectsGarbagePadding: padding is part of the format, so
// non-zero filler is corruption even when the CRC was recomputed over it.
func TestReaderAlignRejectsGarbagePadding(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "TSV1", 2)
	w.Uvarint(1)
	w.Align(8)
	w.Int64s([]int64{7})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Locate a padding byte: payload starts at 4 (magic) + 1 (version) + 1
	// (uvarint) = 6; bytes 6 and 7 are padding. Patch one and fix the CRC.
	raw[6] = 0xAB
	patchCRC(raw)
	if _, err := decodeAligned(raw); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reader: garbage padding: err = %v", err)
	}
	v, _, err := NewView(raw, "TSV1")
	if err != nil {
		t.Fatal(err)
	}
	v.Uvarint()
	v.Align(8)
	if v.Err() == nil {
		t.Fatal("view: garbage padding accepted")
	}
}

func decodeAligned(raw []byte) (int64, error) {
	r, _, err := NewReader(bytes.NewReader(raw), "TSV1")
	if err != nil {
		return 0, err
	}
	n := r.Uvarint()
	r.Align(8)
	xs := r.Int64s(n)
	if err := r.Close(); err != nil {
		return 0, err
	}
	return xs[0], nil
}
