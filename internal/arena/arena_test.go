package arena

import (
	"testing"
)

func TestBuilderRoundTrip(t *testing.T) {
	b := NewBuilder[uint32](3, 0)
	rows := [][]uint32{{1, 2, 3}, nil, {9}}
	for _, r := range rows {
		b.AppendRow(r)
	}
	got := b.Rows()
	if got.NumRows() != 3 || got.NNZ() != 4 {
		t.Fatalf("shape: rows=%d nnz=%d", got.NumRows(), got.NNZ())
	}
	for i, want := range rows {
		row := got.Row(i)
		if len(row) != len(want) {
			t.Fatalf("row %d: len %d, want %d", i, len(row), len(want))
		}
		for j := range want {
			if row[j] != want[j] {
				t.Errorf("row %d[%d] = %d, want %d", i, j, row[j], want[j])
			}
		}
	}
}

func TestRowViewsAreCapClamped(t *testing.T) {
	b := NewBuilder[uint32](2, 0)
	b.AppendRow([]uint32{1, 2})
	b.AppendRow([]uint32{3, 4})
	r := b.Rows()
	row0 := r.Row(0)
	_ = append(row0, 99) // must reallocate, not clobber row 1
	if got := r.Row(1)[0]; got != 3 {
		t.Fatalf("append to row 0 bled into row 1: got %d, want 3", got)
	}
	views := r.Views()
	_ = append(views[0], 77)
	if got := r.Row(1)[0]; got != 3 {
		t.Fatalf("append to view 0 bled into row 1: got %d, want 3", got)
	}
}

func TestFiller(t *testing.T) {
	f := NewFiller[uint32]([]int{2, 0, 1})
	f.Push(2, 30)
	f.Push(0, 10)
	f.Push(0, 11)
	r := f.Rows()
	if r.NumRows() != 3 || r.NNZ() != 3 {
		t.Fatalf("shape: rows=%d nnz=%d", r.NumRows(), r.NNZ())
	}
	if got := r.Row(0); got[0] != 10 || got[1] != 11 {
		t.Errorf("row 0 = %v", got)
	}
	if got := r.Row(2); got[0] != 30 {
		t.Errorf("row 2 = %v", got)
	}
	if got := r.Len(1); got != 0 {
		t.Errorf("row 1 len = %d", got)
	}
}

func TestFillerOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow Push did not panic")
		}
	}()
	f := NewFiller[uint32]([]int{1})
	f.Push(0, 1)
	f.Push(0, 2)
}

func TestFillerUnderfillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("underfilled Rows did not panic")
		}
	}()
	f := NewFiller[uint32]([]int{2})
	f.Push(0, 1)
	f.Rows()
}

func TestNewRowsValidates(t *testing.T) {
	if _, err := NewRows([]int64{0, 2}, []uint32{1, 2}); err != nil {
		t.Fatalf("valid rows rejected: %v", err)
	}
	cases := []struct {
		name    string
		offsets []int64
		data    []uint32
	}{
		{"nonzero start", []int64{1, 2}, []uint32{1, 2}},
		{"decreasing", []int64{0, 2, 1}, []uint32{1, 2}},
		{"bad end", []int64{0, 1}, []uint32{1, 2}},
		{"data without offsets", nil, []uint32{1}},
	}
	for _, c := range cases {
		if _, err := NewRows(c.offsets, c.data); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestEmptyRows(t *testing.T) {
	var r Rows[uint32]
	if r.NumRows() != 0 || r.NNZ() != 0 {
		t.Fatalf("zero value not empty")
	}
	b := NewBuilder[uint32](0, 0)
	if got := b.Rows(); got.NumRows() != 0 {
		t.Fatalf("empty builder has %d rows", got.NumRows())
	}
}
