package arena

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "TST1", 3)
	w.Uvarint(42)
	w.Float64(math.Pi)
	w.Float64(math.NaN())
	w.Bytes([]byte("hello"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, version, err := NewReader(bytes.NewReader(buf.Bytes()), "TST1")
	if err != nil {
		t.Fatal(err)
	}
	if version != 3 {
		t.Fatalf("version = %d, want 3", version)
	}
	if got := r.Uvarint(); got != 42 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Errorf("float = %v", got)
	}
	if got := r.Float64(); !math.IsNaN(got) {
		t.Errorf("nan lost: %v", got)
	}
	if got := r.Bytes(100); string(got) != "hello" {
		t.Errorf("bytes = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestCodecDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "TST1", 1)
	w.Uvarint(7)
	w.Bytes([]byte("payload"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		_, _, err := NewReader(bytes.NewReader(raw), "XXXX")
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[6] ^= 0xff
		r, _, err := NewReader(bytes.NewReader(bad), "TST1")
		if err != nil {
			return // corruption already detected at header: fine
		}
		r.Uvarint()
		r.Bytes(100)
		if err := r.Close(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("close err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(raw); cut++ {
			r, _, err := NewReader(bytes.NewReader(raw[:cut]), "TST1")
			if err != nil {
				continue
			}
			r.Uvarint()
			r.Bytes(100)
			if err := r.Close(); err == nil {
				t.Fatalf("truncation at %d undetected", cut)
			}
		}
	})
	t.Run("oversized length field", func(t *testing.T) {
		r, _, err := NewReader(bytes.NewReader(raw), "TST1")
		if err != nil {
			t.Fatal(err)
		}
		r.Uvarint()
		if got := r.Bytes(3); got != nil {
			t.Fatalf("oversized Bytes returned %q", got)
		}
		if r.Err() == nil {
			t.Fatal("oversized length not flagged")
		}
	})
}

func TestPreallocCap(t *testing.T) {
	if got := PreallocCap(10); got != 10 {
		t.Errorf("PreallocCap(10) = %d", got)
	}
	if got := PreallocCap(1 << 40); got != MaxPrealloc {
		t.Errorf("PreallocCap(huge) = %d, want %d", got, MaxPrealloc)
	}
}
