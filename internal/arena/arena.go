// Package arena provides the flat storage spine of the module: contiguous
// compressed-sparse-row (CSR) layouts shared by the dataset's item-profile
// index, the ranked candidate sets of the counting phase, and the KNN
// graph itself.
//
// A Rows[T] holds all rows of a ragged 2-D structure in one backing slice
// plus an offsets array, instead of one heap allocation per row. For the
// build hot path this removes ~|U| allocations per phase and keeps rows
// that are scanned together adjacent in memory — the locality/preparation
// trade the paper's counting phase is all about, applied to the runtime
// representation. Rows are immutable once built; row views are handed out
// with a clamped capacity so an append by a careless caller can never
// bleed into the next row.
//
// Rows are produced either by a Builder (streaming, row at a time, for
// producers that discover row contents on the fly) or by a Filler
// (two-pass counted fill, for producers that know every row length up
// front, like the item-profile inversion).
package arena

import "fmt"

// Rows is an immutable CSR collection of rows of T: one contiguous data
// slice plus per-row offsets. The zero value is an empty collection.
type Rows[T any] struct {
	// offsets has NumRows()+1 entries; row i spans
	// data[offsets[i]:offsets[i+1]]. A nil offsets slice means zero rows.
	offsets []int64
	data    []T
}

// NewRows assembles a Rows from raw offsets and data, validating the CSR
// invariants: offsets non-decreasing, starting at 0 and ending at
// len(data). It takes ownership of both slices.
func NewRows[T any](offsets []int64, data []T) (*Rows[T], error) {
	if len(offsets) == 0 {
		if len(data) != 0 {
			return nil, fmt.Errorf("arena: %d data elements with no offsets", len(data))
		}
		return &Rows[T]{}, nil
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("arena: offsets must start at 0, got %d", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("arena: offsets decrease at %d (%d < %d)", i, offsets[i], offsets[i-1])
		}
	}
	if last := offsets[len(offsets)-1]; last != int64(len(data)) {
		return nil, fmt.Errorf("arena: offsets end at %d, data has %d elements", last, len(data))
	}
	return &Rows[T]{offsets: offsets, data: data}, nil
}

// NumRows returns the number of rows.
func (r *Rows[T]) NumRows() int {
	if len(r.offsets) == 0 {
		return 0
	}
	return len(r.offsets) - 1
}

// NNZ returns the total number of elements across all rows.
func (r *Rows[T]) NNZ() int { return len(r.data) }

// Len returns the length of row i.
func (r *Rows[T]) Len(i int) int { return int(r.offsets[i+1] - r.offsets[i]) }

// Row returns row i as a capacity-clamped view into the shared backing
// array: appending to the returned slice reallocates instead of
// overwriting the next row.
func (r *Rows[T]) Row(i int) []T {
	lo, hi := r.offsets[i], r.offsets[i+1]
	return r.data[lo:hi:hi]
}

// Views materializes every row view in one [][]T. The per-row data stays
// shared; only the slice-header array is allocated.
func (r *Rows[T]) Views() [][]T {
	out := make([][]T, r.NumRows())
	for i := range out {
		out[i] = r.Row(i)
	}
	return out
}

// Offsets exposes the raw offsets array (do not mutate).
func (r *Rows[T]) Offsets() []int64 { return r.offsets }

// Data exposes the raw backing array (do not mutate).
func (r *Rows[T]) Data() []T { return r.data }

// Builder accumulates rows one at a time into a single backing array.
// It is not safe for concurrent use; parallel producers use one Builder
// per worker block.
type Builder[T any] struct {
	offsets []int64
	data    []T
}

// NewBuilder returns a Builder with capacity hints: rowsHint rows and
// nnzHint total elements (either may be 0).
func NewBuilder[T any](rowsHint, nnzHint int) *Builder[T] {
	b := &Builder[T]{offsets: make([]int64, 1, rowsHint+1)}
	if nnzHint > 0 {
		b.data = make([]T, 0, nnzHint)
	}
	return b
}

// AppendRow adds one complete row (row contents are copied).
func (b *Builder[T]) AppendRow(row []T) {
	b.data = append(b.data, row...)
	b.offsets = append(b.offsets, int64(len(b.data)))
}

// NumRows returns the number of rows appended so far.
func (b *Builder[T]) NumRows() int { return len(b.offsets) - 1 }

// Rows freezes the builder into an immutable Rows. The builder must not
// be used afterwards.
func (b *Builder[T]) Rows() *Rows[T] {
	return &Rows[T]{offsets: b.offsets, data: b.data}
}

// Filler builds a Rows whose row lengths are known up front (the counts
// array), filling rows in any order — the classic two-pass CSR
// construction used to invert the user→item edges into item profiles.
type Filler[T any] struct {
	offsets []int64
	next    []int64
	data    []T
}

// NewFiller allocates a Filler for rows of the given lengths.
func NewFiller[T any](counts []int) *Filler[T] {
	f := &Filler[T]{
		offsets: make([]int64, len(counts)+1),
		next:    make([]int64, len(counts)),
	}
	total := int64(0)
	for i, c := range counts {
		f.offsets[i] = total
		f.next[i] = total
		total += int64(c)
	}
	f.offsets[len(counts)] = total
	f.data = make([]T, total)
	return f
}

// Push appends v to row i. Pushing more elements than the row's declared
// count panics (it would corrupt the neighboring row).
func (f *Filler[T]) Push(i int, v T) {
	if f.next[i] == f.offsets[i+1] {
		panic("arena: Filler row overflow")
	}
	f.data[f.next[i]] = v
	f.next[i]++
}

// Rows freezes the filler. Underfilled rows are an error in every current
// producer, so Rows panics if any row was not filled to its declared
// count.
func (f *Filler[T]) Rows() *Rows[T] {
	for i := range f.next {
		if f.next[i] != f.offsets[i+1] {
			panic(fmt.Sprintf("arena: Filler row %d underfilled (%d of %d)", i, f.next[i]-f.offsets[i], f.offsets[i+1]-f.offsets[i]))
		}
	}
	return &Rows[T]{offsets: f.offsets, data: f.data}
}
