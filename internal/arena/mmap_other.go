//go:build !unix

package arena

import "os"

// openMapping on platforms without syscall.Mmap (windows, wasm, plan9)
// reads the file into the heap. Same Mapping semantics, no zero-copy —
// Mapped reports false so callers and tests can tell.
func openMapping(path string) (*Mapping, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: buf}, nil
}

func (m *Mapping) close() error {
	m.data, m.mapped = nil, false
	return nil
}
