package arena

// Mapping is a read-only view of a whole file, memory-mapped where the
// platform supports it (see mmap_unix.go) and read into the heap where it
// does not (mmap_other.go) — same semantics either way, so callers never
// branch on the platform. A mapped load gives the zero-copy cold start
// the serving path wants: decoding a KFG1/KFD1 checkpoint through a
// Mapping plus a View allocates O(1) memory regardless of file size, and
// the page cache backing the mapping is shared across every process
// serving the same checkpoint.
//
// Close unmaps the file. Every slice decoded out of the mapping (graph
// neighbor lists, dataset profiles) dies with it: closing a mapping that
// a live Graph or Dataset still views is a use-after-free, so serving
// code closes only after the last reader is gone (or never, letting
// process exit clean up).
type Mapping struct {
	data   []byte
	mapped bool
}

// OpenMapping opens path as a read-only Mapping. On platforms (or
// filesystems) without working mmap the file is read into the heap
// instead; Mapped reports which happened.
func OpenMapping(path string) (*Mapping, error) {
	return openMapping(path)
}

// Data returns the file contents. Treat as immutable: the backing pages
// may be write-protected.
func (m *Mapping) Data() []byte { return m.data }

// Mapped reports whether Data is a true memory mapping (false = heap
// fallback).
func (m *Mapping) Mapped() bool { return m.mapped }

// Close releases the mapping. No slice decoded from Data may be used
// afterwards. Close is idempotent.
func (m *Mapping) Close() error { return m.close() }
