package arena

// Binary section codec shared by the on-disk formats of the module
// (knngraph, dataset). Every file is framed as:
//
//	[4]byte magic   — format identifier, caller-chosen
//	uvarint version — format version
//	payload         — format-specific fields written through Writer
//	[4]byte crc32   — IEEE CRC of everything before it, little-endian
//
// The Writer computes the checksum as it writes; the Reader re-computes
// it as it reads and verifies it against the trailer in Close. Decoders
// are written so corrupt or adversarial inputs produce errors, never
// panics or unbounded allocations: every length field is consumed
// incrementally (each decoded element costs at least one input byte), and
// pre-allocations are capped by MaxPrealloc.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt tags every decoding failure caused by malformed input (bad
// magic, bad checksum, impossible lengths, truncation).
var ErrCorrupt = errors.New("corrupt input")

// MaxPrealloc caps any single allocation a decoder performs before it has
// consumed input bytes proving the claimed size plausible.
const MaxPrealloc = 1 << 20

// PreallocCap clamps a claimed element count to a safe initial capacity;
// decoders allocate min(n, MaxPrealloc) and grow by appending, so an
// adversarial length field cannot force a huge allocation.
func PreallocCap(n uint64) int {
	if n > MaxPrealloc {
		return MaxPrealloc
	}
	return int(n)
}

// Writer writes one checksummed section. Errors are sticky and surfaced
// by Close.
type Writer struct {
	bw  *bufio.Writer
	crc hash.Hash32
	n   int64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter starts a section: it writes the 4-byte magic and the version
// immediately.
func NewWriter(w io.Writer, magic string, version uint64) *Writer {
	if len(magic) != 4 {
		panic("arena: magic must be 4 bytes")
	}
	sw := &Writer{bw: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	sw.write([]byte(magic))
	sw.Uvarint(version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc.Write(p)
	w.n += int64(len(p))
}

// Uvarint writes x in LEB128 form.
func (w *Writer) Uvarint(x uint64) {
	n := binary.PutUvarint(w.buf[:], x)
	w.write(w.buf[:n])
}

// Float64 writes the IEEE-754 bits of f, little-endian — bit-exact
// round-trips, NaN payloads included.
func (w *Writer) Float64(f float64) {
	binary.LittleEndian.PutUint64(w.buf[:8], math.Float64bits(f))
	w.write(w.buf[:8])
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.write(p)
}

// Count returns the number of payload bytes written so far (magic and
// version included, checksum excluded).
func (w *Writer) Count() int64 { return w.n }

// Close appends the checksum trailer and flushes. It returns the first
// error encountered, if any.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], w.crc.Sum32())
	if _, err := w.bw.Write(tr[:]); err != nil {
		return err
	}
	w.n += 4
	return w.bw.Flush()
}

// Reader reads one checksummed section. Errors are sticky: after the
// first failure every accessor returns zero values and Err/Close report
// the failure.
type Reader struct {
	br  *bufio.Reader
	crc hash.Hash32
	err error
	// scratch buffers for checksummed reads: passing a stack array into
	// the hash.Hash32 interface would force a heap allocation per call.
	b1 [1]byte
	b8 [8]byte
}

// NewReader checks the magic and returns the section reader plus the
// decoded version.
func NewReader(r io.Reader, magic string) (*Reader, uint64, error) {
	if len(magic) != 4 {
		panic("arena: magic must be 4 bytes")
	}
	sr := &Reader{br: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var m [4]byte
	sr.readFull(m[:])
	if sr.err != nil {
		return nil, 0, sr.fail("reading magic: %v", sr.err)
	}
	if string(m[:]) != magic {
		return nil, 0, sr.fail("magic %q, want %q", m, magic)
	}
	version := sr.Uvarint()
	if sr.err != nil {
		return nil, 0, sr.err
	}
	return sr, version, nil
}

// fail records and returns a wrapped ErrCorrupt.
func (r *Reader) fail(format string, args ...any) error {
	err := fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	if r.err == nil {
		r.err = err
	}
	return r.err
}

func (r *Reader) readFull(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.br, p); err != nil {
		r.fail("truncated: %v", err)
		return
	}
	r.crc.Write(p)
}

// Err returns the sticky decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Uvarint reads one LEB128 value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(checksummedByteReader{r})
	if err != nil {
		r.fail("bad uvarint: %v", err)
		return 0
	}
	return x
}

// UvarintMax reads one LEB128 value and fails if it exceeds max — for
// length fields with a structurally known bound.
func (r *Reader) UvarintMax(max uint64, what string) uint64 {
	x := r.Uvarint()
	if r.err == nil && x > max {
		r.fail("%s = %d exceeds %d", what, x, max)
		return 0
	}
	return x
}

// Float64 reads 8 little-endian bytes as IEEE-754 bits.
func (r *Reader) Float64() float64 {
	r.readFull(r.b8[:])
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(r.b8[:]))
}

// Bytes reads a length-prefixed byte string of at most max bytes.
func (r *Reader) Bytes(max uint64) []byte {
	n := r.UvarintMax(max, "byte string length")
	if r.err != nil {
		return nil
	}
	p := make([]byte, int(n))
	r.readFull(p)
	if r.err != nil {
		return nil
	}
	return p
}

// Close verifies the checksum trailer. Every decoder must call it after
// consuming the payload and before trusting the decoded value.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc.Sum32()
	var tr [4]byte
	if _, err := io.ReadFull(r.br, tr[:]); err != nil {
		return r.fail("truncated checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != want {
		return r.fail("checksum mismatch: stored %08x, computed %08x", got, want)
	}
	return nil
}

// checksummedByteReader adapts Reader to io.ByteReader for ReadUvarint,
// keeping the CRC in sync byte by byte.
type checksummedByteReader struct{ r *Reader }

func (b checksummedByteReader) ReadByte() (byte, error) {
	c, err := b.r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	b.r.b1[0] = c
	b.r.crc.Write(b.r.b1[:])
	return c, nil
}
