package arena

// Binary section codec shared by the on-disk formats of the module
// (knngraph, dataset); docs/FORMATS.md is the normative specification of
// the framing and of both formats built on it. Every file is framed as:
//
//	[4]byte magic   — format identifier, caller-chosen
//	uvarint version — format version
//	payload         — format-specific fields written through Writer
//	[4]byte crc32   — IEEE CRC of everything before it, little-endian
//
// The Writer computes the checksum as it writes; the Reader re-computes
// it as it reads and verifies it against the trailer in Close. Decoders
// are written so corrupt or adversarial inputs produce errors, never
// panics or unbounded allocations: every length field is consumed
// incrementally (each decoded element costs at least one input byte), and
// pre-allocations are capped by MaxPrealloc.
//
// Payloads come in two families. Varint-framed fields (Uvarint, Bytes,
// Float64) are compact but must be decoded element by element. Aligned
// raw sections (Align + Uint32s/Int64s/Float64s/Raw) trade a little size
// for layout: they are fixed-width little-endian arrays starting on an
// 8-byte boundary, which is what lets View decode them as zero-copy typed
// slices straight out of a file mapping (see view.go and mmap_unix.go).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// ErrCorrupt tags every decoding failure caused by malformed input (bad
// magic, bad checksum, impossible lengths, truncation).
var ErrCorrupt = errors.New("corrupt input")

// MaxPrealloc caps any single allocation a decoder performs before it has
// consumed input bytes proving the claimed size plausible.
const MaxPrealloc = 1 << 20

// Decoder is the accessor set shared by Reader (streaming, heap-copying)
// and View (zero-copy from a buffer). Format decoders written against it
// run unchanged on both paths, which keeps the two from drifting apart —
// the property the codec fuzzers enforce from the outside. Sections whose
// two paths must genuinely differ (e.g. chunked adversarial-safe record
// decoding vs. an in-place cast) stay outside the interface.
type Decoder interface {
	// Uvarint reads one LEB128 value.
	Uvarint() uint64
	// UvarintMax reads one LEB128 value, failing if it exceeds max.
	UvarintMax(max uint64, what string) uint64
	// Float64 reads one little-endian IEEE-754 value.
	Float64() float64
	// Bytes reads a length-prefixed byte string of at most max bytes
	// (Reader copies; View returns a view into its buffer).
	Bytes(max uint64) []byte
	// Align consumes zero padding up to a boundary multiple of the
	// payload offset.
	Align(boundary int64)
	// Uint32s, Int64s and Float64s read raw little-endian arrays of n
	// values (Reader decodes into fresh slices; View aliases its buffer
	// where the platform allows).
	Uint32s(n uint64) []uint32
	Int64s(n uint64) []int64
	Float64s(n uint64) []float64
	// Count returns the payload offset consumed so far.
	Count() int64
	// Err returns the sticky decoding error, if any.
	Err() error
	// Close verifies the section's end (checksum and framing).
	Close() error
}

var (
	_ Decoder = (*Reader)(nil)
	_ Decoder = (*View)(nil)
)

// PreallocCap clamps a claimed element count to a safe initial capacity;
// decoders allocate min(n, MaxPrealloc) and grow by appending, so an
// adversarial length field cannot force a huge allocation.
func PreallocCap(n uint64) int {
	if n > MaxPrealloc {
		return MaxPrealloc
	}
	return int(n)
}

// rawChunkBytes sizes the scratch buffers the raw-section codecs convert
// through: big enough to amortize call overhead, small enough to stay
// cache-resident.
const rawChunkBytes = 8192

// Writer writes one checksummed section. Errors are sticky and surfaced
// by Close.
type Writer struct {
	bw    *bufio.Writer
	crc   hash.Hash32
	n     int64
	err   error
	buf   [binary.MaxVarintLen64]byte
	chunk []byte // lazily allocated raw-section scratch
}

// NewWriter starts a section: it writes the 4-byte magic and the version
// immediately.
func NewWriter(w io.Writer, magic string, version uint64) *Writer {
	if len(magic) != 4 {
		panic("arena: magic must be 4 bytes")
	}
	sw := &Writer{bw: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	sw.write([]byte(magic))
	sw.Uvarint(version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc.Write(p)
	w.n += int64(len(p))
}

// Uvarint writes x in LEB128 form.
func (w *Writer) Uvarint(x uint64) {
	n := binary.PutUvarint(w.buf[:], x)
	w.write(w.buf[:n])
}

// Float64 writes the IEEE-754 bits of f, little-endian — bit-exact
// round-trips, NaN payloads included.
func (w *Writer) Float64(f float64) {
	binary.LittleEndian.PutUint64(w.buf[:8], math.Float64bits(f))
	w.write(w.buf[:8])
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.write(p)
}

// Raw writes p verbatim (checksummed like everything else). Callers that
// assemble fixed-width records themselves (the graph codec's neighbor
// records) use it to emit whole chunks at a time.
func (w *Writer) Raw(p []byte) { w.write(p) }

// Align pads the section with zero bytes until the payload offset
// (Count) is a multiple of boundary. Raw sections that View hands out as
// typed slices must start 8-byte aligned, so that the slice view is
// correctly aligned whenever the backing buffer is (mappings are
// page-aligned).
func (w *Writer) Align(boundary int64) {
	var zero [8]byte
	for w.err == nil && w.n%boundary != 0 {
		pad := boundary - w.n%boundary
		if pad > int64(len(zero)) {
			pad = int64(len(zero))
		}
		w.write(zero[:pad])
	}
}

// chunkBuf returns the lazily allocated scratch buffer shared by the raw
// section writers, so bulk sections cost one bufio copy per chunk instead
// of one write call per element.
func (w *Writer) chunkBuf() []byte {
	if w.chunk == nil {
		w.chunk = make([]byte, rawChunkBytes)
	}
	return w.chunk
}

// Uint32s writes xs as a raw little-endian array. Call Align(8) first
// when the section is meant to be viewed from a mapping.
func (w *Writer) Uint32s(xs []uint32) {
	buf := w.chunkBuf()
	for len(xs) > 0 && w.err == nil {
		n := min(len(xs), len(buf)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], xs[i])
		}
		w.write(buf[:4*n])
		xs = xs[n:]
	}
}

// Int64s writes xs as a raw little-endian array (two's complement).
func (w *Writer) Int64s(xs []int64) {
	buf := w.chunkBuf()
	for len(xs) > 0 && w.err == nil {
		n := min(len(xs), len(buf)/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], uint64(xs[i]))
		}
		w.write(buf[:8*n])
		xs = xs[n:]
	}
}

// Float64s writes xs as a raw array of little-endian IEEE-754 bits —
// bit-exact round-trips, like Float64.
func (w *Writer) Float64s(xs []float64) {
	buf := w.chunkBuf()
	for len(xs) > 0 && w.err == nil {
		n := min(len(xs), len(buf)/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(xs[i]))
		}
		w.write(buf[:8*n])
		xs = xs[n:]
	}
}

// Count returns the number of payload bytes written so far (magic and
// version included, checksum excluded).
func (w *Writer) Count() int64 { return w.n }

// Close appends the checksum trailer and flushes. It returns the first
// error encountered, if any.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], w.crc.Sum32())
	if _, err := w.bw.Write(tr[:]); err != nil {
		return err
	}
	w.n += 4
	return w.bw.Flush()
}

// Reader reads one checksummed section. Errors are sticky: after the
// first failure every accessor returns zero values and Err/Close report
// the failure.
type Reader struct {
	br  *bufio.Reader
	crc hash.Hash32
	n   int64
	err error
	// scratch buffers for checksummed reads: passing a stack array into
	// the hash.Hash32 interface would force a heap allocation per call.
	b1    [1]byte
	b8    [8]byte
	chunk []byte // lazily allocated raw-section scratch
}

// NewReader checks the magic and returns the section reader plus the
// decoded version.
func NewReader(r io.Reader, magic string) (*Reader, uint64, error) {
	if len(magic) != 4 {
		panic("arena: magic must be 4 bytes")
	}
	sr := &Reader{br: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var m [4]byte
	sr.readFull(m[:])
	if sr.err != nil {
		return nil, 0, sr.fail("reading magic: %v", sr.err)
	}
	if string(m[:]) != magic {
		return nil, 0, sr.fail("magic %q, want %q", m, magic)
	}
	version := sr.Uvarint()
	if sr.err != nil {
		return nil, 0, sr.err
	}
	return sr, version, nil
}

// corruptf wraps ErrCorrupt with a formatted description.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// fail records and returns a wrapped ErrCorrupt.
func (r *Reader) fail(format string, args ...any) error {
	err := corruptf(format, args...)
	if r.err == nil {
		r.err = err
	}
	return r.err
}

func (r *Reader) readFull(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.br, p); err != nil {
		r.fail("truncated: %v", err)
		return
	}
	r.crc.Write(p)
	r.n += int64(len(p))
}

// Count returns the number of payload bytes consumed so far (magic and
// version included) — the mirror of Writer.Count, used to locate
// alignment padding.
func (r *Reader) Count() int64 { return r.n }

// Err returns the sticky decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Uvarint reads one LEB128 value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(checksummedByteReader{r})
	if err != nil {
		r.fail("bad uvarint: %v", err)
		return 0
	}
	return x
}

// UvarintMax reads one LEB128 value and fails if it exceeds max — for
// length fields with a structurally known bound.
func (r *Reader) UvarintMax(max uint64, what string) uint64 {
	x := r.Uvarint()
	if r.err == nil && x > max {
		r.fail("%s = %d exceeds %d", what, x, max)
		return 0
	}
	return x
}

// Float64 reads 8 little-endian bytes as IEEE-754 bits.
func (r *Reader) Float64() float64 {
	r.readFull(r.b8[:])
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(r.b8[:]))
}

// Bytes reads a length-prefixed byte string of at most max bytes.
func (r *Reader) Bytes(max uint64) []byte {
	n := r.UvarintMax(max, "byte string length")
	if r.err != nil {
		return nil
	}
	p := make([]byte, int(n))
	r.readFull(p)
	if r.err != nil {
		return nil
	}
	return p
}

// Raw reads exactly len(p) bytes into p (the mirror of Writer.Raw).
func (r *Reader) Raw(p []byte) { r.readFull(p) }

// Align consumes the zero padding Writer.Align emitted: it skips bytes
// until Count is a multiple of boundary, failing on non-zero padding
// (which can only come from a corrupt or misframed file).
func (r *Reader) Align(boundary int64) {
	for r.err == nil && r.n%boundary != 0 {
		r.readFull(r.b1[:])
		if r.err == nil && r.b1[0] != 0 {
			r.fail("non-zero alignment padding byte %#x", r.b1[0])
		}
	}
}

// chunkBuf returns the lazily allocated scratch buffer shared by the raw
// section readers.
func (r *Reader) chunkBuf() []byte {
	if r.chunk == nil {
		r.chunk = make([]byte, rawChunkBytes)
	}
	return r.chunk
}

// Uint32s reads a raw little-endian array of n values into a fresh slice.
// The read is chunked, so a lying length field fails on truncation having
// allocated no more than a constant factor of the input actually present.
func (r *Reader) Uint32s(n uint64) []uint32 {
	out := make([]uint32, 0, PreallocCap(n))
	buf := r.chunkBuf()
	for n > 0 && r.err == nil {
		c := min(n, uint64(len(buf)/4))
		r.readFull(buf[:4*c])
		if r.err != nil {
			return nil
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, binary.LittleEndian.Uint32(buf[4*i:]))
		}
		n -= c
	}
	return out
}

// Int64s reads a raw little-endian array of n values into a fresh slice.
func (r *Reader) Int64s(n uint64) []int64 {
	out := make([]int64, 0, PreallocCap(n))
	buf := r.chunkBuf()
	for n > 0 && r.err == nil {
		c := min(n, uint64(len(buf)/8))
		r.readFull(buf[:8*c])
		if r.err != nil {
			return nil
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		n -= c
	}
	return out
}

// Float64s reads a raw array of n little-endian IEEE-754 values into a
// fresh slice, bit-exactly.
func (r *Reader) Float64s(n uint64) []float64 {
	out := make([]float64, 0, PreallocCap(n))
	buf := r.chunkBuf()
	for n > 0 && r.err == nil {
		c := min(n, uint64(len(buf)/8))
		r.readFull(buf[:8*c])
		if r.err != nil {
			return nil
		}
		for i := uint64(0); i < c; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
		}
		n -= c
	}
	return out
}

// Close verifies the checksum trailer and that the trailer ends the
// stream — a file is exactly one section, so trailing bytes are
// corruption (and View, which anchors the checksum at the end of the
// buffer, could never accept them anyway; the decoders must agree).
// Every decoder must call Close after consuming the payload and before
// trusting the decoded value.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc.Sum32()
	var tr [4]byte
	if _, err := io.ReadFull(r.br, tr[:]); err != nil {
		return r.fail("truncated checksum: %v", err)
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != want {
		return r.fail("checksum mismatch: stored %08x, computed %08x", got, want)
	}
	if _, err := r.br.ReadByte(); err != io.EOF {
		return r.fail("trailing data after the checksum trailer")
	}
	return nil
}

// checksummedByteReader adapts Reader to io.ByteReader for ReadUvarint,
// keeping the CRC in sync byte by byte.
type checksummedByteReader struct{ r *Reader }

func (b checksummedByteReader) ReadByte() (byte, error) {
	c, err := b.r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	b.r.b1[0] = c
	b.r.crc.Write(b.r.b1[:])
	b.r.n++
	return c, nil
}
