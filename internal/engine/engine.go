// Package engine is the unified builder engine behind every KNN-graph
// construction algorithm in this repository. It factors the plumbing the
// four algorithm packages used to duplicate — option normalization,
// metric preparation, heap allocation, similarity counting, per-iteration
// traces, and run finalization — into one place, and exposes a registry
// so new algorithms plug in without touching the dispatch sites.
//
// A construction run flows through four stages:
//
//	normalize — shared validation (Options.normalize) followed by the
//	            builder's algorithm-specific defaults (Builder.Normalize);
//	prepare   — the engine binds the metric to the dataset, wraps it with
//	            the evaluation counter, and allocates the bounded k-heaps
//	            (newSession);
//	refine    — the builder's construction loop proper (Builder.Refine),
//	            which reads the prepared Session and drives the heaps;
//	finalize  — the engine snapshots the heaps into a Graph and assembles
//	            the runstats.Run cost record (Session.finalize).
//
// Algorithm packages register themselves from an init function; importing
// kiff/internal/core, kiff/internal/nndescent, kiff/internal/hyrec or
// kiff/internal/bruteforce is what populates the registry.
package engine

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/knnheap"
	"kiff/internal/parallel"
	"kiff/internal/rcs"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Options is the union of the parameters the registered builders consume.
// Shared fields (K, Metric, Workers, Seed, MaxIterations, Hook) apply to
// every builder; the rest are read by the builders named in their
// comments and ignored elsewhere. The zero value of every field selects
// that builder's paper default.
type Options struct {
	// K is the neighborhood size. Mandatory (≥ 1).
	K int
	// Metric is the similarity measure; nil selects cosine, the paper's
	// default.
	Metric similarity.Metric
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// Seed drives every randomized component (initial graphs, shuffles).
	Seed int64
	// MaxIterations caps the refinement loop as a safety valve
	// (0 = unlimited).
	MaxIterations int
	// Hook, when non-nil, observes every refinement iteration (Fig 8
	// convergence traces).
	Hook runstats.IterHook

	// Gamma (KIFF) is the per-iteration candidate budget: 0 selects the
	// paper's 2k, negative means ∞ (exhaust the RCSs in one iteration,
	// yielding the exact graph, §III-D).
	Gamma int
	// Beta (KIFF, HyRec) is the termination threshold on average
	// neighborhood changes per user: 0 selects the paper's 0.001, negative
	// disables the threshold entirely — KIFF then iterates until its
	// candidate sets are exhausted (the exact mode); HyRec has no such
	// exhaustion point and rejects a negative Beta unless MaxIterations
	// bounds the loop.
	Beta float64
	// Delta (NN-Descent) is the termination threshold: stop when
	// per-iteration changes < Delta·K·|U| (0 selects the original 0.001).
	Delta float64
	// Sample (NN-Descent) is the ρ sampling rate of the original algorithm
	// in (0, 1]; 0 selects 1 (no sampling, the paper's configuration).
	Sample float64
	// R (HyRec) is the number of random users added to each candidate set
	// per iteration (paper default 0).
	R int
	// MinRating (KIFF) forwards the §VII candidate-insertion threshold to
	// the counting phase (0 disables it).
	MinRating float64
	// RandomOrderRCS (KIFF) shuffles each candidate set instead of ranking
	// it by shared-item count (ablation switch).
	RandomOrderRCS bool

	// Bands (bucketed) is the number of independent minhash bucketings the
	// locality-bucketed builder runs; each band partitions the population
	// once and builds per-bucket KNN within it. 0 selects 4. Together with
	// Sweeps this is the recall-vs-SimEvals knob: more bands recover more
	// true neighbors at proportionally more similarity evaluations.
	Bands int
	// BucketSize (bucketed) bounds the per-bucket population; buckets are
	// what keeps per-band construction O(|U|·BucketSize) instead of
	// O(candidate pairs). 0 selects 192.
	BucketSize int
	// Sweeps (bucketed) is the number of cross-bucket neighbor-of-neighbor
	// refinement passes after the per-bucket builds (0 selects 2, negative
	// disables refinement).
	Sweeps int
}

// normalize applies the validation every builder shares. Algorithm
// defaults are applied afterwards by Builder.Normalize.
func (o *Options) normalize() error {
	if o.K < 1 {
		return fmt.Errorf("kiff: K must be ≥ 1, got %d", o.K)
	}
	if o.Metric == nil {
		o.Metric = similarity.Cosine{}
	}
	if o.MaxIterations < 0 {
		return errors.New("kiff: MaxIterations must be ≥ 0")
	}
	if math.IsNaN(o.Beta) || math.IsNaN(o.Delta) || math.IsNaN(o.Sample) {
		return errors.New("kiff: thresholds must not be NaN")
	}
	if o.MinRating < 0 {
		return errors.New("kiff: MinRating must be ≥ 0")
	}
	return nil
}

// Builder is a KNN-graph construction algorithm plugged into the engine.
type Builder interface {
	// Name is the registry key and the Run.Algorithm label.
	Name() string
	// Normalize applies algorithm-specific defaults and validation on top
	// of the shared normalization.
	Normalize(o *Options) error
	// Refine runs the construction loop against the prepared session: it
	// reads s.Opts, evaluates pairs through s.Sim, and drives s.Heaps.
	Refine(s *Session) error
}

// Session is the prepared state of one construction run — the engine's
// "prepare" stage output, handed to Builder.Refine.
type Session struct {
	// Dataset is the input.
	Dataset *dataset.Dataset
	// Opts arrive fully normalized.
	Opts Options
	// Sim is the prepared, evaluation-counted similarity function.
	Sim similarity.Func
	// Heaps is the bounded per-user neighborhood set the refinement loop
	// drives; finalize snapshots it into the result graph.
	Heaps *knnheap.Set
	// Wall accumulates wall-clock phase measurements.
	Wall runstats.PhaseTimer
	// Work accumulates per-worker phase measurements; finalize divides
	// them by the worker count so PhaseTimes stay wall-clock-equivalent.
	Work runstats.PhaseTimer
	// Run is the cost record under assembly. Refine may append to its
	// traces via RecordIteration; finalize fills the totals.
	Run runstats.Run
	// RCS carries KIFF's counting-phase statistics when the builder ran
	// one (Table V); zero otherwise.
	RCS rcs.BuildStats

	// batch mints evaluation-counted one-vs-many kernels when the metric
	// has a batch form; nil otherwise (Batcher then adapts Sim).
	batch similarity.BatchFactory
	evals atomic.Int64
	start time.Time
}

func newSession(b Builder, d *dataset.Dataset, o Options) *Session {
	s := &Session{Dataset: d, Opts: o, start: time.Now()}
	prepStart := time.Now()
	s.Sim = similarity.Counted(o.Metric.Prepare(d), &s.evals)
	if bm, ok := o.Metric.(similarity.BatchMetric); ok {
		s.batch = similarity.CountedBatch(bm.PrepareBatch(d), &s.evals)
	}
	s.Heaps = knnheap.NewSet(d.NumUsers(), o.K)
	s.Wall.Add(runstats.PhasePreprocess, time.Since(prepStart))
	s.Run = runstats.Run{Algorithm: b.Name(), NumUsers: d.NumUsers(), K: o.K}
	return s
}

// Evals returns the number of similarity evaluations performed so far.
func (s *Session) Evals() int64 { return s.evals.Load() }

// Batcher mints a one-vs-many scoring kernel for one worker: the
// metric's batch kernel when it has one, otherwise an adapter over Sim.
// Every scored pair is counted into SimEvals exactly like a Sim call,
// and the kernels score bit-identically to Sim, so builders are free to
// use either path without perturbing the §IV-C statistics. The returned
// kernel owns scratch memory and must stay confined to one goroutine.
func (s *Session) Batcher() similarity.Batcher {
	if s.batch != nil {
		return s.batch()
	}
	return similarity.PairwiseBatcher(s.Sim)
}

// RecordIteration closes refinement iteration iter: it appends the change
// count and cumulative evaluation count to the run traces and fires the
// iteration hook, mirroring what every algorithm's loop used to hand-roll.
func (s *Session) RecordIteration(iter int, changes int64) {
	s.Run.Iterations++
	s.Run.UpdatesPerIter = append(s.Run.UpdatesPerIter, changes)
	s.Run.EvalsAtIter = append(s.Run.EvalsAtIter, s.evals.Load())
	if s.Opts.Hook != nil {
		r := s.Opts.Hook(iter, knngraph.FromSet(s.Heaps), s.evals.Load())
		s.Run.RecallAtIter = append(s.Run.RecallAtIter, r)
	}
}

// finalize snapshots the heaps and completes the cost record.
func (s *Session) finalize() *Result {
	s.Run.WallTime = time.Since(s.start)
	s.Run.SimEvals = s.evals.Load()
	w := parallel.Workers(s.Opts.Workers)
	if n := s.Dataset.NumUsers(); w > n && n > 0 {
		w = n
	}
	for p := runstats.PhasePreprocess; p <= runstats.PhaseSimilarity; p++ {
		s.Run.PhaseTimes[p] = s.Wall.Duration(p) + s.Work.Duration(p)/time.Duration(w)
	}
	return &Result{Graph: knngraph.FromSet(s.Heaps), Run: s.Run, RCS: s.RCS, Heaps: s.Heaps}
}

// Result is the outcome of an engine run.
type Result struct {
	// Graph is the constructed KNN graph.
	Graph *knngraph.Graph
	// Run is the cost record of the construction (wall time, similarity
	// evaluations, per-phase breakdown).
	Run runstats.Run
	// RCS reports KIFF's counting-phase statistics (zero for builders
	// without a counting phase).
	RCS rcs.BuildStats
	// Heaps is the live neighborhood set backing Graph. Batch callers
	// ignore it; incremental maintenance (kiff.Maintainer) keeps it to
	// continue updating the graph in place.
	Heaps *knnheap.Set
}

// Build constructs a KNN graph with the registered builder named algo,
// running the full normalize → prepare → refine → finalize pipeline.
func Build(algo string, d *dataset.Dataset, opts Options) (*Result, error) {
	b, err := Lookup(algo)
	if err != nil {
		return nil, err
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if err := b.Normalize(&opts); err != nil {
		return nil, err
	}
	s := newSession(b, d, opts)
	if err := b.Refine(s); err != nil {
		return nil, err
	}
	return s.finalize(), nil
}
