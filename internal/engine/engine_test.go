package engine_test

import (
	"math"
	"testing"

	"kiff/internal/bruteforce"
	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/similarity"

	_ "kiff/internal/bucket"
	_ "kiff/internal/hyrec"
	_ "kiff/internal/nndescent"
)

func TestRegistryListsAllBuilders(t *testing.T) {
	want := []string{"brute-force", "bucketed", "hyrec", "kiff", "nn-descent"}
	got := engine.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (sorted)", got, want)
		}
	}
	for _, name := range want {
		b, err := engine.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, b.Name())
		}
	}
}

// stubBuilder exists to probe the registry's error paths.
type stubBuilder struct{ name string }

func (b stubBuilder) Name() string                  { return b.name }
func (stubBuilder) Normalize(*engine.Options) error { return nil }
func (stubBuilder) Refine(*engine.Session) error    { return nil }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s must panic", what)
		}
	}()
	fn()
}

// TestRegisterRejectsDuplicateAndEmpty pins the registry's programming-
// error paths: a second builder under an already-registered name and a
// builder with an empty name both panic at init time instead of silently
// shadowing (or hiding) an algorithm.
func TestRegisterRejectsDuplicateAndEmpty(t *testing.T) {
	mustPanic(t, "duplicate registration", func() {
		engine.Register(stubBuilder{name: "kiff"})
	})
	mustPanic(t, "empty-name registration", func() {
		engine.Register(stubBuilder{name: ""})
	})
	// The failed registrations must not have disturbed the registry.
	if b, err := engine.Lookup("kiff"); err != nil || b.Name() != "kiff" {
		t.Errorf("registry corrupted by rejected registration: %v, %v", b, err)
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := engine.Lookup("simulated-annealing"); err == nil {
		t.Error("unknown algorithm must be rejected")
	}
	if _, err := engine.Build("simulated-annealing", mustToy(t), engine.Options{K: 1}); err == nil {
		t.Error("Build with unknown algorithm must fail")
	}
}

func mustToy(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, _, _ := dataset.Toy()
	return d
}

func TestSharedNormalization(t *testing.T) {
	d := mustToy(t)
	bads := []engine.Options{
		{K: 0},
		{K: 2, MaxIterations: -1},
		{K: 2, Beta: math.NaN()},
		{K: 2, Delta: math.NaN()},
		{K: 2, MinRating: -1},
	}
	for i, o := range bads {
		if _, err := engine.Build("kiff", d, o); err == nil {
			t.Errorf("case %d: Build accepted invalid options %+v", i, o)
		}
	}
}

// TestEveryBuilderProducesInstrumentedRun exercises the full pipeline for
// each registered builder on a small generated dataset and checks the
// shared finalization: a valid graph plus a populated cost record.
func TestEveryBuilderProducesInstrumentedRun(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range engine.Names() {
		res, err := engine.Build(name, d, engine.Options{K: 5, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("%s: invalid graph: %v", name, err)
		}
		if res.Run.Algorithm != name {
			t.Errorf("%s: Run.Algorithm = %q", name, res.Run.Algorithm)
		}
		if res.Run.NumUsers != d.NumUsers() || res.Run.K != 5 {
			t.Errorf("%s: Run shape = %d users k=%d", name, res.Run.NumUsers, res.Run.K)
		}
		if res.Run.SimEvals <= 0 {
			t.Errorf("%s: SimEvals not counted", name)
		}
		if res.Run.WallTime <= 0 {
			t.Errorf("%s: WallTime missing", name)
		}
		if res.Heaps == nil || res.Heaps.Len() != d.NumUsers() {
			t.Errorf("%s: live heaps not returned", name)
		}
		if name != "brute-force" && res.Run.Iterations < 1 {
			t.Errorf("%s: no iterations traced", name)
		}
	}
}

// TestEngineMatchesDirectBuild pins the refactor: core.Build (the Config
// adapter) and a direct engine.Build with equivalent options must produce
// the identical graph.
func TestEngineMatchesDirectBuild(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 22)
	if err != nil {
		t.Fatal(err)
	}
	viaConfig, err := core.Build(d, core.Config{K: 6, Gamma: -1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	viaEngine, err := engine.Build("kiff", d, engine.Options{K: 6, Gamma: -1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < viaConfig.Graph.NumUsers(); u++ {
		a, b := viaConfig.Graph.Neighbors(uint32(u)), viaEngine.Graph.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: neighbor counts differ", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d: neighbors differ at %d: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
	if viaConfig.RCS.TotalCandidates != viaEngine.RCS.TotalCandidates {
		t.Errorf("RCS stats differ: %d vs %d",
			viaConfig.RCS.TotalCandidates, viaEngine.RCS.TotalCandidates)
	}
}

// TestBruteForceBuilderMatchesExact pins the registered brute-force
// builder to the package's standalone Graph function.
func TestBruteForceBuilderMatchesExact(t *testing.T) {
	d, err := dataset.Arxiv.Generate(0.005, 23)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	res, err := engine.Build("brute-force", d, engine.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	direct := bruteforce.Graph(d, similarity.Cosine{}, k, 0)
	for u := 0; u < direct.NumUsers(); u++ {
		a, b := direct.Neighbors(uint32(u)), res.Graph.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: neighbor counts differ", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d: neighbors differ", u)
			}
		}
	}
	n := int64(d.NumUsers())
	if want := n * (n - 1) / 2; res.Run.SimEvals != want {
		t.Errorf("SimEvals = %d, want every pair once (%d)", res.Run.SimEvals, want)
	}
}

// TestBaselinesRejectUnboundedNegativeThresholds covers the coherence
// rule: algorithms without an exhaustion point cannot run with their
// termination threshold disabled unless an iteration cap bounds them.
func TestBaselinesRejectUnboundedNegativeThresholds(t *testing.T) {
	d := mustToy(t)
	if _, err := engine.Build("hyrec", d, engine.Options{K: 1, Beta: -1}); err == nil {
		t.Error("hyrec must reject Beta < 0 without MaxIterations")
	}
	if _, err := engine.Build("hyrec", d, engine.Options{K: 1, Beta: -1, MaxIterations: 2}); err != nil {
		t.Errorf("hyrec with Beta < 0 and MaxIterations must run: %v", err)
	}
	if _, err := engine.Build("nn-descent", d, engine.Options{K: 1, Delta: -1}); err == nil {
		t.Error("nn-descent must reject Delta < 0 without MaxIterations")
	}
	if _, err := engine.Build("nn-descent", d, engine.Options{K: 1, Delta: -1, MaxIterations: 2}); err != nil {
		t.Errorf("nn-descent with Delta < 0 and MaxIterations must run: %v", err)
	}
}
