package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Builder)
)

// Register adds a builder under its Name. It is meant to be called from
// the algorithm packages' init functions and panics on a duplicate name —
// a duplicate is always a programming error, not a runtime condition.
func Register(b Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := b.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate builder %q", name))
	}
	registry[name] = b
}

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("kiff: unknown algorithm %q (available: %s)",
			name, strings.Join(namesLocked(), ", "))
	}
	return b, nil
}

// Names lists the registered builder names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
