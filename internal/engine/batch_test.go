package engine_test

import (
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/similarity"
)

// pairwiseOnly hides a metric's batch form: only the plain Metric
// methods are promoted, so the engine session falls back to the
// PairwiseBatcher adapter — the reference path.
type pairwiseOnly struct{ similarity.Metric }

// TestBatchPathEqualsPairwisePath builds with every registered builder
// twice — once with the metric's batch kernels, once with the same
// metric stripped down to its pairwise form — and requires identical
// graphs and identical SimEvals. This is the end-to-end guarantee that
// adopting the batched kernels changed no observable output: recall,
// neighbor lists, similarity values and the §IV-C evaluation counts are
// all byte-identical.
func TestBatchPathEqualsPairwisePath(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	metrics := []similarity.Metric{
		similarity.Cosine{},
		similarity.Jaccard{},
		similarity.AdamicAdar{},
	}
	for _, algo := range engine.Names() {
		for _, metric := range metrics {
			// Workers: 1 for determinism — HyRec and NN-Descent gather
			// candidates from heaps that concurrent workers mutate, so
			// multi-worker runs differ run-to-run regardless of the
			// scoring path.
			opts := engine.Options{K: 6, Metric: metric, Seed: 7, Workers: 1, MaxIterations: 8}
			batched, err := engine.Build(algo, d, opts)
			if err != nil {
				t.Fatalf("%s/%s batched: %v", algo, metric.Name(), err)
			}
			opts.Metric = pairwiseOnly{metric}
			plain, err := engine.Build(algo, d, opts)
			if err != nil {
				t.Fatalf("%s/%s pairwise: %v", algo, metric.Name(), err)
			}
			if batched.Run.SimEvals != plain.Run.SimEvals {
				t.Errorf("%s/%s: SimEvals %d (batched) != %d (pairwise)",
					algo, metric.Name(), batched.Run.SimEvals, plain.Run.SimEvals)
			}
			if bi, pi := batched.Run.Iterations, plain.Run.Iterations; bi != pi {
				t.Errorf("%s/%s: iterations %d (batched) != %d (pairwise)", algo, metric.Name(), bi, pi)
			}
			for u := 0; u < d.NumUsers(); u++ {
				bn := batched.Graph.Neighbors(uint32(u))
				pn := plain.Graph.Neighbors(uint32(u))
				if len(bn) != len(pn) {
					t.Fatalf("%s/%s: user %d has %d vs %d neighbors", algo, metric.Name(), u, len(bn), len(pn))
				}
				for i := range bn {
					if bn[i] != pn[i] {
						t.Fatalf("%s/%s: user %d neighbor %d: %+v (batched) != %+v (pairwise)",
							algo, metric.Name(), u, i, bn[i], pn[i])
					}
				}
			}
		}
	}
}

// TestSessionBatcherFallback: a session over a batchless metric still
// hands out a working (counted) kernel.
func TestSessionBatcherFallback(t *testing.T) {
	d, _, _ := dataset.Toy()
	res, err := engine.Build("brute-force", d, engine.Options{K: 2, Metric: pairwiseOnly{similarity.Cosine{}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.SimEvals == 0 {
		t.Error("fallback batcher recorded no similarity evaluations")
	}
}
