package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// validLogBytes builds a clean log file and returns its raw bytes, for
// seeding the fuzz corpus with inputs the mangler starts from.
func validLogBytes(tb testing.TB, base uint64, recs []Record) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.kfl")
	l, err := Open(path, Options{Sync: SyncNever, FromLSN: base - 1}, func(Record) error { return nil })
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			tb.Fatal(err)
		}
	}
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzWALDecode pins the recovery contract on arbitrary log bytes: Open
// either fails loudly or replays a clean, strictly-sequential prefix —
// and every record it applies is one the writer could have produced
// (its re-encoding frames back to bytes present in the input). A mangled
// log never smuggles a corrupt record into the maintainer.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(validLogBytes(f, 1, nil))
	f.Add(validLogBytes(f, 1, sampleRecords()))
	f.Add(validLogBytes(f, 40, []Record{
		{Kind: KindAddRating, User: 3, Item: 9, Rating: -1.5},
		{Kind: KindRebuild, Dirty: []uint32{7}},
	}))
	// A truncated valid log: exercises the torn-tail path from the seeds.
	whole := validLogBytes(f, 1, sampleRecords())
	f.Add(whole[:len(whole)-4])

	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.kfl")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		var prevLSN uint64
		l, err := Open(path, Options{Sync: SyncNever}, func(r Record) error {
			if r.LSN != prevLSN+1 {
				t.Fatalf("non-sequential replay: LSN %d after %d", r.LSN, prevLSN)
			}
			prevLSN = r.LSN
			// Round-trip identity: the applied record must re-encode to a
			// byte string the input actually contains — i.e. it is exactly
			// what the writer wrote, not a misparse.
			if !bytes.Contains(raw, appendRecord(nil, r)) {
				t.Fatalf("replayed record %+v does not re-encode to input bytes", r)
			}
			return nil
		})
		if err != nil {
			return // failing loudly is a valid outcome
		}
		defer l.Close()
		// With FromLSN 0 nothing is skipped, so whenever anything replayed,
		// LastLSN is exactly the last applied LSN.
		if l.ReplayStats().Replayed > 0 && l.LastLSN() != prevLSN {
			t.Fatalf("LastLSN %d != last applied %d", l.LastLSN(), prevLSN)
		}
		// The surviving file must itself be a clean log: reopening replays
		// the same count with no further truncation.
		l2, err := Open(path, Options{Sync: SyncNever}, func(Record) error { return nil })
		if err != nil {
			t.Fatalf("reopen after recovery failed: %v", err)
		}
		defer l2.Close()
		if l2.ReplayStats().TruncatedBytes != 0 {
			t.Fatalf("second open truncated %d more bytes", l2.ReplayStats().TruncatedBytes)
		}
		if l2.ReplayStats().Replayed != l.ReplayStats().Replayed {
			t.Fatalf("reopen replayed %d records, first open %d", l2.ReplayStats().Replayed, l.ReplayStats().Replayed)
		}
	})
}
