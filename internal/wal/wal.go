// Package wal implements the KFL1 write-ahead log: a CRC-framed,
// versioned, append-only record of graph mutations (docs/FORMATS.md is
// the normative spec). It closes the durability gap the checkpoint
// files leave open: a checkpoint captures the state *at* a quiesce
// point, the log captures every acknowledged mutation *since* — so a
// crashed server replays the log on top of its latest checkpoint and
// loses nothing it acknowledged.
//
// The ordering contract the callers uphold is append → apply → ack: a
// mutation is appended to the log before it touches the live
// maintainer, and the client is acknowledged only after both. A record
// present in the log may therefore describe a mutation that was never
// acknowledged (crash between append and ack — replay resurrects it,
// at-least-once), but an acknowledged mutation is always in the log or
// in a newer checkpoint — never lost.
//
// Torn tails are expected, not exceptional: a crash mid-append leaves a
// partial frame, and Open truncates the file at the first frame whose
// length, checksum or sequencing fails, replaying the clean prefix.
// Corruption that a torn write cannot produce — a CRC-valid record with
// the wrong LSN, an undecodable payload, a log whose base postdates the
// checkpoint it is replayed against — fails loudly instead: those mean
// the log and checkpoint do not belong together, and silently skipping
// records would be data loss.
//
// A Log is single-writer (the maintainer's writer goroutine); the
// counters are atomics so observability endpoints may read them from
// any goroutine.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync/atomic"
	"time"

	"kiff/internal/fsio"
)

// Magic identifies a KFL1 log file.
const Magic = "KFL1"

// Version is the current (and only) KFL1 format version.
const Version = 1

// MaxRecordBytes bounds a single record payload. Profiles arrive over
// an 8 MiB-capped HTTP body; any frame claiming more than this is
// corruption, not data.
const MaxRecordBytes = 16 << 20

// ErrCorrupt tags hard log corruption — damage a torn append cannot
// explain, where replaying a prefix would silently lose records.
var ErrCorrupt = errors.New("wal: corrupt log")

// Kind enumerates the mutation record types.
type Kind uint8

const (
	// KindAddUser appends a new user profile.
	KindAddUser Kind = 1
	// KindAddRating records one rating change on an existing user.
	KindAddRating Kind = 2
	// KindRebuild marks a neighborhood rebuild barrier. Rebuild
	// boundaries are state-bearing — rebuilding users {a} then {b} does
	// not commute with rebuilding {a,b} once profiles changed in
	// between — so replay must reproduce them exactly.
	KindRebuild Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindAddUser:
		return "AddUser"
	case KindAddRating:
		return "AddRating"
	case KindRebuild:
		return "Rebuild"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one logged mutation. Which fields are meaningful depends on
// Kind; LSN is assigned by Append and strictly sequential per log.
type Record struct {
	LSN  uint64
	Kind Kind

	// KindAddUser: the inserted profile — item IDs strictly ascending,
	// Weights nil for a binary profile, else parallel to Items with
	// bit-exact float64 values.
	Items   []uint32
	Weights []float64

	// KindAddRating.
	User   uint32
	Item   uint32
	Rating float64

	// KindRebuild: All means "every user currently marked dirty"
	// (Maintainer.Rebuild(nil)); otherwise Dirty lists the target users.
	All   bool
	Dirty []uint32
}

// SyncPolicy selects when Append calls fsync.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append — crash-lossless against
	// power failure, at one fsync per mutation.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per Options.SyncInterval, on the
	// append path. Against process crashes (SIGKILL) every append is
	// still durable — the write syscall happened — but a power failure
	// may lose the unsynced tail.
	SyncInterval
	// SyncNever leaves fsync to Rotate and Close only.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses a -wal-sync flag value: "always", "never", or
// a time.ParseDuration interval ("100ms") selecting SyncInterval.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return SyncAlways, 0, nil
	case "never":
		return SyncNever, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: sync policy %q: want \"always\", \"never\" or a positive duration", s)
	}
	return SyncInterval, d, nil
}

// Options configures Open.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the minimum spacing between fsyncs under
	// SyncInterval (default 100ms).
	SyncInterval time.Duration
	// FromLSN is the checkpoint horizon: records with LSN ≤ FromLSN are
	// already captured by the checkpoint the caller loaded and are
	// skipped during replay; records above it are applied.
	FromLSN uint64
	// TestHook, when set, is offered every encoded frame before the
	// normal write. Returning true means the hook consumed the append
	// (the fault-injection tear writes a partial frame and kills the
	// process; see the server's wal_tear knob). Never set in production.
	TestHook func(f *os.File, frame []byte) bool
}

// ReplayStats describes what Open found and did.
type ReplayStats struct {
	// Replayed counts records applied (LSN above the checkpoint horizon).
	Replayed int
	// ReplayedInserts counts the KindAddUser subset of Replayed — the
	// population growth replay produced, which sharded recovery needs to
	// re-derive the global user count.
	ReplayedInserts int
	// Skipped counts records at or below the checkpoint horizon.
	Skipped int
	// TruncatedBytes is the torn tail discarded, 0 for a clean log.
	TruncatedBytes int64
}

// Counters is a point-in-time snapshot of a log's activity, safe to
// read from any goroutine via Log.Counters.
type Counters struct {
	Appended       int64 // records appended this process
	AppendedBytes  int64 // frame bytes appended this process
	Fsyncs         int64 // fsyncs issued by the append path
	AppendErrors   int64 // failed appends (the log is suspect after one)
	Replayed       int64 // records replayed at open
	TruncatedBytes int64 // torn-tail bytes truncated at open
	LastLSN        uint64
}

// Log is an open KFL1 log positioned at its end. Append/Rotate/Sync/
// Close are single-writer; Counters and LastLSN are safe anywhere.
type Log struct {
	path string
	f    *os.File
	opts Options

	lastLSN  atomic.Uint64
	lastSync time.Time
	replay   ReplayStats

	appended      atomic.Int64
	appendedBytes atomic.Int64
	fsyncs        atomic.Int64
	appendErrors  atomic.Int64
}

const (
	frameHeaderLen = 8 // uint32 payload length + uint32 CRC32
	headerBaseLen  = 5 // magic + version varint (base varint follows)
)

// Open opens the log at path, creating it (base LSN = FromLSN+1) if
// absent. Existing records above opts.FromLSN are decoded and handed to
// apply in order; a torn tail is truncated so appends extend the clean
// prefix. The returned log is positioned for appending. An apply error
// aborts Open — the caller's half-replayed state must be discarded.
func Open(path string, opts Options, apply func(Record) error) (*Log, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		if err := writeHeader(path, opts.FromLSN+1); err != nil {
			return nil, fmt.Errorf("wal: create %s: %w", path, err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{path: path, f: f, opts: opts}
	if err := l.replayAndTruncate(apply); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// writeHeader creates a fresh log file holding only the KFL1 header,
// durably (tmp+rename, file and directory fsynced) — a log file on disk
// always has a complete header, so header parsing never has to reason
// about torn writes.
func writeHeader(path string, base uint64) error {
	return fsio.WriteDurable(path, func(f *os.File) error {
		var buf [headerBaseLen + binary.MaxVarintLen64]byte
		n := copy(buf[:], Magic)
		n += binary.PutUvarint(buf[n:], Version)
		n += binary.PutUvarint(buf[n:], base)
		_, err := f.Write(buf[:n])
		return err
	})
}

// replayAndTruncate scans the whole file: header, then frames. Records
// above the FromLSN horizon are applied; the first torn frame truncates
// the file there; hard corruption aborts.
func (l *Log) replayAndTruncate(apply func(Record) error) error {
	raw, err := io.ReadAll(l.f)
	if err != nil {
		return fmt.Errorf("wal: read %s: %w", l.path, err)
	}
	if len(raw) < headerBaseLen || string(raw[:4]) != Magic {
		return fmt.Errorf("%w: %s: bad magic", ErrCorrupt, l.path)
	}
	rest := raw[4:]
	version, n := binary.Uvarint(rest)
	if n <= 0 || version != Version {
		return fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, l.path, version)
	}
	rest = rest[n:]
	base, n := binary.Uvarint(rest)
	if n <= 0 || base == 0 {
		return fmt.Errorf("%w: %s: bad base LSN", ErrCorrupt, l.path)
	}
	rest = rest[n:]
	if base > l.opts.FromLSN+1 {
		return fmt.Errorf("%w: %s: log begins at LSN %d but the checkpoint covers only up to %d — records %d..%d are missing (rotated against a newer checkpoint?)",
			ErrCorrupt, l.path, base, l.opts.FromLSN, l.opts.FromLSN+1, base-1)
	}

	goodLen := int64(len(raw) - len(rest)) // end of the last intact frame
	next := base                           // LSN the next frame must carry
	for len(rest) > 0 {
		if len(rest) < frameHeaderLen {
			break // torn frame header
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if plen == 0 || plen > MaxRecordBytes {
			break // torn or garbage length — cannot be a real frame
		}
		if len(rest) < frameHeaderLen+int(plen) {
			break // torn payload
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(plen)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // torn or corrupt payload
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The CRC matched, so these bytes are exactly what the writer
			// wrote — an undecodable record is writer corruption, not a
			// torn tail. Truncating here would silently drop it.
			return fmt.Errorf("%w: %s: LSN %d: %v", ErrCorrupt, l.path, next, err)
		}
		if rec.LSN != next {
			return fmt.Errorf("%w: %s: record carries LSN %d, expected %d", ErrCorrupt, l.path, rec.LSN, next)
		}
		if rec.LSN > l.opts.FromLSN {
			if err := apply(rec); err != nil {
				return fmt.Errorf("wal: replay LSN %d: %w", rec.LSN, err)
			}
			l.replay.Replayed++
			if rec.Kind == KindAddUser {
				l.replay.ReplayedInserts++
			}
		} else {
			l.replay.Skipped++
		}
		next++
		rest = rest[frameHeaderLen+int(plen):]
		goodLen = int64(len(raw) - len(rest))
	}
	l.replay.TruncatedBytes = int64(len(raw)) - goodLen
	if next <= l.opts.FromLSN {
		// The checkpoint claims LSNs this log never reached. The append →
		// checkpoint ordering makes that impossible for a matched pair, so
		// this log does not belong to the checkpoint.
		return fmt.Errorf("%w: %s: checkpoint covers LSN %d but the log ends at %d — mismatched log and checkpoint",
			ErrCorrupt, l.path, l.opts.FromLSN, next-1)
	}
	if l.replay.TruncatedBytes > 0 {
		if err := l.f.Truncate(goodLen); err != nil {
			return fmt.Errorf("wal: truncate torn tail of %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(goodLen, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %s: %w", l.path, err)
	}
	l.lastLSN.Store(next - 1)
	return nil
}

// ReplayStats returns what Open found: records replayed/skipped and the
// torn bytes truncated.
func (l *Log) ReplayStats() ReplayStats { return l.replay }

// LastLSN returns the LSN of the last record in the log (base−1 for an
// empty log — the checkpoint horizon it was created over).
func (l *Log) LastLSN() uint64 { return l.lastLSN.Load() }

// Counters snapshots the activity counters.
func (l *Log) Counters() Counters {
	return Counters{
		Appended:       l.appended.Load(),
		AppendedBytes:  l.appendedBytes.Load(),
		Fsyncs:         l.fsyncs.Load(),
		AppendErrors:   l.appendErrors.Load(),
		Replayed:       int64(l.replay.Replayed),
		TruncatedBytes: l.replay.TruncatedBytes,
		LastLSN:        l.lastLSN.Load(),
	}
}

// Append assigns the next LSN to r, frames and writes it, and fsyncs
// according to the sync policy. It returns only after the write (and
// any required fsync) succeeded — the caller may then apply the
// mutation and acknowledge its client. On error the mutation must not
// be applied.
func (l *Log) Append(r Record) error {
	r.LSN = l.lastLSN.Load() + 1
	payload := appendRecord(nil, r)
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	if h := l.opts.TestHook; h != nil && h(l.f, frame) {
		l.appendErrors.Add(1)
		return errors.New("wal: append torn by test hook")
	}
	if _, err := l.f.Write(frame); err != nil {
		l.appendErrors.Add(1)
		return fmt.Errorf("wal: append: %w", err)
	}
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.f.Sync(); err != nil {
			l.appendErrors.Add(1)
			return fmt.Errorf("wal: append: %w", err)
		}
		l.fsyncs.Add(1)
	case SyncInterval:
		if now := time.Now(); now.Sub(l.lastSync) >= l.opts.SyncInterval {
			if err := l.f.Sync(); err != nil {
				l.appendErrors.Add(1)
				return fmt.Errorf("wal: append: %w", err)
			}
			l.fsyncs.Add(1)
			l.lastSync = now
		}
	}
	l.lastLSN.Store(r.LSN)
	l.appended.Add(1)
	l.appendedBytes.Add(int64(len(frame)))
	return nil
}

// Rotate starts a fresh log generation after a checkpoint: a new file
// whose base LSN is LastLSN+1 is written durably and renamed over the
// old log, discarding every record the checkpoint now covers. Call it
// only after the checkpoint recording LastLSN is durably complete, with
// the writer quiesced — records appended between the checkpoint and the
// rotation would be lost. A crash before the rename leaves the old log;
// replay skips the records the checkpoint already holds (the FromLSN
// horizon), so rotation is safe to retry or to never happen.
func (l *Log) Rotate() error {
	if err := writeHeader(l.path, l.lastLSN.Load()+1); err != nil {
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	// The rename orphaned the old inode; release it and adopt the new
	// file for subsequent appends.
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	l.f = f
	old.Close()
	return nil
}

// Sync flushes the log to stable storage regardless of policy.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	l.fsyncs.Add(1)
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close %s: %w", l.path, err)
	}
	return l.f.Close()
}

// --- Record codec --------------------------------------------------------

// appendRecord encodes r (with its LSN) onto buf.
func appendRecord(buf []byte, r Record) []byte {
	buf = binary.AppendUvarint(buf, r.LSN)
	buf = append(buf, byte(r.Kind))
	switch r.Kind {
	case KindAddUser:
		buf = binary.AppendUvarint(buf, uint64(len(r.Items)))
		for _, it := range r.Items {
			buf = binary.AppendUvarint(buf, uint64(it))
		}
		if r.Weights != nil {
			buf = append(buf, 1)
			for _, w := range r.Weights {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
			}
		} else {
			buf = append(buf, 0)
		}
	case KindAddRating:
		buf = binary.AppendUvarint(buf, uint64(r.User))
		buf = binary.AppendUvarint(buf, uint64(r.Item))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Rating))
	case KindRebuild:
		if r.All {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
			buf = binary.AppendUvarint(buf, uint64(len(r.Dirty)))
			for _, u := range r.Dirty {
				buf = binary.AppendUvarint(buf, uint64(u))
			}
		}
	default:
		panic(fmt.Sprintf("wal: encoding unknown record kind %d", r.Kind))
	}
	return buf
}

// decodeRecord decodes one CRC-verified payload. Errors mean the writer
// produced garbage (hard corruption), since torn writes cannot pass the
// frame CRC.
func decodeRecord(payload []byte) (Record, error) {
	d := recDecoder{rest: payload}
	var r Record
	r.LSN = d.uvarint("lsn")
	r.Kind = Kind(d.byte("kind"))
	switch r.Kind {
	case KindAddUser:
		n := d.uvarint("item count")
		if d.err == nil && n > uint64(len(d.rest)) {
			// Each item costs ≥ 1 payload byte; a bigger claim cannot fit.
			d.fail("item count %d exceeds payload", n)
		}
		if d.err == nil {
			r.Items = make([]uint32, n)
			prev := int64(-1)
			for i := range r.Items {
				it := d.uvarint("item")
				if d.err == nil && (it > math.MaxUint32 || int64(it) <= prev) {
					d.fail("item IDs not strictly ascending uint32s")
				}
				prev = int64(it)
				r.Items[i] = uint32(it)
			}
		}
		if d.byte("weighted flag") == 1 && d.err == nil {
			r.Weights = make([]float64, len(r.Items))
			for i := range r.Weights {
				r.Weights[i] = d.float64("weight")
			}
		}
	case KindAddRating:
		r.User = d.uint32("user")
		r.Item = d.uint32("item")
		r.Rating = d.float64("rating")
	case KindRebuild:
		r.All = d.byte("all flag") == 1
		if !r.All && d.err == nil {
			n := d.uvarint("dirty count")
			if d.err == nil && n > uint64(len(d.rest)) {
				d.fail("dirty count %d exceeds payload", n)
			}
			if d.err == nil {
				r.Dirty = make([]uint32, n)
				for i := range r.Dirty {
					r.Dirty[i] = d.uint32("dirty user")
				}
			}
		}
	default:
		return Record{}, fmt.Errorf("unknown record kind %d", uint8(r.Kind))
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.rest) != 0 {
		return Record{}, fmt.Errorf("%d trailing bytes after record", len(d.rest))
	}
	return r, nil
}

// recDecoder is a tiny sticky-error cursor over a record payload.
type recDecoder struct {
	rest []byte
	err  error
}

func (d *recDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *recDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.rest)
	if n <= 0 {
		d.fail("truncated %s", what)
		return 0
	}
	d.rest = d.rest[n:]
	return v
}

func (d *recDecoder) uint32(what string) uint32 {
	v := d.uvarint(what)
	if d.err == nil && v > math.MaxUint32 {
		d.fail("%s %d overflows uint32", what, v)
	}
	return uint32(v)
}

func (d *recDecoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.rest) < 1 {
		d.fail("truncated %s", what)
		return 0
	}
	b := d.rest[0]
	d.rest = d.rest[1:]
	return b
}

func (d *recDecoder) float64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.rest) < 8 {
		d.fail("truncated %s", what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.rest))
	d.rest = d.rest[8:]
	return v
}
