package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// collect opens path and gathers the replayed records.
func collect(t *testing.T, path string, opts Options) (*Log, []Record) {
	t.Helper()
	var got []Record
	l, err := Open(path, opts, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got
}

func sampleRecords() []Record {
	return []Record{
		{Kind: KindAddUser, Items: []uint32{1, 5, 9}},
		{Kind: KindAddUser, Items: []uint32{0, 2}, Weights: []float64{0.5, -3.25}},
		{Kind: KindAddRating, User: 1, Item: 7, Rating: 2.5},
		{Kind: KindRebuild, All: true},
		{Kind: KindRebuild, Dirty: []uint32{0, 1}},
		{Kind: KindAddUser, Items: []uint32{3}},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kfl")
	l, got := collect(t, path, Options{Sync: SyncNever})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.LastLSN() != uint64(len(want)) {
		t.Fatalf("LastLSN = %d, want %d", l.LastLSN(), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := collect(t, path, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: LSN %d", i, r.LSN)
		}
		w := want[i]
		w.LSN = r.LSN
		if !reflect.DeepEqual(r, w) {
			t.Fatalf("record %d: got %+v, want %+v", i, r, w)
		}
	}
	st := l2.ReplayStats()
	if st.Replayed != len(want) || st.Skipped != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.ReplayedInserts != 3 {
		t.Fatalf("ReplayedInserts = %d, want 3", st.ReplayedInserts)
	}
}

func TestFromLSNSkipsCheckpointedPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kfl")
	l, _ := collect(t, path, Options{Sync: SyncNever})
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, got := collect(t, path, Options{FromLSN: 4})
	defer l2.Close()
	if len(got) != 2 || got[0].LSN != 5 || got[1].LSN != 6 {
		t.Fatalf("replayed %+v, want LSNs 5,6", got)
	}
	st := l2.ReplayStats()
	if st.Skipped != 4 || st.Replayed != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTornTailTruncated(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"partial frame header": func(b []byte) []byte { return b[:len(b)-3] },
		"partial payload": func(b []byte) []byte {
			// Keep the last frame's header but drop half its payload.
			return b[:len(b)-5]
		},
		"flipped payload bit": func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		},
		"garbage after frames": func(b []byte) []byte {
			return append(b, 0xff, 0xff, 0xff, 0xff, 0x00)
		},
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.kfl")
			l, _ := collect(t, path, Options{Sync: SyncNever})
			want := sampleRecords()
			for _, r := range want {
				if err := l.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			clean := len(raw)
			if err := os.WriteFile(path, mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			l2, got := collect(t, path, Options{})
			st := l2.ReplayStats()
			if name == "garbage after frames" {
				if len(got) != len(want) || st.TruncatedBytes != 5 {
					t.Fatalf("replayed %d, stats %+v", len(got), st)
				}
			} else {
				if len(got) != len(want)-1 {
					t.Fatalf("replayed %d records, want %d", len(got), len(want)-1)
				}
				if st.TruncatedBytes <= 0 {
					t.Fatalf("stats %+v: expected truncated bytes", st)
				}
			}
			// The file is physically truncated to the clean prefix and the
			// log appends from there: a fresh record lands at the LSN the
			// torn one failed to claim.
			if err := l2.Append(Record{Kind: KindAddRating, User: 0, Item: 1, Rating: 9}); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			l3, got := collect(t, path, Options{})
			l3.Close()
			wantN := len(want) + 1
			if name != "garbage after frames" {
				wantN = len(want)
			}
			if len(got) != wantN || got[len(got)-1].Rating != 9 {
				t.Fatalf("after repair: replayed %d records, want %d ending in repair record", len(got), wantN)
			}
			if fi, err := os.Stat(path); err != nil || fi.Size() > int64(clean)+64 {
				t.Fatalf("file not truncated: %d bytes vs clean %d (err %v)", fi.Size(), clean, err)
			}
		})
	}
}

func TestHardCorruptionFailsLoudly(t *testing.T) {
	build := func(t *testing.T, recs []Record) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "wal.kfl")
		l, _ := collect(t, path, Options{Sync: SyncNever})
		for _, r := range recs {
			if err := l.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()
		return path
	}
	reframe := func(payload []byte) []byte {
		f := make([]byte, frameHeaderLen+len(payload))
		binary.LittleEndian.PutUint32(f[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(f[4:8], crc32.ChecksumIEEE(payload))
		copy(f[frameHeaderLen:], payload)
		return f
	}

	t.Run("bad magic", func(t *testing.T) {
		path := build(t, nil)
		raw, _ := os.ReadFile(path)
		raw[0] = 'X'
		os.WriteFile(path, raw, 0o644)
		if _, err := Open(path, Options{}, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("unknown kind with valid CRC", func(t *testing.T) {
		path := build(t, sampleRecords()[:2])
		payload := binary.AppendUvarint(nil, 3) // LSN 3
		payload = append(payload, 99)           // bogus kind
		raw, _ := os.ReadFile(path)
		os.WriteFile(path, append(raw, reframe(payload)...), 0o644)
		if _, err := Open(path, Options{}, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("LSN gap with valid CRC", func(t *testing.T) {
		path := build(t, sampleRecords()[:2])
		payload := appendRecord(nil, Record{LSN: 7, Kind: KindRebuild, All: true})
		raw, _ := os.ReadFile(path)
		os.WriteFile(path, append(raw, reframe(payload)...), 0o644)
		if _, err := Open(path, Options{}, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("log base beyond checkpoint", func(t *testing.T) {
		// A log rotated at LSN 10 replayed against a checkpoint at LSN 4:
		// records 5..10 live nowhere — must refuse.
		path := filepath.Join(t.TempDir(), "wal.kfl")
		if err := writeHeader(path, 11); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path, Options{FromLSN: 4}, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("checkpoint beyond log end", func(t *testing.T) {
		path := build(t, sampleRecords()[:2])
		if _, err := Open(path, Options{FromLSN: 9}, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestReplayApplyErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kfl")
	l, _ := collect(t, path, Options{Sync: SyncNever})
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	boom := errors.New("apply failed")
	_, err := Open(path, Options{}, func(r Record) error {
		if r.LSN == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kfl")
	l, _ := collect(t, path, Options{Sync: SyncNever})
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Post-rotation appends continue the LSN sequence in the new file.
	if err := l.Append(Record{Kind: KindAddRating, User: 2, Item: 3, Rating: 1}); err != nil {
		t.Fatal(err)
	}
	if l.LastLSN() != 7 {
		t.Fatalf("LastLSN = %d, want 7", l.LastLSN())
	}
	l.Close()

	// Replaying against the checkpoint that triggered the rotation (LSN
	// 6) yields exactly the post-rotation record.
	l2, got := collect(t, path, Options{FromLSN: 6})
	l2.Close()
	if len(got) != 1 || got[0].LSN != 7 || got[0].Rating != 1 {
		t.Fatalf("replayed %+v", got)
	}
	// The rotated file must not contain the old records at all.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 64 {
		t.Fatalf("rotated log still %d bytes", fi.Size())
	}
}

func TestCountersAndSyncPolicies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kfl")
	l, _ := collect(t, path, Options{Sync: SyncAlways})
	for i := 0; i < 3; i++ {
		if err := l.Append(Record{Kind: KindRebuild, All: true}); err != nil {
			t.Fatal(err)
		}
	}
	c := l.Counters()
	if c.Appended != 3 || c.Fsyncs != 3 || c.LastLSN != 3 || c.AppendedBytes <= 0 {
		t.Fatalf("counters %+v", c)
	}
	l.Close()

	// SyncInterval with a huge interval: one fsync at most (the first
	// append fires because lastSync is zero), not one per append.
	path2 := filepath.Join(t.TempDir(), "wal.kfl")
	l2, _ := collect(t, path2, Options{Sync: SyncInterval, SyncInterval: time.Hour})
	for i := 0; i < 5; i++ {
		if err := l2.Append(Record{Kind: KindRebuild, All: true}); err != nil {
			t.Fatal(err)
		}
	}
	if c := l2.Counters(); c.Fsyncs > 1 {
		t.Fatalf("interval policy issued %d fsyncs for 5 appends", c.Fsyncs)
	}
	l2.Close()
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		pol  SyncPolicy
		dur  time.Duration
		fail bool
	}{
		{in: "always", pol: SyncAlways},
		{in: "never", pol: SyncNever},
		{in: "250ms", pol: SyncInterval, dur: 250 * time.Millisecond},
		{in: "0s", fail: true},
		{in: "-1s", fail: true},
		{in: "sometimes", fail: true},
	} {
		pol, dur, err := ParseSyncPolicy(tc.in)
		if tc.fail {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q): expected error", tc.in)
			}
			continue
		}
		if err != nil || pol != tc.pol || dur != tc.dur {
			t.Errorf("ParseSyncPolicy(%q) = %v,%v,%v want %v,%v", tc.in, pol, dur, err, tc.pol, tc.dur)
		}
	}
}

func TestWeightBitExactness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.kfl")
	l, _ := collect(t, path, Options{Sync: SyncNever})
	weird := []float64{math.Pi, -0.0, math.Inf(1), math.SmallestNonzeroFloat64, math.NaN()}
	if err := l.Append(Record{Kind: KindAddUser, Items: []uint32{1, 2, 3, 4, 5}, Weights: weird}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, got := collect(t, path, Options{})
	l2.Close()
	if len(got) != 1 {
		t.Fatalf("replayed %d records", len(got))
	}
	for i, w := range got[0].Weights {
		if math.Float64bits(w) != math.Float64bits(weird[i]) {
			t.Fatalf("weight %d: %x != %x", i, math.Float64bits(w), math.Float64bits(weird[i]))
		}
	}
}
