package nndescent

import (
	"testing"

	"kiff/internal/bruteforce"
	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/similarity"
)

func TestRejectsBadConfig(t *testing.T) {
	d, _, _ := dataset.Toy()
	bads := []Config{
		{K: 0},
		{K: 2, Delta: -1},
		{K: 2, Sample: -0.5},
		{K: 2, Sample: 1.5},
		{K: 2, MaxIterations: -1},
	}
	for i, cfg := range bads {
		if _, err := Build(d, cfg); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestConvergesToHighRecall(t *testing.T) {
	// Table II: NN-Descent reaches 0.95–0.97 recall on the denser datasets.
	d, err := dataset.Wikipedia.Generate(0.03, 21)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	cfg := DefaultConfig(k)
	cfg.Seed = 1
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	exact := bruteforce.Exact(d, similarity.Cosine{}, k, 0)
	if got := exact.Recall(res.Graph); got < 0.85 {
		t.Errorf("recall = %v, want ≥ 0.85 on a dense-ish dataset", got)
	}
	if res.Run.Iterations < 2 {
		t.Errorf("expected several iterations, got %d", res.Run.Iterations)
	}
}

func TestEveryUserGetsKNeighbors(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 22)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	cfg := DefaultConfig(k)
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike KIFF, the random init guarantees full neighborhoods.
	for u := 0; u < res.Graph.NumUsers(); u++ {
		if l := res.Graph.Neighbors(uint32(u)); len(l) != k {
			t.Fatalf("user %d has %d neighbors, want %d", u, len(l), k)
		}
	}
}

func TestScanRateAboveKIFFRegime(t *testing.T) {
	// The motivation figure (Fig 1): greedy approaches do far more
	// similarity work. Sanity-check the counter plumbing: evals are
	// recorded and grow monotonically per iteration.
	d, err := dataset.Wikipedia.Generate(0.01, 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.SimEvals <= 0 {
		t.Fatal("SimEvals not recorded")
	}
	for i := 1; i < len(res.Run.EvalsAtIter); i++ {
		if res.Run.EvalsAtIter[i] < res.Run.EvalsAtIter[i-1] {
			t.Fatal("EvalsAtIter must be non-decreasing")
		}
	}
	// On tiny graphs duplicate pair evaluations across local joins can push
	// the scan rate above 1 (the normalizer counts distinct pairs); only
	// positivity is a hard invariant here.
	if res.Run.ScanRate() <= 0 {
		t.Errorf("scan rate = %v, want > 0", res.Run.ScanRate())
	}
}

func TestSamplingReducesWork(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.015, 24)
	if err != nil {
		t.Fatal(err)
	}
	full := DefaultConfig(10)
	full.Seed = 2
	fullRes, err := Build(d, full)
	if err != nil {
		t.Fatal(err)
	}
	sampled := DefaultConfig(10)
	sampled.Seed = 2
	sampled.Sample = 0.5
	sampledRes, err := Build(d, sampled)
	if err != nil {
		t.Fatal(err)
	}
	if sampledRes.Run.SimEvals >= fullRes.Run.SimEvals {
		t.Errorf("ρ=0.5 did not reduce similarity work: %d vs %d",
			sampledRes.Run.SimEvals, fullRes.Run.SimEvals)
	}
}

func TestMaxIterationsCap(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.MaxIterations = 2
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Iterations > 2 {
		t.Errorf("Iterations = %d, want ≤ 2", res.Run.Iterations)
	}
}

func TestHookInvoked(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 26)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	cfg := DefaultConfig(5)
	cfg.Hook = func(iter int, g *knngraph.Graph, evals int64) float64 {
		calls++
		return 0
	}
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Run.Iterations {
		t.Errorf("hook called %d times, want %d", calls, res.Run.Iterations)
	}
}

func TestDedup(t *testing.T) {
	cases := []struct {
		in, want []uint32
	}{
		{nil, nil},
		{[]uint32{1}, []uint32{1}},
		{[]uint32{1, 1, 1}, []uint32{1}},
		{[]uint32{3, 1, 3, 2, 1}, []uint32{3, 1, 2}},
	}
	for i, c := range cases {
		got := dedup(append([]uint32(nil), c.in...))
		if len(got) != len(c.want) {
			t.Errorf("case %d: dedup = %v, want %v", i, got, c.want)
			continue
		}
		for j := range c.want {
			if got[j] != c.want[j] {
				t.Errorf("case %d: dedup = %v, want %v", i, got, c.want)
				break
			}
		}
	}
}

func TestRandomInitSeedDeterminism(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 27)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.Seed = 7
	cfg.MaxIterations = 1
	a, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After one iteration the graph content is a pure function of the
	// initial graph (see knnheap order-independence), so equal seeds must
	// give equal graphs even with different interleavings.
	for u := 0; u < a.Graph.NumUsers(); u++ {
		la, lb := a.Graph.Neighbors(uint32(u)), b.Graph.Neighbors(uint32(u))
		if len(la) != len(lb) {
			t.Fatalf("user %d: graph differs across identical-seed runs", u)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("user %d: graph differs across identical-seed runs", u)
			}
		}
	}
}
