// Package nndescent implements the NN-Descent baseline of Dong, Moses &
// Li (WWW 2011), as described and configured in the paper (§IV-B, §VI):
//
//   - start from a random k-degree graph;
//   - per iteration, perform a local join around every user over its
//     forward and reverse neighbors, restricted by the new/old flag system
//     so a pair is only evaluated when at least one endpoint entered a
//     neighborhood since the previous iteration;
//   - terminate when the number of neighborhood changes in an iteration
//     falls below δ·k·|U| (original default δ = 0.001).
//
// The paper evaluates NN-Descent "without sampling (as in the original
// publication)", which Sample = 1 reproduces; smaller values enable the
// original's ρ-sampling of the join lists.
//
// The algorithm is plugged into kiff/internal/engine: Build below is a
// thin adapter that maps Config onto engine.Options.
package nndescent

import (
	"errors"
	"math/rand"
	"time"

	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/knngraph"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Name is the engine registry key of the NN-Descent builder.
const Name = "nn-descent"

func init() { engine.Register(builder{}) }

// Config parameterizes an NN-Descent run.
type Config struct {
	// K is the neighborhood size.
	K int
	// Delta is the termination threshold: stop when per-iteration changes
	// < Delta·K·|U| (original default 0.001). Delta == 0 selects the
	// default.
	Delta float64
	// Sample is the ρ sampling rate of the original algorithm in (0, 1];
	// 0 selects 1 (no sampling, the paper's configuration).
	Sample float64
	// Metric is the similarity measure; nil selects cosine.
	Metric similarity.Metric
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// MaxIterations caps the loop (0 = unlimited).
	MaxIterations int
	// Seed drives the random initial graph.
	Seed int64
	// Hook, when non-nil, observes every iteration (Fig 8 traces).
	Hook runstats.IterHook
}

// DefaultConfig returns the configuration used in the paper's evaluation.
func DefaultConfig(k int) Config {
	return Config{K: k, Delta: 0.001, Sample: 1, Metric: similarity.Cosine{}}
}

// Result bundles the constructed graph with the run's cost metrics.
type Result struct {
	Graph *knngraph.Graph
	Run   runstats.Run
}

// Build runs NN-Descent on the dataset through the engine.
func Build(d *dataset.Dataset, cfg Config) (*Result, error) {
	res, err := engine.Build(Name, d, engine.Options{
		K:             cfg.K,
		Delta:         cfg.Delta,
		Sample:        cfg.Sample,
		Metric:        cfg.Metric,
		Workers:       cfg.Workers,
		MaxIterations: cfg.MaxIterations,
		Seed:          cfg.Seed,
		Hook:          cfg.Hook,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Graph: res.Graph, Run: res.Run}, nil
}

// builder plugs NN-Descent into the engine.
type builder struct{}

// Name implements engine.Builder.
func (builder) Name() string { return Name }

// Normalize implements engine.Builder. Unlike KIFF, NN-Descent has no
// exhaustion point, so a negative (disabled) Delta would loop forever and
// is rejected unless MaxIterations bounds the run.
func (builder) Normalize(o *engine.Options) error {
	if o.Delta == 0 {
		o.Delta = 0.001
	}
	if o.Delta < 0 && o.MaxIterations == 0 {
		return errors.New("nndescent: Delta < 0 requires MaxIterations > 0")
	}
	if o.Sample == 0 {
		o.Sample = 1
	}
	if o.Sample < 0 || o.Sample > 1 {
		return errors.New("nndescent: Sample must be in (0, 1]")
	}
	return nil
}

// Refine implements engine.Builder: the random initial graph followed by
// the flagged local-join loop.
func (builder) Refine(s *engine.Session) error {
	o := s.Opts
	n := s.Dataset.NumUsers()

	// Random k-degree initial graph. Each user's picks are derived from a
	// per-user seed so the graph is independent of the worker layout.
	simStart := time.Now()
	parallel.Blocks(n, o.Workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			rng := rand.New(rand.NewSource(o.Seed ^ int64(u)*0x9e3779b1))
			need := o.K
			if need > n-1 {
				need = n - 1
			}
			seen := make(map[uint32]bool, need)
			for len(seen) < need {
				v := uint32(rng.Intn(n))
				if int(v) == u || seen[v] {
					continue
				}
				seen[v] = true
				s.Heaps.Update(uint32(u), v, s.Sim(uint32(u), v))
			}
		}
	})
	s.Wall.Add(runstats.PhaseSimilarity, time.Since(simStart))

	// Per-user join lists, rebuilt every iteration.
	newLists := make([][]uint32, n)
	oldLists := make([][]uint32, n)
	threshold := o.Delta * float64(o.K) * float64(n)

	// Per-worker join scratch, allocated on first use and reused across
	// iterations (the kernel's scatter accumulator in particular);
	// parallel's block layout is deterministic for fixed (n, workers), so
	// worker w always owns the same state.
	type joinWorker struct {
		kernel           similarity.Batcher
		nn, on, partners []uint32
		scores           []float64
	}
	nw := parallel.Workers(o.Workers)
	if nw > n && n > 0 {
		nw = n
	}
	joinWorkers := make([]joinWorker, nw)

	for iter := 0; ; iter++ {
		if o.MaxIterations > 0 && iter >= o.MaxIterations {
			break
		}
		// Phase 1 (candidate selection): harvest flags, build forward
		// new/old lists, then merge in the reverse directions.
		candStart := time.Now()
		parallel.Blocks(n, o.Workers, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				newLists[u], oldLists[u] = s.Heaps.CollectFlagged(newLists[u][:0], oldLists[u][:0], uint32(u))
			}
		})
		// Reverse neighbors: u ∈ rnew[v] iff v ∈ new[u]. Built serially —
		// it is a cheap scatter compared to the similarity work — then
		// sampled if ρ < 1.
		rnew := make([][]uint32, n)
		rold := make([][]uint32, n)
		for u := 0; u < n; u++ {
			for _, v := range newLists[u] {
				rnew[v] = append(rnew[v], uint32(u))
			}
			for _, v := range oldLists[u] {
				rold[v] = append(rold[v], uint32(u))
			}
		}
		sampleCap := int(o.Sample * float64(o.K))
		s.Wall.Add(runstats.PhaseCandidates, time.Since(candStart))

		// Phase 2 (similarity): local join around every user. Each join
		// pivot p is scored against its remaining join partners in one
		// batched kernel call per list (new×new tail, then new×old), so
		// p's profile is scattered twice per pivot instead of merged once
		// per pair. Pair set, evaluation order and heap-update order match
		// the pairwise loop exactly.
		joinStart := time.Now()
		changes := parallel.SumInt64(n, o.Workers, func(w, lo, hi int) int64 {
			var c int64
			ws := &joinWorkers[w]
			if ws.kernel == nil {
				ws.kernel = s.Batcher()
			}
			score := func(p uint32, cands []uint32) {
				if len(cands) == 0 {
					return
				}
				if cap(ws.scores) < len(cands) {
					ws.scores = make([]float64, len(cands))
				}
				sc := ws.scores[:len(cands)]
				ws.kernel.ScoreInto(sc, p, cands)
				for i, q := range cands {
					c += int64(s.Heaps.Update(p, q, sc[i]))
					c += int64(s.Heaps.Update(q, p, sc[i]))
				}
			}
			rng := rand.New(rand.NewSource(o.Seed ^ 0x5bf0_3635 ^ int64(lo+iter*n)))
			for u := lo; u < hi; u++ {
				nn := append(ws.nn[:0], newLists[u]...)
				nn = appendSampled(nn, rnew[u], sampleCap, o.Sample, rng)
				on := append(ws.on[:0], oldLists[u]...)
				on = appendSampled(on, rold[u], sampleCap, o.Sample, rng)
				nn = dedup(nn)
				on = dedup(on)
				ws.nn, ws.on = nn, on
				// new × new (each unordered pair once) and new × old; nn is
				// deduplicated, so the nn tail never contains p, but on may.
				for i, p := range nn {
					score(p, nn[i+1:])
					partners := ws.partners[:0]
					for _, q := range on {
						if q != p {
							partners = append(partners, q)
						}
					}
					ws.partners = partners
					score(p, partners)
				}
			}
			return c
		})
		s.Wall.Add(runstats.PhaseSimilarity, time.Since(joinStart))

		s.RecordIteration(iter, changes)
		if float64(changes) < threshold {
			break
		}
	}
	return nil
}

// appendSampled appends src to dst, keeping at most capN elements of src
// when sampling is active (rate < 1), chosen uniformly.
func appendSampled(dst, src []uint32, capN int, rate float64, rng *rand.Rand) []uint32 {
	if rate >= 1 || len(src) <= capN {
		return append(dst, src...)
	}
	// Reservoir-free partial Fisher–Yates over a scratch copy.
	idx := rng.Perm(len(src))[:capN]
	for _, i := range idx {
		dst = append(dst, src[i])
	}
	return dst
}

// dedup removes duplicates in place; join lists are O(k) long, so the
// quadratic membership scan is cheaper than sorting. Membership is checked
// against the already-kept prefix (out aliases xs, so earlier positions
// hold exactly the kept elements).
func dedup(xs []uint32) []uint32 {
	out := xs[:0]
outer:
	for i := 0; i < len(xs); i++ {
		x := xs[i]
		for _, y := range out {
			if y == x {
				continue outer
			}
		}
		out = append(out, x)
	}
	return out
}
