// Package nndescent implements the NN-Descent baseline of Dong, Moses &
// Li (WWW 2011), as described and configured in the paper (§IV-B, §VI):
//
//   - start from a random k-degree graph;
//   - per iteration, perform a local join around every user over its
//     forward and reverse neighbors, restricted by the new/old flag system
//     so a pair is only evaluated when at least one endpoint entered a
//     neighborhood since the previous iteration;
//   - terminate when the number of neighborhood changes in an iteration
//     falls below δ·k·|U| (original default δ = 0.001).
//
// The paper evaluates NN-Descent "without sampling (as in the original
// publication)", which Sample = 1 reproduces; smaller values enable the
// original's ρ-sampling of the join lists.
package nndescent

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/knnheap"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Config parameterizes an NN-Descent run.
type Config struct {
	// K is the neighborhood size.
	K int
	// Delta is the termination threshold: stop when per-iteration changes
	// < Delta·K·|U| (original default 0.001). Delta == 0 selects the
	// default.
	Delta float64
	// Sample is the ρ sampling rate of the original algorithm in (0, 1];
	// 0 selects 1 (no sampling, the paper's configuration).
	Sample float64
	// Metric is the similarity measure; nil selects cosine.
	Metric similarity.Metric
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// MaxIterations caps the loop (0 = unlimited).
	MaxIterations int
	// Seed drives the random initial graph.
	Seed int64
	// Hook, when non-nil, observes every iteration (Fig 8 traces).
	Hook runstats.IterHook
}

// DefaultConfig returns the configuration used in the paper's evaluation.
func DefaultConfig(k int) Config {
	return Config{K: k, Delta: 0.001, Sample: 1, Metric: similarity.Cosine{}}
}

// Result bundles the constructed graph with the run's cost metrics.
type Result struct {
	Graph *knngraph.Graph
	Run   runstats.Run
}

// Build runs NN-Descent on the dataset.
func Build(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := normalize(&cfg); err != nil {
		return nil, err
	}
	n := d.NumUsers()
	start := time.Now()
	var timer runstats.PhaseTimer

	preStart := time.Now()
	var evals atomic.Int64
	sim := similarity.Counted(cfg.Metric.Prepare(d), &evals)
	heaps := knnheap.NewSet(n, cfg.K)
	timer.Add(runstats.PhasePreprocess, time.Since(preStart))

	run := runstats.Run{Algorithm: "nn-descent", NumUsers: n, K: cfg.K}

	// Random k-degree initial graph. Each user's picks are derived from a
	// per-user seed so the graph is independent of the worker layout.
	simStart := time.Now()
	parallel.Blocks(n, cfg.Workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(u)*0x9e3779b1))
			need := cfg.K
			if need > n-1 {
				need = n - 1
			}
			seen := make(map[uint32]bool, need)
			for len(seen) < need {
				v := uint32(rng.Intn(n))
				if int(v) == u || seen[v] {
					continue
				}
				seen[v] = true
				heaps.Update(uint32(u), v, sim(uint32(u), v))
			}
		}
	})
	timer.Add(runstats.PhaseSimilarity, time.Since(simStart))

	// Per-user join lists, rebuilt every iteration.
	newLists := make([][]uint32, n)
	oldLists := make([][]uint32, n)
	threshold := cfg.Delta * float64(cfg.K) * float64(n)

	for iter := 0; ; iter++ {
		if cfg.MaxIterations > 0 && iter >= cfg.MaxIterations {
			break
		}
		// Phase 1 (candidate selection): harvest flags, build forward
		// new/old lists, then merge in the reverse directions.
		candStart := time.Now()
		parallel.Blocks(n, cfg.Workers, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				newLists[u], oldLists[u] = heaps.CollectFlagged(newLists[u][:0], oldLists[u][:0], uint32(u))
			}
		})
		// Reverse neighbors: u ∈ rnew[v] iff v ∈ new[u]. Built serially —
		// it is a cheap scatter compared to the similarity work — then
		// sampled if ρ < 1.
		rnew := make([][]uint32, n)
		rold := make([][]uint32, n)
		for u := 0; u < n; u++ {
			for _, v := range newLists[u] {
				rnew[v] = append(rnew[v], uint32(u))
			}
			for _, v := range oldLists[u] {
				rold[v] = append(rold[v], uint32(u))
			}
		}
		sampleCap := int(cfg.Sample * float64(cfg.K))
		timer.Add(runstats.PhaseCandidates, time.Since(candStart))

		// Phase 2 (similarity): local join around every user.
		joinStart := time.Now()
		changes := parallel.SumInt64(n, cfg.Workers, func(_, lo, hi int) int64 {
			var c int64
			var nn, on []uint32
			rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5bf0_3635 ^ int64(lo+iter*n)))
			for u := lo; u < hi; u++ {
				nn = append(nn[:0], newLists[u]...)
				nn = appendSampled(nn, rnew[u], sampleCap, cfg.Sample, rng)
				on = append(on[:0], oldLists[u]...)
				on = appendSampled(on, rold[u], sampleCap, cfg.Sample, rng)
				nn = dedup(nn)
				on = dedup(on)
				// new × new (each unordered pair once) and new × old.
				for i, p := range nn {
					for _, q := range nn[i+1:] {
						if p == q {
							continue
						}
						s := sim(p, q)
						c += int64(heaps.Update(p, q, s))
						c += int64(heaps.Update(q, p, s))
					}
					for _, q := range on {
						if p == q {
							continue
						}
						s := sim(p, q)
						c += int64(heaps.Update(p, q, s))
						c += int64(heaps.Update(q, p, s))
					}
				}
			}
			return c
		})
		timer.Add(runstats.PhaseSimilarity, time.Since(joinStart))

		run.Iterations++
		run.UpdatesPerIter = append(run.UpdatesPerIter, changes)
		run.EvalsAtIter = append(run.EvalsAtIter, evals.Load())
		if cfg.Hook != nil {
			r := cfg.Hook(iter, knngraph.FromSet(heaps), evals.Load())
			run.RecallAtIter = append(run.RecallAtIter, r)
		}
		if float64(changes) < threshold {
			break
		}
	}

	run.WallTime = time.Since(start)
	run.SimEvals = evals.Load()
	for p := runstats.PhasePreprocess; p <= runstats.PhaseSimilarity; p++ {
		run.PhaseTimes[p] = timer.Duration(p)
	}
	return &Result{Graph: knngraph.FromSet(heaps), Run: run}, nil
}

// appendSampled appends src to dst, keeping at most capN elements of src
// when sampling is active (rate < 1), chosen uniformly.
func appendSampled(dst, src []uint32, capN int, rate float64, rng *rand.Rand) []uint32 {
	if rate >= 1 || len(src) <= capN {
		return append(dst, src...)
	}
	// Reservoir-free partial Fisher–Yates over a scratch copy.
	idx := rng.Perm(len(src))[:capN]
	for _, i := range idx {
		dst = append(dst, src[i])
	}
	return dst
}

// dedup removes duplicates in place; join lists are O(k) long, so the
// quadratic membership scan is cheaper than sorting. Membership is checked
// against the already-kept prefix (out aliases xs, so earlier positions
// hold exactly the kept elements).
func dedup(xs []uint32) []uint32 {
	out := xs[:0]
outer:
	for i := 0; i < len(xs); i++ {
		x := xs[i]
		for _, y := range out {
			if y == x {
				continue outer
			}
		}
		out = append(out, x)
	}
	return out
}

func normalize(cfg *Config) error {
	if cfg.K < 1 {
		return errors.New("nndescent: K must be ≥ 1")
	}
	if cfg.Delta == 0 {
		cfg.Delta = 0.001
	}
	if cfg.Delta < 0 {
		return errors.New("nndescent: Delta must be ≥ 0")
	}
	if cfg.Sample == 0 {
		cfg.Sample = 1
	}
	if cfg.Sample < 0 || cfg.Sample > 1 {
		return errors.New("nndescent: Sample must be in (0, 1]")
	}
	if cfg.Metric == nil {
		cfg.Metric = similarity.Cosine{}
	}
	if cfg.MaxIterations < 0 {
		return errors.New("nndescent: MaxIterations must be ≥ 0")
	}
	return nil
}
