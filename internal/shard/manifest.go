package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"kiff/internal/dataset"
	"kiff/internal/fsio"
)

// ManifestSchema identifies the sharded-checkpoint manifest format.
const ManifestSchema = "kiff/shard-manifest/v1"

// ManifestFile is the manifest's file name inside a checkpoint
// directory.
const ManifestFile = "manifest.json"

// GraphFile names shard i's graph checkpoint inside the directory.
func GraphFile(i int) string { return fmt.Sprintf("graph.%d.kfg", i) }

// DataFile names shard i's dataset checkpoint inside the directory.
func DataFile(i int) string { return fmt.Sprintf("data.%d.kfd", i) }

// Manifest describes a sharded checkpoint directory: N per-shard graph +
// dataset files plus the few numbers needed to re-derive the user→shard
// mapping (the assignment itself is a pure function of Users, Shards and
// the pinned Hash scheme, so it is never serialized).
type Manifest struct {
	// Schema is ManifestSchema.
	Schema string `json:"schema"`
	// Shards is the shard count N; shard i's files are GraphFile(i) and
	// DataFile(i).
	Shards int `json:"shards"`
	// Users is the total number of global user IDs at save time.
	Users int `json:"users"`
	// K is the per-shard neighborhood size.
	K int `json:"k"`
	// Hash names the Owner scheme the assignment was derived with.
	Hash string `json:"hash"`
	// ShardUsers records each shard's population — redundant with
	// (Users, Shards, Hash), kept as a cheap integrity cross-check
	// against mismatched or truncated per-shard files.
	ShardUsers []int `json:"shard_users"`
	// WalLSNs, present when the pool was saved with write-ahead logs
	// attached, records each shard's log horizon at capture time: shard
	// i's checkpoint files cover its log records 1..WalLSNs[i], so replay
	// resumes above that. Absent (nil) for pools saved without logging —
	// the schema stays v1 because old readers ignore the field and a nil
	// horizon (replay everything) is exactly right for such checkpoints.
	WalLSNs []uint64 `json:"wal_lsns,omitempty"`
}

// WalFile names shard i's write-ahead log inside a WAL directory,
// alongside GraphFile/DataFile naming in checkpoint directories.
func WalFile(i int) string { return fmt.Sprintf("wal.%d.kfl", i) }

// Save checkpoints the pool into dir (created if missing): one graph and
// one dataset file per shard plus ManifestFile, written last and moved
// into place atomically (fsio.Write) — a directory containing a readable
// manifest is a complete checkpoint. When dir already holds a
// checkpoint, its manifest is removed before any shard file is touched,
// so a crash mid-save leaves a directory that fails to load (no
// manifest) rather than an old manifest silently validating
// mixed-generation shard files; keep generations in separate directories
// if rollback matters.
//
// Save holds the assignment lock and every shard lock for the duration:
// the manifest's population counts — and, with write-ahead logs
// attached, its per-shard wal_lsns — must describe the exact instant the
// shard files capture, and a mutation slipping into one shard between
// its capture and the log rotation below would be discarded by that
// rotation. Concurrent reads keep serving; concurrent mutations block.
//
// With logs attached (see WALMaintainer) the shard files and manifest
// are written durably (fsynced through the rename), then each shard's
// log is rotated — the rotation only ever discards records the durable
// checkpoint covers. A crash anywhere in between leaves either the old
// manifest-less directory plus full logs, or the new checkpoint plus
// not-yet-rotated logs whose covered prefix replay skips by LSN.
func (p *Pool) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := os.Remove(filepath.Join(dir, ManifestFile)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("shard: save: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, sl := range p.shards {
		sl.mu.Lock()
		defer sl.mu.Unlock()
	}
	m := p.mapping.Load()
	man := Manifest{
		Schema:     ManifestSchema,
		Shards:     len(p.shards),
		Users:      len(m.owner),
		K:          p.k,
		Hash:       hashScheme,
		ShardUsers: make([]int, len(p.shards)),
	}
	for i := range p.shards {
		man.ShardUsers[i] = len(m.global[i])
	}
	logged := 0
	for _, sl := range p.shards {
		if wm, ok := sl.m.(WALMaintainer); ok && wm.WALAttached() {
			logged++
		}
	}
	if logged > 0 && logged < len(p.shards) {
		return fmt.Errorf("shard: save: %d of %d shards have a write-ahead log attached — all or none", logged, len(p.shards))
	}
	walled := logged == len(p.shards)
	if walled {
		man.WalLSNs = make([]uint64, len(p.shards))
		for i, sl := range p.shards {
			man.WalLSNs[i] = sl.m.(WALMaintainer).WALLastLSN()
		}
	}
	persist := fsio.Write
	if walled {
		// The rotation below discards log records; the files standing in
		// for them must survive everything the log would have.
		persist = fsio.WriteDurable
	}
	for i, sl := range p.shards {
		if err := saveShard(dir, i, sl, persist); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	raw = append(raw, '\n')
	if err := persist(filepath.Join(dir, ManifestFile), func(f *os.File) error {
		_, err := f.Write(raw)
		return err
	}); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if walled {
		for i, sl := range p.shards {
			if err := sl.m.(WALMaintainer).WALRotate(); err != nil {
				return fmt.Errorf("shard: save: rotate shard %d log: %w", i, err)
			}
		}
	}
	return nil
}

// saveShard writes one shard's graph and dataset; the caller holds the
// shard lock.
func saveShard(dir string, i int, sl *slot, persist func(string, func(*os.File) error) error) error {
	if err := persist(filepath.Join(dir, GraphFile(i)), func(f *os.File) error {
		_, err := sl.m.Graph().WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	return persist(filepath.Join(dir, DataFile(i)), func(f *os.File) error {
		return dataset.WriteBinary(f, sl.m.Dataset())
	})
}

// ReadManifest loads and validates a checkpoint directory's manifest.
// Callers (kiff.LoadShardedMaintainer) load the per-shard files it
// names and hand the rebuilt maintainers to NewPool, which re-derives
// and re-verifies the user→shard assignment.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest: %w", err)
	}
	if man.Schema != ManifestSchema {
		return Manifest{}, fmt.Errorf("shard: manifest: schema %q, want %q", man.Schema, ManifestSchema)
	}
	if man.Hash != hashScheme {
		return Manifest{}, fmt.Errorf("shard: manifest: hash scheme %q, want %q", man.Hash, hashScheme)
	}
	if man.Shards < 1 || man.Shards > MaxShards {
		return Manifest{}, fmt.Errorf("shard: manifest: shard count %d outside 1..%d", man.Shards, MaxShards)
	}
	if man.Users < 0 {
		return Manifest{}, fmt.Errorf("shard: manifest: negative user count %d", man.Users)
	}
	if len(man.ShardUsers) != man.Shards {
		return Manifest{}, fmt.Errorf("shard: manifest: %d shard_users entries for %d shards", len(man.ShardUsers), man.Shards)
	}
	if man.WalLSNs != nil && len(man.WalLSNs) != man.Shards {
		return Manifest{}, fmt.Errorf("shard: manifest: %d wal_lsns entries for %d shards", len(man.WalLSNs), man.Shards)
	}
	counts := make([]int, man.Shards)
	for g := 0; g < man.Users; g++ {
		counts[Owner(uint32(g), man.Shards)]++
	}
	for i, want := range counts {
		if man.ShardUsers[i] != want {
			return Manifest{}, fmt.Errorf("shard: manifest: shard %d records %d users, the %d-user/%d-shard partition owns %d",
				i, man.ShardUsers[i], man.Users, man.Shards, want)
		}
	}
	return man, nil
}
