package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"kiff/internal/dataset"
)

// ManifestSchema identifies the sharded-checkpoint manifest format.
const ManifestSchema = "kiff/shard-manifest/v1"

// ManifestFile is the manifest's file name inside a checkpoint
// directory.
const ManifestFile = "manifest.json"

// GraphFile names shard i's graph checkpoint inside the directory.
func GraphFile(i int) string { return fmt.Sprintf("graph.%d.kfg", i) }

// DataFile names shard i's dataset checkpoint inside the directory.
func DataFile(i int) string { return fmt.Sprintf("data.%d.kfd", i) }

// Manifest describes a sharded checkpoint directory: N per-shard graph +
// dataset files plus the few numbers needed to re-derive the user→shard
// mapping (the assignment itself is a pure function of Users, Shards and
// the pinned Hash scheme, so it is never serialized).
type Manifest struct {
	// Schema is ManifestSchema.
	Schema string `json:"schema"`
	// Shards is the shard count N; shard i's files are GraphFile(i) and
	// DataFile(i).
	Shards int `json:"shards"`
	// Users is the total number of global user IDs at save time.
	Users int `json:"users"`
	// K is the per-shard neighborhood size.
	K int `json:"k"`
	// Hash names the Owner scheme the assignment was derived with.
	Hash string `json:"hash"`
	// ShardUsers records each shard's population — redundant with
	// (Users, Shards, Hash), kept as a cheap integrity cross-check
	// against mismatched or truncated per-shard files.
	ShardUsers []int `json:"shard_users"`
}

// Save checkpoints the pool into dir (created if missing): one graph and
// one dataset file per shard plus ManifestFile, written last and moved
// into place atomically — a directory containing a readable manifest is
// a complete checkpoint. When dir already holds a checkpoint, its
// manifest is removed before any shard file is touched, so a crash
// mid-save leaves a directory that fails to load (no manifest) rather
// than an old manifest silently validating mixed-generation shard
// files; keep generations in separate directories if rollback matters.
// Save holds the assignment lock for the duration, so the manifest's
// population counts are consistent across shards; concurrent reads keep
// serving, concurrent mutations block.
func (p *Pool) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := os.Remove(filepath.Join(dir, ManifestFile)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("shard: save: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	m := p.mapping.Load()
	man := Manifest{
		Schema:     ManifestSchema,
		Shards:     len(p.shards),
		Users:      len(m.owner),
		K:          p.k,
		Hash:       hashScheme,
		ShardUsers: make([]int, len(p.shards)),
	}
	for i := range p.shards {
		man.ShardUsers[i] = len(m.global[i])
	}
	for i, sl := range p.shards {
		if err := p.saveShard(dir, i, sl); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	raw = append(raw, '\n')
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	return nil
}

// saveShard writes one shard's graph and dataset under its shard lock.
func (p *Pool) saveShard(dir string, i int, sl *slot) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if err := writeFileWith(filepath.Join(dir, GraphFile(i)), func(f *os.File) error {
		_, err := sl.m.Graph().WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	return writeFileWith(filepath.Join(dir, DataFile(i)), func(f *os.File) error {
		return dataset.WriteBinary(f, sl.m.Dataset())
	})
}

// writeFileWith writes path through a temp file renamed into place —
// propagating the first error, including Close's (the buffered write
// may fail late). The rename matters beyond crash atomicity: a reader
// may be serving the previous generation of path zero-copy via mmap,
// and os.Create would truncate that very inode under its mappings
// (SIGBUS on next touch). Rename swaps the directory entry instead; the
// old inode lives on under the existing mapping.
func writeFileWith(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadManifest loads and validates a checkpoint directory's manifest.
// Callers (kiff.LoadShardedMaintainer) load the per-shard files it
// names and hand the rebuilt maintainers to NewPool, which re-derives
// and re-verifies the user→shard assignment.
func ReadManifest(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest: %w", err)
	}
	if man.Schema != ManifestSchema {
		return Manifest{}, fmt.Errorf("shard: manifest: schema %q, want %q", man.Schema, ManifestSchema)
	}
	if man.Hash != hashScheme {
		return Manifest{}, fmt.Errorf("shard: manifest: hash scheme %q, want %q", man.Hash, hashScheme)
	}
	if man.Shards < 1 || man.Shards > MaxShards {
		return Manifest{}, fmt.Errorf("shard: manifest: shard count %d outside 1..%d", man.Shards, MaxShards)
	}
	if man.Users < 0 {
		return Manifest{}, fmt.Errorf("shard: manifest: negative user count %d", man.Users)
	}
	if len(man.ShardUsers) != man.Shards {
		return Manifest{}, fmt.Errorf("shard: manifest: %d shard_users entries for %d shards", len(man.ShardUsers), man.Shards)
	}
	counts := make([]int, man.Shards)
	for g := 0; g < man.Users; g++ {
		counts[Owner(uint32(g), man.Shards)]++
	}
	for i, want := range counts {
		if man.ShardUsers[i] != want {
			return Manifest{}, fmt.Errorf("shard: manifest: shard %d records %d users, the %d-user/%d-shard partition owns %d",
				i, man.ShardUsers[i], man.Users, man.Shards, want)
		}
	}
	return man, nil
}
