package shard

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"kiff/internal/knngraph"
)

// TestOwnerPinned pins the hash scheme: these values are what every
// saved manifest's assignment was derived with, so a change here is a
// checkpoint-format break and must come with a new hashScheme name.
func TestOwnerPinned(t *testing.T) {
	cases := []struct {
		g    uint32
		n    int
		want int
	}{
		{0, 2, 1}, {1, 2, 1}, {2, 2, 0}, {3, 2, 1}, {42, 2, 1}, {1000000, 2, 1},
		{0, 4, 3}, {1, 4, 1}, {2, 4, 2}, {3, 4, 1}, {42, 4, 1}, {1000000, 4, 3},
		{0, 7, 2}, {1, 7, 2}, {2, 7, 4}, {3, 7, 2}, {42, 7, 5}, {1000000, 7, 4},
	}
	for _, c := range cases {
		if got := Owner(c.g, c.n); got != c.want {
			t.Errorf("Owner(%d, %d) = %d, want %d (hash scheme changed — bump hashScheme and the manifest schema)",
				c.g, c.n, got, c.want)
		}
	}
}

// TestOwnerBalance sanity-checks the partition quality the pool's
// scaling story rests on: no shard should end up grossly over-loaded.
func TestOwnerBalance(t *testing.T) {
	const users = 100000
	for _, n := range []int{2, 4, 16} {
		counts := make([]int, n)
		for g := 0; g < users; g++ {
			counts[Owner(uint32(g), n)]++
		}
		want := users / n
		for s, c := range counts {
			if c < want*8/10 || c > want*12/10 {
				t.Errorf("shards=%d: shard %d owns %d users, expected within 20%% of %d", n, s, c, want)
			}
		}
	}
}

func TestMergeTopKAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		nLists := 1 + rng.Intn(6)
		lists := make([][]knngraph.Neighbor, nLists)
		var all []knngraph.Neighbor
		id := uint32(0)
		for i := range lists {
			n := rng.Intn(8)
			for j := 0; j < n; j++ {
				// Coarse similarities force ties across lists.
				lists[i] = append(lists[i], knngraph.Neighbor{ID: id, Sim: float64(rng.Intn(4))})
				id++
			}
			knngraph.SortNeighbors(lists[i])
			all = append(all, lists[i]...)
		}
		knngraph.SortNeighbors(all)
		k := 1 + rng.Intn(10)
		got := MergeTopK(lists, k)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if !slices.Equal(got, want) {
			t.Fatalf("round %d: MergeTopK(k=%d) = %v, want %v", round, k, got, want)
		}
	}
}

// TestMergeTopKHugeK: k comes straight from query requests, so an
// absurd value must not drive the output allocation (regression: the
// capacity hint used k before clamping to the lists' total length).
func TestMergeTopKHugeK(t *testing.T) {
	lists := [][]knngraph.Neighbor{{{ID: 1, Sim: 0.5}}, {{ID: 2, Sim: 0.25}}}
	got := MergeTopK(lists, 1<<60)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("MergeTopK(huge k) = %v", got)
	}
}

func TestMergeTopKEmpty(t *testing.T) {
	if got := MergeTopK(nil, 5); len(got) != 0 {
		t.Errorf("MergeTopK(nil) = %v, want empty", got)
	}
	if got := MergeTopK([][]knngraph.Neighbor{nil, {}}, 5); len(got) != 0 {
		t.Errorf("MergeTopK(empty lists) = %v, want empty", got)
	}
}

// writeManifest drops a manifest JSON into dir for the validation tests.
func writeManifest(t *testing.T, dir string, m Manifest) {
	t.Helper()
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// validManifest returns a manifest whose counts agree with Owner.
func validManifest(shards, users int) Manifest {
	m := Manifest{
		Schema:     ManifestSchema,
		Shards:     shards,
		Users:      users,
		K:          5,
		Hash:       hashScheme,
		ShardUsers: make([]int, shards),
	}
	for g := 0; g < users; g++ {
		m.ShardUsers[Owner(uint32(g), shards)]++
	}
	return m
}

func TestReadManifestValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Manifest)
		wantErr string
	}{
		{"ok", func(m *Manifest) {}, ""},
		{"bad schema", func(m *Manifest) { m.Schema = "kiff/other/v9" }, "schema"},
		{"bad hash", func(m *Manifest) { m.Hash = "fnv/v1" }, "hash scheme"},
		{"zero shards", func(m *Manifest) { m.Shards = 0; m.ShardUsers = nil }, "shard count"},
		{"too many shards", func(m *Manifest) { m.Shards = MaxShards + 1 }, "shard count"},
		{"negative users", func(m *Manifest) { m.Users = -1 }, "negative user count"},
		{"count list mismatch", func(m *Manifest) { m.ShardUsers = m.ShardUsers[:2] }, "shard_users"},
		{"count drift", func(m *Manifest) { m.ShardUsers[0]++ }, "partition owns"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			m := validManifest(4, 100)
			c.mutate(&m)
			writeManifest(t, dir, m)
			_, err := ReadManifest(dir)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("ReadManifest: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ReadManifest error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestReadManifestMissing(t *testing.T) {
	if _, err := ReadManifest(t.TempDir()); err == nil {
		t.Fatal("ReadManifest on an empty dir must fail")
	}
}
