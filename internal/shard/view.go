package shard

import (
	"container/heap"
	"fmt"
	"sync"

	"kiff/internal/knngraph"
	"kiff/internal/sparse"
)

// View is a pinned scatter-gather read view: the mapping plus every
// shard's published snapshot, loaded once. A View stays valid forever,
// like the snapshots it holds; serving code typically pins one View per
// request so routing and fan-out see a single consistent population.
//
// The mapping is loaded before the snapshots, so a snapshot may cover a
// user the pinned mapping does not know yet (a concurrent insert that
// completed in between); such users are invisible through this View —
// dropped from shard answers rather than surfaced with an untranslatable
// local ID. The converse window (mapping knows the user, owner shard has
// not published it yet) surfaces as ErrPending from Neighbors. Both
// windows are transient and close at the next View.
type View struct {
	k     int
	m     *mapping
	snaps []Reader
}

// View pins the current mapping and every shard's current snapshot.
func (p *Pool) View() *View {
	v := &View{k: p.k, m: p.mapping.Load(), snaps: make([]Reader, len(p.shards))}
	for i, s := range p.shards {
		v.snaps[i] = s.m.Reader()
	}
	return v
}

// Version sums the pinned shards' snapshot versions (see Pool.Version).
func (v *View) Version() uint64 {
	var sum uint64
	for _, s := range v.snaps {
		sum += s.Version()
	}
	return sum
}

// NumUsers returns the number of global users the pinned mapping covers.
func (v *View) NumUsers() int { return len(v.m.owner) }

// K returns the per-shard neighborhood size.
func (v *View) K() int { return v.k }

// route resolves a global ID against the pinned view.
func (v *View) route(g uint32) (s int, local uint32, err error) {
	if int(g) >= len(v.m.owner) {
		return 0, 0, fmt.Errorf("shard: user %d out of range (have %d users): %w", g, len(v.m.owner), ErrNotFound)
	}
	s = int(v.m.owner[g])
	local = v.m.local[g]
	if int(local) >= v.snaps[s].NumUsers() {
		return 0, 0, fmt.Errorf("shard: user %d: %w", g, ErrPending)
	}
	return s, local, nil
}

// Neighbors returns global user g's KNN list from its owning shard,
// relabeled to global IDs. The list is the shard-local neighborhood —
// the partition-level approximation documented on the package — and
// keeps the canonical (sim desc, global ID asc) order, because local ID
// order within a shard is global ID order. Neighbors whose IDs the
// pinned mapping does not cover yet (concurrent inserts) are dropped.
func (v *View) Neighbors(g uint32) ([]knngraph.Neighbor, error) {
	s, local, err := v.route(g)
	if err != nil {
		return nil, err
	}
	glob := v.m.global[s]
	nbs := v.snaps[s].Neighbors(local)
	out := make([]knngraph.Neighbor, 0, len(nbs))
	for _, nb := range nbs {
		if int(nb.ID) < len(glob) {
			out = append(out, knngraph.Neighbor{ID: glob[nb.ID], Sim: nb.Sim})
		}
	}
	return out, nil
}

// Profile returns global user g's item profile from its owning shard's
// frozen view (treat as read-only), or false for unknown/pending IDs.
func (v *View) Profile(g uint32) (sparse.Vector, bool) {
	s, local, err := v.route(g)
	if err != nil {
		return sparse.Vector{}, false
	}
	return v.snaps[s].Profile(local)
}

// Query fans the profile out to every shard's snapshot concurrently,
// relabels each shard's top-k to global IDs, and splices the lists with
// a merge heap into the global top-k.
//
// Exactness: with a negative budget each shard evaluates every local
// user sharing an item with the profile, so the union of shard
// candidates is exactly the unsharded candidate set, and per-shard
// similarities equal the unsharded ones for the profile-local metrics
// (cosine, jaccard, dice, overlap — adamic-adar weights by dataset-wide
// item popularity and is therefore shard-approximate). Every shard list
// and the merge use the same total order — similarity descending, global
// ID ascending — and an element of the global top-k is necessarily in
// its own shard's top-k, so the spliced result is identical, entry for
// entry, to the single-maintainer answer. A non-negative budget is
// applied per shard (up to N× the single-index evaluation spend, never
// fewer candidates than any one shard would see).
func (v *View) Query(profile sparse.Vector, k, budget int) ([]knngraph.Neighbor, error) {
	lists := make([][]knngraph.Neighbor, len(v.snaps))
	errs := make([]error, len(v.snaps))
	var wg sync.WaitGroup
	for s := range v.snaps {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, err := v.snaps[s].Query(profile, k, budget)
			if err != nil {
				errs[s] = err
				return
			}
			glob := v.m.global[s]
			out := make([]knngraph.Neighbor, 0, len(res))
			for _, nb := range res {
				if int(nb.ID) < len(glob) {
					out = append(out, knngraph.Neighbor{ID: glob[nb.ID], Sim: nb.Sim})
				}
			}
			lists[s] = out
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Validation errors (bad k, malformed profile) are identical
			// across shards; report the first.
			return nil, err
		}
	}
	return MergeTopK(lists, k), nil
}

// mergeHeap is a min-heap of non-empty neighbor lists, ordered by their
// head elements under the canonical neighbor order — the splice
// structure of the scatter-gather read path.
type mergeHeap [][]knngraph.Neighbor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return knngraph.CompareNeighbors(h[i][0], h[j][0]) < 0
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.([]knngraph.Neighbor)) }
func (h *mergeHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// MergeTopK splices per-shard result lists — each already sorted by
// knngraph.CompareNeighbors — into the first k elements of their merged
// order. Cost is O(k log N) pops over N lists, independent of list
// lengths.
func MergeTopK(lists [][]knngraph.Neighbor, k int) []knngraph.Neighbor {
	h := make(mergeHeap, 0, len(lists))
	total := 0
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, l)
			total += len(l)
		}
	}
	heap.Init(&h)
	// Capacity is bounded by what the lists actually hold, never by k
	// alone — k arrives from query requests and may be absurdly large.
	out := make([]knngraph.Neighbor, 0, min(k, total))
	for len(out) < k && h.Len() > 0 {
		top := h[0]
		out = append(out, top[0])
		if len(top) > 1 {
			h[0] = top[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}
