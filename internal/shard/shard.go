// Package shard partitions a maintained KNN population across N
// independent single-writer maintainers and splices their answers back
// together at query time — the partition-then-merge construction of
// Cluster-and-Conquer applied to KIFF's serving layer.
//
// The decomposition is sound because KIFF's candidate selection is
// pivot-free: a user's relevant candidates are exactly the users it
// shares items with, so a query fanned out to every shard's item-profile
// index discovers the same candidate set the unsharded index would, and
// an exact (unbudgeted) scatter-gather Query returns exactly the
// single-maintainer top-k (see View.Query for the tie-order argument).
// Per-shard KNN *graphs*, by contrast, are shard-local approximations:
// Neighbors(u) answers from u's own shard, which is the
// Cluster-and-Conquer trade — graph quality within a partition for
// insert and rebuild throughput that scales with the shard count,
// because every shard runs its mutations behind its own lock and its
// candidate sets are ~1/N the size.
//
// Ownership is a stable hash of the global user ID (Owner), so the
// user→shard mapping survives AddUser and process restarts: a reloaded
// pool re-derives the same assignment from the manifest's user count
// alone. Global IDs are assigned in increasing order and routed to the
// owner shard in assignment order, which makes each shard's local IDs an
// order-preserving subsequence of the global IDs — the property the
// scatter-gather merge relies on to keep the canonical
// (similarity desc, global ID asc) tie order intact after relabeling.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
	"kiff/internal/sparse"
	"kiff/internal/wal"
)

// MaxShards bounds the shard count: enough for any single-process
// deployment, small enough that per-operation fan-out stays sane.
const MaxShards = 1024

// Owner maps a global user ID onto its owning shard: a splitmix64-style
// finalizer over the ID, reduced modulo the shard count. The function is
// pinned — checkpoints record the scheme name ("splitmix64/v1") and a
// reloaded pool re-derives every assignment from it, so changing the
// mixing constants is a manifest-schema break.
func Owner(g uint32, shards int) int {
	x := uint64(g) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// hashScheme names the Owner function in manifests.
const hashScheme = "splitmix64/v1"

// Reader is one shard's immutable read view — the method subset of
// kiff.Snapshot the scatter-gather layer consumes. A Reader stays valid
// and internally consistent forever, like the snapshot it is.
type Reader interface {
	// Version is the shard's publication sequence number.
	Version() uint64
	// NumUsers is the number of (local) users the view covers.
	NumUsers() int
	// K is the neighborhood size of the shard graph.
	K() int
	// Neighbors returns local user u's shard-local KNN list.
	Neighbors(u uint32) []knngraph.Neighbor
	// Query returns the k most similar local users to an external
	// profile; budget bounds similarity evaluations (negative = exact).
	Query(profile sparse.Vector, k, budget int) ([]knngraph.Neighbor, error)
	// Profile returns local user u's frozen profile and whether u exists
	// in the view. (The scatter-gather layer needs per-user reads only,
	// so readers expose profiles rather than a whole frozen dataset —
	// which also keeps the interface satisfiable by page-shared views.)
	Profile(u uint32) (sparse.Vector, bool)
}

// Maintainer is the per-shard write interface: the method subset of
// kiff.Maintainer the pool drives, plus Reader giving the current
// published view. Implementations are single-writer; the pool serializes
// calls per shard behind the shard lock.
type Maintainer interface {
	InsertBatch(ps []sparse.Vector) ([]uint32, error)
	AddRating(u uint32, item uint32, rating float64) error
	Rebuild(dirty []uint32) error
	Reader() Reader
	Graph() *knngraph.Graph
	Dataset() *dataset.Dataset
	Counters() runstats.Counters
}

// WALMaintainer is the optional durability extension of Maintainer: a
// shard whose maintainer write-ahead-logs its mutations (kiff.Maintainer
// with an attached log implements it). Save uses it to record each
// shard's log horizon in the manifest and to rotate the logs once the
// checkpoint is durably complete — either every shard logs or none; a
// mixed pool is a configuration error Save rejects.
type WALMaintainer interface {
	// WALAttached reports whether a write-ahead log is attached.
	WALAttached() bool
	// WALLastLSN is the shard-local LSN of the last logged mutation.
	WALLastLSN() uint64
	// WALRotate discards the log records a completed checkpoint covers.
	WALRotate() error
	// WALCounters snapshots the log's activity counters (any goroutine).
	WALCounters() wal.Counters
	// WALError is the append failure that fail-stopped the shard, if any
	// (any goroutine).
	WALError() error
	// CloseWAL syncs, closes and detaches the log.
	CloseWAL() error
}

// WALAttached reports whether every shard write-ahead-logs its
// mutations. Mixed pools are rejected at Save; a pool assembled by the
// WAL-aware constructors is always all-or-nothing.
func (p *Pool) WALAttached() bool {
	for _, sl := range p.shards {
		wm, ok := sl.m.(WALMaintainer)
		if !ok || !wm.WALAttached() {
			return false
		}
	}
	return true
}

// WALCounters sums the shards' log counters. The LastLSN field is the
// sum of the per-shard LSNs — still a monotonic mutation counter, just
// not a single log position. Safe from any goroutine.
func (p *Pool) WALCounters() wal.Counters {
	var out wal.Counters
	for _, sl := range p.shards {
		if wm, ok := sl.m.(WALMaintainer); ok && wm.WALAttached() {
			c := wm.WALCounters()
			out.Appended += c.Appended
			out.AppendedBytes += c.AppendedBytes
			out.Fsyncs += c.Fsyncs
			out.AppendErrors += c.AppendErrors
			out.Replayed += c.Replayed
			out.TruncatedBytes += c.TruncatedBytes
			out.LastLSN += c.LastLSN
		}
	}
	return out
}

// WALError returns the append failures that fail-stopped any shard,
// joined, or nil. Safe from any goroutine.
func (p *Pool) WALError() error {
	var errs []error
	for i, sl := range p.shards {
		if wm, ok := sl.m.(WALMaintainer); ok {
			if err := wm.WALError(); err != nil {
				errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
			}
		}
	}
	return errors.Join(errs...)
}

// CloseWAL syncs and closes every shard's log under its shard lock —
// the graceful-shutdown step of a logged pool (mutations must have
// quiesced; a log-less shard is a no-op).
func (p *Pool) CloseWAL() error {
	var errs []error
	for i, sl := range p.shards {
		wm, ok := sl.m.(WALMaintainer)
		if !ok {
			continue
		}
		sl.mu.Lock()
		err := wm.CloseWAL()
		sl.mu.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Stats is one shard's point-in-time observability record, mirrored into
// an atomic after every pool mutation so /stats-style readers never
// touch the writer's live state.
type Stats struct {
	// Shard is the shard index.
	Shard int
	// Users is the number of users the shard's published view covers.
	Users int
	// Version is the shard's snapshot publication counter.
	Version uint64
	// Counters are the shard's cumulative maintenance counters.
	Counters runstats.Counters
}

// mapping is the immutable global↔local ID translation table, replaced
// wholesale (atomic.Pointer) whenever users are assigned. Appends reuse
// the backing arrays — a published mapping's slices never have elements
// below their length overwritten, so readers holding an old *mapping see
// a consistent prefix.
type mapping struct {
	// owner maps global ID → shard index.
	owner []uint16
	// local maps global ID → index within the owner shard.
	local []uint32
	// global maps (shard, local) → global ID; each row is ascending.
	global [][]uint32
}

// slot pairs one shard's maintainer with its write lock and mirrored
// stats.
type slot struct {
	mu    sync.Mutex
	m     Maintainer
	stats atomic.Pointer[Stats]
}

// refreshStats re-mirrors the shard's observable state. Callers hold the
// shard lock (or are constructing the pool).
func (s *slot) refreshStats(i int) {
	r := s.m.Reader()
	s.stats.Store(&Stats{
		Shard:    i,
		Users:    r.NumUsers(),
		Version:  r.Version(),
		Counters: s.m.Counters(),
	})
}

// Pool hash-partitions users across independent maintainers and serves
// reads by scatter-gather over their published snapshots.
//
// Concurrency model: reads (View, Neighbors, Query, Profile, NumUsers,
// ShardStats) are safe from any goroutine at any time — they load the
// atomic mapping and the shards' atomic snapshots and never block on a
// writer. Writes are safe to issue concurrently too: the pool assigns
// global IDs under a short pool-wide lock, then applies each mutation
// under its owner shard's lock only, so inserts and rebuilds targeting
// different shards genuinely run in parallel. (Each underlying
// maintainer remains single-writer; the shard lock is what enforces it.)
//
// A freshly assigned user becomes visible in two steps: the mapping
// learns the ID first, the owner shard's snapshot catches up when its
// insert completes. In the window between the two, Neighbors returns
// ErrPending for that ID and queries simply do not see it yet — readers
// never observe torn state.
type Pool struct {
	k      int
	shards []*slot

	// mu serializes global ID assignment and mapping publication. Lock
	// order is always pool → shard; no path acquires mu while holding a
	// shard lock.
	mu      sync.Mutex
	mapping atomic.Pointer[mapping]
}

// ErrPending is returned by Neighbors for a user whose ID has been
// assigned but whose owning shard has not yet published the insert — the
// transient window of a concurrent Insert.
var ErrPending = errors.New("shard: user accepted but not yet visible")

// ErrNotFound is returned for user IDs the pool has never assigned.
var ErrNotFound = errors.New("shard: no such user")

// NewPool assembles a pool over already-built per-shard maintainers.
// The shards must have been partitioned with Owner over exactly numUsers
// global IDs, in ascending global order — NewPool re-derives the mapping
// from that contract and rejects maintainers whose populations do not
// match it, which is how a corrupt or mixed-up checkpoint fails fast
// instead of serving misrouted answers. All shards must agree on k.
func NewPool(ms []Maintainer, numUsers int) (*Pool, error) {
	if len(ms) < 1 || len(ms) > MaxShards {
		return nil, fmt.Errorf("shard: pool needs 1..%d shards, got %d", MaxShards, len(ms))
	}
	if numUsers < 0 {
		return nil, fmt.Errorf("shard: negative user count %d", numUsers)
	}
	n := len(ms)
	m := &mapping{
		owner:  make([]uint16, numUsers),
		local:  make([]uint32, numUsers),
		global: make([][]uint32, n),
	}
	for g := 0; g < numUsers; g++ {
		s := Owner(uint32(g), n)
		m.owner[g] = uint16(s)
		m.local[g] = uint32(len(m.global[s]))
		m.global[s] = append(m.global[s], uint32(g))
	}
	p := &Pool{shards: make([]*slot, n)}
	for i, sm := range ms {
		r := sm.Reader()
		if r.NumUsers() != len(m.global[i]) {
			return nil, fmt.Errorf("shard: shard %d holds %d users, the %d-user/%d-shard partition owns %d (checkpoint from a different population?)",
				i, r.NumUsers(), numUsers, n, len(m.global[i]))
		}
		if i == 0 {
			p.k = r.K()
		} else if r.K() != p.k {
			return nil, fmt.Errorf("shard: shard %d has k = %d, shard 0 has k = %d", i, r.K(), p.k)
		}
		p.shards[i] = &slot{m: sm}
		p.shards[i].refreshStats(i)
	}
	p.mapping.Store(m)
	return p, nil
}

// NumShards returns the shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// K returns the per-shard neighborhood size.
func (p *Pool) K() int { return p.k }

// NumUsers returns the number of assigned global user IDs (including any
// still pending publication by their owner shard).
func (p *Pool) NumUsers() int { return len(p.mapping.Load().owner) }

// Version returns the sum of the shards' snapshot versions — a
// monotonic publication counter for staleness checks, advancing whenever
// any shard republishes.
func (p *Pool) Version() uint64 {
	var v uint64
	for _, s := range p.shards {
		v += s.m.Reader().Version()
	}
	return v
}

// ShardStats returns every shard's mirrored observability record.
// Lock-free; safe from any goroutine.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, s := range p.shards {
		out[i] = *s.stats.Load()
	}
	return out
}

// Counters aggregates the per-shard maintenance counters.
func (p *Pool) Counters() runstats.Counters {
	var c runstats.Counters
	for _, s := range p.shards {
		c.Add(s.stats.Load().Counters)
	}
	return c
}

// assign reserves global IDs for n new users and publishes the extended
// mapping, returning the base global ID, the previous mapping length's
// mapping successor, and the per-shard assignment. It locks the involved
// shard slots *before* releasing the pool lock, so per-shard insertion
// order always matches assignment order (local IDs are handed out
// sequentially by the underlying maintainers).
func (p *Pool) assign(n int) (base uint32, perShard map[int][]uint32, locked []int) {
	p.mu.Lock()
	old := p.mapping.Load()
	nm := &mapping{
		owner:  old.owner,
		local:  old.local,
		global: make([][]uint32, len(old.global)),
	}
	copy(nm.global, old.global)
	base = uint32(len(old.owner))
	perShard = make(map[int][]uint32)
	for i := 0; i < n; i++ {
		g := base + uint32(i)
		s := Owner(g, len(p.shards))
		nm.owner = append(nm.owner, uint16(s))
		nm.local = append(nm.local, uint32(len(nm.global[s])))
		nm.global[s] = append(nm.global[s], g)
		perShard[s] = append(perShard[s], g)
	}
	p.mapping.Store(nm)
	locked = make([]int, 0, len(perShard))
	for s := range perShard {
		p.shards[s].mu.Lock()
		locked = append(locked, s)
	}
	p.mu.Unlock()
	return base, perShard, locked
}

// Insert appends a new user, routes it to its owner shard, and returns
// its global ID. The profile is validated before an ID is assigned, so a
// malformed profile never burns a slot in the mapping.
func (p *Pool) Insert(profile sparse.Vector) (uint32, error) {
	ids, err := p.InsertBatch([]sparse.Vector{profile})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// InsertBatch inserts a batch of users, grouping them by owner shard and
// running the per-shard sub-batches in parallel — the insert-throughput
// scaling path. The returned global IDs are in input order (they are the
// contiguous block starting at the current population size). Profiles
// are validated up front; on a validation error nothing is assigned.
func (p *Pool) InsertBatch(profiles []sparse.Vector) ([]uint32, error) {
	for i := range profiles {
		if err := profiles[i].Validate(); err != nil {
			return nil, fmt.Errorf("shard: insert batch: profile %d: %w", i, err)
		}
	}
	if len(profiles) == 0 {
		return nil, nil
	}
	base, perShard, locked := p.assign(len(profiles))
	errs := make([]error, len(locked))
	parallel.For(len(locked), len(locked), func(_, li int) {
		s := locked[li]
		sl := p.shards[s]
		defer sl.mu.Unlock()
		globals := perShard[s]
		ps := make([]sparse.Vector, len(globals))
		for i, g := range globals {
			ps[i] = profiles[g-base]
		}
		ids, err := sl.m.InsertBatch(ps)
		if err != nil {
			errs[li] = fmt.Errorf("shard %d: %w", s, err)
			return
		}
		want := p.mapping.Load()
		for i, g := range globals {
			if ids[i] != want.local[g] {
				panic(fmt.Sprintf("shard: shard %d assigned local ID %d, expected %d — was the maintainer mutated outside the pool?", s, ids[i], want.local[g]))
			}
		}
		sl.refreshStats(s)
	})
	if err := errors.Join(errs...); err != nil {
		return nil, fmt.Errorf("shard: insert batch: %w", err)
	}
	out := make([]uint32, len(profiles))
	for i := range out {
		out[i] = base + uint32(i)
	}
	return out, nil
}

// AddRating records a rating change for an existing user, routed to its
// owner shard. Like Maintainer.AddRating it only marks the user dirty;
// Rebuild refreshes the invalidated neighborhoods.
func (p *Pool) AddRating(g uint32, item uint32, rating float64) error {
	m := p.mapping.Load()
	if int(g) >= len(m.owner) {
		return fmt.Errorf("shard: add rating: user %d out of range (have %d users): %w", g, len(m.owner), ErrNotFound)
	}
	s := int(m.owner[g])
	sl := p.shards[s]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if err := sl.m.AddRating(m.local[g], item, rating); err != nil {
		return fmt.Errorf("shard: add rating: shard %d: %w", s, err)
	}
	return nil
}

// Rebuild refreshes the neighborhoods invalidated since the last
// Rebuild. dirty lists global user IDs (nil = every user any shard has
// marked dirty). The per-shard rebuilds run in parallel — rebuild
// latency scales down with the shard count both from the parallelism and
// from each shard's O(|U|/N · k) eviction scan.
func (p *Pool) Rebuild(dirty []uint32) error {
	m := p.mapping.Load()
	var perShard map[int][]uint32
	if dirty != nil {
		perShard = make(map[int][]uint32)
		for _, g := range dirty {
			if int(g) >= len(m.owner) {
				return fmt.Errorf("shard: rebuild: user %d out of range (have %d users): %w", g, len(m.owner), ErrNotFound)
			}
			s := int(m.owner[g])
			perShard[s] = append(perShard[s], m.local[g])
		}
	}
	errs := make([]error, len(p.shards))
	parallel.For(len(p.shards), len(p.shards), func(_, s int) {
		var locals []uint32
		if dirty != nil {
			var ok bool
			if locals, ok = perShard[s]; !ok {
				return
			}
		}
		sl := p.shards[s]
		sl.mu.Lock()
		defer sl.mu.Unlock()
		if err := sl.m.Rebuild(locals); err != nil {
			errs[s] = fmt.Errorf("shard %d: %w", s, err)
			return
		}
		sl.refreshStats(s)
	})
	if err := errors.Join(errs...); err != nil {
		return fmt.Errorf("shard: rebuild: %w", err)
	}
	return nil
}
