package rcs

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// randDataset draws a small random bipartite dataset with enough overlap
// to exercise every RCS code path.
func randDataset(r *rand.Rand) *dataset.Dataset {
	users := 2 + r.Intn(30)
	items := 1 + r.Intn(20)
	profiles := make([]map[uint32]float64, users)
	for u := range profiles {
		m := map[uint32]float64{}
		n := r.Intn(items + 1)
		for i := 0; i < n; i++ {
			m[uint32(r.Intn(items))] = float64(1 + r.Intn(5))
		}
		profiles[u] = m
	}
	return dataset.FromProfiles("quick", profiles, r.Intn(2) == 0)
}

func dsCfg(seed int64) *quick.Config {
	r := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 120,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randDataset(r))
			}
		},
	}
}

// TestQuickPivotPartition: across all RCSs, each overlapping unordered
// pair appears exactly once, stored at its lower endpoint.
func TestQuickPivotPartition(t *testing.T) {
	f := func(d *dataset.Dataset) bool {
		s := Build(d, BuildOptions{Workers: 2})
		seen := map[[2]uint32]int{}
		for u := uint32(0); int(u) < d.NumUsers(); u++ {
			for _, v := range s.List(u) {
				if v <= u {
					return false
				}
				seen[[2]uint32{u, v}]++
			}
		}
		for u := 0; u < d.NumUsers(); u++ {
			for v := u + 1; v < d.NumUsers(); v++ {
				want := 0
				if sparse.CommonCount(d.Users[u], d.Users[v]) > 0 {
					want = 1
				}
				if seen[[2]uint32{uint32(u), uint32(v)}] != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, dsCfg(23)); err != nil {
		t.Error(err)
	}
}

// TestQuickNoPivotSymmetry: complete sets are symmetric and exactly twice
// the pivoted volume.
func TestQuickNoPivotSymmetry(t *testing.T) {
	f := func(d *dataset.Dataset) bool {
		piv := Build(d, BuildOptions{Workers: 1})
		full := Build(d, BuildOptions{Workers: 3, NoPivot: true})
		if full.BuildStats.TotalCandidates != 2*piv.BuildStats.TotalCandidates {
			return false
		}
		for u := uint32(0); int(u) < d.NumUsers(); u++ {
			for _, v := range full.List(u) {
				found := false
				for _, w := range full.List(v) {
					if w == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, dsCfg(29)); err != nil {
		t.Error(err)
	}
}

// TestQuickTopPopDrainsExactly: popping in arbitrary chunk sizes yields
// every candidate exactly once, in stored order.
func TestQuickTopPopDrainsExactly(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func(d *dataset.Dataset) bool {
		s := Build(d, BuildOptions{Workers: 1})
		for u := uint32(0); int(u) < d.NumUsers(); u++ {
			want := append([]uint32(nil), s.List(u)...)
			var got []uint32
			for {
				chunk := s.TopPop(u, 1+r.Intn(4))
				if len(chunk) == 0 {
					break
				}
				got = append(got, chunk...)
			}
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, dsCfg(31)); err != nil {
		t.Error(err)
	}
}

// TestQuickCountsDecreasing: with KeepCounts, stored counts are
// non-increasing and match the true common-item counts.
func TestQuickCountsDecreasing(t *testing.T) {
	f := func(d *dataset.Dataset) bool {
		s := Build(d, BuildOptions{Workers: 2, KeepCounts: true})
		for u := uint32(0); int(u) < d.NumUsers(); u++ {
			counts := s.Counts(u)
			list := s.List(u)
			for i, v := range list {
				if int(counts[i]) != sparse.CommonCount(d.Users[u], d.Users[v]) {
					return false
				}
				if i > 0 && counts[i-1] < counts[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, dsCfg(37)); err != nil {
		t.Error(err)
	}
}
