package rcs

import (
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// TestCandidatesForMatchesBatchBuild pins the incremental primitive to
// the batch counting phase: for any user, CandidatesFor must equal the
// unpivoted batch-built list (same members, same rank order).
func TestCandidatesForMatchesBatchBuild(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 41)
	if err != nil {
		t.Fatal(err)
	}
	batch := Build(d, BuildOptions{NoPivot: true})
	for u := 0; u < d.NumUsers(); u += 7 { // sample users, keep the test fast
		got := CandidatesFor(d, uint32(u), BuildOptions{})
		want := batch.List(uint32(u))
		if len(got) != len(want) {
			t.Fatalf("user %d: %d candidates, batch has %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d: candidate %d is %d, batch has %d", u, i, got[i], want[i])
			}
		}
	}
}

func TestCandidatesForHonorsMinRating(t *testing.T) {
	d, err := dataset.Gowalla.Generate(0.002, 42) // weighted
	if err != nil {
		t.Fatal(err)
	}
	batch := Build(d, BuildOptions{NoPivot: true, MinRating: 3})
	for u := 0; u < d.NumUsers(); u += 11 {
		got := CandidatesFor(d, uint32(u), BuildOptions{MinRating: 3})
		want := batch.List(uint32(u))
		if len(got) != len(want) {
			t.Fatalf("user %d: %d candidates, batch has %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d: candidate %d differs", u, i)
			}
		}
	}
}

func TestPatchUserAppendsAndReplaces(t *testing.T) {
	d, _, _ := dataset.Toy()
	d.EnsureItemProfiles()
	n := d.NumUsers()
	s := NewSets(n)
	if s.NumUsers() != n {
		t.Fatalf("NewSets size = %d, want %d", s.NumUsers(), n)
	}

	// Patch an existing user: list installed, cursor rewound, stats kept.
	s.PatchUser(d, 0, BuildOptions{})
	if s.Len(0) == 0 {
		t.Fatal("patched user has no candidates (Alice shares coffee with Bob)")
	}
	if got := s.TopPop(0, -1); len(got) == 0 || got[0] != 1 {
		t.Fatalf("TopPop after patch = %v, want Bob first", got)
	}
	if s.Remaining(0) != 0 {
		t.Error("TopPop(-1) must exhaust the patched list")
	}
	// Re-patching rewinds the cursor and keeps totals consistent.
	before := s.BuildStats.TotalCandidates
	s.PatchUser(d, 0, BuildOptions{})
	if s.BuildStats.TotalCandidates != before {
		t.Errorf("re-patch changed TotalCandidates: %d vs %d", s.BuildStats.TotalCandidates, before)
	}
	if s.Remaining(0) != s.Len(0) {
		t.Error("re-patch must rewind the cursor")
	}

	// Appending a new user: add to the dataset, then patch the new slot.
	id, err := d.AddUser(sparse.Vector{IDs: []uint32{1}}) // coffee
	if err != nil {
		t.Fatal(err)
	}
	s.PatchUser(d, id, BuildOptions{})
	if s.NumUsers() != n+1 {
		t.Fatalf("NumUsers after append-patch = %d, want %d", s.NumUsers(), n+1)
	}
	got := s.List(id)
	if len(got) != 2 { // Alice and Bob both have coffee
		t.Fatalf("new user's candidates = %v, want Alice and Bob", got)
	}

	// Patching beyond the next slot is a programming error.
	defer func() {
		if recover() == nil {
			t.Error("PatchUser beyond NumUsers must panic")
		}
	}()
	s.PatchUser(d, id+2, BuildOptions{})
}

// TestPatchUserStatsStayConsistent recomputes the aggregate stats from
// scratch after a series of patches and compares.
func TestPatchUserStatsStayConsistent(t *testing.T) {
	d, err := dataset.Arxiv.Generate(0.005, 43)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSets(d.NumUsers())
	for u := 0; u < d.NumUsers(); u++ {
		s.PatchUser(d, uint32(u), BuildOptions{})
	}
	total := 0
	maxLen := 0
	for u := 0; u < d.NumUsers(); u++ {
		total += s.Len(uint32(u))
		if l := s.Len(uint32(u)); l > maxLen {
			maxLen = l
		}
	}
	if s.BuildStats.TotalCandidates != total {
		t.Errorf("TotalCandidates = %d, recomputed %d", s.BuildStats.TotalCandidates, total)
	}
	if s.BuildStats.MaxLen != maxLen {
		t.Errorf("MaxLen = %d, recomputed %d", s.BuildStats.MaxLen, maxLen)
	}
	if want := float64(total) / float64(d.NumUsers()); s.BuildStats.AvgLen != want {
		t.Errorf("AvgLen = %v, recomputed %v", s.BuildStats.AvgLen, want)
	}
}
