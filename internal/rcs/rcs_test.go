package rcs

import (
	"math"
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// fixture: 4 users over 4 items.
//
//	user 0: items 0,1,2
//	user 1: items 0,1,2   (shares 3 with user 0)
//	user 2: items 2,3     (shares 1 with users 0,1)
//	user 3: item 3        (shares 1 with user 2)
func fixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.FromProfiles("rcs-test", []map[uint32]float64{
		{0: 1, 1: 1, 2: 1},
		{0: 1, 1: 1, 2: 1},
		{2: 1, 3: 1},
		{3: 1},
	}, true)
}

func TestBuildPivotAndOrder(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 1})
	// user 0: candidates {1 (count 3), 2 (count 1)} — pivot keeps v > 0.
	l0 := s.List(0)
	if len(l0) != 2 || l0[0] != 1 || l0[1] != 2 {
		t.Errorf("RCS(0) = %v, want [1 2] (count order)", l0)
	}
	// user 1: only 2 (count 1); user 0 excluded by pivot.
	l1 := s.List(1)
	if len(l1) != 1 || l1[0] != 2 {
		t.Errorf("RCS(1) = %v, want [2]", l1)
	}
	// user 2: only 3.
	l2 := s.List(2)
	if len(l2) != 1 || l2[0] != 3 {
		t.Errorf("RCS(2) = %v, want [3]", l2)
	}
	// user 3 (highest id): empty.
	if s.Len(3) != 0 {
		t.Errorf("RCS(3) = %v, want empty", s.List(3))
	}
}

func TestBuildStats(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 2})
	bs := s.BuildStats
	if bs.TotalCandidates != 4 {
		t.Errorf("TotalCandidates = %d, want 4", bs.TotalCandidates)
	}
	if math.Abs(bs.AvgLen-1.0) > 1e-12 {
		t.Errorf("AvgLen = %v, want 1.0", bs.AvgLen)
	}
	if bs.MaxLen != 2 {
		t.Errorf("MaxLen = %d, want 2", bs.MaxLen)
	}
	if bs.Duration <= 0 {
		t.Error("Duration must be positive")
	}
}

func TestPairCoverage(t *testing.T) {
	// Every overlapping pair (u,v) must appear exactly once across all
	// RCSs, under the lower-ID pivot.
	d := fixture(t)
	s := Build(d, BuildOptions{Workers: 3})
	seen := map[[2]uint32]int{}
	for u := uint32(0); int(u) < d.NumUsers(); u++ {
		for _, v := range s.List(u) {
			if v <= u {
				t.Fatalf("pivot violated: %d in RCS(%d)", v, u)
			}
			seen[[2]uint32{u, v}]++
		}
	}
	for u := uint32(0); int(u) < d.NumUsers(); u++ {
		for v := u + 1; int(v) < d.NumUsers(); v++ {
			want := 0
			if sparse.CommonCount(d.Users[u], d.Users[v]) > 0 {
				want = 1
			}
			if got := seen[[2]uint32{u, v}]; got != want {
				t.Errorf("pair (%d,%d) appears %d times, want %d", u, v, got, want)
			}
		}
	}
}

func TestKeepCounts(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 1, KeepCounts: true})
	c0 := s.Counts(0)
	if len(c0) != 2 || c0[0] != 3 || c0[1] != 1 {
		t.Errorf("Counts(0) = %v, want [3 1]", c0)
	}
	noCounts := Build(fixture(t), BuildOptions{Workers: 1})
	if noCounts.Counts(0) != nil {
		t.Error("counts must be stripped unless KeepCounts (paper §III-C)")
	}
}

func TestTopPop(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 1})
	if got := s.TopPop(0, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("first TopPop = %v, want [1]", got)
	}
	if got := s.Remaining(0); got != 1 {
		t.Fatalf("Remaining = %d, want 1", got)
	}
	if got := s.TopPop(0, 5); len(got) != 1 || got[0] != 2 {
		t.Fatalf("second TopPop = %v, want [2]", got)
	}
	if got := s.TopPop(0, 5); got != nil {
		t.Fatalf("exhausted TopPop = %v, want nil", got)
	}
}

func TestTopPopGammaInfinity(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 1})
	if got := s.TopPop(0, -1); len(got) != 2 {
		t.Fatalf("γ=∞ TopPop = %v, want both candidates", got)
	}
	if s.Remaining(0) != 0 {
		t.Fatal("γ=∞ must exhaust the set")
	}
}

func TestReset(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 1})
	s.TopPop(0, -1)
	s.Reset()
	if s.Remaining(0) != 2 {
		t.Errorf("after Reset Remaining = %d, want 2", s.Remaining(0))
	}
}

func TestLensAndMaxScanRate(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 1})
	lens := s.Lens()
	if len(lens) != 4 || lens[0] != 2 || lens[3] != 0 {
		t.Errorf("Lens = %v", lens)
	}
	// 2*avg/(n-1) = 2*1/3
	if got, want := s.MaxScanRate(), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxScanRate = %v, want %v", got, want)
	}
}

func TestTruncationStats(t *testing.T) {
	s := Build(fixture(t), BuildOptions{Workers: 1})
	// lens are [2 1 1 0]; cut=1 → users with |RCS| > 1: just user 0.
	if got := s.TruncationStats(1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("TruncationStats(1) = %v, want 0.25", got)
	}
	if got := s.TruncationStats(2); got != 0 {
		t.Errorf("TruncationStats(2) = %v, want 0", got)
	}
}

func TestMinRatingFiltersCandidates(t *testing.T) {
	// Weighted dataset: users 0,1 share item 0, but user 1 rated it low.
	d := dataset.FromProfiles("weighted", []map[uint32]float64{
		{0: 5},
		{0: 1, 1: 4},
		{1: 5},
	}, false)
	all := Build(d, BuildOptions{Workers: 1})
	if all.Len(0) != 1 {
		t.Fatalf("unfiltered RCS(0) = %v, want [1]", all.List(0))
	}
	filtered := Build(d, BuildOptions{Workers: 1, MinRating: 3})
	if filtered.Len(0) != 0 {
		t.Errorf("filtered RCS(0) = %v, want empty (user 1 rated item 0 below threshold)", filtered.List(0))
	}
	// users 1,2 share item 1 with high ratings on both sides: kept.
	if filtered.Len(1) != 1 || filtered.List(1)[0] != 2 {
		t.Errorf("filtered RCS(1) = %v, want [2]", filtered.List(1))
	}
}

func TestMinRatingIgnoredOnBinary(t *testing.T) {
	s1 := Build(fixture(t), BuildOptions{Workers: 1})
	s2 := Build(fixture(t), BuildOptions{Workers: 1, MinRating: 3})
	for u := uint32(0); u < 4; u++ {
		a, b := s1.List(u), s2.List(u)
		if len(a) != len(b) {
			t.Fatalf("binary dataset: MinRating changed RCS(%d)", u)
		}
	}
}

func TestShuffleKeepsMembership(t *testing.T) {
	d := fixture(t)
	sorted := Build(d, BuildOptions{Workers: 1})
	shuffled := Build(d, BuildOptions{Workers: 1, Shuffle: true, Seed: 5})
	for u := uint32(0); int(u) < d.NumUsers(); u++ {
		a, b := sorted.List(u), shuffled.List(u)
		if len(a) != len(b) {
			t.Fatalf("shuffle changed |RCS(%d)|", u)
		}
		inA := map[uint32]bool{}
		for _, v := range a {
			inA[v] = true
		}
		for _, v := range b {
			if !inA[v] {
				t.Fatalf("shuffle changed membership of RCS(%d)", u)
			}
		}
	}
}

func TestParallelConstructionDeterministic(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := Build(d, BuildOptions{Workers: 1})
	b := Build(d, BuildOptions{Workers: 8})
	if a.NumUsers() != b.NumUsers() {
		t.Fatal("user counts differ")
	}
	for u := uint32(0); int(u) < a.NumUsers(); u++ {
		la, lb := a.List(u), b.List(u)
		if len(la) != len(lb) {
			t.Fatalf("user %d: |RCS| differs between 1 and 8 workers", u)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("user %d: RCS order differs between 1 and 8 workers", u)
			}
		}
	}
}

func TestCountOrderMatchesCommonCount(t *testing.T) {
	// On a generated dataset the retained order must be non-increasing in
	// the true common-item count (with ID tie-break).
	d, err := dataset.Wikipedia.Generate(0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(d, BuildOptions{Workers: 4, KeepCounts: true})
	for u := uint32(0); int(u) < d.NumUsers(); u++ {
		counts := s.Counts(u)
		list := s.List(u)
		for i, v := range list {
			want := sparse.CommonCount(d.Users[u], d.Users[v])
			if int(counts[i]) != want {
				t.Fatalf("user %d cand %d: stored count %d != true %d", u, v, counts[i], want)
			}
			if i > 0 {
				if counts[i-1] < counts[i] {
					t.Fatalf("user %d: counts not non-increasing", u)
				}
				if counts[i-1] == counts[i] && list[i-1] >= list[i] {
					t.Fatalf("user %d: tie not broken by ID", u)
				}
			}
		}
	}
}

func TestNoPivotSymmetricMembership(t *testing.T) {
	d := fixture(t)
	s := Build(d, BuildOptions{Workers: 1, NoPivot: true})
	// user 1 must now see user 0 (count 3) ahead of user 2 (count 1).
	l1 := s.List(1)
	if len(l1) != 2 || l1[0] != 0 || l1[1] != 2 {
		t.Errorf("NoPivot RCS(1) = %v, want [0 2]", l1)
	}
	// Symmetry: v ∈ RCS(u) ⇔ u ∈ RCS(v).
	for u := uint32(0); int(u) < d.NumUsers(); u++ {
		for _, v := range s.List(u) {
			found := false
			for _, w := range s.List(v) {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("NoPivot asymmetry: %d ∈ RCS(%d) but not vice versa", v, u)
			}
		}
	}
	// No self entries.
	for u := uint32(0); int(u) < d.NumUsers(); u++ {
		for _, v := range s.List(u) {
			if v == u {
				t.Fatalf("user %d lists itself", u)
			}
		}
	}
}

func TestNoPivotDoublesCandidates(t *testing.T) {
	d := fixture(t)
	pivoted := Build(d, BuildOptions{Workers: 1})
	full := Build(d, BuildOptions{Workers: 1, NoPivot: true})
	if full.BuildStats.TotalCandidates != 2*pivoted.BuildStats.TotalCandidates {
		t.Errorf("NoPivot total = %d, want exactly 2× pivoted %d",
			full.BuildStats.TotalCandidates, pivoted.BuildStats.TotalCandidates)
	}
}
