// Package rcs implements KIFF's counting phase: the construction of the
// per-user Ranked Candidate Sets (paper §II-B, Algorithm 1 lines 3–4).
//
// For every user u, RCSu collects the users that share at least one item
// with u, ordered by decreasing number of shared items. The sets are built
// by navigating the item-profile inverted index — "item profiles also
// provide a crude hashing procedure, in which users are binned into as many
// item profiles as the items they possess" — rather than by comparing user
// pairs, which would cost O(|U|²).
//
// Two paper optimizations are implemented (§II-D):
//
//   - the pivot strategy: RCSu only stores candidates v > u, halving memory
//     and guaranteeing each pair is considered exactly once;
//   - count stripping: once sorted, the multiplicity information is dropped
//     (unless BuildOptions.KeepCounts asks for it, which the Fig 7
//     correlation study needs).
//
// The §VII "future work" heuristic is available through MinRating: when
// positive, only items rated at least MinRating by both endpoints
// contribute candidates, shrinking the RCSs.
package rcs

import (
	"math/rand"
	"slices"
	"time"

	"kiff/internal/arena"
	"kiff/internal/dataset"
	"kiff/internal/parallel"
	"kiff/internal/stats"
)

// BuildOptions tunes the counting phase.
type BuildOptions struct {
	// Workers bounds the construction parallelism (< 1 = all CPUs).
	Workers int
	// KeepCounts retains the shared-item counts next to the sorted
	// candidate lists (needed by the Fig 7 rank-correlation experiment).
	KeepCounts bool
	// MinRating, when > 0, restricts candidate generation to items both
	// users rated at least MinRating (paper §VII heuristic). Binary
	// profiles are unaffected (every rating is 1).
	MinRating float64
	// Shuffle randomizes the candidate order instead of sorting by count
	// (ablation: isolates the value of the count-based ranking).
	Shuffle bool
	// Seed drives Shuffle.
	Seed int64
	// NoPivot disables the §II-D pivot rule so every RCSu contains all
	// overlapping users, not just those with higher IDs. The refinement
	// phase requires pivoted sets; NoPivot exists for analyses that look at
	// complete per-user candidate rankings (Table VII, Fig 7) and for the
	// pivot ablation.
	NoPivot bool
}

// Sets holds one ranked candidate list per user plus the iteration cursors
// used by the refinement phase's top-pop operation.
//
// Batch-built lists are views into per-worker-block arenas (internal/
// arena): one contiguous backing array per block instead of one heap
// allocation per user, so iterating the sets in user order walks memory
// almost sequentially. PatchUser replaces individual rows with standalone
// slices; mixing the two storage kinds is fine because rows are only ever
// read through their views.
type Sets struct {
	lists   [][]uint32
	counts  [][]int32 // nil unless KeepCounts
	cursors []int
	// BuildStats describes the construction run.
	BuildStats BuildStats
}

// BuildStats reports the cost and shape of the counting phase, feeding
// Tables V and IX.
type BuildStats struct {
	// Duration is the wall time of RCS construction proper (item profiles
	// are built at dataset load time and timed separately; Table IV).
	Duration time.Duration
	// TotalCandidates is Σu |RCSu| — the hard upper bound on similarity
	// evaluations in the refinement phase (§III-D).
	TotalCandidates int
	// AvgLen is the mean |RCSu| (Table V).
	AvgLen float64
	// MaxLen is the largest |RCSu|.
	MaxLen int
}

// CompareRanked is the candidate ordering every counting-phase consumer
// shares: shared-item count descending, ties broken by ascending user
// ID. The tie-break is load-bearing — it makes candidate ranking (and
// through it the whole deterministic pipeline) independent of worker
// count and map iteration order.
//
// The batch counting phase sorts packed (rankKey) integers instead of
// calling this comparator — same order, no per-comparison indirection;
// TestRankKeyMatchesCompareRanked pins the equivalence.
func CompareRanked(ca, cb int32, a, b uint32) int {
	switch {
	case ca > cb:
		return -1
	case ca < cb:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// rankKey packs a candidate and its shared-item count into one uint64
// whose ascending natural order equals CompareRanked: the complemented
// count in the high bits (larger counts sort first), the user ID in the
// low bits (ascending tie-break). Sorting []uint64 with slices.Sort is
// several times faster than SortFunc with the comparator closure — and
// the ranking sort dominates the counting phase.
func rankKey(count int32, v uint32) uint64 {
	return uint64(^uint32(count))<<32 | uint64(v)
}

// rankKeyUser extracts the user ID from a packed key.
func rankKeyUser(k uint64) uint32 { return uint32(k) }

// rankKeyCount extracts the shared-item count from a packed key.
func rankKeyCount(k uint64) int32 { return int32(^uint32(k >> 32)) }

// Build runs the counting phase.
func Build(d *dataset.Dataset, opts BuildOptions) *Sets {
	start := time.Now()
	d.EnsureItemProfiles()
	n := d.NumUsers()
	items := d.Items
	minRating := opts.MinRating
	if d.Binary() {
		// Every rating is 1 on binary datasets; the §VII heuristic only
		// applies to "multiple-ratings" datasets.
		minRating = 0
	}
	if minRating > 0 {
		items = filteredItemProfiles(d, minRating)
	}

	s := &Sets{
		lists:   make([][]uint32, n),
		cursors: make([]int, n),
	}
	if opts.KeepCounts {
		s.counts = make([][]int32, n)
	}

	parallel.Blocks(n, opts.Workers, func(_, lo, hi int) {
		// Per-worker scratch: a dense count array plus the list of touched
		// candidates, reset between users in O(|touched|), and a reusable
		// ordering buffer. Rows are ranked in the scratch buffer and then
		// appended to the block arena — no per-user allocation.
		countOf := make([]int32, n)
		touched := make([]uint32, 0, 256)
		order := make([]uint32, 0, 256)
		keys := make([]uint64, 0, 256)
		var cscratch []int32
		ab := arena.NewBuilder[uint32](hi-lo, 0)
		var cb *arena.Builder[int32]
		if opts.KeepCounts {
			cb = arena.NewBuilder[int32](hi-lo, 0)
		}
		var rng *rand.Rand
		if opts.Shuffle {
			rng = rand.New(rand.NewSource(opts.Seed + int64(lo)))
		}
		for u := lo; u < hi; u++ {
			touched = touched[:0]
			profile := d.Users[u]
			for idx, it := range profile.IDs {
				if minRating > 0 && profile.Weight(idx) < minRating {
					continue
				}
				for _, v := range items[it] {
					// Pivot rule: only candidates with higher IDs (§II-D),
					// unless NoPivot asks for the complete sets.
					if opts.NoPivot {
						if int(v) == u {
							continue
						}
					} else if int(v) <= u {
						continue
					}
					if countOf[v] == 0 {
						touched = append(touched, v)
					}
					countOf[v]++
				}
			}
			if opts.Shuffle {
				order = append(order[:0], touched...)
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			} else {
				keys = keys[:0]
				for _, v := range touched {
					keys = append(keys, rankKey(countOf[v], v))
				}
				slices.Sort(keys)
				order = order[:0]
				for _, k := range keys {
					order = append(order, rankKeyUser(k))
				}
			}
			ab.AppendRow(order)
			if opts.KeepCounts {
				cscratch = cscratch[:0]
				for _, v := range order {
					cscratch = append(cscratch, countOf[v])
				}
				cb.AppendRow(cscratch)
			}
			for _, v := range touched {
				countOf[v] = 0
			}
		}
		rows := ab.Rows()
		for i := 0; i < rows.NumRows(); i++ {
			s.lists[lo+i] = rows.Row(i)
		}
		if cb != nil {
			crows := cb.Rows()
			for i := 0; i < crows.NumRows(); i++ {
				s.counts[lo+i] = crows.Row(i)
			}
		}
	})

	total := 0
	maxLen := 0
	for _, l := range s.lists {
		total += len(l)
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	s.BuildStats = BuildStats{
		Duration:        time.Since(start),
		TotalCandidates: total,
		MaxLen:          maxLen,
	}
	if n > 0 {
		s.BuildStats.AvgLen = float64(total) / float64(n)
	}
	return s
}

// NewSets returns an empty Sets sized for n users, with every candidate
// list empty. It is the starting point for incremental maintenance, where
// candidate lists are computed on demand via PatchUser rather than in a
// batch counting phase.
func NewSets(n int) *Sets {
	return &Sets{
		lists:   make([][]uint32, n),
		cursors: make([]int, n),
	}
}

// CandidatesFor computes the ranked candidate list of a single user
// against the dataset's *current* item profiles — the incremental
// counterpart of Build for a user that was just added or whose profile
// changed. Unlike Build's pivoted sets, the returned list is complete
// (every overlapping user regardless of ID): maintenance evaluates u
// against all of them and relies on the symmetric heap update to refresh
// both directions. Only opts.MinRating is honored; Shuffle and the pivot
// rule do not apply to patching. Unlike Build, opts.MinRating is applied
// as given: callers on binary datasets must pass 0 (Build gates this
// itself once per batch; re-scanning all profiles here, per patched
// user, would make a mutation stream quadratic).
func CandidatesFor(d *dataset.Dataset, u uint32, opts BuildOptions) []uint32 {
	d.EnsureItemProfiles()
	minRating := opts.MinRating
	profile := d.Users[u]
	counts := make(map[uint32]int32)
	for idx, it := range profile.IDs {
		if minRating > 0 && profile.Weight(idx) < minRating {
			continue
		}
		for _, v := range d.Items[it] {
			if v == u {
				continue
			}
			if minRating > 0 && d.Users[v].WeightOf(it) < minRating {
				continue
			}
			counts[v]++
		}
	}
	keys := make([]uint64, 0, len(counts))
	for v, c := range counts {
		keys = append(keys, rankKey(c, v))
	}
	slices.Sort(keys)
	list := make([]uint32, 0, len(keys))
	for _, k := range keys {
		list = append(list, rankKeyUser(k))
	}
	return list
}

// PatchUser installs the freshly computed candidate list of user u and
// rewinds u's cursor, keeping BuildStats consistent. u == NumUsers()
// appends a slot for a user that was just added to the dataset. Patched
// lists carry no shared-item counts even when the sets were built with
// KeepCounts (the correlation experiments that need counts operate on
// batch-built sets).
func (s *Sets) PatchUser(d *dataset.Dataset, u uint32, opts BuildOptions) {
	list := CandidatesFor(d, u, opts)
	switch {
	case int(u) < len(s.lists):
		s.BuildStats.TotalCandidates -= len(s.lists[u])
		if s.counts != nil {
			s.counts[u] = nil
		}
	case int(u) == len(s.lists):
		s.lists = append(s.lists, nil)
		s.cursors = append(s.cursors, 0)
		if s.counts != nil {
			s.counts = append(s.counts, nil)
		}
	default:
		panic("rcs: PatchUser beyond NumUsers()")
	}
	s.lists[u] = list
	s.cursors[u] = 0
	s.BuildStats.TotalCandidates += len(list)
	if len(list) > s.BuildStats.MaxLen {
		s.BuildStats.MaxLen = len(list)
	}
	if n := len(s.lists); n > 0 {
		s.BuildStats.AvgLen = float64(s.BuildStats.TotalCandidates) / float64(n)
	}
}

// filteredItemProfiles rebuilds the inverted index keeping only edges with
// rating ≥ minRating (§VII heuristic).
func filteredItemProfiles(d *dataset.Dataset, minRating float64) [][]uint32 {
	items := make([][]uint32, d.NumItems())
	for uid := range d.Users {
		u := d.Users[uid]
		for i, it := range u.IDs {
			if u.Weight(i) >= minRating {
				items[it] = append(items[it], uint32(uid))
			}
		}
	}
	return items
}

// NumUsers returns the number of candidate sets.
func (s *Sets) NumUsers() int { return len(s.lists) }

// Len returns |RCSu| (independent of cursor position).
func (s *Sets) Len(u uint32) int { return len(s.lists[u]) }

// Remaining returns how many candidates of u have not been popped yet.
func (s *Sets) Remaining(u uint32) int { return len(s.lists[u]) - s.cursors[u] }

// TopPop removes and returns the next gamma candidates of user u in
// decreasing shared-item-count order (Algorithm 1 line 9). gamma < 0 means
// "all remaining" (the γ=∞ mode of §III-D). The returned slice aliases
// internal storage and is only valid until the next call for the same user.
func (s *Sets) TopPop(u uint32, gamma int) []uint32 {
	cur := s.cursors[u]
	rest := len(s.lists[u]) - cur
	if rest == 0 {
		return nil
	}
	take := rest
	if gamma >= 0 && gamma < rest {
		take = gamma
	}
	s.cursors[u] = cur + take
	return s.lists[u][cur : cur+take]
}

// Counts returns the shared-item counts aligned with List(u). It returns
// nil unless the sets were built with KeepCounts.
func (s *Sets) Counts(u uint32) []int32 {
	if s.counts == nil {
		return nil
	}
	return s.counts[u]
}

// List returns u's full ranked candidate list (ignores cursors; do not
// mutate).
func (s *Sets) List(u uint32) []uint32 { return s.lists[u] }

// Reset rewinds every cursor so the sets can be iterated again.
func (s *Sets) Reset() {
	for i := range s.cursors {
		s.cursors[i] = 0
	}
}

// Lens returns every |RCSu| (Fig 6 CCDF input).
func (s *Sets) Lens() []int {
	lens := make([]int, len(s.lists))
	for i, l := range s.lists {
		lens[i] = len(l)
	}
	return lens
}

// MaxScanRate returns the scan rate an exhaustive iteration of the sets
// would incur: |U|·avg|RCS| / (|U|(|U|−1)/2) = 2·avg|RCS|/(|U|−1)
// (paper §V-A2).
func (s *Sets) MaxScanRate() float64 {
	n := len(s.lists)
	if n < 2 {
		return 0
	}
	return 2 * s.BuildStats.AvgLen / float64(n-1)
}

// TruncationStats reports, for a per-user candidate budget cut (= #iters
// × γ), the fraction of users whose RCS exceeds the budget — Table VI.
func (s *Sets) TruncationStats(cut int) float64 {
	return stats.FractionAtLeast(s.Lens(), cut+1)
}
