package rcs

import (
	"math/rand"
	"slices"
	"testing"
)

// TestRankKeyMatchesCompareRanked pins the packed-key sort to the
// canonical comparator: ascending rankKey order must equal CompareRanked
// order for every (count, id) pair, and the count/id must round-trip.
func TestRankKeyMatchesCompareRanked(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	type cand struct {
		count int32
		id    uint32
	}
	cands := make([]cand, 300)
	for i := range cands {
		cands[i] = cand{count: int32(1 + r.Intn(1<<20)), id: uint32(r.Intn(1 << 24))}
	}
	// A few extremes: count 1, huge counts, adjacent ids with equal counts.
	cands = append(cands,
		cand{1, 0}, cand{1, 1}, cand{1 << 30, 0}, cand{1 << 30, 7},
		cand{5, 100}, cand{5, 101}, cand{5, 99})

	byCompare := slices.Clone(cands)
	slices.SortFunc(byCompare, func(a, b cand) int {
		return CompareRanked(a.count, b.count, a.id, b.id)
	})
	byKey := slices.Clone(cands)
	slices.SortFunc(byKey, func(a, b cand) int {
		ka, kb := rankKey(a.count, a.id), rankKey(b.count, b.id)
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
	for i := range byCompare {
		if byCompare[i] != byKey[i] {
			t.Fatalf("order diverges at %d: CompareRanked gives %+v, rankKey gives %+v",
				i, byCompare[i], byKey[i])
		}
	}
	for _, c := range cands {
		k := rankKey(c.count, c.id)
		if rankKeyUser(k) != c.id || rankKeyCount(k) != c.count {
			t.Fatalf("rankKey(%d, %d) does not round-trip: user %d count %d",
				c.count, c.id, rankKeyUser(k), rankKeyCount(k))
		}
	}
}
