// Package runstats instruments KNN-graph construction runs with the
// cost metrics of the paper's evaluation (§IV-C): wall time, scan rate,
// a per-activity time breakdown (preprocessing / candidate selection /
// similarity computation; Figs 1 and 5), and per-iteration convergence
// traces (Fig 8).
package runstats

import (
	"sync/atomic"
	"time"

	"kiff/internal/knngraph"
)

// Phase labels one of the three activities whose time the paper breaks
// down.
type Phase int

const (
	// PhasePreprocess covers loading-adjacent work: profile construction
	// and, for KIFF, the counting phase.
	PhasePreprocess Phase = iota
	// PhaseCandidates covers candidate selection: RCS top-pop for KIFF,
	// neighbors-of-neighbors gathering for NN-Descent and HyRec.
	PhaseCandidates
	// PhaseSimilarity covers similarity evaluations and the heap updates
	// they trigger.
	PhaseSimilarity
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhasePreprocess:
		return "preprocessing"
	case PhaseCandidates:
		return "candidate selection"
	case PhaseSimilarity:
		return "similarity computation"
	default:
		return "unknown"
	}
}

// PhaseTimer accumulates per-phase nanoseconds from many workers.
type PhaseTimer struct {
	nanos [numPhases]atomic.Int64
}

// Add charges d to phase p.
func (t *PhaseTimer) Add(p Phase, d time.Duration) {
	t.nanos[p].Add(int64(d))
}

// Duration returns the accumulated time of phase p.
func (t *PhaseTimer) Duration(p Phase) time.Duration {
	return time.Duration(t.nanos[p].Load())
}

// Run is the outcome record of one construction run. All fields are plain
// values; a Run is assembled once the run finishes.
type Run struct {
	// Algorithm names the producer ("kiff", "nn-descent", "hyrec",
	// "brute-force").
	Algorithm string
	// NumUsers is |U| of the input dataset.
	NumUsers int
	// K is the neighborhood size.
	K int
	// WallTime is the total construction time, including in-algorithm
	// preprocessing (the paper measures "from the JVM's entry into the
	// main method"; dataset generation/loading is timed by the harness and
	// added there).
	WallTime time.Duration
	// PhaseTimes is the per-activity breakdown. The phases do not
	// necessarily sum to WallTime (loop bookkeeping is unattributed).
	PhaseTimes [3]time.Duration
	// SimEvals is the number of similarity evaluations performed.
	SimEvals int64
	// Iterations is the number of refinement iterations executed.
	Iterations int
	// UpdatesPerIter is the number of neighborhood changes in each
	// iteration (Fig 8b).
	UpdatesPerIter []int64
	// EvalsAtIter is the cumulative SimEvals after each iteration
	// (the x axis of Fig 8).
	EvalsAtIter []int64
	// RecallAtIter is the recall after each iteration, filled only when
	// the run was given an IterHook that computes it (Fig 8a).
	RecallAtIter []float64
}

// Counters are the cumulative maintenance counters of a maintained
// graph — the serving-time cost observables: how many users were spliced
// in, how many rebuild passes ran (and over how many users), and the
// similarity evaluations all of it spent. They are defined here (rather
// than next to the maintainer) so that aggregation layers — the shard
// pool, the HTTP server's /stats — can consume them without importing
// the facade.
type Counters struct {
	// SimEvals counts every similarity evaluation performed by
	// maintenance operations (the §IV-C cost metric, served cumulatively).
	SimEvals int64
	// Inserts counts users added via Insert/InsertBatch.
	Inserts int64
	// Rebuilds counts Rebuild passes that refreshed at least one user.
	Rebuilds int64
	// RebuiltUsers counts users refreshed across all Rebuild passes.
	RebuiltUsers int64

	// Publishes counts snapshot publications (the copy-on-write exports
	// that make mutations visible to readers).
	Publishes int64
	// PagesCopied and PagesShared count, across all publications, the
	// graph and dataset-header pages that were rebuilt because they
	// contained dirty rows versus shared intact with the previous
	// snapshot. Their ratio is the direct observable of O(dirty pages)
	// publication: steady-state incremental publishes should be almost
	// all shared.
	PagesCopied int64
	PagesShared int64
	// PublishNs is the cumulative wall time spent publishing, in
	// nanoseconds; PublishNs/Publishes is the mean publication cost.
	PublishNs int64
	// LastPublishNs is the duration of the most recent publication (the
	// worst shard's, after aggregation).
	LastPublishNs int64
}

// Add accumulates another counter record — the shard pool's aggregate
// view sums its per-shard counters with it. LastPublishNs takes the max
// rather than the sum: the aggregate's "last publish" is the slowest
// member, not a fictitious total.
func (c *Counters) Add(o Counters) {
	c.SimEvals += o.SimEvals
	c.Inserts += o.Inserts
	c.Rebuilds += o.Rebuilds
	c.RebuiltUsers += o.RebuiltUsers
	c.Publishes += o.Publishes
	c.PagesCopied += o.PagesCopied
	c.PagesShared += o.PagesShared
	c.PublishNs += o.PublishNs
	c.LastPublishNs = max(c.LastPublishNs, o.LastPublishNs)
}

// ScanRate is the paper's normalized similarity-evaluation count:
// #evals / (|U|·(|U|−1)/2).
func (r *Run) ScanRate() float64 {
	return ScanRate(r.SimEvals, r.NumUsers)
}

// ScanRateAt returns the cumulative scan rate after iteration i.
func (r *Run) ScanRateAt(i int) float64 {
	if i < 0 || i >= len(r.EvalsAtIter) {
		return 0
	}
	return ScanRate(r.EvalsAtIter[i], r.NumUsers)
}

// ScanRate normalizes an evaluation count by the number of user pairs.
func ScanRate(evals int64, numUsers int) float64 {
	if numUsers < 2 {
		return 0
	}
	pairs := float64(numUsers) * float64(numUsers-1) / 2
	return float64(evals) / pairs
}

// IterHook observes the state after each refinement iteration: the
// snapshot graph, and the cumulative number of similarity evaluations.
// The returned value is recorded into Run.RecallAtIter (use NaN-free 0 if
// not computing recall). Hooks run on the coordinating goroutine, between
// iterations, so they may read anything without synchronization concerns
// beyond the heap locks FromSet already takes.
type IterHook func(iter int, g *knngraph.Graph, simEvals int64) float64
