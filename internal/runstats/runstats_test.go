package runstats

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	if PhasePreprocess.String() != "preprocessing" ||
		PhaseCandidates.String() != "candidate selection" ||
		PhaseSimilarity.String() != "similarity computation" {
		t.Error("phase names changed")
	}
	if Phase(99).String() != "unknown" {
		t.Error("unknown phase must stringify safely")
	}
}

func TestPhaseTimerAccumulates(t *testing.T) {
	var pt PhaseTimer
	pt.Add(PhaseSimilarity, 2*time.Second)
	pt.Add(PhaseSimilarity, 3*time.Second)
	pt.Add(PhaseCandidates, time.Second)
	if got := pt.Duration(PhaseSimilarity); got != 5*time.Second {
		t.Errorf("similarity = %v, want 5s", got)
	}
	if got := pt.Duration(PhaseCandidates); got != time.Second {
		t.Errorf("candidates = %v, want 1s", got)
	}
	if got := pt.Duration(PhasePreprocess); got != 0 {
		t.Errorf("preprocess = %v, want 0", got)
	}
}

func TestPhaseTimerConcurrent(t *testing.T) {
	var pt PhaseTimer
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				pt.Add(PhasePreprocess, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := pt.Duration(PhasePreprocess); got != 8000*time.Microsecond {
		t.Errorf("concurrent accumulation = %v, want 8ms", got)
	}
}

func TestScanRate(t *testing.T) {
	// 10 users → 45 pairs.
	if got := ScanRate(45, 10); math.Abs(got-1) > 1e-12 {
		t.Errorf("full scan rate = %v, want 1", got)
	}
	if got := ScanRate(9, 10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("scan rate = %v, want 0.2", got)
	}
	if got := ScanRate(5, 1); got != 0 {
		t.Errorf("degenerate scan rate = %v, want 0", got)
	}
}

func TestRunScanRateAt(t *testing.T) {
	r := Run{NumUsers: 10, SimEvals: 45, EvalsAtIter: []int64{9, 45}}
	if got := r.ScanRate(); math.Abs(got-1) > 1e-12 {
		t.Errorf("ScanRate = %v, want 1", got)
	}
	if got := r.ScanRateAt(0); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("ScanRateAt(0) = %v, want 0.2", got)
	}
	if got := r.ScanRateAt(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("ScanRateAt(1) = %v, want 1", got)
	}
	if r.ScanRateAt(-1) != 0 || r.ScanRateAt(5) != 0 {
		t.Error("out-of-range ScanRateAt must return 0")
	}
}
