package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	for _, content := range []string{"first", "second generation"} {
		if err := Write(path, func(f *os.File) error {
			_, err := f.WriteString(content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read %q, want %q", got, content)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "durable.bin")
	if err := WriteDurable(path, func(f *os.File) error {
		_, err := f.WriteString("synced")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "synced" {
		t.Fatalf("read %q", got)
	}
}

func TestWriteErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := Write(path, func(f *os.File) error {
		f.WriteString("partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("target mutated to %q on failed write", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after error: %v", err)
	}
}

func TestWriteMissingDirectory(t *testing.T) {
	err := Write(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), func(*os.File) error { return nil })
	if err == nil {
		t.Fatal("expected an error for a missing parent directory")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("expected an error for a missing directory")
	}
}
