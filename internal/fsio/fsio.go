// Package fsio holds the one atomic-persist primitive every durable
// path of the module shares: write a temp file in the target directory,
// then rename it into place. The rename matters twice over. It is the
// crash-atomicity story — a crash mid-write leaves only a .tmp, never a
// truncated file under a final name — and it is the mmap-safety story:
// a reader may be serving the previous generation of the path zero-copy
// via mmap, and os.Create would truncate that very inode under its
// mappings (SIGBUS on next touch). Rename swaps the directory entry
// instead; the old inode lives on under the existing mapping.
//
// Write is the plain variant (checkpoint files, manifests whose loss a
// retry repairs). WriteDurable additionally fsyncs the file before the
// rename and the parent directory after it — the contract write-ahead
// logging needs, where "the rename happened" must itself survive a
// power failure, not merely a process crash.
package fsio

import (
	"os"
	"path/filepath"
)

// Write writes path through a temp file renamed into place, propagating
// the first error, including Close's (a buffered write may fail late).
// On any error the temp file is removed; path is never touched.
func Write(path string, write func(*os.File) error) error {
	return writeFile(path, false, write)
}

// WriteDurable is Write plus durability: the file is fsynced before the
// rename and the parent directory is fsynced after it, so both the
// bytes and the directory entry survive a power failure — not just a
// process crash. Use it for files that coordinate with a write-ahead
// log; Write is enough when a lost file merely means redoing work.
func WriteDurable(path string, write func(*os.File) error) error {
	return writeFile(path, true, write)
}

func writeFile(path string, durable bool, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if durable {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if durable {
		return SyncDir(filepath.Dir(path))
	}
	return nil
}

// SyncDir fsyncs a directory, making its entries (renames, creations)
// durable. Errors from platforms or filesystems that cannot fsync
// directories are surfaced, not swallowed — callers asked for a
// durability guarantee and must learn when they did not get it.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
