package metrics

import (
	"fmt"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full serialized form of a registry with
// every metric type: HELP/TYPE preamble, sorted families, sorted series,
// label rendering, histogram bucket cumulation and integer formatting.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("b_requests_total", "Total requests.", "endpoint", "code")
	c.With("/query", "2xx").Add(5)
	c.With("/query", "4xx").Inc()
	c.With("/users", "2xx").Add(2)
	g := r.NewGauge("a_queue_depth", "Current queue depth.")
	g.With().Set(3)
	h := r.NewHistogram("c_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.With().Observe(0.005)
	h.With().Observe(0.05)
	h.With().Observe(0.05)
	h.With().Observe(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP a_queue_depth Current queue depth.
# TYPE a_queue_depth gauge
a_queue_depth 3
# HELP b_requests_total Total requests.
# TYPE b_requests_total counter
b_requests_total{endpoint="/query",code="2xx"} 5
b_requests_total{endpoint="/query",code="4xx"} 1
b_requests_total{endpoint="/users",code="2xx"} 2
# HELP c_latency_seconds Request latency.
# TYPE c_latency_seconds histogram
c_latency_seconds_bucket{le="0.01"} 1
c_latency_seconds_bucket{le="0.1"} 3
c_latency_seconds_bucket{le="1"} 3
c_latency_seconds_bucket{le="+Inf"} 4
c_latency_seconds_sum 5.105
c_latency_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// sampleLine matches one valid exposition sample: metric name, optional
// label set, and a value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|[+-]Inf|NaN)$`)

// TestExpositionConformance checks structural rules on a busy registry:
// every line is a comment or a well-formed sample, every sample's base
// name was introduced by a preceding TYPE line, HELP precedes TYPE, and
// families appear in sorted order.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 5; i++ {
		v := r.NewCounter(fmt.Sprintf("m%d_total", i), fmt.Sprintf("Counter %d.", i), "shard")
		for s := 0; s < 3; s++ {
			v.With(strconv.Itoa(s)).Add(float64(i * s))
		}
	}
	r.NewGauge("zz_last", "Sorted last.").With().Set(-1.5)
	hv := r.NewHistogram("hist_seconds", "H.", []float64{0.5, 2.5}, "op")
	hv.With("a").Observe(1)
	hv.With("b").Observe(10)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")

	typed := map[string]string{} // base name -> type
	var lastFamily string
	var lastHelp string
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.Fields(line)[2]
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			name, typ := f[2], f[3]
			if lastHelp != "" && lastHelp != name {
				t.Fatalf("line %d: TYPE %s follows HELP %s", i, name, lastHelp)
			}
			lastHelp = ""
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", i, typ)
			}
			if name <= lastFamily {
				t.Fatalf("line %d: family %q not sorted after %q", i, name, lastFamily)
			}
			lastFamily = name
			typed[name] = typ
		default:
			if !sampleLine.MatchString(line) {
				t.Fatalf("line %d is not a valid sample: %q", i, line)
			}
			base := line
			if j := strings.IndexAny(base, "{ "); j >= 0 {
				base = base[:j]
			}
			name := base
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if trimmed := strings.TrimSuffix(base, suffix); trimmed != base && typed[trimmed] == "histogram" {
					name = trimmed
				}
			}
			if typed[name] == "" {
				t.Fatalf("line %d: sample %q has no preceding TYPE", i, line)
			}
			if name != lastFamily {
				t.Fatalf("line %d: sample %q outside its family block (%q)", i, line, lastFamily)
			}
		}
	}
}

// TestHistogramCumulationAndBounds: bucket counts are cumulative and
// monotone, the +Inf bucket equals _count, and boundary observations
// land in the `le` (inclusive) bucket.
func TestHistogramCumulationAndBounds(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "H.", []float64{1, 2, 4}).With()
	for _, v := range []float64{1, 2, 2, 4, 8} { // each exactly on a bound, one beyond
		h.Observe(v)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 3`,
		`h_seconds_bucket{le="4"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_sum 17`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
	if h.Count() != 5 || h.Sum() != 17 {
		t.Fatalf("Count/Sum = %d/%v, want 5/17", h.Count(), h.Sum())
	}
}

// TestEscaping: label values with quotes, backslashes and newlines, and
// HELP text with backslashes and newlines, are escaped per the format.
func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("esc_total", "line1\nline2 \\ backslash", "path").
		With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()
	if !strings.Contains(got, `# HELP esc_total line1\nline2 \\ backslash`) {
		t.Fatalf("HELP not escaped: %s", got)
	}
	if !strings.Contains(got, `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label value not escaped: %s", got)
	}
}

// TestValidationPanics: invalid names, duplicate registration, bad
// bucket layouts, wrong label arity and counter decrements all panic —
// they are programmer errors, caught at initialization or first use.
func TestValidationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	expectPanic("bad metric name", func() { r.NewCounter("9bad", "") })
	expectPanic("bad label name", func() { r.NewCounter("ok_total", "", "9bad") })
	r.NewCounter("dup_total", "")
	expectPanic("duplicate name", func() { r.NewGauge("dup_total", "") })
	expectPanic("empty buckets", func() { r.NewHistogram("h1_seconds", "", nil) })
	expectPanic("unsorted buckets", func() { r.NewHistogram("h2_seconds", "", []float64{2, 1}) })
	expectPanic("inf bucket", func() { r.NewHistogram("h3_seconds", "", []float64{1, math.Inf(1)}) })
	v := r.NewCounter("arity_total", "", "a", "b")
	expectPanic("label arity", func() { v.With("only-one") })
	expectPanic("counter decrement", func() { v.With("x", "y").Add(-1) })
}

// TestCounterGaugeSemantics: Add/Inc/Set round-trips, fractional
// values, and gauge decrease.
func TestCounterGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "").With()
	c.Add(2.5)
	c.Inc()
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v, want 3.5", c.Value())
	}
	c.Set(10)
	if c.Value() != 10 {
		t.Fatalf("counter after Set = %v, want 10", c.Value())
	}
	g := r.NewGauge("g", "").With()
	g.Set(5)
	g.Add(-7.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", g.Value())
	}
}

// TestOnScrape: hooks run before serialization, so a snapshot-sourced
// counter set inside the hook appears in the same scrape.
func TestOnScrape(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("snap_total", "").With()
	var src float64
	r.OnScrape(func() { c.Set(src) })
	src = 42
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "snap_total 42\n") {
		t.Fatalf("scrape hook did not run before serialization:\n%s", sb.String())
	}
}

// TestHandler serves the exposition with the v0.0.4 content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("h_total", "").With().Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
}

// TestConcurrentUpdatesAndScrapes hammers one registry from many
// goroutines while scraping — run under -race in CI — and checks the
// final counts are exact (no lost updates).
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "", "w")
	h := r.NewHistogram("ch_seconds", "", []float64{0.5})
	g := r.NewGauge("cg", "")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := strconv.Itoa(w % 2)
			for i := 0; i < perWorker; i++ {
				c.With(lbl).Inc()
				h.With().Observe(float64(i%2) * 0.9)
				g.With().Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
		}
	}()
	wg.Wait()
	<-done
	if got := c.With("0").Value() + c.With("1").Value(); got != workers*perWorker {
		t.Fatalf("lost counter updates: %v, want %d", got, workers*perWorker)
	}
	if h.With().Count() != workers*perWorker {
		t.Fatalf("lost observations: %d, want %d", h.With().Count(), workers*perWorker)
	}
}
