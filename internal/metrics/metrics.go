// Package metrics is a dependency-free Prometheus instrumentation
// registry: counters, gauges and fixed-bucket histograms, optionally
// split by labels, serialized in the Prometheus text exposition format
// (version 0.0.4 — the format every Prometheus-compatible scraper
// accepts).
//
// The package exists so the serving tier can expose GET /metrics
// without pulling a client library into the module (the repo's
// no-new-dependencies constraint). It implements the slice of the
// format the server needs, normatively:
//
//   - one family per metric name: a `# HELP` line, a `# TYPE` line,
//     then one sample line per label combination, families sorted by
//     name and samples sorted by label values, so output is
//     deterministic and diffable;
//   - histograms expose cumulative `_bucket{le="..."}` samples ending
//     in `le="+Inf"`, plus `_sum` and `_count`;
//   - label values escape `\`, `"` and newline; HELP text escapes `\`
//     and newline.
//
// All mutation paths are concurrency-safe: counter/gauge/histogram
// updates are atomic (lock-free after the first use of a label
// combination), and WritePrometheus may run concurrently with updates —
// a scrape observes each sample at some point during the scrape, the
// same contract the official client gives.
//
// Two idioms support serving metrics from an existing stats source
// instead of double-counting:
//
//   - Counter.Set installs an absolute value, for counters whose truth
//     lives in another subsystem's cumulative counters (the maintainer's
//     runstats, the WAL's counters) — the /metrics and /stats endpoints
//     then agree by construction because they read the same source;
//   - Registry.OnScrape registers a hook run at the start of every
//     WritePrometheus, the natural place to copy such snapshots in.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	validName  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families and renders them in the text
// exposition format. The zero value is not usable; create with
// NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric name with its metadata and every labeled series
// registered under it.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge" or "histogram"
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]metric // key: label values joined with 0xff
}

// metric is the value half of one labeled series.
type metric interface {
	// write appends the series' sample line(s) for the given rendered
	// label text (`{a="b"}` or empty).
	write(w io.Writer, name, labelText string)
}

// register validates and installs a new family, panicking on invalid or
// duplicate names — metric registration is programmer-controlled
// initialization, exactly like the engine registry's duplicate panic.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: slices.Clone(labels), buckets: buckets,
		series: make(map[string]metric),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.families[name] = f
	return f
}

// NewCounter registers a counter family. With no label names the family
// has exactly one series, reachable via With().
func (r *Registry) NewCounter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, "counter", labels, nil)}
}

// NewGauge registers a gauge family.
func (r *Registry) NewGauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil)}
}

// NewHistogram registers a histogram family with fixed bucket upper
// bounds, which must be strictly increasing and finite; the implicit
// +Inf bucket is added automatically.
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	for i, b := range buckets {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic(fmt.Sprintf("metrics: histogram %q bucket %d is not finite", name, i))
		}
		if i > 0 && buckets[i-1] >= b {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly increasing at %d", name, i))
		}
	}
	return &HistogramVec{f: r.register(name, help, "histogram", labels, slices.Clone(buckets))}
}

// OnScrape registers a hook invoked at the start of every
// WritePrometheus call, before serialization — the place to refresh
// snapshot-sourced gauges and counters so a scrape is as fresh as a
// /stats read of the same sources.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

const seriesKeySep = "\xff" // never valid inside UTF-8 label text at a boundary

// lookup returns the series for the given label values, creating it on
// first use. Hot path: one RLock map hit.
func (f *family) lookup(values []string, mk func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, seriesKeySep)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.series[key]; ok {
		return m
	}
	m = mk()
	f.series[key] = m
	return m
}

// --- Counter ------------------------------------------------------------

// CounterVec is a counter family; With selects one labeled series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per
// registered label name, in order), creating it at zero on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.lookup(values, func() metric { return &Counter{} }).(*Counter)
}

// Counter is a monotonically increasing sample. The value is a float64
// so byte counters and second counters share one type.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by d, which must be ≥ 0.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("metrics: counter decremented")
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set installs an absolute value — for counters mirrored from another
// subsystem's cumulative counters at scrape time (see the package
// comment). The caller owns monotonicity.
func (c *Counter) Set(v float64) { c.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) write(w io.Writer, name, labelText string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelText, formatFloat(c.Value()))
}

// --- Gauge --------------------------------------------------------------

// GaugeVec is a gauge family; With selects one labeled series.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.lookup(values, func() metric { return &Gauge{} }).(*Gauge)
}

// Gauge is a sample that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set installs the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labelText string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelText, formatFloat(g.Value()))
}

// --- Histogram ----------------------------------------------------------

// HistogramVec is a histogram family; With selects one labeled series.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.lookup(values, func() metric {
		return &Histogram{bounds: v.f.buckets, counts: make([]atomic.Uint64, len(v.f.buckets)+1)}
	}).(*Histogram)
}

// Histogram accumulates observations into fixed buckets. counts[i]
// holds observations in (bounds[i-1], bounds[i]]; the final slot is the
// +Inf overflow. Exposition cumulates them per the format.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) write(w io.Writer, name, labelText string) {
	// Merge `le` into any existing labels: {a="b",le="x"} or {le="x"}.
	le := func(bound string) string {
		if labelText == "" {
			return `{le="` + bound + `"}`
		}
		return labelText[:len(labelText)-1] + `,le="` + bound + `"}`
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, le(formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, le("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelText, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelText, cum)
}

// --- Exposition ---------------------------------------------------------

// WritePrometheus runs the scrape hooks, then serializes every family in
// the text exposition format: families sorted by name, series sorted by
// label values.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	hooks := slices.Clone(r.onScrape)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
	slices.SortFunc(fams, func(a, b *family) int { return strings.Compare(a.name, b.name) })
	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	series := make([]metric, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()
	if len(series) == 0 {
		return // a family with no series yet exposes nothing
	}
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for i, k := range keys {
		series[i].write(w, f.name, f.labelText(k))
	}
}

// labelText renders the `{name="value",...}` sample suffix for one
// series key; empty when the family has no labels.
func (f *family) labelText(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := strings.Split(key, seriesKeySep)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range f.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value: integers without an exponent or
// trailing zeros, non-integers in Go's shortest round-trip form, and
// infinities in the format's spelling.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
