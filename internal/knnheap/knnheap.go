// Package knnheap implements the bounded per-user neighborhood heaps used
// by all KNN construction algorithms: "the current approximation k̂nnu of
// each user u's neighborhood is stored as a heap of maximum size k, with
// the similarity between u and its neighbors used as priority" (paper
// §III-C).
//
// Entries are ordered by the total order (similarity desc, ID asc). Using
// a total order — rather than similarity alone — makes the retained top-k
// set independent of insertion order even under similarity ties, so
// parallel runs produce identical graphs.
//
// Beyond the batch-construction operations, the set supports the
// append-only population growth (Grow) and targeted entry removal
// (Remove, Clear) that incremental graph maintenance needs.
package knnheap

import "sync"

// Entry is one neighbor candidate held in a heap. New is the NN-Descent
// incremental-join flag (true until the entry has participated in a local
// join); KIFF and HyRec ignore it.
type Entry struct {
	ID  uint32
	Sim float64
	New bool
}

// worse reports whether a is a strictly worse neighbor than b under the
// total order (lower similarity, then higher ID).
func worse(a, b Entry) bool {
	if a.Sim != b.Sim {
		return a.Sim < b.Sim
	}
	return a.ID > b.ID
}

// Heap is a single bounded neighborhood: a min-heap whose root is the
// worst retained neighbor. The zero value is unusable; heaps are created
// through NewSet, which backs every heap's bounded entry storage with one
// shared arena — two allocations for the whole population instead of two
// per user, and neighboring users' entries adjacent in memory.
type Heap struct {
	mu      sync.Mutex
	entries []Entry
}

// Set is the collection of one heap per user, all bounded by the same k.
//
// A Set optionally tracks which users' heaps changed (TrackDirty): the
// copy-on-write snapshot publication path drains that dirty set at export
// time to clone only the graph pages containing changed users. Tracking
// is opt-in because the parallel cold build mutates heaps from many
// goroutines; the maintenance layer enables it once construction is done
// and it holds the single-writer contract from then on.
type Set struct {
	k     int
	heaps []Heap

	// Dirty tracking (TrackDirty/DrainDirty). stamp[u] == epoch means u
	// is already recorded in dirty for the current drain interval, so a
	// user mutated many times between two publications is listed once.
	// Only the single writer touches these; concurrent readers (Export,
	// Neighbors) never do.
	track bool
	epoch uint32
	stamp []uint32
	dirty []uint32
}

// TrackDirty starts recording which users' heaps change. Call it right
// after the state being tracked against was exported in full (the first
// snapshot publication): from then on, every Update/Remove/Clear that
// changes a heap — and every user added by Grow — lands in the dirty set
// until DrainDirty collects it. Tracking requires the single-writer
// contract: no concurrent mutations after TrackDirty.
func (s *Set) TrackDirty() {
	s.track = true
	s.epoch = 1
	s.stamp = make([]uint32, len(s.heaps))
	s.dirty = s.dirty[:0]
}

// DrainDirty appends the users whose heaps changed since the previous
// drain (or since TrackDirty) to dst and resets the dirty set — the
// publication-time harvest. Order is first-touch order; IDs are unique.
func (s *Set) DrainDirty(dst []uint32) []uint32 {
	dst = append(dst, s.dirty...)
	s.dirty = s.dirty[:0]
	s.epoch++
	if s.epoch == 0 {
		// The epoch counter wrapped: old stamps would alias the new
		// interval, so reset them all and restart at 1.
		clear(s.stamp)
		s.epoch = 1
	}
	return dst
}

// markDirty records a change to u's heap. Writer-side only (guarded by
// the TrackDirty contract), so the Set-level dirty list needs no lock
// even though callers hold only the per-heap lock.
func (s *Set) markDirty(u uint32) {
	if !s.track || s.stamp[u] == s.epoch {
		return
	}
	s.stamp[u] = s.epoch
	s.dirty = append(s.dirty, u)
}

// NewSet creates n empty heaps of capacity k.
func NewSet(n, k int) *Set {
	if n < 0 || k < 1 {
		panic("knnheap: NewSet requires n ≥ 0 and k ≥ 1")
	}
	s := &Set{k: k, heaps: make([]Heap, n)}
	backing := make([]Entry, n*k)
	for i := range s.heaps {
		lo := i * k
		s.heaps[i].entries = backing[lo : lo : lo+k]
	}
	return s
}

// Grow appends extra empty heaps for users appended to the population.
// It must not run concurrently with other Set operations (incremental
// maintenance is single-writer); existing heaps are unaffected. Each Grow
// batch gets its own entry arena.
func (s *Set) Grow(extra int) {
	if extra < 0 {
		panic("knnheap: Grow requires extra ≥ 0")
	}
	backing := make([]Entry, extra*s.k)
	base := len(s.heaps)
	for i := 0; i < extra; i++ {
		lo := i * s.k
		s.heaps = append(s.heaps, Heap{entries: backing[lo : lo : lo+s.k]})
	}
	if s.track {
		s.stamp = append(s.stamp, make([]uint32, extra)...)
		for i := 0; i < extra; i++ {
			// A new user has no previously published page; its page must
			// be (re)built at the next publication.
			s.markDirty(uint32(base + i))
		}
	}
}

// K returns the neighborhood bound.
func (s *Set) K() int { return s.k }

// Len returns the number of heaps.
func (s *Set) Len() int { return len(s.heaps) }

// Size returns the current number of neighbors of user u.
func (s *Set) Size(u uint32) int {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// Update implements UPDATENN of Algorithm 1 (lines 14–16): offer (id, sim)
// to user u's heap and report 1 if the neighborhood changed, 0 otherwise.
// A candidate already present leaves the heap unchanged; a candidate worse
// than the current root of a full heap is rejected.
func (s *Set) Update(u uint32, id uint32, sim float64) int {
	return s.update(u, Entry{ID: id, Sim: sim, New: true})
}

func (s *Set) update(u uint32, e Entry) int {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.entries {
		if h.entries[i].ID == e.ID {
			return 0
		}
	}
	if len(h.entries) < s.k {
		h.entries = append(h.entries, e)
		h.siftUp(len(h.entries) - 1)
		s.markDirty(u)
		return 1
	}
	if !worse(e, h.entries[0]) {
		h.entries[0] = e
		h.siftDown(0)
		s.markDirty(u)
		return 1
	}
	return 0
}

// Remove deletes id from u's heap, reporting whether it was present.
// Incremental maintenance uses it to evict entries whose similarity went
// stale after a profile change, before re-offering the fresh value.
func (s *Set) Remove(u uint32, id uint32) bool {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.entries {
		if h.entries[i].ID != id {
			continue
		}
		last := len(h.entries) - 1
		h.entries[i] = h.entries[last]
		h.entries = h.entries[:last]
		if i < last {
			// The displaced element may need to move either way.
			h.siftDown(i)
			h.siftUp(i)
		}
		s.markDirty(u)
		return true
	}
	return false
}

// Clear empties u's heap (used when a user's neighborhood is rebuilt from
// scratch after its profile changed).
func (s *Set) Clear(u uint32) {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) > 0 {
		s.markDirty(u)
	}
	h.entries = h.entries[:0]
}

// Worst returns the root (worst retained neighbor) of u's heap and whether
// the heap is non-empty.
func (s *Set) Worst(u uint32) (Entry, bool) {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) == 0 {
		return Entry{}, false
	}
	return h.entries[0], true
}

// Contains reports whether id is currently a neighbor of u.
func (s *Set) Contains(u uint32, id uint32) bool {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.entries {
		if h.entries[i].ID == id {
			return true
		}
	}
	return false
}

// Neighbors appends u's current neighbors to dst in arbitrary (heap)
// order and returns the extended slice.
func (s *Set) Neighbors(dst []Entry, u uint32) []Entry {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	return append(dst, h.entries...)
}

// Export appends every heap's entries to entries (per heap, in arbitrary
// heap order) and the CSR row offsets to offsets, so a snapshot of the
// whole set lands in two contiguous arrays instead of one slice per user.
// Each heap is read under its own lock; like Neighbors, Export may run
// while another goroutine still updates the set, and each row is then
// internally consistent even if the set as a whole keeps moving.
func (s *Set) Export(offsets []int64, entries []Entry) ([]int64, []Entry) {
	return s.ExportRange(offsets, entries, 0, len(s.heaps))
}

// ExportRange is Export restricted to the users in [lo, hi): the page
// export primitive of copy-on-write snapshot publication, which rebuilds
// only the pages containing dirty users. The appended offsets are
// relative to the entries slice passed in, exactly as in Export.
func (s *Set) ExportRange(offsets []int64, entries []Entry, lo, hi int) ([]int64, []Entry) {
	offsets = append(offsets, int64(len(entries)))
	for i := lo; i < hi; i++ {
		h := &s.heaps[i]
		h.mu.Lock()
		entries = append(entries, h.entries...)
		h.mu.Unlock()
		offsets = append(offsets, int64(len(entries)))
	}
	return offsets, entries
}

// IDs appends the IDs of u's current neighbors to dst.
func (s *Set) IDs(dst []uint32, u uint32) []uint32 {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.entries {
		dst = append(dst, h.entries[i].ID)
	}
	return dst
}

// CollectFlagged appends the IDs of u's neighbors to newIDs or oldIDs
// according to their New flag, clearing the flags of the entries reported
// as new. This is the per-iteration flag harvest of NN-Descent's
// incremental local join.
func (s *Set) CollectFlagged(newIDs, oldIDs []uint32, u uint32) ([]uint32, []uint32) {
	h := &s.heaps[u]
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.entries {
		if h.entries[i].New {
			newIDs = append(newIDs, h.entries[i].ID)
			h.entries[i].New = false
		} else {
			oldIDs = append(oldIDs, h.entries[i].ID)
		}
	}
	return newIDs, oldIDs
}

func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.entries[i], h.entries[parent]) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *Heap) siftDown(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && worse(h.entries[l], h.entries[smallest]) {
			smallest = l
		}
		if r < n && worse(h.entries[r], h.entries[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
}
