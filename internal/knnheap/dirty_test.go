package knnheap

import (
	"slices"
	"testing"
)

func drainSorted(s *Set) []uint32 {
	d := s.DrainDirty(nil)
	slices.Sort(d)
	return d
}

func TestDirtyTrackingRecordsChanges(t *testing.T) {
	s := NewSet(8, 2)
	s.Update(0, 1, 0.5)
	s.TrackDirty()
	if d := s.DrainDirty(nil); len(d) != 0 {
		t.Fatalf("dirty right after TrackDirty: %v", d)
	}

	s.Update(2, 3, 0.9) // insert: change
	s.Update(2, 3, 0.9) // duplicate candidate: no change
	s.Update(2, 4, 0.8)
	s.Update(2, 5, 0.1) // heap full, worse than root: rejected
	if got, want := drainSorted(s), []uint32{2}; !slices.Equal(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}

	// Remove and Clear mark; removing an absent ID and clearing an empty
	// heap do not.
	s.Remove(0, 1)
	s.Remove(3, 7) // heap 3 is empty: no change
	s.Clear(2)
	s.Clear(5) // already empty: no change
	if got, want := drainSorted(s), []uint32{0, 2}; !slices.Equal(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}

	// Each drain opens a fresh interval: a user re-marked after a drain is
	// reported again, once.
	s.Update(2, 6, 0.7)
	s.Update(2, 7, 0.6)
	if got, want := drainSorted(s), []uint32{2}; !slices.Equal(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
}

func TestDirtyTrackingGrowMarksNewUsers(t *testing.T) {
	s := NewSet(3, 2)
	s.TrackDirty()
	s.DrainDirty(nil)
	s.Grow(2)
	if got, want := drainSorted(s), []uint32{3, 4}; !slices.Equal(got, want) {
		t.Fatalf("dirty after Grow = %v, want %v", got, want)
	}
	// The grown stamps must work: mutating a new user marks it.
	s.Update(4, 0, 0.3)
	if got, want := drainSorted(s), []uint32{4}; !slices.Equal(got, want) {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
}

func TestDirtyTrackingEpochWrap(t *testing.T) {
	s := NewSet(4, 2)
	s.TrackDirty()
	s.Update(1, 2, 0.5)
	s.DrainDirty(nil)
	// Force the wrap: the next drain resets stamps instead of aliasing
	// epoch 0 (a stale stamp equal to the new epoch would suppress marks).
	s.epoch = ^uint32(0)
	s.stamp[1] = ^uint32(0) // as if 1 was marked in the current interval
	s.dirty = append(s.dirty[:0], 1)
	s.DrainDirty(nil)
	if s.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", s.epoch)
	}
	s.Update(1, 3, 0.9)
	if got, want := drainSorted(s), []uint32{1}; !slices.Equal(got, want) {
		t.Fatalf("dirty after wrap = %v, want %v (stale stamp suppressed the mark?)", got, want)
	}
}

func TestExportRangeMatchesExport(t *testing.T) {
	s := NewSet(10, 3)
	for u := uint32(0); u < 10; u++ {
		for v := uint32(0); v < 10; v++ {
			if u != v {
				s.Update(u, v, float64((u*7+v*3)%11))
			}
		}
	}
	fullOff, fullEnt := s.Export(nil, nil)
	for _, r := range [][2]int{{0, 10}, {0, 3}, {3, 7}, {7, 10}, {5, 5}} {
		lo, hi := r[0], r[1]
		off, ent := s.ExportRange(nil, nil, lo, hi)
		if len(off) != hi-lo+1 {
			t.Fatalf("[%d,%d): %d offsets, want %d", lo, hi, len(off), hi-lo+1)
		}
		for u := lo; u < hi; u++ {
			got := ent[off[u-lo]:off[u-lo+1]]
			want := fullEnt[fullOff[u]:fullOff[u+1]]
			if len(got) != len(want) {
				t.Fatalf("[%d,%d) user %d: %d entries, want %d", lo, hi, u, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("[%d,%d) user %d entry %d: %v vs %v", lo, hi, u, i, got[i], want[i])
				}
			}
		}
	}
}
