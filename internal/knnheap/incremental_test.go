package knnheap

import (
	"math/rand"
	"sort"
	"testing"
)

func TestGrowAddsEmptyHeaps(t *testing.T) {
	s := NewSet(2, 3)
	s.Update(0, 9, 0.5)
	s.Grow(2)
	if s.Len() != 4 {
		t.Fatalf("Len = %d after Grow(2), want 4", s.Len())
	}
	if s.Size(2) != 0 || s.Size(3) != 0 {
		t.Error("grown heaps must start empty")
	}
	// Existing contents survive and new heaps accept updates.
	if !s.Contains(0, 9) {
		t.Error("Grow lost existing entries")
	}
	if s.Update(3, 1, 0.7) != 1 {
		t.Error("grown heap rejected an update")
	}
	defer func() {
		if recover() == nil {
			t.Error("Grow(-1) must panic")
		}
	}()
	s.Grow(-1)
}

func TestRemove(t *testing.T) {
	s := NewSet(1, 4)
	for id, sim := range map[uint32]float64{1: 0.9, 2: 0.5, 3: 0.7, 4: 0.1} {
		s.Update(0, id, sim)
	}
	if !s.Remove(0, 3) {
		t.Fatal("Remove of a present entry must report true")
	}
	if s.Remove(0, 3) {
		t.Fatal("Remove of an absent entry must report false")
	}
	if s.Size(0) != 3 || s.Contains(0, 3) {
		t.Fatal("entry not removed")
	}
	// The freed slot accepts a new candidate even one worse than the root.
	if s.Update(0, 7, 0.05) != 1 {
		t.Error("freed slot must accept a new entry")
	}
}

// TestRemoveKeepsHeapInvariant hammers interleaved updates and removals
// and checks the min-heap invariant and the worst-tracking after each.
func TestRemoveKeepsHeapInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewSet(1, 8)
	live := map[uint32]float64{}
	for step := 0; step < 3000; step++ {
		if r.Intn(3) == 0 && len(live) > 0 {
			// Remove a random live entry.
			ids := make([]uint32, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			victim := ids[r.Intn(len(ids))]
			if !s.Remove(0, victim) {
				t.Fatalf("step %d: live entry %d not removable", step, victim)
			}
			delete(live, victim)
		} else {
			id := uint32(r.Intn(200))
			if _, ok := live[id]; ok {
				continue
			}
			sim := float64(r.Intn(100)) / 100
			if s.Update(0, id, sim) == 1 {
				// Track the retained set: if the heap was full the worst got
				// displaced.
				live[id] = sim
				if len(live) > 8 {
					worstID := uint32(0)
					worst := Entry{Sim: 2}
					for lid, lsim := range live {
						if e := (Entry{ID: lid, Sim: lsim}); worse(e, worst) {
							worst = e
							worstID = lid
						}
					}
					delete(live, worstID)
				}
			}
		}
		// Heap invariant.
		h := &s.heaps[0]
		for i := 1; i < len(h.entries); i++ {
			parent := (i - 1) / 2
			if worse(h.entries[i], h.entries[parent]) {
				t.Fatalf("step %d: heap invariant violated", step)
			}
		}
		if len(h.entries) != len(live) {
			t.Fatalf("step %d: heap size %d, model %d", step, len(h.entries), len(live))
		}
	}
}

func TestClear(t *testing.T) {
	s := NewSet(2, 3)
	s.Update(0, 1, 0.5)
	s.Update(0, 2, 0.6)
	s.Update(1, 5, 0.7)
	s.Clear(0)
	if s.Size(0) != 0 {
		t.Error("Clear must empty the heap")
	}
	if s.Size(1) != 1 {
		t.Error("Clear must not touch other heaps")
	}
	if s.Update(0, 3, 0.1) != 1 || s.Size(0) != 1 {
		t.Error("cleared heap must accept updates again")
	}
}
