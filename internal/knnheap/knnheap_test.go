package knnheap

import (
	"math/rand"
	"sort"
	"testing"
)

func sortedNeighbors(s *Set, u uint32) []Entry {
	es := s.Neighbors(nil, u)
	sort.Slice(es, func(a, b int) bool {
		if es[a].Sim != es[b].Sim {
			return es[a].Sim > es[b].Sim
		}
		return es[a].ID < es[b].ID
	})
	return es
}

func TestUpdateFillsToK(t *testing.T) {
	s := NewSet(1, 3)
	for i, changed := range []int{1, 1, 1} {
		if got := s.Update(0, uint32(i), float64(i)); got != changed {
			t.Fatalf("insert %d: Update = %d, want %d", i, got, changed)
		}
	}
	if s.Size(0) != 3 {
		t.Fatalf("Size = %d, want 3", s.Size(0))
	}
}

func TestUpdateRejectsWorse(t *testing.T) {
	s := NewSet(1, 2)
	s.Update(0, 1, 0.9)
	s.Update(0, 2, 0.8)
	if got := s.Update(0, 3, 0.1); got != 0 {
		t.Errorf("worse candidate accepted: Update = %d, want 0", got)
	}
	if got := s.Update(0, 4, 0.95); got != 1 {
		t.Errorf("better candidate rejected: Update = %d, want 1", got)
	}
	es := sortedNeighbors(s, 0)
	if es[0].ID != 4 || es[1].ID != 1 {
		t.Errorf("neighbors = %v, want [4 1]", es)
	}
}

func TestUpdateDuplicateIsNoop(t *testing.T) {
	s := NewSet(1, 3)
	s.Update(0, 7, 0.5)
	if got := s.Update(0, 7, 0.5); got != 0 {
		t.Errorf("duplicate Update = %d, want 0", got)
	}
	if s.Size(0) != 1 {
		t.Errorf("Size = %d, want 1", s.Size(0))
	}
}

func TestTieBreakByID(t *testing.T) {
	// With equal similarity, the smaller ID must win a full heap.
	s := NewSet(1, 1)
	s.Update(0, 9, 0.5)
	if got := s.Update(0, 3, 0.5); got != 1 {
		t.Fatalf("equal-sim smaller-ID candidate rejected")
	}
	if got := s.Update(0, 12, 0.5); got != 0 {
		t.Fatalf("equal-sim larger-ID candidate accepted")
	}
	es := sortedNeighbors(s, 0)
	if len(es) != 1 || es[0].ID != 3 {
		t.Errorf("neighbors = %v, want [3]", es)
	}
}

func TestWorst(t *testing.T) {
	s := NewSet(1, 3)
	if _, ok := s.Worst(0); ok {
		t.Error("empty heap must report no worst entry")
	}
	s.Update(0, 1, 0.9)
	s.Update(0, 2, 0.2)
	s.Update(0, 3, 0.5)
	w, ok := s.Worst(0)
	if !ok || w.ID != 2 {
		t.Errorf("Worst = %+v, want ID 2", w)
	}
}

func TestContains(t *testing.T) {
	s := NewSet(2, 2)
	s.Update(1, 5, 0.1)
	if !s.Contains(1, 5) {
		t.Error("Contains(1,5) = false")
	}
	if s.Contains(1, 6) || s.Contains(0, 5) {
		t.Error("Contains must be per-user and per-id")
	}
}

func TestIDs(t *testing.T) {
	s := NewSet(1, 3)
	s.Update(0, 4, 0.4)
	s.Update(0, 2, 0.2)
	ids := s.IDs(nil, 0)
	if len(ids) != 2 {
		t.Fatalf("IDs = %v", ids)
	}
	seen := map[uint32]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if !seen[4] || !seen[2] {
		t.Errorf("IDs = %v, want {2,4}", ids)
	}
}

func TestCollectFlagged(t *testing.T) {
	s := NewSet(1, 4)
	s.Update(0, 1, 0.1)
	s.Update(0, 2, 0.2)
	newIDs, oldIDs := s.CollectFlagged(nil, nil, 0)
	if len(newIDs) != 2 || len(oldIDs) != 0 {
		t.Fatalf("first harvest: new=%v old=%v", newIDs, oldIDs)
	}
	// Second harvest: everything is old now.
	newIDs, oldIDs = s.CollectFlagged(nil, nil, 0)
	if len(newIDs) != 0 || len(oldIDs) != 2 {
		t.Fatalf("second harvest: new=%v old=%v", newIDs, oldIDs)
	}
	// A fresh insert is new again.
	s.Update(0, 3, 0.3)
	newIDs, oldIDs = s.CollectFlagged(nil, nil, 0)
	if len(newIDs) != 1 || newIDs[0] != 3 || len(oldIDs) != 2 {
		t.Fatalf("third harvest: new=%v old=%v", newIDs, oldIDs)
	}
}

func TestOrderIndependenceUnderTies(t *testing.T) {
	// The retained top-k set must not depend on insertion order, even with
	// tied similarities — this is what makes parallel runs reproducible.
	type cand struct {
		id  uint32
		sim float64
	}
	cands := []cand{
		{1, 0.5}, {2, 0.5}, {3, 0.5}, {4, 0.9}, {5, 0.1}, {6, 0.5}, {7, 0.7},
	}
	r := rand.New(rand.NewSource(3))
	var want []Entry
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(len(cands))
		s := NewSet(1, 3)
		for _, pi := range perm {
			s.Update(0, cands[pi].id, cands[pi].sim)
		}
		got := sortedNeighbors(s, 0)
		if trial == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: size %d != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: neighbors %v != %v", trial, got, want)
			}
		}
	}
	// And the deterministic winner set is {4:0.9, 7:0.7, 1:0.5} (smallest ID
	// wins the 0.5 tie).
	if want[0].ID != 4 || want[1].ID != 7 || want[2].ID != 1 {
		t.Errorf("winner set = %v, want IDs [4 7 1]", want)
	}
}

func TestHeapInvariantRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := NewSet(1, 16)
	for i := 0; i < 2000; i++ {
		s.Update(0, uint32(r.Intn(500)), float64(r.Intn(20))/20)
		h := &s.heaps[0]
		for idx := 1; idx < len(h.entries); idx++ {
			parent := (idx - 1) / 2
			if worse(h.entries[idx], h.entries[parent]) {
				t.Fatalf("heap invariant violated at step %d", i)
			}
		}
	}
}

func TestTopKMatchesSortRandomized(t *testing.T) {
	// The heap must retain exactly the top-k under the total order.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		k := 1 + r.Intn(10)
		n := 1 + r.Intn(100)
		s := NewSet(1, k)
		type cand struct {
			id  uint32
			sim float64
		}
		var all []cand
		usedID := map[uint32]bool{}
		for i := 0; i < n; i++ {
			id := uint32(r.Intn(1000))
			if usedID[id] {
				continue
			}
			usedID[id] = true
			c := cand{id: id, sim: float64(r.Intn(10)) / 10}
			all = append(all, c)
			s.Update(0, c.id, c.sim)
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].sim != all[b].sim {
				return all[a].sim > all[b].sim
			}
			return all[a].id < all[b].id
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := sortedNeighbors(s, 0)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d entries, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].id || got[i].Sim != want[i].sim {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestNewSetPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSet(1, 0) must panic")
		}
	}()
	NewSet(1, 0)
}
