package knnheap

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// offer is a generated candidate for property tests. Similarities are a
// deterministic function of the ID, as they are in the real algorithms
// (the similarity of a pair never changes between offers).
type offer struct {
	ID  uint32
	Sim float64
}

type offerStream struct {
	K      int
	Offers []offer
}

func randStream(r *rand.Rand) offerStream {
	n := 1 + r.Intn(60)
	s := offerStream{K: 1 + r.Intn(8)}
	simOf := map[uint32]float64{}
	for i := 0; i < n; i++ {
		id := uint32(1 + r.Intn(30))
		if _, ok := simOf[id]; !ok {
			// Coarse similarity grid to force ties across IDs.
			simOf[id] = float64(r.Intn(5)) / 4
		}
		s.Offers = append(s.Offers, offer{ID: id, Sim: simOf[id]})
	}
	return s
}

func streamCfg(seed int64) *quick.Config {
	r := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 200,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randStream(r))
			}
		},
	}
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(a, b int) bool {
		if es[a].Sim != es[b].Sim {
			return es[a].Sim > es[b].Sim
		}
		return es[a].ID < es[b].ID
	})
}

// apply feeds the stream to a fresh heap and returns the retained set in
// canonical order.
func apply(s offerStream) []Entry {
	set := NewSet(1, s.K)
	for _, o := range s.Offers {
		set.Update(0, o.ID, o.Sim)
	}
	es := set.Neighbors(nil, 0)
	sortEntries(es)
	return es
}

// TestQuickHeapEqualsSortTopK: the streamed heap must retain exactly the
// deduplicated top-k under the total order.
func TestQuickHeapEqualsSortTopK(t *testing.T) {
	f := func(s offerStream) bool {
		got := apply(s)
		seen := map[uint32]bool{}
		var ref []Entry
		for _, o := range s.Offers {
			if seen[o.ID] {
				continue
			}
			seen[o.ID] = true
			ref = append(ref, Entry{ID: o.ID, Sim: o.Sim})
		}
		sortEntries(ref)
		if len(ref) > s.K {
			ref = ref[:s.K]
		}
		if len(got) != len(ref) {
			return false
		}
		for i := range ref {
			if got[i].ID != ref[i].ID || got[i].Sim != ref[i].Sim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, streamCfg(11)); err != nil {
		t.Error(err)
	}
}

// TestQuickHeapPermutationInvariant: shuffling the offer stream never
// changes the retained set — the property that makes parallel runs
// reproducible.
func TestQuickHeapPermutationInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(s offerStream) bool {
		base := apply(s)
		for trial := 0; trial < 3; trial++ {
			shuffled := offerStream{K: s.K, Offers: append([]offer(nil), s.Offers...)}
			r.Shuffle(len(shuffled.Offers), func(i, j int) {
				shuffled.Offers[i], shuffled.Offers[j] = shuffled.Offers[j], shuffled.Offers[i]
			})
			other := apply(shuffled)
			if len(other) != len(base) {
				return false
			}
			for i := range base {
				if base[i] != other[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, streamCfg(13)); err != nil {
		t.Error(err)
	}
}

// TestQuickUpdateChangeFlag: Update's return value must faithfully report
// whether the retained set changed — Algorithm 1's convergence counter c
// depends on it.
func TestQuickUpdateChangeFlag(t *testing.T) {
	f := func(s offerStream) bool {
		set := NewSet(1, s.K)
		var prev []Entry
		for _, o := range s.Offers {
			changed := set.Update(0, o.ID, o.Sim)
			cur := set.Neighbors(nil, 0)
			sortEntries(cur)
			same := len(cur) == len(prev)
			if same {
				for i := range cur {
					if cur[i].ID != prev[i].ID || cur[i].Sim != prev[i].Sim {
						same = false
						break
					}
				}
			}
			if (changed == 0) != same {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, streamCfg(17)); err != nil {
		t.Error(err)
	}
}

// TestQuickWorstIsMinimum: the reported worst entry is the minimum of the
// retained set under the total order.
func TestQuickWorstIsMinimum(t *testing.T) {
	f := func(s offerStream) bool {
		set := NewSet(1, s.K)
		for _, o := range s.Offers {
			set.Update(0, o.ID, o.Sim)
		}
		w, ok := set.Worst(0)
		es := set.Neighbors(nil, 0)
		if !ok {
			return len(es) == 0
		}
		for _, e := range es {
			if worse(e, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, streamCfg(19)); err != nil {
		t.Error(err)
	}
}
