package hyrec

import (
	"testing"

	"kiff/internal/bruteforce"
	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/similarity"
)

func TestRejectsBadConfig(t *testing.T) {
	d, _, _ := dataset.Toy()
	bads := []Config{
		{K: 0},
		{K: 2, R: -1},
		{K: 2, Beta: -0.1},
		{K: 2, MaxIterations: -1},
	}
	for i, cfg := range bads {
		if _, err := Build(d, cfg); err == nil {
			t.Errorf("case %d: accepted invalid config", i)
		}
	}
}

func TestConvergesToReasonableRecall(t *testing.T) {
	// Table II: HyRec reaches 0.90–0.95 on denser datasets, below
	// NN-Descent but far above random.
	d, err := dataset.Wikipedia.Generate(0.03, 31)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	cfg := DefaultConfig(k)
	cfg.Seed = 1
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	exact := bruteforce.Exact(d, similarity.Cosine{}, k, 0)
	if got := exact.Recall(res.Graph); got < 0.7 {
		t.Errorf("recall = %v, want ≥ 0.7", got)
	}
}

func TestEveryUserGetsKNeighbors(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 32)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	res, err := Build(d, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < res.Graph.NumUsers(); u++ {
		if l := res.Graph.Neighbors(uint32(u)); len(l) != k {
			t.Fatalf("user %d has %d neighbors, want %d", u, len(l), k)
		}
	}
}

func TestRandomCandidatesIncreaseWork(t *testing.T) {
	// §IV-D: random nodes increase wall-time (and similarity work) for a
	// small recall benefit; verify the work increase direction.
	d, err := dataset.Wikipedia.Generate(0.015, 33)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig(10)
	base.Seed = 2
	baseRes, err := Build(d, base)
	if err != nil {
		t.Fatal(err)
	}
	withRandom := DefaultConfig(10)
	withRandom.Seed = 2
	withRandom.R = 5
	randRes, err := Build(d, withRandom)
	if err != nil {
		t.Fatal(err)
	}
	if randRes.Run.SimEvals <= baseRes.Run.SimEvals {
		t.Errorf("r=5 did not increase similarity work: %d vs %d",
			randRes.Run.SimEvals, baseRes.Run.SimEvals)
	}
}

func TestMaxIterationsCap(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 34)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.MaxIterations = 2
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Iterations > 2 {
		t.Errorf("Iterations = %d, want ≤ 2", res.Run.Iterations)
	}
}

func TestHookInvoked(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 35)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	cfg := DefaultConfig(5)
	cfg.Hook = func(iter int, g *knngraph.Graph, evals int64) float64 {
		calls++
		return 0
	}
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Run.Iterations {
		t.Errorf("hook called %d times, want %d", calls, res.Run.Iterations)
	}
}

func TestTraceAccounting(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 36)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	r := res.Run
	if len(r.UpdatesPerIter) != r.Iterations || len(r.EvalsAtIter) != r.Iterations {
		t.Fatalf("trace lengths inconsistent with %d iterations", r.Iterations)
	}
	if r.EvalsAtIter[len(r.EvalsAtIter)-1] != r.SimEvals {
		t.Error("cumulative evals must end at SimEvals")
	}
	if r.WallTime <= 0 {
		t.Error("wall time missing")
	}
}
