// Package hyrec implements the HyRec baseline (Boutet et al., Middleware
// 2014) as configured in the paper (§IV-B): a greedy KNN construction
// that, per iteration, considers for each user the neighbors of its
// current neighbors plus r random users, evaluates the similarity of the
// user against those candidates (a star join, in contrast to NN-Descent's
// local join), and keeps the top k.
//
// Per the paper's experimental setup, the implementation also adopts
// NN-Descent's pivot mechanism (each evaluated similarity updates both
// endpoints) and KIFF's early-termination rule (stop when the average
// number of changes per user drops below β). The default r = 0: the paper
// reports that random candidates trade a 3× wall-time increase for a 4%
// recall gain and disables them.
//
// The algorithm is plugged into kiff/internal/engine: Build below is a
// thin adapter that maps Config onto engine.Options.
package hyrec

import (
	"errors"
	"math/rand"
	"time"

	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/knngraph"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Name is the engine registry key of the HyRec builder.
const Name = "hyrec"

func init() { engine.Register(builder{}) }

// Config parameterizes a HyRec run.
type Config struct {
	// K is the neighborhood size.
	K int
	// R is the number of random users added to each candidate set per
	// iteration (paper default 0).
	R int
	// Beta is the early-termination threshold on changes per user
	// (0 selects 0.001, mirroring KIFF's default as in §IV-B).
	Beta float64
	// Metric is the similarity measure; nil selects cosine.
	Metric similarity.Metric
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// MaxIterations caps the loop (0 = unlimited).
	MaxIterations int
	// Seed drives the random initial graph and the random candidates.
	Seed int64
	// Hook, when non-nil, observes every iteration (Fig 8 traces).
	Hook runstats.IterHook
}

// DefaultConfig returns the paper's HyRec configuration.
func DefaultConfig(k int) Config {
	return Config{K: k, R: 0, Beta: 0.001, Metric: similarity.Cosine{}}
}

// Result bundles the constructed graph with the run's cost metrics.
type Result struct {
	Graph *knngraph.Graph
	Run   runstats.Run
}

// Build runs HyRec on the dataset through the engine.
func Build(d *dataset.Dataset, cfg Config) (*Result, error) {
	res, err := engine.Build(Name, d, engine.Options{
		K:             cfg.K,
		R:             cfg.R,
		Beta:          cfg.Beta,
		Metric:        cfg.Metric,
		Workers:       cfg.Workers,
		MaxIterations: cfg.MaxIterations,
		Seed:          cfg.Seed,
		Hook:          cfg.Hook,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Graph: res.Graph, Run: res.Run}, nil
}

// builder plugs HyRec into the engine.
type builder struct{}

// Name implements engine.Builder.
func (builder) Name() string { return Name }

// Normalize implements engine.Builder. HyRec, unlike KIFF, has no
// candidate-exhaustion point, so a negative (disabled) Beta would loop
// forever and is rejected unless MaxIterations bounds the run.
func (builder) Normalize(o *engine.Options) error {
	if o.R < 0 {
		return errors.New("hyrec: R must be ≥ 0")
	}
	if o.Beta == 0 {
		o.Beta = 0.001
	}
	if o.Beta < 0 && o.MaxIterations == 0 {
		return errors.New("hyrec: Beta < 0 requires MaxIterations > 0")
	}
	return nil
}

// Refine implements engine.Builder: the random initial graph followed by
// the neighbors-of-neighbors star-join loop.
func (builder) Refine(s *engine.Session) error {
	o := s.Opts
	n := s.Dataset.NumUsers()

	// Random k-degree initial graph (same procedure as NN-Descent).
	simStart := time.Now()
	parallel.Blocks(n, o.Workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			rng := rand.New(rand.NewSource(o.Seed ^ int64(u)*0x9e3779b1))
			need := o.K
			if need > n-1 {
				need = n - 1
			}
			seen := make(map[uint32]bool, need)
			for len(seen) < need {
				v := uint32(rng.Intn(n))
				if int(v) == u || seen[v] {
					continue
				}
				seen[v] = true
				s.Heaps.Update(uint32(u), v, s.Sim(uint32(u), v))
			}
		}
	})
	s.Wall.Add(runstats.PhaseSimilarity, time.Since(simStart))

	// Per-worker scratch, allocated on first use and reused across
	// iterations: the scoring kernel (with its scatter accumulator), the
	// deduplication marks (generation stamps avoid clearing between
	// users), and the candidate/score buffers. parallel's block layout is
	// deterministic for fixed (n, workers), so worker w always owns the
	// same state.
	type starWorker struct {
		kernel    similarity.Batcher
		marks     []int32
		gen       int32
		neighbors []uint32
		hop       []uint32
		cands     []uint32
		scores    []float64
	}
	nw := parallel.Workers(o.Workers)
	if nw > n && n > 0 {
		nw = n
	}
	workers := make([]starWorker, nw)
	for iter := 0; ; iter++ {
		if o.MaxIterations > 0 && iter >= o.MaxIterations {
			break
		}
		changes := parallel.SumInt64(n, o.Workers, func(w, lo, hi int) int64 {
			var c int64
			ws := &workers[w]
			if ws.kernel == nil {
				ws.kernel = s.Batcher()
				ws.marks = make([]int32, n)
			}
			var candTime, simTime time.Duration
			rng := rand.New(rand.NewSource(o.Seed ^ 0x243f_6a88 ^ int64(lo+iter*n)))
			for u := lo; u < hi; u++ {
				t0 := time.Now()
				ws.gen++
				cands := ws.cands[:0]
				ws.marks[u] = ws.gen // never propose u to itself
				ws.neighbors = s.Heaps.IDs(ws.neighbors[:0], uint32(u))
				// Direct neighbors are already in the heap; exclude them so
				// only genuinely new candidates cost a similarity call.
				for _, w := range ws.neighbors {
					ws.marks[w] = ws.gen
				}
				for _, w := range ws.neighbors {
					ws.hop = s.Heaps.IDs(ws.hop[:0], w)
					for _, x := range ws.hop {
						if ws.marks[x] != ws.gen {
							ws.marks[x] = ws.gen
							cands = append(cands, x)
						}
					}
				}
				for r := 0; r < o.R; r++ {
					x := uint32(rng.Intn(n))
					if ws.marks[x] != ws.gen {
						ws.marks[x] = ws.gen
						cands = append(cands, x)
					}
				}
				ws.cands = cands
				t1 := time.Now()
				candTime += t1.Sub(t0)
				// Star join: one batched kernel call scores u against its
				// whole candidate set (u's profile scattered once).
				if len(cands) > 0 {
					if cap(ws.scores) < len(cands) {
						ws.scores = make([]float64, len(cands))
					}
					sc := ws.scores[:len(cands)]
					ws.kernel.ScoreInto(sc, uint32(u), cands)
					for i, v := range cands {
						c += int64(s.Heaps.Update(uint32(u), v, sc[i]))
						c += int64(s.Heaps.Update(v, uint32(u), sc[i]))
					}
				}
				simTime += time.Since(t1)
			}
			s.Work.Add(runstats.PhaseCandidates, candTime)
			s.Work.Add(runstats.PhaseSimilarity, simTime)
			return c
		})

		s.RecordIteration(iter, changes)
		if o.Beta >= 0 && float64(changes)/float64(n) < o.Beta {
			break
		}
	}
	return nil
}
