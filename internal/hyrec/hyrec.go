// Package hyrec implements the HyRec baseline (Boutet et al., Middleware
// 2014) as configured in the paper (§IV-B): a greedy KNN construction
// that, per iteration, considers for each user the neighbors of its
// current neighbors plus r random users, evaluates the similarity of the
// user against those candidates (a star join, in contrast to NN-Descent's
// local join), and keeps the top k.
//
// Per the paper's experimental setup, the implementation also adopts
// NN-Descent's pivot mechanism (each evaluated similarity updates both
// endpoints) and KIFF's early-termination rule (stop when the average
// number of changes per user drops below β). The default r = 0: the paper
// reports that random candidates trade a 3× wall-time increase for a 4%
// recall gain and disables them.
package hyrec

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/knnheap"
	"kiff/internal/parallel"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Config parameterizes a HyRec run.
type Config struct {
	// K is the neighborhood size.
	K int
	// R is the number of random users added to each candidate set per
	// iteration (paper default 0).
	R int
	// Beta is the early-termination threshold on changes per user
	// (0 selects 0.001, mirroring KIFF's default as in §IV-B).
	Beta float64
	// Metric is the similarity measure; nil selects cosine.
	Metric similarity.Metric
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// MaxIterations caps the loop (0 = unlimited).
	MaxIterations int
	// Seed drives the random initial graph and the random candidates.
	Seed int64
	// Hook, when non-nil, observes every iteration (Fig 8 traces).
	Hook runstats.IterHook
}

// DefaultConfig returns the paper's HyRec configuration.
func DefaultConfig(k int) Config {
	return Config{K: k, R: 0, Beta: 0.001, Metric: similarity.Cosine{}}
}

// Result bundles the constructed graph with the run's cost metrics.
type Result struct {
	Graph *knngraph.Graph
	Run   runstats.Run
}

// Build runs HyRec on the dataset.
func Build(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := normalize(&cfg); err != nil {
		return nil, err
	}
	n := d.NumUsers()
	start := time.Now()
	var timer runstats.PhaseTimer

	preStart := time.Now()
	var evals atomic.Int64
	sim := similarity.Counted(cfg.Metric.Prepare(d), &evals)
	heaps := knnheap.NewSet(n, cfg.K)
	timer.Add(runstats.PhasePreprocess, time.Since(preStart))

	run := runstats.Run{Algorithm: "hyrec", NumUsers: n, K: cfg.K}

	// iterTimer accumulates per-worker time inside the refinement loop; it
	// is normalized to wall-clock equivalents at the end, unlike timer,
	// which only receives wall-clock measurements.
	var iterTimer runstats.PhaseTimer

	// Random k-degree initial graph (same procedure as NN-Descent).
	simStart := time.Now()
	parallel.Blocks(n, cfg.Workers, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(u)*0x9e3779b1))
			need := cfg.K
			if need > n-1 {
				need = n - 1
			}
			seen := make(map[uint32]bool, need)
			for len(seen) < need {
				v := uint32(rng.Intn(n))
				if int(v) == u || seen[v] {
					continue
				}
				seen[v] = true
				heaps.Update(uint32(u), v, sim(uint32(u), v))
			}
		}
	})
	timer.Add(runstats.PhaseSimilarity, time.Since(simStart))

	// marks is per-worker scratch for candidate deduplication; generation
	// stamps avoid clearing between users.
	for iter := 0; ; iter++ {
		if cfg.MaxIterations > 0 && iter >= cfg.MaxIterations {
			break
		}
		changes := parallel.SumInt64(n, cfg.Workers, func(_, lo, hi int) int64 {
			var c int64
			marks := make([]int32, n)
			gen := int32(0)
			var neighbors, hop, cands []uint32
			var candTime, simTime time.Duration
			rng := rand.New(rand.NewSource(cfg.Seed ^ 0x243f_6a88 ^ int64(lo+iter*n)))
			for u := lo; u < hi; u++ {
				t0 := time.Now()
				gen++
				cands = cands[:0]
				marks[u] = gen // never propose u to itself
				neighbors = heaps.IDs(neighbors[:0], uint32(u))
				// Direct neighbors are already in the heap; exclude them so
				// only genuinely new candidates cost a similarity call.
				for _, w := range neighbors {
					marks[w] = gen
				}
				for _, w := range neighbors {
					hop = heaps.IDs(hop[:0], w)
					for _, x := range hop {
						if marks[x] != gen {
							marks[x] = gen
							cands = append(cands, x)
						}
					}
				}
				for r := 0; r < cfg.R; r++ {
					x := uint32(rng.Intn(n))
					if marks[x] != gen {
						marks[x] = gen
						cands = append(cands, x)
					}
				}
				t1 := time.Now()
				candTime += t1.Sub(t0)
				for _, v := range cands {
					s := sim(uint32(u), v)
					c += int64(heaps.Update(uint32(u), v, s))
					c += int64(heaps.Update(v, uint32(u), s))
				}
				simTime += time.Since(t1)
			}
			iterTimer.Add(runstats.PhaseCandidates, candTime)
			iterTimer.Add(runstats.PhaseSimilarity, simTime)
			return c
		})

		run.Iterations++
		run.UpdatesPerIter = append(run.UpdatesPerIter, changes)
		run.EvalsAtIter = append(run.EvalsAtIter, evals.Load())
		if cfg.Hook != nil {
			r := cfg.Hook(iter, knngraph.FromSet(heaps), evals.Load())
			run.RecallAtIter = append(run.RecallAtIter, r)
		}
		if float64(changes)/float64(n) < cfg.Beta {
			break
		}
	}

	run.WallTime = time.Since(start)
	run.SimEvals = evals.Load()
	// Loop phases were accumulated per worker; divide by the worker count
	// so PhaseTimes are wall-clock-equivalent and comparable to WallTime.
	w := parallel.Workers(cfg.Workers)
	if w > n && n > 0 {
		w = n
	}
	for p := runstats.PhasePreprocess; p <= runstats.PhaseSimilarity; p++ {
		run.PhaseTimes[p] = timer.Duration(p) + iterTimer.Duration(p)/time.Duration(w)
	}
	return &Result{Graph: knngraph.FromSet(heaps), Run: run}, nil
}

func normalize(cfg *Config) error {
	if cfg.K < 1 {
		return errors.New("hyrec: K must be ≥ 1")
	}
	if cfg.R < 0 {
		return errors.New("hyrec: R must be ≥ 0")
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.001
	}
	if cfg.Beta < 0 {
		return errors.New("hyrec: Beta must be ≥ 0")
	}
	if cfg.Metric == nil {
		cfg.Metric = similarity.Cosine{}
	}
	if cfg.MaxIterations < 0 {
		return errors.New("hyrec: MaxIterations must be ≥ 0")
	}
	return nil
}
