package knngraph

// simEps absorbs floating-point noise when comparing similarities computed
// along different code paths.
const simEps = 1e-12

// Exact is the ground-truth side of the recall computation: for each
// evaluated user, the exact top-k list plus the k-th exact similarity
// (the tie threshold of Eq. 3).
//
// Users is nil when every user was evaluated; otherwise it lists the
// sampled user IDs, in ascending order, and Lists/Thresholds/AboveCounts
// are indexed by sample position. Sampling the mean of per-user recalls is
// an unbiased estimator of the overall recall of Eq. (4).
type Exact struct {
	// K is the neighborhood size the ground truth was computed for.
	K int
	// Users lists the sampled user IDs (nil = every user evaluated).
	Users []uint32
	// Lists holds the exact top-k list per evaluated user.
	Lists [][]Neighbor
	// Thresholds holds the k-th exact similarity per evaluated user (the
	// tie threshold of Eq. 3).
	Thresholds []float64
	// AboveCounts[i] is the number of users with similarity strictly above
	// Thresholds[i] — these appear in *every* exact top-k set, so an
	// approximation can use at most K−AboveCounts[i] tie slots.
	AboveCounts []int
}

// NumEvaluated returns the number of users with ground truth available.
func (e *Exact) NumEvaluated() int { return len(e.Lists) }

// UserAt maps a sample position to the user ID it describes.
func (e *Exact) UserAt(i int) uint32 {
	if e.Users == nil {
		return uint32(i)
	}
	return e.Users[i]
}

// RecallUser computes Eq. (3) for the i-th evaluated user against the
// approximate neighbor list approx.
//
// The exact KNN set is rarely unique: several users may tie at the k-th
// similarity. Eq. (3) takes the best match over all tie-equivalent exact
// sets, which decomposes as: every approximate neighbor strictly above the
// threshold is correct (it belongs to all exact sets), and approximate
// neighbors *at* the threshold are correct up to the number of free tie
// slots, K − AboveCounts[i].
func (e *Exact) RecallUser(i int, approx []Neighbor) float64 {
	if e.K == 0 {
		return 0
	}
	theta := e.Thresholds[i]
	above := 0
	at := 0
	for _, nb := range approx {
		switch {
		case nb.Sim > theta+simEps:
			above++
		case nb.Sim >= theta-simEps:
			at++
		}
	}
	slots := e.K - e.AboveCounts[i]
	if at > slots {
		at = slots
	}
	hits := above + at
	if hits > e.K {
		hits = e.K
	}
	return float64(hits) / float64(e.K)
}

// Recall computes the mean recall of Eq. (4) of the approximate graph over
// the evaluated users.
func (e *Exact) Recall(g *Graph) float64 {
	if e.NumEvaluated() == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < e.NumEvaluated(); i++ {
		sum += e.RecallUser(i, g.Neighbors(e.UserAt(i)))
	}
	return sum / float64(e.NumEvaluated())
}

// BuildExact assembles an Exact from per-user ground-truth lists (already
// sorted by sim desc, ID asc). users follows the same convention as
// Exact.Users. Exposed for the bruteforce package and for tests that
// construct ground truth by hand.
func BuildExact(k int, users []uint32, lists [][]Neighbor) *Exact {
	e := &Exact{
		K:           k,
		Users:       users,
		Lists:       lists,
		Thresholds:  make([]float64, len(lists)),
		AboveCounts: make([]int, len(lists)),
	}
	for i, list := range lists {
		if len(list) < k {
			// Fewer than k candidates exist at all (tiny datasets): any
			// approximate neighbor counts, and there is no tie pressure.
			e.Thresholds[i] = -1
			e.AboveCounts[i] = 0
			continue
		}
		theta := list[k-1].Sim
		e.Thresholds[i] = theta
		above := 0
		for _, nb := range list {
			if nb.Sim > theta+simEps {
				above++
			}
		}
		e.AboveCounts[i] = above
	}
	return e
}
