package knngraph

import (
	"math"
	"testing"
)

func analysisFixture() *Graph {
	// 0 -> {1, 2}; 1 -> {0}; 2 -> {}; 3 -> {0}
	return New(2, [][]Neighbor{
		{{ID: 1, Sim: 0.8}, {ID: 2, Sim: 0.4}},
		{{ID: 0, Sim: 0.8}},
		{},
		{{ID: 0, Sim: 0.2}},
	})
}

func TestDegrees(t *testing.T) {
	st := analysisFixture().Degrees()
	if st.MinOut != 0 || st.MaxOut != 2 {
		t.Errorf("out degrees = [%d, %d], want [0, 2]", st.MinOut, st.MaxOut)
	}
	if st.Isolated != 1 {
		t.Errorf("Isolated = %d, want 1", st.Isolated)
	}
	if math.Abs(st.MeanOut-1.0) > 1e-12 {
		t.Errorf("MeanOut = %v, want 1.0", st.MeanOut)
	}
	// in-degrees: 0←{1,3}=2, 1←{0}=1, 2←{0}=1, 3←{}=0
	if st.MaxIn != 2 {
		t.Errorf("MaxIn = %d, want 2", st.MaxIn)
	}
	if math.Abs(st.MeanIn-1.0) > 1e-12 {
		t.Errorf("MeanIn = %v, want 1.0", st.MeanIn)
	}
}

func TestDegreesEmptyGraph(t *testing.T) {
	g := New(2, nil)
	st := g.Degrees()
	if st.MinOut != 0 || st.MaxOut != 0 || st.MeanOut != 0 {
		t.Errorf("empty graph stats = %+v", st)
	}
}

func TestMeanSimilarity(t *testing.T) {
	g := analysisFixture()
	want := (0.8 + 0.4 + 0.8 + 0.2) / 4
	if got := g.MeanSimilarity(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanSimilarity = %v, want %v", got, want)
	}
	if got := (&Graph{}).MeanSimilarity(); got != 0 {
		t.Errorf("empty MeanSimilarity = %v, want 0", got)
	}
}

func TestAgreementIdentical(t *testing.T) {
	g := analysisFixture()
	if got := Agreement(g, g); math.Abs(got-1) > 1e-12 {
		t.Errorf("self Agreement = %v, want 1", got)
	}
}

func TestAgreementDisjoint(t *testing.T) {
	a := New(1, [][]Neighbor{{{ID: 1, Sim: 1}}})
	b := New(1, [][]Neighbor{{{ID: 2, Sim: 1}}})
	if got := Agreement(a, b); got != 0 {
		t.Errorf("disjoint Agreement = %v, want 0", got)
	}
}

func TestAgreementPartial(t *testing.T) {
	a := New(2, [][]Neighbor{{{ID: 1, Sim: 1}, {ID: 2, Sim: 0.5}}})
	b := New(2, [][]Neighbor{{{ID: 1, Sim: 1}, {ID: 3, Sim: 0.5}}})
	// intersection 1, union 3.
	if got := Agreement(a, b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Agreement = %v, want 1/3", got)
	}
}

func TestAgreementBothEmptyLists(t *testing.T) {
	a := New(1, [][]Neighbor{{}})
	b := New(1, [][]Neighbor{{}})
	if got := Agreement(a, b); got != 1 {
		t.Errorf("empty-lists Agreement = %v, want 1", got)
	}
}

func TestTopHubs(t *testing.T) {
	hubs := analysisFixture().TopHubs(2)
	if len(hubs) != 2 || hubs[0] != 0 {
		t.Errorf("TopHubs = %v, want user 0 first", hubs)
	}
}

func TestInDegreeCCDFInput(t *testing.T) {
	in := analysisFixture().InDegreeCCDFInput()
	want := []int{2, 1, 1, 0}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("in-degrees = %v, want %v", in, want)
		}
	}
}
