package knngraph

// Zero-copy load path: ViewBinary decodes a version-2 graph file straight
// out of a byte buffer, and OpenMapped does so over a file mapping, so a
// serving process starts up without copying the arena through the heap.
// The offsets array and — on 64-bit little-endian hosts, where the
// on-disk edge record matches Neighbor's memory layout — the entries
// array alias the buffer: a mapped load allocates O(1) memory regardless
// of graph size, and the kernel page cache is shared across processes
// serving the same checkpoint.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"kiff/internal/arena"
)

// neighborRecordsViewable reports whether []Neighbor can be aliased onto
// raw on-disk records: the host must be little-endian and Neighbor's
// layout must match the 16-byte record spec (true on every 64-bit
// little-endian port; 32-bit ports may pack the struct differently and
// fall back to copying).
var neighborRecordsViewable = arena.HostLittleEndian &&
	unsafe.Sizeof(Neighbor{}) == neighborRecSize &&
	unsafe.Offsetof(Neighbor{}.ID) == 0 &&
	unsafe.Offsetof(Neighbor{}.Sim) == 8

// ViewBinary decodes a graph from an in-memory buffer, aliasing the
// buffer wherever the platform allows instead of copying (see the package
// comment of arena.View for the exact conditions). The returned Graph is
// valid only as long as buf is; do not mutate buf afterwards. Version-1
// input is varint-packed and falls back to a heap decode, which imposes
// no lifetime constraint.
func ViewBinary(buf []byte) (*Graph, error) {
	v, version, err := arena.NewView(buf, graphMagic)
	if err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	if version == 1 {
		return ReadBinary(bytes.NewReader(buf))
	}
	if version != graphVersion {
		return nil, fmt.Errorf("knngraph: %w: unsupported version %d", arena.ErrCorrupt, version)
	}
	k := v.UvarintMax(maxK, "k")
	n := v.UvarintMax(maxUsers, "user count")
	e := v.UvarintMax(maxEdges, "edge count")
	v.Align(8)
	offsets := v.Int64s(n + 1)
	raw := v.Raw(e * neighborRecSize)
	if err := v.Err(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	if err := v.Close(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	// Record padding is part of the format: reject non-zero filler even
	// though the CRC already covered it.
	for i := uint64(0); i < e; i++ {
		if binary.LittleEndian.Uint32(raw[i*neighborRecSize+4:]) != 0 {
			return nil, fmt.Errorf("knngraph: %w: non-zero record padding", arena.ErrCorrupt)
		}
	}
	if err := validateOffsets(offsets, n, e); err != nil {
		return nil, err
	}
	return finishDecode(int(k), offsets, viewNeighbors(raw, e))
}

// viewNeighbors reinterprets raw edge records as a []Neighbor — in place
// when the layout matches, decoded into a fresh slice otherwise.
func viewNeighbors(raw []byte, e uint64) []Neighbor {
	if e == 0 {
		return nil
	}
	if neighborRecordsViewable && arena.Aligned8(raw) {
		return unsafe.Slice((*Neighbor)(unsafe.Pointer(unsafe.SliceData(raw))), e)
	}
	out := make([]Neighbor, e)
	for i := range out {
		off := i * neighborRecSize
		out[i] = Neighbor{
			ID:  binary.LittleEndian.Uint32(raw[off:]),
			Sim: math.Float64frombits(binary.LittleEndian.Uint64(raw[off+8:])),
		}
	}
	return out
}

// Mapped couples a zero-copy decoded Graph with the file mapping that
// backs its storage. Close invalidates the Graph — every neighbor list is
// a view into the mapping — so a server closes it only after the last
// reader is done (or leaves it open for the process lifetime).
type Mapped struct {
	g *Graph
	m *arena.Mapping
}

// OpenMapped maps the file at path (see arena.OpenMapping for the
// portable fallback) and decodes the graph in place.
func OpenMapped(path string) (*Mapped, error) {
	m, err := arena.OpenMapping(path)
	if err != nil {
		return nil, err
	}
	g, err := ViewBinary(m.Data())
	if err != nil {
		m.Close()
		return nil, err
	}
	return &Mapped{g: g, m: m}, nil
}

// Graph returns the decoded graph, valid until Close.
func (mp *Mapped) Graph() *Graph { return mp.g }

// Mapped reports whether the backing storage is a true memory mapping
// (false = the portable read-to-heap fallback).
func (mp *Mapped) Mapped() bool { return mp.m.Mapped() }

// Close releases the mapping. The Graph (and every neighbor list read
// from it) must not be used afterwards.
func (mp *Mapped) Close() error {
	mp.g = nil
	return mp.m.Close()
}
