package knngraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Read parses the text format emitted by Graph.Write: one
// "user neighbor similarity" triple per line, '#' comments ignored.
// Users are sized to the largest ID seen on either side; neighbor lists
// are re-sorted into the canonical (sim desc, ID asc) order and flattened
// into the CSR arena.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var lists [][]Neighbor
	maxUser := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("knngraph: line %d: want 'user neighbor sim', got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("knngraph: line %d: bad user %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("knngraph: line %d: bad neighbor %q: %v", lineNo, fields[1], err)
		}
		sim, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("knngraph: line %d: bad similarity %q: %v", lineNo, fields[2], err)
		}
		for int(u) >= len(lists) {
			lists = append(lists, nil)
		}
		lists[u] = append(lists[u], Neighbor{ID: uint32(v), Sim: sim})
		if int(u) > maxUser {
			maxUser = int(u)
		}
		if int(v) > maxUser {
			maxUser = int(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("knngraph: read: %w", err)
	}
	for maxUser >= len(lists) {
		lists = append(lists, nil)
	}
	k := 0
	for u := range lists {
		SortNeighbors(lists[u])
		if len(lists[u]) > k {
			k = len(lists[u])
		}
	}
	g := New(k, lists)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
