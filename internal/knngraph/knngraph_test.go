package knngraph

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"kiff/internal/knnheap"
)

func TestFromSetSortedAndComplete(t *testing.T) {
	s := knnheap.NewSet(2, 3)
	s.Update(0, 1, 0.5)
	s.Update(0, 2, 0.9)
	s.Update(0, 3, 0.7)
	s.Update(1, 0, 0.4)
	g := FromSet(s)
	if g.K() != 3 || g.NumUsers() != 2 {
		t.Fatalf("graph shape: k=%d users=%d", g.K(), g.NumUsers())
	}
	l0 := g.Neighbors(0)
	if l0[0].ID != 2 || l0[1].ID != 3 || l0[2].ID != 1 {
		t.Errorf("neighbors(0) = %v, want [2 3 1] by sim desc", l0)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	bad := []*Graph{
		New(1, [][]Neighbor{{{ID: 0, Sim: 1}}}),                      // self loop
		New(2, [][]Neighbor{{{ID: 1, Sim: 1}, {ID: 1, Sim: 1}}}),     // dup
		New(1, [][]Neighbor{{{ID: 1, Sim: 1}, {ID: 2, Sim: 0}}}),     // > k
		New(2, [][]Neighbor{{{ID: 1, Sim: 0.1}, {ID: 2, Sim: 0.9}}}), // unsorted
		New(2, [][]Neighbor{{{ID: 2, Sim: 0.5}, {ID: 1, Sim: 0.5}}}), // tie order
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid graph", i)
		}
	}
}

func TestWrite(t *testing.T) {
	g := New(1, [][]Neighbor{{{ID: 1, Sim: 0.25}}, {{ID: 0, Sim: 0.25}}})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "0 1 0.25") || !strings.Contains(out, "1 0 0.25") {
		t.Errorf("Write output missing edges:\n%s", out)
	}
}

func nb(id uint32, sim float64) Neighbor { return Neighbor{ID: id, Sim: sim} }

func TestBuildExactThresholds(t *testing.T) {
	e := BuildExact(2, nil, [][]Neighbor{
		{nb(1, 0.9), nb(2, 0.5), nb(3, 0.5)},
		{nb(2, 0.4)}, // fewer than k candidates
	})
	if e.Thresholds[0] != 0.5 || e.AboveCounts[0] != 1 {
		t.Errorf("user 0: theta=%v above=%d, want 0.5/1", e.Thresholds[0], e.AboveCounts[0])
	}
	if e.Thresholds[1] != -1 || e.AboveCounts[1] != 0 {
		t.Errorf("user 1: theta=%v above=%d, want -1/0", e.Thresholds[1], e.AboveCounts[1])
	}
}

func TestRecallUserTieAware(t *testing.T) {
	// Exact candidates: A=0.9, B=0.5, C=0.5 with k=2 → theta=0.5, above=1.
	e := BuildExact(2, nil, [][]Neighbor{{nb(10, 0.9), nb(11, 0.5), nb(12, 0.5)}})

	cases := []struct {
		name   string
		approx []Neighbor
		want   float64
	}{
		{"perfect", []Neighbor{nb(10, 0.9), nb(11, 0.5)}, 1},
		{"tie-swapped", []Neighbor{nb(10, 0.9), nb(12, 0.5)}, 1},
		{"missing-top", []Neighbor{nb(11, 0.5), nb(12, 0.5)}, 0.5}, // only 1 tie slot
		{"one-hit", []Neighbor{nb(10, 0.9), nb(99, 0.1)}, 0.5},
		{"all-miss", []Neighbor{nb(98, 0.1), nb(99, 0.0)}, 0},
		{"empty", nil, 0},
	}
	for _, c := range cases {
		if got := e.RecallUser(0, c.approx); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: recall = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRecallUserNoTies(t *testing.T) {
	e := BuildExact(2, nil, [][]Neighbor{{nb(1, 0.9), nb(2, 0.8), nb(3, 0.1)}})
	if got := e.RecallUser(0, []Neighbor{nb(1, 0.9), nb(2, 0.8)}); got != 1 {
		t.Errorf("recall = %v, want 1", got)
	}
	if got := e.RecallUser(0, []Neighbor{nb(1, 0.9), nb(3, 0.1)}); got != 0.5 {
		t.Errorf("recall = %v, want 0.5", got)
	}
}

func TestRecallUserSmallCandidatePool(t *testing.T) {
	// threshold −1: every approximate neighbor counts, denominator stays k.
	e := BuildExact(3, nil, [][]Neighbor{{nb(1, 0.0)}})
	got := e.RecallUser(0, []Neighbor{nb(1, 0.0)})
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("recall = %v, want 1/3", got)
	}
}

func TestRecallGraphAveragesUsers(t *testing.T) {
	e := BuildExact(1, nil, [][]Neighbor{
		{nb(1, 0.9)},
		{nb(0, 0.9)},
	})
	g := New(1, [][]Neighbor{
		{nb(1, 0.9)}, // hit
		{nb(9, 0.1)}, // miss
	})
	if got := e.Recall(g); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Recall = %v, want 0.5", got)
	}
}

func TestRecallSampledUsers(t *testing.T) {
	// Ground truth only for users 1 and 3.
	e := BuildExact(1, []uint32{1, 3}, [][]Neighbor{
		{nb(0, 0.9)},
		{nb(2, 0.8)},
	})
	g := New(1, [][]Neighbor{
		{nb(9, 0.0)}, // ignored: not sampled
		{nb(0, 0.9)}, // hit
		{nb(9, 0.0)}, // ignored
		{nb(5, 0.2)}, // miss
	})
	if got := e.Recall(g); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sampled Recall = %v, want 0.5", got)
	}
	if e.UserAt(0) != 1 || e.UserAt(1) != 3 {
		t.Error("UserAt must map sample positions to user IDs")
	}
}

func TestRecallEmptyExact(t *testing.T) {
	e := BuildExact(1, nil, nil)
	g := New(1, nil)
	if got := e.Recall(g); got != 0 {
		t.Errorf("Recall on empty ground truth = %v, want 0", got)
	}
}

func TestFromSetConcurrentSafe(t *testing.T) {
	// FromSet must be callable while updates continue (trace snapshots).
	s := knnheap.NewSet(100, 5)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			s.Update(uint32(i%100), uint32(i%97+100), float64(i%13))
		}
	}()
	for i := 0; i < 20; i++ {
		g := FromSet(s)
		if err := g.Validate(); err != nil {
			t.Fatalf("snapshot %d invalid: %v", i, err)
		}
	}
	<-done
}

func TestReadRoundTrip(t *testing.T) {
	s := knnheap.NewSet(3, 2)
	s.Update(0, 1, 0.5)
	s.Update(0, 2, 0.75)
	s.Update(1, 0, 0.5)
	s.Update(2, 0, 0.75)
	orig := FromSet(s)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.NumUsers() != orig.NumUsers() {
		t.Fatalf("user count changed: %d vs %d", back.NumUsers(), orig.NumUsers())
	}
	for u := 0; u < orig.NumUsers(); u++ {
		a, b := orig.Neighbors(uint32(u)), back.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: list sizes differ", u)
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Abs(a[i].Sim-b[i].Sim) > 1e-9 {
				t.Fatalf("user %d: %v vs %v", u, a, b)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"0 1\n",              // missing similarity
		"x 1 0.5\n",          // bad user
		"0 y 0.5\n",          // bad neighbor
		"0 1 zero\n",         // bad similarity
		"0 0 0.5\n",          // self loop (caught by Validate)
		"0 1 0.5\n0 1 0.5\n", // duplicate edge
	}
	for i, in := range bad {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: Read accepted %q", i, in)
		}
	}
}

func TestReadSkipsCommentsAndSizesUsers(t *testing.T) {
	in := "# header\n\n0 5 0.25\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// User space must cover the referenced neighbor 5.
	if g.NumUsers() != 6 {
		t.Errorf("NumUsers = %d, want 6", g.NumUsers())
	}
	if g.K() != 1 {
		t.Errorf("K inferred = %d, want 1", g.K())
	}
}
