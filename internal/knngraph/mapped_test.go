package knngraph

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"kiff/internal/arena"
)

// graphsBitIdentical fails the test unless a and b have identical shape
// and bit-identical entries.
func graphsBitIdentical(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.K() != b.K() || a.NumUsers() != b.NumUsers() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: k=%d/%d users=%d/%d edges=%d/%d",
			a.K(), b.K(), a.NumUsers(), b.NumUsers(), a.NumEdges(), b.NumEdges())
	}
	for u := 0; u < a.NumUsers(); u++ {
		la, lb := a.Neighbors(uint32(u)), b.Neighbors(uint32(u))
		if len(la) != len(lb) {
			t.Fatalf("user %d: list sizes differ", u)
		}
		for i := range la {
			if la[i].ID != lb[i].ID || math.Float64bits(la[i].Sim) != math.Float64bits(lb[i].Sim) {
				t.Fatalf("user %d entry %d: %v vs %v", u, i, la[i], lb[i])
			}
		}
	}
}

// TestViewBinaryMatchesReadBinary: the zero-copy decode and the streaming
// decode of the same bytes must agree bit for bit.
func TestViewBinaryMatchesReadBinary(t *testing.T) {
	orig := codecFixture()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	viewed, err := ViewBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	read, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	graphsBitIdentical(t, orig, viewed)
	graphsBitIdentical(t, read, viewed)
}

// TestViewBinaryReadsLegacyV1: version-1 files stay loadable through both
// entry points (ViewBinary falls back to a heap decode for them).
func TestViewBinaryReadsLegacyV1(t *testing.T) {
	orig := codecFixture()
	raw := encodeV1(t, orig)
	read, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadBinary(v1): %v", err)
	}
	viewed, err := ViewBinary(raw)
	if err != nil {
		t.Fatalf("ViewBinary(v1): %v", err)
	}
	graphsBitIdentical(t, orig, read)
	graphsBitIdentical(t, orig, viewed)
}

// encodeV1 re-implements the legacy varint-packed layout so the decoder's
// backward compatibility stays pinned even though WriteTo moved on.
func encodeV1(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := arena.NewWriter(&buf, graphMagic, 1)
	w.Uvarint(uint64(g.K()))
	n := g.NumUsers()
	w.Uvarint(uint64(n))
	for u := 0; u < n; u++ {
		w.Uvarint(uint64(len(g.Neighbors(uint32(u)))))
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(uint32(u)) {
			w.Uvarint(uint64(e.ID))
			w.Float64(e.Sim)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOpenMapped(t *testing.T) {
	orig := codecFixture()
	path := filepath.Join(t.TempDir(), "graph.kfg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mp, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	graphsBitIdentical(t, orig, mp.Graph())
	if err := mp.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt file: OpenMapped must fail cleanly and release the mapping.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.kfg")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad); !errors.Is(err, arena.ErrCorrupt) {
		t.Fatalf("corrupt mapped open: err = %v", err)
	}
}

// TestViewBinaryZeroCopy pins the headline property: on a platform where
// records are viewable, the viewed graph's arenas alias the input buffer.
func TestViewBinaryZeroCopy(t *testing.T) {
	if !neighborRecordsViewable {
		t.Skip("neighbor records not viewable on this platform")
	}
	orig := codecFixture()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !arena.Aligned8(raw) {
		t.Skip("test buffer not 8-byte aligned")
	}
	g, err := ViewBinary(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating a similarity byte in the buffer must show through the
	// decoded graph — proof the entries were not copied.
	target := g.Neighbors(0)[0]
	// Find the record for (user 0, first neighbor): records start after
	// the offsets section; locate by scanning for the bit pattern.
	want := math.Float64bits(target.Sim)
	found := false
	for off := 0; off+8 <= len(raw); off++ {
		if binaryLEUint64(raw[off:]) == want {
			raw[off] ^= 0x01
			if math.Float64bits(g.Neighbors(0)[0].Sim) != want^0x01 {
				raw[off] ^= 0x01 // restore; it was some other field
				continue
			}
			raw[off] ^= 0x01
			found = true
			break
		}
	}
	if !found {
		t.Fatal("entries arena does not alias the input buffer (copied?)")
	}
}

func binaryLEUint64(p []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(p[i]) << (8 * i)
	}
	return x
}

// TestDecodersRejectTrailingData: a file is exactly one section, and the
// two decoders must agree on that — the streaming reader anchors the
// trailer by EOF, the view by the end of the buffer.
func TestDecodersRejectTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if _, err := codecFixture().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append(buf.Bytes(), 0xAB)
	if _, err := ReadBinary(bytes.NewReader(raw)); !errors.Is(err, arena.ErrCorrupt) {
		t.Fatalf("ReadBinary accepted trailing data: err = %v", err)
	}
	if _, err := ViewBinary(raw); !errors.Is(err, arena.ErrCorrupt) {
		t.Fatalf("ViewBinary accepted trailing data: err = %v", err)
	}
}

// TestViewBinaryRejectsCorruption mirrors the streaming decoder's
// corruption tests on the zero-copy path.
func TestViewBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := codecFixture().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ViewBinary(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if _, err := ViewBinary(bad); !errors.Is(err, arena.ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v", i, err)
		}
	}
}
