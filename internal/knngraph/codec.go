package knngraph

// Binary graph codec. A built KNN graph is saved once by the construction
// process and loaded by any number of serving processes, skipping
// construction entirely (cmd/kiffknn -save / -load). The format is the
// CSR arena almost verbatim:
//
//	magic "KFG1", version 1 (arena codec framing, CRC32 trailer)
//	uvarint k
//	uvarint numUsers
//	numUsers × uvarint row length
//	numEdges × (uvarint neighbor ID, float64 similarity bits)
//
// Similarities are stored as raw IEEE-754 bits, so a decoded graph is
// bit-identical to the encoded one — recall computed against a loaded
// graph is exactly the recall of the in-memory graph.

import (
	"fmt"
	"io"

	"kiff/internal/arena"
)

const (
	graphMagic   = "KFG1"
	graphVersion = 1
	// maxK is the format's neighborhood-size limit. k flows into O(n·k)
	// allocations in every consumer (heaps, recall ground truth), so the
	// decoder must not accept arbitrary claimed values; the paper's
	// configurations use k ≤ 50, and 2¹⁶ leaves two orders of magnitude
	// of headroom. The encoder enforces the same bound so every written
	// file stays loadable.
	maxK = 1 << 16
)

// WriteTo serializes the graph in the binary format. It implements
// io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	if g.k > maxK {
		return 0, fmt.Errorf("knngraph: k = %d exceeds the format limit %d", g.k, maxK)
	}
	aw := arena.NewWriter(w, graphMagic, graphVersion)
	aw.Uvarint(uint64(g.k))
	n := g.NumUsers()
	aw.Uvarint(uint64(n))
	for u := 0; u < n; u++ {
		aw.Uvarint(uint64(g.offsets[u+1] - g.offsets[u]))
	}
	for _, e := range g.entries {
		aw.Uvarint(uint64(e.ID))
		aw.Float64(e.Sim)
	}
	err := aw.Close()
	return aw.Count(), err
}

// ReadBinary decodes a graph written by WriteTo, verifying the checksum
// and the graph invariants. Corrupt input yields an error wrapping
// arena.ErrCorrupt; decoding never panics and allocates no more than a
// constant factor of the input size.
func ReadBinary(r io.Reader) (*Graph, error) {
	ar, version, err := arena.NewReader(r, graphMagic)
	if err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	if version != graphVersion {
		return nil, fmt.Errorf("knngraph: %w: unsupported version %d", arena.ErrCorrupt, version)
	}
	// The k cap also keeps the running offset total far from int64
	// overflow (row lengths are ≤ k and cost ≥ 1 input byte each).
	k := ar.UvarintMax(maxK, "k")
	n := ar.Uvarint()
	offsets := make([]int64, 1, arena.PreallocCap(n)+1)
	total := int64(0)
	for u := uint64(0); u < n && ar.Err() == nil; u++ {
		l := ar.UvarintMax(k, "neighbor list length")
		total += int64(l)
		offsets = append(offsets, total)
	}
	if total < 0 {
		return nil, fmt.Errorf("knngraph: %w: offset overflow", arena.ErrCorrupt)
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	entries := make([]Neighbor, 0, arena.PreallocCap(uint64(total)))
	for i := int64(0); i < total && ar.Err() == nil; i++ {
		id := ar.UvarintMax(1<<32-1, "neighbor ID")
		sim := ar.Float64()
		entries = append(entries, Neighbor{ID: uint32(id), Sim: sim})
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	if err := ar.Close(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	g := fromParts(int(k), offsets, entries)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("knngraph: %w: %v", arena.ErrCorrupt, err)
	}
	return g, nil
}
