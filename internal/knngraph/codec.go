package knngraph

// Binary graph codec. A built KNN graph is saved once by the construction
// process and loaded by any number of serving processes, skipping
// construction entirely (cmd/kiffknn -save / -load, cmd/kiffserve).
// docs/FORMATS.md is the normative specification; the shape is the CSR
// arena almost verbatim.
//
// Version 2 (written by WriteTo) lays the arena out as 8-byte-aligned
// fixed-width sections so a serving process can map the file and view the
// offsets and edge records in place (see mapped.go):
//
//	magic "KFG1", version 2 (arena codec framing, CRC32 trailer)
//	uvarint k
//	uvarint numUsers
//	uvarint numEdges
//	zero padding to an 8-byte payload offset
//	(numUsers+1) × int64 row offsets, little-endian
//	numEdges × 16-byte edge record:
//	    uint32 neighbor ID (LE) · 4 zero bytes · float64 similarity bits (LE)
//
// Version 1 (varint-packed, written by releases before the mmap path)
// stays readable through ReadBinary; it cannot be viewed in place.
//
// Similarities are stored as raw IEEE-754 bits, so a decoded graph is
// bit-identical to the encoded one — recall computed against a loaded
// graph is exactly the recall of the in-memory graph.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"kiff/internal/arena"
)

const (
	graphMagic   = "KFG1"
	graphVersion = 2
	// maxK is the format's neighborhood-size limit. k flows into O(n·k)
	// allocations in every consumer (heaps, recall ground truth), so the
	// decoder must not accept arbitrary claimed values; the paper's
	// configurations use k ≤ 50, and 2¹⁶ leaves two orders of magnitude
	// of headroom. The encoder enforces the same bound so every written
	// file stays loadable.
	maxK = 1 << 16
	// maxUsers / maxEdges bound the claimed counts so offset arithmetic
	// (numUsers+1 offsets, numEdges×16 record bytes) can never overflow;
	// both are far beyond any file that fits on disk.
	maxUsers = 1 << 40
	maxEdges = 1 << 44
	// neighborRecSize is the on-disk size of one edge record: uint32 ID,
	// 4 bytes zero padding, float64 bits. The padding makes the record
	// match the in-memory layout of Neighbor on 64-bit little-endian
	// hosts, which is what lets mapped loads view records in place.
	neighborRecSize = 16
)

// WriteTo serializes the graph in the current (version 2, mappable)
// binary format. It implements io.WriterTo.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	if g.k > maxK {
		return 0, fmt.Errorf("knngraph: k = %d exceeds the format limit %d", g.k, maxK)
	}
	aw := arena.NewWriter(w, graphMagic, graphVersion)
	aw.Uvarint(uint64(g.k))
	aw.Uvarint(uint64(g.NumUsers()))
	aw.Uvarint(uint64(g.numEdges))
	aw.Align(8)
	// The on-disk offsets section is one flat (numUsers+1)-long array of
	// arena-global row boundaries. Pages store boundaries rebased to
	// their own entry slices, so globalize them back while streaming:
	// arena.Int64s writes raw little-endian words with no framing, which
	// makes the chunked writes concatenate byte-identically to a flat
	// write — a patched graph serializes exactly like its flat-CSR
	// equivalent (the round-trip fuzzer pins this).
	aw.Int64s([]int64{0})
	var offs [PageUsers]int64
	var base int64
	for p := range g.pages {
		pg := &g.pages[p]
		pbase := pg.offsets[0]
		for i := 1; i < len(pg.offsets); i++ {
			offs[i-1] = base + (pg.offsets[i] - pbase)
		}
		base += int64(len(pg.entries))
		aw.Int64s(offs[:len(pg.offsets)-1])
	}
	var rec [256 * neighborRecSize]byte
	for p := range g.pages {
		entries := g.pages[p].entries
		for lo := 0; lo < len(entries); lo += 256 {
			hi := min(lo+256, len(entries))
			for j, e := range entries[lo:hi] {
				off := j * neighborRecSize
				binary.LittleEndian.PutUint32(rec[off:], e.ID)
				binary.LittleEndian.PutUint32(rec[off+4:], 0)
				binary.LittleEndian.PutUint64(rec[off+8:], math.Float64bits(e.Sim))
			}
			aw.Raw(rec[:(hi-lo)*neighborRecSize])
		}
	}
	err := aw.Close()
	return aw.Count(), err
}

// ReadBinary decodes a graph written by WriteTo (either format version),
// verifying the checksum and the graph invariants, with every byte copied
// through the heap — the portable path. For the zero-copy alternative see
// ViewBinary/OpenMapped. Corrupt input yields an error wrapping
// arena.ErrCorrupt; decoding never panics and allocates no more than a
// constant factor of the input size.
func ReadBinary(r io.Reader) (*Graph, error) {
	ar, version, err := arena.NewReader(r, graphMagic)
	if err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	switch version {
	case 1:
		return readV1(ar)
	case graphVersion:
		return readV2(ar)
	default:
		return nil, fmt.Errorf("knngraph: %w: unsupported version %d", arena.ErrCorrupt, version)
	}
}

// readV1 decodes the legacy varint-packed layout.
func readV1(ar *arena.Reader) (*Graph, error) {
	// The k cap also keeps the running offset total far from int64
	// overflow (row lengths are ≤ k and cost ≥ 1 input byte each).
	k := ar.UvarintMax(maxK, "k")
	n := ar.Uvarint()
	offsets := make([]int64, 1, arena.PreallocCap(n)+1)
	total := int64(0)
	for u := uint64(0); u < n && ar.Err() == nil; u++ {
		l := ar.UvarintMax(k, "neighbor list length")
		total += int64(l)
		offsets = append(offsets, total)
	}
	if total < 0 {
		return nil, fmt.Errorf("knngraph: %w: offset overflow", arena.ErrCorrupt)
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	entries := make([]Neighbor, 0, arena.PreallocCap(uint64(total)))
	for i := int64(0); i < total && ar.Err() == nil; i++ {
		id := ar.UvarintMax(1<<32-1, "neighbor ID")
		sim := ar.Float64()
		entries = append(entries, Neighbor{ID: uint32(id), Sim: sim})
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	if err := ar.Close(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	return finishDecode(int(k), offsets, entries)
}

// readV2 decodes the aligned-section layout through the heap. Unlike the
// dataset codec, the streaming and zero-copy paths are not unified over
// arena.Decoder: the edge-record section must be chunk-decoded here (an
// adversarial numEdges may not buy a single up-front allocation) but is
// cast in place by ViewBinary — the fuzzer pins their agreement instead.
func readV2(ar *arena.Reader) (*Graph, error) {
	k := ar.UvarintMax(maxK, "k")
	n := ar.UvarintMax(maxUsers, "user count")
	e := ar.UvarintMax(maxEdges, "edge count")
	ar.Align(8)
	offsets := ar.Int64s(n + 1)
	var entries []Neighbor
	if ar.Err() == nil {
		entries = make([]Neighbor, 0, arena.PreallocCap(e))
		var rec [256 * neighborRecSize]byte
		for got := uint64(0); got < e && ar.Err() == nil; {
			c := min(e-got, 256)
			ar.Raw(rec[:c*neighborRecSize])
			if ar.Err() != nil {
				break
			}
			for j := uint64(0); j < c; j++ {
				off := j * neighborRecSize
				if binary.LittleEndian.Uint32(rec[off+4:]) != 0 {
					return nil, fmt.Errorf("knngraph: %w: non-zero record padding", arena.ErrCorrupt)
				}
				entries = append(entries, Neighbor{
					ID:  binary.LittleEndian.Uint32(rec[off:]),
					Sim: math.Float64frombits(binary.LittleEndian.Uint64(rec[off+8:])),
				})
			}
			got += c
		}
	}
	if err := ar.Err(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	if err := ar.Close(); err != nil {
		return nil, fmt.Errorf("knngraph: %w", err)
	}
	if err := validateOffsets(offsets, n, e); err != nil {
		return nil, err
	}
	return finishDecode(int(k), offsets, entries)
}

// validateOffsets checks the CSR invariants of a decoded offsets array
// against the claimed user and edge counts.
func validateOffsets(offsets []int64, n, e uint64) error {
	if uint64(len(offsets)) != n+1 || len(offsets) == 0 {
		return fmt.Errorf("knngraph: %w: %d offsets for %d users", arena.ErrCorrupt, len(offsets), n)
	}
	if offsets[0] != 0 {
		return fmt.Errorf("knngraph: %w: offsets start at %d", arena.ErrCorrupt, offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("knngraph: %w: offsets decrease at %d", arena.ErrCorrupt, i)
		}
	}
	if last := offsets[len(offsets)-1]; uint64(last) != e {
		return fmt.Errorf("knngraph: %w: offsets end at %d, %d edges claimed", arena.ErrCorrupt, last, e)
	}
	return nil
}

// finishDecode assembles the graph and runs the structural validation
// shared by every decode path.
func finishDecode(k int, offsets []int64, entries []Neighbor) (*Graph, error) {
	g := fromParts(k, offsets, entries)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("knngraph: %w: %v", arena.ErrCorrupt, err)
	}
	return g, nil
}
