package knngraph

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"kiff/internal/arena"
	"kiff/internal/knnheap"
)

func codecFixture() *Graph {
	s := knnheap.NewSet(5, 3)
	s.Update(0, 1, 0.5)
	s.Update(0, 2, 0.9)
	s.Update(0, 3, 1.0/3.0) // not decimal-representable: exercises bit-exactness
	s.Update(1, 0, 0.5)
	s.Update(2, 0, 0.9)
	s.Update(3, 4, 0.125)
	s.Update(4, 3, 0.125)
	return FromSet(s)
}

func TestGraphBinaryRoundTrip(t *testing.T) {
	orig := codecFixture()
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if back.K() != orig.K() || back.NumUsers() != orig.NumUsers() {
		t.Fatalf("shape changed: k=%d/%d users=%d/%d", back.K(), orig.K(), back.NumUsers(), orig.NumUsers())
	}
	for u := 0; u < orig.NumUsers(); u++ {
		a, b := orig.Neighbors(uint32(u)), back.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: list sizes differ", u)
		}
		for i := range a {
			// Bit-identical, not approximately equal.
			if a[i].ID != b[i].ID || math.Float64bits(a[i].Sim) != math.Float64bits(b[i].Sim) {
				t.Fatalf("user %d entry %d: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
}

func TestGraphBinaryRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New(4, nil).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUsers() != 0 || back.K() != 4 {
		t.Fatalf("empty graph decoded as k=%d users=%d", back.K(), back.NumUsers())
	}
}

func TestGraphBinaryRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := codecFixture().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("every truncation errors", func(t *testing.T) {
		for cut := 0; cut < len(raw); cut++ {
			if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("every bit flip in the header errors or round-trips valid", func(t *testing.T) {
		for i := 0; i < len(raw); i++ {
			bad := append([]byte(nil), raw...)
			bad[i] ^= 0x01
			g, err := ReadBinary(bytes.NewReader(bad))
			if err == nil {
				// CRC32 catches all single-bit flips; reaching here is a bug.
				t.Fatalf("bit flip at %d accepted (graph %v)", i, g)
			}
			if !errors.Is(err, arena.ErrCorrupt) {
				t.Fatalf("bit flip at %d: err %v does not wrap ErrCorrupt", i, err)
			}
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte("XXXX"), raw[4:]...)
		if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, arena.ErrCorrupt) {
			t.Fatalf("err = %v", err)
		}
	})
}

// TestGraphBinaryRejectsAdversarialLengths pins the decoder against
// crafted inputs with a *valid* checksum whose length fields try to
// overflow the offset arithmetic or claim absurd shapes — these must
// error, never panic (the CRC only protects against accidental
// corruption, not adversarial construction).
func TestGraphBinaryRejectsAdversarialLengths(t *testing.T) {
	craft := func(k, n uint64, rowLens []uint64) []byte {
		var buf bytes.Buffer
		w := arena.NewWriter(&buf, "KFG1", 1)
		w.Uvarint(k)
		w.Uvarint(n)
		for _, l := range rowLens {
			w.Uvarint(l)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"k overflows int64", craft(1<<63, 4, []uint64{1 << 62, 1 << 62, 1 << 62, 1 << 62})},
		{"row lengths overflow total", craft(1<<32-1, 8, []uint64{1<<32 - 1, 1<<32 - 1, 1<<32 - 1, 1<<32 - 1, 1<<32 - 1, 1<<32 - 1, 1<<32 - 1, 1<<32 - 1})},
		{"entries missing for claimed total", craft(5, 2, []uint64{5, 5})},
		{"huge user count, no rows", craft(3, 1<<50, nil)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := ReadBinary(bytes.NewReader(c.data))
			if err == nil {
				t.Fatalf("crafted input accepted: %v", g)
			}
			if !errors.Is(err, arena.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// FuzzGraphDecode asserts the binary decoder never panics, and that every
// accepted graph is valid and re-encodes byte-identically.
func FuzzGraphDecode(f *testing.F) {
	var buf bytes.Buffer
	if _, err := codecFixture().WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var empty bytes.Buffer
	if _, err := New(1, nil).WriteTo(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte("KFG1"))
	f.Add([]byte("KFG1\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		gv, errv := ViewBinary(bytes.Clone(data))
		// The streaming and zero-copy decoders must accept exactly the
		// same inputs...
		if (err == nil) != (errv == nil) {
			t.Fatalf("decoder disagreement: ReadBinary err=%v, ViewBinary err=%v", err, errv)
		}
		if err != nil {
			return
		}
		// ...and agree on what they decoded.
		if gv.NumUsers() != g.NumUsers() || gv.NumEdges() != g.NumEdges() || gv.K() != g.K() {
			t.Fatalf("decoder shape disagreement")
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("decoder accepted invalid graph: %v", vErr)
		}
		var out bytes.Buffer
		if _, wErr := g.WriteTo(&out); wErr != nil {
			t.Fatalf("re-encode failed: %v", wErr)
		}
		back, rErr := ReadBinary(bytes.NewReader(out.Bytes()))
		if rErr != nil {
			t.Fatalf("re-decode failed: %v", rErr)
		}
		if back.NumUsers() != g.NumUsers() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
	})
}
