package knngraph

import "sort"

// DegreeStats summarizes the in-degree structure of a KNN graph. Out-
// degrees are bounded by k by construction; in-degrees are not — hub
// users attract many incoming edges, which drives the load imbalance of
// neighbor-of-neighbor approaches.
type DegreeStats struct {
	// MinOut, MaxOut and MeanOut describe the out-degree distribution
	// (≤ k by construction).
	MinOut, MaxOut int
	MeanOut        float64
	// MaxIn and MeanIn describe the unbounded in-degree distribution.
	MaxIn  int
	MeanIn float64
	// Isolated counts users with no outgoing edges (possible under KIFF
	// when a user shares items with nobody).
	Isolated int
}

// Degrees computes degree statistics.
func (g *Graph) Degrees() DegreeStats {
	st := DegreeStats{MinOut: -1}
	in := make([]int, g.NumUsers())
	totalOut := 0
	for u := 0; u < g.NumUsers(); u++ {
		d := len(g.Neighbors(uint32(u)))
		totalOut += d
		if d == 0 {
			st.Isolated++
		}
		if st.MinOut < 0 || d < st.MinOut {
			st.MinOut = d
		}
		if d > st.MaxOut {
			st.MaxOut = d
		}
		for _, nb := range g.Neighbors(uint32(u)) {
			if int(nb.ID) < len(in) {
				in[nb.ID]++
			}
		}
	}
	if st.MinOut < 0 {
		st.MinOut = 0
	}
	if n := g.NumUsers(); n > 0 {
		st.MeanOut = float64(totalOut) / float64(n)
		totalIn := 0
		for _, d := range in {
			totalIn += d
			if d > st.MaxIn {
				st.MaxIn = d
			}
		}
		st.MeanIn = float64(totalIn) / float64(n)
	}
	return st
}

// MeanSimilarity returns the average similarity over all edges, a cheap
// proxy for graph quality when ground truth is unavailable.
func (g *Graph) MeanSimilarity() float64 {
	var sum float64
	for p := range g.pages {
		for _, nb := range g.pages[p].entries {
			sum += nb.Sim
		}
	}
	if g.numEdges == 0 {
		return 0
	}
	return sum / float64(g.numEdges)
}

// Agreement returns the mean per-user Jaccard overlap between the
// neighbor sets of two graphs over the same user population. It is the
// standard way to compare two approximate KNN graphs without exact
// ground truth: 1 means identical neighborhoods.
func Agreement(a, b *Graph) float64 {
	n := a.NumUsers()
	if b.NumUsers() < n {
		n = b.NumUsers()
	}
	if n == 0 {
		return 0
	}
	var total float64
	for u := 0; u < n; u++ {
		total += jaccardIDs(a.Neighbors(uint32(u)), b.Neighbors(uint32(u)))
	}
	return total / float64(n)
}

func jaccardIDs(a, b []Neighbor) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1 // both empty: perfectly agreeing
	}
	ids := make(map[uint32]bool, len(a))
	for _, nb := range a {
		ids[nb.ID] = true
	}
	inter := 0
	for _, nb := range b {
		if ids[nb.ID] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// InDegreeCCDFInput returns the per-user in-degrees (for CCDF plotting).
func (g *Graph) InDegreeCCDFInput() []int {
	in := make([]int, g.NumUsers())
	for p := range g.pages {
		for _, nb := range g.pages[p].entries {
			if int(nb.ID) < len(in) {
				in[nb.ID]++
			}
		}
	}
	return in
}

// TopHubs returns the n users with the highest in-degree, useful when
// debugging why a greedy baseline converges slowly (hub users dominate
// neighbor-of-neighbor candidate sets).
func (g *Graph) TopHubs(n int) []uint32 {
	in := g.InDegreeCCDFInput()
	ids := make([]uint32, len(in))
	for i := range ids {
		ids[i] = uint32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if in[ids[a]] != in[ids[b]] {
			return in[ids[a]] > in[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	return ids
}
