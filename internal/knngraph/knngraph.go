// Package knngraph defines the directed KNN graph produced by the
// construction algorithms and the recall metric used to score it against
// the exact graph (paper §III-B).
//
// The graph is a chunked persistent CSR: users are partitioned into
// fixed-size pages (PageUsers rows each), every page holding its own
// row-boundary array plus its slice of the entries arena, and the Graph
// is just the immutable page table. A graph built in one shot (New,
// FromSet, the codecs) lays all pages over two contiguous flat arrays —
// internal/arena's layout, which is also the on-disk layout — so the
// paging costs nothing but the table itself. A graph derived from a
// previous one (PatchFrom) shares every page without a dirty user and
// materializes only the dirty ones, which is what makes snapshot
// publication O(dirty pages) instead of O(|U|).
//
// A graph is immutable once built; pages may therefore be shared freely
// between successive graphs, and serving code reads Neighbors views that
// alias page storage. That immutability is what lets a kiff.Snapshot
// publish a graph to concurrent readers without locks.
package knngraph

import (
	"bufio"
	"fmt"
	"io"
	"slices"

	"kiff/internal/knnheap"
)

// Neighbor is one edge of the KNN graph, annotated with the similarity
// that justified it.
//
// The field order and types are load-bearing: on 64-bit little-endian
// hosts the struct layout (ID at offset 0, 4 bytes padding, Sim at
// offset 8) matches the on-disk edge record of the version-2 binary
// format, which is what lets mapped graphs view records in place (see
// mapped.go). Changing the struct requires a format version bump.
type Neighbor struct {
	// ID is the neighbor's user ID.
	ID uint32
	// Sim is the similarity between the list owner and ID.
	Sim float64
}

const (
	// pageShift sets the page granularity: 1<<pageShift users per page.
	// The trade: larger pages amortize the page table but make one dirty
	// user copy more of its neighbors' rows at publication. 64 keeps
	// copy-on-write sharing meaningful even for populations in the low
	// thousands (a page is ~64·k edge records, ~10KB at k = 10); at
	// millions of users the table is tens of thousands of slim structs,
	// still trivially walkable.
	pageShift = 6
	// PageUsers is the number of users per graph page.
	PageUsers = 1 << pageShift
	pageMask  = PageUsers - 1
)

// page is one immutable chunk of up to PageUsers consecutive users' rows.
// offsets holds the rows' boundaries into entries — len(rows)+1 values
// whose base offsets[0] is subtracted at lookup, so a page sliced out of
// a flat arena (offsets carry arena-global values) and a page built on
// its own arrays (offsets start at 0) read identically.
type page struct {
	offsets []int64
	entries []Neighbor
}

// rows returns the number of users the page covers.
func (p *page) rows() int { return len(p.offsets) - 1 }

// Graph is a directed k-NN graph: Neighbors(u) holds u's neighbors sorted
// by (similarity desc, ID asc). Storage is a page table of immutable
// chunks (see the package comment); the zero value is an empty graph.
type Graph struct {
	k        int
	numUsers int
	numEdges int
	pages    []page
}

// New assembles a graph from per-user neighbor lists, flattening them
// into one CSR arena. Lists must already be sorted by (sim desc, ID asc);
// use Validate to check the result when the source is untrusted.
func New(k int, lists [][]Neighbor) *Graph {
	offsets := make([]int64, len(lists)+1)
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	entries := make([]Neighbor, 0, total)
	for u, l := range lists {
		entries = append(entries, l...)
		offsets[u+1] = int64(len(entries))
	}
	return fromParts(k, offsets, entries)
}

// fromParts pages pre-built flat CSR arrays: every page aliases its slice
// of the shared arrays, so construction is O(numPages) slicing on top of
// whatever built the arrays (FromSet, the codecs, the mmap view).
func fromParts(k int, offsets []int64, entries []Neighbor) *Graph {
	n := 0
	if len(offsets) > 0 {
		n = len(offsets) - 1
	}
	g := &Graph{k: k, numUsers: n, numEdges: len(entries), pages: make([]page, numPages(n))}
	for p := range g.pages {
		lo, hi := p<<pageShift, min((p+1)<<pageShift, n)
		g.pages[p] = page{
			offsets: offsets[lo : hi+1 : hi+1],
			entries: entries[offsets[lo]:offsets[hi]:offsets[hi]],
		}
	}
	return g
}

// numPages returns the page count covering n users.
func numPages(n int) int { return (n + pageMask) >> pageShift }

// K returns the neighborhood bound the graph was built with.
func (g *Graph) K() int { return g.k }

// NumUsers returns the number of nodes.
func (g *Graph) NumUsers() int { return g.numUsers }

// NumEdges returns the total number of directed edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// NumPages returns the number of chunks in the page table — the unit the
// copy-on-write publication stats (PatchStats) count in.
func (g *Graph) NumPages() int { return len(g.pages) }

// Neighbors returns u's neighbor list as a view into page storage (do
// not mutate). The view's capacity is clamped, so appending to it cannot
// clobber the next user's list. Two loads: the page table entry, then
// the row bounds within it.
func (g *Graph) Neighbors(u uint32) []Neighbor {
	pg := &g.pages[u>>pageShift]
	i := u & pageMask
	base := pg.offsets[0]
	lo, hi := pg.offsets[i]-base, pg.offsets[i+1]-base
	return pg.entries[lo:hi:hi]
}

// Views materializes every per-user view in one [][]Neighbor (data stays
// shared with the arena). It exists for callers that consume whole-graph
// list shapes, like BuildExact.
func (g *Graph) Views() [][]Neighbor {
	out := make([][]Neighbor, g.NumUsers())
	for u := range out {
		out[u] = g.Neighbors(uint32(u))
	}
	return out
}

// FromSet snapshots a heap set into a Graph. The heaps are read under
// their locks, so FromSet may run while another goroutine still updates
// them (used by per-iteration convergence traces). The export lands in
// two flat arrays — no per-user allocation — which fromParts then pages.
func FromSet(s *knnheap.Set) *Graph {
	n := s.Len()
	offsets, raw := s.Export(make([]int64, 0, n+1), make([]knnheap.Entry, 0, n*s.K()))
	entries := make([]Neighbor, len(raw))
	for i, e := range raw {
		entries[i] = Neighbor{ID: e.ID, Sim: e.Sim}
	}
	for u := 0; u < n; u++ {
		SortNeighbors(entries[offsets[u]:offsets[u+1]])
	}
	return fromParts(s.K(), offsets, entries)
}

// PatchStats reports how a publication was assembled: how many pages the
// new graph shares with its predecessor versus had to copy out of the
// heaps — the copy-on-write observability record surfaced by /stats and
// the publication benches.
type PatchStats struct {
	// PagesShared counts pages adopted verbatim from the previous graph.
	PagesShared int
	// PagesCopied counts pages rebuilt from the heap set.
	PagesCopied int
	// EntriesCopied counts the edge records landing in copied pages —
	// with the offsets, the bytes a publication actually writes.
	EntriesCopied int
}

// PatchFrom snapshots a heap set into a Graph by patching a previously
// exported one: pages containing no dirty user are shared with prev, and
// within a rebuilt page only the dirty rows are re-exported from the
// heaps — clean rows are unchanged since prev by the dirty-set contract,
// so their already-sorted records are block-copied from prev's page.
// dirty must list every user whose heap changed since prev was exported
// (knnheap's TrackDirty/DrainDirty produce exactly that); users appended
// since (s.Len() > prev.NumUsers()) are implicitly dirty. Cost is
// O(copied pages · PageUsers · k) memory movement plus O(dirty rows ·
// k log k) heap export, not O(|U|).
//
// prev must itself have been exported from the same heap set's history —
// publication N patches from publication N−1, with the first publication
// a full FromSet. The result shares page storage with prev: prev (and
// anything backing it) must stay reachable and immutable, so never patch
// from a graph whose backing may be unmapped (see Mapped.Close).
func PatchFrom(prev *Graph, s *knnheap.Set, dirty []uint32) (*Graph, PatchStats) {
	if prev.k != s.K() {
		panic(fmt.Sprintf("knngraph: PatchFrom across k: prev has k=%d, set has k=%d", prev.k, s.K()))
	}
	n := s.Len()
	if n < prev.numUsers {
		panic(fmt.Sprintf("knngraph: PatchFrom shrank: prev covers %d users, set has %d", prev.numUsers, n))
	}
	pages := numPages(n)
	dirtyPage := make([]bool, pages)
	dirtyRow := make(map[uint32]struct{}, len(dirty))
	for _, u := range dirty {
		if int(u) < n {
			dirtyPage[u>>pageShift] = true
			dirtyRow[u] = struct{}{}
		}
	}
	pt := patcher{prev: prev, s: s, dirtyRow: dirtyRow}
	g := &Graph{k: s.K(), numUsers: n, pages: make([]page, pages)}
	var st PatchStats
	for p := range g.pages {
		lo, hi := p<<pageShift, min((p+1)<<pageShift, n)
		// A page is adoptable only if prev covered exactly the same rows:
		// pages overlapping [prev.numUsers, n) grew and must be rebuilt.
		if !dirtyPage[p] && p < len(prev.pages) && prev.pages[p].rows() == hi-lo {
			g.pages[p] = prev.pages[p]
			st.PagesShared++
		} else {
			g.pages[p] = pt.patchPage(lo, hi)
			st.PagesCopied++
			st.EntriesCopied += len(g.pages[p].entries)
		}
		g.numEdges += len(g.pages[p].entries)
	}
	return g, st
}

// patcher rebuilds dirty pages row by row, reusing one pair of scratch
// export buffers across every dirty row of a publication.
type patcher struct {
	prev     *Graph
	s        *knnheap.Set
	dirtyRow map[uint32]struct{}
	rowOff   []int64
	rowEnt   []knnheap.Entry
}

// patchPage materializes users [lo, hi) into a standalone page (own
// boundary and entry arrays, offsets based at 0). Rows in the dirty set
// or beyond prev's coverage are exported from the heaps and sorted; the
// rest are copied verbatim from prev, whose rows are already in canonical
// order.
func (pt *patcher) patchPage(lo, hi int) page {
	offsets := make([]int64, 1, hi-lo+1)
	entries := make([]Neighbor, 0, (hi-lo)*pt.s.K())
	for u := lo; u < hi; u++ {
		if _, dirty := pt.dirtyRow[uint32(u)]; !dirty && u < pt.prev.numUsers {
			entries = append(entries, pt.prev.Neighbors(uint32(u))...)
		} else {
			start := len(entries)
			pt.rowOff, pt.rowEnt = pt.s.ExportRange(pt.rowOff[:0], pt.rowEnt[:0], u, u+1)
			for _, e := range pt.rowEnt {
				entries = append(entries, Neighbor{ID: e.ID, Sim: e.Sim})
			}
			SortNeighbors(entries[start:])
		}
		offsets = append(offsets, int64(len(entries)))
	}
	return page{offsets: offsets, entries: entries}
}

// CompareNeighbors is the canonical edge ordering of the module
// (similarity descending, ties broken by ascending ID); every sorted
// neighbor list — graph rows, query results, ground truth — uses it.
func CompareNeighbors(a, b Neighbor) int {
	switch {
	case a.Sim > b.Sim:
		return -1
	case a.Sim < b.Sim:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// SortNeighbors sorts a neighbor list into the canonical order.
func SortNeighbors(list []Neighbor) {
	slices.SortFunc(list, CompareNeighbors)
}

// Validate checks structural invariants: no self-loops, no duplicate
// neighbors, lists sorted and bounded by K.
func (g *Graph) Validate() error {
	n := g.NumUsers()
	for u := 0; u < n; u++ {
		list := g.Neighbors(uint32(u))
		if len(list) > g.k {
			return fmt.Errorf("knngraph: user %d has %d > k neighbors", u, len(list))
		}
		// Duplicate detection: allocation-free quadratic scan for the
		// typical small k, map-based beyond it — k comes from untrusted
		// codec input, so the quadratic path must not be unbounded.
		var seen map[uint32]bool
		if len(list) > 64 {
			seen = make(map[uint32]bool, len(list))
		}
		for i, nb := range list {
			if int(nb.ID) == u {
				return fmt.Errorf("knngraph: user %d has a self-loop", u)
			}
			if seen != nil {
				if seen[nb.ID] {
					return fmt.Errorf("knngraph: user %d lists %d twice", u, nb.ID)
				}
				seen[nb.ID] = true
			} else {
				for j := 0; j < i; j++ {
					if list[j].ID == nb.ID {
						return fmt.Errorf("knngraph: user %d lists %d twice", u, nb.ID)
					}
				}
			}
			if i > 0 {
				prev := list[i-1]
				if prev.Sim < nb.Sim || (prev.Sim == nb.Sim && prev.ID > nb.ID) {
					return fmt.Errorf("knngraph: user %d list unsorted at %d", u, i)
				}
			}
		}
	}
	return nil
}

// Write serializes the graph as text: one "u v sim" edge per line.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# knn graph: %d users, k=%d\n", g.NumUsers(), g.k)
	for u := 0; u < g.NumUsers(); u++ {
		for _, nb := range g.Neighbors(uint32(u)) {
			if _, err := fmt.Fprintf(bw, "%d %d %.6g\n", u, nb.ID, nb.Sim); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
