// Package knngraph defines the directed KNN graph produced by the
// construction algorithms and the recall metric used to score it against
// the exact graph (paper §III-B).
//
// The graph is stored in CSR form — one contiguous entries array plus
// per-user offsets (internal/arena's layout) — rather than one slice per
// user. A graph is immutable once built: builders assemble neighbor lists
// and hand them to New or FromSet, and serving code reads Neighbors views
// that alias the shared arena. That immutability is what lets a
// kiff.Snapshot publish a graph to concurrent readers without locks.
package knngraph

import (
	"bufio"
	"fmt"
	"io"
	"slices"

	"kiff/internal/knnheap"
)

// Neighbor is one edge of the KNN graph, annotated with the similarity
// that justified it.
//
// The field order and types are load-bearing: on 64-bit little-endian
// hosts the struct layout (ID at offset 0, 4 bytes padding, Sim at
// offset 8) matches the on-disk edge record of the version-2 binary
// format, which is what lets mapped graphs view records in place (see
// mapped.go). Changing the struct requires a format version bump.
type Neighbor struct {
	// ID is the neighbor's user ID.
	ID uint32
	// Sim is the similarity between the list owner and ID.
	Sim float64
}

// Graph is a directed k-NN graph: Neighbors(u) holds u's neighbors sorted
// by (similarity desc, ID asc). Storage is a flat CSR arena; the zero
// value is an empty graph.
type Graph struct {
	k       int
	offsets []int64
	entries []Neighbor
}

// New assembles a graph from per-user neighbor lists, flattening them
// into the CSR arena. Lists must already be sorted by (sim desc, ID asc);
// use Validate to check the result when the source is untrusted.
func New(k int, lists [][]Neighbor) *Graph {
	g := &Graph{k: k, offsets: make([]int64, len(lists)+1)}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	g.entries = make([]Neighbor, 0, total)
	for u, l := range lists {
		g.entries = append(g.entries, l...)
		g.offsets[u+1] = int64(len(g.entries))
	}
	return g
}

// fromParts wraps pre-built CSR arrays (codec internal).
func fromParts(k int, offsets []int64, entries []Neighbor) *Graph {
	return &Graph{k: k, offsets: offsets, entries: entries}
}

// K returns the neighborhood bound the graph was built with.
func (g *Graph) K() int { return g.k }

// NumUsers returns the number of nodes.
func (g *Graph) NumUsers() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the total number of directed edges.
func (g *Graph) NumEdges() int { return len(g.entries) }

// Neighbors returns u's neighbor list as a view into the shared arena
// (do not mutate). The view's capacity is clamped, so appending to it
// cannot clobber the next user's list.
func (g *Graph) Neighbors(u uint32) []Neighbor {
	lo, hi := g.offsets[u], g.offsets[u+1]
	return g.entries[lo:hi:hi]
}

// Views materializes every per-user view in one [][]Neighbor (data stays
// shared with the arena). It exists for callers that consume whole-graph
// list shapes, like BuildExact.
func (g *Graph) Views() [][]Neighbor {
	out := make([][]Neighbor, g.NumUsers())
	for u := range out {
		out[u] = g.Neighbors(uint32(u))
	}
	return out
}

// FromSet snapshots a heap set into a Graph. The heaps are read under
// their locks, so FromSet may run while another goroutine still updates
// them (used by per-iteration convergence traces). The export lands in
// two flat arrays — no per-user allocation.
func FromSet(s *knnheap.Set) *Graph {
	n := s.Len()
	offsets, raw := s.Export(make([]int64, 0, n+1), make([]knnheap.Entry, 0, n*s.K()))
	entries := make([]Neighbor, len(raw))
	for i, e := range raw {
		entries[i] = Neighbor{ID: e.ID, Sim: e.Sim}
	}
	for u := 0; u < n; u++ {
		SortNeighbors(entries[offsets[u]:offsets[u+1]])
	}
	return &Graph{k: s.K(), offsets: offsets, entries: entries}
}

// CompareNeighbors is the canonical edge ordering of the module
// (similarity descending, ties broken by ascending ID); every sorted
// neighbor list — graph rows, query results, ground truth — uses it.
func CompareNeighbors(a, b Neighbor) int {
	switch {
	case a.Sim > b.Sim:
		return -1
	case a.Sim < b.Sim:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// SortNeighbors sorts a neighbor list into the canonical order.
func SortNeighbors(list []Neighbor) {
	slices.SortFunc(list, CompareNeighbors)
}

// Validate checks structural invariants: no self-loops, no duplicate
// neighbors, lists sorted and bounded by K.
func (g *Graph) Validate() error {
	n := g.NumUsers()
	for u := 0; u < n; u++ {
		list := g.Neighbors(uint32(u))
		if len(list) > g.k {
			return fmt.Errorf("knngraph: user %d has %d > k neighbors", u, len(list))
		}
		// Duplicate detection: allocation-free quadratic scan for the
		// typical small k, map-based beyond it — k comes from untrusted
		// codec input, so the quadratic path must not be unbounded.
		var seen map[uint32]bool
		if len(list) > 64 {
			seen = make(map[uint32]bool, len(list))
		}
		for i, nb := range list {
			if int(nb.ID) == u {
				return fmt.Errorf("knngraph: user %d has a self-loop", u)
			}
			if seen != nil {
				if seen[nb.ID] {
					return fmt.Errorf("knngraph: user %d lists %d twice", u, nb.ID)
				}
				seen[nb.ID] = true
			} else {
				for j := 0; j < i; j++ {
					if list[j].ID == nb.ID {
						return fmt.Errorf("knngraph: user %d lists %d twice", u, nb.ID)
					}
				}
			}
			if i > 0 {
				prev := list[i-1]
				if prev.Sim < nb.Sim || (prev.Sim == nb.Sim && prev.ID > nb.ID) {
					return fmt.Errorf("knngraph: user %d list unsorted at %d", u, i)
				}
			}
		}
	}
	return nil
}

// Write serializes the graph as text: one "u v sim" edge per line.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# knn graph: %d users, k=%d\n", g.NumUsers(), g.k)
	for u := 0; u < g.NumUsers(); u++ {
		for _, nb := range g.Neighbors(uint32(u)) {
			if _, err := fmt.Fprintf(bw, "%d %d %.6g\n", u, nb.ID, nb.Sim); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
