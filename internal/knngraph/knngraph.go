// Package knngraph defines the directed KNN graph produced by the
// construction algorithms and the recall metric used to score it against
// the exact graph (paper §III-B).
package knngraph

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"kiff/internal/knnheap"
)

// Neighbor is one edge of the KNN graph, annotated with the similarity
// that justified it.
type Neighbor struct {
	ID  uint32
	Sim float64
}

// Graph is a directed k-NN graph: Lists[u] holds u's neighbors sorted by
// (similarity desc, ID asc).
type Graph struct {
	K     int
	Lists [][]Neighbor
}

// NumUsers returns the number of nodes.
func (g *Graph) NumUsers() int { return len(g.Lists) }

// Neighbors returns u's neighbor list (do not mutate).
func (g *Graph) Neighbors(u uint32) []Neighbor { return g.Lists[u] }

// FromSet snapshots a heap set into a Graph. The heaps are read under
// their locks, so FromSet may run while another goroutine still updates
// them (used by per-iteration convergence traces).
func FromSet(s *knnheap.Set) *Graph {
	g := &Graph{K: s.K(), Lists: make([][]Neighbor, s.Len())}
	var buf []knnheap.Entry
	for u := 0; u < s.Len(); u++ {
		buf = s.Neighbors(buf[:0], uint32(u))
		list := make([]Neighbor, len(buf))
		for i, e := range buf {
			list[i] = Neighbor{ID: e.ID, Sim: e.Sim}
		}
		sortNeighbors(list)
		g.Lists[u] = list
	}
	return g
}

func sortNeighbors(list []Neighbor) {
	sort.Slice(list, func(a, b int) bool {
		if list[a].Sim != list[b].Sim {
			return list[a].Sim > list[b].Sim
		}
		return list[a].ID < list[b].ID
	})
}

// Validate checks structural invariants: no self-loops, no duplicate
// neighbors, lists sorted and bounded by K.
func (g *Graph) Validate() error {
	for u, list := range g.Lists {
		if len(list) > g.K {
			return fmt.Errorf("knngraph: user %d has %d > k neighbors", u, len(list))
		}
		seen := make(map[uint32]bool, len(list))
		for i, nb := range list {
			if int(nb.ID) == u {
				return fmt.Errorf("knngraph: user %d has a self-loop", u)
			}
			if seen[nb.ID] {
				return fmt.Errorf("knngraph: user %d lists %d twice", u, nb.ID)
			}
			seen[nb.ID] = true
			if i > 0 {
				prev := list[i-1]
				if prev.Sim < nb.Sim || (prev.Sim == nb.Sim && prev.ID > nb.ID) {
					return fmt.Errorf("knngraph: user %d list unsorted at %d", u, i)
				}
			}
		}
	}
	return nil
}

// Write serializes the graph as text: one "u v sim" edge per line.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# knn graph: %d users, k=%d\n", g.NumUsers(), g.K)
	for u, list := range g.Lists {
		for _, nb := range list {
			if _, err := fmt.Fprintf(bw, "%d %d %.6g\n", u, nb.ID, nb.Sim); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
