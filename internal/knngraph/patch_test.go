package knngraph

import (
	"bytes"
	"math/rand"
	"testing"

	"kiff/internal/knnheap"
)

// wireBytes serializes g in the KFG1 binary format.
func wireBytes(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// fillSet offers `rounds` random candidates into the heaps.
func fillSet(s *knnheap.Set, rng *rand.Rand, rounds int) {
	n := s.Len()
	if n < 2 {
		return
	}
	for i := 0; i < rounds; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u == v {
			continue
		}
		s.Update(u, v, rng.Float64())
	}
}

// requireSameGraph asserts a patched graph equals the from-scratch export
// both through the accessors and on the wire.
func requireSameGraph(t *testing.T, patched, scratch *Graph) {
	t.Helper()
	if patched.NumUsers() != scratch.NumUsers() || patched.NumEdges() != scratch.NumEdges() {
		t.Fatalf("patched graph is %d users / %d edges, scratch %d / %d",
			patched.NumUsers(), patched.NumEdges(), scratch.NumUsers(), scratch.NumEdges())
	}
	for u := 0; u < scratch.NumUsers(); u++ {
		a, b := patched.Neighbors(uint32(u)), scratch.Neighbors(uint32(u))
		if len(a) != len(b) {
			t.Fatalf("user %d: %d vs %d neighbors", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d neighbor %d: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
	if !bytes.Equal(wireBytes(t, patched), wireBytes(t, scratch)) {
		t.Fatal("patched graph serializes differently from the flat export")
	}
}

// TestPatchFromCleanSharesEverything covers the page-boundary sizes: with
// no dirty users, every page is shared and the result still reads and
// serializes identically.
func TestPatchFromCleanSharesEverything(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		s := knnheap.NewSet(n, 4)
		fillSet(s, rand.New(rand.NewSource(int64(n))), n*8)
		prev := FromSet(s)
		s.TrackDirty()
		g, st := PatchFrom(prev, s, s.DrainDirty(nil))
		if st.PagesCopied != 0 || st.EntriesCopied != 0 {
			t.Fatalf("n=%d: clean patch copied %d pages / %d entries", n, st.PagesCopied, st.EntriesCopied)
		}
		if want := numPages(n); st.PagesShared != want {
			t.Fatalf("n=%d: shared %d pages, want %d", n, st.PagesShared, want)
		}
		requireSameGraph(t, g, FromSet(s))
	}
}

// TestPatchFromDirtyUsers mutates a handful of users and checks that only
// their pages are copied while the patched graph matches a full export.
func TestPatchFromDirtyUsers(t *testing.T) {
	const n, k = 130, 4
	rng := rand.New(rand.NewSource(5))
	s := knnheap.NewSet(n, k)
	fillSet(s, rng, n*10)
	prev := FromSet(s)
	s.TrackDirty()

	// Touch users on page 0 and page 2 only. Update(u, v) and Remove(u, v)
	// touch exactly u's heap, so pages 0 and 2 become dirty and page 1
	// (users 64..127) stays clean. Pick a candidate certain to change heap
	// 3 (absent, and sim 2.0 beats every random sim).
	var v uint32 = 1
	for v == 3 || s.Contains(3, v) {
		v++
	}
	s.Update(3, v, 2.0)
	if ids := s.IDs(nil, 129); len(ids) > 0 {
		s.Remove(129, ids[0])
	} else {
		s.Update(129, 5, 2.0)
	}
	dirty := s.DrainDirty(nil)
	g, st := PatchFrom(prev, s, dirty)
	if st.PagesCopied != 2 {
		t.Fatalf("copied %d pages, want 2 (dirty %v)", st.PagesCopied, dirty)
	}
	if st.PagesShared != numPages(n)-2 {
		t.Fatalf("shared %d pages, want %d", st.PagesShared, numPages(n)-2)
	}
	requireSameGraph(t, g, FromSet(s))

	// A second drain-and-patch with nothing dirty shares all pages of the
	// patched graph (mixed shared/standalone page provenance).
	g2, st2 := PatchFrom(g, s, s.DrainDirty(nil))
	if st2.PagesCopied != 0 || st2.PagesShared != numPages(n) {
		t.Fatalf("second patch: %+v", st2)
	}
	requireSameGraph(t, g2, FromSet(s))
}

// TestPatchFromGrowth grows the population across a page boundary; the
// old partial tail page and the new pages are rebuilt, full old pages are
// shared.
func TestPatchFromGrowth(t *testing.T) {
	const k = 4
	rng := rand.New(rand.NewSource(9))
	s := knnheap.NewSet(70, k) // pages: [0..63], [64..69] (partial)
	fillSet(s, rng, 700)
	prev := FromSet(s)
	s.TrackDirty()

	s.Grow(10) // 80 users: tail page now [64..79]
	for u := 70; u < 80; u++ {
		s.Update(uint32(u), uint32(u%64), rng.Float64())
	}
	g, st := PatchFrom(prev, s, s.DrainDirty(nil))
	if st.PagesShared != 1 || st.PagesCopied != 1 {
		t.Fatalf("growth patch: %+v, want 1 shared (page 0) + 1 copied (tail)", st)
	}
	requireSameGraph(t, g, FromSet(s))
}

// TestPatchFromPanics pins the misuse guards.
func TestPatchFromPanics(t *testing.T) {
	s := knnheap.NewSet(10, 4)
	prev := FromSet(knnheap.NewSet(10, 5))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PatchFrom across k did not panic")
			}
		}()
		PatchFrom(prev, s, nil)
	}()
	shrunk := FromSet(knnheap.NewSet(20, 4))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PatchFrom over a shrunk set did not panic")
			}
		}()
		PatchFrom(shrunk, s, nil)
	}()
}

// FuzzGraphPatchRoundTrip drives a byte-string-derived mutation stream
// through a tracked heap set, repeatedly patching the published graph,
// and pins the COW-patched graph's WriteTo bytes against the flat-CSR
// export of the same heaps — the serialization-identity contract the
// mmap/codec layer depends on.
func FuzzGraphPatchRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0x80, 0x40, 0x20, 0x10})
	f.Add(bytes.Repeat([]byte{9, 33, 77}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		const k = 3
		n := 66 // straddles one page boundary; ops below may grow it
		s := knnheap.NewSet(n, k)
		rng := rand.New(rand.NewSource(11))
		fillSet(s, rng, n*6)
		prev := FromSet(s)
		s.TrackDirty()
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			switch op % 4 {
			case 0:
				u, v := uint32(a)%uint32(n), uint32(b)%uint32(n)
				if u != v {
					s.Update(u, v, float64(op)/255)
				}
			case 1:
				u := uint32(a) % uint32(n)
				ids := s.IDs(nil, u)
				if len(ids) > 0 {
					s.Remove(u, ids[int(b)%len(ids)])
				}
			case 2:
				s.Clear(uint32(a) % uint32(n))
			case 3:
				if n < 200 {
					s.Grow(1 + int(a)%3)
					n = s.Len()
				}
			}
			if op%8 == 0 { // publish every so often, patching the previous
				next, _ := PatchFrom(prev, s, s.DrainDirty(nil))
				prev = next
			}
		}
		final, _ := PatchFrom(prev, s, s.DrainDirty(nil))
		scratch := FromSet(s)
		if !bytes.Equal(wireBytes(t, final), wireBytes(t, scratch)) {
			t.Fatal("patched graph bytes diverge from flat export")
		}
	})
}
