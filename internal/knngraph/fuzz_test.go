package knngraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the graph parser never panics and that accepted graphs
// are valid and survive a Write/Read round trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"",
		"# header\n",
		"0 1 0.5\n",
		"0 1 0.5\n1 0 0.5\n",
		"0 1 NaN\n",
		"0 0 1\n",
		"9 1 0.25\n",
		"a b c\n",
		"0 1\n",
		"0 1 0.5 extra\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", vErr, input)
		}
		var buf bytes.Buffer
		if wErr := g.Write(&buf); wErr != nil {
			t.Fatalf("Write failed: %v", wErr)
		}
		back, rErr := Read(bytes.NewReader(buf.Bytes()))
		if rErr != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", rErr, buf.String())
		}
		if back.NumUsers() < g.NumUsers() {
			t.Fatalf("round trip lost users: %d vs %d", back.NumUsers(), g.NumUsers())
		}
	})
}
