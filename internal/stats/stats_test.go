package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for i, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("case %d: Mean = %v, want %v", i, got, c.want)
		}
	}
}

func TestMeanInt(t *testing.T) {
	if got := MeanInt([]int{1, 2, 3}); !almostEq(got, 2, 1e-12) {
		t.Errorf("MeanInt = %v, want 2", got)
	}
	if got := MeanInt(nil); got != 0 {
		t.Errorf("MeanInt(nil) = %v, want 0", got)
	}
}

func TestMax(t *testing.T) {
	if got := Max([]int{3, 9, 1}); got != 9 {
		t.Errorf("Max = %d, want 9", got)
	}
	if got := Max([]int{-3, -9}); got != -3 {
		t.Errorf("Max = %d, want -3", got)
	}
	if got := Max(nil); got != 0 {
		t.Errorf("Max(nil) = %d, want 0", got)
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Errorf("Variance of constant = %v, want 0", got)
	}
	if got := Variance([]float64{1, 3}); !almostEq(got, 1, 1e-12) {
		t.Errorf("Variance = %v, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {10, 1}, {50, 5}, {100, 10}, {-5, 1}, {105, 10}}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestCCDFBasic(t *testing.T) {
	// observations: 1,1,2,5
	pts := CCDF([]int{5, 1, 2, 1})
	want := []CCDFPoint{{1, 1.0}, {2, 0.5}, {5, 0.25}}
	if len(pts) != len(want) {
		t.Fatalf("CCDF = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i].X != want[i].X || !almostEq(pts[i].P, want[i].P, 1e-12) {
			t.Fatalf("CCDF = %v, want %v", pts, want)
		}
	}
}

func TestCCDFEmpty(t *testing.T) {
	if pts := CCDF(nil); pts != nil {
		t.Errorf("CCDF(nil) = %v, want nil", pts)
	}
}

func TestCCDFMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	xs := make([]int, 500)
	for i := range xs {
		xs[i] = r.Intn(50)
	}
	pts := CCDF(xs)
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatal("CCDF X values must be strictly ascending")
		}
		if pts[i].P >= pts[i-1].P {
			t.Fatal("CCDF P values must be strictly descending")
		}
	}
	if !almostEq(pts[0].P, 1, 1e-12) {
		t.Errorf("CCDF at min must be 1, got %v", pts[0].P)
	}
}

func TestCCDFAt(t *testing.T) {
	pts := CCDF([]int{1, 1, 2, 5})
	cases := []struct {
		x    int
		want float64
	}{{0, 1}, {1, 1}, {2, 0.5}, {3, 0.25}, {5, 0.25}, {6, 0}}
	for _, c := range cases {
		if got := CCDFAt(pts, c.x); !almostEq(got, c.want, 1e-12) {
			t.Errorf("CCDFAt(%d) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestFractionAtLeast(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	if got := FractionAtLeast(xs, 3); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("FractionAtLeast = %v, want 0.5", got)
	}
	if got := FractionAtLeast(nil, 3); got != 0 {
		t.Errorf("FractionAtLeast(nil) = %v, want 0", got)
	}
	if got := FractionAtLeast(xs, 0); got != 1 {
		t.Errorf("FractionAtLeast(0) = %v, want 1", got)
	}
}

func TestRanksNoTies(t *testing.T) {
	ranks := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	ranks := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", ranks, want)
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", got)
	}
}

func TestSpearmanPerfectInverse(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{5, 4, 3, 2, 1}
	if got := Spearman(xs, ys); !almostEq(got, -1, 1e-12) {
		t.Errorf("Spearman = %v, want -1", got)
	}
}

func TestSpearmanMonotoneNonlinear(t *testing.T) {
	// Spearman is invariant to monotone transforms, unlike Pearson.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman on monotone transform = %v, want 1", got)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if got := Spearman([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("length mismatch must return 0, got %v", got)
	}
	if got := Spearman([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("short input must return 0, got %v", got)
	}
	if got := Spearman([]float64{2, 2, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant variable must return 0, got %v", got)
	}
}

func TestSpearmanTiesKnownValue(t *testing.T) {
	// Hand-computed example with ties:
	// xs ranks: [1.5, 1.5, 3, 4]; ys ranks: [1, 2, 3, 4]
	xs := []float64{5, 5, 7, 9}
	ys := []float64{1, 2, 3, 4}
	// Pearson of ranks: cov = (1.5-2.5)(1-2.5)+(1.5-2.5)(2-2.5)+(3-2.5)(3-2.5)+(4-2.5)(4-2.5)
	//                      = 1.5+0.5+0.25+2.25 = 4.5
	// sxx = 1+1+0.25+2.25 = 4.5 ; syy = 2.25+0.25+0.25+2.25 = 5
	// r = 4.5/sqrt(4.5*5) = 0.94868...
	want := 4.5 / math.Sqrt(4.5*5)
	if got := Spearman(xs, ys); !almostEq(got, want, 1e-12) {
		t.Errorf("Spearman with ties = %v, want %v", got, want)
	}
}

func TestSpearmanUncorrelatedNearZero(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	if got := Spearman(xs, ys); math.Abs(got) > 0.08 {
		t.Errorf("Spearman of independent data = %v, want ~0", got)
	}
}
