package stats

import (
	"math"
	"sort"
)

// Spearman returns Spearman's rank correlation coefficient between xs and
// ys, handling ties by fractional (average) ranks. It is computed as the
// Pearson correlation of the two rank vectors, which remains exact in the
// presence of ties — the Wikipedia RCSs of Fig 7 contain many tied common-
// item counts, so the tie-aware form matters.
//
// Returns 0 if the slices differ in length, are shorter than 2, or either
// variable is constant (correlation undefined).
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	rx := Ranks(xs)
	ry := Ranks(ys)
	return pearson(rx, ry)
}

// Ranks assigns fractional ranks (1-based, ties get the average of the
// positions they occupy).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func pearson(xs, ys []float64) float64 {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
