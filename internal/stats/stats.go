// Package stats provides the small statistics toolkit used by the
// evaluation: complementary cumulative distribution functions (Figs 4
// and 6 of the paper), tie-aware Spearman rank correlation (Fig 7), and
// basic summaries.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanInt returns the arithmetic mean of integer observations.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
