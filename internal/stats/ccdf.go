package stats

import "sort"

// CCDFPoint is one point of a complementary cumulative distribution
// function: P(X ≥ X-value) = P.
type CCDFPoint struct {
	X int
	P float64
}

// CCDF computes the complementary cumulative distribution function
// P(X ≥ x) of integer observations, evaluated at every distinct observed
// value in ascending order. This is exactly the curve plotted in Figs 4
// and 6 of the paper.
func CCDF(xs []int) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	n := float64(len(sorted))
	var out []CCDFPoint
	for i := 0; i < len(sorted); {
		v := sorted[i]
		// All observations from index i onward are ≥ v.
		out = append(out, CCDFPoint{X: v, P: float64(len(sorted)-i) / n})
		for i < len(sorted) && sorted[i] == v {
			i++
		}
	}
	return out
}

// CCDFAt evaluates a CCDF curve at x, i.e. returns P(X ≥ x).
// Points must come from CCDF (ascending X).
func CCDFAt(points []CCDFPoint, x int) float64 {
	// First point with X >= x carries the probability mass at or above x.
	idx := sort.Search(len(points), func(i int) bool { return points[i].X >= x })
	if idx == len(points) {
		return 0
	}
	return points[idx].P
}

// FractionAtLeast returns the fraction of observations ≥ threshold.
// It is the scalar the paper reports in Table VI ("%user |RCSu| > cut").
func FractionAtLeast(xs []int, threshold int) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
