package sparse

import (
	"math"
	"slices"
)

// CommonCount returns |a ∩ b|, the number of shared identifiers.
//
// This is the cheap coarse similarity at the heart of KIFF's counting phase
// (§II-A): it involves only integer comparisons, no floating point, and its
// value upper-bounds every overlap-based similarity metric.
func CommonCount(a, b Vector) int {
	n := 0
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			n++
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return n
}

// Dot returns the dot product Σ_i a_i·b_i over the shared identifiers.
// For two binary vectors it equals CommonCount.
func Dot(a, b Vector) float64 {
	if a.IsBinary() && b.IsBinary() {
		return float64(CommonCount(a, b))
	}
	var s float64
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			s += a.Weight(i) * b.Weight(j)
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return s
}

// Norm returns the Euclidean norm ‖a‖₂. For a binary vector this is
// sqrt(|a|).
func Norm(a Vector) float64 {
	if a.IsBinary() {
		return math.Sqrt(float64(len(a.IDs)))
	}
	var s float64
	for _, w := range a.Weights {
		s += w * w
	}
	return math.Sqrt(s)
}

// UnionCount returns |a ∪ b|.
func UnionCount(a, b Vector) int {
	return len(a.IDs) + len(b.IDs) - CommonCount(a, b)
}

// Intersect returns the identifiers common to a and b, in ascending order.
// The result is appended to dst to allow buffer reuse.
func Intersect(dst []uint32, a, b Vector) []uint32 {
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			dst = append(dst, ai)
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return dst
}

// FromMap builds a well-formed Vector from an id→weight map. If binary is
// true the weights are discarded and a binary vector is produced.
func FromMap(m map[uint32]float64, binary bool) Vector {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	v := Vector{IDs: ids}
	if !binary {
		v.Weights = make([]float64, len(ids))
		for i, id := range ids {
			v.Weights[i] = m[id]
		}
	}
	return v
}
