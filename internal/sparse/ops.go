package sparse

import (
	"math"
	"slices"
)

// gallopRatio is the length skew at which the pairwise kernels switch
// from the linear merge to a galloping (exponential-search) intersection:
// when one profile is at least this many times longer than the other, it
// is cheaper to binary-search the long side per element of the short side
// than to walk it. The profile-size distributions of the paper's datasets
// are heavy-tailed (Fig 4), so such skewed pairs are common whenever a
// hub user is involved.
const gallopRatio = 16

// CommonCount returns |a ∩ b|, the number of shared identifiers.
//
// This is the cheap coarse similarity at the heart of KIFF's counting phase
// (§II-A): it involves only integer comparisons, no floating point, and its
// value upper-bounds every overlap-based similarity metric. Heavily skewed
// pairs take the galloping path (see gallopRatio); the result is identical.
func CommonCount(a, b Vector) int {
	if len(a.IDs) > len(b.IDs) {
		a, b = b, a
	}
	if len(b.IDs) >= gallopRatio*len(a.IDs) {
		return commonCountGallop(a.IDs, b.IDs)
	}
	n := 0
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			n++
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return n
}

// commonCountGallop intersects a short sorted ID list against a much
// longer one by exponential search: for each element of the short side,
// gallop forward in the long side (doubling steps) to bracket it, then
// binary-search the bracket. Cost is O(|short|·log(|long|/|short|)) versus
// the merge's O(|short|+|long|).
func commonCountGallop(short, long []uint32) int {
	n := 0
	j := 0
	for _, id := range short {
		j += gallop(long[j:], id)
		if j >= len(long) {
			break
		}
		if long[j] == id {
			n++
			j++
		}
	}
	return n
}

// gallop returns the index of the first element of xs that is ≥ id,
// probing at doubling offsets before binary-searching the final bracket.
func gallop(xs []uint32, id uint32) int {
	if len(xs) == 0 || xs[0] >= id {
		return 0
	}
	// Invariant: xs[lo] < id. Double the probe distance until it
	// overshoots (or the slice ends), then binary search (lo, hi].
	lo, step := 0, 1
	for {
		hi := lo + step
		if hi >= len(xs) {
			hi = len(xs)
			return lo + 1 + search(xs[lo+1:hi], id)
		}
		if xs[hi] >= id {
			return lo + 1 + search(xs[lo+1:hi], id)
		}
		lo = hi
		step <<= 1
	}
}

// search is sort.SearchInts over uint32s: the first index with xs[i] ≥ id.
func search(xs []uint32, id uint32) int {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Dot returns the dot product Σ_i a_i·b_i over the shared identifiers.
// For two binary vectors it equals CommonCount. Skewed pairs gallop like
// CommonCount; the shared IDs are visited in the same ascending order
// either way, so the floating-point result is bit-identical.
func Dot(a, b Vector) float64 {
	if a.IsBinary() && b.IsBinary() {
		return float64(CommonCount(a, b))
	}
	if len(a.IDs) > len(b.IDs) {
		a, b = b, a
	}
	if len(b.IDs) >= gallopRatio*len(a.IDs) {
		return dotGallop(a, b)
	}
	var s float64
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			s += a.Weight(i) * b.Weight(j)
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return s
}

// dotGallop is Dot's galloping path: a is the short side.
func dotGallop(a, b Vector) float64 {
	var s float64
	j := 0
	for i, id := range a.IDs {
		j += gallop(b.IDs[j:], id)
		if j >= len(b.IDs) {
			break
		}
		if b.IDs[j] == id {
			s += a.Weight(i) * b.Weight(j)
			j++
		}
	}
	return s
}

// Norm returns the Euclidean norm ‖a‖₂. For a binary vector this is
// sqrt(|a|).
func Norm(a Vector) float64 {
	if a.IsBinary() {
		return math.Sqrt(float64(len(a.IDs)))
	}
	var s float64
	for _, w := range a.Weights {
		s += w * w
	}
	return math.Sqrt(s)
}

// UnionCount returns |a ∪ b|.
func UnionCount(a, b Vector) int {
	return len(a.IDs) + len(b.IDs) - CommonCount(a, b)
}

// Intersect returns the identifiers common to a and b, in ascending order.
// The result is appended to dst to allow buffer reuse.
func Intersect(dst []uint32, a, b Vector) []uint32 {
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		ai, bj := a.IDs[i], b.IDs[j]
		switch {
		case ai == bj:
			dst = append(dst, ai)
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	return dst
}

// FromMap builds a well-formed Vector from an id→weight map. If binary is
// true the weights are discarded and a binary vector is produced.
func FromMap(m map[uint32]float64, binary bool) Vector {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	v := Vector{IDs: ids}
	if !binary {
		v.Weights = make([]float64, len(ids))
		for i, id := range ids {
			v.Weights[i] = m[id]
		}
	}
	return v
}
