package sparse

// Compact re-lays a set of vectors onto two shared backing arenas (one
// for IDs, one for weights), returning new vector headers whose slices
// are capacity-clamped views into the arenas. The per-vector heap
// allocations of the input are released; scanning the output in order
// walks memory sequentially — the layout every batch phase (counting,
// similarity) wants.
//
// The clamped capacity doubles as the copy-on-write guarantee the
// snapshot machinery relies on: appending to a compacted vector's slices
// always reallocates, so a reader holding the old header never observes
// the mutation.
func Compact(vs []Vector) []Vector {
	totalIDs, totalWeights := 0, 0
	for _, v := range vs {
		totalIDs += len(v.IDs)
		totalWeights += len(v.Weights)
	}
	ids := make([]uint32, 0, totalIDs)
	weights := make([]float64, 0, totalWeights)
	out := make([]Vector, len(vs))
	for i, v := range vs {
		lo := len(ids)
		ids = append(ids, v.IDs...)
		out[i] = Vector{IDs: ids[lo:len(ids):len(ids)]}
		if v.Weights != nil {
			wlo := len(weights)
			weights = append(weights, v.Weights...)
			out[i].Weights = weights[wlo:len(weights):len(weights)]
		}
	}
	return out
}
