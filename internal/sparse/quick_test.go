package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randVector draws a well-formed sparse vector whose size and id range force
// frequent partial overlaps, the regime the merge loops must get right.
func randVector(r *rand.Rand) Vector {
	n := r.Intn(40)
	seen := make(map[uint32]bool, n)
	ids := make([]uint32, 0, n)
	for len(ids) < n {
		id := uint32(r.Intn(100))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	v := FromMap(func() map[uint32]float64 {
		m := make(map[uint32]float64, len(ids))
		for _, id := range ids {
			m[id] = float64(r.Intn(10)) + 1
		}
		return m
	}(), r.Intn(2) == 0)
	return v
}

func quickCfg(seed int64) *quick.Config {
	r := rand.New(rand.NewSource(seed))
	return &quick.Config{
		MaxCount: 300,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randVector(r))
			}
		},
	}
}

func TestQuickCommonCountSymmetric(t *testing.T) {
	f := func(a, b Vector) bool { return CommonCount(a, b) == CommonCount(b, a) }
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Error(err)
	}
}

func TestQuickCommonCountBounds(t *testing.T) {
	f := func(a, b Vector) bool {
		c := CommonCount(a, b)
		return c >= 0 && c <= a.Len() && c <= b.Len()
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Error(err)
	}
}

func TestQuickCommonCountSelf(t *testing.T) {
	f := func(a, _ Vector) bool { return CommonCount(a, a) == a.Len() }
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Error(err)
	}
}

func TestQuickDotSymmetric(t *testing.T) {
	f := func(a, b Vector) bool { return Dot(a, b) == Dot(b, a) }
	if err := quick.Check(f, quickCfg(4)); err != nil {
		t.Error(err)
	}
}

func TestQuickCauchySchwarz(t *testing.T) {
	f := func(a, b Vector) bool {
		return Dot(a, b) <= Norm(a)*Norm(b)+1e-9
	}
	if err := quick.Check(f, quickCfg(5)); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionInclusionExclusion(t *testing.T) {
	f := func(a, b Vector) bool {
		return UnionCount(a, b) == a.Len()+b.Len()-CommonCount(a, b)
	}
	if err := quick.Check(f, quickCfg(6)); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectMatchesCount(t *testing.T) {
	f := func(a, b Vector) bool {
		inter := Intersect(nil, a, b)
		if len(inter) != CommonCount(a, b) {
			return false
		}
		for i, id := range inter {
			if !a.Contains(id) || !b.Contains(id) {
				return false
			}
			if i > 0 && inter[i-1] >= id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(7)); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectionCountViaContains(t *testing.T) {
	f := func(a, b Vector) bool {
		n := 0
		for _, id := range a.IDs {
			if b.Contains(id) {
				n++
			}
		}
		return n == CommonCount(a, b)
	}
	if err := quick.Check(f, quickCfg(8)); err != nil {
		t.Error(err)
	}
}

func TestQuickValidateGenerated(t *testing.T) {
	f := func(a, _ Vector) bool { return a.Validate() == nil }
	if err := quick.Check(f, quickCfg(9)); err != nil {
		t.Error(err)
	}
}

func TestQuickDotZeroOnDisjoint(t *testing.T) {
	// Shift b's ids out of a's range so the profiles are disjoint; the
	// similarity properties (paper Eq. 5) depend on Dot being exactly 0 here.
	f := func(a, b Vector) bool {
		shifted := b.Clone()
		for i := range shifted.IDs {
			shifted.IDs[i] += 1000
		}
		return Dot(a, shifted) == 0 && CommonCount(a, shifted) == 0
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Error(err)
	}
}
