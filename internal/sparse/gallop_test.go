package sparse

import (
	"math/rand"
	"testing"
)

// mergeCommon is the plain two-pointer reference the adaptive kernels
// must agree with.
func mergeCommon(a, b Vector) int {
	n := 0
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] == b.IDs[j]:
			n++
			i++
			j++
		case a.IDs[i] < b.IDs[j]:
			i++
		default:
			j++
		}
	}
	return n
}

func mergeDot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.IDs) && j < len(b.IDs) {
		switch {
		case a.IDs[i] == b.IDs[j]:
			s += a.Weight(i) * b.Weight(j)
			i++
			j++
		case a.IDs[i] < b.IDs[j]:
			i++
		default:
			j++
		}
	}
	return s
}

// TestGallopMatchesMerge: CommonCount and Dot agree with the reference
// merge on skewed pairs that force the galloping path, in both argument
// orders, bit for bit for the float accumulation.
func TestGallopMatchesMerge(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		// Short side up to 8 entries, long side well past gallopRatio×
		// that, so the adaptive cutover is exercised on every trial.
		short := randScratchVector(r, 5000, r.Intn(8), false)
		long := randScratchVector(r, 5000, gallopRatio*10+r.Intn(400), false)
		for _, pair := range [][2]Vector{{short, long}, {long, short}} {
			a, b := pair[0], pair[1]
			if got, want := CommonCount(a, b), mergeCommon(a, b); got != want {
				t.Fatalf("trial %d: CommonCount = %d, want %d (|a|=%d |b|=%d)",
					trial, got, want, a.Len(), b.Len())
			}
			if got, want := Dot(a, b), mergeDot(a, b); got != want {
				t.Fatalf("trial %d: Dot = %v, want %v (bit-exact; |a|=%d |b|=%d)",
					trial, got, want, a.Len(), b.Len())
			}
		}
	}
}

// TestGallopEdges covers the bracket boundaries: needle before, inside
// and after the haystack, empty sides, and single elements.
func TestGallopEdges(t *testing.T) {
	long := Vector{IDs: []uint32{10, 20, 30, 40, 50, 60, 70, 80, 90, 100,
		110, 120, 130, 140, 150, 160, 170, 180, 190, 200}}
	cases := []struct {
		short []uint32
		want  int
	}{
		{nil, 0},
		{[]uint32{5}, 0},
		{[]uint32{10}, 1},
		{[]uint32{200}, 1},
		{[]uint32{201}, 0},
		{[]uint32{10, 200}, 2},
		{[]uint32{5, 95, 205}, 0},
		{[]uint32{10, 20, 30}, 3},
	}
	for _, c := range cases {
		got := commonCountGallop(c.short, long.IDs)
		if got != c.want {
			t.Errorf("gallop(%v) = %d, want %d", c.short, got, c.want)
		}
	}
	if got := commonCountGallop([]uint32{1, 2, 3}, nil); got != 0 {
		t.Errorf("empty haystack: got %d, want 0", got)
	}
}
