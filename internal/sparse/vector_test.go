package sparse

import (
	"math"
	"testing"
)

func vec(ids ...uint32) Vector { return Vector{IDs: ids} }

func wvec(ids []uint32, ws []float64) Vector { return Vector{IDs: ids, Weights: ws} }

func TestLen(t *testing.T) {
	if got := vec().Len(); got != 0 {
		t.Errorf("empty Len = %d, want 0", got)
	}
	if got := vec(1, 2, 3).Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestIsBinary(t *testing.T) {
	if !vec(1).IsBinary() {
		t.Error("vector without weights should be binary")
	}
	if wvec([]uint32{1}, []float64{2}).IsBinary() {
		t.Error("vector with weights should not be binary")
	}
}

func TestWeight(t *testing.T) {
	b := vec(4, 9)
	if b.Weight(0) != 1 || b.Weight(1) != 1 {
		t.Error("binary weights must be 1")
	}
	w := wvec([]uint32{4, 9}, []float64{0.5, 3})
	if w.Weight(0) != 0.5 || w.Weight(1) != 3 {
		t.Errorf("weights = %v,%v want 0.5,3", w.Weight(0), w.Weight(1))
	}
}

func TestContains(t *testing.T) {
	v := vec(2, 5, 8, 13, 99)
	for _, id := range []uint32{2, 5, 8, 13, 99} {
		if !v.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []uint32{0, 1, 3, 14, 100, 1 << 30} {
		if v.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
	if vec().Contains(7) {
		t.Error("empty vector should contain nothing")
	}
}

func TestWeightOf(t *testing.T) {
	v := wvec([]uint32{3, 7, 11}, []float64{1.5, -2, 4})
	cases := []struct {
		id   uint32
		want float64
	}{{3, 1.5}, {7, -2}, {11, 4}, {0, 0}, {8, 0}, {12, 0}}
	for _, c := range cases {
		if got := v.WeightOf(c.id); got != c.want {
			t.Errorf("WeightOf(%d) = %v, want %v", c.id, got, c.want)
		}
	}
	b := vec(3, 7)
	if b.WeightOf(3) != 1 {
		t.Error("binary WeightOf member must be 1")
	}
	if b.WeightOf(4) != 0 {
		t.Error("binary WeightOf non-member must be 0")
	}
}

func TestClone(t *testing.T) {
	v := wvec([]uint32{1, 2}, []float64{3, 4})
	c := v.Clone()
	c.IDs[0] = 99
	c.Weights[0] = 99
	if v.IDs[0] != 1 || v.Weights[0] != 3 {
		t.Error("Clone must be a deep copy")
	}
	b := vec(1, 2).Clone()
	if b.Weights != nil {
		t.Error("Clone of binary vector must stay binary")
	}
}

func TestValidate(t *testing.T) {
	valid := []Vector{
		vec(),
		vec(1),
		vec(1, 2, 900),
		wvec([]uint32{5, 6}, []float64{1, 2}),
	}
	for i, v := range valid {
		if err := v.Validate(); err != nil {
			t.Errorf("case %d: Validate() = %v, want nil", i, err)
		}
	}
	invalid := []Vector{
		vec(2, 1),
		vec(1, 1),
		wvec([]uint32{1, 2}, []float64{1}),
	}
	for i, v := range invalid {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error", i)
		}
	}
}

func TestCommonCount(t *testing.T) {
	cases := []struct {
		a, b Vector
		want int
	}{
		{vec(), vec(), 0},
		{vec(1, 2, 3), vec(), 0},
		{vec(1, 2, 3), vec(1, 2, 3), 3},
		{vec(1, 3, 5), vec(2, 4, 6), 0},
		{vec(1, 3, 5, 7), vec(3, 7, 9), 2},
		{vec(10), vec(5, 10, 15), 1},
	}
	for i, c := range cases {
		if got := CommonCount(c.a, c.b); got != c.want {
			t.Errorf("case %d: CommonCount = %d, want %d", i, got, c.want)
		}
		if got := CommonCount(c.b, c.a); got != c.want {
			t.Errorf("case %d: CommonCount not symmetric: %d != %d", i, got, c.want)
		}
	}
}

func TestDotBinaryEqualsCommonCount(t *testing.T) {
	a, b := vec(1, 4, 6, 9), vec(2, 4, 9, 12)
	if got, want := Dot(a, b), float64(CommonCount(a, b)); got != want {
		t.Errorf("binary Dot = %v, want %v", got, want)
	}
}

func TestDotWeighted(t *testing.T) {
	a := wvec([]uint32{1, 2, 3}, []float64{1, 2, 3})
	b := wvec([]uint32{2, 3, 4}, []float64{10, 100, 1000})
	// shared: 2 (2*10) and 3 (3*100)
	if got := Dot(a, b); got != 320 {
		t.Errorf("Dot = %v, want 320", got)
	}
}

func TestDotMixedBinaryWeighted(t *testing.T) {
	a := vec(1, 2, 3)
	b := wvec([]uint32{2, 3, 4}, []float64{10, 100, 1000})
	if got := Dot(a, b); got != 110 {
		t.Errorf("mixed Dot = %v, want 110", got)
	}
}

func TestNorm(t *testing.T) {
	if got := Norm(vec(1, 2, 3, 4)); got != 2 {
		t.Errorf("binary Norm = %v, want 2", got)
	}
	w := wvec([]uint32{1, 2}, []float64{3, 4})
	if got := Norm(w); got != 5 {
		t.Errorf("weighted Norm = %v, want 5", got)
	}
	if got := Norm(vec()); got != 0 {
		t.Errorf("empty Norm = %v, want 0", got)
	}
}

func TestUnionCount(t *testing.T) {
	a, b := vec(1, 2, 3), vec(3, 4)
	if got := UnionCount(a, b); got != 4 {
		t.Errorf("UnionCount = %d, want 4", got)
	}
	if got := UnionCount(vec(), vec()); got != 0 {
		t.Errorf("empty UnionCount = %d, want 0", got)
	}
}

func TestIntersect(t *testing.T) {
	a, b := vec(1, 3, 5, 7), vec(3, 4, 7, 9)
	got := Intersect(nil, a, b)
	want := []uint32{3, 7}
	if len(got) != len(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
	}
	// Buffer reuse appends.
	got2 := Intersect(got[:0], a, b)
	if &got2[0] != &got[0] {
		t.Error("Intersect should reuse the destination buffer")
	}
}

func TestFromMap(t *testing.T) {
	m := map[uint32]float64{9: 2.5, 1: 1.5, 5: 3.5}
	v := FromMap(m, false)
	if err := v.Validate(); err != nil {
		t.Fatalf("FromMap produced invalid vector: %v", err)
	}
	if v.Len() != 3 || v.IDs[0] != 1 || v.IDs[1] != 5 || v.IDs[2] != 9 {
		t.Fatalf("FromMap ids = %v", v.IDs)
	}
	if v.Weights[0] != 1.5 || v.Weights[1] != 3.5 || v.Weights[2] != 2.5 {
		t.Fatalf("FromMap weights = %v", v.Weights)
	}
	b := FromMap(m, true)
	if !b.IsBinary() {
		t.Error("FromMap(binary) must produce a binary vector")
	}
}

func TestNormWeightedMatchesDotSelf(t *testing.T) {
	v := wvec([]uint32{1, 4, 5}, []float64{-1, 2, 2})
	if got, want := Norm(v), math.Sqrt(Dot(v, v)); math.Abs(got-want) > 1e-12 {
		t.Errorf("Norm = %v, want sqrt(Dot(v,v)) = %v", got, want)
	}
}
