package sparse

import "math"

// Scratch is an epoch-stamped dense accumulator over an ID space, the
// backing store of the one-vs-many similarity kernels (similarity.
// BatchMetric). A pivot profile is scattered once — each of its IDs
// stamped with the current epoch and, optionally, a weight — and every
// candidate is then scored with a single gather over the candidate's own
// profile: an ID is shared iff its stamp matches the current epoch. This
// turns the O(|u|+|v|) two-pointer merge per pair into O(|u|) once per
// pivot plus O(|v|) per candidate, with one predictable branch per
// element instead of the merge's data-dependent three-way branch.
//
// Epoch stamping makes re-use free: Begin starts a new epoch instead of
// clearing the arrays, so scoring a new pivot costs only the scatter.
// A Scratch is single-goroutine scratch memory; batch phases allocate one
// per worker.
type Scratch struct {
	epoch   []uint32
	weights []float64
	cur     uint32
}

// Begin starts a new epoch and grows the stamp domain to cover IDs in
// [0, domain). Previously stamped entries become stale wholesale; no
// clearing happens (epoch wrap-around excepted, every ~4 billion pivots).
// Growth is geometric (at least doubling), so a stream of pivots whose
// max ID creeps upward costs amortized O(domain) copying, not a
// reallocation per pivot.
func (s *Scratch) Begin(domain int) {
	if domain > len(s.epoch) {
		if double := 2 * len(s.epoch); domain < double {
			domain = double
		}
		grown := make([]uint32, domain)
		copy(grown, s.epoch)
		s.epoch = grown
	}
	s.cur++
	if s.cur == 0 { // wrapped: stale stamps could collide; hard-reset
		clear(s.epoch)
		clear(s.weights)
		s.cur = 1
	}
}

// Domain returns the current stamp domain (the capacity Begin ensured).
func (s *Scratch) Domain() int { return len(s.epoch) }

// Mark stamps id into the current epoch without a weight (count-only
// gathers). id must be < the domain passed to Begin.
func (s *Scratch) Mark(id uint32) { s.epoch[id] = s.cur }

// Set stamps id into the current epoch carrying weight w. id must be <
// the domain passed to Begin.
func (s *Scratch) Set(id uint32, w float64) {
	if len(s.weights) < len(s.epoch) {
		grown := make([]float64, len(s.epoch))
		copy(grown, s.weights)
		s.weights = grown
	}
	s.epoch[id] = s.cur
	s.weights[id] = w
}

// Stamp begins a new epoch sized to v's largest ID and scatters v's
// profile: every ID marked, with its weight when v is weighted. It is
// the standard pivot scatter of the similarity kernels.
func (s *Scratch) Stamp(v Vector) {
	if len(v.IDs) == 0 {
		s.Begin(0)
		return
	}
	s.Begin(int(v.IDs[len(v.IDs)-1]) + 1)
	if v.Weights == nil {
		for _, id := range v.IDs {
			s.epoch[id] = s.cur
		}
		return
	}
	if len(s.weights) < len(s.epoch) {
		grown := make([]float64, len(s.epoch))
		copy(grown, s.weights)
		s.weights = grown
	}
	for i, id := range v.IDs {
		s.epoch[id] = s.cur
		s.weights[id] = v.Weights[i]
	}
}

// CountCommon gathers |pivot ∩ v|: the number of v's IDs stamped in the
// current epoch. IDs at or beyond the domain cannot be stamped and are
// skipped.
func (s *Scratch) CountCommon(v Vector) int {
	ep, cur := s.epoch, s.cur
	n := 0
	for _, id := range v.IDs {
		if int(id) < len(ep) && ep[id] == cur {
			n++
		}
	}
	return n
}

// DotCount gathers the dot product Σ w_pivot(i)·w_v(i) over the shared
// IDs along with the shared count. The shared IDs are visited in
// ascending order (v's profile order), matching the pairwise merge's
// accumulation order, so the result is bit-identical to Dot. The pivot
// must have been scattered with weights (Stamp of a weighted vector, or
// Set); a binary pivot should be stamped with weight 1 via StampOnes.
func (s *Scratch) DotCount(v Vector) (dot float64, common int) {
	ep, cur := s.epoch, s.cur
	w := s.weights
	if v.Weights == nil {
		for _, id := range v.IDs {
			if int(id) < len(ep) && ep[id] == cur {
				dot += w[id]
				common++
			}
		}
		return dot, common
	}
	for i, id := range v.IDs {
		if int(id) < len(ep) && ep[id] == cur {
			dot += w[id] * v.Weights[i]
			common++
		}
	}
	return dot, common
}

// StampOnes begins a new epoch and scatters v's IDs with weight 1
// regardless of v's own weights — the pivot scatter for dot products
// where the pivot side is binary.
func (s *Scratch) StampOnes(v Vector) {
	if len(v.IDs) == 0 {
		s.Begin(0)
		return
	}
	s.Begin(int(v.IDs[len(v.IDs)-1]) + 1)
	if len(s.weights) < len(s.epoch) {
		grown := make([]float64, len(s.epoch))
		copy(grown, s.weights)
		s.weights = grown
	}
	for _, id := range v.IDs {
		s.epoch[id] = s.cur
		s.weights[id] = 1
	}
}

// SumCommon gathers Σ w_pivot(i) over the shared IDs along with the
// shared count, ignoring v's weights — the gather shape of Adamic–Adar,
// where the stamped weight is the item's 1/ln|IPi| term.
func (s *Scratch) SumCommon(v Vector) (sum float64, common int) {
	ep, cur := s.epoch, s.cur
	w := s.weights
	for _, id := range v.IDs {
		if int(id) < len(ep) && ep[id] == cur {
			sum += w[id]
			common++
		}
	}
	return sum, common
}

// forceWrap is a test hook: it puts the epoch counter on the verge of
// wrap-around so the next Begin exercises the hard reset.
func (s *Scratch) forceWrap() { s.cur = math.MaxUint32 }
