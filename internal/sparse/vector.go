// Package sparse implements the sparse profile vectors that back every
// user and item profile in the system.
//
// A profile is a dictionary from item (or user) identifiers to ratings
// (paper §III-A: UPu associates the items rated by u to their rating).
// Profiles over large ID spaces are extremely sparse — the datasets in the
// paper have densities between 0.001% and 0.7% — so they are stored as a
// pair of parallel slices sorted by ascending ID. All pairwise operations
// (intersection counting, dot products, unions) are linear merges.
package sparse

// Vector is a sparse vector over uint32 identifiers.
type Vector struct {
	// IDs holds the member identifiers in strictly ascending order.
	IDs []uint32
	// Weights holds the rating for each ID. A nil Weights slice denotes a
	// binary profile (every rating is 1), the single-valued special case of
	// §III-A, and is the memory-efficient common case.
	Weights []float64
}

// Len returns the number of entries in the vector (|UPu| in the paper).
func (v Vector) Len() int { return len(v.IDs) }

// IsBinary reports whether the vector carries no explicit weights.
func (v Vector) IsBinary() bool { return v.Weights == nil }

// Weight returns the weight of the entry at position i, which is 1 for
// binary vectors.
func (v Vector) Weight(i int) float64 {
	if v.Weights == nil {
		return 1
	}
	return v.Weights[i]
}

// Contains reports whether id is a member of the vector using binary search.
func (v Vector) Contains(id uint32) bool {
	lo, hi := 0, len(v.IDs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.IDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(v.IDs) && v.IDs[lo] == id
}

// WeightOf returns the weight associated with id, or 0 if id is absent.
func (v Vector) WeightOf(id uint32) float64 {
	lo, hi := 0, len(v.IDs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.IDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.IDs) && v.IDs[lo] == id {
		return v.Weight(lo)
	}
	return 0
}

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	out := Vector{IDs: append([]uint32(nil), v.IDs...)}
	if v.Weights != nil {
		out.Weights = append([]float64(nil), v.Weights...)
	}
	return out
}

// Validate reports whether the vector is well formed: IDs strictly
// ascending and Weights either nil or of matching length.
func (v Vector) Validate() error {
	if v.Weights != nil && len(v.Weights) != len(v.IDs) {
		return errLengthMismatch
	}
	for i := 1; i < len(v.IDs); i++ {
		if v.IDs[i-1] >= v.IDs[i] {
			return errUnsorted
		}
	}
	return nil
}

type sparseError string

func (e sparseError) Error() string { return string(e) }

const (
	errLengthMismatch = sparseError("sparse: weights length does not match ids length")
	errUnsorted       = sparseError("sparse: ids not strictly ascending")
)
