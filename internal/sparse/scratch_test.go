package sparse

import (
	"math/rand"
	"testing"
)

// randScratchVector draws a sorted sparse vector over [0, domain) with
// about n entries; weighted with probability ½ unless forceBinary.
func randScratchVector(r *rand.Rand, domain, n int, forceBinary bool) Vector {
	seen := map[uint32]bool{}
	for i := 0; i < n; i++ {
		seen[uint32(r.Intn(domain))] = true
	}
	m := map[uint32]float64{}
	for id := range seen {
		m[id] = float64(1 + r.Intn(9))
	}
	return FromMap(m, forceBinary || r.Intn(2) == 0)
}

// TestScratchGatherMatchesMerge: the scatter/gather primitives agree with
// the pairwise merge kernels on random vectors, bit for bit, across
// re-uses of the same scratch (epoch discipline) and across sparse and
// dense ID domains.
func TestScratchGatherMatchesMerge(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var s Scratch
	for trial := 0; trial < 500; trial++ {
		domain := 1 + r.Intn(200)
		if trial%7 == 0 {
			domain = 1 + r.Intn(100_000) // |I| ≫ |profile| shapes
		}
		a := randScratchVector(r, domain, r.Intn(30), false)
		b := randScratchVector(r, domain, r.Intn(30), false)

		s.Stamp(Vector{IDs: a.IDs})
		if got, want := s.CountCommon(b), CommonCount(a, b); got != want {
			t.Fatalf("trial %d: CountCommon = %d, want %d", trial, got, want)
		}

		if a.IsBinary() {
			s.StampOnes(a)
		} else {
			s.Stamp(a)
		}
		dot, common := s.DotCount(b)
		if want := Dot(a, b); dot != want {
			t.Fatalf("trial %d: DotCount dot = %v, want %v (bit-exact)", trial, dot, want)
		}
		if want := CommonCount(a, b); common != want {
			t.Fatalf("trial %d: DotCount common = %d, want %d", trial, common, want)
		}

		// SumCommon with all-ones stamps is the common count again.
		s.StampOnes(a)
		sum, n := s.SumCommon(b)
		if want := CommonCount(a, b); n != want || sum != float64(want) {
			t.Fatalf("trial %d: SumCommon = (%v, %d), want (%v, %d)", trial, sum, n, float64(want), want)
		}
	}
}

// TestScratchEmptyAndDisjoint covers the degenerate shapes: empty pivot,
// empty candidate, and candidates whose IDs lie wholly beyond the
// stamped domain.
func TestScratchEmptyAndDisjoint(t *testing.T) {
	var s Scratch
	s.Stamp(Vector{})
	if got := s.CountCommon(Vector{IDs: []uint32{1, 2, 3}}); got != 0 {
		t.Errorf("empty pivot: CountCommon = %d, want 0", got)
	}
	s.Stamp(Vector{IDs: []uint32{1, 2, 3}})
	if got := s.CountCommon(Vector{}); got != 0 {
		t.Errorf("empty candidate: CountCommon = %d, want 0", got)
	}
	// IDs beyond the stamped domain cannot match and must not panic.
	if got := s.CountCommon(Vector{IDs: []uint32{100, 5000}}); got != 0 {
		t.Errorf("out-of-domain candidate: CountCommon = %d, want 0", got)
	}
	if dot, n := s.SumCommon(Vector{IDs: []uint32{100}}); dot != 0 || n != 0 {
		t.Errorf("out-of-domain SumCommon = (%v, %d), want (0, 0)", dot, n)
	}
}

// TestScratchEpochWrap forces the uint32 epoch counter to wrap and checks
// that stale stamps do not leak into the fresh epoch.
func TestScratchEpochWrap(t *testing.T) {
	var s Scratch
	s.Stamp(Vector{IDs: []uint32{1, 2, 3}, Weights: []float64{5, 6, 7}})
	s.forceWrap()
	s.Stamp(Vector{IDs: []uint32{9}})
	if got := s.CountCommon(Vector{IDs: []uint32{1, 2, 3}}); got != 0 {
		t.Fatalf("stale stamps visible after epoch wrap: CountCommon = %d, want 0", got)
	}
	if got := s.CountCommon(Vector{IDs: []uint32{9}}); got != 1 {
		t.Fatalf("fresh stamp lost after epoch wrap: CountCommon = %d, want 1", got)
	}
}

// TestScratchDomainGrowth: the domain grows monotonically with the
// largest stamped ID and gathers stay correct across growth.
func TestScratchDomainGrowth(t *testing.T) {
	var s Scratch
	s.Stamp(Vector{IDs: []uint32{3}})
	if s.Domain() != 4 {
		t.Fatalf("Domain = %d, want 4", s.Domain())
	}
	s.Stamp(Vector{IDs: []uint32{3, 4095}})
	if s.Domain() != 4096 {
		t.Fatalf("Domain = %d, want 4096", s.Domain())
	}
	if got := s.CountCommon(Vector{IDs: []uint32{3, 4095}}); got != 2 {
		t.Fatalf("post-growth CountCommon = %d, want 2", got)
	}
	// Shrinking pivots keep the larger domain (no reallocation churn).
	s.Stamp(Vector{IDs: []uint32{1}})
	if s.Domain() != 4096 {
		t.Fatalf("Domain shrank to %d", s.Domain())
	}
	// Creeping max IDs grow geometrically: one step past the domain must
	// at least double it rather than realloc per pivot.
	s.Stamp(Vector{IDs: []uint32{4096}})
	if s.Domain() < 2*4096 {
		t.Fatalf("creeping growth not geometric: Domain = %d, want ≥ %d", s.Domain(), 2*4096)
	}
	if got := s.CountCommon(Vector{IDs: []uint32{4096}}); got != 1 {
		t.Fatalf("post-geometric-growth CountCommon = %d, want 1", got)
	}
}
