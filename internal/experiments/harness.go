// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV–V). Each experiment lives in its own file, returns a
// typed result, and can render itself as a text table whose rows mirror
// the paper's. The cmd/kiffbench binary and the root bench_test.go both
// drive this package; DESIGN.md §4 maps experiment IDs to files.
package experiments

import (
	"fmt"
	"io"
	"time"

	"kiff/internal/bruteforce"
	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/hyrec"
	"kiff/internal/knngraph"
	"kiff/internal/nndescent"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Options configures a harness run.
type Options struct {
	// Scale multiplies the published dataset sizes (1 = paper scale).
	Scale float64
	// Seed drives every stochastic component.
	Seed int64
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// RecallSample bounds the number of users for which exact ground truth
	// is computed (0 = all users; the paper brute-forces everything).
	RecallSample int
	// KCap, when > 0, caps every per-dataset k. The paper's k values
	// (20, DBLP 50) stand by default; the cap exists so tests and smoke
	// runs on shrunken datasets stay proportionate — NN-Descent's local
	// join grows quadratically with k.
	KCap int
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
	// DataDir, when non-empty, receives one plot-ready .tsv file per
	// figure series (for gnuplot or external plotting).
	DataDir string
}

// DefaultOptions returns a laptop-friendly configuration: quarter-scale
// datasets and sampled recall.
func DefaultOptions() Options {
	return Options{Scale: 0.25, Seed: 42, RecallSample: 1000}
}

// Harness caches datasets and ground truth across experiments so a full
// `kiffbench -exp all` run generates each dataset once.
type Harness struct {
	Opts     Options
	datasets map[string]*dataset.Dataset
	mlFamily []*dataset.Dataset
	exacts   map[string]*knngraph.Exact
	runs     map[string]AlgoRun
}

// New creates a harness.
func New(opts Options) *Harness {
	if opts.Scale <= 0 {
		opts.Scale = 0.25
	}
	return &Harness{
		Opts:     opts,
		datasets: make(map[string]*dataset.Dataset),
		exacts:   make(map[string]*knngraph.Exact),
		runs:     make(map[string]AlgoRun),
	}
}

// displayNames maps engine registry keys to the labels the paper's
// tables use.
var displayNames = map[string]string{
	"kiff":        "KIFF",
	"nn-descent":  "NN-Descent",
	"hyrec":       "HyRec",
	"brute-force": "Brute force",
}

func displayName(algo string) string {
	if name, ok := displayNames[algo]; ok {
		return name
	}
	return algo
}

// DefaultRun memoizes the paper-default run of one algorithm on one
// dataset, dispatching through the engine registry (every builder's
// Normalize supplies its paper defaults for k). Table II, Figs 1 and 5,
// and Tables IV–VI all report on exactly these runs, so a full
// `kiffbench -exp all` executes each once.
func (h *Harness) DefaultRun(algo string, d *dataset.Dataset, k int) (AlgoRun, error) {
	key := fmt.Sprintf("%s/%s/%d", algo, d.Name, k)
	if ar, ok := h.runs[key]; ok {
		return ar, nil
	}
	res, err := engine.Build(algo, d, engine.Options{
		K:       k,
		Workers: h.Opts.Workers,
		Seed:    h.Opts.Seed,
	})
	if err != nil {
		return AlgoRun{}, err
	}
	ar := AlgoRun{
		Algorithm: displayName(algo),
		Dataset:   d.Name,
		Recall:    h.Exact(d, k).Recall(res.Graph),
		WallTime:  res.Run.WallTime,
		ScanRate:  res.Run.ScanRate(),
		Iters:     res.Run.Iterations,
		Run:       res.Run,
	}
	ar.RCS.Duration = res.RCS.Duration
	ar.RCS.AvgLen = res.RCS.AvgLen
	ar.RCS.Total = res.RCS.TotalCandidates
	h.runs[key] = ar
	return ar, nil
}

// K applies Options.KCap to a paper k value.
func (h *Harness) K(paperK int) int {
	if h.Opts.KCap > 0 && paperK > h.Opts.KCap {
		return h.Opts.KCap
	}
	return paperK
}

func (h *Harness) out() io.Writer {
	if h.Opts.Out == nil {
		return io.Discard
	}
	return h.Opts.Out
}

func (h *Harness) printf(format string, args ...any) {
	fmt.Fprintf(h.out(), format, args...)
}

// Dataset returns the (cached) synthetic replica of a preset.
func (h *Harness) Dataset(p dataset.Preset) (*dataset.Dataset, error) {
	if d, ok := h.datasets[string(p)]; ok {
		return d, nil
	}
	d, err := p.Generate(h.Opts.Scale, h.Opts.Seed)
	if err != nil {
		return nil, err
	}
	h.datasets[string(p)] = d
	return d, nil
}

// MovieLens returns the (cached) ML-1..ML-5 density family of Table IX.
func (h *Harness) MovieLens() ([]*dataset.Dataset, error) {
	if h.mlFamily != nil {
		return h.mlFamily, nil
	}
	fam, err := dataset.MovieLensFamily(h.Opts.Scale, h.Opts.Seed)
	if err != nil {
		return nil, err
	}
	h.mlFamily = fam
	return fam, nil
}

// Exact returns (cached) ground truth for recall measurements on d,
// sampled according to Options.RecallSample.
func (h *Harness) Exact(d *dataset.Dataset, k int) *knngraph.Exact {
	key := fmt.Sprintf("%s/%d", d.Name, k)
	if e, ok := h.exacts[key]; ok {
		return e
	}
	var e *knngraph.Exact
	if h.Opts.RecallSample > 0 && h.Opts.RecallSample < d.NumUsers() {
		e = bruteforce.Sampled(d, similarity.Cosine{}, k, h.Opts.RecallSample, h.Opts.Seed, h.Opts.Workers)
	} else {
		e = bruteforce.Exact(d, similarity.Cosine{}, k, h.Opts.Workers)
	}
	h.exacts[key] = e
	return e
}

// AlgoRun is one (algorithm, dataset) measurement: the Table II row unit.
type AlgoRun struct {
	Algorithm string
	Dataset   string
	Recall    float64
	WallTime  time.Duration
	ScanRate  float64
	Iters     int
	Run       runstats.Run
	// RCS carries KIFF's counting-phase stats when Algorithm == "kiff".
	RCS struct {
		Duration time.Duration
		AvgLen   float64
		Total    int
	}
}

// RunKIFF executes KIFF with the given config and scores its recall.
func (h *Harness) RunKIFF(d *dataset.Dataset, cfg core.Config) (AlgoRun, error) {
	cfg.Workers = h.Opts.Workers
	res, err := core.Build(d, cfg)
	if err != nil {
		return AlgoRun{}, err
	}
	ar := AlgoRun{
		Algorithm: "KIFF",
		Dataset:   d.Name,
		Recall:    h.Exact(d, cfg.K).Recall(res.Graph),
		WallTime:  res.Run.WallTime,
		ScanRate:  res.Run.ScanRate(),
		Iters:     res.Run.Iterations,
		Run:       res.Run,
	}
	ar.RCS.Duration = res.RCS.Duration
	ar.RCS.AvgLen = res.RCS.AvgLen
	ar.RCS.Total = res.RCS.TotalCandidates
	return ar, nil
}

// RunNNDescent executes NN-Descent with the given config and scores it.
func (h *Harness) RunNNDescent(d *dataset.Dataset, cfg nndescent.Config) (AlgoRun, error) {
	cfg.Workers = h.Opts.Workers
	cfg.Seed = h.Opts.Seed
	res, err := nndescent.Build(d, cfg)
	if err != nil {
		return AlgoRun{}, err
	}
	return AlgoRun{
		Algorithm: "NN-Descent",
		Dataset:   d.Name,
		Recall:    h.Exact(d, cfg.K).Recall(res.Graph),
		WallTime:  res.Run.WallTime,
		ScanRate:  res.Run.ScanRate(),
		Iters:     res.Run.Iterations,
		Run:       res.Run,
	}, nil
}

// RunHyRec executes HyRec with the given config and scores it.
func (h *Harness) RunHyRec(d *dataset.Dataset, cfg hyrec.Config) (AlgoRun, error) {
	cfg.Workers = h.Opts.Workers
	cfg.Seed = h.Opts.Seed
	res, err := hyrec.Build(d, cfg)
	if err != nil {
		return AlgoRun{}, err
	}
	return AlgoRun{
		Algorithm: "HyRec",
		Dataset:   d.Name,
		Recall:    h.Exact(d, cfg.K).Recall(res.Graph),
		WallTime:  res.Run.WallTime,
		ScanRate:  res.Run.ScanRate(),
		Iters:     res.Run.Iterations,
		Run:       res.Run,
	}, nil
}

// seconds renders a duration with the precision the paper's tables use.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}

// pct renders a ratio as a percentage.
func pct(x float64) string {
	return fmt.Sprintf("%.2f%%", 100*x)
}

// rule prints a horizontal separator sized for the harness tables.
func (h *Harness) rule() {
	h.printf("%s\n", "--------------------------------------------------------------------------------")
}
