package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// tinyHarness runs experiments at 1% scale with exact recall and a k cap
// so the whole suite stays CI-sized (NN-Descent's local join is quadratic
// in k, and the paper's DBLP k=50 is sized for 715k users, not 7k).
func tinyHarness() *Harness {
	return New(Options{Scale: 0.01, Seed: 42, RecallSample: 0, KCap: 12})
}

// skipIfShort gates the experiments that construct graphs (most of the
// suite's minute of runtime); `go test -short` keeps only the cheap
// dataset-shape checks.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping graph-construction experiment in -short mode")
	}
}

// The Table II study is the most expensive experiment; tests that need it
// share one harness (and its dataset + ground-truth caches) and one run.
var (
	sharedOnce sync.Once
	sharedH    *Harness
	sharedT2   *Table2Result
	sharedErr  error
)

func sharedTable2(t *testing.T) (*Harness, *Table2Result) {
	t.Helper()
	sharedOnce.Do(func() {
		sharedH = tinyHarness()
		sharedT2, sharedErr = sharedH.Table2()
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedH, sharedT2
}

func TestTable1ShapesMatchPresets(t *testing.T) {
	h := tinyHarness()
	res, err := h.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Table1 rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Users <= 0 || row.Items <= 0 || row.Ratings <= 0 {
			t.Errorf("%s: degenerate stats %+v", row.Name, row)
		}
		if row.Density <= 0 || row.Density >= 1 {
			t.Errorf("%s: density %v out of range", row.Name, row.Density)
		}
	}
	// Arxiv and DBLP are co-authorship: |U| = |I|.
	for _, i := range []int{0, 3} {
		if res.Rows[i].Users != res.Rows[i].Items {
			t.Errorf("%s: co-authorship must have |U|=|I|", res.Rows[i].Name)
		}
	}
}

func TestFig1SimilarityDominates(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakdowns) != 2 {
		t.Fatalf("Fig1 rows = %d, want 2", len(res.Breakdowns))
	}
	for _, b := range res.Breakdowns {
		// Fig 1's headline: similarity computation is the dominant cost of
		// the greedy baselines. At tiny scale the margin shrinks, so only
		// require a majority share.
		if b.SimilarityFrac < 0.5 {
			t.Errorf("%s: similarity fraction %.2f, want > 0.5", b.Algorithm, b.SimilarityFrac)
		}
	}
}

func TestFig4LongTails(t *testing.T) {
	h := tinyHarness()
	res, err := h.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("Fig4 series = %d, want 4", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.User) == 0 || len(s.Item) == 0 {
			t.Errorf("%s: empty CCDF", s.Dataset)
		}
		if s.User[0].P != 1 {
			t.Errorf("%s: CCDF must start at 1", s.Dataset)
		}
	}
}

func TestTable2And3Shape(t *testing.T) {
	skipIfShort(t)
	h, t2 := sharedTable2(t)
	if len(t2.Datasets) != 4 {
		t.Fatalf("Table2 datasets = %d, want 4", len(t2.Datasets))
	}
	for _, row := range t2.Datasets {
		for _, ar := range []AlgoRun{row.NNDescent, row.HyRec, row.KIFF} {
			if ar.Recall < 0 || ar.Recall > 1 {
				t.Errorf("%s/%s: recall %v out of range", row.Dataset, ar.Algorithm, ar.Recall)
			}
			if ar.Iters < 1 {
				t.Errorf("%s/%s: no iterations", row.Dataset, ar.Algorithm)
			}
		}
		// KIFF's core cost claim: strictly fewer similarity evaluations.
		if row.KIFF.ScanRate >= row.NNDescent.ScanRate {
			t.Errorf("%s: KIFF scan rate %.4f not below NN-Descent %.4f",
				row.Dataset, row.KIFF.ScanRate, row.NNDescent.ScanRate)
		}
		// The quality claim, stated scale-robustly: on the shrunken test
		// graphs NN-Descent's scan rate can exceed 100% (it effectively
		// brute-forces), so KIFF "losing" a point of recall to it is not
		// meaningful; KIFF must stay within 0.05 of the best baseline
		// everywhere and must dominate HyRec, whose budget is comparable.
		best := row.NNDescent.Recall
		if row.HyRec.Recall > best {
			best = row.HyRec.Recall
		}
		if row.KIFF.Recall < best-0.05 {
			t.Errorf("%s: KIFF recall %.3f more than 0.05 below best baseline %.3f",
				row.Dataset, row.KIFF.Recall, best)
		}
		if row.KIFF.Recall+1e-9 < row.HyRec.Recall {
			t.Errorf("%s: KIFF recall %.3f below HyRec %.3f",
				row.Dataset, row.KIFF.Recall, row.HyRec.Recall)
		}
	}
	t3 := h.Table3(t2)
	if t3.DRecallAvg < 0 {
		t.Errorf("average recall gain %v, want ≥ 0", t3.DRecallAvg)
	}
}

func TestTable4OverheadSmall(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Table4 rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.UPOnly <= 0 || row.UPAndIP <= 0 {
			t.Errorf("%s: missing load timings", row.Dataset)
		}
		// The paper's point: the overhead is a small fraction of total time.
		if row.DeltaOfTime > 0.5 {
			t.Errorf("%s: item-profile overhead %.0f%% implausibly high", row.Dataset, 100*row.DeltaOfTime)
		}
	}
}

func TestTable5RCSWithinBudget(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.AvgLen <= 0 {
			t.Errorf("%s: empty RCSs", row.Dataset)
		}
		if row.MaxScanRate <= 0 || row.MaxScanRate > 2 {
			t.Errorf("%s: max scan rate %v out of range", row.Dataset, row.MaxScanRate)
		}
	}
}

func TestFig5BreakdownConsistent(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bars) != 12 {
		t.Fatalf("Fig5 bars = %d, want 12 (3 algos × 4 datasets)", len(res.Bars))
	}
	for _, b := range res.Bars {
		sum := b.Preprocess + b.Candidates + b.Similarity
		if sum > b.Total*3/2 {
			t.Errorf("%s/%s: phases (%v) exceed total (%v) badly", b.Dataset, b.Algorithm, sum, b.Total)
		}
	}
}

func TestFig6Table6Consistent(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	fig, tab, err := h.Fig6Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 || len(tab.Rows) != 4 {
		t.Fatal("Fig6/Table6 must cover the 4 datasets")
	}
	for i, s := range fig.Series {
		// |RCS|cut = #iters × γ with γ = 2k (k possibly capped).
		if iters := tab.Rows[i].Iters; iters > 0 && s.Cut%iters != 0 {
			t.Errorf("%s: cut %d not a multiple of iters %d", s.Dataset, s.Cut, iters)
		}
		if s.Cut <= 0 {
			t.Errorf("%s: cut %d must be positive", s.Dataset, s.Cut)
		}
		if s.Trunc < 0 || s.Trunc > 1 {
			t.Errorf("%s: truncation fraction %v", s.Dataset, s.Trunc)
		}
	}
}

func TestFig7PositiveCorrelation(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// At tiny scale few users are truncated; when some are, the counting
	// order must correlate positively with both metrics (the paper's
	// claim that truncation does not exclude good candidates).
	if len(res.Points) > 0 {
		if res.MeanJaccard <= 0 || res.MeanCosine <= 0 {
			t.Errorf("mean Spearman J=%v C=%v, want > 0", res.MeanJaccard, res.MeanCosine)
		}
	}
}

func TestTable7InitializationGap(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Table7 rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TopKRecall <= row.RandRecall {
			t.Errorf("%s: RCS init %.2f not better than random %.2f",
				row.Dataset, row.TopKRecall, row.RandRecall)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("Fig8 series = %d, want 3", len(res.Series))
	}
	var kiff, nnd Fig8Series
	for _, s := range res.Series {
		switch s.Algorithm {
		case "KIFF":
			kiff = s
		case "NN-Descent":
			nnd = s
		}
	}
	if len(kiff.Points) == 0 || len(nnd.Points) == 0 {
		t.Fatal("missing traces")
	}
	// The paper's headline convergence contrast: KIFF's first iteration
	// already delivers a strong approximation (0.82 on Arxiv) at a far
	// smaller scan rate than NN-Descent's first iteration, whose random
	// init plus local join burns through similarity evaluations. (On the
	// shrunken test graph NN-Descent's first join is near-exhaustive, so
	// absolute first-iteration recalls are not comparable across
	// algorithms here; the cost side is.)
	if kiff.Points[0].Recall < 0.4 {
		t.Errorf("KIFF first-iter recall %.2f, want ≥ 0.4 (RCS head start)", kiff.Points[0].Recall)
	}
	if kiff.Points[0].ScanRate >= nnd.Points[0].ScanRate {
		t.Errorf("KIFF first-iter scan rate %.4f not below NN-Descent %.4f",
			kiff.Points[0].ScanRate, nnd.Points[0].ScanRate)
	}
	// And it finishes with less similarity work.
	if kiff.Points[len(kiff.Points)-1].ScanRate >= nnd.Points[len(nnd.Points)-1].ScanRate {
		t.Errorf("KIFF final scan rate %.4f not below NN-Descent %.4f",
			kiff.Points[len(kiff.Points)-1].ScanRate, nnd.Points[len(nnd.Points)-1].ScanRate)
	}
}

func TestTable8KIFFStable(t *testing.T) {
	skipIfShort(t)
	h, t2 := sharedTable2(t)
	res, err := h.Table8(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reduced.Datasets) != 4 {
		t.Fatal("Table8 must cover the 4 datasets")
	}
	for i, red := range res.Reduced.Datasets {
		def := res.Default.Datasets[i]
		// KIFF's recall must be far less sensitive to k than the baselines'
		// (paper: identical recall at both k values).
		kiffDrop := def.KIFF.Recall - red.KIFF.Recall
		if kiffDrop > 0.1 {
			t.Errorf("%s: KIFF recall dropped %.2f when k was reduced", red.Dataset, kiffDrop)
		}
	}
}

func TestFig9Sweep(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatal("Fig9 must cover the 4 datasets")
	}
	for _, s := range res.Series {
		if len(s.Points) != len(Fig9Gammas) {
			t.Fatalf("%s: %d points, want %d", s.Dataset, len(s.Points), len(Fig9Gammas))
		}
		// Larger γ ⇒ fewer iterations (monotone non-increasing).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Iters > s.Points[i-1].Iters {
				t.Errorf("%s: iterations increased with γ (%d→%d)",
					s.Dataset, s.Points[i-1].Iters, s.Points[i].Iters)
			}
		}
	}
}

func TestTable9DensityLadder(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Table9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Table9 rows = %d, want 5", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Density >= res.Rows[i-1].Density {
			t.Errorf("density must fall along the ladder: %v then %v",
				res.Rows[i-1].Density, res.Rows[i].Density)
		}
		if res.Rows[i].AvgRCS >= res.Rows[i-1].AvgRCS {
			t.Errorf("avg |RCS| must fall with density: %v then %v",
				res.Rows[i-1].AvgRCS, res.Rows[i].AvgRCS)
		}
	}
}

func TestFig10ScanRateCorrelatesWithDensity(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("Fig10 points = %d, want 5", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// The paper's Fig 10b: KIFF's scan rate falls sharply with density.
	if last.KIFFScan >= first.KIFFScan {
		t.Errorf("KIFF scan rate did not fall with density: %.4f → %.4f",
			first.KIFFScan, last.KIFFScan)
	}
	for _, pt := range res.Points {
		if pt.KIFFRecall+0.02 < pt.TargetRecall && pt.KIFFBeta != fig10Betas[len(fig10Betas)-1] {
			t.Errorf("%s: β search stopped at %.3f recall below target %.3f",
				pt.Dataset, pt.KIFFRecall, pt.TargetRecall)
		}
	}
}

func TestRegistryAndRunAll(t *testing.T) {
	skipIfShort(t)
	if len(IDs()) != len(Registry) {
		t.Fatal("IDs out of sync with Registry")
	}
	for _, id := range []string{"table1", "table2", "fig8", "fig10"} {
		if _, ok := Registry[id]; !ok {
			t.Errorf("registry missing %q", id)
		}
	}
	// RunAll on a minuscule harness exercises every experiment end to end
	// and must produce output mentioning each paper artifact.
	var buf bytes.Buffer
	h := New(Options{Scale: 0.005, Seed: 7, RecallSample: 150, KCap: 6, Out: &buf})
	if err := RunAll(h); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I ", "Fig 1 ", "Fig 4 ", "Table II ", "Table III ",
		"Table IV ", "Table V ", "Fig 5 ", "Fig 6 ", "Fig 7 ",
		"Table VII ", "Fig 8 ", "Table VIII ", "Fig 9 ", "Table IX ", "Fig 10 ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestDataDirDumpsFigureSeries(t *testing.T) {
	skipIfShort(t)
	dir := t.TempDir()
	h := New(Options{Scale: 0.01, Seed: 3, RecallSample: 100, KCap: 6, DataDir: dir})
	if _, err := h.Fig4(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Fig9(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name()] = true
	}
	for _, want := range []string{"fig4_arxiv_up.tsv", "fig4_wikipedia_ip.tsv", "fig9_arxiv.tsv"} {
		if !names[want] {
			t.Errorf("missing dumped series %s (have %v)", want, names)
		}
	}
	// Dumped series must have a header line and at least one data row.
	data, err := os.ReadFile(filepath.Join(dir, "fig9_arxiv.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "#") {
		t.Errorf("malformed dump:\n%s", data)
	}
}

func TestBetaSweepTradeoff(t *testing.T) {
	skipIfShort(t)
	h := tinyHarness()
	res, err := h.BetaSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(BetaSweepValues) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(BetaSweepValues))
	}
	// Monotone trade-off directions (§V-B2): larger β must never increase
	// the scan rate, and recall must never improve. A small slack absorbs
	// run-to-run termination jitter: the changes counter depends on heap
	// update interleaving, so the β threshold can fire one iteration apart
	// across runs.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].ScanRate > res.Points[i-1].ScanRate+0.01 {
			t.Errorf("scan rate rose with β: %v → %v",
				res.Points[i-1].ScanRate, res.Points[i].ScanRate)
		}
		if res.Points[i].Recall > res.Points[i-1].Recall+0.01 {
			t.Errorf("recall rose with β: %v → %v",
				res.Points[i-1].Recall, res.Points[i].Recall)
		}
	}
}

func TestHyRecRSweepTradeoff(t *testing.T) {
	skipIfShort(t)
	// The tiny 1% wikipedia (~120 users) is too small for r to matter:
	// neighbors-of-neighbors already cover almost every user, so the
	// random picks land on already-marked candidates. Use 5% (~300 users),
	// where the sweep showed a clear volume increase.
	h := New(Options{Scale: 0.05, Seed: 42, RecallSample: 0, KCap: 12})
	res, err := h.HyRecRSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(HyRecRSweepValues) {
		t.Fatalf("points = %d, want %d", len(res.Points), len(HyRecRSweepValues))
	}
	// §IV-D: random candidates cost similarity work. Total scan depends on
	// when the β threshold fires (which can shift with r on tiny graphs),
	// so assert on what r directly controls: evaluations per iteration.
	perIter := func(p HyRecRPoint) float64 {
		if p.Iters == 0 {
			return 0
		}
		return p.ScanRate / float64(p.Iters)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if perIter(last) <= perIter(first) {
		t.Errorf("r=%d per-iteration scan %v not above r=0's %v",
			last.R, perIter(last), perIter(first))
	}
	// And must not hurt recall.
	if last.Recall < first.Recall-0.02 {
		t.Errorf("r=%d recall %v fell below r=0's %v", last.R, last.Recall, first.Recall)
	}
}
