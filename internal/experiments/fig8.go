package experiments

import (
	"strings"

	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/hyrec"
	"kiff/internal/knngraph"
	"kiff/internal/nndescent"
	"kiff/internal/runstats"
)

// Fig8Point is one iteration of one algorithm's convergence trace.
type Fig8Point struct {
	Iter     int
	ScanRate float64
	Recall   float64
	Updates  float64 // average graph updates per user in the iteration
}

// Fig8Series is one algorithm's trace on the Arxiv dataset.
type Fig8Series struct {
	Algorithm string
	Points    []Fig8Point
}

// Fig8Result reproduces Figures 8a (scan rate vs recall) and 8b (scan
// rate vs average updates).
type Fig8Result struct {
	Series []Fig8Series
}

// Fig8 traces the convergence of the three approaches on Arxiv: KIFF
// starts from a high recall (its first iteration plays the role of the
// RCS-based initialization) and terminates at a small scan rate, while the
// greedy baselines start near zero and need an order of magnitude more
// similarity work.
func (h *Harness) Fig8() (*Fig8Result, error) {
	d, err := h.Dataset(dataset.Arxiv)
	if err != nil {
		return nil, err
	}
	k := h.K(dataset.Arxiv.DefaultK())
	exact := h.Exact(d, k)
	res := &Fig8Result{}

	hook := func() runstats.IterHook {
		return func(_ int, g *knngraph.Graph, _ int64) float64 {
			return exact.Recall(g)
		}
	}

	kiffCfg := core.DefaultConfig(k)
	kiffCfg.Hook = hook()
	kf, err := h.RunKIFF(d, kiffCfg)
	if err != nil {
		return nil, err
	}
	nndCfg := nndescent.DefaultConfig(k)
	nndCfg.Hook = hook()
	nnd, err := h.RunNNDescent(d, nndCfg)
	if err != nil {
		return nil, err
	}
	hyCfg := hyrec.DefaultConfig(k)
	hyCfg.Hook = hook()
	hy, err := h.RunHyRec(d, hyCfg)
	if err != nil {
		return nil, err
	}

	h.printf("Fig 8 — convergence on arxiv (k=%d)\n", k)
	for _, ar := range []AlgoRun{kf, nnd, hy} {
		series := Fig8Series{Algorithm: ar.Algorithm}
		run := ar.Run
		for i := 0; i < run.Iterations; i++ {
			series.Points = append(series.Points, Fig8Point{
				Iter:     i,
				ScanRate: run.ScanRateAt(i),
				Recall:   run.RecallAtIter[i],
				Updates:  float64(run.UpdatesPerIter[i]) / float64(run.NumUsers),
			})
		}
		res.Series = append(res.Series, series)
		rows := make([][]string, 0, len(series.Points))
		for _, pt := range series.Points {
			rows = append(rows, []string{i(pt.Iter), f(pt.ScanRate), f(pt.Recall), f(pt.Updates)})
		}
		name := strings.ToLower(strings.ReplaceAll(series.Algorithm, "-", ""))
		if err := h.dumpTSV("fig8_"+name, []string{"iter", "scanrate", "recall", "updates_per_user"}, rows); err != nil {
			return nil, err
		}

		h.rule()
		h.printf("%s:\n", ar.Algorithm)
		h.printf("%6s %10s %8s %10s\n", "iter", "scanrate", "recall", "upd/user")
		for _, pt := range series.Points {
			h.printf("%6d %10s %8.3f %10.2f\n", pt.Iter, pct(pt.ScanRate), pt.Recall, pt.Updates)
		}
	}
	h.rule()
	h.printf("(paper: KIFF starts at 0.82 recall and stops at 2.5%% scan rate;\n")
	h.printf(" NN-Descent/HyRec start at 0.08 and need 16–17.6%%)\n\n")
	return res, nil
}
