package experiments

import (
	"kiff/internal/dataset"
	"kiff/internal/rcs"
	"kiff/internal/stats"
)

// Fig6Series is the CCDF of RCS sizes for one dataset together with the
// truncation cut-off enforced by KIFF's termination mechanism (Fig 6's
// vertical bars).
type Fig6Series struct {
	Dataset string
	CCDF    []stats.CCDFPoint
	Cut     int     // |RCS|cut = #iters × γ (Table VI)
	Trunc   float64 // fraction of users with |RCS| > Cut
}

// Fig6Result reproduces Figure 6, and Table6Result reproduces Table VI —
// both derive from the same runs, so they are computed together.
type Fig6Result struct {
	Series []Fig6Series
}

// Table6Row is one row of Table VI.
type Table6Row struct {
	Dataset string
	Iters   int
	Cut     int
	Trunc   float64
}

// Table6Result reproduces Table VI (impact of the termination mechanism).
type Table6Result struct {
	Rows []Table6Row
}

// Fig6Table6 runs default-parameter KIFF on each dataset, derives the
// per-user candidate budget |RCS|cut = #iters × γ, and reports the CCDF
// of RCS sizes with the fraction of users whose sets get truncated.
func (h *Harness) Fig6Table6() (*Fig6Result, *Table6Result, error) {
	fig := &Fig6Result{}
	tab := &Table6Result{}
	h.printf("Fig 6 / Table VI — RCS size CCDF and termination cut-offs\n")
	h.rule()
	h.printf("%-12s %7s %10s %22s\n", "dataset", "#iters", "|RCS|cut", "%user |RCS|>|RCS|cut")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, nil, err
		}
		k := h.K(p.DefaultK())
		gamma := 2 * k // the default γ the memoized run used
		kf, err := h.DefaultRun("kiff", d, k)
		if err != nil {
			return nil, nil, err
		}
		sets := rcs.Build(d, rcs.BuildOptions{Workers: h.Opts.Workers})
		cut := kf.Iters * gamma
		trunc := sets.TruncationStats(cut)
		fig.Series = append(fig.Series, Fig6Series{
			Dataset: d.Name,
			CCDF:    stats.CCDF(sets.Lens()),
			Cut:     cut,
			Trunc:   trunc,
		})
		tab.Rows = append(tab.Rows, Table6Row{Dataset: d.Name, Iters: kf.Iters, Cut: cut, Trunc: trunc})
		ccdf := fig.Series[len(fig.Series)-1].CCDF
		rows := make([][]string, 0, len(ccdf))
		for _, pt := range ccdf {
			rows = append(rows, []string{i(pt.X), f(pt.P), i(cut)})
		}
		if err := h.dumpTSV("fig6_"+d.Name, []string{"rcs_size", "P(X>=size)", "cut"}, rows); err != nil {
			return nil, nil, err
		}
		h.printf("%-12s %7d %10d %21.2f%%\n", d.Name, kf.Iters, cut, 100*trunc)
	}
	h.rule()
	h.printf("(paper: 4.8–16.2%% of users have truncated RCSs)\n\n")
	return fig, tab, nil
}
