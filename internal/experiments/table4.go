package experiments

import (
	"bytes"
	"time"

	"kiff/internal/dataset"
)

// Table4Row quantifies the overhead of building item profiles while the
// dataset streams in (Table IV): the wall time of user-profile-only
// loading, of combined user+item loading, their difference Δ, and Δ as a
// fraction of KIFF's total time.
type Table4Row struct {
	Dataset     string
	UPOnly      time.Duration
	UPAndIP     time.Duration
	Delta       time.Duration
	TotalKIFF   time.Duration
	DeltaOfTime float64
}

// Table4Result reproduces Table IV.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 serializes each dataset to an in-memory edge stream and parses it
// back twice — once building only user profiles, once also reversing the
// edges into item profiles — mirroring how KIFF piggybacks item-profile
// construction on data loading (Algorithm 1 lines 1–2).
func (h *Harness) Table4() (*Table4Result, error) {
	res := &Table4Result{}
	h.printf("Table IV — overhead of item profile construction\n")
	h.rule()
	h.printf("%-12s %12s %14s %10s %12s\n", "dataset", "(UP) load", "(UP)&(IP) load", "Δ", "% total")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := dataset.Write(&buf, d); err != nil {
			return nil, err
		}
		stream := buf.Bytes()

		t0 := time.Now()
		if _, err := dataset.Load(bytes.NewReader(stream), dataset.LoadOptions{Name: d.Name}); err != nil {
			return nil, err
		}
		upOnly := time.Since(t0)

		t1 := time.Now()
		if _, err := dataset.Load(bytes.NewReader(stream), dataset.LoadOptions{Name: d.Name, BuildItemProfiles: true}); err != nil {
			return nil, err
		}
		upAndIP := time.Since(t1)

		kf, err := h.DefaultRun("kiff", d, h.K(p.DefaultK()))
		if err != nil {
			return nil, err
		}
		row := Table4Row{
			Dataset:   d.Name,
			UPOnly:    upOnly,
			UPAndIP:   upAndIP,
			Delta:     upAndIP - upOnly,
			TotalKIFF: kf.WallTime + upAndIP,
		}
		if row.Delta < 0 {
			row.Delta = 0
		}
		if row.TotalKIFF > 0 {
			row.DeltaOfTime = row.Delta.Seconds() / row.TotalKIFF.Seconds()
		}
		res.Rows = append(res.Rows, row)
		h.printf("%-12s %12s %14s %10s %11.1f%%\n",
			row.Dataset, seconds(row.UPOnly), seconds(row.UPAndIP), seconds(row.Delta), 100*row.DeltaOfTime)
	}
	h.rule()
	h.printf("(paper: item-profile overhead ≤ 1.9%% of KIFF's total time)\n\n")
	return res, nil
}
