package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment end to end (generation, runs, rendering).
type Runner func(h *Harness) error

// Registry maps experiment IDs (as used by `kiffbench -exp`) to runners.
var Registry = map[string]Runner{
	"table1": func(h *Harness) error { _, err := h.Table1(); return err },
	"fig1":   func(h *Harness) error { _, err := h.Fig1(); return err },
	"fig4":   func(h *Harness) error { _, err := h.Fig4(); return err },
	"table2": func(h *Harness) error { _, err := h.Table2(); return err },
	"table3": func(h *Harness) error {
		t2, err := h.Table2()
		if err != nil {
			return err
		}
		h.Table3(t2)
		return nil
	},
	"table4": func(h *Harness) error { _, err := h.Table4(); return err },
	"table5": func(h *Harness) error { _, err := h.Table5(); return err },
	"fig5":   func(h *Harness) error { _, err := h.Fig5(); return err },
	"fig6": func(h *Harness) error {
		_, _, err := h.Fig6Table6()
		return err
	},
	"table6": func(h *Harness) error {
		_, _, err := h.Fig6Table6()
		return err
	},
	"fig7":   func(h *Harness) error { _, err := h.Fig7(); return err },
	"table7": func(h *Harness) error { _, err := h.Table7(); return err },
	"fig8":   func(h *Harness) error { _, err := h.Fig8(); return err },
	"table8": func(h *Harness) error { _, err := h.Table8(nil); return err },
	"fig9":   func(h *Harness) error { _, err := h.Fig9(); return err },
	"table9": func(h *Harness) error { _, err := h.Table9(); return err },
	"fig10":  func(h *Harness) error { _, err := h.Fig10(); return err },
	// Sensitivity studies discussed in the paper's prose (§V-B2, §IV-D)
	// without a numbered table or figure.
	"beta":    func(h *Harness) error { _, err := h.BetaSweep(); return err },
	"hyrec-r": func(h *Harness) error { _, err := h.HyRecRSweep(); return err },
}

// IDs returns the registered experiment identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment in a stable order, sharing the
// harness's dataset, ground-truth and default-run caches so each
// (algorithm, dataset, k) combination executes exactly once.
func RunAll(h *Harness) error {
	step := func(id string, fn func() error) error {
		if err := fn(); err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
		return nil
	}
	if err := step("table1", func() error { _, err := h.Table1(); return err }); err != nil {
		return err
	}
	if err := step("fig1", func() error { _, err := h.Fig1(); return err }); err != nil {
		return err
	}
	if err := step("fig4", func() error { _, err := h.Fig4(); return err }); err != nil {
		return err
	}
	t2, err := h.Table2()
	if err != nil {
		return fmt.Errorf("experiments: table2: %w", err)
	}
	h.Table3(t2)
	if err := step("table4", func() error { _, err := h.Table4(); return err }); err != nil {
		return err
	}
	if err := step("table5", func() error { _, err := h.Table5(); return err }); err != nil {
		return err
	}
	if err := step("fig5", func() error { _, err := h.Fig5(); return err }); err != nil {
		return err
	}
	if err := step("fig6", func() error { _, _, err := h.Fig6Table6(); return err }); err != nil {
		return err
	}
	if err := step("fig7", func() error { _, err := h.Fig7(); return err }); err != nil {
		return err
	}
	if err := step("table7", func() error { _, err := h.Table7(); return err }); err != nil {
		return err
	}
	if err := step("fig8", func() error { _, err := h.Fig8(); return err }); err != nil {
		return err
	}
	if err := step("table8", func() error { _, err := h.Table8(t2); return err }); err != nil {
		return err
	}
	if err := step("fig9", func() error { _, err := h.Fig9(); return err }); err != nil {
		return err
	}
	if err := step("table9", func() error { _, err := h.Table9(); return err }); err != nil {
		return err
	}
	if err := step("fig10", func() error { _, err := h.Fig10(); return err }); err != nil {
		return err
	}
	if err := step("beta", func() error { _, err := h.BetaSweep(); return err }); err != nil {
		return err
	}
	return step("hyrec-r", func() error { _, err := h.HyRecRSweep(); return err })
}
