package experiments

import "kiff/internal/dataset"

// Table2Dataset groups the three per-algorithm rows of Table II for one
// dataset, plus the "KIFF's Gain" line.
type Table2Dataset struct {
	Dataset    string
	K          int
	NNDescent  AlgoRun
	HyRec      AlgoRun
	KIFF       AlgoRun
	GainRecall float64 // mean recall improvement over the two baselines
	SpeedUp    float64 // mean wall-time ratio over the two baselines
}

// Table2Result reproduces Table II (overall performance) and carries the
// per-dataset gains that Table III averages.
type Table2Result struct {
	Datasets []Table2Dataset
}

// Table2 runs NN-Descent, HyRec and KIFF with the paper's default
// parameters on the four datasets (k = 20, DBLP k = 50; β = 0.001,
// γ = 2k; NN-Descent without sampling; HyRec r = 0).
func (h *Harness) Table2() (*Table2Result, error) {
	return h.table2WithK(func(p dataset.Preset) int { return h.K(p.DefaultK()) },
		"Table II — overall performance (paper defaults)")
}

// table2WithK is shared with Table VIII, which reruns the study at
// smaller k.
func (h *Harness) table2WithK(kOf func(dataset.Preset) int, title string) (*Table2Result, error) {
	res := &Table2Result{}
	h.printf("%s\n", title)
	h.rule()
	h.printf("%-12s %-12s %8s %12s %10s %7s\n",
		"dataset", "approach", "recall", "wall-time", "scanrate", "#iter")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		k := kOf(p)
		nnd, err := h.DefaultRun("nn-descent", d, k)
		if err != nil {
			return nil, err
		}
		hy, err := h.DefaultRun("hyrec", d, k)
		if err != nil {
			return nil, err
		}
		kf, err := h.DefaultRun("kiff", d, k)
		if err != nil {
			return nil, err
		}
		row := Table2Dataset{Dataset: d.Name, K: k, NNDescent: nnd, HyRec: hy, KIFF: kf}
		row.GainRecall = kf.Recall - (nnd.Recall+hy.Recall)/2
		baseMean := (nnd.WallTime.Seconds() + hy.WallTime.Seconds()) / 2
		if kf.WallTime.Seconds() > 0 {
			row.SpeedUp = baseMean / kf.WallTime.Seconds()
		}
		res.Datasets = append(res.Datasets, row)

		for _, ar := range []AlgoRun{nnd, hy, kf} {
			h.printf("%-12s %-12s %8.2f %12s %10s %7d\n",
				d.Name, ar.Algorithm, ar.Recall, seconds(ar.WallTime), pct(ar.ScanRate), ar.Iters)
		}
		h.printf("%-12s %-12s %+8.2f %11.1fx\n", d.Name, "KIFF's gain", row.GainRecall, row.SpeedUp)
		h.rule()
	}
	return res, nil
}

// Table3Result reproduces Table III: KIFF's average speed-up and recall
// gain against each competitor.
type Table3Result struct {
	SpeedUpVsNND   float64
	SpeedUpVsHyRec float64
	DRecallVsNND   float64
	DRecallVsHyRec float64
	SpeedUpAvg     float64
	DRecallAvg     float64
}

// Table3 derives the averaged gains from a Table II run. Paper values:
// ×15.42 / +0.14 vs NN-Descent, ×12.51 / +0.23 vs HyRec, ×13.97 / +0.19
// on average.
func (h *Harness) Table3(t2 *Table2Result) *Table3Result {
	res := &Table3Result{}
	n := float64(len(t2.Datasets))
	if n == 0 {
		return res
	}
	for _, row := range t2.Datasets {
		kf := row.KIFF.WallTime.Seconds()
		if kf > 0 {
			res.SpeedUpVsNND += row.NNDescent.WallTime.Seconds() / kf
			res.SpeedUpVsHyRec += row.HyRec.WallTime.Seconds() / kf
		}
		res.DRecallVsNND += row.KIFF.Recall - row.NNDescent.Recall
		res.DRecallVsHyRec += row.KIFF.Recall - row.HyRec.Recall
	}
	res.SpeedUpVsNND /= n
	res.SpeedUpVsHyRec /= n
	res.DRecallVsNND /= n
	res.DRecallVsHyRec /= n
	res.SpeedUpAvg = (res.SpeedUpVsNND + res.SpeedUpVsHyRec) / 2
	res.DRecallAvg = (res.DRecallVsNND + res.DRecallVsHyRec) / 2

	h.printf("Table III — average speed-up and recall gain of KIFF\n")
	h.rule()
	h.printf("%-12s %10s %10s\n", "competitor", "speed-up", "Δrecall")
	h.printf("%-12s %9.2fx %+10.2f\n", "NN-Descent", res.SpeedUpVsNND, res.DRecallVsNND)
	h.printf("%-12s %9.2fx %+10.2f\n", "HyRec", res.SpeedUpVsHyRec, res.DRecallVsHyRec)
	h.printf("%-12s %9.2fx %+10.2f\n", "average", res.SpeedUpAvg, res.DRecallAvg)
	h.rule()
	h.printf("(paper: ×15.42/+0.14 vs NND, ×12.51/+0.23 vs HyRec, ×13.97/+0.19 average)\n\n")
	return res
}
