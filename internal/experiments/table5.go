package experiments

import (
	"time"

	"kiff/internal/dataset"
)

// Table5Row reports the counting-phase cost and the shape of the resulting
// candidate sets for one dataset (Table V).
type Table5Row struct {
	Dataset     string
	RCSBuild    time.Duration
	FracOfTotal float64
	AvgLen      float64
	MaxScanRate float64
}

// Table5Result reproduces Table V.
type Table5Result struct {
	Rows []Table5Row
}

// Table5 measures RCS construction inside a full default-parameter KIFF
// run. MaxScanRate is 2·avg|RCS|/(|U|−1): the scan rate of an exhaustive
// iteration (§V-A2).
func (h *Harness) Table5() (*Table5Result, error) {
	res := &Table5Result{}
	h.printf("Table V — overhead of RCS construction & statistics\n")
	h.rule()
	h.printf("%-12s %14s %10s %12s %14s\n",
		"dataset", "RCS const.", "% total", "avg |RCS|", "max scanrate")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		kf, err := h.DefaultRun("kiff", d, h.K(p.DefaultK()))
		if err != nil {
			return nil, err
		}
		row := Table5Row{
			Dataset:  d.Name,
			RCSBuild: kf.RCS.Duration,
			AvgLen:   kf.RCS.AvgLen,
		}
		if kf.WallTime > 0 {
			row.FracOfTotal = kf.RCS.Duration.Seconds() / kf.WallTime.Seconds()
		}
		if n := d.NumUsers(); n > 1 {
			row.MaxScanRate = 2 * kf.RCS.AvgLen / float64(n-1)
		}
		res.Rows = append(res.Rows, row)
		h.printf("%-12s %14s %9.1f%% %12.1f %14s\n",
			row.Dataset, seconds(row.RCSBuild), 100*row.FracOfTotal, row.AvgLen, pct(row.MaxScanRate))
	}
	h.rule()
	h.printf("(paper: RCS construction is 7.5–13.1%% of KIFF's total time)\n\n")
	return res, nil
}
