package experiments

import "kiff/internal/dataset"

// Table8Result reproduces Table VIII: the same study as Table II with the
// smaller neighborhoods (k = 10, DBLP k = 20), plus the deltas against
// the default-k runs.
type Table8Result struct {
	Reduced *Table2Result
	Default *Table2Result
}

// Table8 reruns the overall comparison with reduced k. The paper's
// finding: the baselines get faster but lose 11–35 points of recall, while
// KIFF's recall is unaffected (its convergence is driven by the RCSs, not
// by neighbors-of-neighbors links).
func (h *Harness) Table8(defaultRuns *Table2Result) (*Table8Result, error) {
	if defaultRuns == nil {
		var err error
		defaultRuns, err = h.Table2()
		if err != nil {
			return nil, err
		}
	}
	reduced, err := h.table2WithK(func(p dataset.Preset) int { return h.K(p.ReducedK()) },
		"Table VIII — impact of a smaller k (k=10, DBLP k=20)")
	if err != nil {
		return nil, err
	}
	res := &Table8Result{Reduced: reduced, Default: defaultRuns}

	h.printf("Table VIII deltas vs default k\n")
	h.rule()
	h.printf("%-12s %-12s %16s %16s\n", "dataset", "approach", "Δrecall", "time ratio")
	for i, row := range reduced.Datasets {
		def := defaultRuns.Datasets[i]
		pairs := []struct {
			name     string
			red, def AlgoRun
		}{
			{"NN-Descent", row.NNDescent, def.NNDescent},
			{"HyRec", row.HyRec, def.HyRec},
			{"KIFF", row.KIFF, def.KIFF},
		}
		for _, pr := range pairs {
			ratio := 0.0
			if pr.red.WallTime > 0 {
				ratio = pr.def.WallTime.Seconds() / pr.red.WallTime.Seconds()
			}
			h.printf("%-12s %-12s %+16.2f %15.2fx\n",
				row.Dataset, pr.name, pr.red.Recall-pr.def.Recall, ratio)
		}
	}
	h.rule()
	h.printf("(paper: baselines speed up 2.4–4.1x but lose 0.10–0.57 recall; KIFF stays at 0.99)\n\n")
	return res, nil
}
