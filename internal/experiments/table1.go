package experiments

import "kiff/internal/dataset"

// Table1Result reproduces Table I: the dataset description rows.
type Table1Result struct {
	Rows []dataset.Stats
}

// Table1 generates the four evaluation datasets and reports their shape.
// Paper values at scale 1: Wikipedia 6,110×2,381 (0.71%), Arxiv
// 18,772×18,772 (0.11%), Gowalla 107,092×1,280,969 (0.0029%), DBLP
// 715,610×1,401,494 (0.0011%).
func (h *Harness) Table1() (*Table1Result, error) {
	res := &Table1Result{}
	h.printf("Table I — dataset description (scale %.2f)\n", h.Opts.Scale)
	h.rule()
	h.printf("%-12s %10s %10s %12s %10s %10s %10s\n",
		"dataset", "|U|", "|I|", "|E|", "density", "avg|UP|", "avg|IP|")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		s := d.Stats()
		res.Rows = append(res.Rows, s)
		h.printf("%-12s %10d %10d %12d %9.4f%% %10.1f %10.1f\n",
			s.Name, s.Users, s.Items, s.Ratings, s.Density*100, s.AvgUP, s.AvgIP)
	}
	h.rule()
	return res, nil
}
