package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// dumpTSV writes a plot-ready series to <DataDir>/<name>.tsv. It is a
// no-op when Options.DataDir is empty. Errors are returned so experiments
// fail loudly rather than silently losing figure data.
func (h *Harness) dumpTSV(name string, header []string, rows [][]string) error {
	if h.Opts.DataDir == "" {
		return nil
	}
	if err := os.MkdirAll(h.Opts.DataDir, 0o755); err != nil {
		return fmt.Errorf("experiments: data dir: %w", err)
	}
	path := filepath.Join(h.Opts.DataDir, name+".tsv")
	var b strings.Builder
	b.WriteString("# " + strings.Join(header, "\t") + "\n")
	for _, row := range rows {
		b.WriteString(strings.Join(row, "\t") + "\n")
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("experiments: write %s: %w", path, err)
	}
	return nil
}

func f(v float64) string { return fmt.Sprintf("%g", v) }
func i(v int) string     { return fmt.Sprintf("%d", v) }
