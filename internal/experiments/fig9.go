package experiments

import (
	"time"

	"kiff/internal/core"
	"kiff/internal/dataset"
)

// Fig9Point is KIFF's wall time at one γ value on one dataset.
type Fig9Point struct {
	Gamma    int
	WallTime time.Duration
	ScanRate float64
	Iters    int
}

// Fig9Series is the γ sweep for one dataset.
type Fig9Series struct {
	Dataset string
	Points  []Fig9Point
}

// Fig9Result reproduces Figure 9.
type Fig9Result struct {
	Series []Fig9Series
}

// Fig9Gammas is the sweep grid (the paper plots γ ∈ [0, 80]).
var Fig9Gammas = []int{5, 10, 20, 40, 60, 80}

// Fig9 sweeps γ on every dataset. The paper's point: γ trades iteration
// overhead (small γ) against a slight scan-rate overshoot (large γ), but
// its impact on wall time stays low.
func (h *Harness) Fig9() (*Fig9Result, error) {
	res := &Fig9Result{}
	h.printf("Fig 9 — impact of γ on KIFF's wall time\n")
	h.rule()
	h.printf("%-12s %6s %12s %10s %7s\n", "dataset", "γ", "wall-time", "scanrate", "#iter")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		k := h.K(p.DefaultK())
		series := Fig9Series{Dataset: d.Name}
		for _, gamma := range Fig9Gammas {
			cfg := core.DefaultConfig(k)
			cfg.Gamma = gamma
			kf, err := h.RunKIFF(d, cfg)
			if err != nil {
				return nil, err
			}
			pt := Fig9Point{Gamma: gamma, WallTime: kf.WallTime, ScanRate: kf.ScanRate, Iters: kf.Iters}
			series.Points = append(series.Points, pt)
			h.printf("%-12s %6d %12s %10s %7d\n", d.Name, gamma, seconds(kf.WallTime), pct(kf.ScanRate), kf.Iters)
		}
		res.Series = append(res.Series, series)
		rows := make([][]string, 0, len(series.Points))
		for _, pt := range series.Points {
			rows = append(rows, []string{i(pt.Gamma), f(pt.WallTime.Seconds()), f(pt.ScanRate), i(pt.Iters)})
		}
		if err := h.dumpTSV("fig9_"+d.Name, []string{"gamma", "walltime_s", "scanrate", "iters"}, rows); err != nil {
			return nil, err
		}
		h.rule()
	}
	h.printf("(paper: the impact of γ on wall time remains low)\n\n")
	return res, nil
}
