package experiments

import (
	"kiff/internal/dataset"
	"kiff/internal/stats"
)

// Fig4Series is the CCDF of profile sizes for one dataset.
type Fig4Series struct {
	Dataset string
	User    []stats.CCDFPoint // Fig 4a: P(|UP| ≥ x)
	Item    []stats.CCDFPoint // Fig 4b: P(|IP| ≥ x)
}

// Fig4Result reproduces Figures 4a and 4b.
type Fig4Result struct {
	Series []Fig4Series
}

// Fig4 computes the user- and item-profile size CCDFs of the four
// datasets. The long tails ("most users have very few ratings") are the
// regime KIFF is designed for.
func (h *Harness) Fig4() (*Fig4Result, error) {
	res := &Fig4Result{}
	h.printf("Fig 4 — CCDF of profile sizes: P(|UP| ≥ x) and P(|IP| ≥ x)\n")
	h.rule()
	probes := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	h.printf("%-12s %-5s", "dataset", "side")
	for _, x := range probes {
		h.printf(" %7d", x)
	}
	h.printf("\n")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		s := Fig4Series{
			Dataset: d.Name,
			User:    stats.CCDF(d.UserProfileSizes()),
			Item:    stats.CCDF(d.ItemProfileSizes()),
		}
		res.Series = append(res.Series, s)
		for _, side := range []struct {
			suffix string
			points []stats.CCDFPoint
		}{{"up", s.User}, {"ip", s.Item}} {
			rows := make([][]string, 0, len(side.points))
			for _, pt := range side.points {
				rows = append(rows, []string{i(pt.X), f(pt.P)})
			}
			if err := h.dumpTSV("fig4_"+d.Name+"_"+side.suffix, []string{"size", "P(X>=size)"}, rows); err != nil {
				return nil, err
			}
		}
		for _, side := range []struct {
			name   string
			points []stats.CCDFPoint
		}{{"UP", s.User}, {"IP", s.Item}} {
			h.printf("%-12s %-5s", d.Name, side.name)
			for _, x := range probes {
				h.printf(" %7.4f", stats.CCDFAt(side.points, x))
			}
			h.printf("\n")
		}
	}
	h.rule()
	h.printf("(paper: long-tailed curves — most users have very few ratings)\n\n")
	return res, nil
}
