package experiments

import (
	"time"

	"kiff/internal/dataset"
	"kiff/internal/runstats"
)

// Fig5Bar is one stacked bar of Figure 5: the per-activity time breakdown
// of one algorithm on one dataset.
type Fig5Bar struct {
	Dataset    string
	Algorithm  string
	Preprocess time.Duration
	Candidates time.Duration
	Similarity time.Duration
	Total      time.Duration
}

// Fig5Result reproduces Figure 5 (a–d).
type Fig5Result struct {
	Bars []Fig5Bar
}

// Fig5 breaks down the computation time of KIFF, NN-Descent and HyRec on
// all four datasets: KIFF pays a preprocessing (counting) cost that buys a
// much smaller similarity bill.
func (h *Harness) Fig5() (*Fig5Result, error) {
	res := &Fig5Result{}
	h.printf("Fig 5 — computation time breakdown per activity\n")
	h.rule()
	h.printf("%-12s %-12s %12s %14s %12s %10s\n",
		"dataset", "approach", "preprocess", "candidate sel.", "similarity", "total")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		k := h.K(p.DefaultK())
		kf, err := h.DefaultRun("kiff", d, k)
		if err != nil {
			return nil, err
		}
		nnd, err := h.DefaultRun("nn-descent", d, k)
		if err != nil {
			return nil, err
		}
		hy, err := h.DefaultRun("hyrec", d, k)
		if err != nil {
			return nil, err
		}
		for _, ar := range []AlgoRun{kf, nnd, hy} {
			bar := Fig5Bar{
				Dataset:    d.Name,
				Algorithm:  ar.Algorithm,
				Preprocess: ar.Run.PhaseTimes[runstats.PhasePreprocess],
				Candidates: ar.Run.PhaseTimes[runstats.PhaseCandidates],
				Similarity: ar.Run.PhaseTimes[runstats.PhaseSimilarity],
				Total:      ar.WallTime,
			}
			res.Bars = append(res.Bars, bar)
			h.printf("%-12s %-12s %12s %14s %12s %10s\n",
				d.Name, ar.Algorithm, seconds(bar.Preprocess), seconds(bar.Candidates),
				seconds(bar.Similarity), seconds(bar.Total))
		}
		h.rule()
	}
	h.printf("(paper: KIFF's counting overhead is balanced out by far fewer similarity computations)\n\n")
	rows := make([][]string, 0, len(res.Bars))
	for _, b := range res.Bars {
		rows = append(rows, []string{b.Dataset, b.Algorithm,
			f(b.Preprocess.Seconds()), f(b.Candidates.Seconds()), f(b.Similarity.Seconds()), f(b.Total.Seconds())})
	}
	if err := h.dumpTSV("fig5", []string{"dataset", "algorithm", "preprocess_s", "candidates_s", "similarity_s", "total_s"}, rows); err != nil {
		return nil, err
	}
	return res, nil
}
