package experiments

import (
	"time"

	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/hyrec"
)

// BetaPoint is one rung of the β sensitivity sweep.
type BetaPoint struct {
	Beta     float64
	WallTime time.Duration
	ScanRate float64
	Recall   float64
	Iters    int
}

// BetaResult reproduces the §V-B2 discussion: "increasing β hundredfold
// to 0.1 (from 0.001) causes KIFF to take 36% less time to converge by
// halving its scan rate to convergence. Recall is mildly impacted, being
// reduced by 0.01, down to 0.98" (Arxiv).
type BetaResult struct {
	Dataset string
	Points  []BetaPoint
}

// BetaSweepValues is the swept grid (paper contrasts 0.001 vs 0.1).
var BetaSweepValues = []float64{0.001, 0.01, 0.1, 1}

// BetaSweep measures KIFF's recall/scan-rate/wall-time trade-off as the
// termination threshold rises, on the Arxiv replica as in the paper.
func (h *Harness) BetaSweep() (*BetaResult, error) {
	d, err := h.Dataset(dataset.Arxiv)
	if err != nil {
		return nil, err
	}
	k := h.K(dataset.Arxiv.DefaultK())
	exact := h.Exact(d, k)
	res := &BetaResult{Dataset: d.Name}

	h.printf("β sweep — recall vs scan-rate trade-off (arxiv, k=%d; paper §V-B2)\n", k)
	h.rule()
	h.printf("%10s %12s %10s %8s %7s\n", "β", "wall-time", "scanrate", "recall", "#iter")
	for _, beta := range BetaSweepValues {
		cfg := core.DefaultConfig(k)
		cfg.Beta = beta
		cfg.Workers = h.Opts.Workers
		built, err := core.Build(d, cfg)
		if err != nil {
			return nil, err
		}
		pt := BetaPoint{
			Beta:     beta,
			WallTime: built.Run.WallTime,
			ScanRate: built.Run.ScanRate(),
			Recall:   exact.Recall(built.Graph),
			Iters:    built.Run.Iterations,
		}
		res.Points = append(res.Points, pt)
		h.printf("%10g %12s %10s %8.3f %7d\n", beta, seconds(pt.WallTime), pct(pt.ScanRate), pt.Recall, pt.Iters)
	}
	h.rule()
	h.printf("(paper: β 0.001→0.1 halves the scan rate, costs 0.01 recall)\n\n")

	rows := make([][]string, 0, len(res.Points))
	for _, pt := range res.Points {
		rows = append(rows, []string{f(pt.Beta), f(pt.WallTime.Seconds()), f(pt.ScanRate), f(pt.Recall), i(pt.Iters)})
	}
	if err := h.dumpTSV("beta_arxiv", []string{"beta", "walltime_s", "scanrate", "recall", "iters"}, rows); err != nil {
		return nil, err
	}
	return res, nil
}

// HyRecRPoint is one rung of the HyRec random-candidate sweep.
type HyRecRPoint struct {
	R        int
	WallTime time.Duration
	ScanRate float64
	Recall   float64
	Iters    int
}

// HyRecRResult reproduces the §IV-D remark: "random nodes cause random
// memory accesses and drastically increase the wall-time (three times
// longer on average, with r = 5) while only slightly improving the recall
// (4% on average)."
type HyRecRResult struct {
	Dataset string
	Points  []HyRecRPoint
}

// HyRecRSweepValues is the swept grid.
var HyRecRSweepValues = []int{0, 2, 5}

// HyRecRSweep measures HyRec's cost/recall trade-off as random candidates
// are added, on the Wikipedia replica.
func (h *Harness) HyRecRSweep() (*HyRecRResult, error) {
	d, err := h.Dataset(dataset.Wikipedia)
	if err != nil {
		return nil, err
	}
	k := h.K(dataset.Wikipedia.DefaultK())
	exact := h.Exact(d, k)
	res := &HyRecRResult{Dataset: d.Name}

	h.printf("HyRec r sweep — random candidates trade time for recall (wikipedia, k=%d; paper §IV-D)\n", k)
	h.rule()
	h.printf("%4s %12s %10s %8s\n", "r", "wall-time", "scanrate", "recall")
	for _, r := range HyRecRSweepValues {
		cfg := hyrec.DefaultConfig(k)
		cfg.R = r
		cfg.Workers = h.Opts.Workers
		cfg.Seed = h.Opts.Seed
		built, err := hyrec.Build(d, cfg)
		if err != nil {
			return nil, err
		}
		pt := HyRecRPoint{
			R:        r,
			WallTime: built.Run.WallTime,
			ScanRate: built.Run.ScanRate(),
			Recall:   exact.Recall(built.Graph),
			Iters:    built.Run.Iterations,
		}
		res.Points = append(res.Points, pt)
		h.printf("%4d %12s %10s %8.3f\n", r, seconds(pt.WallTime), pct(pt.ScanRate), pt.Recall)
	}
	h.rule()
	h.printf("(paper: r=5 is ~3x slower for ~4%% recall — the default disables random candidates)\n\n")

	rows := make([][]string, 0, len(res.Points))
	for _, pt := range res.Points {
		rows = append(rows, []string{i(pt.R), f(pt.WallTime.Seconds()), f(pt.ScanRate), f(pt.Recall)})
	}
	if err := h.dumpTSV("hyrec_r_wikipedia", []string{"r", "walltime_s", "scanrate", "recall"}, rows); err != nil {
		return nil, err
	}
	return res, nil
}
