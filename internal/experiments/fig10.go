package experiments

import (
	"time"

	"kiff/internal/bruteforce"
	"kiff/internal/core"
	"kiff/internal/knngraph"
	"kiff/internal/nndescent"
	"kiff/internal/similarity"
)

// Fig10Point compares NN-Descent and recall-matched KIFF on one member of
// the MovieLens density ladder.
type Fig10Point struct {
	Dataset      string
	Density      float64
	TargetRecall float64 // NN-Descent's recall, which KIFF's β is tuned to match
	NNDTime      time.Duration
	NNDScan      float64
	KIFFTime     time.Duration
	KIFFScan     float64
	KIFFBeta     float64
	KIFFRecall   float64
}

// Fig10Result reproduces Figures 10a and 10b.
type Fig10Result struct {
	Points []Fig10Point
}

// fig10Betas is the β ladder searched to match NN-Descent's recall,
// from cheapest (large β = early stop) to most thorough.
var fig10Betas = []float64{2, 1, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001}

// Fig10 follows the paper's protocol (§V-B3): measure NN-Descent's recall
// on each ML-i with default parameters, tune KIFF's β to the cheapest
// value that reaches that recall, and compare wall time and scan rate.
// The paper's shape: NN-Descent wins on the dense ML-1/ML-2, the
// situation reverses on the sparse ML-4/ML-5, and KIFF's scan rate falls
// sharply with density while NN-Descent's stays flat.
func (h *Harness) Fig10() (*Fig10Result, error) {
	family, err := h.MovieLens()
	if err != nil {
		return nil, err
	}
	k := h.K(20)
	res := &Fig10Result{}
	h.printf("Fig 10 — KIFF vs NN-Descent across the density ladder (recall-matched, k=%d)\n", k)
	h.rule()
	h.printf("%-8s %9s %8s | %10s %9s | %10s %9s %8s\n",
		"dataset", "density", "target", "NND time", "NND scan", "KIFF time", "KIFF scan", "β")
	for _, d := range family {
		var exact *knngraph.Exact
		if h.Opts.RecallSample > 0 && h.Opts.RecallSample < d.NumUsers() {
			exact = bruteforce.Sampled(d, similarity.Cosine{}, k, h.Opts.RecallSample, h.Opts.Seed, h.Opts.Workers)
		} else {
			exact = bruteforce.Exact(d, similarity.Cosine{}, k, h.Opts.Workers)
		}

		nndCfg := nndescent.DefaultConfig(k)
		nndCfg.Workers = h.Opts.Workers
		nndCfg.Seed = h.Opts.Seed
		nndRes, err := nndescent.Build(d, nndCfg)
		if err != nil {
			return nil, err
		}
		target := exact.Recall(nndRes.Graph)

		pt := Fig10Point{
			Dataset:      d.Name,
			Density:      d.Density(),
			TargetRecall: target,
			NNDTime:      nndRes.Run.WallTime,
			NNDScan:      nndRes.Run.ScanRate(),
		}

		// β search: first (cheapest) rung that reaches the target recall,
		// with a small tolerance for sampling noise.
		const tolerance = 0.005
		for i, beta := range fig10Betas {
			cfg := core.DefaultConfig(k)
			cfg.Workers = h.Opts.Workers
			cfg.Beta = beta
			kfRes, err := core.Build(d, cfg)
			if err != nil {
				return nil, err
			}
			recall := exact.Recall(kfRes.Graph)
			if recall+tolerance >= target || i == len(fig10Betas)-1 {
				pt.KIFFTime = kfRes.Run.WallTime
				pt.KIFFScan = kfRes.Run.ScanRate()
				pt.KIFFBeta = beta
				pt.KIFFRecall = recall
				break
			}
		}
		res.Points = append(res.Points, pt)
		h.printf("%-8s %8.2f%% %8.2f | %10s %9s | %10s %9s %8g\n",
			pt.Dataset, 100*pt.Density, pt.TargetRecall,
			seconds(pt.NNDTime), pct(pt.NNDScan),
			seconds(pt.KIFFTime), pct(pt.KIFFScan), pt.KIFFBeta)
	}
	rows := make([][]string, 0, len(res.Points))
	for _, pt := range res.Points {
		rows = append(rows, []string{pt.Dataset, f(pt.Density), f(pt.TargetRecall),
			f(pt.NNDTime.Seconds()), f(pt.NNDScan), f(pt.KIFFTime.Seconds()), f(pt.KIFFScan), f(pt.KIFFBeta)})
	}
	if err := h.dumpTSV("fig10", []string{"dataset", "density", "target_recall",
		"nnd_time_s", "nnd_scan", "kiff_time_s", "kiff_scan", "kiff_beta"}, rows); err != nil {
		return nil, err
	}
	h.rule()
	h.printf("(paper: NN-Descent faster on dense ML-1/ML-2, KIFF faster on sparse ML-4/ML-5;\n")
	h.printf(" KIFF's scan rate falls with density, NN-Descent's stays ~5–6%%)\n\n")
	return res, nil
}
