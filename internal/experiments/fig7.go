package experiments

import (
	"kiff/internal/dataset"
	"kiff/internal/rcs"
	"kiff/internal/similarity"
	"kiff/internal/stats"
)

// Fig7Point is one truncated RCS of Figure 7: its size and the Spearman
// correlation between the common-item-count order and the order induced
// by a full similarity metric.
type Fig7Point struct {
	User    uint32
	Size    int
	Jaccard float64
	Cosine  float64
}

// Fig7Result reproduces Figure 7.
type Fig7Result struct {
	Cut         int
	Points      []Fig7Point
	MeanJaccard float64
	MeanCosine  float64
}

// Fig7 checks that truncation is benign: for Wikipedia users whose RCS
// exceeds the termination budget, the count-based RCS order correlates
// strongly with the orders induced by Jaccard and cosine, so good
// candidates are not pushed past the cut-off. Paper means: 0.60 (Jaccard)
// and 0.63 (cosine).
func (h *Harness) Fig7() (*Fig7Result, error) {
	d, err := h.Dataset(dataset.Wikipedia)
	if err != nil {
		return nil, err
	}
	k := h.K(dataset.Wikipedia.DefaultK())
	kf, err := h.DefaultRun("kiff", d, k)
	if err != nil {
		return nil, err
	}
	cut := kf.Iters * 2 * k // γ = 2k in the memoized default run

	// Complete (unpivoted) candidate sets with counts: Fig 7 studies the
	// per-user ranking itself, so the sets must not be halved by the pivot.
	sets := rcs.Build(d, rcs.BuildOptions{Workers: h.Opts.Workers, KeepCounts: true, NoPivot: true})
	jac := similarity.Jaccard{}.Prepare(d)
	cos := similarity.Cosine{}.Prepare(d)

	res := &Fig7Result{Cut: cut}
	for u := uint32(0); int(u) < d.NumUsers(); u++ {
		if sets.Len(u) <= cut {
			continue
		}
		list := sets.List(u)
		counts := sets.Counts(u)
		countVals := make([]float64, len(list))
		jacVals := make([]float64, len(list))
		cosVals := make([]float64, len(list))
		for i, v := range list {
			countVals[i] = float64(counts[i])
			jacVals[i] = jac(u, v)
			cosVals[i] = cos(u, v)
		}
		res.Points = append(res.Points, Fig7Point{
			User:    u,
			Size:    len(list),
			Jaccard: stats.Spearman(countVals, jacVals),
			Cosine:  stats.Spearman(countVals, cosVals),
		})
	}
	for _, pt := range res.Points {
		res.MeanJaccard += pt.Jaccard
		res.MeanCosine += pt.Cosine
	}
	if n := float64(len(res.Points)); n > 0 {
		res.MeanJaccard /= n
		res.MeanCosine /= n
	}

	rows := make([][]string, 0, len(res.Points))
	for _, pt := range res.Points {
		rows = append(rows, []string{i(pt.Size), f(pt.Jaccard), f(pt.Cosine)})
	}
	if err := h.dumpTSV("fig7_wikipedia", []string{"rcs_size", "spearman_jaccard", "spearman_cosine"}, rows); err != nil {
		return nil, err
	}

	h.printf("Fig 7 — Spearman correlation of RCS order vs metric order (wikipedia, |RCS| > %d)\n", cut)
	h.rule()
	h.printf("truncated users: %d\n", len(res.Points))
	h.printf("mean Spearman vs Jaccard: %.2f   vs cosine: %.2f\n", res.MeanJaccard, res.MeanCosine)
	limit := len(res.Points)
	if limit > 10 {
		limit = 10
	}
	h.printf("%8s %8s %10s %10s\n", "user", "|RCS|", "jaccard", "cosine")
	for _, pt := range res.Points[:limit] {
		h.printf("%8d %8d %10.2f %10.2f\n", pt.User, pt.Size, pt.Jaccard, pt.Cosine)
	}
	h.rule()
	h.printf("(paper: averages 0.60 for Jaccard, 0.63 for cosine; correlation grows with |RCS|)\n\n")
	return res, nil
}
