package experiments

import (
	"kiff/internal/rcs"
)

// Table9Row describes one member of the MovieLens density family.
type Table9Row struct {
	Dataset string
	Ratings int
	Density float64
	AvgRCS  float64
}

// Table9Result reproduces Table IX.
type Table9Result struct {
	Rows []Table9Row
}

// Table9 generates the ML-1..ML-5 ladder (ML-1 dense, each successor
// derived by random rating removal) and reports size, density and the
// average RCS length — the quantity that drives KIFF's cost (§V-B3).
// Paper: densities 4.47% → 0.30%, avg |RCS| 2,892.7 → 202.5.
func (h *Harness) Table9() (*Table9Result, error) {
	family, err := h.MovieLens()
	if err != nil {
		return nil, err
	}
	res := &Table9Result{}
	h.printf("Table IX — MovieLens datasets with different density\n")
	h.rule()
	h.printf("%-8s %12s %10s %14s\n", "dataset", "ratings", "density", "avg |RCS|")
	for _, d := range family {
		sets := rcs.Build(d, rcs.BuildOptions{Workers: h.Opts.Workers})
		row := Table9Row{
			Dataset: d.Name,
			Ratings: d.NumRatings(),
			Density: d.Density(),
			// Table IX reports the complete per-user candidate set length;
			// the pivoted sets halve the storage, so scale back up.
			AvgRCS: 2 * sets.BuildStats.AvgLen,
		}
		res.Rows = append(res.Rows, row)
		h.printf("%-8s %12d %9.2f%% %14.1f\n", row.Dataset, row.Ratings, 100*row.Density, row.AvgRCS)
	}
	h.rule()
	h.printf("(paper: 1,000,209→68,415 ratings, 4.47%%→0.30%% density, avg |RCS| 2,892.7→202.5)\n\n")
	return res, nil
}
