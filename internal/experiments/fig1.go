package experiments

import (
	"time"

	"kiff/internal/dataset"
	"kiff/internal/runstats"
)

// Fig1Breakdown is the activity split of one greedy baseline on the
// Wikipedia dataset (paper Fig 1: similarity computation dominates at over
// 90% of the total).
type Fig1Breakdown struct {
	Algorithm      string
	Candidates     time.Duration
	Similarity     time.Duration
	Total          time.Duration
	SimilarityFrac float64
}

// Fig1Result reproduces Figure 1.
type Fig1Result struct {
	Breakdowns []Fig1Breakdown
}

// Fig1 measures where NN-Descent and HyRec spend their time on the
// Wikipedia dataset with the default k = 20 — the motivation for KIFF.
func (h *Harness) Fig1() (*Fig1Result, error) {
	d, err := h.Dataset(dataset.Wikipedia)
	if err != nil {
		return nil, err
	}
	k := h.K(dataset.Wikipedia.DefaultK())
	res := &Fig1Result{}

	nnd, err := h.DefaultRun("nn-descent", d, k)
	if err != nil {
		return nil, err
	}
	hy, err := h.DefaultRun("hyrec", d, k)
	if err != nil {
		return nil, err
	}
	h.printf("Fig 1 — greedy KNN time breakdown (wikipedia, k=%d)\n", k)
	h.rule()
	h.printf("%-12s %15s %15s %12s %16s\n",
		"approach", "candidate sel.", "similarity", "total", "similarity frac")
	for _, ar := range []AlgoRun{nnd, hy} {
		cand := ar.Run.PhaseTimes[runstats.PhaseCandidates]
		sim := ar.Run.PhaseTimes[runstats.PhaseSimilarity]
		b := Fig1Breakdown{
			Algorithm:  ar.Algorithm,
			Candidates: cand,
			Similarity: sim,
			Total:      ar.WallTime,
		}
		if ar.WallTime > 0 {
			b.SimilarityFrac = sim.Seconds() / ar.WallTime.Seconds()
		}
		res.Breakdowns = append(res.Breakdowns, b)
		h.printf("%-12s %15s %15s %12s %15.1f%%\n",
			ar.Algorithm, seconds(cand), seconds(sim), seconds(ar.WallTime), 100*b.SimilarityFrac)
	}
	h.rule()
	h.printf("(paper: both approaches spend >90%% of their time on similarity values)\n\n")
	rows := make([][]string, 0, len(res.Breakdowns))
	for _, b := range res.Breakdowns {
		rows = append(rows, []string{b.Algorithm, f(b.Candidates.Seconds()), f(b.Similarity.Seconds()), f(b.Total.Seconds())})
	}
	if err := h.dumpTSV("fig1_wikipedia", []string{"algorithm", "candidates_s", "similarity_s", "total_s"}, rows); err != nil {
		return nil, err
	}
	return res, nil
}
