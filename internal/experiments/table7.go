package experiments

import (
	"math/rand"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/rcs"
	"kiff/internal/similarity"
)

// Table7Row compares the initial recall of the two bootstrap strategies
// for one dataset: KIFF's "top k of each RCS" versus the random k-degree
// graph used by traditional greedy approaches (Table VII).
type Table7Row struct {
	Dataset    string
	TopKRecall float64
	RandRecall float64
}

// Table7Result reproduces Table VII.
type Table7Result struct {
	Rows []Table7Row
}

// Table7 measures the recall of the two initialization methods before any
// refinement iteration runs (β = ∞ in Algorithm 1). Paper values: 0.54 to
// 0.82 for the RCS top-k, at most 0.15 for random graphs.
func (h *Harness) Table7() (*Table7Result, error) {
	res := &Table7Result{}
	h.printf("Table VII — impact of initialization method on initial recall\n")
	h.rule()
	h.printf("%-12s %16s %10s\n", "dataset", "top k from RCS", "random")
	for _, p := range dataset.Presets {
		d, err := h.Dataset(p)
		if err != nil {
			return nil, err
		}
		k := h.K(p.DefaultK())
		exact := h.Exact(d, k)

		sets := rcs.Build(d, rcs.BuildOptions{Workers: h.Opts.Workers, NoPivot: true})
		sim := similarity.Cosine{}.Prepare(d)
		topk := initFromRCS(d, sets, sim, k)
		random := randomGraph(d, sim, k, h.Opts.Seed)

		row := Table7Row{
			Dataset:    d.Name,
			TopKRecall: exact.Recall(topk),
			RandRecall: exact.Recall(random),
		}
		res.Rows = append(res.Rows, row)
		h.printf("%-12s %16.2f %10.2f\n", row.Dataset, row.TopKRecall, row.RandRecall)
	}
	h.rule()
	h.printf("(paper: 0.54–0.82 from RCS vs ≤ 0.15 random)\n\n")
	return res, nil
}

// initFromRCS builds the KNN approximation that uses the top k candidates
// of each (complete) RCS, annotated with their true similarities so the
// recall computation can score them.
func initFromRCS(d *dataset.Dataset, sets *rcs.Sets, sim similarity.Func, k int) *knngraph.Graph {
	lists := make([][]knngraph.Neighbor, d.NumUsers())
	for u := range lists {
		list := sets.List(uint32(u))
		if len(list) > k {
			list = list[:k]
		}
		nbs := make([]knngraph.Neighbor, len(list))
		for i, v := range list {
			nbs[i] = knngraph.Neighbor{ID: v, Sim: sim(uint32(u), v)}
		}
		knngraph.SortNeighbors(nbs)
		lists[u] = nbs
	}
	return knngraph.New(k, lists)
}

// randomGraph builds the random k-degree initial graph of traditional
// greedy approaches, annotated with true similarities.
func randomGraph(d *dataset.Dataset, sim similarity.Func, k int, seed int64) *knngraph.Graph {
	n := d.NumUsers()
	rng := rand.New(rand.NewSource(seed))
	lists := make([][]knngraph.Neighbor, n)
	for u := 0; u < n; u++ {
		need := k
		if need > n-1 {
			need = n - 1
		}
		seen := make(map[uint32]bool, need)
		nbs := make([]knngraph.Neighbor, 0, need)
		for len(nbs) < need {
			v := uint32(rng.Intn(n))
			if int(v) == u || seen[v] {
				continue
			}
			seen[v] = true
			nbs = append(nbs, knngraph.Neighbor{ID: v, Sim: sim(uint32(u), v)})
		}
		knngraph.SortNeighbors(nbs)
		lists[u] = nbs
	}
	return knngraph.New(k, lists)
}
