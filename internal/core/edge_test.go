package core

import (
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// Edge-regime tests: degenerate populations every production KNN library
// must survive.

func TestSingleUser(t *testing.T) {
	d, err := dataset.New("one", []sparse.Vector{{IDs: []uint32{0, 1}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Neighbors(0)) != 0 {
		t.Error("single user cannot have neighbors")
	}
	if res.Run.SimEvals != 0 {
		t.Error("no pairs exist, no similarities should be computed")
	}
}

func TestTwoUsersOverlapping(t *testing.T) {
	d := dataset.FromProfiles("two", []map[uint32]float64{
		{0: 1, 1: 1},
		{1: 1, 2: 1},
	}, true)
	res, err := Build(d, DefaultConfig(5)) // k far above n-1
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Neighbors(0)) != 1 || res.Graph.Neighbors(0)[0].ID != 1 {
		t.Errorf("neighbors(0) = %v", res.Graph.Neighbors(0))
	}
	if res.Run.SimEvals != 1 {
		t.Errorf("SimEvals = %d, want exactly 1 (the single overlapping pair)", res.Run.SimEvals)
	}
}

func TestAllUsersDisjoint(t *testing.T) {
	d := dataset.FromProfiles("disjoint", []map[uint32]float64{
		{0: 1}, {1: 1}, {2: 1}, {3: 1},
	}, true)
	res, err := Build(d, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.SimEvals != 0 {
		t.Errorf("disjoint users produced %d similarity evals", res.Run.SimEvals)
	}
	for u := range d.Users {
		if len(res.Graph.Neighbors(uint32(u))) != 0 {
			t.Errorf("user %d has neighbors despite sharing nothing", u)
		}
	}
}

func TestEmptyProfilesMixedIn(t *testing.T) {
	d := dataset.FromProfiles("mixed", []map[uint32]float64{
		{0: 1, 1: 1},
		{},
		{0: 1},
		{},
	}, true)
	res, err := Build(d, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Graph.Neighbors(1)) != 0 || len(res.Graph.Neighbors(3)) != 0 {
		t.Error("empty-profile users must stay isolated")
	}
	if len(res.Graph.Neighbors(0)) != 1 || res.Graph.Neighbors(0)[0].ID != 2 {
		t.Errorf("neighbors(0) = %v, want [2]", res.Graph.Neighbors(0))
	}
}

func TestIdenticalProfiles(t *testing.T) {
	// All users identical: every pair has similarity 1; the graph must be
	// complete up to k with deterministic ID tie-breaks.
	profiles := make([]map[uint32]float64, 6)
	for i := range profiles {
		profiles[i] = map[uint32]float64{0: 1, 1: 1, 2: 1}
	}
	d := dataset.FromProfiles("identical", profiles, true)
	res, err := Build(d, Config{K: 3, Gamma: -1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	for u := range profiles {
		nbs := res.Graph.Neighbors(uint32(u))
		if len(nbs) != 3 {
			t.Fatalf("user %d has %d neighbors, want 3", u, len(nbs))
		}
		// Tie-break by ascending ID: the three smallest other IDs.
		want := []uint32{}
		for v := uint32(0); len(want) < 3; v++ {
			if int(v) != u {
				want = append(want, v)
			}
		}
		for i := range want {
			if nbs[i].ID != want[i] {
				t.Fatalf("user %d neighbors = %v, want IDs %v", u, nbs, want)
			}
			if diff := nbs[i].Sim - 1; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("identical profiles must have similarity ≈ 1, got %v", nbs[i].Sim)
			}
		}
	}
}

func TestZeroUsers(t *testing.T) {
	d, err := dataset.New("empty", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumUsers() != 0 {
		t.Error("empty dataset must produce an empty graph")
	}
}

func TestGammaOne(t *testing.T) {
	// γ=1 is the slowest legal budget; the run must still converge to the
	// same exhaustive result with β=0.
	d := dataset.FromProfiles("gamma1", []map[uint32]float64{
		{0: 1, 1: 1},
		{0: 1, 2: 1},
		{1: 1, 2: 1},
	}, true)
	res, err := Build(d, Config{K: 2, Gamma: 1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	for u := range d.Users {
		if len(res.Graph.Neighbors(uint32(u))) != 2 {
			t.Fatalf("user %d: %v", u, res.Graph.Neighbors(uint32(u)))
		}
	}
	// Iterations = max |RCS| + 1 (a final empty iteration detects drain).
	if res.Run.Iterations < 2 {
		t.Errorf("γ=1 converged in %d iterations, expected > 1", res.Run.Iterations)
	}
}
