package core

import (
	"math"
	"testing"
	"time"

	"kiff/internal/bruteforce"
	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

func TestBuildRejectsBadConfig(t *testing.T) {
	d, _, _ := dataset.Toy()
	bads := []Config{
		{K: 0},
		{K: 2, Beta: math.NaN()},
		{K: 2, MaxIterations: -1},
	}
	for i, cfg := range bads {
		if _, err := Build(d, cfg); err == nil {
			t.Errorf("case %d: Build accepted invalid config", i)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(20)
	if cfg.Gamma != 40 || cfg.Beta != 0.001 || cfg.K != 20 {
		t.Errorf("DefaultConfig = %+v, want γ=2k β=0.001", cfg)
	}
}

func TestToyExample(t *testing.T) {
	// Figure 2/3 sanity: Alice's only possible neighbor is Bob (shared
	// coffee); Carl and Dave pair up over shopping.
	d, _, _ := dataset.Toy()
	res, err := Build(d, Config{K: 2, Gamma: -1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	alice := g.Neighbors(0)
	if len(alice) != 1 || alice[0].ID != 1 {
		t.Errorf("Alice's neighbors = %v, want just Bob", alice)
	}
	carl := g.Neighbors(2)
	if len(carl) != 1 || carl[0].ID != 3 {
		t.Errorf("Carl's neighbors = %v, want just Dave", carl)
	}
	// Carl/Dave have identical profiles: cosine 1.
	if math.Abs(carl[0].Sim-1) > 1e-12 {
		t.Errorf("Carl–Dave similarity = %v, want 1", carl[0].Sim)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestGammaInfinityIsExact verifies the paper's §III-D optimality claim:
// exhausting the RCSs yields the exact KNN graph for any metric that
// satisfies Eq. (5) and (6) — here checked against brute force for every
// registered metric on a generated sparse dataset.
func TestGammaInfinityIsExact(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.015, 8)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	for _, name := range similarity.Names() {
		metric, err := similarity.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Build(d, Config{K: k, Gamma: -1, Beta: -1, Metric: metric})
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteforce.Exact(d, metric, k, 0)
		if got := exact.Recall(res.Graph); math.Abs(got-1) > 1e-12 {
			t.Errorf("metric %s: γ=∞ recall = %v, want exactly 1", name, got)
		}
	}
}

func TestGammaInfinityExactOnWeighted(t *testing.T) {
	d, err := dataset.Gowalla.Generate(0.002, 9) // weighted visit counts
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	res, err := Build(d, Config{K: k, Gamma: -1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	// §III-D optimality is about the *positive-similarity* candidates:
	// KIFF never evaluates disjoint pairs, so users with fewer than k
	// overlapping candidates end up with short neighborhoods, while brute
	// force pads the exact top-k with arbitrary zero-similarity ties. The
	// precise property is therefore that the positive prefix of every
	// neighborhood matches the exact one similarity-for-similarity.
	exactG := bruteforce.Graph(d, similarity.Cosine{}, k, 0)
	for u := 0; u < exactG.NumUsers(); u++ {
		var exactPos, approxPos []float64
		for _, nb := range exactG.Neighbors(uint32(u)) {
			if nb.Sim > 1e-12 {
				exactPos = append(exactPos, nb.Sim)
			}
		}
		for _, nb := range res.Graph.Neighbors(uint32(u)) {
			if nb.Sim > 1e-12 {
				approxPos = append(approxPos, nb.Sim)
			}
		}
		if len(exactPos) != len(approxPos) {
			t.Fatalf("user %d: %d positive neighbors, exact has %d", u, len(approxPos), len(exactPos))
		}
		for i := range exactPos {
			if math.Abs(exactPos[i]-approxPos[i]) > 1e-12 {
				t.Fatalf("user %d: positive prefix diverges at %d: %v vs %v",
					u, i, approxPos[i], exactPos[i])
			}
		}
	}
	// And the headline number still rounds to the paper's 0.99.
	exact := bruteforce.Exact(d, similarity.Cosine{}, k, 0)
	if got := exact.Recall(res.Graph); got < 0.99 {
		t.Errorf("weighted γ=∞ recall = %v, want ≥ 0.99", got)
	}
}

func TestDefaultParametersHighRecall(t *testing.T) {
	// With the paper's defaults (γ=2k, β=0.001) KIFF reports 0.99 recall
	// across all datasets (Table II).
	d, err := dataset.Wikipedia.Generate(0.03, 10)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	res, err := Build(d, DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	exact := bruteforce.Exact(d, similarity.Cosine{}, k, 0)
	if got := exact.Recall(res.Graph); got < 0.95 {
		t.Errorf("default-parameter recall = %v, want ≥ 0.95", got)
	}
}

func TestScanRateBoundedByRCS(t *testing.T) {
	// §III-D: the number of similarity computations cannot exceed Σ|RCSu|.
	d, err := dataset.Arxiv.Generate(0.01, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.SimEvals > int64(res.RCS.TotalCandidates) {
		t.Errorf("SimEvals = %d exceeds Σ|RCS| = %d", res.Run.SimEvals, res.RCS.TotalCandidates)
	}
	if res.Run.SimEvals == 0 {
		t.Error("SimEvals must be counted")
	}
	// Scan rate must also respect the MaxScanRate bound of §V-A2.
	maxScan := 2 * res.RCS.AvgLen / float64(d.NumUsers()-1)
	if got := res.Run.ScanRate(); got > maxScan+1e-9 {
		t.Errorf("scan rate %v exceeds max scan %v", got, maxScan)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// In exhaustive mode the final graph is a pure function of the input:
	// worker layout must not change it.
	d, err := dataset.Wikipedia.Generate(0.01, 12)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Build(d, Config{K: 8, Gamma: -1, Beta: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(d, Config{K: 8, Gamma: -1, Beta: -1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < a.Graph.NumUsers(); u++ {
		la, lb := a.Graph.Neighbors(uint32(u)), b.Graph.Neighbors(uint32(u))
		if len(la) != len(lb) {
			t.Fatalf("user %d: neighbor counts differ across worker counts", u)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("user %d: neighbors differ across worker counts", u)
			}
		}
	}
}

func TestIterationAccounting(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	r := res.Run
	if r.Iterations < 1 {
		t.Fatal("must run at least one iteration")
	}
	if len(r.UpdatesPerIter) != r.Iterations || len(r.EvalsAtIter) != r.Iterations {
		t.Fatalf("trace lengths %d/%d != iterations %d",
			len(r.UpdatesPerIter), len(r.EvalsAtIter), r.Iterations)
	}
	// Cumulative evals must be non-decreasing and end at SimEvals.
	for i := 1; i < len(r.EvalsAtIter); i++ {
		if r.EvalsAtIter[i] < r.EvalsAtIter[i-1] {
			t.Fatal("EvalsAtIter must be non-decreasing")
		}
	}
	if r.EvalsAtIter[len(r.EvalsAtIter)-1] != r.SimEvals {
		t.Errorf("final cumulative evals %d != SimEvals %d",
			r.EvalsAtIter[len(r.EvalsAtIter)-1], r.SimEvals)
	}
}

func TestMaxIterationsCap(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 14)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.Gamma = 1 // force many iterations
	cfg.Beta = -1 // no threshold: only the cap stops the loop
	cfg.MaxIterations = 3
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Iterations != 3 {
		t.Errorf("Iterations = %d, want capped at 3", res.Run.Iterations)
	}
}

func TestHookObservesProgress(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 15)
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	cfg := DefaultConfig(5)
	cfg.Hook = func(iter int, g *knngraph.Graph, evals int64) float64 {
		iters = append(iters, iter)
		if g.NumUsers() != d.NumUsers() {
			t.Errorf("hook snapshot has %d users", g.NumUsers())
		}
		if evals <= 0 {
			t.Error("hook must see positive eval count")
		}
		return float64(iter)
	}
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != res.Run.Iterations {
		t.Errorf("hook called %d times, want %d", len(iters), res.Run.Iterations)
	}
	if len(res.Run.RecallAtIter) != res.Run.Iterations {
		t.Errorf("RecallAtIter not recorded")
	}
	for i, v := range res.Run.RecallAtIter {
		if v != float64(i) {
			t.Errorf("RecallAtIter[%d] = %v, want hook return %d", i, v, i)
		}
	}
}

func TestInitialIterationFillsFromRCSTop(t *testing.T) {
	// §II-D second optimization: the first iteration plays the role of
	// initialization. After one iteration with γ=k, every user with a
	// non-empty RCS (or appearing in another user's RCS) has neighbors.
	d, err := dataset.Wikipedia.Generate(0.01, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.MaxIterations = 1
	res, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withNeighbors := 0
	for u := 0; u < res.Graph.NumUsers(); u++ {
		if len(res.Graph.Neighbors(uint32(u))) > 0 {
			withNeighbors++
		}
	}
	if frac := float64(withNeighbors) / float64(d.NumUsers()); frac < 0.8 {
		t.Errorf("after 1 iteration only %.0f%% of users have neighbors", frac*100)
	}
}

func TestRandomOrderAblationStillExactWhenExhaustive(t *testing.T) {
	// Shuffled candidate order changes the path, not the destination:
	// exhausting the (shuffled) RCSs must still be exact.
	d, err := dataset.Wikipedia.Generate(0.01, 17)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	res, err := Build(d, Config{K: k, Gamma: -1, Beta: -1, RandomOrderRCS: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact := bruteforce.Exact(d, similarity.Cosine{}, k, 0)
	if got := exact.Recall(res.Graph); math.Abs(got-1) > 1e-12 {
		t.Errorf("shuffled exhaustive recall = %v, want 1", got)
	}
}

func TestPhaseTimesPopulated(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.02, 18)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(d, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.PhaseTimes[runstats.PhasePreprocess] <= 0 {
		t.Error("preprocessing time missing")
	}
	if res.Run.PhaseTimes[runstats.PhaseCandidates] <= 0 {
		t.Error("candidate-selection time missing")
	}
	if res.Run.PhaseTimes[runstats.PhaseSimilarity] <= 0 {
		t.Error("similarity time missing")
	}
	if res.Run.WallTime <= 0 {
		t.Error("wall time missing")
	}
	// The phases are measured sub-spans of the run (now at block
	// granularity, not per user), so their sum must stay within the wall
	// clock: per-worker spans are divided by the worker count before
	// being folded into PhaseTimes.
	var sum time.Duration
	for _, pt := range res.Run.PhaseTimes {
		sum += pt
	}
	if sum > res.Run.WallTime {
		t.Errorf("phase times sum to %v, exceeding wall time %v", sum, res.Run.WallTime)
	}
}

func TestMinRatingReducesWork(t *testing.T) {
	d, err := dataset.Gowalla.Generate(0.002, 19) // weighted
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(d, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.MinRating = 3
	thresholded, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if thresholded.RCS.TotalCandidates >= full.RCS.TotalCandidates {
		t.Errorf("§VII threshold did not shrink RCSs: %d vs %d",
			thresholded.RCS.TotalCandidates, full.RCS.TotalCandidates)
	}
	if thresholded.Run.SimEvals > full.Run.SimEvals {
		t.Errorf("§VII threshold increased similarity work: %d vs %d",
			thresholded.Run.SimEvals, full.Run.SimEvals)
	}
}
