package core

import (
	"sync/atomic"
	"time"

	"kiff/internal/engine"
	"kiff/internal/parallel"
	"kiff/internal/rcs"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Name is the engine registry key of the KIFF builder.
const Name = "kiff"

func init() { engine.Register(builder{}) }

// builder plugs KIFF into the engine: the counting phase followed by the
// greedy RCS refinement loop of Algorithm 1.
type builder struct{}

// Name implements engine.Builder.
func (builder) Name() string { return Name }

// Normalize implements engine.Builder: γ = 2k and β = 0.001 are the paper
// defaults (§IV-D); a negative Beta disables the termination threshold so
// the loop runs until the candidate sets are exhausted (exact mode).
func (builder) Normalize(o *engine.Options) error {
	if o.Gamma == 0 {
		o.Gamma = 2 * o.K
	}
	if o.Beta == 0 {
		o.Beta = 0.001
	}
	return nil
}

// refineWorker is the per-worker state of the refinement loop, allocated
// once per run and reused across iterations: the one-vs-many scoring
// kernel (with its scatter scratch), the popped candidate chunks of the
// worker's block, and the score buffer ScoreInto fills.
type refineWorker struct {
	kernel similarity.Batcher
	chunks [][]uint32
	scores []float64
}

// Refine implements engine.Builder: build the Ranked Candidate Sets, then
// iterate the pop-γ/evaluate/update loop until exhaustion, the β
// threshold, or the iteration cap.
//
// Each iteration runs in two sub-phases per worker block: pop every
// user's γ-chunk (candidate selection), then score each pivot against its
// whole chunk with the batched kernel and drive the heaps (similarity).
// Splitting the block this way is what makes the phase timings cheap —
// two clock reads per block instead of two per user — and what gives the
// kernel its locality: the pivot's profile is scattered once per chunk.
func (builder) Refine(s *engine.Session) error {
	o := s.Opts
	d := s.Dataset
	n := d.NumUsers()

	// ---- Counting phase (preprocessing) -------------------------------
	preStart := time.Now()
	sets := rcs.Build(d, rcs.BuildOptions{
		Workers:   o.Workers,
		MinRating: o.MinRating,
		Shuffle:   o.RandomOrderRCS,
		Seed:      o.Seed,
	})
	s.RCS = sets.BuildStats
	s.Wall.Add(runstats.PhasePreprocess, time.Since(preStart))

	// ---- Refinement phase ---------------------------------------------
	nw := parallel.Workers(o.Workers)
	if nw > n && n > 0 {
		nw = n
	}
	workers := make([]refineWorker, nw)
	for iter := 0; ; iter++ {
		if o.MaxIterations > 0 && iter >= o.MaxIterations {
			break
		}
		var popped atomic.Int64
		changes := parallel.SumInt64(n, o.Workers, func(w, lo, hi int) int64 {
			ws := &workers[w]
			if ws.kernel == nil {
				ws.kernel = s.Batcher()
			}

			// Sub-phase 1: pop every user's next γ candidates. The chunks
			// alias RCS storage and stay valid until the same user's next
			// pop — i.e. through this whole iteration.
			t0 := time.Now()
			chunks := ws.chunks[:0]
			var p int64
			for u := lo; u < hi; u++ {
				cs := sets.TopPop(uint32(u), o.Gamma)
				p += int64(len(cs))
				chunks = append(chunks, cs)
			}
			ws.chunks = chunks
			t1 := time.Now()

			// Sub-phase 2: score each pivot against its chunk in one
			// batched call, then offer every pair to both endpoints
			// (pivot rule: v > u by construction, Alg. 1 line 10).
			var c int64
			for idx, cs := range chunks {
				if len(cs) == 0 {
					continue
				}
				u := uint32(lo + idx)
				if cap(ws.scores) < len(cs) {
					ws.scores = make([]float64, len(cs))
				}
				scores := ws.scores[:len(cs)]
				ws.kernel.ScoreInto(scores, u, cs)
				for i, v := range cs {
					c += int64(s.Heaps.Update(u, v, scores[i]))
					c += int64(s.Heaps.Update(v, u, scores[i]))
				}
			}
			s.Work.Add(runstats.PhaseCandidates, t1.Sub(t0))
			s.Work.Add(runstats.PhaseSimilarity, time.Since(t1))
			popped.Add(p)
			return c
		})
		s.RecordIteration(iter, changes)
		if popped.Load() == 0 {
			break // RCSs exhausted: no further iteration can change anything
		}
		if o.Beta >= 0 && float64(changes)/float64(n) < o.Beta {
			break // Algorithm 1 line 13: c/|U| < β
		}
	}
	return nil
}
