package core

import (
	"sync/atomic"
	"time"

	"kiff/internal/engine"
	"kiff/internal/parallel"
	"kiff/internal/rcs"
	"kiff/internal/runstats"
)

// Name is the engine registry key of the KIFF builder.
const Name = "kiff"

func init() { engine.Register(builder{}) }

// builder plugs KIFF into the engine: the counting phase followed by the
// greedy RCS refinement loop of Algorithm 1.
type builder struct{}

// Name implements engine.Builder.
func (builder) Name() string { return Name }

// Normalize implements engine.Builder: γ = 2k and β = 0.001 are the paper
// defaults (§IV-D); a negative Beta disables the termination threshold so
// the loop runs until the candidate sets are exhausted (exact mode).
func (builder) Normalize(o *engine.Options) error {
	if o.Gamma == 0 {
		o.Gamma = 2 * o.K
	}
	if o.Beta == 0 {
		o.Beta = 0.001
	}
	return nil
}

// Refine implements engine.Builder: build the Ranked Candidate Sets, then
// iterate the pop-γ/evaluate/update loop until exhaustion, the β
// threshold, or the iteration cap.
func (builder) Refine(s *engine.Session) error {
	o := s.Opts
	d := s.Dataset
	n := d.NumUsers()

	// ---- Counting phase (preprocessing) -------------------------------
	preStart := time.Now()
	sets := rcs.Build(d, rcs.BuildOptions{
		Workers:   o.Workers,
		MinRating: o.MinRating,
		Shuffle:   o.RandomOrderRCS,
		Seed:      o.Seed,
	})
	s.RCS = sets.BuildStats
	s.Wall.Add(runstats.PhasePreprocess, time.Since(preStart))

	// ---- Refinement phase ---------------------------------------------
	for iter := 0; ; iter++ {
		if o.MaxIterations > 0 && iter >= o.MaxIterations {
			break
		}
		var popped atomic.Int64
		changes := parallel.SumInt64(n, o.Workers, func(_, lo, hi int) int64 {
			var c, p int64
			var candTime, simTime time.Duration
			for u := lo; u < hi; u++ {
				t0 := time.Now()
				cs := sets.TopPop(uint32(u), o.Gamma)
				t1 := time.Now()
				candTime += t1.Sub(t0)
				if len(cs) == 0 {
					continue
				}
				p += int64(len(cs))
				for _, v := range cs {
					// By construction v > u (pivot rule, Alg. 1 line 10).
					sim := s.Sim(uint32(u), v)
					c += int64(s.Heaps.Update(uint32(u), v, sim))
					c += int64(s.Heaps.Update(v, uint32(u), sim))
				}
				simTime += time.Since(t1)
			}
			s.Work.Add(runstats.PhaseCandidates, candTime)
			s.Work.Add(runstats.PhaseSimilarity, simTime)
			popped.Add(p)
			return c
		})
		s.RecordIteration(iter, changes)
		if popped.Load() == 0 {
			break // RCSs exhausted: no further iteration can change anything
		}
		if o.Beta >= 0 && float64(changes)/float64(n) < o.Beta {
			break // Algorithm 1 line 13: c/|U| < β
		}
	}
	return nil
}
