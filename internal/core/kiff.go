// Package core implements KIFF (K-nearest-neighbor Impressively Fast and
// eFficient), the paper's primary contribution: a KNN-graph construction
// algorithm that replaces the random initial graph of greedy approaches
// with Ranked Candidate Sets precomputed from the user–item bipartite
// graph (Algorithm 1 of the paper).
//
// The counting phase lives in kiff/internal/rcs; this package implements
// the refinement phase: a greedy loop in which every user pops the top γ
// untried candidates from its RCS, evaluates the (expensive) similarity
// for exactly those pairs, and updates both endpoints' bounded k-heaps.
// The loop stops when the average number of heap changes per user in an
// iteration falls below the termination threshold β.
//
// Two of the paper's design points are worth restating here:
//
//   - initialization is not a special case: heaps start empty and fill up
//     during the first iterations (§II-D, second optimization);
//   - with γ = ∞ (Gamma < 0) the candidate sets are exhausted in a single
//     iteration and, because the supported metrics satisfy Eq. (5)/(6),
//     the result is the exact KNN graph (§III-D) — a property the tests
//     verify against brute force.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/knnheap"
	"kiff/internal/parallel"
	"kiff/internal/rcs"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Config parameterizes a KIFF run. The zero value is not runnable; use
// DefaultConfig for the paper's defaults.
type Config struct {
	// K is the neighborhood size (paper default: 20, DBLP: 50).
	K int
	// Gamma is the number of candidates popped from each RCS per
	// iteration. Negative means ∞ (exhaust in one iteration). The paper
	// uses γ = 2k by default (§IV-D); Gamma == 0 selects that default.
	Gamma int
	// Beta is the termination threshold: the run stops when the average
	// number of neighborhood changes per user in an iteration drops below
	// Beta (paper default 0.001). Beta == 0 keeps iterating until the
	// candidate sets are exhausted (the exact mode).
	Beta float64
	// Metric is the similarity measure; nil selects cosine, the paper's
	// default.
	Metric similarity.Metric
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// MinRating forwards the §VII candidate-insertion threshold to the
	// counting phase (0 disables it).
	MinRating float64
	// MaxIterations caps the refinement loop as a safety valve
	// (0 = unlimited; the loop always stops once the RCSs are exhausted).
	MaxIterations int
	// RandomOrderRCS shuffles each candidate set instead of ranking it by
	// shared-item count. This is an ablation switch: it isolates the value
	// of the *ordering* from the value of the *pruning*.
	RandomOrderRCS bool
	// Seed drives RandomOrderRCS shuffling.
	Seed int64
	// Hook, when non-nil, observes every iteration (used for the Fig 8
	// convergence traces).
	Hook runstats.IterHook
}

// DefaultConfig returns the paper's default parameters for a given k:
// γ = 2k, β = 0.001, cosine similarity, all CPUs.
func DefaultConfig(k int) Config {
	return Config{K: k, Gamma: 2 * k, Beta: 0.001, Metric: similarity.Cosine{}}
}

// Result bundles the constructed graph with the run's cost metrics.
type Result struct {
	Graph *knngraph.Graph
	Run   runstats.Run
	// RCS reports the counting-phase statistics (Table V).
	RCS rcs.BuildStats
}

// Build runs KIFF on the dataset.
func Build(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := normalize(&cfg); err != nil {
		return nil, err
	}
	n := d.NumUsers()
	start := time.Now()
	var timer runstats.PhaseTimer

	// ---- Counting phase (preprocessing) -------------------------------
	preStart := time.Now()
	sets := rcs.Build(d, rcs.BuildOptions{
		Workers:   cfg.Workers,
		MinRating: cfg.MinRating,
		Shuffle:   cfg.RandomOrderRCS,
		Seed:      cfg.Seed,
	})
	var evals atomic.Int64
	sim := similarity.Counted(cfg.Metric.Prepare(d), &evals)
	heaps := knnheap.NewSet(n, cfg.K)
	timer.Add(runstats.PhasePreprocess, time.Since(preStart))

	// ---- Refinement phase ---------------------------------------------
	run := runstats.Run{
		Algorithm: "kiff",
		NumUsers:  n,
		K:         cfg.K,
	}
	for iter := 0; ; iter++ {
		if cfg.MaxIterations > 0 && iter >= cfg.MaxIterations {
			break
		}
		var popped atomic.Int64
		changes := parallel.SumInt64(n, cfg.Workers, func(_, lo, hi int) int64 {
			var c, p int64
			var candTime, simTime time.Duration
			for u := lo; u < hi; u++ {
				t0 := time.Now()
				cs := sets.TopPop(uint32(u), cfg.Gamma)
				t1 := time.Now()
				candTime += t1.Sub(t0)
				if len(cs) == 0 {
					continue
				}
				p += int64(len(cs))
				for _, v := range cs {
					// By construction v > u (pivot rule, Alg. 1 line 10).
					s := sim(uint32(u), v)
					c += int64(heaps.Update(uint32(u), v, s))
					c += int64(heaps.Update(v, uint32(u), s))
				}
				simTime += time.Since(t1)
			}
			timer.Add(runstats.PhaseCandidates, candTime)
			timer.Add(runstats.PhaseSimilarity, simTime)
			popped.Add(p)
			return c
		})
		run.Iterations++
		run.UpdatesPerIter = append(run.UpdatesPerIter, changes)
		run.EvalsAtIter = append(run.EvalsAtIter, evals.Load())
		if cfg.Hook != nil {
			r := cfg.Hook(iter, knngraph.FromSet(heaps), evals.Load())
			run.RecallAtIter = append(run.RecallAtIter, r)
		}
		if popped.Load() == 0 {
			break // RCSs exhausted: no further iteration can change anything
		}
		if float64(changes)/float64(n) < cfg.Beta {
			break // Algorithm 1 line 13: c/|U| < β
		}
	}

	run.WallTime = time.Since(start)
	run.SimEvals = evals.Load()
	// Candidate-selection and similarity time were accumulated per worker
	// inside the parallel loop; divide by the worker count so PhaseTimes
	// are wall-clock-equivalent and comparable to WallTime (preprocessing
	// was measured around the whole counting phase and is already wall).
	w := parallel.Workers(cfg.Workers)
	if w > n && n > 0 {
		w = n
	}
	run.PhaseTimes[runstats.PhasePreprocess] = timer.Duration(runstats.PhasePreprocess)
	run.PhaseTimes[runstats.PhaseCandidates] = timer.Duration(runstats.PhaseCandidates) / time.Duration(w)
	run.PhaseTimes[runstats.PhaseSimilarity] = timer.Duration(runstats.PhaseSimilarity) / time.Duration(w)
	return &Result{
		Graph: knngraph.FromSet(heaps),
		Run:   run,
		RCS:   sets.BuildStats,
	}, nil
}

func normalize(cfg *Config) error {
	if cfg.K < 1 {
		return errors.New("kiff: K must be ≥ 1")
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 2 * cfg.K // paper default γ = 2k
	}
	if cfg.Beta < 0 {
		return fmt.Errorf("kiff: Beta must be ≥ 0, got %v", cfg.Beta)
	}
	if cfg.Metric == nil {
		cfg.Metric = similarity.Cosine{}
	}
	if cfg.MaxIterations < 0 {
		return errors.New("kiff: MaxIterations must be ≥ 0")
	}
	return nil
}
