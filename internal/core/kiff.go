// Package core implements KIFF (K-nearest-neighbor Impressively Fast and
// eFficient), the paper's primary contribution: a KNN-graph construction
// algorithm that replaces the random initial graph of greedy approaches
// with Ranked Candidate Sets precomputed from the user–item bipartite
// graph (Algorithm 1 of the paper).
//
// The counting phase lives in kiff/internal/rcs; this package implements
// the refinement phase: a greedy loop in which every user pops the top γ
// untried candidates from its RCS, evaluates the (expensive) similarity
// for exactly those pairs, and updates both endpoints' bounded k-heaps.
// The loop stops when the average number of heap changes per user in an
// iteration falls below the termination threshold β.
//
// The algorithm is plugged into kiff/internal/engine (see builder.go):
// Build below is a thin adapter that maps Config onto engine.Options, so
// KIFF shares its option normalization, metric preparation and runstats
// instrumentation with every other registered builder.
//
// Two of the paper's design points are worth restating here:
//
//   - initialization is not a special case: heaps start empty and fill up
//     during the first iterations (§II-D, second optimization);
//   - with γ = ∞ (Gamma < 0) the candidate sets are exhausted in a single
//     iteration and, because the supported metrics satisfy Eq. (5)/(6),
//     the result is the exact KNN graph (§III-D) — a property the tests
//     verify against brute force.
package core

import (
	"kiff/internal/dataset"
	"kiff/internal/engine"
	"kiff/internal/knngraph"
	"kiff/internal/rcs"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
)

// Config parameterizes a KIFF run. The zero value is not runnable; use
// DefaultConfig for the paper's defaults.
type Config struct {
	// K is the neighborhood size (paper default: 20, DBLP: 50).
	K int
	// Gamma is the number of candidates popped from each RCS per
	// iteration. Negative means ∞ (exhaust in one iteration). The paper
	// uses γ = 2k by default (§IV-D); Gamma == 0 selects that default.
	Gamma int
	// Beta is the termination threshold: the run stops when the average
	// number of neighborhood changes per user in an iteration drops below
	// Beta. Beta == 0 selects the paper default 0.001; a negative Beta
	// disables the threshold, so the loop keeps iterating until the
	// candidate sets are exhausted (the exact mode of §III-D).
	Beta float64
	// Metric is the similarity measure; nil selects cosine, the paper's
	// default.
	Metric similarity.Metric
	// Workers bounds parallelism (< 1 = all CPUs).
	Workers int
	// MinRating forwards the §VII candidate-insertion threshold to the
	// counting phase (0 disables it).
	MinRating float64
	// MaxIterations caps the refinement loop as a safety valve
	// (0 = unlimited; the loop always stops once the RCSs are exhausted).
	MaxIterations int
	// RandomOrderRCS shuffles each candidate set instead of ranking it by
	// shared-item count. This is an ablation switch: it isolates the value
	// of the *ordering* from the value of the *pruning*.
	RandomOrderRCS bool
	// Seed drives RandomOrderRCS shuffling.
	Seed int64
	// Hook, when non-nil, observes every iteration (used for the Fig 8
	// convergence traces).
	Hook runstats.IterHook
}

// DefaultConfig returns the paper's default parameters for a given k:
// γ = 2k, β = 0.001, cosine similarity, all CPUs.
func DefaultConfig(k int) Config {
	return Config{K: k, Gamma: 2 * k, Beta: 0.001, Metric: similarity.Cosine{}}
}

// engineOptions maps the Config onto the engine's shared option set.
func (cfg Config) engineOptions() engine.Options {
	return engine.Options{
		K:              cfg.K,
		Gamma:          cfg.Gamma,
		Beta:           cfg.Beta,
		Metric:         cfg.Metric,
		Workers:        cfg.Workers,
		MinRating:      cfg.MinRating,
		MaxIterations:  cfg.MaxIterations,
		RandomOrderRCS: cfg.RandomOrderRCS,
		Seed:           cfg.Seed,
		Hook:           cfg.Hook,
	}
}

// Result bundles the constructed graph with the run's cost metrics.
type Result struct {
	Graph *knngraph.Graph
	Run   runstats.Run
	// RCS reports the counting-phase statistics (Table V).
	RCS rcs.BuildStats
}

// Build runs KIFF on the dataset through the engine.
func Build(d *dataset.Dataset, cfg Config) (*Result, error) {
	res, err := engine.Build(Name, d, cfg.engineOptions())
	if err != nil {
		return nil, err
	}
	return &Result{Graph: res.Graph, Run: res.Run, RCS: res.RCS}, nil
}
