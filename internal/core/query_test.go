package core

import (
	"math"
	"sort"
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/similarity"
	"kiff/internal/sparse"
)

func TestQueryToyExample(t *testing.T) {
	d, _, _ := dataset.Toy()
	ix := NewIndex(d, nil)
	// A query that likes coffee and cheese is most similar to Bob (who has
	// exactly that profile), then Alice (shares coffee).
	got, err := ix.Query(sparse.Vector{IDs: []uint32{1, 2}}, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 0 {
		t.Fatalf("Query = %v, want [Bob Alice]", got)
	}
	if math.Abs(got[0].Sim-1) > 1e-12 {
		t.Errorf("Bob similarity = %v, want 1", got[0].Sim)
	}
}

func TestQueryRejectsBadInputs(t *testing.T) {
	d, _, _ := dataset.Toy()
	ix := NewIndex(d, nil)
	if _, err := ix.Query(sparse.Vector{IDs: []uint32{0}}, 0, -1); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := ix.Query(sparse.Vector{IDs: []uint32{2, 1}}, 1, -1); err == nil {
		t.Error("unsorted profile must be rejected")
	}
}

func TestQueryIgnoresOutOfRangeItems(t *testing.T) {
	d, _, _ := dataset.Toy()
	ix := NewIndex(d, nil)
	got, err := ix.Query(sparse.Vector{IDs: []uint32{1, 999}}, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Query = %v, want one coffee lover", got)
	}
}

func TestQueryDisjointProfileFindsNothing(t *testing.T) {
	d, _, _ := dataset.Toy()
	ix := NewIndex(d, nil)
	got, err := ix.Query(sparse.Vector{IDs: []uint32{999}}, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("disjoint query returned %v", got)
	}
}

// TestQueryUnlimitedBudgetIsExact: querying with an existing user's own
// profile must reproduce that user's exact KNN (plus the user itself at
// similarity 1 in front).
func TestQueryUnlimitedBudgetIsExact(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.015, 51)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range similarity.Names() {
		metric, err := similarity.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ix := NewIndex(d, metric)
		sim := metric.Prepare(d)
		for _, u := range []uint32{0, 7, 42} {
			got, err := ix.Query(d.Users[u], 5, -1)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: rank all other users by (sim desc, id asc); the
			// query profile equals user u's, so u itself appears with
			// self-similarity — drop it from the reference comparison by
			// including u and comparing sets.
			type cand struct {
				id  uint32
				sim float64
			}
			var all []cand
			for v := 0; v < d.NumUsers(); v++ {
				s := sim(u, uint32(v))
				if v == int(u) {
					// Self-similarity: cosine/jaccard/dice = 1 for
					// non-empty profiles; overlap/adamic vary. Compute via
					// the index path for consistency.
					s = ix.evalAgainst(d.Users[u], u)
				}
				if s > 0 {
					all = append(all, cand{uint32(v), s})
				}
			}
			sort.Slice(all, func(a, b int) bool {
				if all[a].sim != all[b].sim {
					return all[a].sim > all[b].sim
				}
				return all[a].id < all[b].id
			})
			if len(all) > 5 {
				all = all[:5]
			}
			if len(got) != len(all) {
				t.Fatalf("%s user %d: got %d results, want %d", name, u, len(got), len(all))
			}
			for i := range all {
				if got[i].ID != all[i].id || math.Abs(got[i].Sim-all[i].sim) > 1e-12 {
					t.Fatalf("%s user %d: result %d = %v, want (%d, %v)",
						name, u, i, got[i], all[i].id, all[i].sim)
				}
			}
		}
	}
}

// TestQueryBudgetMonotone: larger budgets never return worse top-1
// results, and budget 0 returns nothing.
func TestQueryBudgetMonotone(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 52)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(d, nil)
	profile := d.Users[3]
	zero, err := ix.Query(profile, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero) != 0 {
		t.Errorf("budget 0 returned %v", zero)
	}
	prevBest := -1.0
	for _, budget := range []int{1, 4, 16, 64, -1} {
		got, err := ix.Query(profile, 5, budget)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			continue
		}
		if got[0].Sim < prevBest-1e-12 {
			t.Fatalf("budget %d: top-1 sim %v worse than smaller budget's %v",
				budget, got[0].Sim, prevBest)
		}
		prevBest = got[0].Sim
	}
}

// TestQueryMatchesGraphNeighbors: for an indexed user's own profile, the
// query result (minus the user itself) must match the exhaustive KIFF
// graph's neighborhood.
func TestQueryMatchesGraphNeighbors(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 53)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	res, err := Build(d, Config{K: k, Gamma: -1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(d, nil)
	for _, u := range []uint32{1, 5, 9} {
		got, err := ix.Query(d.Users[u], k+1, -1) // +1 absorbs u itself
		if err != nil {
			t.Fatal(err)
		}
		var filtered []knngraph.Neighbor
		for _, nb := range got {
			if nb.ID != u {
				filtered = append(filtered, nb)
			}
		}
		if len(filtered) > k {
			filtered = filtered[:k]
		}
		want := res.Graph.Neighbors(u)
		if len(want) > len(filtered) {
			t.Fatalf("user %d: query found %d neighbors, graph has %d", u, len(filtered), len(want))
		}
		for i := range want {
			if filtered[i].ID != want[i].ID {
				t.Fatalf("user %d: neighbor %d = %d, graph has %d",
					u, i, filtered[i].ID, want[i].ID)
			}
		}
	}
}
