package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kiff/internal/bruteforce"
	"kiff/internal/dataset"
	"kiff/internal/similarity"
)

// exactCase is one randomized instance of the §III-D optimality property.
type exactCase struct {
	D      *dataset.Dataset
	K      int
	Metric similarity.Metric
}

func randCase(r *rand.Rand) exactCase {
	users := 3 + r.Intn(40)
	items := 2 + r.Intn(25)
	profiles := make([]map[uint32]float64, users)
	for u := range profiles {
		m := map[uint32]float64{}
		n := r.Intn(items)
		for i := 0; i < n; i++ {
			m[uint32(r.Intn(items))] = float64(1 + r.Intn(5))
		}
		profiles[u] = m
	}
	metrics := similarity.Names()
	m, err := similarity.ByName(metrics[r.Intn(len(metrics))])
	if err != nil {
		panic(err)
	}
	return exactCase{
		D:      dataset.FromProfiles("quick", profiles, r.Intn(2) == 0),
		K:      1 + r.Intn(6),
		Metric: m,
	}
}

// TestQuickExhaustiveMatchesBruteForce is the paper's §III-D claim as a
// property: for any dataset, any k and any registered metric, exhausting
// the RCSs reproduces the exact positive-similarity neighborhoods.
func TestQuickExhaustiveMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randCase(r))
			}
		},
	}
	f := func(c exactCase) bool {
		res, err := Build(c.D, Config{K: c.K, Gamma: -1, Beta: -1, Metric: c.Metric, Workers: 2})
		if err != nil {
			return false
		}
		exact := bruteforce.Graph(c.D, c.Metric, c.K, 1)
		for u := 0; u < exact.NumUsers(); u++ {
			var want, got []float64
			for _, nb := range exact.Neighbors(uint32(u)) {
				if nb.Sim > 1e-12 {
					want = append(want, nb.Sim)
				}
			}
			for _, nb := range res.Graph.Neighbors(uint32(u)) {
				if nb.Sim > 1e-12 {
					got = append(got, nb.Sim)
				}
			}
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if math.Abs(want[i]-got[i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSimEvalsWithinRCSBound: the §III-D cost bound as a property —
// similarity evaluations never exceed Σ|RCS| for any configuration.
func TestQuickSimEvalsWithinRCSBound(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randCase(r))
			}
		},
	}
	f := func(c exactCase) bool {
		gamma := r.Intn(8) - 1 // includes ∞ (-1) and tiny budgets
		if gamma == 0 {
			gamma = 1
		}
		beta := []float64{-1, 0, 0.001, 0.1, 1}[r.Intn(5)] // -1 = no threshold, 0 = default
		res, err := Build(c.D, Config{K: c.K, Gamma: gamma, Beta: beta, Metric: c.Metric})
		if err != nil {
			return false
		}
		return res.Run.SimEvals <= int64(res.RCS.TotalCandidates)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
