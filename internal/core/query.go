package core

import (
	"fmt"
	"math"
	"slices"

	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/rcs"
	"kiff/internal/similarity"
	"kiff/internal/sparse"
)

// Index answers single-profile KNN queries against a dataset using KIFF's
// counting-phase pruning: a query only ever compares against users that
// share at least one item with it, examined in decreasing shared-item
// order.
//
// The paper frames KIFF as a graph constructor and explicitly
// distinguishes it from NN *search* (§VI); the index exists because a
// library user who has built a graph over U almost always also needs to
// place new, unseen profiles into it (the recommendation and
// classification workloads of §I). The same Eq. (5)/(6) argument applies:
// with an unlimited budget the result is the exact KNN of the query.
//
// An Index never mutates its dataset after construction and keeps no
// per-query state, so any number of goroutines may call Query
// concurrently — as snapshot readers do — provided the dataset itself is
// not mutated underneath it (hand the Index a frozen dataset.View when
// the writer keeps going).
type Index struct {
	d      profileSource
	metric similarity.Metric
}

// profileSource is the read surface Query needs: user profiles and the
// item-profile inverted index. Both *dataset.Dataset and *dataset.View
// satisfy it, so an Index is O(1) to construct over a freshly published
// view — nothing is copied or prepared per publication.
type profileSource interface {
	NumItems() int
	User(u uint32) sparse.Vector
	Item(i uint32) []uint32
}

// NewIndex builds a query index over the live dataset. metric nil selects
// cosine. The dataset's item profiles are built if missing; construction
// is O(|E|) the first time and O(1) after.
func NewIndex(d *dataset.Dataset, metric similarity.Metric) *Index {
	d.EnsureItemProfiles()
	return &Index{d: d, metric: defaultMetric(metric)}
}

// NewViewIndex builds a query index over a frozen dataset view — the
// snapshot-publication path. Views always carry item profiles, so
// construction is O(1): the per-publication cost of refreshing the query
// index is a single struct allocation.
func NewViewIndex(v *dataset.View, metric similarity.Metric) *Index {
	return &Index{d: v, metric: defaultMetric(metric)}
}

func defaultMetric(m similarity.Metric) similarity.Metric {
	if m == nil {
		return similarity.Cosine{}
	}
	return m
}

// Query returns the k nearest users to the given profile. budget bounds
// the number of similarity evaluations (counted from the most-overlapping
// candidate down); budget < 0 evaluates every overlapping candidate,
// which yields the exact KNN for metrics satisfying Eq. (5)/(6).
//
// The profile uses the same item ID space as the indexed dataset; IDs at
// or beyond NumItems are ignored (they cannot overlap with anyone).
func (ix *Index) Query(profile sparse.Vector, k, budget int) ([]knngraph.Neighbor, error) {
	if k < 1 {
		return nil, fmt.Errorf("kiff: query k must be ≥ 1, got %d", k)
	}
	if err := profile.Validate(); err != nil {
		return nil, fmt.Errorf("kiff: query profile: %w", err)
	}
	// Counting phase for one user: bin the query into the item profiles.
	counts := make(map[uint32]int32)
	for _, it := range profile.IDs {
		if int(it) >= ix.d.NumItems() {
			continue
		}
		for _, v := range ix.d.Item(it) {
			counts[v]++
		}
	}
	cands := make([]uint32, 0, len(counts))
	for v := range counts {
		cands = append(cands, v)
	}
	slices.SortFunc(cands, func(a, b uint32) int {
		return rcs.CompareRanked(counts[a], counts[b], a, b)
	})
	if budget >= 0 && len(cands) > budget {
		cands = cands[:budget]
	}

	// Refinement: evaluate the retained candidates with the real metric.
	// The query profile is not part of the prepared dataset, so the
	// pairwise function cannot be used directly; evaluate against each
	// candidate's profile instead.
	sims := make([]knngraph.Neighbor, 0, len(cands))
	for _, v := range cands {
		s := ix.evalAgainst(profile, v)
		sims = append(sims, knngraph.Neighbor{ID: v, Sim: s})
	}
	slices.SortFunc(sims, knngraph.CompareNeighbors)
	if len(sims) > k {
		sims = sims[:k]
	}
	return sims, nil
}

// evalAgainst computes the metric between an external profile and an
// indexed user. The supported metrics all decompose into profile-local
// terms, so they can be computed without registering the query profile in
// the dataset.
func (ix *Index) evalAgainst(profile sparse.Vector, v uint32) float64 {
	other := ix.d.User(v)
	switch ix.metric.(type) {
	case similarity.Cosine:
		nu, nv := sparse.Norm(profile), sparse.Norm(other)
		if nu == 0 || nv == 0 {
			return 0
		}
		return sparse.Dot(profile, other) / (nu * nv)
	case similarity.Jaccard:
		inter := sparse.CommonCount(profile, other)
		if inter == 0 {
			return 0
		}
		return float64(inter) / float64(profile.Len()+other.Len()-inter)
	case similarity.Dice:
		inter := sparse.CommonCount(profile, other)
		if inter == 0 {
			return 0
		}
		return 2 * float64(inter) / float64(profile.Len()+other.Len())
	case similarity.Overlap:
		return float64(sparse.CommonCount(profile, other))
	default:
		// Adamic-Adar (and any future metric) depends on dataset-global
		// item statistics; use the item-profile-aware path.
		return ix.evalViaTempUser(profile, v)
	}
}

// evalViaTempUser computes metrics that need dataset-global state by
// materializing the query as a throwaway single-user dataset view.
// Item profiles were built at NewIndex time; no mutation happens here
// (Query must stay concurrency-safe).
func (ix *Index) evalViaTempUser(profile sparse.Vector, v uint32) float64 {
	// Adamic-Adar needs |IPi| of the *indexed* dataset, so reuse its item
	// profiles for the weights.
	var s float64
	other := ix.d.User(v)
	i, j := 0, 0
	for i < len(profile.IDs) && j < len(other.IDs) {
		a, b := profile.IDs[i], other.IDs[j]
		switch {
		case a == b:
			if int(a) < ix.d.NumItems() && len(ix.d.Item(a)) >= 2 {
				s += 1 / logFloat(len(ix.d.Item(a)))
			}
			i++
			j++
		case a < b:
			i++
		default:
			j++
		}
	}
	return s
}

func logFloat(n int) float64 {
	return math.Log(float64(n))
}
