package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kiff"
)

// newTestMaintainer builds a small maintained graph over the synthetic
// preset — the mutable backend for middleware tests.
func newTestMaintainer(t *testing.T, k int) *kiff.Maintainer {
	t.Helper()
	d, err := kiff.GeneratePreset("wikipedia", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kiff.NewMaintainer(d, kiff.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// doKeyed issues a request with an API key in the given header slot
// ("bearer", "x-api-key", or "" for none) and returns the response.
func doKeyed(t *testing.T, method, url, key, slot string, body string) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	switch slot {
	case "bearer":
		req.Header.Set("Authorization", "Bearer "+key)
	case "x-api-key":
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestParseAPIKeys(t *testing.T) {
	keys, err := ParseAPIKeys([]byte(`
# comment, then a blank line

read:reader-secret
write:writer-secret
read:tight-secret:5:0.5
write:burst-secret:100
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("parsed %d keys, want 4", len(keys))
	}
	if keys[0].Scope() != ScopeRead || keys[1].Scope() != ScopeWrite {
		t.Fatalf("scopes: %v, %v", keys[0].Scope(), keys[1].Scope())
	}
	if keys[2].burst == nil || *keys[2].burst != 5 || keys[2].rps == nil || *keys[2].rps != 0.5 {
		t.Fatalf("overrides not parsed: %+v", keys[2])
	}
	if keys[3].burst == nil || *keys[3].burst != 100 || keys[3].rps != nil {
		t.Fatalf("burst-only override not parsed: %+v", keys[3])
	}
	if keys[0].ID() == "" || keys[0].ID() == keys[1].ID() {
		t.Fatalf("key IDs not distinct: %q vs %q", keys[0].ID(), keys[1].ID())
	}

	for _, bad := range []string{
		"",                         // no keys at all
		"admin:key",                // unknown scope
		"read:",                    // empty key
		"read:key:0",               // burst < 1
		"read:key:5:-1",            // negative rate
		"read:key:5:0.5:extra",     // too many fields
		"read:key with whitespace", // key contains space
	} {
		if _, err := ParseAPIKeys([]byte(bad)); err == nil {
			t.Errorf("ParseAPIKeys(%q): no error", bad)
		}
	}
}

// TestAuthScopes covers the 401/403 surface: missing and unknown keys,
// read-scope on the mutation surface, the /healthz exemption, and both
// key header slots.
func TestAuthScopes(t *testing.T) {
	m := newTestMaintainer(t, 4)
	keys, err := ParseAPIKeys([]byte("read:ro-key\nwrite:rw-key\n"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Maintainer: m, APIKeys: keys})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	insertBody := `{"profile":{"1":1}}`
	cases := []struct {
		name, method, path, key, slot, body string
		want                                int
	}{
		{"healthz needs no key", "GET", "/healthz", "", "", "", 200},
		{"stats without key", "GET", "/stats", "", "", "", 401},
		{"stats with unknown key", "GET", "/stats", "nope", "bearer", "", 401},
		{"stats with read key", "GET", "/stats", "ro-key", "bearer", "", 200},
		{"stats via x-api-key", "GET", "/stats", "ro-key", "x-api-key", "", 200},
		{"metrics with read key", "GET", "/metrics", "ro-key", "bearer", "", 200},
		{"query is read scope", "POST", "/query", "ro-key", "bearer", `{"profile":{"1":1},"k":2}`, 200},
		{"insert with read key", "POST", "/users", "ro-key", "bearer", insertBody, 403},
		{"insert with write key", "POST", "/users", "rw-key", "bearer", insertBody, 201},
		{"ratings with read key", "POST", "/ratings", "ro-key", "bearer", `{"user":0,"item":1,"rating":2}`, 403},
	}
	for _, c := range cases {
		resp := doKeyed(t, c.method, ts.URL+c.path, c.key, c.slot, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
		if c.want == 401 && !strings.Contains(resp.Header.Get("WWW-Authenticate"), "Bearer") {
			t.Errorf("%s: 401 without WWW-Authenticate challenge", c.name)
		}
	}
}

// TestRateLimitFakeClock drives the token bucket with a fake clock:
// burst exhaustion → 429 with a Retry-After hint, refill after advancing
// the clock, and the cap on the bucket (no unbounded accrual).
func TestRateLimitFakeClock(t *testing.T) {
	m := newTestMaintainer(t, 4)
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	srv, err := New(Config{Maintainer: m, RateLimit: 1, RateBurst: 2, RateLimitNow: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func() *http.Response {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Burst of 2, then denial with a finite Retry-After.
	for i := 0; i < 2; i++ {
		if resp := get(); resp.StatusCode != 200 {
			t.Fatalf("request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst exhausted: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (1 rps, 1 token short)", ra)
	}

	// One second of refill at 1 rps buys exactly one request.
	advance(time.Second)
	if resp := get(); resp.StatusCode != 200 {
		t.Fatalf("after refill: status %d", resp.StatusCode)
	}
	if resp := get(); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("refill over-credited: status %d, want 429", resp.StatusCode)
	}

	// A long idle period refills only to the burst cap.
	advance(time.Hour)
	okCount := 0
	for i := 0; i < 5; i++ {
		if get().StatusCode == 200 {
			okCount++
		}
	}
	if okCount != 2 {
		t.Fatalf("after long idle: %d requests passed, want burst cap 2", okCount)
	}

	// /healthz bypasses the limiter even with an empty bucket.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz while limited: %v %v", resp.StatusCode, err)
	}
}

// TestRateLimitPerKeyOverride: a keys-file burst/rate override pins one
// key to a zero-refill bucket — deterministic denial after exactly
// `burst` requests, with the capped Retry-After — while another key
// rides the generous server-wide parameters.
func TestRateLimitPerKeyOverride(t *testing.T) {
	m := newTestMaintainer(t, 4)
	keys, err := ParseAPIKeys([]byte("read:capped-key:3:0\nwrite:free-key\n"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Maintainer: m, APIKeys: keys, RateLimit: 1000, RateBurst: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp := doKeyed(t, "GET", ts.URL+"/stats", "capped-key", "bearer", "")
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("capped key request %d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < 3; i++ {
		resp := doKeyed(t, "GET", ts.URL+"/stats", "capped-key", "bearer", "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("capped key over burst: status %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "3600" {
			t.Fatalf("zero-refill Retry-After = %q, want capped \"3600\"", ra)
		}
	}
	// The other key's bucket is independent.
	resp := doKeyed(t, "GET", ts.URL+"/stats", "free-key", "bearer", "")
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("free key blocked by capped key's bucket: status %d", resp.StatusCode)
	}
}

// TestRequestLog: one JSON line per request, denied requests included,
// with the key ID (never the key) attributed.
func TestRequestLog(t *testing.T) {
	m := newTestMaintainer(t, 4)
	keys, err := ParseAPIKeys([]byte("write:log-key\n"))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	srv, err := New(Config{Maintainer: m, APIKeys: keys, LogRequests: true, Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doKeyed(t, "GET", ts.URL+"/stats", "log-key", "bearer", "").Body.Close()
	doKeyed(t, "GET", ts.URL+"/stats", "", "", "").Body.Close() // denied: 401

	mu.Lock()
	defer mu.Unlock()
	var got []requestLogLine
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") {
			continue // writer batch / lifecycle lines share Logf
		}
		var rec requestLogLine
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", l, err)
		}
		got = append(got, rec)
	}
	if len(got) != 2 {
		t.Fatalf("got %d access-log lines, want 2: %v", len(got), lines)
	}
	wantID := keys[0].ID()
	if got[0].Status != 200 || got[0].Path != "/stats" || got[0].Key != wantID {
		t.Fatalf("authenticated line = %+v, want status 200 key %q", got[0], wantID)
	}
	if strings.Contains(fmt.Sprint(lines), "log-key") {
		t.Fatal("raw key material leaked into the access log")
	}
	if got[1].Status != 401 || got[1].Key != "" {
		t.Fatalf("denied line = %+v, want status 401 and no key", got[1])
	}
}

// scrapeMetrics fetches /metrics and returns a map of sample line →
// value for single-valued series, e.g. "kiffserve_queries_total" → 3.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q is not the exposition format", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsStatsConsistency is the tentpole contract: after a batch of
// mutations and reads, every value /metrics and /stats both report must
// agree exactly.
func TestMetricsStatsConsistency(t *testing.T) {
	m := newTestMaintainer(t, 4)
	srv, err := New(Config{Maintainer: m, MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		if status, out := postJSON(t, ts.URL+"/users", map[string]any{"profile": map[string]float64{"1": 1, "2": 2}}); status != 201 {
			t.Fatalf("insert %d: %d %v", i, status, out)
		}
	}
	if status, out := postJSON(t, ts.URL+"/ratings", map[string]any{"user": 0, "item": 3, "rating": 4}); status != 200 {
		t.Fatalf("rating: %d %v", status, out)
	}
	if status, _ := postJSON(t, ts.URL+"/query", map[string]any{"profile": map[string]float64{"1": 1}, "k": 3}); status != 200 {
		t.Fatal("query failed")
	}
	var nb map[string]any
	getJSON(t, ts.URL+"/neighbors/0", &nb)

	var stats struct {
		Version   float64 `json:"version"`
		Users     float64 `json:"users"`
		QueueCap  float64 `json:"queue_capacity"`
		Queries   float64 `json:"queries"`
		Neighbors float64 `json:"neighbor_requests"`
		Inserts   float64 `json:"inserts"`
		Ratings   float64 `json:"ratings"`
		Maintain  struct {
			Inserts      float64 `json:"inserts"`
			Rebuilds     float64 `json:"rebuilds"`
			RebuiltUsers float64 `json:"rebuilt_users"`
		} `json:"maintain"`
		Publish struct {
			Publications float64 `json:"publications"`
			PagesCopied  float64 `json:"pages_copied"`
			PagesShared  float64 `json:"pages_shared"`
		} `json:"publish"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	mv := scrapeMetrics(t, ts.URL)

	// The /stats GET itself is not yet visible in the scrape-time request
	// counters? It is: /stats increments nothing, and the scrape hook
	// reads the atomics at scrape time — strictly after the getJSON above.
	for name, want := range map[string]float64{
		"kiffserve_snapshot_version":             stats.Version,
		"kiffserve_snapshot_users":               stats.Users,
		"kiffserve_mutation_queue_capacity":      stats.QueueCap,
		"kiffserve_queries_total":                stats.Queries,
		"kiffserve_neighbor_requests_total":      stats.Neighbors,
		"kiffserve_insert_requests_total":        stats.Inserts,
		"kiffserve_rating_requests_total":        stats.Ratings,
		"kiffserve_maintain_inserts_total":       stats.Maintain.Inserts,
		"kiffserve_maintain_rebuilds_total":      stats.Maintain.Rebuilds,
		"kiffserve_maintain_rebuilt_users_total": stats.Maintain.RebuiltUsers,
		"kiffserve_publications_total":           stats.Publish.Publications,
		"kiffserve_pages_copied_total":           stats.Publish.PagesCopied,
		"kiffserve_pages_shared_total":           stats.Publish.PagesShared,
	} {
		got, ok := mv[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, /stats says %g", name, got, want)
		}
	}

	// Live request instrumentation: the inserts above must show up with
	// endpoint/method/code labels, and the latency histogram must have
	// observed them.
	if got := mv[`kiffserve_http_requests_total{endpoint="/users",method="POST",code="2xx"}`]; got != 5 {
		t.Errorf("request counter for /users = %g, want 5", got)
	}
	if got := mv[`kiffserve_http_requests_total{endpoint="/neighbors",method="GET",code="2xx"}`]; got != 1 {
		t.Errorf("request counter for /neighbors = %g, want 1", got)
	}
	if got := mv[`kiffserve_http_request_duration_seconds_count{endpoint="/users"}`]; got != 5 {
		t.Errorf("latency observations for /users = %g, want 5", got)
	}
	if mv["kiffserve_writer_batches_total"] < 1 {
		t.Error("no writer batches recorded")
	}
	if mv["kiffserve_writer_batch_size_count"] != mv["kiffserve_writer_batches_total"] {
		t.Errorf("batch histogram count %g != batches counter %g",
			mv["kiffserve_writer_batch_size_count"], mv["kiffserve_writer_batches_total"])
	}
}

// TestMetricsUnknownEndpointLabel: unmatched paths collapse into the
// "other" label so scanners cannot blow up series cardinality.
func TestMetricsUnknownEndpointLabel(t *testing.T) {
	m := newTestMaintainer(t, 4)
	srv, err := New(Config{Maintainer: m})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, p := range []string{"/nope", "/admin/../etc", "/neighbors"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	mv := scrapeMetrics(t, ts.URL)
	found := 0.0
	for name, v := range mv {
		if strings.HasPrefix(name, `kiffserve_http_requests_total{endpoint="other"`) {
			found += v
		}
	}
	if found < 2 {
		t.Fatalf("unknown paths not collapsed to \"other\": %g samples", found)
	}
}

// TestMetricsConcurrentScrapes hammers mutations and queries while
// scraping /metrics — the registry and the scrape hook must be safe
// under -race and every scrape must stay well-formed.
func TestMetricsConcurrentScrapes(t *testing.T) {
	m := newTestMaintainer(t, 4)
	srv, err := New(Config{Maintainer: m, MaxBatch: 8, QueueDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				postJSON(t, ts.URL+"/users", map[string]any{"profile": map[string]float64{"1": 1}})
				postJSON(t, ts.URL+"/query", map[string]any{"profile": map[string]float64{"1": 1}, "k": 2})
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				mv := scrapeMetrics(t, ts.URL)
				if len(mv) == 0 {
					t.Error("empty scrape")
				}
			}
		}()
	}
	wg.Wait()

	mv := scrapeMetrics(t, ts.URL)
	if got := mv["kiffserve_insert_requests_total"]; got != 80 {
		t.Fatalf("insert requests = %g, want 80", got)
	}
	if got := mv["kiffserve_queries_total"]; got != 80 {
		t.Fatalf("queries = %g, want 80", got)
	}
}
