package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"kiff"
)

// newMaintainerServer builds a mutable server (plus httptest front-end)
// over a fresh checkpoint, with the given extras applied to the config.
func newMaintainerServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server, *kiff.Maintainer) {
	t.Helper()
	gpath, dpath := buildCheckpoint(t, 8)
	g, err := kiff.LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := kiff.LoadDataset(dpath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kiff.NewMaintainerFromGraph(d, g, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Maintainer: m, Logf: t.Logf}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Close() })
	return srv, ts, m
}

// rawBody fetches one endpoint and returns status + body bytes.
func rawBody(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// jsonField extracts one top-level field of a JSON body as raw bytes —
// the comparison unit for restart equivalence, where whole bodies
// differ by snapshot version but the answer payload must not.
func jsonField(t *testing.T, body []byte, field string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %q from %s: %v", field, body, err)
	}
	raw, ok := m[field]
	if !ok {
		t.Fatalf("body has no %q field: %s", field, body)
	}
	return string(raw)
}

// TestServerErrorPaths pins the documented status codes of the failure
// surface: malformed JSON and wrong methods and oversized bodies and
// read-only mutations each map to their own status.
func TestServerErrorPaths(t *testing.T) {
	_, ts, _ := newMaintainerServer(t, nil)

	// Malformed JSON bodies: 400 on every decoding endpoint.
	for _, path := range []string{"/query", "/users", "/ratings"} {
		if status, body := rawBody(t, http.MethodPost, ts.URL+path, []byte(`{"profile":`)); status != http.StatusBadRequest {
			t.Errorf("POST %s with truncated JSON: status %d, want 400 (%s)", path, status, body)
		}
		if status, _ := rawBody(t, http.MethodPost, ts.URL+path, []byte(`{"no_such_field":1}`)); status != http.StatusBadRequest {
			t.Errorf("POST %s with unknown field: status %d, want 400", path, status)
		}
	}

	// Wrong methods: the mux's method-qualified patterns answer 405.
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/query"},
		{http.MethodGet, "/users"},
		{http.MethodGet, "/ratings"},
		{http.MethodPost, "/neighbors/0"},
		{http.MethodPost, "/healthz"},
		{http.MethodDelete, "/stats"},
	} {
		if status, _ := rawBody(t, c.method, ts.URL+c.path, nil); status != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, status)
		}
	}

	// Oversized bodies: MaxBytesReader trips mid-decode, reported as 413.
	huge := append([]byte(`{"profile":{"1":`), bytes.Repeat([]byte("1"), maxBodyBytes+1024)...)
	huge = append(huge, []byte(`}}`)...)
	for _, path := range []string{"/query", "/users", "/ratings"} {
		if status, _ := rawBody(t, http.MethodPost, ts.URL+path, huge); status != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with %dMB body: status %d, want 413", path, len(huge)>>20, status)
		}
	}

	// Read-only mutations: 403 on every mutation endpoint, including the
	// checkpoint trigger when it is routed.
	gpath, dpath := buildCheckpoint(t, 8)
	g, _ := kiff.LoadGraph(gpath)
	d, _ := kiff.LoadDataset(dpath)
	snap, err := kiff.NewSnapshot(g, d, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rsrv, err := New(Config{Static: snap, CheckpointDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	rts := httptest.NewServer(rsrv.Handler())
	defer rts.Close()
	for path, body := range map[string][]byte{
		"/users":      []byte(`{"profile":{"1":1}}`),
		"/ratings":    []byte(`{"user":0,"item":1,"rating":2}`),
		"/checkpoint": nil,
	} {
		if status, _ := rawBody(t, http.MethodPost, rts.URL+path, body); status != http.StatusForbidden {
			t.Errorf("read-only POST %s: status %d, want 403", path, status)
		}
	}
}

// TestServerCloseFlushesQueue is the graceful-shutdown regression test:
// mutations accepted into the queue before Close must be applied,
// acknowledged with success, and present in a checkpoint taken after
// Close — not failed with ErrClosed as they were before the flush.
func TestServerCloseFlushesQueue(t *testing.T) {
	const pending = 8
	faults := &Faults{}
	ckptDir := t.TempDir()
	srv, ts, m := newMaintainerServer(t, func(cfg *Config) {
		cfg.Faults = faults
		cfg.QueueDepth = pending + 4
		cfg.CheckpointDir = ckptDir
	})
	users0 := m.Dataset().NumUsers()

	// Freeze the writer so the inserts pile up in the queue instead of
	// being applied as they arrive.
	faults.SetHold(true)
	var wg sync.WaitGroup
	statuses := make([]int, pending)
	for i := 0; i < pending; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postJSON(t, ts.URL+"/users", map[string]any{
				"profile": map[string]float64{"1": 1, fmt.Sprint(10 + i): 2},
			})
		}(i)
	}
	// Wait until every insert is parked in the queue (the writer holds
	// one op in hand; the rest sit in the channel).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var health struct {
			QueueDepth int `json:"queue_depth"`
		}
		getJSON(t, ts.URL+"/healthz", &health)
		if health.QueueDepth >= pending-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inserts never queued: depth %d", health.QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}

	// Close with the hold still set: the flush must override it, apply
	// everything, and answer every handler with success.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, status := range statuses {
		if status != http.StatusCreated {
			t.Fatalf("insert %d queued before Close: status %d, want 201", i, status)
		}
	}
	if got := m.Dataset().NumUsers(); got != users0+pending {
		t.Fatalf("after flush: %d users, want %d", got, users0+pending)
	}

	// The post-Close checkpoint carries the flushed mutations.
	final := filepath.Join(ckptDir, "final")
	if err := srv.SaveFinal(final); err != nil {
		t.Fatal(err)
	}
	d2, err := kiff.LoadDataset(filepath.Join(final, DataCheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumUsers() != users0+pending {
		t.Fatalf("final checkpoint has %d users, want %d", d2.NumUsers(), users0+pending)
	}
	if _, err := kiff.LoadGraph(filepath.Join(final, GraphCheckpointFile)); err != nil {
		t.Fatal(err)
	}

	// New mutations after Close still fail cleanly.
	if status, _ := postJSON(t, ts.URL+"/users", map[string]any{"profile": map[string]float64{"1": 1}}); status != http.StatusServiceUnavailable {
		t.Fatalf("post-close insert: status %d, want 503", status)
	}
}

// TestServerSaveFinalRequiresClose: checkpointing around the live writer
// is refused — the writer owns the state until Close.
func TestServerSaveFinalRequiresClose(t *testing.T) {
	srv, _, _ := newMaintainerServer(t, func(cfg *Config) { cfg.CheckpointDir = t.TempDir() })
	if err := srv.SaveFinal(t.TempDir()); err == nil {
		t.Fatal("SaveFinal on a live server must fail")
	}
}

// TestServerHealthzDegraded: /healthz's readiness facet flips to
// "degraded" while the mutation queue is saturated and recovers to "ok"
// once the writer drains it; reads keep answering 200 throughout.
func TestServerHealthzDegraded(t *testing.T) {
	faults := &Faults{}
	_, ts, _ := newMaintainerServer(t, func(cfg *Config) {
		cfg.Faults = faults
		cfg.QueueDepth = 2
	})

	var health struct {
		Status string `json:"status"`
		Ready  string `json:"ready"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Ready != "ok" {
		t.Fatalf("idle healthz = %+v", health)
	}

	// Hold the writer and overfill the queue: capacity 2, one op held in
	// the writer's hand, so 4 concurrent inserts guarantee saturation.
	faults.SetHold(true)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, ts.URL+"/users", map[string]any{
				"profile": map[string]float64{fmt.Sprint(i + 1): 1},
			})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, ts.URL+"/healthz", &health)
		if health.Ready == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported degraded under a held writer")
		}
		time.Sleep(time.Millisecond)
	}
	if health.Status != "ok" {
		t.Fatalf("liveness flipped during backpressure: %+v", health)
	}
	// Reads stay healthy while writes are backed up.
	if status, _ := rawBody(t, http.MethodGet, ts.URL+"/neighbors/0", nil); status != http.StatusOK {
		t.Fatalf("read during backpressure: status %d", status)
	}

	// Release the hold: the writer drains and readiness recovers.
	faults.SetHold(false)
	wg.Wait()
	deadline = time.Now().Add(5 * time.Second)
	for {
		getJSON(t, ts.URL+"/healthz", &health)
		if health.Ready == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never recovered after releasing the hold")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerFaultsEndpoint: the knobs round-trip over HTTP, bad values
// are rejected, and an unconfigured server has no /faults route at all.
func TestServerFaultsEndpoint(t *testing.T) {
	faults := &Faults{}
	_, ts, _ := newMaintainerServer(t, func(cfg *Config) { cfg.Faults = faults })

	status, out := postJSON(t, ts.URL+"/faults", map[string]any{
		"hold": false, "batch_delay_ms": 7, "publish_stall_ms": 3,
	})
	if status != http.StatusOK {
		t.Fatalf("POST /faults: %d: %v", status, out)
	}
	if got := faults.BatchDelay(); got != 7*time.Millisecond {
		t.Fatalf("batch delay = %v, want 7ms", got)
	}
	if got := faults.PublishStall(); got != 3*time.Millisecond {
		t.Fatalf("publish stall = %v, want 3ms", got)
	}
	var state struct {
		Hold           *bool  `json:"hold"`
		BatchDelayMs   *int64 `json:"batch_delay_ms"`
		PublishStallMs *int64 `json:"publish_stall_ms"`
	}
	getJSON(t, ts.URL+"/faults", &state)
	if state.Hold == nil || *state.Hold || state.BatchDelayMs == nil || *state.BatchDelayMs != 7 ||
		state.PublishStallMs == nil || *state.PublishStallMs != 3 {
		t.Fatalf("GET /faults = %+v", state)
	}
	if status, _ := postJSON(t, ts.URL+"/faults", map[string]any{"batch_delay_ms": -1}); status != http.StatusBadRequest {
		t.Fatalf("negative delay accepted: %d", status)
	}

	// A delayed batch still applies correctly end to end.
	if status, _ = postJSON(t, ts.URL+"/users", map[string]any{"profile": map[string]float64{"1": 1}}); status != http.StatusCreated {
		t.Fatalf("insert under batch delay: %d", status)
	}

	// No Faults in the config → no route.
	_, plain, _ := newMaintainerServer(t, nil)
	if status, _ := rawBody(t, http.MethodGet, plain.URL+"/faults", nil); status != http.StatusNotFound {
		t.Fatalf("unconfigured /faults: status %d, want 404", status)
	}
}

// TestServerCheckpointEndpoint: POST /checkpoint on a maintainer server
// writes a loadable graph+dataset pair whose restarted server answers
// /query and /neighbors identically (modulo snapshot version).
func TestServerCheckpointEndpoint(t *testing.T) {
	ckptDir := t.TempDir()
	_, ts, m := newMaintainerServer(t, func(cfg *Config) { cfg.CheckpointDir = ckptDir })

	for i := 0; i < 6; i++ {
		if status, out := postJSON(t, ts.URL+"/users", map[string]any{
			"profile": map[string]float64{"2": 1, fmt.Sprint(5 + i): 3},
		}); status != http.StatusCreated {
			t.Fatalf("insert %d: %d: %v", i, status, out)
		}
	}
	if status, out := postJSON(t, ts.URL+"/ratings", map[string]any{"user": 3, "item": 9, "rating": 4}); status != http.StatusOK {
		t.Fatalf("rating: %d: %v", status, out)
	}

	status, out := postJSON(t, ts.URL+"/checkpoint", nil)
	if status != http.StatusOK {
		t.Fatalf("POST /checkpoint: %d: %v", status, out)
	}
	dir, _ := out["dir"].(string)
	if dir == "" {
		t.Fatalf("checkpoint reply carries no dir: %v", out)
	}
	if filepath.Dir(dir) != ckptDir {
		t.Fatalf("checkpoint dir %q outside configured %q", dir, ckptDir)
	}
	// No stray temp files: every file was renamed into place.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("checkpoint left temp file %s", e.Name())
		}
	}

	g2, err := kiff.LoadGraph(filepath.Join(dir, GraphCheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := kiff.LoadDataset(filepath.Join(dir, DataCheckpointFile))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := kiff.NewMaintainerFromGraph(d2, g2, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Maintainer: m2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if got, want := m2.Dataset().NumUsers(), m.Dataset().NumUsers(); got != want {
		t.Fatalf("restarted users = %d, want %d", got, want)
	}
	for i := 0; i < 10; i++ {
		q, _ := json.Marshal(map[string]any{
			"profile": map[string]float64{fmt.Sprint(i): 2, "7": 1}, "k": 5,
		})
		_, a := rawBody(t, http.MethodPost, ts.URL+"/query", q)
		_, b := rawBody(t, http.MethodPost, ts2.URL+"/query", q)
		if got, want := jsonField(t, b, "results"), jsonField(t, a, "results"); got != want {
			t.Fatalf("query %d diverged after restart:\n pre:  %s\n post: %s", i, want, got)
		}
	}
	for u := 0; u < m.Dataset().NumUsers(); u += 13 {
		path := fmt.Sprintf("/neighbors/%d", u)
		_, a := rawBody(t, http.MethodGet, ts.URL+path, nil)
		_, b := rawBody(t, http.MethodGet, ts2.URL+path, nil)
		if got, want := jsonField(t, b, "neighbors"), jsonField(t, a, "neighbors"); got != want {
			t.Fatalf("neighbors(%d) diverged after restart:\n pre:  %s\n post: %s", u, want, got)
		}
	}
}

// TestServerPoolSaveRestartIdentical promotes the CI curl smoke into a
// real test: a sharded pool mutated over HTTP, checkpointed via POST
// /checkpoint (Pool.Save), and reloaded with LoadShardedMaintainer must
// answer /query byte-identically to the pre-restart server.
func TestServerPoolSaveRestartIdentical(t *testing.T) {
	const k = 8
	d, err := kiff.GeneratePreset("wikipedia", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := kiff.NewShardedMaintainer(d, 4, kiff.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := t.TempDir()
	srv, err := New(Config{Pool: pool, CheckpointDir: ckptDir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Mutate through the API so the checkpoint is not just the cold
	// build: inserts spread across shards plus a rating rebuild.
	for i := 0; i < 9; i++ {
		if status, out := postJSON(t, ts.URL+"/users", map[string]any{
			"profile": map[string]float64{"1": 1, fmt.Sprint(4 + i): 2},
		}); status != http.StatusCreated {
			t.Fatalf("insert %d: %d: %v", i, status, out)
		}
	}
	if status, out := postJSON(t, ts.URL+"/ratings", map[string]any{"user": 2, "item": 11, "rating": 5}); status != http.StatusOK {
		t.Fatalf("rating: %d: %v", status, out)
	}

	status, out := postJSON(t, ts.URL+"/checkpoint", nil)
	if status != http.StatusOK {
		t.Fatalf("POST /checkpoint: %d: %v", status, out)
	}
	dir, _ := out["dir"].(string)

	pool2, err := kiff.LoadShardedMaintainer(dir, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{Pool: pool2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if got, want := pool2.NumUsers(), pool.NumUsers(); got != want {
		t.Fatalf("restarted pool users = %d, want %d", got, want)
	}
	for i := 0; i < 15; i++ {
		q, _ := json.Marshal(map[string]any{
			"profile": map[string]float64{fmt.Sprint(i): 2, fmt.Sprint(3 * i): 1, "7": 1},
			"k":       5,
		})
		st1, a := rawBody(t, http.MethodPost, ts.URL+"/query", q)
		st2, b := rawBody(t, http.MethodPost, ts2.URL+"/query", q)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("query %d: statuses %d/%d", i, st1, st2)
		}
		if got, want := jsonField(t, b, "results"), jsonField(t, a, "results"); got != want {
			t.Fatalf("query %d diverged after pool restart:\n pre:  %s\n post: %s", i, want, got)
		}
	}
}
