package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"kiff"
)

// buildCheckpoint constructs a small graph over a synthetic dataset and
// saves both binary files, returning their paths.
func buildCheckpoint(t *testing.T, k int) (gpath, dpath string) {
	t.Helper()
	d, err := kiff.GeneratePreset("wikipedia", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kiff.Build(d, kiff.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gpath = filepath.Join(dir, "graph.kfg")
	dpath = filepath.Join(dir, "data.kfd")
	if err := kiff.SaveGraph(gpath, res.Graph); err != nil {
		t.Fatal(err)
	}
	if err := kiff.SaveDataset(dpath, d); err != nil {
		t.Fatal(err)
	}
	return gpath, dpath
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, req any) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestServerEndToEnd is the tentpole integration test: save a graph,
// map-load the checkpoint, serve it behind the mutable HTTP front-end,
// and hammer it with concurrent readers while mutations stream through
// the writer — under -race in CI. Finally, mapped and heap-loaded
// read-only servers must answer every request identically.
func TestServerEndToEnd(t *testing.T) {
	const k = 8
	gpath, dpath := buildCheckpoint(t, k)

	mg, err := kiff.LoadGraphMapped(gpath)
	if err != nil {
		t.Fatal(err)
	}
	md, err := kiff.LoadDatasetMapped(dpath)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	m, err := kiff.NewMaintainerFromGraph(md.Dataset(), mg.Graph(), kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Close(); err != nil { // seeding done; the maintainer owns its own state
		t.Fatal(err)
	}

	srv, err := New(Config{Maintainer: m, QueryBudget: 2 * k, MaxBatch: 8, QueueDepth: 32, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	var health struct {
		Status  string `json:"status"`
		Version uint64 `json:"version"`
		Users   int    `json:"users"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Version != 1 || health.Users == 0 {
		t.Fatalf("healthz = %+v", health)
	}
	users0 := health.Users

	// Concurrent load: readers walk /neighbors and /query while writers
	// insert users and stream ratings. The race detector owns the
	// correctness half of this test.
	const (
		readers        = 4
		writerInserts  = 12
		writerRatings  = 12
		readsPerWorker = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < readsPerWorker; i++ {
				u := (seed*readsPerWorker + i) % users0
				var nb map[string]any
				getJSON(t, fmt.Sprintf("%s/neighbors/%d", ts.URL, u), &nb)
				status, out := postJSON(t, ts.URL+"/query", map[string]any{
					"profile": map[string]float64{"0": 1, "3": 2, "7": 1},
					"k":       5,
				})
				if status != http.StatusOK {
					t.Errorf("query: %d: %v", status, out)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerInserts; i++ {
			status, out := postJSON(t, ts.URL+"/users", map[string]any{
				"profile": map[string]float64{"1": 1, "5": 3, fmt.Sprint(10 + i): 2},
			})
			if status != http.StatusCreated {
				t.Errorf("insert: %d: %v", status, out)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerRatings; i++ {
			status, out := postJSON(t, ts.URL+"/ratings", map[string]any{
				"user": i % users0, "item": (i * 3) % 40, "rating": float64(1 + i%5),
			})
			if status != http.StatusOK {
				t.Errorf("rating: %d: %v", status, out)
				return
			}
		}
	}()
	wg.Wait()

	getJSON(t, ts.URL+"/healthz", &health)
	if health.Users != users0+writerInserts {
		t.Fatalf("after inserts: %d users, want %d", health.Users, users0+writerInserts)
	}
	var stats struct {
		Version  uint64 `json:"version"`
		ReadOnly bool   `json:"read_only"`
		Queries  int64  `json:"queries"`
		Maintain *struct {
			SimEvals     int64 `json:"sim_evals"`
			Inserts      int64 `json:"inserts"`
			Rebuilds     int64 `json:"rebuilds"`
			RebuiltUsers int64 `json:"rebuilt_users"`
		} `json:"maintain"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.ReadOnly || stats.Version < 2 || stats.Queries == 0 || stats.Maintain == nil || stats.Maintain.SimEvals == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The maintenance counters must reflect the applied mutations: every
	// insert counted, at least one rebuild pass over at least as many
	// users as passes.
	if stats.Maintain.Inserts != writerInserts {
		t.Fatalf("maintain.inserts = %d, want %d", stats.Maintain.Inserts, writerInserts)
	}
	if stats.Maintain.Rebuilds == 0 || stats.Maintain.RebuiltUsers < stats.Maintain.Rebuilds {
		t.Fatalf("maintain rebuild counters = %+v", stats.Maintain)
	}

	// The maintained graph must still satisfy every structural invariant.
	if err := m.Snapshot().Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestServerMappedHeapIdentical pins the acceptance criterion: a server
// over the mapped checkpoint and a server over the heap-loaded checkpoint
// return byte-identical bodies for every read endpoint.
func TestServerMappedHeapIdentical(t *testing.T) {
	const k = 8
	gpath, dpath := buildCheckpoint(t, k)

	mg, err := kiff.LoadGraphMapped(gpath)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	md, err := kiff.LoadDatasetMapped(dpath)
	if err != nil {
		t.Fatal(err)
	}
	defer md.Close()
	hg, err := kiff.LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := kiff.LoadDataset(dpath)
	if err != nil {
		t.Fatal(err)
	}

	newStatic := func(g *kiff.Graph, d *kiff.Dataset) *httptest.Server {
		snap, err := kiff.NewSnapshot(g, d, kiff.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{Static: snap, QueryBudget: 2 * k})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return httptest.NewServer(srv.Handler())
	}
	mts := newStatic(mg.Graph(), md.Dataset())
	defer mts.Close()
	hts := newStatic(hg, hd)
	defer hts.Close()

	fetch := func(ts *httptest.Server, method, path string, body []byte) []byte {
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: %d: %s", method, path, resp.StatusCode, out)
		}
		return out
	}

	for u := 0; u < hg.NumUsers(); u += 7 {
		path := fmt.Sprintf("/neighbors/%d", u)
		a := fetch(mts, http.MethodGet, path, nil)
		b := fetch(hts, http.MethodGet, path, nil)
		if !bytes.Equal(a, b) {
			t.Fatalf("neighbors(%d) differ:\nmapped: %s\nheap:   %s", u, a, b)
		}
	}
	for i := 0; i < 10; i++ {
		q, err := json.Marshal(map[string]any{
			"profile": map[string]float64{fmt.Sprint(i): 1, fmt.Sprint(i + 9): 2},
			"k":       5,
			"want":    "users",
		})
		if err != nil {
			t.Fatal(err)
		}
		a := fetch(mts, http.MethodPost, "/query", q)
		b := fetch(hts, http.MethodPost, "/query", q)
		if !bytes.Equal(a, b) {
			t.Fatalf("query %d differs:\nmapped: %s\nheap:   %s", i, a, b)
		}
	}
}

// TestServerReadOnlyAndErrors covers the failure surface: read-only
// mutation rejection, validation errors, unknown users, and post-Close
// unavailability.
func TestServerReadOnlyAndErrors(t *testing.T) {
	gpath, dpath := buildCheckpoint(t, 8)
	g, err := kiff.LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := kiff.LoadDataset(dpath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := kiff.NewSnapshot(g, d, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Static: snap})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := postJSON(t, ts.URL+"/users", map[string]any{"profile": map[string]float64{"1": 1}}); status != http.StatusForbidden {
		t.Fatalf("read-only insert: status %d, want 403", status)
	}
	if status, _ := postJSON(t, ts.URL+"/ratings", map[string]any{"user": 0, "item": 1, "rating": 2}); status != http.StatusForbidden {
		t.Fatalf("read-only rating: status %d, want 403", status)
	}

	resp, err := http.Get(ts.URL + "/neighbors/99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown user: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/neighbors/not-a-number")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad user id: status %d, want 400", resp.StatusCode)
	}
	if status, _ := postJSON(t, ts.URL+"/query", map[string]any{"profile": map[string]float64{"1": 1}, "want": "nonsense"}); status != http.StatusBadRequest {
		t.Fatalf("bad want: status %d, want 400", status)
	}
	if status, _ := postJSON(t, ts.URL+"/ratings", map[string]any{"ratings": []any{}}); status != http.StatusBadRequest {
		// Batch validation runs before the read-only check.
		t.Fatalf("empty ratings: status %d, want 400", status)
	}

	// Config validation.
	if _, err := New(Config{}); err == nil {
		t.Fatal("Config without source accepted")
	}

	// Mutable server: ratings for an unknown user must surface the
	// maintainer's error as 400, and Close must flip mutations to 503.
	m, err := kiff.NewMaintainerFromGraph(d, g, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msrv, err := New(Config{Maintainer: m})
	if err != nil {
		t.Fatal(err)
	}
	mts := httptest.NewServer(msrv.Handler())
	defer mts.Close()
	if status, out := postJSON(t, mts.URL+"/ratings", map[string]any{"user": 99999999, "item": 0, "rating": 1}); status != http.StatusBadRequest {
		t.Fatalf("out-of-range rating: status %d, body %v", status, out)
	}
	if err := msrv.Close(); err != nil {
		t.Fatal(err)
	}
	if status, _ := postJSON(t, mts.URL+"/users", map[string]any{"profile": map[string]float64{"1": 1}}); status != http.StatusServiceUnavailable {
		t.Fatalf("post-close insert: status %d, want 503", status)
	}
}

// TestServerRatingsValidation: malformed, incomplete and non-finite
// rating requests must be 400s that mutate nothing, and a batch with one
// bad rating must apply none of its ratings (atomicity).
func TestServerRatingsValidation(t *testing.T) {
	gpath, dpath := buildCheckpoint(t, 8)
	g, err := kiff.LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := kiff.LoadDataset(dpath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kiff.NewMaintainerFromGraph(d, g, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Maintainer: m})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	version0 := m.Snapshot().Version()
	user5Len := len(m.Snapshot().Dataset().User(5).IDs)

	// An empty object must not silently upsert rating 0 on user 0/item 0.
	if status, out := postJSON(t, ts.URL+"/ratings", map[string]any{}); status != http.StatusBadRequest {
		t.Fatalf("empty rating object: status %d, body %v", status, out)
	}
	// Missing fields in the single form.
	if status, _ := postJSON(t, ts.URL+"/ratings", map[string]any{"user": 1, "item": 2}); status != http.StatusBadRequest {
		t.Fatalf("missing rating field accepted")
	}
	// Non-finite ratings.
	if status, _ := postJSON(t, ts.URL+"/users", map[string]any{"profile": map[string]string{"1": "x"}}); status != http.StatusBadRequest {
		t.Fatalf("non-numeric profile accepted")
	}
	body := []byte(`{"user":1,"item":2,"rating":1e999}`) // parses as +Inf rejection via json error or our check
	resp, err := http.Post(ts.URL+"/ratings", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("infinite rating: status %d, want 400", resp.StatusCode)
	}

	// A batch with one out-of-range user applies none of its ratings.
	if status, _ := postJSON(t, ts.URL+"/ratings", map[string]any{"ratings": []map[string]any{
		{"user": 5, "item": 3, "rating": 4},
		{"user": 99999999, "item": 1, "rating": 2},
	}}); status != http.StatusBadRequest {
		t.Fatalf("bad batch accepted")
	}
	snap := m.Snapshot()
	if snap.Version() != version0 {
		t.Fatalf("rejected requests published a snapshot: version %d -> %d", version0, snap.Version())
	}
	if got := len(snap.Dataset().User(5).IDs); got != user5Len {
		t.Fatalf("rejected batch mutated user 5: %d -> %d profile entries", user5Len, got)
	}
}

// TestServerEmptyRatingsBatch: an explicitly empty batch is a client
// error on a mutable server.
func TestServerEmptyRatingsBatch(t *testing.T) {
	gpath, dpath := buildCheckpoint(t, 8)
	g, err := kiff.LoadGraph(gpath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := kiff.LoadDataset(dpath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kiff.NewMaintainerFromGraph(d, g, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Maintainer: m})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if status, _ := postJSON(t, ts.URL+"/ratings", map[string]any{"ratings": []any{}}); status != http.StatusBadRequest {
		t.Fatalf("empty ratings: status %d, want 400", status)
	}
}

// TestServerShardedPool serves a ShardedMaintainer pool behind the same
// API: concurrent reads and mutations stream through while /stats
// reports per-shard counters, and — the acceptance pin — /query answers
// must be identical to an unsharded server over the same dataset.
func TestServerShardedPool(t *testing.T) {
	const k = 8
	d, err := kiff.GeneratePreset("wikipedia", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	single, err := kiff.NewMaintainer(d, kiff.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := kiff.NewShardedMaintainer(d, 4, kiff.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}

	ssrv, err := New(Config{Maintainer: single})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(ssrv.Handler())
	defer sts.Close()
	defer ssrv.Close()

	srv, err := New(Config{Pool: pool, MaxBatch: 8, QueueDepth: 32, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	var health struct {
		Status string `json:"status"`
		Users  int    `json:"users"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Users != d.NumUsers() {
		t.Fatalf("healthz = %+v, want %d users", health, d.NumUsers())
	}
	users0 := health.Users

	// Pinned equality at the HTTP layer: the sharded and unsharded
	// servers must answer /query with byte-identical result lists
	// (exact queries; the server maps budget ≤ 0 to exhaustive).
	for i := 0; i < 10; i++ {
		q := map[string]any{
			"profile": map[string]float64{fmt.Sprint(i): 2, fmt.Sprint(3 * i): 1, "7": 1},
			"k":       5,
		}
		st1, want := postJSON(t, sts.URL+"/query", q)
		st2, got := postJSON(t, ts.URL+"/query", q)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("query %d: statuses %d/%d", i, st1, st2)
		}
		if fmt.Sprint(got["results"]) != fmt.Sprint(want["results"]) {
			t.Fatalf("query %d diverged\n sharded: %v\n single:  %v", i, got["results"], want["results"])
		}
	}

	// Concurrent load against the pool-backed server.
	const (
		readers        = 4
		writerInserts  = 12
		writerRatings  = 12
		readsPerWorker = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < readsPerWorker; i++ {
				u := (seed*readsPerWorker + i) % users0
				var nb map[string]any
				getJSON(t, fmt.Sprintf("%s/neighbors/%d", ts.URL, u), &nb)
				status, out := postJSON(t, ts.URL+"/query", map[string]any{
					"profile": map[string]float64{"0": 1, "3": 2, "7": 1},
					"k":       5,
				})
				if status != http.StatusOK {
					t.Errorf("query: %d: %v", status, out)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerInserts; i++ {
			status, out := postJSON(t, ts.URL+"/users", map[string]any{
				"profile": map[string]float64{"1": 1, "5": 3, fmt.Sprint(10 + i): 2},
			})
			if status != http.StatusCreated {
				t.Errorf("insert: %d: %v", status, out)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerRatings; i++ {
			status, out := postJSON(t, ts.URL+"/ratings", map[string]any{
				"user": i % users0, "item": (i * 3) % 40, "rating": float64(1 + i%5),
			})
			if status != http.StatusOK {
				t.Errorf("rating: %d: %v", status, out)
				return
			}
		}
	}()
	wg.Wait()

	getJSON(t, ts.URL+"/healthz", &health)
	if health.Users != users0+writerInserts {
		t.Fatalf("after inserts: %d users, want %d", health.Users, users0+writerInserts)
	}
	var stats struct {
		ReadOnly bool `json:"read_only"`
		Shards   []struct {
			Shard    int    `json:"shard"`
			Users    int    `json:"users"`
			Version  uint64 `json:"version"`
			SimEvals int64  `json:"sim_evals"`
			Inserts  int64  `json:"inserts"`
		} `json:"shards"`
		Maintain *struct {
			SimEvals     int64 `json:"sim_evals"`
			Inserts      int64 `json:"inserts"`
			Rebuilds     int64 `json:"rebuilds"`
			RebuiltUsers int64 `json:"rebuilt_users"`
		} `json:"maintain"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.ReadOnly {
		t.Fatal("pool server reported read-only")
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("/stats shards = %d entries, want 4", len(stats.Shards))
	}
	shardUsers, shardInserts := 0, int64(0)
	for i, sh := range stats.Shards {
		if sh.Shard != i || sh.Version == 0 {
			t.Fatalf("shard row %d = %+v", i, sh)
		}
		shardUsers += sh.Users
		shardInserts += sh.Inserts
	}
	if shardUsers != users0+writerInserts {
		t.Fatalf("per-shard users sum to %d, want %d", shardUsers, users0+writerInserts)
	}
	if shardInserts != writerInserts {
		t.Fatalf("per-shard inserts sum to %d, want %d", shardInserts, writerInserts)
	}
	if stats.Maintain == nil || stats.Maintain.Inserts != writerInserts || stats.Maintain.SimEvals == 0 {
		t.Fatalf("maintain = %+v", stats.Maintain)
	}
	if stats.Maintain.Rebuilds == 0 || stats.Maintain.RebuiltUsers < stats.Maintain.Rebuilds {
		t.Fatalf("maintain rebuild counters = %+v", stats.Maintain)
	}
}

// TestServerConfigExclusive: the three serving sources are mutually
// exclusive.
func TestServerConfigExclusive(t *testing.T) {
	d, err := kiff.GeneratePreset("wikipedia", 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := kiff.NewMaintainer(d, kiff.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := kiff.NewShardedMaintainer(d, 2, kiff.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Maintainer: m, Pool: pool}); err == nil {
		t.Error("Maintainer+Pool must be rejected")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must be rejected")
	}
}
