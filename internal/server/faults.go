package server

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Faults is the server's fault-injection surface: a small set of knobs
// the chaos harness turns to provoke the hard serving paths — writer
// stalls, queue saturation, delayed publication — on demand instead of
// by luck. A Server without Config.Faults (the production default) has
// no injection points: the writer never consults a nil Faults, and the
// /faults endpoint is not registered. kiffserve only wires one up when
// built with the `faultinject` tag AND the KIFFSERVE_FAULTS environment
// variable is set, so release binaries cannot be degraded remotely.
//
// All knobs are atomically settable from any goroutine (the harness
// flips them over HTTP while the writer runs) and default to off.
type Faults struct {
	batchDelay   atomic.Int64 // ns slept before the writer applies a batch
	publishStall atomic.Int64 // ns slept after applying, before acknowledging
	hold         atomic.Bool  // writer stops picking up batches entirely
	tearAppend   atomic.Bool  // one-shot: tear the next WAL append and die
}

// SetBatchDelay makes the writer sleep d before applying each batch —
// a slow-apply fault that backs the queue up organically.
func (f *Faults) SetBatchDelay(d time.Duration) { f.batchDelay.Store(int64(d)) }

// BatchDelay returns the current writer-batch delay.
func (f *Faults) BatchDelay() time.Duration { return time.Duration(f.batchDelay.Load()) }

// SetPublishStall makes the writer sleep d between applying a batch and
// acknowledging it — mutations are durable in the live structures but
// clients have not been told yet, the window a crash turns into
// "applied but unacknowledged" work.
func (f *Faults) SetPublishStall(d time.Duration) { f.publishStall.Store(int64(d)) }

// PublishStall returns the current publication stall.
func (f *Faults) PublishStall() time.Duration { return time.Duration(f.publishStall.Load()) }

// SetHold freezes (true) or releases (false) the writer: while held it
// applies nothing, so the mutation queue fills and producers block —
// the forced queue-full backpressure fault. A graceful shutdown
// overrides a hold: Close still flushes everything queued.
func (f *Faults) SetHold(v bool) { f.hold.Store(v) }

// Hold reports whether the writer is currently held.
func (f *Faults) Hold() bool { return f.hold.Load() }

// ArmWALTear arms (or disarms) the one-shot torn-append fault: the next
// write-ahead-log append writes only half its frame and the process
// kills itself — the mid-append power cut. The harness restarts the
// server and checks torn-tail recovery discards exactly that frame.
// The hook itself lives in kiffserve's faultinject build (the server
// package never exits the process); this is just the armed flag.
func (f *Faults) ArmWALTear(v bool) { f.tearAppend.Store(v) }

// TakeWALTear consumes the torn-append arming: it returns true at most
// once per ArmWALTear(true), so exactly one append is torn.
func (f *Faults) TakeWALTear() bool { return f.tearAppend.CompareAndSwap(true, false) }

// WALTearArmed reports the armed flag without consuming it.
func (f *Faults) WALTearArmed() bool { return f.tearAppend.Load() }

// faultsState is the JSON form of the knobs, served by GET /faults and
// accepted (all fields optional) by POST /faults.
type faultsState struct {
	Hold           *bool  `json:"hold,omitempty"`
	BatchDelayMs   *int64 `json:"batch_delay_ms,omitempty"`
	PublishStallMs *int64 `json:"publish_stall_ms,omitempty"`
	WALTear        *bool  `json:"wal_tear,omitempty"`
}

// handleFaults reads (GET) and adjusts (POST) the fault knobs. Only
// routed when Config.Faults is set.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	f := s.cfg.Faults
	if r.Method == http.MethodPost {
		var req faultsState
		if err := decodeJSON(r, &req); err != nil {
			httpError(w, requestStatus(err), err)
			return
		}
		if req.Hold != nil {
			f.SetHold(*req.Hold)
		}
		if req.BatchDelayMs != nil {
			if *req.BatchDelayMs < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("batch_delay_ms must be ≥ 0, got %d", *req.BatchDelayMs))
				return
			}
			f.SetBatchDelay(time.Duration(*req.BatchDelayMs) * time.Millisecond)
		}
		if req.PublishStallMs != nil {
			if *req.PublishStallMs < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("publish_stall_ms must be ≥ 0, got %d", *req.PublishStallMs))
				return
			}
			f.SetPublishStall(time.Duration(*req.PublishStallMs) * time.Millisecond)
		}
		if req.WALTear != nil {
			f.ArmWALTear(*req.WALTear)
		}
	}
	hold := f.Hold()
	bd := int64(f.BatchDelay() / time.Millisecond)
	ps := int64(f.PublishStall() / time.Millisecond)
	tear := f.WALTearArmed()
	writeJSON(w, http.StatusOK, faultsState{Hold: &hold, BatchDelayMs: &bd, PublishStallMs: &ps, WALTear: &tear})
}
