package server

// Prometheus instrumentation for the serving layer, exposed at
// GET /metrics. Two kinds of series live in the registry:
//
//   - Live instruments (request counts, latency histograms, auth/rate
//     denials, writer batches) are updated inline on the hot path.
//   - Snapshot-sourced series (queue depth, maintenance and publication
//     counters, WAL meters, per-shard rows) are Set at scrape time from
//     the exact same sources handleStats reads — maintainCounters,
//     walCounters, ShardStats — so /metrics and /stats can never
//     disagree about a value they both report.
//
// Families that do not apply to a configuration (WAL meters without a
// log attached, shard rows without a pool) are not registered at all,
// rather than exported as misleading zeros.

import (
	"net/http"
	"strconv"
	"time"

	"kiff/internal/metrics"
)

// latencyBuckets spans sub-millisecond snapshot reads up to multi-second
// backpressure stalls on mutations.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// batchSizeBuckets covers 1..MaxBatch (default 64) in powers of two.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// serverMetrics bundles the registry and every instrument. Fields that
// depend on the configuration (wal*, shard*) are nil when unregistered.
type serverMetrics struct {
	s   *Server
	reg *metrics.Registry

	// Live, hot-path instruments.
	requests     *metrics.CounterVec   // endpoint, method, code class
	latency      *metrics.HistogramVec // endpoint
	authFailures *metrics.CounterVec   // reason: unauthorized | forbidden
	rateLimited  *metrics.CounterVec
	batches      *metrics.Counter
	batchSize    *metrics.Histogram

	// Scrape-time series, mirrored from the /stats sources.
	users     *metrics.Gauge
	version   *metrics.Gauge
	queueLen  *metrics.Gauge
	queueCap  *metrics.Gauge
	queries   *metrics.Counter
	neighbors *metrics.Counter
	insertReq *metrics.Counter
	ratingReq *metrics.Counter
	rejected  *metrics.Counter

	maintSimEvals *metrics.Counter
	maintInserts  *metrics.Counter
	maintRebuilds *metrics.Counter
	maintRebuilt  *metrics.Counter
	publications  *metrics.Counter
	pagesCopied   *metrics.Counter
	pagesShared   *metrics.Counter
	publishSecs   *metrics.Counter

	walAppended  *metrics.Counter
	walBytes     *metrics.Counter
	walFsyncs    *metrics.Counter
	walErrors    *metrics.Counter
	walReplayed  *metrics.Counter
	walTruncated *metrics.Counter
	walLastLSN   *metrics.Gauge

	shardUsers    *metrics.GaugeVec // shard
	shardVersion  *metrics.GaugeVec
	shardInserts  *metrics.CounterVec
	shardRebuilds *metrics.CounterVec
	shardRebuilt  *metrics.CounterVec
	shardPubs     *metrics.CounterVec
	shardCopied   *metrics.CounterVec
	shardShared   *metrics.CounterVec
}

// newServerMetrics builds the registry for a configured server. Called
// by New after the backend fields are set, so it can see which optional
// families (WAL, shards) apply.
func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{
		s:   s,
		reg: r,

		requests: r.NewCounter("kiffserve_http_requests_total",
			"HTTP requests served, including auth and rate-limit denials.",
			"endpoint", "method", "code"),
		latency: r.NewHistogram("kiffserve_http_request_duration_seconds",
			"Wall time per request, measured around the full middleware chain.",
			latencyBuckets, "endpoint"),
		authFailures: r.NewCounter("kiffserve_auth_failures_total",
			"Requests denied by authentication (reason: unauthorized=401, forbidden=403).",
			"reason"),
		rateLimited: r.NewCounter("kiffserve_rate_limited_total",
			"Requests denied with 429 by the token-bucket rate limiter."),
		batches: r.NewCounter("kiffserve_writer_batches_total",
			"Mutation batches applied by the writer goroutine.").With(),
		batchSize: r.NewHistogram("kiffserve_writer_batch_size",
			"Ops per applied writer batch.", batchSizeBuckets).With(),

		users: r.NewGauge("kiffserve_snapshot_users",
			"Users in the currently published snapshot.").With(),
		version: r.NewGauge("kiffserve_snapshot_version",
			"Version of the currently published snapshot.").With(),
		queueLen: r.NewGauge("kiffserve_mutation_queue_depth",
			"Mutations waiting in the writer queue.").With(),
		queueCap: r.NewGauge("kiffserve_mutation_queue_capacity",
			"Writer queue capacity; depth at capacity means mutations block (backpressure).").With(),
		queries: r.NewCounter("kiffserve_queries_total",
			"POST /query requests (matches /stats \"queries\").").With(),
		neighbors: r.NewCounter("kiffserve_neighbor_requests_total",
			"GET /neighbors requests (matches /stats \"neighbor_requests\").").With(),
		insertReq: r.NewCounter("kiffserve_insert_requests_total",
			"POST /users requests (matches /stats \"inserts\").").With(),
		ratingReq: r.NewCounter("kiffserve_rating_requests_total",
			"POST /ratings requests (matches /stats \"ratings\").").With(),
		rejected: r.NewCounter("kiffserve_rejected_total",
			"Mutations rejected while waiting for the queue (matches /stats \"rejected\").").With(),
	}
	// Denial counters start visible at 0: an operator alerting on
	// rate(kiffserve_auth_failures_total) must see the series before the
	// first denial, not a gap.
	m.authFailures.With("unauthorized")
	m.authFailures.With("forbidden")
	m.rateLimited.With()
	if s.w != nil {
		m.maintSimEvals = r.NewCounter("kiffserve_maintain_sim_evals_total",
			"Similarity evaluations spent on graph maintenance.").With()
		m.maintInserts = r.NewCounter("kiffserve_maintain_inserts_total",
			"Users inserted into the maintained graph.").With()
		m.maintRebuilds = r.NewCounter("kiffserve_maintain_rebuilds_total",
			"Incremental rebuild passes run by the writer.").With()
		m.maintRebuilt = r.NewCounter("kiffserve_maintain_rebuilt_users_total",
			"Users refreshed by rebuild passes.").With()
		m.publications = r.NewCounter("kiffserve_publications_total",
			"Copy-on-write snapshot publications.").With()
		m.pagesCopied = r.NewCounter("kiffserve_pages_copied_total",
			"Pages rewritten during publications (held dirty rows).").With()
		m.pagesShared = r.NewCounter("kiffserve_pages_shared_total",
			"Pages shared with the previous snapshot during publications.").With()
		m.publishSecs = r.NewCounter("kiffserve_publish_seconds_total",
			"Cumulative wall time spent publishing snapshots.").With()
	}
	if s.walAttached() {
		m.walAppended = r.NewCounter("kiffserve_wal_appends_total",
			"Records appended to the write-ahead log since boot.").With()
		m.walBytes = r.NewCounter("kiffserve_wal_appended_bytes_total",
			"Bytes appended to the write-ahead log since boot.").With()
		m.walFsyncs = r.NewCounter("kiffserve_wal_fsyncs_total",
			"fsync calls issued by the write-ahead log.").With()
		m.walErrors = r.NewCounter("kiffserve_wal_append_errors_total",
			"Append failures; any nonzero value fail-stops the write path.").With()
		m.walReplayed = r.NewCounter("kiffserve_wal_replayed_total",
			"Records replayed from the log at startup.").With()
		m.walTruncated = r.NewCounter("kiffserve_wal_truncated_bytes_total",
			"Torn-tail bytes discarded by recovery at startup.").With()
		m.walLastLSN = r.NewGauge("kiffserve_wal_last_lsn",
			"Highest LSN durably appended (pool mode: max over shards).").With()
	}
	if s.pool != nil {
		m.shardUsers = r.NewGauge("kiffserve_shard_users",
			"Users owned by the shard.", "shard")
		m.shardVersion = r.NewGauge("kiffserve_shard_version",
			"Publication version of the shard.", "shard")
		m.shardInserts = r.NewCounter("kiffserve_shard_inserts_total",
			"Users inserted into the shard.", "shard")
		m.shardRebuilds = r.NewCounter("kiffserve_shard_rebuilds_total",
			"Rebuild passes run on the shard.", "shard")
		m.shardRebuilt = r.NewCounter("kiffserve_shard_rebuilt_users_total",
			"Users refreshed by the shard's rebuild passes.", "shard")
		m.shardPubs = r.NewCounter("kiffserve_shard_publications_total",
			"Snapshot publications by the shard.", "shard")
		m.shardCopied = r.NewCounter("kiffserve_shard_pages_copied_total",
			"Pages rewritten by the shard's publications.", "shard")
		m.shardShared = r.NewCounter("kiffserve_shard_pages_shared_total",
			"Pages shared by the shard's publications.", "shard")
	}
	r.OnScrape(m.collect)
	return m
}

// collect refreshes every snapshot-sourced series. Runs at the start of
// each scrape, reading the same atomics and counter snapshots /stats
// reads — never the writer's live state.
func (m *serverMetrics) collect() {
	s := m.s
	src := s.source()
	m.users.Set(float64(src.NumUsers()))
	m.version.Set(float64(src.Version()))
	m.queueLen.Set(float64(len(s.ops)))
	m.queueCap.Set(float64(cap(s.ops)))
	m.queries.Set(float64(s.queries.Load()))
	m.neighbors.Set(float64(s.neighborGets.Load()))
	m.insertReq.Set(float64(s.inserts.Load()))
	m.ratingReq.Set(float64(s.ratings.Load()))
	m.rejected.Set(float64(s.rejected.Load()))
	if c := s.maintainCounters.Load(); c != nil && m.maintSimEvals != nil {
		m.maintSimEvals.Set(float64(c.SimEvals))
		m.maintInserts.Set(float64(c.Inserts))
		m.maintRebuilds.Set(float64(c.Rebuilds))
		m.maintRebuilt.Set(float64(c.RebuiltUsers))
		m.publications.Set(float64(c.Publishes))
		m.pagesCopied.Set(float64(c.PagesCopied))
		m.pagesShared.Set(float64(c.PagesShared))
		m.publishSecs.Set(float64(c.PublishNs) / 1e9)
	}
	if m.walAppended != nil {
		c := s.walCounters()
		m.walAppended.Set(float64(c.Appended))
		m.walBytes.Set(float64(c.AppendedBytes))
		m.walFsyncs.Set(float64(c.Fsyncs))
		m.walErrors.Set(float64(c.AppendErrors))
		m.walReplayed.Set(float64(c.Replayed))
		m.walTruncated.Set(float64(c.TruncatedBytes))
		m.walLastLSN.Set(float64(c.LastLSN))
	}
	if m.shardUsers != nil {
		for _, st := range s.pool.ShardStats() {
			id := strconv.Itoa(st.Shard)
			m.shardUsers.With(id).Set(float64(st.Users))
			m.shardVersion.With(id).Set(float64(st.Version))
			m.shardInserts.With(id).Set(float64(st.Counters.Inserts))
			m.shardRebuilds.With(id).Set(float64(st.Counters.Rebuilds))
			m.shardRebuilt.With(id).Set(float64(st.Counters.RebuiltUsers))
			m.shardPubs.With(id).Set(float64(st.Counters.Publishes))
			m.shardCopied.With(id).Set(float64(st.Counters.PagesCopied))
			m.shardShared.With(id).Set(float64(st.Counters.PagesShared))
		}
	}
}

// endpointLabel normalizes a request path to a bounded label set. The
// middleware wraps outside the mux, so ServeMux pattern matching has not
// run yet; unknown paths collapse to "other" to cap series cardinality.
func endpointLabel(path string) string {
	if len(path) >= len("/neighbors/") && path[:len("/neighbors/")] == "/neighbors/" {
		return "/neighbors"
	}
	switch path {
	case "/healthz", "/stats", "/metrics", "/query", "/users", "/ratings", "/checkpoint", "/faults":
		return path
	}
	return "other"
}

// codeClass buckets a status code for the request counter's code label.
func codeClass(status int) string {
	switch {
	case status < 200:
		return "1xx"
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// withInstrumentation is the outermost middleware: every request —
// served, denied, or malformed — lands in the request counter and the
// latency histogram.
func (s *Server) withInstrumentation(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		ep := endpointLabel(r.URL.Path)
		s.metrics.requests.With(ep, r.Method, codeClass(rec.status())).Inc()
		s.metrics.latency.With(ep).Observe(time.Since(start).Seconds())
	})
}
