package server

// The admission-control middleware chain: API-key authentication with
// read/write scopes, per-key token-bucket rate limiting, and structured
// request logging. Every layer is opt-in through Config — a default
// Server behaves exactly as before this file existed — and /healthz is
// exempt from all of them so load-balancer probes keep working when
// keys rotate or a client misbehaves.
//
// Chain order, outermost first:
//
//	instrument → request log → auth → rate limit → mux
//
// Instrumentation is outermost so denied requests (401/403/429) are
// counted and timed like everything else; rate limiting runs after
// authentication so buckets are keyed by API key (falling back to the
// client IP when authentication is disabled).

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Scope is an API key's permission level.
type Scope uint8

const (
	// ScopeRead grants the read surface: /neighbors, /query, /stats,
	// /metrics, GET /faults.
	ScopeRead Scope = iota + 1
	// ScopeWrite grants everything ScopeRead does plus the mutation
	// surface: /users, /ratings, /checkpoint, POST /faults.
	ScopeWrite
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeRead:
		return "read"
	case ScopeWrite:
		return "write"
	}
	return fmt.Sprintf("Scope(%d)", uint8(s))
}

// ParseScope parses "read" or "write".
func ParseScope(s string) (Scope, error) {
	switch s {
	case "read":
		return ScopeRead, nil
	case "write":
		return ScopeWrite, nil
	}
	return 0, fmt.Errorf("unknown scope %q (want read or write)", s)
}

// APIKey is one authorized key. The key itself is stored only as a
// SHA-256 digest: lookups hash the presented key and compare digests in
// constant time, so neither a memory dump nor a timing probe recovers
// key material.
type APIKey struct {
	digest [sha256.Size]byte
	id     string // digest prefix; the rate-limit bucket key and log field
	scope  Scope

	// Per-key rate-limit overrides; nil means the server-wide
	// Config.RateLimit / Config.RateBurst apply. Overrides let one keys
	// file carry tiers: a high-burst ingest key next to a tightly
	// throttled public read key.
	rps   *float64
	burst *float64
}

// NewAPIKey builds a key entry from the raw key material and scope.
func NewAPIKey(key string, scope Scope) APIKey {
	d := sha256.Sum256([]byte(key))
	return APIKey{digest: d, id: hex.EncodeToString(d[:6]), scope: scope}
}

// Scope returns the key's permission level.
func (k APIKey) Scope() Scope { return k.scope }

// ID returns the key's non-secret identifier (a digest prefix), used as
// the rate-limit bucket key and in request logs.
func (k APIKey) ID() string { return k.id }

// ParseAPIKeys parses a keys file. One key per line:
//
//	<scope>:<key>[:<burst>[:<rate>]]
//
// where scope is "read" or "write", key is the secret (no colons or
// whitespace), and the optional burst/rate override the server-wide
// token-bucket parameters for this key alone (burst = bucket capacity
// in requests, rate = refill in requests/second; rate may be 0 for a
// hard cap that only a restart refills). Blank lines and lines starting
// with '#' are ignored.
func ParseAPIKeys(data []byte) ([]APIKey, error) {
	var keys []APIKey
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("line %d: want scope:key[:burst[:rate]], got %d fields", ln+1, len(parts))
		}
		scope, err := ParseScope(parts[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if parts[1] == "" || strings.ContainsAny(parts[1], " \t") {
			return nil, fmt.Errorf("line %d: empty key or key contains whitespace", ln+1)
		}
		k := NewAPIKey(parts[1], scope)
		if len(parts) >= 3 {
			b, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || b < 1 {
				return nil, fmt.Errorf("line %d: burst override %q must be a number ≥ 1", ln+1, parts[2])
			}
			k.burst = &b
		}
		if len(parts) == 4 {
			r, err := strconv.ParseFloat(parts[3], 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("line %d: rate override %q must be a number ≥ 0", ln+1, parts[3])
			}
			k.rps = &r
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return nil, errors.New("keys file holds no keys")
	}
	return keys, nil
}

// LoadAPIKeys reads and parses a keys file (see ParseAPIKeys).
func LoadAPIKeys(path string) ([]APIKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	keys, err := ParseAPIKeys(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return keys, nil
}

// authenticator resolves a presented key to its APIKey entry by
// constant-time digest comparison over the (small) key set.
type authenticator struct{ keys []APIKey }

func (a *authenticator) lookup(presented string) (APIKey, bool) {
	d := sha256.Sum256([]byte(presented))
	var found APIKey
	ok := 0
	// Scan every entry regardless of match so the comparison count does
	// not leak which key (if any) matched.
	for _, k := range a.keys {
		if subtle.ConstantTimeCompare(d[:], k.digest[:]) == 1 {
			found, ok = k, 1
		}
	}
	return found, ok == 1
}

// presentedKey extracts the API key from a request: the Authorization
// Bearer token, or the X-API-Key header.
func presentedKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if tok, found := strings.CutPrefix(h, "Bearer "); found {
			return tok
		}
	}
	return r.Header.Get("X-API-Key")
}

// authExempt reports whether the path bypasses authentication and rate
// limiting: /healthz must stay reachable by load-balancer probes no
// matter what, and unauthenticated probes must not fill rate buckets.
func authExempt(path string) bool { return path == "/healthz" }

// writeScopeNeeded reports whether the request mutates state: the POST
// mutation surface. POST /query is a read (the POST only carries the
// profile payload).
func writeScopeNeeded(r *http.Request) bool {
	if r.Method != http.MethodPost {
		return false
	}
	switch r.URL.Path {
	case "/users", "/ratings", "/checkpoint", "/faults":
		return true
	}
	return false
}

// authKeyCtx carries the authenticated APIKey through the chain to the
// rate limiter and the request log.
type authKeyCtxType struct{}

var authKeyCtx authKeyCtxType

// withAuth is the authentication middleware: 401 for a missing or
// unknown key, 403 for a read-scoped key on a mutation, and the
// authenticated key stored in the request context otherwise.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		key, ok := s.auth.lookup(presentedKey(r))
		if !ok {
			s.metrics.authFailures.With("unauthorized").Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="kiffserve"`)
			httpError(w, http.StatusUnauthorized, errors.New("missing or unknown API key"))
			return
		}
		if writeScopeNeeded(r) && key.scope < ScopeWrite {
			s.metrics.authFailures.With("forbidden").Inc()
			httpError(w, http.StatusForbidden, fmt.Errorf("key %s has %s scope; this endpoint requires write scope", key.id, key.scope))
			return
		}
		noteKeyID(w, key.id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), authKeyCtx, key)))
	})
}

// --- Rate limiting ------------------------------------------------------

// rateLimiter is a per-key token-bucket admission gate. Each key starts
// with a full bucket of `burst` tokens; a request takes one token, and
// tokens refill continuously at `rps` per second up to the burst cap.
// Keys with per-key overrides (APIKey rate/burst fields) get their own
// parameters.
type rateLimiter struct {
	rps   float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rps float64, burst int, now func() time.Time) *rateLimiter {
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rps: rps, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// retryAfterCap bounds the Retry-After hint: with a zero refill rate the
// honest answer is "when the server restarts", which has no finite
// spelling — an hour tells the client to go away without lying by much.
const retryAfterCap = time.Hour

// allow takes one token from the key's bucket, reporting whether the
// request may proceed and, if not, how long until a token is available.
func (l *rateLimiter) allow(key string, rpsOverride, burstOverride *float64) (bool, time.Duration) {
	rps, burst := l.rps, l.burst
	if rpsOverride != nil {
		rps = *rpsOverride
	}
	if burstOverride != nil {
		burst = *burstOverride
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		b = &bucket{tokens: burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(burst, b.tokens+rps*dt)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if rps <= 0 {
		return false, retryAfterCap
	}
	retry := time.Duration((1 - b.tokens) / rps * float64(time.Second))
	return false, min(retry, retryAfterCap)
}

// rateKey picks the bucket key for a request: the authenticated API
// key's ID when the auth middleware ran, the client IP otherwise.
func rateKey(r *http.Request) (string, *float64, *float64) {
	if k, ok := r.Context().Value(authKeyCtx).(APIKey); ok {
		return "key:" + k.id, k.rps, k.burst
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "ip:" + host, nil, nil
}

// withRateLimit is the admission middleware: 429 with a Retry-After
// hint once a key's bucket is empty.
func (s *Server) withRateLimit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		key, rps, burst := rateKey(r)
		ok, retry := s.limiter.allow(key, rps, burst)
		if !ok {
			s.metrics.rateLimited.With().Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(max(retry.Seconds(), 1)))))
			httpError(w, http.StatusTooManyRequests, errors.New("rate limit exceeded"))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// --- Request logging ----------------------------------------------------

// requestLogLine is one structured access-log record, emitted as a JSON
// object through Config.Logf.
type requestLogLine struct {
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	DurationMs float64 `json:"duration_ms"`
	Bytes      int64   `json:"bytes"`
	Remote     string  `json:"remote"`
	Key        string  `json:"key,omitempty"` // authenticated key ID, never the key
}

// withRequestLog emits one JSON line per request. It wraps outside the
// auth and rate-limit middleware so denied requests are logged with
// their 401/403/429 status; the auth layer reports the key ID upward
// through the statusRecorder (see noteKeyID).
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		line := requestLogLine{
			Method:     r.Method,
			Path:       r.URL.Path,
			Status:     rec.status(),
			DurationMs: float64(time.Since(start).Microseconds()) / 1e3,
			Bytes:      rec.bytes,
			Remote:     r.RemoteAddr,
		}
		// The auth middleware runs inside this one, so the key is not in
		// OUR request's context; it stashes the ID on the recorder instead.
		if rec.keyID != "" {
			line.Key = rec.keyID
		}
		raw, err := json.Marshal(line)
		if err != nil {
			return // a log line must never fail a request
		}
		s.cfg.Logf("%s", raw)
	})
}

// statusRecorder captures the response status and body size, and gives
// inner middleware a slot to surface the authenticated key ID to the
// outer log middleware.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int64
	keyID string
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// status returns the recorded status, defaulting to 200 (a handler that
// wrote nothing).
func (r *statusRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// Unwrap supports http.ResponseController pass-through.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// noteKeyID records the authenticated key on the nearest enclosing
// statusRecorder so the access log can attribute the request.
func noteKeyID(w http.ResponseWriter, id string) {
	for {
		switch t := w.(type) {
		case *statusRecorder:
			t.keyID = id
			return
		case interface{ Unwrap() http.ResponseWriter }:
			w = t.Unwrap()
		default:
			return
		}
	}
}

// buildChain assembles the middleware stack around the mux according to
// the configuration. Called once by New.
func (s *Server) buildChain() http.Handler {
	var h http.Handler = s.mux
	if s.limiter != nil {
		h = s.withRateLimit(h)
	}
	if s.auth != nil {
		h = s.withAuth(h)
	}
	if s.cfg.LogRequests {
		h = s.withRequestLog(h)
	}
	return s.withInstrumentation(h)
}
