package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"kiff"
	"kiff/internal/fsio"
	"kiff/internal/shard"
)

// Checkpoint file names inside a maintainer-mode checkpoint directory.
// (Pool-mode checkpoints are laid out by shard.Pool.Save: per-shard
// graph.i.kfg/data.i.kfd plus a manifest.) A restarting kiffserve
// consumes the pair via -graph/-data, or the whole directory via -pool —
// or, with -wal, finds the latest generation itself (LatestCheckpoint).
const (
	GraphCheckpointFile = "graph.kfg"
	DataCheckpointFile  = "data.kfd"
)

// CheckpointMetaFile is the maintainer-mode sidecar written last into a
// checkpoint directory — its presence marks the checkpoint complete
// (pool mode uses the manifest the same way), and it carries the
// write-ahead-log horizon replay resumes above.
const CheckpointMetaFile = "ckpt.json"

// checkpointMetaSchema identifies the ckpt.json format.
const checkpointMetaSchema = "kiff/ckpt/v1"

// CheckpointMeta is the ckpt.json payload.
type CheckpointMeta struct {
	// Schema is checkpointMetaSchema.
	Schema string `json:"schema"`
	// Gen is the checkpoint generation (the N of its ckpt-N directory;
	// 0 for checkpoints saved outside the generation sequence).
	Gen uint64 `json:"gen"`
	// WalLSN is the write-ahead-log horizon at capture: the checkpoint
	// covers log records 1..WalLSN. 0 when no log was attached.
	WalLSN uint64 `json:"wal_lsn"`
}

// ReadCheckpointMeta loads a maintainer-mode checkpoint's ckpt.json.
func ReadCheckpointMeta(dir string) (CheckpointMeta, error) {
	raw, err := os.ReadFile(filepath.Join(dir, CheckpointMetaFile))
	if err != nil {
		return CheckpointMeta{}, fmt.Errorf("server: checkpoint meta: %w", err)
	}
	var meta CheckpointMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return CheckpointMeta{}, fmt.Errorf("server: checkpoint meta: %w", err)
	}
	if meta.Schema != checkpointMetaSchema {
		return CheckpointMeta{}, fmt.Errorf("server: checkpoint meta: schema %q, want %q", meta.Schema, checkpointMetaSchema)
	}
	return meta, nil
}

// ckptGenRe matches generation-named checkpoint directories. The old
// ckpt-<pid>-<seq> scheme deliberately does not match: those directories
// are left alone and never considered "latest".
var ckptGenRe = regexp.MustCompile(`^ckpt-(\d+)$`)

// nextCheckpointGen scans root and returns one past the highest
// generation any ckpt-N entry carries — complete or not, so a crashed
// half-written generation is never reused (a restarted reader may still
// be serving mmap-backed files out of an old directory). A missing root
// starts at 1; the generation counter thereby persists across restarts
// in the directory names themselves.
func nextCheckpointGen(root string) uint64 {
	entries, err := os.ReadDir(root)
	if err != nil {
		return 1
	}
	var max uint64
	for _, e := range entries {
		m := ckptGenRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if g, err := strconv.ParseUint(m[1], 10, 64); err == nil && g > max {
			max = g
		}
	}
	return max + 1
}

// LatestCheckpoint returns the newest complete checkpoint under root:
// the highest-generation ckpt-N directory holding a completeness marker
// (ckpt.json for maintainer checkpoints, the shard manifest for pool
// checkpoints). ok is false when root has none — the cold-start case.
// Picking latest here, rather than trusting the caller to remember a
// path, is what keeps restart-with-WAL safe: the logs were rotated
// against the newest checkpoint, so replaying on top of an older one
// would have a gap (which wal.Open detects and refuses).
func LatestCheckpoint(root string) (dir string, ok bool) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return "", false
	}
	var best uint64
	for _, e := range entries {
		m := ckptGenRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		g, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil || g <= best {
			continue
		}
		p := filepath.Join(root, e.Name())
		if fileExists(filepath.Join(p, CheckpointMetaFile)) || fileExists(filepath.Join(p, shard.ManifestFile)) {
			best, dir, ok = g, p, true
		}
	}
	return dir, ok
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// handleCheckpoint runs a checkpoint through the writer queue: the save
// executes on the writer goroutine between batches, so it observes a
// quiesced maintainer that includes every mutation acknowledged before
// it — the on-demand durability point the chaos harness restarts from.
// Only routed when Config.CheckpointDir is set; read-only servers
// return 403 like any other mutation.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	res := s.enqueue(r, op{kind: opCheckpoint})
	if res.err != nil {
		httpError(w, mutationStatus(res.err), res.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":     res.dir,
		"version": res.version,
	})
}

// checkpoint saves the current writer state into the next
// generation-numbered subdirectory of Config.CheckpointDir and returns
// it. Writer-only. The generation counter was seeded from a directory
// scan at startup (nextCheckpointGen), so a restarted server continues
// the sequence on its own — no external numbering required — and a
// later LatestCheckpoint finds this save by its generation.
func (s *Server) checkpoint() (string, error) {
	dir := filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("ckpt-%d", s.ckptSeq))
	if err := s.saveTo(dir, s.ckptSeq); err != nil {
		return dir, err
	}
	s.ckptSeq++
	return dir, nil
}

// SaveFinal checkpoints the writer state into dir after the server has
// been closed — the graceful-shutdown save kiffserve runs so a SIGTERM
// never discards acknowledged mutations (Close flushed the queue, so
// "acknowledged" and "applied" coincide by the time this runs). It must
// only be called once Close has returned; while the writer is live, use
// POST /checkpoint instead.
//
// SaveFinal refuses to run with a write-ahead log attached: saving
// rotates the logs, and a rotation against a directory the startup scan
// does not consider "latest" would strand the discarded records. A
// logged server does not need a final save — its log already holds
// every acknowledged mutation, and boot replays it.
func (s *Server) SaveFinal(dir string) error {
	if s.w == nil {
		return errReadOnly
	}
	if s.walAttached() {
		return errors.New("server: SaveFinal with a write-ahead log attached (the log is the shutdown durability; checkpoint via POST /checkpoint instead)")
	}
	select {
	case <-s.done:
	default:
		return errors.New("server: SaveFinal requires Close first (the writer still owns the state)")
	}
	return s.saveTo(dir, 0)
}

// saveTo writes a checkpoint of the mutable backend into dir (created
// if missing). Pool mode delegates to shard.Pool.Save (per-shard files
// + manifest renamed last, plus WAL horizon recording and rotation when
// the shards log). Maintainer mode writes the graph/dataset pair
// through fsio (temp file + rename: crash atomicity and mmap safety),
// then the ckpt.json completeness marker, then rotates the maintainer's
// log — by then every record the rotation discards is durably covered.
func (s *Server) saveTo(dir string, gen uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	if s.pool != nil {
		return s.pool.Save(dir)
	}
	walled := s.m.WALAttached()
	persist := fsio.Write
	if walled {
		// The rotation below discards log records; the files standing in
		// for them must survive everything the log would have.
		persist = fsio.WriteDurable
	}
	if err := persist(filepath.Join(dir, GraphCheckpointFile), func(f *os.File) error {
		return kiff.WriteGraphBinary(f, s.m.Graph())
	}); err != nil {
		return fmt.Errorf("server: checkpoint graph: %w", err)
	}
	if err := persist(filepath.Join(dir, DataCheckpointFile), func(f *os.File) error {
		return kiff.WriteDatasetBinary(f, s.m.Dataset())
	}); err != nil {
		return fmt.Errorf("server: checkpoint dataset: %w", err)
	}
	meta := CheckpointMeta{Schema: checkpointMetaSchema, Gen: gen, WalLSN: s.m.WALLastLSN()}
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("server: checkpoint meta: %w", err)
	}
	raw = append(raw, '\n')
	if err := persist(filepath.Join(dir, CheckpointMetaFile), func(f *os.File) error {
		_, err := f.Write(raw)
		return err
	}); err != nil {
		return fmt.Errorf("server: checkpoint meta: %w", err)
	}
	if walled {
		if err := s.m.WALRotate(); err != nil {
			return fmt.Errorf("server: checkpoint: %w", err)
		}
	}
	return nil
}
