package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"kiff"
)

// Checkpoint file names inside a maintainer-mode checkpoint directory.
// (Pool-mode checkpoints are laid out by shard.Pool.Save: per-shard
// graph.i.kfg/data.i.kfd plus a manifest.) A restarting kiffserve
// consumes the pair via -graph/-data, or the whole directory via -pool.
const (
	GraphCheckpointFile = "graph.kfg"
	DataCheckpointFile  = "data.kfd"
)

// handleCheckpoint runs a checkpoint through the writer queue: the save
// executes on the writer goroutine between batches, so it observes a
// quiesced maintainer that includes every mutation acknowledged before
// it — the on-demand durability point the chaos harness restarts from.
// Only routed when Config.CheckpointDir is set; read-only servers
// return 403 like any other mutation.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	res := s.enqueue(r, op{kind: opCheckpoint})
	if res.err != nil {
		httpError(w, mutationStatus(res.err), res.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":     res.dir,
		"version": res.version,
	})
}

// checkpoint saves the current writer state into a fresh subdirectory
// of Config.CheckpointDir and returns it. Writer-only. The directory
// name includes the process ID so generations of a restarting server
// never write into a directory an earlier generation handed out (a
// restarted process may still be serving mmap-backed files from it).
func (s *Server) checkpoint() (string, error) {
	s.ckptSeq++
	dir := filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("ckpt-%d-%d", os.Getpid(), s.ckptSeq))
	return dir, s.saveTo(dir)
}

// SaveFinal checkpoints the writer state into dir after the server has
// been closed — the graceful-shutdown save kiffserve runs so a SIGTERM
// never discards acknowledged mutations (Close flushed the queue, so
// "acknowledged" and "applied" coincide by the time this runs). It must
// only be called once Close has returned; while the writer is live, use
// POST /checkpoint instead.
func (s *Server) SaveFinal(dir string) error {
	if s.w == nil {
		return errReadOnly
	}
	select {
	case <-s.done:
	default:
		return errors.New("server: SaveFinal requires Close first (the writer still owns the state)")
	}
	return s.saveTo(dir)
}

// saveTo writes a checkpoint of the mutable backend into dir (created
// if missing). Pool mode delegates to shard.Pool.Save (per-shard files
// + manifest, manifest renamed last). Maintainer mode writes the
// graph/dataset pair, each through a temp file renamed into place, so a
// crash mid-save never leaves a truncated file under a final name and
// an overwrite never truncates an inode a reader may have mmapped.
func (s *Server) saveTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	if s.pool != nil {
		return s.pool.Save(dir)
	}
	if err := saveAtomic(filepath.Join(dir, GraphCheckpointFile), func(path string) error {
		return kiff.SaveGraph(path, s.m.Graph())
	}); err != nil {
		return fmt.Errorf("server: checkpoint graph: %w", err)
	}
	if err := saveAtomic(filepath.Join(dir, DataCheckpointFile), func(path string) error {
		return kiff.SaveDataset(path, s.m.Dataset())
	}); err != nil {
		return fmt.Errorf("server: checkpoint dataset: %w", err)
	}
	return nil
}

// saveAtomic writes path via write(path+".tmp") then renames into
// place.
func saveAtomic(path string, write func(string) error) error {
	tmp := path + ".tmp"
	if err := write(tmp); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
