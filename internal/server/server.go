// Package server implements the HTTP serving front-end over the
// lock-free snapshot path (cmd/kiffserve is the thin binary around it).
//
// Reads never take a lock: every request loads the current immutable
// kiff.Snapshot from the atomic publication pointer and serves neighbor
// lists and profile queries from it. Writes are funneled to the single
// writer the Maintainer requires through a bounded channel: one writer
// goroutine drains the queue in batches (one copy-on-write publication
// across the batch, via InsertBatch and one Rebuild per batch), and a
// full queue pushes back on producers — a mutation request blocks until
// the writer catches up or the client gives up, which is the server's
// backpressure.
//
// Endpoints:
//
//	GET  /healthz            liveness + snapshot version
//	GET  /stats              serving counters, queue depth, maintenance costs
//	GET  /metrics            Prometheus text-format exposition of the same meters
//	GET  /neighbors/{user}   the user's current KNN list
//	POST /query              profile → top-k similar users (or recommended items)
//	POST /users              insert a user profile, returns its ID
//	POST /ratings            record rating updates, rebuild, returns the new version
//	POST /checkpoint         save writer state into a fresh directory (Config.CheckpointDir)
//	GET  /faults             fault-injection knobs (test-only, Config.Faults)
//
// /healthz carries a readiness facet alongside liveness: "ready" flips
// to "degraded" while the mutation queue is saturated (writes block),
// and back to "ok" once the writer catches up; reads are unaffected.
//
// A server constructed from a static Snapshot (no Maintainer) is
// read-only: mutation endpoints return 403 and everything else works
// unchanged — the zero-copy "map a checkpoint and serve" mode.
//
// A server over a ShardedMaintainer pool serves the same API: reads pin
// a scatter-gather view per request (Neighbors routes to the owning
// shard, Query fans out and splices), and the writer goroutine's batches
// flow through the pool, which parallelizes them across shards. /stats
// additionally reports per-shard counters.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kiff"
	"kiff/internal/shard"
	"kiff/internal/wal"
)

// Config assembles a Server. Exactly one of Maintainer or Pool (mutable
// serving) or Static (read-only serving) must be set.
type Config struct {
	// Maintainer is the single-writer maintained graph. The Server owns
	// the write side: no other goroutine may mutate it while the Server
	// is running.
	Maintainer *kiff.Maintainer
	// Pool is the sharded maintainer pool. As with Maintainer, the
	// Server owns the write side while running.
	Pool *kiff.ShardedMaintainer
	// Static serves a fixed snapshot when Maintainer and Pool are nil;
	// mutation endpoints are disabled.
	Static *kiff.Snapshot
	// QueryBudget bounds similarity evaluations per query when the
	// request does not set its own; ≤ 0 means exhaustive (exact) queries.
	QueryBudget int
	// MaxBatch caps how many queued mutations the writer applies per
	// batch (default 64).
	MaxBatch int
	// QueueDepth bounds the mutation queue; a full queue blocks mutation
	// requests — the backpressure contract (default 256).
	QueueDepth int
	// CheckpointDir, when set on a mutable server, enables POST
	// /checkpoint: the writer saves its state into a fresh subdirectory
	// of CheckpointDir and returns the path. Empty disables the endpoint.
	CheckpointDir string
	// Faults, when set, wires the fault-injection knobs into the writer
	// and registers the /faults endpoint. Test-only: leave nil in
	// production (see Faults).
	Faults *Faults
	// Logf, when set, receives one line per mutation batch and lifecycle
	// event (default: silent).
	Logf func(format string, args ...any)
	// APIKeys, when non-empty, enables API-key authentication: every
	// request except GET /healthz must present one of these keys (see
	// LoadAPIKeys) or is answered 401; read-scoped keys get 403 on the
	// mutation surface.
	APIKeys []APIKey
	// RateLimit, when > 0, enables per-key token-bucket rate limiting at
	// this many requests/second (buckets are keyed by API key, or client
	// IP when authentication is off). Exhausted buckets answer 429 with a
	// Retry-After hint. Per-key overrides in the keys file take precedence.
	RateLimit float64
	// RateBurst is the token-bucket capacity when rate limiting is
	// enabled (default: RateLimit rounded down, at least 1).
	RateBurst int
	// RateLimitNow overrides the rate limiter's clock (tests only).
	RateLimitNow func() time.Time
	// LogRequests enables the structured access log: one JSON line per
	// request through Logf, including denied (401/403/429) requests.
	LogRequests bool
}

// ErrClosed is returned to mutation requests that arrive once the server
// has begun shutting down. Mutations already queued at that point are
// not failed: Close flushes them through the writer so every
// acknowledged — and every accepted-but-pending — mutation is applied
// before the state is checkpointed.
var ErrClosed = errors.New("server: closed")

// source is one request's pinned, immutable read view: loaded once per
// request so routing, fan-out and the reported version are consistent.
// *shard.View implements it directly; single snapshots are adapted by
// snapSource.
type source interface {
	Version() uint64
	NumUsers() int
	K() int
	Neighbors(u uint32) ([]kiff.Neighbor, error)
	Query(profile kiff.Profile, k, budget int) ([]kiff.Neighbor, error)
	Profile(u uint32) (kiff.Profile, bool)
}

// snapSource adapts a kiff.Snapshot to the source interface.
type snapSource struct{ s *kiff.Snapshot }

func (v snapSource) Version() uint64 { return v.s.Version() }
func (v snapSource) NumUsers() int   { return v.s.NumUsers() }
func (v snapSource) K() int          { return v.s.K() }
func (v snapSource) Neighbors(u uint32) ([]kiff.Neighbor, error) {
	return v.s.Neighbors(u), nil
}
func (v snapSource) Query(p kiff.Profile, k, budget int) ([]kiff.Neighbor, error) {
	return v.s.Query(p, k, budget)
}
func (v snapSource) Profile(u uint32) (kiff.Profile, bool) {
	return v.s.Profile(u)
}

// mutable is the write backend the writer goroutine drives: a
// *kiff.Maintainer (adapted) or the sharded pool.
type mutable interface {
	InsertBatch(ps []kiff.Profile) ([]uint32, error)
	AddRating(u uint32, item uint32, rating float64) error
	Rebuild(dirty []uint32) error
	// NumUsers is the live writer-side population, for pre-validating
	// rating batches.
	NumUsers() int
	// Version is the current publication version, reported to mutation
	// clients.
	Version() uint64
	Counters() kiff.Counters
}

// maintainerBackend adapts *kiff.Maintainer to mutable.
type maintainerBackend struct{ *kiff.Maintainer }

func (b maintainerBackend) NumUsers() int   { return b.Dataset().NumUsers() }
func (b maintainerBackend) Version() uint64 { return b.Snapshot().Version() }

// Server routes HTTP requests onto a snapshot source and, when mutable,
// runs the writer goroutine. Create with New, serve via Handler, stop
// with Close (after the HTTP listener has drained).
type Server struct {
	cfg    Config
	m      *kiff.Maintainer
	pool   *kiff.ShardedMaintainer
	w      mutable // nil = read-only
	static *kiff.Snapshot
	mux    *http.ServeMux

	// handler is the mux wrapped in the middleware chain (buildChain);
	// what Handler returns. auth and limiter are nil when their layer is
	// not configured; metrics is always set.
	handler http.Handler
	auth    *authenticator
	limiter *rateLimiter
	metrics *serverMetrics

	ops       chan op
	stop      chan struct{} // closed by Close: writer flushes and exits
	done      chan struct{} // closed when the writer has exited
	closeOnce sync.Once

	// ckptSeq numbers the checkpoint directories this process hands out;
	// writer-only, no synchronization needed.
	ckptSeq uint64
	// flushing is set while the writer runs the shutdown flush; writer
	// goroutine only. Fault injection is bypassed during the flush so a
	// held or stalled writer still terminates.
	flushing bool

	// maintainStats and maintainCounters mirror Maintainer.Stats and
	// Maintainer.Counters after every batch, so /stats never reads the
	// writer's live state (that would race).
	maintainStats    atomic.Pointer[kiff.Run]
	maintainCounters atomic.Pointer[kiff.Counters]

	queries      atomic.Int64
	neighborGets atomic.Int64
	inserts      atomic.Int64
	ratings      atomic.Int64
	rejected     atomic.Int64
}

type opKind uint8

const (
	opInsert opKind = iota
	opRatings
	opCheckpoint
)

// Rating is one rating update of the POST /ratings payload.
type Rating struct {
	User   uint32  `json:"user"`
	Item   uint32  `json:"item"`
	Rating float64 `json:"rating"`
}

// op is one queued mutation; the writer sends exactly one opResult on
// reply (buffered, never blocks the writer).
type op struct {
	kind    opKind
	profile kiff.Profile
	ratings []Rating
	reply   chan opResult
}

type opResult struct {
	id      uint32
	version uint64
	dir     string // opCheckpoint: the directory written
	err     error
}

// New validates the configuration and starts the writer goroutine (when
// mutable). The returned Server is ready to serve.
func New(cfg Config) (*Server, error) {
	set := 0
	for _, ok := range []bool{cfg.Maintainer != nil, cfg.Pool != nil, cfg.Static != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("server: exactly one of Maintainer, Pool or Static must be set")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:    cfg,
		m:      cfg.Maintainer,
		pool:   cfg.Pool,
		static: cfg.Static,
		ops:    make(chan op, cfg.QueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	switch {
	case s.m != nil:
		s.w = maintainerBackend{s.m}
	case s.pool != nil:
		s.w = s.pool
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /neighbors/{user}", s.handleNeighbors)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /users", s.handleInsert)
	s.mux.HandleFunc("POST /ratings", s.handleRatings)
	if cfg.CheckpointDir != "" {
		s.mux.HandleFunc("POST /checkpoint", s.handleCheckpoint)
	}
	if cfg.Faults != nil {
		s.mux.HandleFunc("GET /faults", s.handleFaults)
		s.mux.HandleFunc("POST /faults", s.handleFaults)
	}
	s.metrics = newServerMetrics(s)
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
	if len(cfg.APIKeys) > 0 {
		s.auth = &authenticator{keys: cfg.APIKeys}
	}
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = int(cfg.RateLimit)
			if burst < 1 {
				burst = 1
			}
		}
		s.limiter = newRateLimiter(cfg.RateLimit, burst, cfg.RateLimitNow)
	}
	s.handler = s.buildChain()
	if s.w != nil {
		if cfg.CheckpointDir != "" {
			// Seed the generation counter from what is already on disk, so
			// a restarted server continues the ckpt-N sequence instead of
			// overwriting checkpoints a previous incarnation wrote.
			s.ckptSeq = nextCheckpointGen(cfg.CheckpointDir)
		}
		if s.m != nil {
			run := s.m.Stats()
			s.maintainStats.Store(&run)
		}
		counters := s.w.Counters()
		s.maintainCounters.Store(&counters)
		go s.writer()
	} else {
		close(s.done)
	}
	return s, nil
}

// Handler returns the HTTP handler for the server's routes, wrapped in
// the configured middleware chain (instrumentation is always present;
// request logging, authentication and rate limiting when enabled).
func (s *Server) Handler() http.Handler { return s.handler }

// Close stops the writer goroutine and waits for it to exit. Mutations
// already accepted into the queue are flushed — applied and published,
// their handlers answered — before the writer exits, so a checkpoint
// taken after Close (SaveFinal) contains every acknowledged mutation;
// only requests arriving after Close fail with ErrClosed. Call after
// the HTTP listener has stopped accepting requests
// (http.Server.Shutdown) so no new mutations race the flush. Close is
// idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
	return nil
}

// source pins the current serving view — the only coupling between the
// read path and the writer.
func (s *Server) source() source {
	switch {
	case s.pool != nil:
		return s.pool.View()
	case s.m != nil:
		return snapSource{s.m.Snapshot()}
	default:
		return snapSource{s.static}
	}
}

// readOnly reports whether mutation endpoints are disabled.
func (s *Server) readOnly() bool { return s.w == nil }

// walAttached reports whether the mutable backend appends mutations to
// a write-ahead log before applying them.
func (s *Server) walAttached() bool {
	switch {
	case s.m != nil:
		return s.m.WALAttached()
	case s.pool != nil:
		return s.pool.WALAttached()
	}
	return false
}

// walCounters aggregates the backend's log counters (pool mode sums
// over shards). Zero value when no log is attached.
func (s *Server) walCounters() wal.Counters {
	switch {
	case s.m != nil:
		return s.m.WALCounters()
	case s.pool != nil:
		return s.pool.WALCounters()
	}
	return wal.Counters{}
}

// walError returns the append failure that fail-stopped the backend, or
// nil while the log is healthy (or absent).
func (s *Server) walError() error {
	switch {
	case s.m != nil:
		return s.m.WALError()
	case s.pool != nil:
		return s.pool.WALError()
	}
	return nil
}

// --- Writer side --------------------------------------------------------

// writer is the single mutation applier: it owns every call into the
// Maintainer. Batches amortize snapshot publication; see apply. When
// fault injection is configured, the writer honors the hold and
// batch-delay knobs here, between receiving a batch's first op and
// applying it — never during the shutdown flush.
func (s *Server) writer() {
	defer close(s.done)
	for {
		var first op
		select {
		case first = <-s.ops:
		case <-s.stop:
			s.flush(nil)
			return
		}
		if !s.waitHold() {
			// Shutdown arrived while held: the hold is overridden, flush
			// everything including the op already in hand.
			s.flush(&first)
			return
		}
		batch := make([]op, 1, s.cfg.MaxBatch)
		batch[0] = first
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case o := <-s.ops:
				batch = append(batch, o)
			default:
				break fill
			}
		}
		if f := s.cfg.Faults; f != nil {
			if d := f.BatchDelay(); d > 0 {
				time.Sleep(d)
			}
		}
		s.apply(batch)
	}
}

// waitHold blocks while the hold fault is set. It returns false when
// shutdown is requested mid-hold — the caller must flush and exit.
func (s *Server) waitHold() bool {
	f := s.cfg.Faults
	if f == nil {
		return true
	}
	for f.Hold() {
		select {
		case <-s.stop:
			return false
		case <-time.After(time.Millisecond):
		}
	}
	return true
}

// flush applies every op still queued at shutdown (plus carry, an op the
// writer had already received), in arrival order, so acknowledged and
// accepted mutations survive a graceful stop — the flush half of the
// Close contract. Fault injection is bypassed (s.flushing).
func (s *Server) flush(carry *op) {
	s.flushing = true
	batch := make([]op, 0, s.cfg.MaxBatch)
	if carry != nil {
		batch = append(batch, *carry)
	}
	for {
		select {
		case o := <-s.ops:
			batch = append(batch, o)
		default:
			if len(batch) > 0 {
				s.apply(batch)
			}
			return
		}
	}
}

// pendingReply is a buffered acknowledgment: apply records every op's
// result here and sends them all after the batch (and any injected
// publish stall) completes, so the stall models "applied but not yet
// acknowledged" for the whole batch.
type pendingReply struct {
	ch  chan opResult
	res opResult
}

// apply executes one batch: runs of consecutive inserts go through
// InsertBatch (one snapshot publication per run), rating ops are
// recorded and rebuilt at the next barrier (a checkpoint op, or the end
// of the batch — one more publication), checkpoint ops save the fully
// applied prefix, and every op gets its reply once the whole batch has
// been applied. Order within the batch is preserved.
func (s *Server) apply(batch []op) {
	replies := make([]pendingReply, 0, len(batch))
	reply := func(o op, res opResult) {
		replies = append(replies, pendingReply{o.reply, res})
	}
	var pendingRatings []op
	applied := 0
	// flushRatings rebuilds for any ratings recorded so far and queues
	// their acknowledgments; called before a checkpoint (its snapshot
	// must include them) and at the end of the batch.
	flushRatings := func() {
		if len(pendingRatings) == 0 {
			return
		}
		err := s.w.Rebuild(nil)
		version := s.w.Version()
		for _, o := range pendingRatings {
			reply(o, opResult{version: version, err: err})
		}
		pendingRatings = pendingRatings[:0]
	}
	for i := 0; i < len(batch); {
		switch batch[i].kind {
		case opInsert:
			j := i
			for j < len(batch) && batch[j].kind == opInsert {
				j++
			}
			profiles := make([]kiff.Profile, j-i)
			for k := i; k < j; k++ {
				profiles[k-i] = batch[k].profile
			}
			ids, err := s.w.InsertBatch(profiles)
			version := s.w.Version()
			for k := i; k < j; k++ {
				if k-i < len(ids) {
					reply(batch[k], opResult{id: ids[k-i], version: version})
				} else {
					reply(batch[k], opResult{err: err})
				}
			}
			applied += len(ids)
			i = j
		case opRatings:
			// Pre-validate the whole op against the live dataset before
			// touching it, so one bad rating cannot leave the batch
			// half-applied (AddRating's only failure mode is an
			// out-of-range user).
			var err error
			n := uint32(s.w.NumUsers())
			for _, rt := range batch[i].ratings {
				if rt.User >= n {
					err = fmt.Errorf("user %d out of range (have %d users)", rt.User, n)
					break
				}
			}
			if err == nil {
				for _, rt := range batch[i].ratings {
					if err = s.w.AddRating(rt.User, rt.Item, rt.Rating); err != nil {
						break
					}
					applied++
				}
			}
			if err != nil {
				reply(batch[i], opResult{err: err})
			} else {
				// Acknowledge after the next rebuild, so the reported
				// version includes the update.
				pendingRatings = append(pendingRatings, batch[i])
			}
			i++
		case opCheckpoint:
			flushRatings()
			dir, err := s.checkpoint()
			reply(batch[i], opResult{dir: dir, version: s.w.Version(), err: err})
			i++
		}
	}
	flushRatings()
	if f := s.cfg.Faults; f != nil && !s.flushing {
		// The stall window: state is applied and published but clients
		// have not been acknowledged. A crash here turns acknowledged
		// work into lost work on one side only — exactly what the chaos
		// harness's checkpoint-restart discipline must tolerate.
		if d := f.PublishStall(); d > 0 {
			time.Sleep(d)
		}
	}
	for _, pr := range replies {
		pr.ch <- pr.res
	}
	if s.m != nil {
		run := s.m.Stats()
		s.maintainStats.Store(&run)
	}
	counters := s.w.Counters()
	s.maintainCounters.Store(&counters)
	s.metrics.batches.Inc()
	s.metrics.batchSize.Observe(float64(len(batch)))
	s.cfg.Logf("server: applied batch of %d ops (%d mutations), version %d",
		len(batch), applied, s.w.Version())
}

// enqueue funnels one mutation to the writer, blocking while the queue is
// full (backpressure) until the client gives up or the server closes.
func (s *Server) enqueue(r *http.Request, o op) opResult {
	if s.readOnly() {
		return opResult{err: errReadOnly}
	}
	o.reply = make(chan opResult, 1)
	select {
	case s.ops <- o:
	case <-r.Context().Done():
		s.rejected.Add(1)
		return opResult{err: errQueueWait}
	case <-s.stop:
		s.rejected.Add(1)
		return opResult{err: ErrClosed}
	}
	select {
	case res := <-o.reply:
		return res
	case <-s.done:
		// The writer exited; it may still have replied in the instant
		// before — prefer the reply.
		select {
		case res := <-o.reply:
			return res
		default:
			return opResult{err: ErrClosed}
		}
	}
}

var (
	errReadOnly  = errors.New("server: read-only (started from a static snapshot)")
	errQueueWait = errors.New("server: request canceled while waiting for the write queue")
)

// --- Read handlers ------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	src := s.source()
	// The readiness facet: "ok" while the writer keeps up, "degraded"
	// while the mutation queue is saturated (new mutations block — the
	// backpressure episode a load balancer should route around). Reads
	// stay healthy either way, so liveness ("status") is unaffected.
	ready := "ok"
	if !s.readOnly() && cap(s.ops) > 0 && len(s.ops) >= cap(s.ops) {
		ready = "degraded"
	}
	resp := map[string]any{
		"status":         "ok",
		"ready":          ready,
		"version":        src.Version(),
		"users":          src.NumUsers(),
		"queue_depth":    len(s.ops),
		"queue_capacity": cap(s.ops),
	}
	if err := s.walError(); err != nil {
		// An append failure fail-stopped the write path: mutations are
		// refused until a restart replays the log. Worse than "degraded"
		// (which clears on its own) but reads still work, so liveness
		// stays "ok".
		resp["ready"] = "failed"
		resp["wal_error"] = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	src := s.source()
	resp := map[string]any{
		"version":           src.Version(),
		"users":             src.NumUsers(),
		"k":                 src.K(),
		"read_only":         s.readOnly(),
		"queue_depth":       len(s.ops),
		"queue_capacity":    cap(s.ops),
		"queries":           s.queries.Load(),
		"neighbor_requests": s.neighborGets.Load(),
		"inserts":           s.inserts.Load(),
		"ratings":           s.ratings.Load(),
		"rejected":          s.rejected.Load(),
	}
	if s.pool != nil {
		resp["shards"] = shardStatsJSON(s.pool.ShardStats())
	}
	maintain := map[string]any{}
	if run := s.maintainStats.Load(); run != nil {
		maintain["sim_evals"] = run.SimEvals
		maintain["iterations"] = run.Iterations
		maintain["wall_ns"] = run.WallTime.Nanoseconds()
	}
	// Cumulative maintenance counters: what serving-time freshness has
	// cost so far — inserted users, rebuild passes, users refreshed by
	// them. In pool mode these aggregate the per-shard counters (and
	// sim_evals comes from the same aggregate; there is no pool-wide wall
	// clock, the shards mutate in parallel).
	if c := s.maintainCounters.Load(); c != nil {
		if s.pool != nil {
			maintain["sim_evals"] = c.SimEvals
		}
		maintain["inserts"] = c.Inserts
		maintain["rebuilds"] = c.Rebuilds
		maintain["rebuilt_users"] = c.RebuiltUsers
		// Publication cost: how many snapshots the writer published and
		// the copy-on-write page accounting — pages rebuilt because they
		// held dirty rows versus pages shared with the previous snapshot.
		// A healthy incremental workload is dominated by shared pages. In
		// pool mode the pages and publications sum over shards and
		// last_publish_ns is the slowest shard's most recent publish.
		resp["publish"] = map[string]any{
			"publications":    c.Publishes,
			"pages_copied":    c.PagesCopied,
			"pages_shared":    c.PagesShared,
			"publish_ns":      c.PublishNs,
			"last_publish_ns": c.LastPublishNs,
		}
	}
	if len(maintain) > 0 {
		resp["maintain"] = maintain
	}
	if s.walAttached() {
		// Durability cost and progress: appends (and their bytes) since
		// boot, fsyncs issued, records replayed at startup, torn-tail
		// bytes discarded by recovery, and the current LSN horizon. In
		// pool mode these sum over the per-shard logs.
		c := s.walCounters()
		walBlock := map[string]any{
			"appended":        c.Appended,
			"appended_bytes":  c.AppendedBytes,
			"fsyncs":          c.Fsyncs,
			"append_errors":   c.AppendErrors,
			"replayed":        c.Replayed,
			"truncated_bytes": c.TruncatedBytes,
			"last_lsn":        c.LastLSN,
		}
		if err := s.walError(); err != nil {
			walBlock["error"] = err.Error()
		}
		resp["wal"] = walBlock
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardStat is one shard's row of the /stats "shards" list.
type shardStat struct {
	Shard        int    `json:"shard"`
	Users        int    `json:"users"`
	Version      uint64 `json:"version"`
	SimEvals     int64  `json:"sim_evals"`
	Inserts      int64  `json:"inserts"`
	Rebuilds     int64  `json:"rebuilds"`
	RebuiltUsers int64  `json:"rebuilt_users"`
	Publishes    int64  `json:"publications"`
	PagesCopied  int64  `json:"pages_copied"`
	PagesShared  int64  `json:"pages_shared"`
}

func shardStatsJSON(stats []shard.Stats) []shardStat {
	out := make([]shardStat, len(stats))
	for i, st := range stats {
		out[i] = shardStat{
			Shard:        st.Shard,
			Users:        st.Users,
			Version:      st.Version,
			SimEvals:     st.Counters.SimEvals,
			Inserts:      st.Counters.Inserts,
			Rebuilds:     st.Counters.Rebuilds,
			RebuiltUsers: st.Counters.RebuiltUsers,
			Publishes:    st.Counters.Publishes,
			PagesCopied:  st.Counters.PagesCopied,
			PagesShared:  st.Counters.PagesShared,
		}
	}
	return out
}

type neighborJSON struct {
	ID  uint32  `json:"id"`
	Sim float64 `json:"sim"`
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	s.neighborGets.Add(1)
	src := s.source()
	u, err := strconv.ParseUint(r.PathValue("user"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad user id: %w", err))
		return
	}
	if u >= uint64(src.NumUsers()) {
		httpError(w, http.StatusNotFound, fmt.Errorf("user %d not in snapshot (have %d users)", u, src.NumUsers()))
		return
	}
	nbs, err := src.Neighbors(uint32(u))
	if err != nil {
		// Pool mode: an accepted-but-unpublished user (mid-insert) is a
		// retryable miss, not a client error.
		httpError(w, http.StatusNotFound, err)
		return
	}
	out := make([]neighborJSON, len(nbs))
	for i, nb := range nbs {
		out[i] = neighborJSON{ID: nb.ID, Sim: nb.Sim}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"user":      u,
		"version":   src.Version(),
		"neighbors": out,
	})
}

// queryRequest is the POST /query payload. Profile maps item IDs (JSON
// object keys are strings of the numeric ID) to ratings; Binary discards
// the ratings. Budget ≤ 0 (or omitted with a ≤ 0 server default) means
// exhaustive evaluation over every overlapping candidate — the exact
// result. Want selects "users" (default) or "items" (aggregate the top
// users' profiles into item recommendations).
type queryRequest struct {
	Profile map[uint32]float64 `json:"profile"`
	K       int                `json:"k"`
	Budget  *int               `json:"budget"`
	Binary  bool               `json:"binary"`
	Want    string             `json:"want"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	var req queryRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, requestStatus(err), err)
		return
	}
	src := s.source()
	k := req.K
	if k <= 0 {
		k = src.K()
	}
	budget := s.cfg.QueryBudget
	if req.Budget != nil {
		budget = *req.Budget
	}
	if budget <= 0 {
		budget = -1
	}
	profile := kiff.ProfileFromMap(req.Profile, req.Binary)
	switch req.Want {
	case "", "users":
		res, err := src.Query(profile, k, budget)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		out := make([]neighborJSON, len(res))
		for i, nb := range res {
			out[i] = neighborJSON{ID: nb.ID, Sim: nb.Sim}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"version": src.Version(),
			"k":       k,
			"results": out,
		})
	case "items":
		// Two-stage recommendation: KNN over users, then score the
		// neighbors' items (similarity-weighted ratings) excluding what
		// the query profile already holds.
		nbs, err := src.Query(profile, src.K(), budget)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"version": src.Version(),
			"k":       k,
			"results": recommendItems(src, profile, nbs, k),
		})
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("want = %q, expected \"users\" or \"items\"", req.Want))
	}
}

type scoredItem struct {
	ID    uint32  `json:"id"`
	Score float64 `json:"score"`
}

// recommendItems aggregates the neighbors' profiles into item scores:
// score(i) = Σ over neighbors holding i of sim(neighbor) · rating — the
// classic user-based collaborative filtering step on top of the KNN
// result, restricted to items the query profile does not already hold.
func recommendItems(src source, profile kiff.Profile, nbs []kiff.Neighbor, k int) []scoredItem {
	have := make(map[uint32]bool, profile.Len())
	for _, it := range profile.IDs {
		have[it] = true
	}
	scores := make(map[uint32]float64)
	for _, nb := range nbs {
		if nb.Sim <= 0 {
			continue
		}
		p, ok := src.Profile(nb.ID)
		if !ok {
			continue
		}
		for i, it := range p.IDs {
			if !have[it] {
				scores[it] += nb.Sim * p.Weight(i)
			}
		}
	}
	out := make([]scoredItem, 0, len(scores))
	for it, sc := range scores {
		out = append(out, scoredItem{ID: it, Score: sc})
	}
	slices.SortFunc(out, func(a, b scoredItem) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// --- Mutation handlers --------------------------------------------------

type insertRequest struct {
	Profile map[uint32]float64 `json:"profile"`
	Binary  bool               `json:"binary"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.inserts.Add(1)
	var req insertRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, requestStatus(err), err)
		return
	}
	res := s.enqueue(r, op{kind: opInsert, profile: kiff.ProfileFromMap(req.Profile, req.Binary)})
	if res.err != nil {
		httpError(w, mutationStatus(res.err), res.err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":      res.id,
		"version": res.version,
	})
}

// ratingsRequest accepts either a single rating object or a batch:
// {"user":1,"item":2,"rating":3} or {"ratings":[...]}. The single form
// uses pointers so a missing field is a 400, not a silent zero-value
// mutation of user 0 / item 0.
type ratingsRequest struct {
	User    *uint32  `json:"user"`
	Item    *uint32  `json:"item"`
	Rating  *float64 `json:"rating"`
	Ratings []Rating `json:"ratings"`
}

func (s *Server) handleRatings(w http.ResponseWriter, r *http.Request) {
	s.ratings.Add(1)
	var req ratingsRequest
	if err := decodeJSON(r, &req); err != nil {
		httpError(w, requestStatus(err), err)
		return
	}
	ratings := req.Ratings
	switch {
	case ratings == nil:
		if req.User == nil || req.Item == nil || req.Rating == nil {
			httpError(w, http.StatusBadRequest, errors.New("a rating requires user, item and rating fields"))
			return
		}
		ratings = []Rating{{User: *req.User, Item: *req.Item, Rating: *req.Rating}}
	case len(ratings) == 0:
		httpError(w, http.StatusBadRequest, errors.New("empty ratings batch"))
		return
	}
	// Non-finite ratings cannot arrive here: JSON has no NaN/Infinity
	// literals and overflowing numbers fail in decodeJSON.
	res := s.enqueue(r, op{kind: opRatings, ratings: ratings})
	if res.err != nil {
		httpError(w, mutationStatus(res.err), res.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": len(ratings),
		"version": res.version,
	})
}

// requestStatus maps body-decoding failures onto HTTP statuses: an
// oversized body (MaxBytesReader tripping) is 413, everything else
// malformed is 400.
func requestStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// mutationStatus maps writer-side failures onto HTTP statuses.
func mutationStatus(err error) int {
	switch {
	case errors.Is(err, errReadOnly):
		return http.StatusForbidden
	case errors.Is(err, ErrClosed), errors.Is(err, errQueueWait):
		return http.StatusServiceUnavailable
	case errors.Is(err, kiff.ErrWALFailStop):
		// The write path fail-stopped after a log append failure; only a
		// restart-and-replay clears it. Not the client's fault.
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// --- Plumbing -----------------------------------------------------------

// maxBodyBytes bounds request bodies; profiles of millions of entries do
// not arrive over this API.
const maxBodyBytes = 8 << 20

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
