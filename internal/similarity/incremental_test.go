package similarity

import (
	"math"
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// TestPrepareIncrementalMatchesPrepare pins the incremental preparation
// to the batch one: same values on a static dataset, and — after
// append/mutate + refresh — the same values a fresh Prepare computes.
func TestPrepareIncrementalMatchesPrepare(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.01, 51)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		metric, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inc, ok := metric.(Incremental)
		if !ok {
			continue // Adamic–Adar: per-item state, no incremental form
		}
		fn, refresh := inc.PrepareIncremental(d)
		batch := metric.Prepare(d)
		n := uint32(d.NumUsers())
		for u := uint32(0); u < n; u += 5 {
			for v := u + 1; v < n; v += 7 {
				if a, b := fn(u, v), batch(u, v); math.Abs(a-b) > 1e-12 {
					t.Fatalf("%s: static mismatch at (%d,%d): %v vs %v", name, u, v, a, b)
				}
			}
		}

		// Mutate: change a profile and append a user, refresh both, then
		// the incremental function must match a fresh batch preparation.
		if err := d.AddRating(3, 0, 5); err != nil {
			t.Fatal(err)
		}
		refresh(3)
		id, err := d.AddUser(sparse.Vector{IDs: []uint32{0, 1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		refresh(id)
		fresh := metric.Prepare(d)
		for v := uint32(0); v < uint32(d.NumUsers()); v += 3 {
			if v == id {
				continue
			}
			if a, b := fn(id, v), fresh(id, v); math.Abs(a-b) > 1e-12 {
				t.Fatalf("%s: post-append mismatch at (%d,%d): %v vs %v", name, id, v, a, b)
			}
			if a, b := fn(3, v), fresh(3, v); v != 3 && math.Abs(a-b) > 1e-12 {
				t.Fatalf("%s: post-mutation mismatch at (3,%d): %v vs %v", name, v, a, b)
			}
		}
	}
}

// TestIncrementalAppendBatchGrowsCache pushes a batch of appended users
// through every incremental metric — enough to force the per-user state
// caches (cosine's norm cache) to reallocate several times — and checks
// the incremental function still matches a fresh preparation for every
// pair touching the appended range. This covers the single-step cache
// growth in refresh (including an ID jump past the end, which grows the
// cache by more than one slot at once).
func TestIncrementalAppendBatchGrowsCache(t *testing.T) {
	for _, name := range Names() {
		metric, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inc, ok := metric.(Incremental)
		if !ok {
			continue
		}
		d, err := dataset.Wikipedia.Generate(0.005, 77)
		if err != nil {
			t.Fatal(err)
		}
		fn, refresh := inc.PrepareIncremental(d)
		base := uint32(d.NumUsers())
		const appended = 64 // well past the initial cache capacity
		for i := 0; i < appended; i++ {
			p := sparse.Vector{IDs: []uint32{uint32(i % 7), uint32(10 + i%11), uint32(30 + i)}}
			if i%2 == 1 {
				p.Weights = []float64{1, float64(2 + i%4), 3}
			}
			id, err := d.AddUser(p)
			if err != nil {
				t.Fatal(err)
			}
			refresh(id)
		}
		// An explicit jump: refresh IDs out of order after a plain AddUser
		// window, exercising growth by more than one slot.
		if id, err := d.AddUser(sparse.Vector{IDs: []uint32{0, 1}}); err != nil {
			t.Fatal(err)
		} else {
			refresh(id)
		}

		fresh := metric.Prepare(d)
		n := uint32(d.NumUsers())
		for u := base; u < n; u++ {
			for v := uint32(0); v < n; v += 13 {
				if u == v {
					continue
				}
				if a, b := fn(u, v), fresh(u, v); a != b {
					t.Fatalf("%s: appended-range mismatch at (%d,%d): %v vs %v", name, u, v, a, b)
				}
			}
		}
	}
}
