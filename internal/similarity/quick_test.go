package similarity

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

func randQuickDataset(r *rand.Rand) *dataset.Dataset {
	users := 2 + r.Intn(20)
	items := 1 + r.Intn(15)
	profiles := make([]map[uint32]float64, users)
	for u := range profiles {
		m := map[uint32]float64{}
		n := r.Intn(items + 1)
		for i := 0; i < n; i++ {
			m[uint32(r.Intn(items))] = float64(1 + r.Intn(5))
		}
		profiles[u] = m
	}
	return dataset.FromProfiles("quick", profiles, r.Intn(2) == 0)
}

// TestQuickPaperProperties checks Eq. (5) and (6) plus symmetry for every
// registered metric over randomized datasets — the precondition for
// KIFF's pruning to be lossless.
func TestQuickPaperProperties(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	cfg := &quick.Config{
		MaxCount: 80,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randQuickDataset(r))
			}
		},
	}
	f := func(d *dataset.Dataset) bool {
		for _, name := range Names() {
			m, err := ByName(name)
			if err != nil {
				return false
			}
			sim := m.Prepare(d)
			n := d.NumUsers()
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					s := sim(uint32(u), uint32(v))
					if math.IsNaN(s) || s < 0 {
						return false
					}
					if s != sim(uint32(v), uint32(u)) {
						return false
					}
					if sparse.CommonCount(d.Users[u], d.Users[v]) == 0 && s != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCosineBounded: cosine stays within [0, 1] on non-negative
// ratings (the regime the paper's Eq. 5/6 argument assumes).
func TestQuickCosineBounded(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	cfg := &quick.Config{
		MaxCount: 100,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randQuickDataset(r))
			}
		},
	}
	f := func(d *dataset.Dataset) bool {
		sim := Cosine{}.Prepare(d)
		n := d.NumUsers()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				s := sim(uint32(u), uint32(v))
				if s < 0 || s > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickOverlapDominates: the common-item count upper-bounds the
// weighted overlap structure: any metric is zero exactly when overlap is
// zero — the monotone-at-zero relationship the counting phase exploits.
func TestQuickOverlapZeroIffMetricsZero(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	cfg := &quick.Config{
		MaxCount: 80,
		Rand:     r,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			for i := range vs {
				vs[i] = reflect.ValueOf(randQuickDataset(r))
			}
		},
	}
	f := func(d *dataset.Dataset) bool {
		jac := Jaccard{}.Prepare(d)
		dice := Dice{}.Prepare(d)
		n := d.NumUsers()
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				overlap := sparse.CommonCount(d.Users[u], d.Users[v])
				if (overlap > 0) != (jac(uint32(u), uint32(v)) > 0) {
					return false
				}
				if (overlap > 0) != (dice(uint32(u), uint32(v)) > 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
