// Batched one-vs-many scoring kernels. The refinement loops of every
// builder score one pivot u against a chunk of candidates per step (γ=2k
// candidates for KIFF, the star/local joins of HyRec and NN-Descent), so
// the pivot's profile is re-merged γ times by the pairwise Func. The
// BatchMetric kernels exploit that locality: scatter the pivot's profile
// once into an epoch-stamped dense accumulator (sparse.Scratch), then
// score each candidate with a single gather over the candidate's own
// profile — O(|u| + Σ|v|) per chunk instead of O(Σ(|u|+|v|)), with one
// predictable branch per element instead of the merge's three-way one.
//
// The shared IDs are visited in the same ascending order as the pairwise
// merge, so every kernel is bit-for-bit equal to its metric's Func — the
// property tests in batch_test.go pin exactly that, and it is what keeps
// recall and SimEvals byte-identical whichever path a builder takes.
//
// Pivots whose ID span would need an oversized accumulator (see
// maxScratchDomain) fall back to the pairwise function, which itself
// switches to a galloping intersection on heavily skewed pairs.
package similarity

import (
	"math"
	"sync/atomic"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// maxScratchDomain caps the dense accumulator a batch kernel will
// allocate: pivots referencing IDs beyond the cap are scored pairwise
// instead. 1<<22 IDs is ≈50 MB of per-worker scratch at the 12-byte
// worst case — past that, the scatter's cache behavior degrades toward
// the merge's anyway and the allocation dominates the work it saves.
var maxScratchDomain = 1 << 22

// Batcher scores one pivot against many candidates. A Batcher owns
// mutable scratch memory: it must stay confined to a single goroutine
// (batch phases allocate one per worker via the BatchFactory).
type Batcher interface {
	// ScoreInto fills dst[i] with the similarity of u and cands[i].
	// len(dst) must equal len(cands).
	ScoreInto(dst []float64, u uint32, cands []uint32)
}

// BatchFactory mints per-worker Batchers over one prepared binding.
// Bindings share the read-only prepared state (norms, item statistics);
// each minted kernel owns its private scratch.
type BatchFactory func() Batcher

// BatchMetric is an optional Metric extension for one-vs-many scoring.
// All built-in metrics implement it. PrepareBatch binds to the dataset
// like Prepare (and precomputes the same per-user/per-item state); the
// kernels the returned factory mints are exactly equal to the pairwise
// Func on every pair.
type BatchMetric interface {
	Metric
	PrepareBatch(d *dataset.Dataset) BatchFactory
}

// IncrementalBatch is the batch counterpart of Incremental: the returned
// pairwise function, batch factory and refresh share one incrementally
// maintained state, so refresh(u) keeps both scoring paths valid across
// dataset mutations. Like PrepareIncremental's result, the binding is
// single-writer: fn, minted kernels and refresh must not race.
type IncrementalBatch interface {
	Incremental
	PrepareIncrementalBatch(d *dataset.Dataset) (fn Func, batch BatchFactory, refresh func(u uint32))
}

// CountedBatch wraps a factory so every scored pair increments evals —
// one atomic add per chunk, against Counted's one per pair, while the
// total stays exactly the per-pair count (§IV-C's SimEvals metric).
func CountedBatch(f BatchFactory, evals *atomic.Int64) BatchFactory {
	return func() Batcher {
		return &countedBatcher{inner: f(), evals: evals}
	}
}

type countedBatcher struct {
	inner Batcher
	evals *atomic.Int64
}

func (c *countedBatcher) ScoreInto(dst []float64, u uint32, cands []uint32) {
	c.evals.Add(int64(len(cands)))
	c.inner.ScoreInto(dst, u, cands)
}

// PairwiseBatcher adapts a pairwise Func to the Batcher interface — the
// fallback for metrics without a batch form. The Func's own evaluation
// counting (Counted) carries over.
func PairwiseBatcher(fn Func) Batcher { return pairwiseBatcher{fn} }

type pairwiseBatcher struct{ fn Func }

func (p pairwiseBatcher) ScoreInto(dst []float64, u uint32, cands []uint32) {
	for i, v := range cands {
		dst[i] = p.fn(u, v)
	}
}

// fitsScratch reports whether the pivot's ID span fits the accumulator
// cap; IDs are sorted, so the last one is the span.
func fitsScratch(p sparse.Vector) bool {
	return len(p.IDs) == 0 || int(p.IDs[len(p.IDs)-1]) < maxScratchDomain
}

// --- Cosine -------------------------------------------------------------

// cosineState is the shared binding of the cosine kernels: the profile
// source and the norm cache, refreshed per mutated user on the
// incremental path.
type cosineState struct {
	d     *dataset.Dataset
	norms []float64
}

func newCosineState(d *dataset.Dataset) *cosineState {
	st := &cosineState{d: d, norms: make([]float64, len(d.Users))}
	for i, u := range d.Users {
		st.norms[i] = sparse.Norm(u)
	}
	return st
}

// refresh re-derives u's cached norm, growing the cache in one step for
// appended users.
func (st *cosineState) refresh(u uint32) {
	if n := int(u) + 1; n > len(st.norms) {
		st.norms = append(st.norms, make([]float64, n-len(st.norms))...)
	}
	st.norms[u] = sparse.Norm(st.d.Users[u])
}

func (st *cosineState) pair(u, v uint32) float64 {
	nu, nv := st.norms[u], st.norms[v]
	if nu == 0 || nv == 0 {
		return 0
	}
	return sparse.Dot(st.d.Users[u], st.d.Users[v]) / (nu * nv)
}

type cosineBatcher struct {
	st      *cosineState
	scratch sparse.Scratch
}

func (b *cosineBatcher) ScoreInto(dst []float64, u uint32, cands []uint32) {
	st := b.st
	users := st.d.Users
	pu := users[u]
	nu := st.norms[u]
	if nu == 0 {
		for i := range cands {
			dst[i] = 0
		}
		return
	}
	if !fitsScratch(pu) {
		for i, v := range cands {
			dst[i] = st.pair(u, v)
		}
		return
	}
	// Binary pivots scatter weight 1 so the weighted gather covers the
	// mixed binary/weighted case; a fully binary pair reduces to the
	// count, which the gather's dot then equals exactly (sums of 1s).
	binaryPivot := pu.IsBinary()
	if binaryPivot {
		b.scratch.StampOnes(pu)
	} else {
		b.scratch.Stamp(pu)
	}
	for i, v := range cands {
		nv := st.norms[v]
		if nv == 0 {
			dst[i] = 0
			continue
		}
		pv := users[v]
		var dot float64
		if binaryPivot && pv.IsBinary() {
			// Match the pairwise fast path bit-for-bit: Dot on two
			// binary vectors is float64(CommonCount).
			dot = float64(b.scratch.CountCommon(pv))
		} else {
			dot, _ = b.scratch.DotCount(pv)
		}
		dst[i] = dot / (nu * nv)
	}
}

// PrepareBatch implements BatchMetric.
func (Cosine) PrepareBatch(d *dataset.Dataset) BatchFactory {
	st := newCosineState(d)
	return func() Batcher { return &cosineBatcher{st: st} }
}

// PrepareIncrementalBatch implements IncrementalBatch: the pairwise
// function, the kernels and refresh share one norm cache and re-read
// profiles through d, so appends and profile changes are observed after
// refresh(u).
func (Cosine) PrepareIncrementalBatch(d *dataset.Dataset) (Func, BatchFactory, func(uint32)) {
	st := newCosineState(d)
	factory := func() Batcher { return &cosineBatcher{st: st} }
	return st.pair, factory, st.refresh
}

// --- Count-only metrics (Jaccard, Overlap, Dice) ------------------------

// countBatcher gathers |u ∩ v| per candidate and hands it to finish —
// the shared kernel of the set-based metrics.
type countBatcher struct {
	d       *dataset.Dataset
	scratch sparse.Scratch
	// finish maps the shared count and the two profile lengths to the
	// metric value; common is 0-checked by the caller.
	finish func(common, lenU, lenV int) float64
	// pair is the metric's pairwise form, used when the pivot overflows
	// the scratch domain.
	pair Func
}

func (b *countBatcher) ScoreInto(dst []float64, u uint32, cands []uint32) {
	users := b.d.Users
	pu := users[u]
	if !fitsScratch(pu) {
		for i, v := range cands {
			dst[i] = b.pair(u, v)
		}
		return
	}
	b.scratch.Stamp(sparse.Vector{IDs: pu.IDs}) // count-only: weights irrelevant
	for i, v := range cands {
		common := b.scratch.CountCommon(users[v])
		if common == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = b.finish(common, pu.Len(), users[v].Len())
	}
}

// PrepareBatch implements BatchMetric.
func (Jaccard) PrepareBatch(d *dataset.Dataset) BatchFactory {
	pair := Jaccard{}.Prepare(d)
	return func() Batcher {
		return &countBatcher{d: d, pair: pair, finish: func(common, lenU, lenV int) float64 {
			return float64(common) / float64(lenU+lenV-common)
		}}
	}
}

// PrepareIncrementalBatch implements IncrementalBatch; Jaccard keeps no
// per-user state, so refresh is free.
func (Jaccard) PrepareIncrementalBatch(d *dataset.Dataset) (Func, BatchFactory, func(uint32)) {
	fn, refresh := Jaccard{}.PrepareIncremental(d)
	return fn, Jaccard{}.PrepareBatch(d), refresh
}

// PrepareBatch implements BatchMetric.
func (Overlap) PrepareBatch(d *dataset.Dataset) BatchFactory {
	pair := Overlap{}.Prepare(d)
	return func() Batcher {
		return &countBatcher{d: d, pair: pair, finish: func(common, _, _ int) float64 {
			return float64(common)
		}}
	}
}

// PrepareIncrementalBatch implements IncrementalBatch.
func (Overlap) PrepareIncrementalBatch(d *dataset.Dataset) (Func, BatchFactory, func(uint32)) {
	fn, refresh := Overlap{}.PrepareIncremental(d)
	return fn, Overlap{}.PrepareBatch(d), refresh
}

// PrepareBatch implements BatchMetric.
func (Dice) PrepareBatch(d *dataset.Dataset) BatchFactory {
	pair := Dice{}.Prepare(d)
	return func() Batcher {
		return &countBatcher{d: d, pair: pair, finish: func(common, lenU, lenV int) float64 {
			return 2 * float64(common) / float64(lenU+lenV)
		}}
	}
}

// PrepareIncrementalBatch implements IncrementalBatch.
func (Dice) PrepareIncrementalBatch(d *dataset.Dataset) (Func, BatchFactory, func(uint32)) {
	fn, refresh := Dice{}.PrepareIncremental(d)
	return fn, Dice{}.PrepareBatch(d), refresh
}

// --- Adamic–Adar --------------------------------------------------------

type adamicBatcher struct {
	d       *dataset.Dataset
	invLog  []float64
	scratch sparse.Scratch
	pair    Func
}

func (b *adamicBatcher) ScoreInto(dst []float64, u uint32, cands []uint32) {
	users := b.d.Users
	pu := users[u]
	if !fitsScratch(pu) {
		for i, v := range cands {
			dst[i] = b.pair(u, v)
		}
		return
	}
	// Scatter the pivot's items stamped with their 1/ln|IPi| term; the
	// gather then sums exactly the pairwise merge's Σ invLog[shared].
	if len(pu.IDs) == 0 {
		b.scratch.Begin(0)
	} else {
		b.scratch.Begin(int(pu.IDs[len(pu.IDs)-1]) + 1)
		for _, id := range pu.IDs {
			b.scratch.Set(id, b.invLog[id])
		}
	}
	for i, v := range cands {
		dst[i], _ = b.scratch.SumCommon(users[v])
	}
}

// PrepareBatch implements BatchMetric; like Prepare, it precomputes the
// per-item 1/ln|IPi| table (single-rater items stay 0, keeping Eq. (5)
// intact).
func (AdamicAdar) PrepareBatch(d *dataset.Dataset) BatchFactory {
	d.EnsureItemProfiles()
	invLog := make([]float64, len(d.Items))
	for i, ip := range d.Items {
		if len(ip) >= 2 {
			invLog[i] = 1 / math.Log(float64(len(ip)))
		}
	}
	pair := AdamicAdar{}.Prepare(d)
	return func() Batcher { return &adamicBatcher{d: d, invLog: invLog, pair: pair} }
}
