package similarity

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// batchMetrics asserts up front that every registered metric has a batch
// form — a new metric without one should fail loudly here.
func batchMetrics(t *testing.T) []BatchMetric {
	t.Helper()
	out := make([]BatchMetric, 0, len(Names()))
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		bm, ok := m.(BatchMetric)
		if !ok {
			t.Fatalf("metric %q does not implement BatchMetric", name)
		}
		out = append(out, bm)
	}
	return out
}

// randBatchDataset draws a dataset with the given ID-space shape; wide
// item spaces versus few users exercise the |I| ≫ |U| scatter domain.
func randBatchDataset(r *rand.Rand, users, items int, binary bool) *dataset.Dataset {
	profiles := make([]map[uint32]float64, users)
	for u := range profiles {
		m := map[uint32]float64{}
		for n := r.Intn(12); n > 0; n-- {
			m[uint32(r.Intn(items))] = float64(1 + r.Intn(5))
		}
		profiles[u] = m // may stay empty: empty profiles are a required shape
	}
	return dataset.FromProfiles("batch-quick", profiles, binary)
}

// TestBatchKernelsEqualPairwise is the central pin of the batch path:
// for every metric, ScoreInto over every (pivot, all-others) chunk is
// bit-for-bit equal to the pairwise Func — no tolerance. The kernels
// visit shared IDs in the same ascending order as the pairwise merge, so
// even the accumulation-order-sensitive metrics (cosine dot,
// Adamic–Adar's Σ 1/ln|IPi|) match exactly; a tolerance would hide an
// ordering regression.
func TestBatchKernelsEqualPairwise(t *testing.T) {
	metrics := batchMetrics(t)
	r := rand.New(rand.NewSource(301))
	shapes := []struct {
		users, items int
	}{
		{12, 8},      // dense overlap
		{8, 4096},    // |I| ≫ |U|: wide, sparse scatter domain
		{40, 60},     // balanced
		{3, 100_000}, // extreme |I| ≫ |U|
	}
	for trial := 0; trial < 25; trial++ {
		shape := shapes[trial%len(shapes)]
		d := randBatchDataset(r, shape.users, shape.items, trial%2 == 0)
		for _, bm := range metrics {
			pair := bm.Prepare(d)
			kernel := bm.PrepareBatch(d)()
			n := d.NumUsers()
			cands := make([]uint32, 0, n)
			scores := make([]float64, n)
			for u := 0; u < n; u++ {
				cands = cands[:0]
				for v := 0; v < n; v++ {
					if v != u {
						cands = append(cands, uint32(v))
					}
				}
				kernel.ScoreInto(scores[:len(cands)], uint32(u), cands)
				for i, v := range cands {
					if want := pair(uint32(u), v); scores[i] != want {
						t.Fatalf("%s: trial %d (%d users, %d items): ScoreInto(%d, %d) = %v, pairwise = %v",
							bm.Name(), trial, shape.users, shape.items, u, v, scores[i], want)
					}
				}
			}
		}
	}
}

// TestBatchKernelFallbackPath shrinks the scratch-domain cap so pivots
// overflow it and the kernels take the pairwise fallback, which must
// score identically.
func TestBatchKernelFallbackPath(t *testing.T) {
	old := maxScratchDomain
	maxScratchDomain = 16
	defer func() { maxScratchDomain = old }()

	r := rand.New(rand.NewSource(307))
	d := randBatchDataset(r, 20, 500, false) // most pivots reference IDs ≥ 16
	for _, bm := range batchMetrics(t) {
		pair := bm.Prepare(d)
		kernel := bm.PrepareBatch(d)()
		n := d.NumUsers()
		cands := make([]uint32, 0, n)
		for v := 1; v < n; v++ {
			cands = append(cands, uint32(v))
		}
		scores := make([]float64, len(cands))
		kernel.ScoreInto(scores, 0, cands)
		for i, v := range cands {
			if want := pair(0, v); scores[i] != want {
				t.Fatalf("%s: fallback ScoreInto(0, %d) = %v, pairwise = %v", bm.Name(), v, scores[i], want)
			}
		}
	}
}

// TestBatchKernelReuseAcrossPivots re-uses one kernel across many pivots
// (the per-worker lifecycle) and checks no state leaks between epochs.
func TestBatchKernelReuseAcrossPivots(t *testing.T) {
	r := rand.New(rand.NewSource(311))
	d := randBatchDataset(r, 30, 40, false)
	for _, bm := range batchMetrics(t) {
		pair := bm.Prepare(d)
		kernel := bm.PrepareBatch(d)()
		scores := make([]float64, 1)
		// Deliberately hop between pivots with very different profiles.
		for trial := 0; trial < 200; trial++ {
			u := uint32(r.Intn(d.NumUsers()))
			v := uint32(r.Intn(d.NumUsers()))
			if u == v {
				continue
			}
			kernel.ScoreInto(scores, u, []uint32{v})
			if want := pair(u, v); scores[0] != want {
				t.Fatalf("%s: reuse trial %d: ScoreInto(%d, %d) = %v, pairwise = %v",
					bm.Name(), trial, u, v, scores[0], want)
			}
		}
	}
}

// TestIncrementalBatchSharedRefresh: for metrics with the incremental
// batch form, the pairwise function and kernels share the refreshed
// state — after mutations plus refresh, both match a fresh Prepare.
func TestIncrementalBatchSharedRefresh(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	for _, name := range Names() {
		m, _ := ByName(name)
		incb, ok := m.(IncrementalBatch)
		if !ok {
			continue // Adamic–Adar: global per-item state, no incremental form
		}
		d := randBatchDataset(r, 15, 30, false)
		fn, factory, refresh := incb.PrepareIncrementalBatch(d)
		kernel := factory()

		if err := d.AddRating(2, 7, 4); err != nil {
			t.Fatal(err)
		}
		refresh(2)
		id, err := d.AddUser(sparse.Vector{IDs: []uint32{1, 7, 29}})
		if err != nil {
			t.Fatal(err)
		}
		refresh(id)

		fresh := m.Prepare(d)
		scores := make([]float64, 1)
		for v := uint32(0); v < uint32(d.NumUsers()); v++ {
			for _, u := range []uint32{2, id} {
				if u == v {
					continue
				}
				want := fresh(u, v)
				if got := fn(u, v); got != want {
					t.Fatalf("%s: incremental fn(%d,%d) = %v, fresh = %v", name, u, v, got, want)
				}
				kernel.ScoreInto(scores, u, []uint32{v})
				if scores[0] != want {
					t.Fatalf("%s: incremental kernel(%d,%d) = %v, fresh = %v", name, u, v, scores[0], want)
				}
			}
		}
	}
}

// TestCountedBatchCountsPairs: CountedBatch adds exactly one count per
// scored pair, matching what Counted would have recorded pairwise.
func TestCountedBatchCountsPairs(t *testing.T) {
	r := rand.New(rand.NewSource(317))
	d := randBatchDataset(r, 10, 20, true)
	var evals atomic.Int64
	factory := CountedBatch(Cosine{}.PrepareBatch(d), &evals)
	kernel := factory()
	scores := make([]float64, 4)
	kernel.ScoreInto(scores[:3], 0, []uint32{1, 2, 3})
	kernel.ScoreInto(scores[:0], 4, nil)
	kernel.ScoreInto(scores[:4], 5, []uint32{6, 7, 8, 9})
	if got := evals.Load(); got != 7 {
		t.Fatalf("counted %d evals, want 7", got)
	}
}
