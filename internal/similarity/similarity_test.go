package similarity

import (
	"math"
	"sync/atomic"
	"testing"

	"kiff/internal/dataset"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	// user 0: items 0,1   user 1: items 1,2   user 2: item 3   user 3: items 0,1,2
	return dataset.FromProfiles("sim-test", []map[uint32]float64{
		{0: 1, 1: 1},
		{1: 1, 2: 1},
		{3: 1},
		{0: 1, 1: 1, 2: 1},
	}, true)
}

func weightedDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.FromProfiles("sim-weighted", []map[uint32]float64{
		{0: 3, 1: 4},
		{0: 3, 1: 4},
		{2: 1},
		{0: 1},
	}, false)
}

func TestCosineBinary(t *testing.T) {
	f := Cosine{}.Prepare(testDataset(t))
	// users 0,1 share item 1: 1/sqrt(2*2) = 0.5
	if got := f(0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("cosine(0,1) = %v, want 0.5", got)
	}
	// disjoint
	if got := f(0, 2); got != 0 {
		t.Errorf("cosine(0,2) = %v, want 0", got)
	}
	// 0 vs 3: share 2 of (2,3) items: 2/sqrt(6)
	if got, want := f(0, 3), 2/math.Sqrt(6); math.Abs(got-want) > 1e-12 {
		t.Errorf("cosine(0,3) = %v, want %v", got, want)
	}
}

func TestCosineWeighted(t *testing.T) {
	f := Cosine{}.Prepare(weightedDataset(t))
	// identical profiles → 1
	if got := f(0, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine of identical profiles = %v, want 1", got)
	}
	// user 3 has only item 0 weight 1: dot = 3, norms 5 and 1 → 0.6
	if got := f(0, 3); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("cosine(0,3) = %v, want 0.6", got)
	}
}

func TestJaccard(t *testing.T) {
	f := Jaccard{}.Prepare(testDataset(t))
	// users 0,1: |∩|=1, |∪|=3
	if got := f(0, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("jaccard(0,1) = %v, want 1/3", got)
	}
	if got := f(0, 2); got != 0 {
		t.Errorf("jaccard disjoint = %v, want 0", got)
	}
	// 0 vs 3: ∩=2, ∪=3
	if got := f(0, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("jaccard(0,3) = %v, want 2/3", got)
	}
}

func TestAdamicAdar(t *testing.T) {
	d := testDataset(t)
	f := AdamicAdar{}.Prepare(d)
	// item 1 is rated by users 0,1,3 → |IP|=3. share between 0 and 1 = item 1.
	want := 1 / math.Log(3)
	if got := f(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("adamic-adar(0,1) = %v, want %v", got, want)
	}
	// 0 vs 3 share items 0 (|IP|=2) and 1 (|IP|=3)
	want = 1/math.Log(2) + 1/math.Log(3)
	if got := f(0, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("adamic-adar(0,3) = %v, want %v", got, want)
	}
	if got := f(0, 2); got != 0 {
		t.Errorf("adamic-adar disjoint = %v, want 0", got)
	}
}

func TestOverlap(t *testing.T) {
	f := Overlap{}.Prepare(testDataset(t))
	if got := f(0, 3); got != 2 {
		t.Errorf("overlap(0,3) = %v, want 2", got)
	}
	if got := f(1, 2); got != 0 {
		t.Errorf("overlap disjoint = %v, want 0", got)
	}
}

func TestDice(t *testing.T) {
	f := Dice{}.Prepare(testDataset(t))
	// 0 vs 3: 2*2/(2+3)
	if got := f(0, 3); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("dice(0,3) = %v, want 0.8", got)
	}
	if got := f(0, 2); got != 0 {
		t.Errorf("dice disjoint = %v, want 0", got)
	}
}

func TestAllMetricsSymmetricAndPaperProperties(t *testing.T) {
	// Eq. (5): disjoint ⇒ 0 ; Eq. (6): overlapping ⇒ ≥ 0; plus symmetry.
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		for _, d := range []*dataset.Dataset{testDataset(t), weightedDataset(t)} {
			f := m.Prepare(d)
			n := uint32(d.NumUsers())
			for u := uint32(0); u < n; u++ {
				for v := uint32(0); v < n; v++ {
					if u == v {
						continue
					}
					s, s2 := f(u, v), f(v, u)
					if s != s2 {
						t.Errorf("%s on %s: sim(%d,%d)=%v != sim(%d,%d)=%v", name, d.Name, u, v, s, v, u, s2)
					}
					if s < 0 {
						t.Errorf("%s on %s: sim(%d,%d)=%v < 0 violates Eq. (6)", name, d.Name, u, v, s)
					}
					// Eq. (5): zero overlap must give zero similarity.
					if overlapCount(d, u, v) == 0 && s != 0 {
						t.Errorf("%s on %s: disjoint sim(%d,%d)=%v violates Eq. (5)", name, d.Name, u, v, s)
					}
				}
			}
		}
	}
}

func overlapCount(d *dataset.Dataset, u, v uint32) int {
	n := 0
	for _, id := range d.Users[u].IDs {
		if d.Users[v].Contains(id) {
			n++
		}
	}
	return n
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("euclid"); err == nil {
		t.Error("ByName must reject unknown metrics")
	}
}

func TestByNameAliases(t *testing.T) {
	m1, err1 := ByName("adamic-adar")
	m2, err2 := ByName("adamicadar")
	if err1 != nil || err2 != nil || m1.Name() != m2.Name() {
		t.Error("adamic-adar aliases must resolve to the same metric")
	}
}

func TestCounted(t *testing.T) {
	var evals atomic.Int64
	f := Counted(Cosine{}.Prepare(testDataset(t)), &evals)
	f(0, 1)
	f(0, 2)
	f(1, 3)
	if got := evals.Load(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
}

func TestCosineEmptyProfileIsZero(t *testing.T) {
	d := dataset.FromProfiles("empty", []map[uint32]float64{
		{},
		{0: 1},
	}, true)
	f := Cosine{}.Prepare(d)
	if got := f(0, 1); got != 0 {
		t.Errorf("cosine with empty profile = %v, want 0 (no NaN)", got)
	}
	if math.IsNaN(f(0, 0)) {
		t.Error("cosine must never be NaN")
	}
}

func TestMetricNamesMatchRegistry(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("registered name %q not resolvable: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("metric %q reports name %q", name, m.Name())
		}
	}
}
