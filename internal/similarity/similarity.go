// Package similarity implements the item-based similarity metrics used to
// build KNN graphs, behind a uniform interface.
//
// All metrics here satisfy the two properties of the paper's Eq. (5) and
// (6): they are zero for disjoint profiles and non-negative for overlapping
// ones. These properties are what make KIFF's RCS pruning lossless
// (§III-D), and are covered by property-based tests.
//
// A metric is bound to a dataset once via Prepare, which lets it precompute
// per-user norms or per-item statistics; the returned Func is then a pure,
// concurrency-safe pairwise function. Every similarity evaluation performed
// by an algorithm flows through a Func wrapped with Counted (or a batch
// kernel wrapped with CountedBatch), giving the scan-rate metric of §IV-C
// for free.
//
// The pairwise Func is the reference implementation; the hot construction
// loops score through the one-vs-many kernels of batch.go (BatchMetric),
// which are property-tested bit-for-bit equal to it.
package similarity

import (
	"fmt"
	"math"
	"sync/atomic"

	"kiff/internal/dataset"
	"kiff/internal/sparse"
)

// Func computes the similarity between two users of the prepared dataset.
// Implementations must be safe for concurrent use.
type Func func(u, v uint32) float64

// Metric is a similarity measure over user profiles.
type Metric interface {
	// Name returns the metric's identifier (used in flags and tables).
	Name() string
	// Prepare binds the metric to a dataset and returns the pairwise
	// function. Prepare may precompute per-user or per-item state.
	Prepare(d *dataset.Dataset) Func
}

// Incremental is an optional Metric extension for append-only mutating
// datasets (the incremental-maintenance path). PrepareIncremental binds
// the metric like Prepare, but the returned function stays valid across
// dataset mutations provided refresh(u) is called for every appended or
// profile-changed user before the next evaluation involving u — so a
// stream of mutations costs O(changed profiles), not one full O(|U|)
// re-preparation each. Unlike Prepare's result, the pair (fn, refresh)
// is not safe for concurrent use.
//
// Metrics with per-item precomputed state that a single mutation can
// invalidate globally (Adamic–Adar's 1/ln|IPi|) do not implement it;
// callers fall back to a full Prepare after each mutation batch.
type Incremental interface {
	Metric
	PrepareIncremental(d *dataset.Dataset) (fn Func, refresh func(u uint32))
}

// Counted wraps fn so every evaluation increments evals. The counter is
// shared across workers; one atomic add per evaluation is negligible next
// to the merge the evaluation itself performs.
func Counted(fn Func, evals *atomic.Int64) Func {
	return func(u, v uint32) float64 {
		evals.Add(1)
		return fn(u, v)
	}
}

// ByName returns the metric registered under name.
func ByName(name string) (Metric, error) {
	switch name {
	case "cosine":
		return Cosine{}, nil
	case "jaccard":
		return Jaccard{}, nil
	case "adamic-adar", "adamicadar":
		return AdamicAdar{}, nil
	case "overlap":
		return Overlap{}, nil
	case "dice":
		return Dice{}, nil
	default:
		return nil, fmt.Errorf("similarity: unknown metric %q (want cosine, jaccard, adamic-adar, overlap or dice)", name)
	}
}

// Names lists the registered metric names.
func Names() []string {
	return []string{"adamic-adar", "cosine", "dice", "jaccard", "overlap"}
}

// Cosine is the cosine similarity over rating dictionaries, the paper's
// default metric (§IV-D): dot(UPu, UPv) / (‖UPu‖·‖UPv‖). For binary
// profiles this reduces to |A∩B|/√(|A|·|B|).
type Cosine struct{}

// Name implements Metric.
func (Cosine) Name() string { return "cosine" }

// Prepare implements Metric; it precomputes every user's profile norm.
func (Cosine) Prepare(d *dataset.Dataset) Func {
	users := d.Users
	norms := make([]float64, len(users))
	for i, u := range users {
		norms[i] = sparse.Norm(u)
	}
	return func(u, v uint32) float64 {
		nu, nv := norms[u], norms[v]
		if nu == 0 || nv == 0 {
			return 0
		}
		return sparse.Dot(users[u], users[v]) / (nu * nv)
	}
}

// PrepareIncremental implements Incremental: the norm cache is grown (in
// a single step, even for ID jumps) and patched per refreshed user, and
// profiles are re-read through d so appends (which may reallocate
// d.Users) are observed. The state is shared with the batch kernels; see
// cosineState in batch.go.
func (Cosine) PrepareIncremental(d *dataset.Dataset) (Func, func(uint32)) {
	st := newCosineState(d)
	return st.pair, st.refresh
}

// Jaccard is Jaccard's coefficient |A∩B| / |A∪B| over the profile item
// sets (ratings are ignored; the set semantics is the classical form the
// paper cites).
type Jaccard struct{}

// Name implements Metric.
func (Jaccard) Name() string { return "jaccard" }

// Prepare implements Metric.
func (Jaccard) Prepare(d *dataset.Dataset) Func {
	users := d.Users
	return func(u, v uint32) float64 {
		inter := sparse.CommonCount(users[u], users[v])
		if inter == 0 {
			return 0
		}
		union := users[u].Len() + users[v].Len() - inter
		return float64(inter) / float64(union)
	}
}

// PrepareIncremental implements Incremental; Jaccard keeps no per-user
// state, so refreshing is free and only the profile re-read matters.
func (Jaccard) PrepareIncremental(d *dataset.Dataset) (Func, func(uint32)) {
	return func(u, v uint32) float64 {
		inter := sparse.CommonCount(d.Users[u], d.Users[v])
		if inter == 0 {
			return 0
		}
		union := d.Users[u].Len() + d.Users[v].Len() - inter
		return float64(inter) / float64(union)
	}, func(uint32) {}
}

// AdamicAdar is the Adamic–Adar coefficient Σ_{i∈A∩B} 1/ln|IPi|: shared
// rare items weigh more than shared popular ones. It is one of the three
// metrics the paper names when motivating the common-item observation
// (§II-A).
type AdamicAdar struct{}

// Name implements Metric.
func (AdamicAdar) Name() string { return "adamic-adar" }

// Prepare implements Metric; it precomputes 1/ln|IPi| per item.
func (AdamicAdar) Prepare(d *dataset.Dataset) Func {
	d.EnsureItemProfiles()
	users := d.Users
	invLog := make([]float64, len(d.Items))
	for i, ip := range d.Items {
		if len(ip) >= 2 {
			invLog[i] = 1 / math.Log(float64(len(ip)))
		}
		// Items rated by a single user can never be shared; leaving 0
		// keeps Eq. (5) intact even if they were.
	}
	return func(u, v uint32) float64 {
		var s float64
		a, b := users[u], users[v]
		i, j := 0, 0
		for i < len(a.IDs) && j < len(b.IDs) {
			ai, bj := a.IDs[i], b.IDs[j]
			switch {
			case ai == bj:
				s += invLog[ai]
				i++
				j++
			case ai < bj:
				i++
			default:
				j++
			}
		}
		return s
	}
}

// Overlap is the raw common-item count |A∩B| — the coarse metric KIFF's
// counting phase uses implicitly. Exposed as a metric so the Fig 7
// experiment can rank candidates by it directly.
type Overlap struct{}

// Name implements Metric.
func (Overlap) Name() string { return "overlap" }

// Prepare implements Metric.
func (Overlap) Prepare(d *dataset.Dataset) Func {
	users := d.Users
	return func(u, v uint32) float64 {
		return float64(sparse.CommonCount(users[u], users[v]))
	}
}

// PrepareIncremental implements Incremental; Overlap is stateless.
func (Overlap) PrepareIncremental(d *dataset.Dataset) (Func, func(uint32)) {
	return func(u, v uint32) float64 {
		return float64(sparse.CommonCount(d.Users[u], d.Users[v]))
	}, func(uint32) {}
}

// Dice is the Sørensen–Dice coefficient 2|A∩B| / (|A|+|B|).
type Dice struct{}

// Name implements Metric.
func (Dice) Name() string { return "dice" }

// Prepare implements Metric.
func (Dice) Prepare(d *dataset.Dataset) Func {
	users := d.Users
	return func(u, v uint32) float64 {
		inter := sparse.CommonCount(users[u], users[v])
		if inter == 0 {
			return 0
		}
		return 2 * float64(inter) / float64(users[u].Len()+users[v].Len())
	}
}

// PrepareIncremental implements Incremental; Dice is stateless.
func (Dice) PrepareIncremental(d *dataset.Dataset) (Func, func(uint32)) {
	return func(u, v uint32) float64 {
		inter := sparse.CommonCount(d.Users[u], d.Users[v])
		if inter == 0 {
			return 0
		}
		return 2 * float64(inter) / float64(d.Users[u].Len()+d.Users[v].Len())
	}, func(uint32) {}
}
