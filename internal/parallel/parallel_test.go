package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d, want 4", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
}

func TestBlocksCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 97, 1000} {
			seen := make([]int32, n)
			Blocks(n, workers, func(_, lo, hi int) {
				if lo >= hi {
					t.Errorf("workers=%d n=%d: empty block [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestBlocksDistinctWorkerIDs(t *testing.T) {
	n, workers := 1000, 8
	hit := make([]int32, workers)
	Blocks(n, workers, func(w, lo, hi int) {
		atomic.AddInt32(&hit[w], 1)
	})
	for w, c := range hit {
		if c != 1 {
			t.Errorf("worker %d invoked %d times, want 1", w, c)
		}
	}
}

func TestForVisitsAll(t *testing.T) {
	n := 257
	var sum int64
	For(n, 4, func(_, i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	want := int64(n*(n-1)) / 2
	if sum != want {
		t.Errorf("For sum = %d, want %d", sum, want)
	}
}

func TestSumInt64(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got := SumInt64(100, workers, func(_, lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		})
		if got != 4950 {
			t.Errorf("workers=%d: SumInt64 = %d, want 4950", workers, got)
		}
	}
}

func TestSumInt64Empty(t *testing.T) {
	if got := SumInt64(0, 4, func(_, _, _ int) int64 { return 99 }); got != 0 {
		t.Errorf("SumInt64(0) = %d, want 0", got)
	}
}

func TestBlocksZero(t *testing.T) {
	called := false
	Blocks(0, 4, func(_, _, _ int) { called = true })
	if called {
		t.Error("Blocks(0) must not invoke fn")
	}
}

func TestGroupRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const tasks = 200
		var ran int32
		g := NewGroup(workers)
		for i := 0; i < tasks; i++ {
			g.Go(func() error {
				atomic.AddInt32(&ran, 1)
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			t.Fatalf("workers=%d: Wait() = %v", workers, err)
		}
		if ran != tasks {
			t.Errorf("workers=%d: ran %d of %d tasks", workers, ran, tasks)
		}
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak int32
	g := NewGroup(workers)
	for i := 0; i < 100; i++ {
		g.Go(func() error {
			cur := atomic.AddInt32(&inFlight, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
					break
				}
			}
			atomic.AddInt32(&inFlight, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent tasks, bound is %d", peak, workers)
	}
}

func TestGroupCapturesFirstErrorAndDrains(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	g := NewGroup(2)
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			atomic.AddInt32(&ran, 1)
			if i == 7 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want %v", err, boom)
	}
	if ran != 50 {
		t.Errorf("an error must not cancel the remaining tasks: ran %d of 50", ran)
	}
}

func TestGroupNoError(t *testing.T) {
	g := NewGroup(0) // all CPUs
	g.Go(func() error { return nil })
	if err := g.Wait(); err != nil {
		t.Errorf("Wait() = %v, want nil", err)
	}
}

func TestBlocksMoreWorkersThanItems(t *testing.T) {
	var count int32
	Blocks(3, 64, func(_, lo, hi int) {
		atomic.AddInt32(&count, int32(hi-lo))
	})
	if count != 3 {
		t.Errorf("covered %d items, want 3", count)
	}
}
