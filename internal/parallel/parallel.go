// Package parallel provides the block-sharded worker pool used by every
// KNN construction algorithm in this module. The paper's implementations
// are "multi-threaded to parallelize the treatment of individual users"
// (§IV); we mirror that by splitting the user range into one contiguous
// block per worker, which preserves the memory locality greedy KNN
// approaches rely on (§II).
package parallel

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request: values < 1 mean "use all
// available CPUs".
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Blocks runs fn(worker, lo, hi) concurrently on workers goroutines, where
// [lo, hi) partitions [0, n) into near-equal contiguous blocks. It returns
// once every block completes. fn is never invoked for empty blocks.
func Blocks(n, workers int, fn func(worker, lo, hi int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// For runs fn(worker, i) for every i in [0, n) using Blocks sharding.
func For(n, workers int, fn func(worker, i int)) {
	Blocks(n, workers, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(w, i)
		}
	})
}

// Group is a bounded work group: at most a fixed number of submitted
// tasks run concurrently, and the first error any task returns is
// captured for Wait. It covers the fan-out shape Blocks cannot — tasks
// of uneven size arriving one by one (per-shard cold builds, per-bucket
// KNN construction), where contiguous block sharding would load-balance
// poorly and per-call goroutine bookkeeping gets duplicated at every
// call site.
//
// Unlike errgroup-style cancelation, a captured error does not stop the
// remaining tasks: producers here are all-or-nothing (a failed shard
// build discards the whole pool), so the simpler drain-everything
// semantics keeps shared state trivially valid at Wait.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// NewGroup returns a Group running at most workers tasks concurrently
// (< 1 = all CPUs, as in Workers).
func NewGroup(workers int) *Group {
	return &Group{sem: make(chan struct{}, Workers(workers))}
}

// Go submits one task. It blocks while the group is at its concurrency
// bound — submission backpressure, not unbounded goroutine pileup — and
// returns once the task is scheduled.
func (g *Group) Go(fn func() error) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every submitted task has finished and returns the
// first error captured (first in completion order; nil if none failed).
// The group must not be reused after Wait returns.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// SumInt64 runs fn on each block and sums the per-block results. It is the
// reduction used to accumulate per-iteration change counters (variable c of
// Algorithm 1) without atomic traffic in the hot loop.
func SumInt64(n, workers int, fn func(worker, lo, hi int) int64) int64 {
	workers = Workers(workers)
	if n <= 0 {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return fn(0, 0, n)
	}
	results := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w] = fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for _, r := range results {
		total += r
	}
	return total
}
