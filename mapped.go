package kiff

// Facade over the zero-copy load path (see internal/arena's View and
// Mapping): a serving process maps a built KFG1/KFD1 checkpoint instead
// of copying it through the heap. Loading is O(1) allocation with respect
// to graph size, cold start is bounded by one sequential checksum pass,
// and the kernel page cache backing the mapping is shared by every
// process serving the same files.

import (
	"kiff/internal/dataset"
	"kiff/internal/knngraph"
)

// MappedGraph is a Graph backed by a file mapping. Graph() is valid until
// Close; see LoadGraphMapped.
type MappedGraph = knngraph.Mapped

// MappedDataset is a Dataset backed by a file mapping. Dataset() is valid
// until Close; see LoadDatasetMapped.
type MappedDataset = dataset.Mapped

// LoadGraphMapped memory-maps a file written by SaveGraph and decodes the
// graph in place: neighbor lists are views into the mapping, so the load
// allocates O(1) memory regardless of graph size (on platforms without
// mmap the file is transparently read to the heap instead — same
// semantics, no sharing). The mapped graph answers every query
// bit-identically to LoadGraph.
//
// Close the returned handle only after the last reader of the Graph is
// done; for a long-lived server, simply never close it.
func LoadGraphMapped(path string) (*MappedGraph, error) {
	return knngraph.OpenMapped(path)
}

// LoadDatasetMapped memory-maps a file written by SaveDataset and decodes
// the dataset in place: profile ID and rating arenas are views into the
// mapping; only per-user headers and the lazily built item index live on
// the heap. Copy-on-write mutations (AddUser, AddRating — e.g. through a
// Maintainer) are safe: they allocate fresh rows and never write through
// the mapping.
func LoadDatasetMapped(path string) (*MappedDataset, error) {
	return dataset.OpenMapped(path)
}
