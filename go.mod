module kiff

go 1.24
