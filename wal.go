package kiff

import (
	"errors"
	"fmt"

	"kiff/internal/wal"
)

// This file is the Maintainer side of write-ahead logging (package
// internal/wal holds the KFL1 format itself; docs/ARCHITECTURE.md
// "Durability" has the full ordering story). The contract is
// append → apply → ack: with a log attached, every mutation entry point
// (Insert, InsertBatch, AddRating, Rebuild) validates its arguments,
// appends the corresponding KFL1 record, and only then touches the live
// state — so a mutation whose call returned is always recoverable by
// replaying the log over the last checkpoint.
//
// A failed append fail-stops the maintainer: log and state would
// otherwise drift apart (a logged-but-unapplied insert replays after a
// crash, colliding with the IDs later live inserts handed out), so
// every subsequent mutation is refused until the process restarts and
// replays. Reads are unaffected.

// Aliases re-export the wal types appearing in public signatures:
// consumers outside this module cannot import kiff/internal/wal, so
// without these OpenWAL and friends would be uncallable externally.
type (
	// WALOptions configures OpenWAL (fsync policy, replay horizon).
	WALOptions = wal.Options
	// WALReplayStats reports what OpenWAL's replay found.
	WALReplayStats = wal.ReplayStats
	// WALSyncPolicy selects when appends fsync.
	WALSyncPolicy = wal.SyncPolicy
)

// The three fsync policies, re-exported for WALOptions.Sync.
const (
	WALSyncAlways   = wal.SyncAlways
	WALSyncInterval = wal.SyncInterval
	WALSyncNever    = wal.SyncNever
)

// ErrWALCorrupt tags unrecoverable log damage (as opposed to a torn
// tail, which replay truncates silently): errors.Is-match it to decide
// between restoring from a checkpoint and debugging a real bug.
var ErrWALCorrupt = wal.ErrCorrupt

// OpenWAL opens (creating if absent) the KFL1 log at path, replays any
// records above opts.FromLSN onto the maintainer, and attaches the log
// so subsequent mutations are appended before they are applied.
// opts.FromLSN must be the WAL horizon recorded by the checkpoint this
// maintainer was loaded from (0 for a cold build with no checkpoint).
// A torn tail is truncated (see wal.Open); mismatched log/checkpoint
// pairs fail loudly with wal.ErrCorrupt.
func (m *Maintainer) OpenWAL(path string, opts wal.Options) (wal.ReplayStats, error) {
	if m.wlog != nil {
		return wal.ReplayStats{}, errors.New("kiff: maintainer already has a write-ahead log")
	}
	l, err := wal.Open(path, opts, m.WALApply)
	if err != nil {
		return wal.ReplayStats{}, err
	}
	m.wlog = l
	return l.ReplayStats(), nil
}

// WALApply applies one replayed log record to the maintainer without
// re-logging it — the replay callback for wal.Open. It must only run on
// a maintainer with no attached log (replay precedes attachment).
func (m *Maintainer) WALApply(r wal.Record) error {
	if m.wlog != nil {
		return errors.New("kiff: WALApply on a maintainer with an attached log")
	}
	switch r.Kind {
	case wal.KindAddUser:
		_, err := m.Insert(Profile{IDs: r.Items, Weights: r.Weights})
		return err
	case wal.KindAddRating:
		return m.AddRating(r.User, r.Item, r.Rating)
	case wal.KindRebuild:
		if r.All {
			// "All" replays against the dirty set the preceding replayed
			// AddRating records accumulated — the same set the live call
			// resolved, since the record stream up to here is identical.
			return m.Rebuild(nil)
		}
		return m.Rebuild(r.Dirty)
	}
	return fmt.Errorf("kiff: replay: unknown record kind %d", r.Kind)
}

// WALAttached reports whether a write-ahead log is attached.
func (m *Maintainer) WALAttached() bool { return m.wlog != nil }

// WALLastLSN returns the LSN of the last logged mutation (0 with no log
// attached). A checkpoint taken now covers exactly LSNs 1..WALLastLSN.
func (m *Maintainer) WALLastLSN() uint64 {
	if m.wlog == nil {
		return 0
	}
	return m.wlog.LastLSN()
}

// WALRotate starts a fresh log generation, discarding the records the
// just-completed checkpoint covers. No-op without a log. Call it only
// after a checkpoint recording WALLastLSN is durably complete, with no
// concurrent mutations.
func (m *Maintainer) WALRotate() error {
	if m.wlog == nil {
		return nil
	}
	return m.wlog.Rotate()
}

// WALCounters snapshots the attached log's activity counters (zero
// value with no log). Safe from any goroutine.
func (m *Maintainer) WALCounters() wal.Counters {
	if m.wlog == nil {
		return wal.Counters{}
	}
	return m.wlog.Counters()
}

// WALError returns the append error that fail-stopped the maintainer,
// or nil. Once non-nil every mutation is refused; restart and replay.
// Safe from any goroutine (health endpoints poll it).
func (m *Maintainer) WALError() error {
	if p := m.walErr.Load(); p != nil {
		return *p
	}
	return nil
}

// CloseWAL syncs and closes the attached log, detaching it. No-op
// without one. The maintainer accepts unlogged mutations afterwards;
// callers that want durability must not mutate after closing.
func (m *Maintainer) CloseWAL() error {
	if m.wlog == nil {
		return nil
	}
	err := m.wlog.Close()
	m.wlog = nil
	return err
}

// ErrWALFailStop tags mutations refused because an earlier write-ahead
// log append failed (fail-stop; see the file comment). Serving layers
// map it to "service unavailable" — the fix is a restart-and-replay,
// not a different request.
var ErrWALFailStop = errors.New("kiff: maintainer fail-stopped after a write-ahead log error")

// walGuard refuses mutations after an append failure.
func (m *Maintainer) walGuard() error {
	if p := m.walErr.Load(); p != nil {
		return fmt.Errorf("%w: %w", ErrWALFailStop, *p)
	}
	return nil
}

// logMutation appends one record, fail-stopping the maintainer on error.
// Callers must have validated the mutation so applying it cannot fail.
func (m *Maintainer) logMutation(r wal.Record) error {
	if err := m.wlog.Append(r); err != nil {
		m.walErr.Store(&err)
		return fmt.Errorf("kiff: %w", err)
	}
	return nil
}
