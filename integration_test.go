package kiff

import (
	"bytes"
	"math"
	"testing"

	"kiff/internal/bruteforce"
	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/hyrec"
	"kiff/internal/nndescent"
	"kiff/internal/similarity"
)

// TestPipelineGenerateSaveLoadBuildScore exercises the full downstream
// workflow: generate → serialize → reload → build → serialize graph →
// score, across module boundaries.
func TestPipelineGenerateSaveLoadBuildScore(t *testing.T) {
	orig, err := GeneratePreset("wikipedia", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	if err := WriteDataset(&stream, orig); err != nil {
		t.Fatal(err)
	}
	ds, err := Load(&stream, LoadOptions{Name: "reloaded"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRatings() != orig.NumRatings() {
		t.Fatalf("reload changed |E|: %d vs %d", ds.NumRatings(), orig.NumRatings())
	}
	res, err := Build(ds, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var graphOut bytes.Buffer
	if err := res.Graph.Write(&graphOut); err != nil {
		t.Fatal(err)
	}
	if graphOut.Len() == 0 {
		t.Fatal("empty graph serialization")
	}
	recall, err := Recall(ds, res.Graph, Options{K: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if recall < 0.9 {
		t.Errorf("end-to-end recall = %v, want ≥ 0.9", recall)
	}
}

// TestAlgorithmsAgreeOnExactRegime: with exhaustive settings, KIFF and
// brute force must produce graphs of identical quality, and the greedy
// baselines must approach them on a well-connected dataset.
func TestAlgorithmsAgreeOnExactRegime(t *testing.T) {
	d, err := dataset.Wikipedia.Generate(0.02, 10)
	if err != nil {
		t.Fatal(err)
	}
	k := 8
	exact := bruteforce.Exact(d, similarity.Cosine{}, k, 0)

	kf, err := core.Build(d, core.Config{K: k, Gamma: -1, Beta: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.Recall(kf.Graph); math.Abs(got-1) > 1e-9 {
		t.Errorf("exhaustive KIFF recall = %v, want 1", got)
	}

	nd, err := nndescent.Build(d, nndescent.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hyrec.Build(d, hyrec.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	if got := exact.Recall(nd.Graph); got < 0.7 {
		t.Errorf("NN-Descent recall = %v, want ≥ 0.7", got)
	}
	if got := exact.Recall(hy.Graph); got < 0.6 {
		t.Errorf("HyRec recall = %v, want ≥ 0.6", got)
	}
}

// TestScanRateOrdering verifies the paper's core cost claim end to end:
// KIFF needs fewer similarity evaluations than both baselines on sparse
// datasets.
func TestScanRateOrdering(t *testing.T) {
	for _, preset := range []dataset.Preset{dataset.Wikipedia, dataset.Arxiv} {
		d, err := preset.Generate(0.02, 11)
		if err != nil {
			t.Fatal(err)
		}
		k := 10
		kf, err := core.Build(d, core.DefaultConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		nd, err := nndescent.Build(d, nndescent.DefaultConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		hy, err := hyrec.Build(d, hyrec.DefaultConfig(k))
		if err != nil {
			t.Fatal(err)
		}
		if kf.Run.SimEvals >= nd.Run.SimEvals {
			t.Errorf("%s: KIFF evals %d not below NN-Descent %d",
				preset, kf.Run.SimEvals, nd.Run.SimEvals)
		}
		if kf.Run.SimEvals >= hy.Run.SimEvals {
			t.Errorf("%s: KIFF evals %d not below HyRec %d",
				preset, kf.Run.SimEvals, hy.Run.SimEvals)
		}
	}
}

// TestKIFFScalesAcrossMetricsAndWeights runs the full cross product of
// metrics × (binary, weighted) datasets through KIFF and validates the
// resulting graphs.
func TestKIFFScalesAcrossMetricsAndWeights(t *testing.T) {
	binary, err := dataset.Wikipedia.Generate(0.01, 12)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := dataset.Gowalla.Generate(0.002, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*dataset.Dataset{binary, weighted} {
		for _, name := range similarity.Names() {
			metric, err := similarity.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(5)
			cfg.Metric = metric
			res, err := core.Build(d, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", d.Name, name, err)
			}
			if err := res.Graph.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", d.Name, name, err)
			}
			// Every reported similarity must be non-negative (Eq. 6) and
			// every edge must connect overlapping users (Eq. 5).
			for u := 0; u < res.Graph.NumUsers(); u++ {
				for _, nb := range res.Graph.Neighbors(uint32(u)) {
					if nb.Sim < 0 {
						t.Fatalf("%s/%s: negative similarity", d.Name, name)
					}
					if nb.Sim > 0 {
						continue
					}
					_ = u
				}
			}
		}
	}
}

// TestDensityCrossoverDirection reproduces the Fig 10 direction at test
// scale: KIFF's scan rate falls as the dataset gets sparser, NN-Descent's
// does not fall correspondingly.
func TestDensityCrossoverDirection(t *testing.T) {
	family, err := dataset.MovieLensFamily(0.05, 13)
	if err != nil {
		t.Fatal(err)
	}
	dense, sparse := family[0], family[4]
	k := 10

	kfDense, err := core.Build(dense, core.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	kfSparse, err := core.Build(sparse, core.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	if kfSparse.Run.ScanRate() >= kfDense.Run.ScanRate() {
		t.Errorf("KIFF scan rate did not fall with density: dense %.4f, sparse %.4f",
			kfDense.Run.ScanRate(), kfSparse.Run.ScanRate())
	}

	ndDense, err := nndescent.Build(dense, nndescent.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	ndSparse, err := nndescent.Build(sparse, nndescent.DefaultConfig(k))
	if err != nil {
		t.Fatal(err)
	}
	// NN-Descent's work is driven by k and |U|, not density: the ratio of
	// its scan rates across the ladder stays near 1, while KIFF's falls.
	ndRatio := ndSparse.Run.ScanRate() / ndDense.Run.ScanRate()
	kfRatio := kfSparse.Run.ScanRate() / kfDense.Run.ScanRate()
	if kfRatio >= ndRatio {
		t.Errorf("KIFF scan ratio %.3f not below NN-Descent ratio %.3f", kfRatio, ndRatio)
	}
}
