package kiff

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"kiff/internal/engine"
	"kiff/internal/knngraph"
	"kiff/internal/knnheap"
	"kiff/internal/rcs"
	"kiff/internal/runstats"
	"kiff/internal/similarity"
	"kiff/internal/wal"
)

// Maintainer keeps a KIFF-built KNN graph fresh under a stream of profile
// updates without full reconstruction — the online-serving scenario the
// paper's introduction motivates (search, recommendation and
// classification backends whose user base keeps changing).
//
// The construction principle carries over from the batch algorithm: a
// user's relevant candidates are exactly the users it shares items with,
// ranked by shared-item count. Insert therefore splices a new user into
// the graph by evaluating only its ranked candidate set (patched from the
// item-profile index in O(Σ|IPi|) for the items it holds), updating both
// endpoints' heaps — a tiny fraction of the work of rebuilding the graph.
// AddRating records in-place profile changes and marks the user dirty;
// Rebuild refreshes the dirty users' neighborhoods, evicting the stale
// similarities other users may still hold.
//
// Insert keeps the new user's own neighborhood exact in exact mode
// (Options.Beta < 0: its candidate set provably contains every user with
// positive similarity). Affected existing users are updated through the
// symmetric heap offer, which — as in batch KIFF — cannot displace what
// it never evaluated; the recall of the maintained graph consequently
// tracks a cold build's within noise (see the convergence property test).
//
// A Maintainer is a single-writer structure: Insert, InsertBatch,
// AddRating and Rebuild must not run concurrently with each other or
// with Graph. Concurrent readers do not touch the live structures at
// all: they load the immutable Snapshot the writer publishes after each
// mutation batch (see Snapshot) and serve Neighbors/Query from it
// lock-free.
type Maintainer struct {
	d     *Dataset
	opts  engine.Options
	heaps *knnheap.Set
	sets  *rcs.Sets
	// sim is the evaluation-counted similarity function; refresh patches
	// its precomputed state per mutated user when the metric supports
	// incremental preparation (similarity.Incremental), in which case
	// mutations cost O(changed profile) instead of a full O(|U|)
	// re-preparation. batch is the one-vs-many counterpart
	// (similarity.IncrementalBatch shares refresh's state with it);
	// kernel is the lazily minted single-writer scoring kernel.
	sim     similarity.Func
	batch   similarity.BatchFactory
	kernel  similarity.Batcher
	refresh func(uint32)
	simOK   bool
	evals   atomic.Int64
	run     runstats.Run
	dirty   map[uint32]struct{}
	scratch []uint32
	scores  []float64

	inserts      int64
	rebuilds     int64
	rebuiltUsers int64

	// Publication cost counters (see runstats.Counters): page accounting
	// covers both the graph pages and the dataset header pages of each
	// copy-on-write publication.
	publishes     int64
	pagesCopied   int64
	pagesShared   int64
	publishNs     int64
	lastPublishNs int64

	// snap is the serving-side publication point: an immutable view
	// replaced wholesale by the writer, loaded lock-free by readers.
	snap    atomic.Pointer[Snapshot]
	version uint64

	// wlog, when attached (OpenWAL), receives every mutation before it is
	// applied; walErr fail-stops the maintainer after an append failure
	// (atomic so health endpoints may read it off the writer goroutine).
	// See wal.go for the durability contract.
	wlog   *wal.Log
	walErr atomic.Pointer[error]
}

// NewMaintainer cold-builds the KNN graph with KIFF (honoring opts as in
// Build) and returns a Maintainer wrapping the live engine state. The
// dataset is retained and mutated by Insert/AddRating; the caller must
// not modify it directly afterward.
//
// Options.Beta keeps its Build meaning and additionally controls the
// maintenance refinement: with Beta ≥ 0 an Insert or Rebuild stops
// popping a user's ranked candidates once a γ-sized chunk yields no
// neighborhood change; with Beta < 0 it exhausts them (exact per-user
// candidates, at higher cost).
func NewMaintainer(d *Dataset, opts Options) (*Maintainer, error) {
	if opts.Algorithm != "" && opts.Algorithm != KIFF {
		return nil, fmt.Errorf("kiff: Maintainer requires the kiff algorithm, got %q", opts.Algorithm)
	}
	eo, err := opts.engineOptions()
	if err != nil {
		return nil, err
	}
	res, err := engine.Build(string(KIFF), d, eo)
	if err != nil {
		return nil, err
	}
	// engine.Build normalized a copy of eo; re-normalize ours so the
	// maintenance loops see the same defaults (γ = 2k, β = 0.001, metric).
	b, _ := engine.Lookup(string(KIFF))
	if err := b.Normalize(&eo); err != nil {
		return nil, err
	}
	// The §VII candidate filter only applies to weighted datasets; gate it
	// once here, mirroring what the batch counting phase does per build.
	// (Binaryness is assessed at construction: a binary dataset that later
	// gains weighted ratings keeps the filter disabled.)
	if eo.MinRating > 0 && d.Binary() {
		eo.MinRating = 0
	}
	m := &Maintainer{
		d:     d,
		opts:  eo,
		heaps: res.Heaps,
		sets:  rcs.NewSets(d.NumUsers()),
		dirty: make(map[uint32]struct{}),
		run: runstats.Run{
			Algorithm: "kiff-maintain",
			NumUsers:  d.NumUsers(),
			K:         eo.K,
		},
	}
	m.bindMetric()
	m.publish()
	return m, nil
}

// NewMaintainerFromGraph wraps an already-built graph — typically one
// loaded from a checkpoint with LoadGraph or LoadGraphMapped — in a
// Maintainer without re-running construction: the cold start of a serving
// process that must also accept writes. The neighborhood heaps are seeded
// from the graph's edge lists in O(|U|·k); candidate sets are recomputed
// lazily, per user, as mutations touch them.
//
// The graph must cover exactly the dataset's users and match Options.K
// (K = 0 adopts the graph's k). The dataset is retained and mutated like
// in NewMaintainer; the graph itself is only read during seeding, so a
// mapped graph may be closed once NewMaintainerFromGraph returns. The
// first published Snapshot serves an exported copy of the seeded heaps,
// which is edge-for-edge identical to the input graph.
func NewMaintainerFromGraph(d *Dataset, g *Graph, opts Options) (*Maintainer, error) {
	if opts.Algorithm != "" && opts.Algorithm != KIFF {
		return nil, fmt.Errorf("kiff: Maintainer requires the kiff algorithm, got %q", opts.Algorithm)
	}
	if g.NumUsers() != d.NumUsers() {
		return nil, fmt.Errorf("kiff: graph covers %d users, dataset has %d (was the graph saved from a different dataset?)",
			g.NumUsers(), d.NumUsers())
	}
	if opts.K == 0 {
		opts.K = g.K()
	}
	if opts.K != g.K() {
		return nil, fmt.Errorf("kiff: Options.K = %d, graph was built with k = %d", opts.K, g.K())
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("kiff: K must be ≥ 1, got %d", opts.K)
	}
	if math.IsNaN(opts.Beta) {
		return nil, fmt.Errorf("kiff: Beta must not be NaN")
	}
	eo, err := opts.engineOptions()
	if err != nil {
		return nil, err
	}
	b, err := engine.Lookup(string(KIFF))
	if err != nil {
		return nil, err
	}
	if err := b.Normalize(&eo); err != nil {
		return nil, err
	}
	// Same §VII gate as NewMaintainer: the positive-rating candidate
	// filter only applies to weighted datasets.
	if eo.MinRating > 0 && d.Binary() {
		eo.MinRating = 0
	}
	d.EnsureItemProfiles()
	n := d.NumUsers()
	heaps := knnheap.NewSet(n, eo.K)
	for u := 0; u < n; u++ {
		for _, nb := range g.Neighbors(uint32(u)) {
			heaps.Update(uint32(u), nb.ID, nb.Sim)
		}
	}
	m := &Maintainer{
		d:     d,
		opts:  eo,
		heaps: heaps,
		sets:  rcs.NewSets(n),
		dirty: make(map[uint32]struct{}),
		run: runstats.Run{
			Algorithm: "kiff-maintain",
			NumUsers:  n,
			K:         eo.K,
		},
	}
	m.bindMetric()
	m.publish()
	return m, nil
}

// publish freezes the current graph and dataset into a new Snapshot and
// swaps it in atomically. Writer-only.
//
// The first publication exports the full graph (FromSet) and arms the
// heap set's dirty tracking; every later publication drains the dirty
// user set and patches the previous snapshot's graph page-by-page
// (knngraph.PatchFrom), while the dataset view likewise shares clean
// header pages with its predecessor — O(dirty pages) instead of
// O(|U|·k + |I|). Patching always starts from the previously published
// (heap-built) graph, never from a mapped one, so published pages never
// alias file-backed memory.
func (m *Maintainer) publish() {
	start := time.Now()
	m.version++
	var g *knngraph.Graph
	var st knngraph.PatchStats
	if prev := m.snap.Load(); prev != nil {
		m.scratch = m.heaps.DrainDirty(m.scratch[:0])
		g, st = knngraph.PatchFrom(prev.graph, m.heaps, m.scratch)
	} else {
		g = knngraph.FromSet(m.heaps)
		st = knngraph.PatchStats{PagesCopied: g.NumPages(), EntriesCopied: g.NumEdges()}
		m.heaps.TrackDirty()
	}
	view := m.d.View()
	vc, vs := m.d.LastViewStats()
	m.snap.Store(newSnapshot(m.version, g, view, m.opts.Metric))
	ns := time.Since(start).Nanoseconds()
	m.publishes++
	m.pagesCopied += int64(st.PagesCopied + vc)
	m.pagesShared += int64(st.PagesShared + vs)
	m.publishNs += ns
	m.lastPublishNs = ns
}

// Snapshot returns the most recently published immutable view. It is
// safe to call from any goroutine at any time; the returned Snapshot
// stays valid (and internally consistent) forever, even as the writer
// publishes newer ones.
func (m *Maintainer) Snapshot() *Snapshot { return m.snap.Load() }

// rcsOpts maps the maintenance options onto the counting-phase options.
func (m *Maintainer) rcsOpts() rcs.BuildOptions {
	return rcs.BuildOptions{MinRating: m.opts.MinRating}
}

// bindMetric establishes the incremental similarity binding when the
// metric supports one: IncrementalBatch metrics bind the pairwise
// function and the one-vs-many factory over shared refreshable state;
// plain Incremental metrics bind the pairwise side only. Metrics with
// neither (Adamic–Adar) stay unbound and are fully re-prepared by
// simFunc after each mutation batch.
func (m *Maintainer) bindMetric() {
	switch inc := m.opts.Metric.(type) {
	case similarity.IncrementalBatch:
		fn, batch, refresh := inc.PrepareIncrementalBatch(m.d)
		m.sim = similarity.Counted(fn, &m.evals)
		m.batch = similarity.CountedBatch(batch, &m.evals)
		m.refresh = refresh
		m.simOK = true
	case similarity.Incremental:
		fn, refresh := inc.PrepareIncremental(m.d)
		m.sim = similarity.Counted(fn, &m.evals)
		m.refresh = refresh
		m.simOK = true
	}
}

// simFunc returns the prepared, evaluation-counted similarity function.
// Incremental metrics were bound once at construction and are patched
// per mutation via refresh; for the rest (Adamic–Adar), a mutation marks
// the binding stale and this re-prepares in full — prepared metrics
// capture profile slices and precomputed state that mutations invalidate.
func (m *Maintainer) simFunc() similarity.Func {
	if !m.simOK {
		m.sim = similarity.Counted(m.opts.Metric.Prepare(m.d), &m.evals)
		if bm, ok := m.opts.Metric.(similarity.BatchMetric); ok {
			m.batch = similarity.CountedBatch(bm.PrepareBatch(m.d), &m.evals)
			m.kernel = nil // minted over the stale binding; remint lazily
		}
		m.simOK = true
	}
	return m.sim
}

// batcher returns the single-writer one-vs-many kernel over the current
// binding, minting it lazily (and re-minting after full re-preparations).
func (m *Maintainer) batcher() similarity.Batcher {
	m.simFunc()
	if m.batch == nil {
		return similarity.PairwiseBatcher(m.sim)
	}
	if m.kernel == nil {
		m.kernel = m.batch()
	}
	return m.kernel
}

// noteMutation updates the similarity binding after user u's profile
// changed (or u was appended).
func (m *Maintainer) noteMutation(u uint32) {
	if m.refresh != nil {
		m.refresh(u)
		return
	}
	m.simOK = false
}

// Insert appends a new user with the given profile, splices it into the
// graph, and returns its ID. Only the new user's ranked candidates are
// evaluated; see the type comment for the cost model.
func (m *Maintainer) Insert(p Profile) (uint32, error) {
	if err := m.walGuard(); err != nil {
		return 0, err
	}
	if m.wlog != nil {
		// Validate before logging: a logged record must be applicable, or
		// replay would diverge from the state the caller observed.
		if err := p.Validate(); err != nil {
			return 0, fmt.Errorf("dataset: add user: %w", err)
		}
		if err := m.logMutation(wal.Record{Kind: wal.KindAddUser, Items: p.IDs, Weights: p.Weights}); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	id, err := m.d.AddUser(p)
	if err != nil {
		return 0, err
	}
	m.heaps.Grow(1)
	m.sets.PatchUser(m.d, id, m.rcsOpts())
	m.noteMutation(id)
	m.refineUser(id)
	m.inserts++
	m.run.NumUsers = m.d.NumUsers()
	m.run.WallTime += time.Since(start)
	m.publish()
	return id, nil
}

// InsertBatch inserts a batch of users, growing the neighborhood heaps
// once and publishing a single snapshot at the end. Publication costs
// O(dirty pages) — the pages holding the batch's users and the
// neighborhoods it displaced — so batching amortizes the per-user arena
// growth and folds the batch's page overlap into one publish. Profiles
// are validated up front; on a validation error nothing is mutated.
func (m *Maintainer) InsertBatch(ps []Profile) ([]uint32, error) {
	if err := m.walGuard(); err != nil {
		return nil, err
	}
	start := time.Now()
	for i := range ps {
		if err := ps[i].Validate(); err != nil {
			return nil, fmt.Errorf("kiff: insert batch: profile %d: %w", i, err)
		}
	}
	if m.wlog != nil {
		// All records land before any profile is applied. A mid-batch
		// append failure fail-stops the maintainer with some records logged
		// but unapplied; replay after restart applies them (at-least-once —
		// the caller was never acknowledged), so log and state re-converge.
		for i := range ps {
			if err := m.logMutation(wal.Record{Kind: wal.KindAddUser, Items: ps[i].IDs, Weights: ps[i].Weights}); err != nil {
				return nil, fmt.Errorf("kiff: insert batch: profile %d: %w", i, err)
			}
		}
	}
	m.heaps.Grow(len(ps))
	ids := make([]uint32, 0, len(ps))
	for _, p := range ps {
		// AddUser re-validates; validation is its only error path, so it
		// cannot fail on the pre-checked profiles above.
		id, err := m.d.AddUser(p)
		if err != nil {
			return ids, fmt.Errorf("kiff: insert batch: %w", err)
		}
		m.sets.PatchUser(m.d, id, m.rcsOpts())
		m.noteMutation(id)
		m.refineUser(id)
		m.inserts++
		ids = append(ids, id)
	}
	m.run.NumUsers = m.d.NumUsers()
	m.run.WallTime += time.Since(start)
	m.publish()
	return ids, nil
}

// AddRating records a rating change for an existing user and marks the
// user dirty. The graph is not touched until Rebuild runs; batching many
// rating updates before one Rebuild amortizes the refresh.
func (m *Maintainer) AddRating(u uint32, item uint32, rating float64) error {
	if err := m.walGuard(); err != nil {
		return err
	}
	if m.wlog != nil {
		if int(u) >= m.d.NumUsers() {
			// Out of range: skip the log and let the dataset produce its
			// canonical error — nothing will be applied either way.
			return m.d.AddRating(u, item, rating)
		}
		if err := m.logMutation(wal.Record{Kind: wal.KindAddRating, User: u, Item: item, Rating: rating}); err != nil {
			return err
		}
	}
	if err := m.d.AddRating(u, item, rating); err != nil {
		return err
	}
	m.noteMutation(u)
	m.dirty[u] = struct{}{}
	return nil
}

// Dirty lists the users whose profiles changed since the last Rebuild,
// in ascending order.
func (m *Maintainer) Dirty() []uint32 {
	out := make([]uint32, 0, len(m.dirty))
	for u := range m.dirty {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rebuild refreshes the neighborhoods of the given users (nil = every
// user currently marked dirty): their candidate sets are recomputed
// against the updated profiles, their own neighborhoods are rebuilt from
// scratch, and stale references to them are evicted from every other
// user's heap before the fresh similarities are offered back. The
// eviction pass scans all heaps (O(|U|·k) ID comparisons); the similarity
// work is bounded by the rebuilt users' candidate sets.
func (m *Maintainer) Rebuild(dirty []uint32) error {
	if err := m.walGuard(); err != nil {
		return err
	}
	start := time.Now()
	logAll := dirty == nil
	if dirty == nil {
		dirty = m.Dirty()
	}
	n := m.d.NumUsers()
	targets := make(map[uint32]struct{}, len(dirty))
	for _, u := range dirty {
		if int(u) >= n {
			return fmt.Errorf("kiff: Rebuild: user %d out of range (have %d users)", u, n)
		}
		targets[u] = struct{}{}
	}
	if len(targets) == 0 {
		return nil
	}
	if m.wlog != nil {
		// Rebuild boundaries are state-bearing (see wal.KindRebuild), so
		// they are logged like any mutation. A nil argument is logged as
		// All: replay resolves it against the dirty set the replayed
		// AddRating records rebuilt, which matches the live resolution.
		rec := wal.Record{Kind: wal.KindRebuild, All: logAll}
		if !logAll {
			rec.Dirty = dirty
		}
		if err := m.logMutation(rec); err != nil {
			return err
		}
	}
	// Iterate targets in ascending ID order: refineUser offers
	// similarities into shared heaps, so iteration order is visible in
	// tie-broken neighborhoods — map order would make Rebuild
	// nondeterministic across runs (and across a WAL replay).
	order := make([]uint32, 0, len(targets))
	for u := range targets {
		order = append(order, u)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, u := range order {
		m.sets.PatchUser(m.d, u, m.rcsOpts())
		m.heaps.Clear(u)
	}
	// Evict stale entries: any surviving heap reference to a rebuilt user
	// carries a pre-mutation similarity. Fresh values are re-offered by
	// refineUser below (a rebuilt user's candidate list contains every
	// user it still overlaps).
	for v := 0; v < n; v++ {
		if _, rebuilt := targets[uint32(v)]; rebuilt {
			continue
		}
		m.scratch = m.heaps.IDs(m.scratch[:0], uint32(v))
		for _, id := range m.scratch {
			if _, rebuilt := targets[id]; rebuilt {
				m.heaps.Remove(uint32(v), id)
			}
		}
	}
	for _, u := range order {
		m.refineUser(u)
		delete(m.dirty, u)
	}
	m.rebuilds++
	m.rebuiltUsers += int64(len(targets))
	m.run.WallTime += time.Since(start)
	m.publish()
	return nil
}

// refineUser runs KIFF's refinement loop for a single user: pop the top γ
// untried candidates, score the whole chunk with the one-vs-many kernel
// (u's profile scattered once per chunk), update both endpoints' heaps;
// stop on exhaustion or — in approximate mode — when a full chunk changes
// nothing (the per-user analogue of the β threshold: ranked order means
// later candidates are ever less likely to displace anything).
func (m *Maintainer) refineUser(u uint32) {
	kernel := m.batcher()
	for iter := 0; ; iter++ {
		cs := m.sets.TopPop(u, m.opts.Gamma)
		if len(cs) == 0 {
			break
		}
		if cap(m.scores) < len(cs) {
			m.scores = make([]float64, len(cs))
		}
		scores := m.scores[:len(cs)]
		kernel.ScoreInto(scores, u, cs)
		var changes int64
		for i, v := range cs {
			changes += int64(m.heaps.Update(u, v, scores[i]))
			changes += int64(m.heaps.Update(v, u, scores[i]))
		}
		// Only aggregate counters: a long-lived maintainer must not grow
		// per-chunk traces (UpdatesPerIter etc.) without bound.
		m.run.Iterations++
		if m.opts.Beta >= 0 && changes == 0 {
			break
		}
	}
}

// Graph snapshots the current maintained KNN graph.
func (m *Maintainer) Graph() *Graph { return knngraph.FromSet(m.heaps) }

// Dataset returns the maintained dataset. Mutate it only through the
// Maintainer (Insert, AddRating), or the graph will go silently stale.
func (m *Maintainer) Dataset() *Dataset { return m.d }

// Stats returns the cumulative cost record of the maintenance operations
// (Insert, Rebuild) since NewMaintainer — the cold build's own costs are
// not included. SimEvals is the headline number: it is what a full
// rebuild would multiply.
func (m *Maintainer) Stats() Run {
	r := m.run
	r.SimEvals = m.evals.Load()
	return r
}

// Counters are the cumulative maintenance counters since the Maintainer
// was created — the serving-time cost observables: how many users were
// spliced in, how many rebuild passes ran (and over how many users), and
// the similarity evaluations all of it spent. The type lives in
// internal/runstats so aggregation layers (the shard pool, /stats) can
// share it; see runstats.Counters for the field documentation.
type Counters = runstats.Counters

// Counters returns the cumulative maintenance counters. Like Stats, it
// must be called from the writer side (or after mutations quiesce).
func (m *Maintainer) Counters() Counters {
	return Counters{
		SimEvals:      m.evals.Load(),
		Inserts:       m.inserts,
		Rebuilds:      m.rebuilds,
		RebuiltUsers:  m.rebuiltUsers,
		Publishes:     m.publishes,
		PagesCopied:   m.pagesCopied,
		PagesShared:   m.pagesShared,
		PublishNs:     m.publishNs,
		LastPublishNs: m.lastPublishNs,
	}
}
