package kiff

// Property tests for copy-on-write snapshot publication: after an
// arbitrary seeded interleaving of Insert / AddRating / Rebuild, the
// incrementally patched snapshot must be indistinguishable — member for
// member, byte for byte — from a from-scratch export of the live state,
// and snapshots published earlier must stay bit-stable while later
// publications keep patching around them.

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/shard"
)

// profilesEqual compares two profiles entry for entry (weights included).
func profilesEqual(a, b Profile) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] || a.Weight(i) != b.Weight(i) {
			return false
		}
	}
	return true
}

// graphBytes serializes a graph in the KFG1 binary format.
func graphBytes(t testing.TB, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// checkSnapshotMatchesScratch asserts that the published snapshot equals
// a from-scratch export of the maintainer's live state: identical KFG1
// bytes (which pins neighbor membership, order and similarity bits) and
// identical query answers through the snapshot's O(1) view index versus
// a fresh index over the live dataset.
func checkSnapshotMatchesScratch(t *testing.T, m *Maintainer, opts Options, rng *rand.Rand, items int) {
	t.Helper()
	// Quiesce: ratings recorded since the last publication are not in any
	// snapshot yet by design — Rebuild publishes them (no-op when clean).
	if err := m.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	got := graphBytes(t, s.Graph())
	want := graphBytes(t, m.Graph()) // fresh flat FromSet export
	if !bytes.Equal(got, want) {
		t.Fatalf("version %d: patched snapshot graph bytes diverge from from-scratch export (%d vs %d bytes)",
			s.Version(), len(got), len(want))
	}
	view := s.Dataset()
	if err := view.Validate(); err != nil {
		t.Fatalf("version %d: snapshot view invalid: %v", s.Version(), err)
	}
	live := m.Dataset()
	if view.NumUsers() != live.NumUsers() || view.NumItems() != live.NumItems() {
		t.Fatalf("version %d: view covers %d users / %d items, live has %d / %d",
			s.Version(), view.NumUsers(), view.NumItems(), live.NumUsers(), live.NumItems())
	}
	for i := 0; i < 16; i++ {
		u := uint32(rng.Intn(live.NumUsers()))
		if !profilesEqual(view.User(u), live.Users[u]) {
			t.Fatalf("version %d: view profile of user %d diverges from live", s.Version(), u)
		}
	}
	q := randomProfile(rng, items)
	gotRes, err := s.Query(q, 5, -1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(live, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := ix.Query(q, 5, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRes) != len(wantRes) {
		t.Fatalf("version %d: snapshot query returned %d results, fresh index %d", s.Version(), len(gotRes), len(wantRes))
	}
	for i := range wantRes {
		if gotRes[i].ID != wantRes[i].ID || gotRes[i].Sim != wantRes[i].Sim {
			t.Fatalf("version %d: query result %d: snapshot %v, fresh index %v", s.Version(), i, gotRes[i], wantRes[i])
		}
	}
}

// TestCOWMutationStream drives a seeded random mutation stream through a
// single Maintainer across several metrics (including the non-incremental
// adamic-adar, which exercises the full re-preparation fallback) and
// checks every published snapshot against a from-scratch export, while a
// concurrent reader hammers the publication pointer (the -race target of
// CI's race job). A mid-stream snapshot is pinned and must stay
// bit-identical after every later publication.
func TestCOWMutationStream(t *testing.T) {
	cases := []struct {
		seed   int64
		metric string
	}{
		{seed: 1, metric: "cosine"},
		{seed: 7, metric: "jaccard"},
		{seed: 42, metric: "adamic-adar"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.metric, func(t *testing.T) {
			const items = 60
			opts := Options{K: 5, Metric: tc.metric}
			rng := rand.New(rand.NewSource(tc.seed))
			profiles := make([]Profile, 100) // > one 64-user page
			for u := range profiles {
				profiles[u] = randomProfile(rng, items)
			}
			d, err := NewDataset("cowfix", profiles, items)
			if err != nil {
				t.Fatal(err)
			}
			m, err := NewMaintainer(d, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Concurrent snapshot readers: publication must never tear.
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(tc.seed + 1000))
				for {
					select {
					case <-done:
						return
					default:
					}
					s := m.Snapshot()
					n := s.NumUsers()
					u := uint32(r.Intn(n))
					for _, nb := range s.Neighbors(u) {
						if int(nb.ID) >= n || math.IsNaN(nb.Sim) {
							t.Errorf("reader: bad edge %d→%d (%v)", u, nb.ID, nb.Sim)
							return
						}
					}
					if _, err := s.Query(randomProfile(r, items), 3, 32); err != nil {
						t.Errorf("reader: query: %v", err)
						return
					}
				}
			}()

			var pinned *Snapshot
			var pinnedBytes []byte
			for step := 0; step < 60; step++ {
				switch rng.Intn(4) {
				case 0:
					if _, err := m.Insert(randomProfile(rng, items)); err != nil {
						t.Fatal(err)
					}
				case 1, 2:
					u := uint32(rng.Intn(m.Dataset().NumUsers()))
					if err := m.AddRating(u, uint32(rng.Intn(items)), float64(1+rng.Intn(5))); err != nil {
						t.Fatal(err)
					}
				case 3:
					if err := m.Rebuild(nil); err != nil {
						t.Fatal(err)
					}
				}
				if step%7 == 0 {
					checkSnapshotMatchesScratch(t, m, opts, rng, items)
				}
				if step == 20 {
					pinned = m.Snapshot()
					pinnedBytes = graphBytes(t, pinned.Graph())
				}
			}
			if err := m.Rebuild(nil); err != nil {
				t.Fatal(err)
			}
			checkSnapshotMatchesScratch(t, m, opts, rng, items)
			close(done)
			wg.Wait()

			// The pinned mid-stream snapshot must be untouched by the 40
			// publications that patched around it.
			if !bytes.Equal(pinnedBytes, graphBytes(t, pinned.Graph())) {
				t.Fatal("pinned snapshot's graph bytes changed after later publications")
			}
			if err := pinned.Dataset().Validate(); err != nil {
				t.Fatalf("pinned snapshot's view became invalid: %v", err)
			}
		})
	}
}

// TestCOWMutationStreamPool runs the same property over a 4-shard pool
// assembled from individually held maintainers: after a seeded stream of
// pool-level Insert / AddRating / Rebuild, every shard's published
// snapshot must be byte-identical to that shard's from-scratch export,
// and the pool view must serve the live profiles.
func TestCOWMutationStreamPool(t *testing.T) {
	const (
		shards = 4
		items  = 60
	)
	opts := Options{K: 5}
	rng := rand.New(rand.NewSource(99))

	base := make([]Profile, 90)
	for u := range base {
		base[u] = randomProfile(rng, items)
	}
	parts := make([][]Profile, shards)
	for g, p := range base {
		s := shard.Owner(uint32(g), shards)
		parts[s] = append(parts[s], p)
	}
	ms := make([]*Maintainer, shards)
	pm := make([]shard.Maintainer, shards)
	for s := 0; s < shards; s++ {
		sd, err := dataset.New("cowpool", parts[s], items)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMaintainer(sd, opts)
		if err != nil {
			t.Fatal(err)
		}
		ms[s] = m
		pm[s] = maintainerShard{m}
	}
	pool, err := shard.NewPool(pm, len(base))
	if err != nil {
		t.Fatal(err)
	}

	checkShards := func() {
		t.Helper()
		for s, m := range ms {
			got := graphBytes(t, m.Snapshot().Graph())
			want := graphBytes(t, m.Graph())
			if !bytes.Equal(got, want) {
				t.Fatalf("shard %d: patched snapshot diverges from from-scratch export", s)
			}
			if err := m.Snapshot().Dataset().Validate(); err != nil {
				t.Fatalf("shard %d: snapshot view invalid: %v", s, err)
			}
		}
	}

	checkShards()
	for step := 0; step < 40; step++ {
		switch rng.Intn(4) {
		case 0:
			if _, err := pool.Insert(randomProfile(rng, items)); err != nil {
				t.Fatal(err)
			}
		case 1, 2:
			g := uint32(rng.Intn(pool.NumUsers()))
			if err := pool.AddRating(g, uint32(rng.Intn(items)), float64(1+rng.Intn(5))); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := pool.Rebuild(nil); err != nil {
				t.Fatal(err)
			}
		}
		if step%5 == 0 {
			checkShards()
		}
	}
	if err := pool.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	checkShards()

	// The pinned pool view serves the shards' live profiles.
	v := pool.View()
	for g := 0; g < pool.NumUsers(); g++ {
		p, ok := v.Profile(uint32(g))
		if !ok {
			t.Fatalf("user %d missing from pool view", g)
		}
		if p.Len() == 0 {
			t.Fatalf("user %d: empty profile from pool view", g)
		}
	}

	// Publication counters reflect copy-on-write: pages were shared.
	c := pool.Counters()
	if c.Publishes == 0 || c.PagesShared == 0 {
		t.Fatalf("pool counters show no COW activity: %+v", c)
	}
}
