package kiff_test

import (
	"fmt"
	"strings"

	"kiff"
)

// ExampleBuild constructs the KNN graph of the paper's Figure 2 toy
// dataset: Alice and Bob share coffee; Carl and Dave share shopping.
func ExampleBuild() {
	ds, users, _ := kiff.Toy()
	res, err := kiff.Build(ds, kiff.Options{K: 1})
	if err != nil {
		panic(err)
	}
	for u := range users {
		for _, nb := range res.Graph.Neighbors(uint32(u)) {
			fmt.Printf("%s -> %s (%.2f)\n", users[u], users[nb.ID], nb.Sim)
		}
	}
	// Output:
	// Alice -> Bob (0.50)
	// Bob -> Alice (0.50)
	// Carl -> Dave (1.00)
	// Dave -> Carl (1.00)
}

// ExampleLoad parses a whitespace-separated edge list and reports the
// dataset shape.
func ExampleLoad() {
	edges := `
# user item rating
alice book 1
alice coffee 1
bob coffee 1
bob cheese 1
`
	ds, err := kiff.Load(strings.NewReader(edges), kiff.LoadOptions{Name: "pantry"})
	if err != nil {
		panic(err)
	}
	fmt.Println(ds.NumUsers(), ds.NumItems(), ds.NumRatings())
	// Output: 2 3 4
}

// ExampleRecall scores an approximation against exact ground truth.
func ExampleRecall() {
	ds, _, _ := kiff.Toy()
	res, err := kiff.Build(ds, kiff.Options{K: 1})
	if err != nil {
		panic(err)
	}
	recall, err := kiff.Recall(ds, res.Graph, kiff.Options{K: 1}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", recall)
	// Output: 1.00
}

// ExampleBuild_exhaustive shows the γ=∞ mode of paper §III-D: exhausting
// the ranked candidate sets yields the exact KNN graph.
func ExampleBuild_exhaustive() {
	ds, _, _ := kiff.Toy()
	res, err := kiff.Build(ds, kiff.Options{K: 1, Gamma: -1})
	if err != nil {
		panic(err)
	}
	recall, err := kiff.Recall(ds, res.Graph, kiff.Options{K: 1}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("iterations=%d recall=%.2f\n", res.Run.Iterations, recall)
	// Output: iterations=2 recall=1.00
}
