// Recommender: the workload that motivates the paper's introduction —
// user-based collaborative filtering on a movie-rating dataset.
//
// The program generates a MovieLens-style dataset, builds the user KNN
// graph with KIFF, and recommends unseen movies to a few users by
// aggregating their neighbors' ratings weighted by neighbor similarity
// (the classical user-based CF scoring rule).
package main

import (
	"fmt"
	"log"
	"sort"

	"kiff"
)

func main() {
	ds, err := kiff.GenerateMovieLens(0.1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s\n", ds.Stats())

	const k = 15
	res, err := kiff.Build(ds, kiff.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built user KNN (k=%d) in %v — %d similarity evaluations, scan rate %.2f%%\n\n",
		k, res.Run.WallTime, res.Run.SimEvals, 100*res.Run.ScanRate())

	for _, user := range []uint32{0, 7, 42} {
		recs := recommend(ds, res.Graph, user, 5)
		fmt.Printf("user %d (rated %d movies) — top recommendations:\n", user, ds.Users[user].Len())
		for _, r := range recs {
			fmt.Printf("  movie %-6d predicted %.2f stars (from %d neighbors)\n", r.item, r.score, r.votes)
		}
		fmt.Println()
	}
}

type rec struct {
	item  uint32
	score float64
	votes int
}

// recommend scores every movie the user has not rated by the
// similarity-weighted mean of the neighbors' ratings and returns the top n.
func recommend(ds *kiff.Dataset, g *kiff.Graph, user uint32, n int) []rec {
	type acc struct {
		weighted float64
		weight   float64
		votes    int
	}
	scores := make(map[uint32]*acc)
	for _, nb := range g.Neighbors(user) {
		if nb.Sim <= 0 {
			continue
		}
		profile := ds.Users[nb.ID]
		for i, item := range profile.IDs {
			if ds.Users[user].Contains(item) {
				continue // already rated
			}
			a := scores[item]
			if a == nil {
				a = &acc{}
				scores[item] = a
			}
			a.weighted += nb.Sim * profile.Weight(i)
			a.weight += nb.Sim
			a.votes++
		}
	}
	recs := make([]rec, 0, len(scores))
	for item, a := range scores {
		if a.votes < 2 {
			continue // require a minimum of corroboration
		}
		recs = append(recs, rec{item: item, score: a.weighted / a.weight, votes: a.votes})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].score != recs[j].score {
			return recs[i].score > recs[j].score
		}
		if recs[i].votes != recs[j].votes {
			return recs[i].votes > recs[j].votes
		}
		return recs[i].item < recs[j].item
	})
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}
