// Baselines: a side-by-side run of KIFF, NN-Descent and HyRec on the same
// sparse dataset — a miniature of the paper's Table II.
package main

import (
	"fmt"
	"log"

	"kiff"
)

func main() {
	ds, err := kiff.GeneratePreset("wikipedia", 0.1, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s\n\n", ds.Stats())

	const k = 20
	fmt.Printf("%-12s %8s %12s %12s %10s %7s\n",
		"approach", "recall", "wall-time", "sim evals", "scanrate", "iters")
	for _, algo := range []kiff.Algorithm{kiff.KIFF, kiff.NNDescent, kiff.HyRec} {
		res, err := kiff.Build(ds, kiff.Options{K: k, Algorithm: algo, Seed: 5})
		if err != nil {
			log.Fatal(err)
		}
		recall, err := kiff.Recall(ds, res.Graph, kiff.Options{K: k}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.3f %12v %12d %9.2f%% %7d\n",
			algo, recall, res.Run.WallTime, res.Run.SimEvals,
			100*res.Run.ScanRate(), res.Run.Iterations)
	}
	fmt.Println("\n(the paper's Table II shape: KIFF reaches the best recall with the")
	fmt.Println(" smallest scan rate and wall time on sparse datasets)")
}
