// Classifier: k-nearest-neighbor classification over a user-item dataset
// using the query index — the classification workload the paper's
// introduction cites as a primary KNN application.
//
// The program synthesizes a two-topic population: every user mostly rates
// items from their own topic's half of the catalogue. The topic is the
// ground-truth label. A fresh batch of unlabeled profiles is then
// classified by majority vote among their k nearest indexed users, and
// accuracy is reported against the generating topic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kiff"
)

const (
	numItems    = 400
	numTrain    = 1200
	numTest     = 200
	profileSize = 12
	k           = 9
	// noise: probability of rating an item from the other topic.
	noise = 0.25
)

func main() {
	rng := rand.New(rand.NewSource(17))

	// ---- Training population with latent topic labels ------------------
	labels := make([]int, numTrain)
	profiles := make([]kiff.Profile, numTrain)
	for u := range profiles {
		labels[u] = u % 2
		profiles[u] = drawProfile(rng, labels[u])
	}
	ds, err := kiff.NewDataset("topics", profiles, numItems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training data: %s\n", ds.Stats())

	ix, err := kiff.NewIndex(ds, kiff.Options{Metric: "cosine"})
	if err != nil {
		log.Fatal(err)
	}

	// ---- Classify held-out profiles ------------------------------------
	correct, abstained := 0, 0
	for i := 0; i < numTest; i++ {
		truth := i % 2
		profile := drawProfile(rng, truth)
		neighbors, err := ix.Query(profile, k, 4*k)
		if err != nil {
			log.Fatal(err)
		}
		if len(neighbors) == 0 {
			abstained++
			continue
		}
		votes := [2]float64{}
		for _, nb := range neighbors {
			votes[labels[nb.ID]] += nb.Sim // similarity-weighted vote
		}
		pred := 0
		if votes[1] > votes[0] {
			pred = 1
		}
		if pred == truth {
			correct++
		}
	}
	decided := numTest - abstained
	fmt.Printf("classified %d profiles (%d abstained)\n", decided, abstained)
	fmt.Printf("accuracy: %.1f%% (chance: 50%%)\n", 100*float64(correct)/float64(decided))
}

// drawProfile samples a binary profile whose items come from the label's
// half of the catalogue with probability 1-noise.
func drawProfile(rng *rand.Rand, label int) kiff.Profile {
	m := make(map[uint32]float64, profileSize)
	half := numItems / 2
	for len(m) < profileSize {
		topic := label
		if rng.Float64() < noise {
			topic = 1 - label
		}
		m[uint32(topic*half+rng.Intn(half))] = 1
	}
	return kiff.ProfileFromMap(m, true)
}
