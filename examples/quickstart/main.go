// Quickstart: build a KNN graph over the paper's Figure 2 toy dataset and
// over a small synthetic dataset, using the public kiff API.
package main

import (
	"fmt"
	"log"

	"kiff"
)

func main() {
	// --- The paper's running example -----------------------------------
	// Alice likes {book, coffee}, Bob {coffee, cheese}, Carl and Dave both
	// like {shopping}. KIFF only ever compares users that share an item.
	toy, users, items := kiff.Toy()
	fmt.Printf("toy dataset: %d users, %d items (%v)\n", toy.NumUsers(), toy.NumItems(), items)

	res, err := kiff.Build(toy, kiff.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	for u, name := range users {
		fmt.Printf("  %-6s ->", name)
		for _, nb := range res.Graph.Neighbors(uint32(u)) {
			fmt.Printf(" %s (%.2f)", users[nb.ID], nb.Sim)
		}
		fmt.Println()
	}

	// --- A larger synthetic dataset ------------------------------------
	ds, err := kiff.GeneratePreset("wikipedia", 0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthetic dataset: %s\n", ds.Stats())

	res, err = kiff.Build(ds, kiff.Options{K: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KIFF built the k=10 graph in %v with %d similarity evaluations (scan rate %.2f%%)\n",
		res.Run.WallTime, res.Run.SimEvals, 100*res.Run.ScanRate())

	recall, err := kiff.Recall(ds, res.Graph, kiff.Options{K: 10}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recall vs exhaustive ground truth: %.3f\n", recall)
}
