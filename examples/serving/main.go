// Serving: the full build-once/serve-many lifecycle against the HTTP
// API. The example builds a graph over a synthetic dataset, saves the
// checkpoint pair, mmap-loads it back the way a serving process would,
// starts the HTTP front-end in-process, and exercises every endpoint —
// health, neighbor lookups, profile queries, item recommendations, user
// inserts and rating updates — over real HTTP.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	"kiff"
	"kiff/internal/server"
)

func main() {
	// --- Build and persist the checkpoint pair --------------------------
	ds, err := kiff.GeneratePreset("wikipedia", 0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s\n", ds.Stats())

	res, err := kiff.Build(ds, kiff.Options{K: 10})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "kiff-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	gpath := filepath.Join(dir, "graph.kfg")
	dpath := filepath.Join(dir, "data.kfd")
	if err := kiff.SaveGraph(gpath, res.Graph); err != nil {
		log.Fatal(err)
	}
	if err := kiff.SaveDataset(dpath, ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoints saved: %s, %s\n", gpath, dpath)

	// --- Load the way a serving process does: mmap, zero-copy -----------
	mg, err := kiff.LoadGraphMapped(gpath)
	if err != nil {
		log.Fatal(err)
	}
	md, err := kiff.LoadDatasetMapped(dpath)
	if err != nil {
		log.Fatal(err)
	}
	defer md.Close()
	fmt.Printf("mapped load: graph mmap=%v, dataset mmap=%v\n", mg.Mapped(), md.Mapped())

	m, err := kiff.NewMaintainerFromGraph(md.Dataset(), mg.Graph(), kiff.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mg.Close() // heap seeding done; the maintainer owns its own state

	// --- Serve ----------------------------------------------------------
	srv, err := server.New(server.Config{Maintainer: m, QueryBudget: 20})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("serving on %s\n\n", ts.URL)

	show := func(label, method, path string, body any) map[string]any {
		var rd io.Reader
		if body != nil {
			b, err := json.Marshal(body)
			if err != nil {
				log.Fatal(err)
			}
			rd = bytes.NewReader(b)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %s %s -> %d\n", label, method, path, resp.StatusCode)
		return out
	}

	health := show("liveness", "GET", "/healthz", nil)
	fmt.Printf("    version %v over %v users\n", health["version"], health["users"])

	nbs := show("neighbor lookup", "GET", "/neighbors/42", nil)
	fmt.Printf("    user 42 has %d neighbors\n", len(nbs["neighbors"].([]any)))

	users := show("KNN query", "POST", "/query",
		map[string]any{"profile": map[string]float64{"3": 2, "17": 1, "40": 3}, "k": 5})
	fmt.Printf("    top users: %v\n", users["results"])

	items := show("item recommendation", "POST", "/query",
		map[string]any{"profile": map[string]float64{"3": 2, "17": 1}, "k": 5, "want": "items"})
	fmt.Printf("    top items: %v\n", items["results"])

	ins := show("insert user", "POST", "/users",
		map[string]any{"profile": map[string]float64{"3": 2, "8": 5}})
	fmt.Printf("    new user id %v, snapshot version %v\n", ins["id"], ins["version"])

	rat := show("rating update", "POST", "/ratings",
		map[string]any{"user": 42, "item": 3, "rating": 5})
	fmt.Printf("    applied, snapshot version %v\n", rat["version"])

	// The inserted user is immediately servable.
	id := fmt.Sprintf("%v", ins["id"])
	show("neighbors of new user", "GET", "/neighbors/"+id, nil)

	stats := show("stats", "GET", "/stats", nil)
	fmt.Printf("    queries=%v inserts=%v ratings=%v maintain=%v\n",
		stats["queries"], stats["inserts"], stats["ratings"], stats["maintain"])
}
