// Coauthors: similar-author search on a DBLP-style co-authorship network,
// the sparsest regime in the paper's evaluation and the one where KIFF's
// advantage is largest (×17.3 on DBLP, Table II).
//
// Authors are both the users and the items: each author's profile is the
// set of people they have published with, weighted by the number of
// co-publications. Two authors are "similar" when their collaborator
// circles overlap — the classical academic-social-network query.
package main

import (
	"fmt"
	"log"

	"kiff"
)

func main() {
	// A DBLP-flavored co-authorship network (weighted, symmetric).
	ds, err := kiff.GeneratePreset("dblp", 0.002, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-authorship network: %s\n", ds.Stats())

	const k = 10
	res, err := kiff.Build(ds, kiff.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KIFF: %v, %d similarity evaluations (scan rate %.3f%%), %d iterations\n",
		res.Run.WallTime, res.Run.SimEvals, 100*res.Run.ScanRate(), res.Run.Iterations)

	// Exhaustive construction for contrast — the O(n²) cost KIFF avoids.
	bf, err := kiff.Build(ds, kiff.Options{K: k, Algorithm: kiff.BruteForce})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute force would need %d comparisons; KIFF used %.2f%% of that\n\n",
		int64(ds.NumUsers())*int64(ds.NumUsers()-1)/2,
		100*float64(res.Run.SimEvals)/(float64(ds.NumUsers())*float64(ds.NumUsers()-1)/2))

	// Show the similar-author lists for the most collaborative authors.
	busiest := busiestAuthors(ds, 3)
	for _, a := range busiest {
		fmt.Printf("author %d (%d collaborators) — most similar authors:\n", a, ds.Users[a].Len())
		for i, nb := range res.Graph.Neighbors(a) {
			if i == 5 {
				break
			}
			fmt.Printf("  author %-6d cosine %.3f  (exact rank sim %.3f)\n",
				nb.ID, nb.Sim, exactSim(bf.Graph, a, nb.ID))
		}
		fmt.Println()
	}
}

// busiestAuthors returns the n authors with the largest collaborator sets.
func busiestAuthors(ds *kiff.Dataset, n int) []uint32 {
	best := make([]uint32, 0, n)
	for u := uint32(0); int(u) < ds.NumUsers(); u++ {
		best = append(best, u)
		for i := len(best) - 1; i > 0 && ds.Users[best[i]].Len() > ds.Users[best[i-1]].Len(); i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > n {
			best = best[:n]
		}
	}
	return best
}

// exactSim looks up the similarity the brute-force graph recorded for the
// edge (a, b), or 0 if b is not among a's exact top-k.
func exactSim(g *kiff.Graph, a, b uint32) float64 {
	for _, nb := range g.Neighbors(a) {
		if nb.ID == b {
			return nb.Sim
		}
	}
	return 0
}
