package kiff

import (
	"fmt"
	"path/filepath"

	"kiff/internal/dataset"
	"kiff/internal/parallel"
	"kiff/internal/shard"
	"kiff/internal/wal"
)

// ShardedMaintainer hash-partitions the user population across N
// independent Maintainers and serves scatter-gather reads over their
// snapshots — the single-process sharding layer (see internal/shard for
// the full concurrency and consistency contract).
//
// Reads are lock-free against the shards' published snapshots:
// View().Neighbors routes to the owning shard, View().Query fans out to
// every shard and splices the per-shard top-k with a merge heap — for
// exact (unbudgeted) queries the spliced answer is identical, entry for
// entry, to the single-Maintainer answer over the same data under the
// profile-local metrics (cosine, jaccard, dice, overlap). Writes route
// by owner and run in parallel across shards, so insert- and
// rebuild-heavy workloads scale with the shard count instead of
// serializing through one writer. Save/LoadShardedMaintainer persist and
// recover the pool as per-shard checkpoints plus a manifest.
type ShardedMaintainer = shard.Pool

// maintainerShard adapts *Maintainer to the pool's per-shard interface;
// the only non-promoted method is Reader (Snapshot returns the concrete
// type).
type maintainerShard struct{ *Maintainer }

func (s maintainerShard) Reader() shard.Reader { return s.Snapshot() }

// NewShardedMaintainer partitions the dataset's users across shards
// independent Maintainers (stable hash of the user ID; see shard.Owner)
// and cold-builds each shard's KIFF graph in parallel. Options applies
// to every shard as in NewMaintainer. The input dataset is not retained:
// each shard compacts its partition onto its own arenas, so d remains
// usable (read-only) by the caller.
//
// Global user IDs are the dataset's user IDs; IDs assigned by later
// Insert/InsertBatch calls continue the same sequence.
func NewShardedMaintainer(d *Dataset, shards int, opts Options) (*ShardedMaintainer, error) {
	if shards < 1 || shards > shard.MaxShards {
		return nil, fmt.Errorf("kiff: sharded maintainer needs 1..%d shards, got %d", shard.MaxShards, shards)
	}
	profiles := make([][]Profile, shards)
	for g, p := range d.Users {
		s := shard.Owner(uint32(g), shards)
		profiles[s] = append(profiles[s], p)
	}
	ms := make([]shard.Maintainer, shards)
	g := parallel.NewGroup(shards)
	for s := 0; s < shards; s++ {
		g.Go(func() error {
			sd, err := dataset.New(shardName(d.Name, s, shards), profiles[s], d.NumItems())
			if err != nil {
				return fmt.Errorf("kiff: sharded maintainer: shard %d: %w", s, err)
			}
			sd.EnsureItemProfiles()
			m, err := NewMaintainer(sd, opts)
			if err != nil {
				return fmt.Errorf("kiff: sharded maintainer: shard %d: %w", s, err)
			}
			ms[s] = maintainerShard{m}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return shard.NewPool(ms, d.NumUsers())
}

// LoadShardedMaintainer recovers a pool from a checkpoint directory
// written by ShardedMaintainer.Save: the manifest is validated, every
// shard's graph and dataset are heap-loaded, and each shard is seeded
// with NewMaintainerFromGraph (no reconstruction). Options applies per
// shard as in NewMaintainerFromGraph — in particular K = 0 adopts the
// checkpoint's k, and Metric must match the metric the graphs were
// maintained under for the resumed similarities to stay meaningful.
func LoadShardedMaintainer(dir string, opts Options) (*ShardedMaintainer, error) {
	return loadSharded(dir, opts, func(gpath, dpath string, opts Options) (*Maintainer, error) {
		g, err := LoadGraph(gpath)
		if err != nil {
			return nil, err
		}
		ds, err := LoadDataset(dpath)
		if err != nil {
			return nil, err
		}
		return NewMaintainerFromGraph(ds, g, opts)
	})
}

// LoadShardedMaintainerMapped is LoadShardedMaintainer over the
// zero-copy load path: every shard's graph and dataset are memory-mapped
// (LoadGraphMapped, LoadDatasetMapped). The graph mappings are closed
// once their heaps are seeded; the dataset mappings back the live
// datasets and stay mapped for the life of the process — the cold-start
// mode of a long-lived sharded server (kiffserve -pool honors -mmap
// through this).
func LoadShardedMaintainerMapped(dir string, opts Options) (*ShardedMaintainer, error) {
	return loadSharded(dir, opts, func(gpath, dpath string, opts Options) (*Maintainer, error) {
		mg, err := LoadGraphMapped(gpath)
		if err != nil {
			return nil, err
		}
		md, err := LoadDatasetMapped(dpath)
		if err != nil {
			mg.Close()
			return nil, err
		}
		m, err := NewMaintainerFromGraph(md.Dataset(), mg.Graph(), opts)
		// Seeding reads the graph once; its mapping can go. The dataset
		// mapping must outlive the maintainer and is intentionally left
		// open (reclaimed at process exit).
		if cerr := mg.Close(); err == nil && cerr != nil {
			return nil, cerr
		}
		return m, err
	})
}

// NewShardedMaintainerWAL is NewShardedMaintainer plus per-shard
// write-ahead logging: after each shard's cold build, its log
// (shard.WalFile(i) under walDir) is opened — replaying any surviving
// records on top of the build — and attached, so every subsequent pool
// mutation is logged before it is applied. The cold build itself is not
// logged: it is deterministic in the input dataset, so a restart before
// the first checkpoint re-builds from the same input and replays the
// log on top, converging on the pre-crash state. opts.Sync and
// SyncInterval follow wal.Options; FromLSN must be zero (there is no
// checkpoint to resume from — use LoadShardedMaintainerWAL for that).
func NewShardedMaintainerWAL(d *Dataset, shards int, opts Options, walDir string, wopts wal.Options) (*ShardedMaintainer, error) {
	if wopts.FromLSN != 0 {
		return nil, fmt.Errorf("kiff: sharded maintainer: FromLSN %d without a checkpoint", wopts.FromLSN)
	}
	if shards < 1 || shards > shard.MaxShards {
		return nil, fmt.Errorf("kiff: sharded maintainer needs 1..%d shards, got %d", shard.MaxShards, shards)
	}
	profiles := make([][]Profile, shards)
	for g, p := range d.Users {
		s := shard.Owner(uint32(g), shards)
		profiles[s] = append(profiles[s], p)
	}
	ms := make([]shard.Maintainer, shards)
	replayedInserts := make([]int, shards)
	g := parallel.NewGroup(shards)
	for s := 0; s < shards; s++ {
		g.Go(func() error {
			sd, err := dataset.New(shardName(d.Name, s, shards), profiles[s], d.NumItems())
			if err != nil {
				return fmt.Errorf("kiff: sharded maintainer: shard %d: %w", s, err)
			}
			sd.EnsureItemProfiles()
			m, err := NewMaintainer(sd, opts)
			if err != nil {
				return fmt.Errorf("kiff: sharded maintainer: shard %d: %w", s, err)
			}
			st, err := m.OpenWAL(filepath.Join(walDir, shard.WalFile(s)), wopts)
			if err != nil {
				return fmt.Errorf("kiff: sharded maintainer: shard %d: %w", s, err)
			}
			replayedInserts[s] = st.ReplayedInserts
			ms[s] = maintainerShard{m}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	users := d.NumUsers()
	for _, r := range replayedInserts {
		users += r
	}
	// NewPool re-derives the user→shard partition over the grown
	// population and cross-checks every shard against it, so replayed
	// logs that do not belong to this build fail here instead of serving.
	return shard.NewPool(ms, users)
}

// LoadShardedMaintainerWAL recovers a pool from a checkpoint directory
// and replays each shard's write-ahead log (shard.WalFile(i) under
// walDir) on top, in parallel across shards — the crash-recovery load
// path. The manifest's wal_lsns give each shard its replay horizon
// (records the checkpoint already covers are skipped); a manifest
// without wal_lsns — a checkpoint saved before logging was enabled —
// replays every record. wopts.FromLSN is ignored (the manifest owns the
// horizons). Missing log files are created empty, so enabling -wal over
// an existing checkpoint just works.
func LoadShardedMaintainerWAL(dir, walDir string, opts Options, wopts wal.Options) (*ShardedMaintainer, error) {
	man, err := shard.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	lsns := man.WalLSNs
	if lsns == nil {
		lsns = make([]uint64, man.Shards)
	}
	ms := make([]shard.Maintainer, man.Shards)
	replayedInserts := make([]int, man.Shards)
	g := parallel.NewGroup(man.Shards)
	for s := 0; s < man.Shards; s++ {
		g.Go(func() error {
			gr, err := LoadGraph(filepath.Join(dir, shard.GraphFile(s)))
			if err != nil {
				return fmt.Errorf("kiff: load sharded maintainer: shard %d: %w", s, err)
			}
			ds, err := LoadDataset(filepath.Join(dir, shard.DataFile(s)))
			if err != nil {
				return fmt.Errorf("kiff: load sharded maintainer: shard %d: %w", s, err)
			}
			m, err := NewMaintainerFromGraph(ds, gr, opts)
			if err != nil {
				return fmt.Errorf("kiff: load sharded maintainer: shard %d: %w", s, err)
			}
			so := wopts
			so.FromLSN = lsns[s]
			st, err := m.OpenWAL(filepath.Join(walDir, shard.WalFile(s)), so)
			if err != nil {
				return fmt.Errorf("kiff: load sharded maintainer: shard %d: %w", s, err)
			}
			replayedInserts[s] = st.ReplayedInserts
			ms[s] = maintainerShard{m}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	// Replayed inserts grew the shards past the manifest's population;
	// NewPool's partition cross-check runs against the grown count.
	users := man.Users
	for _, r := range replayedInserts {
		users += r
	}
	return shard.NewPool(ms, users)
}

// loadSharded is the shared recovery skeleton: manifest validation,
// parallel per-shard loading via loadShard, pool assembly (which
// re-derives and cross-checks the user→shard assignment).
func loadSharded(dir string, opts Options, loadShard func(gpath, dpath string, opts Options) (*Maintainer, error)) (*ShardedMaintainer, error) {
	man, err := shard.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	ms := make([]shard.Maintainer, man.Shards)
	g := parallel.NewGroup(man.Shards)
	for s := 0; s < man.Shards; s++ {
		g.Go(func() error {
			m, err := loadShard(filepath.Join(dir, shard.GraphFile(s)), filepath.Join(dir, shard.DataFile(s)), opts)
			if err != nil {
				return fmt.Errorf("kiff: load sharded maintainer: shard %d: %w", s, err)
			}
			ms[s] = maintainerShard{m}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return shard.NewPool(ms, man.Users)
}

// shardName labels shard s's dataset partition.
func shardName(name string, s, shards int) string {
	return fmt.Sprintf("%s#shard%d/%d", name, s, shards)
}
