package kiff

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kiff/internal/dataset"
	"kiff/internal/shard"
)

// randShardDataset draws a random bipartite dataset with enough item
// overlap for queries to have non-trivial answers.
func randShardDataset(r *rand.Rand, users int) *Dataset {
	items := 5 + r.Intn(25)
	profiles := make([]map[uint32]float64, users)
	for u := range profiles {
		m := map[uint32]float64{}
		n := 1 + r.Intn(6)
		for i := 0; i < n; i++ {
			m[uint32(r.Intn(items))] = float64(1 + r.Intn(5))
		}
		profiles[u] = m
	}
	return dataset.FromProfiles("shardrand", profiles, r.Intn(2) == 0)
}

// randQuery draws a query profile over the dataset's item space.
func randQuery(r *rand.Rand, d *Dataset) Profile {
	m := map[uint32]float64{}
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		m[uint32(r.Intn(d.NumItems()))] = float64(1 + r.Intn(5))
	}
	return ProfileFromMap(m, false)
}

// TestShardedQueryMatchesSingle is the pinned-equality property of the
// scatter-gather layer: for the profile-local metrics, an exact sharded
// Query must return exactly the single-Maintainer answer — same members,
// same order, bit-identical similarities — across random datasets, shard
// counts and query profiles.
func TestShardedQueryMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, metric := range []string{"cosine", "jaccard"} {
		for _, shards := range []int{2, 3, 5} {
			for round := 0; round < 6; round++ {
				d := randShardDataset(rng, 20+rng.Intn(60))
				k := 1 + rng.Intn(8)
				opts := Options{K: k, Metric: metric}
				single, err := NewMaintainer(d, opts)
				if err != nil {
					t.Fatalf("NewMaintainer: %v", err)
				}
				pool, err := NewShardedMaintainer(d, shards, opts)
				if err != nil {
					t.Fatalf("NewShardedMaintainer: %v", err)
				}
				if pool.NumUsers() != d.NumUsers() || pool.K() != k || pool.NumShards() != shards {
					t.Fatalf("pool shape = (%d users, k=%d, %d shards), want (%d, %d, %d)",
						pool.NumUsers(), pool.K(), pool.NumShards(), d.NumUsers(), k, shards)
				}
				for q := 0; q < 10; q++ {
					profile := randQuery(rng, d)
					want, err := single.Snapshot().Query(profile, k, -1)
					if err != nil {
						t.Fatalf("single query: %v", err)
					}
					got, err := pool.View().Query(profile, k, -1)
					if err != nil {
						t.Fatalf("sharded query: %v", err)
					}
					if len(got) != len(want) {
						t.Fatalf("metric=%s shards=%d: sharded query returned %d results, single %d\n got: %v\nwant: %v",
							metric, shards, len(got), len(want), got, want)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("metric=%s shards=%d k=%d: result %d = %+v, single-maintainer %+v\n got: %v\nwant: %v",
								metric, shards, k, i, got[i], want[i], got, want)
						}
					}
				}
			}
		}
	}
}

// TestShardedSingleShardMatchesMaintainer checks the degenerate pool:
// one shard must reproduce the single Maintainer exactly, including the
// KNN graph served by Neighbors (no partition approximation applies).
func TestShardedSingleShardMatchesMaintainer(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := randShardDataset(rng, 50)
	opts := Options{K: 4}
	single, err := NewMaintainer(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewShardedMaintainer(d, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := single.Graph()
	v := pool.View()
	for u := 0; u < d.NumUsers(); u++ {
		want := g.Neighbors(uint32(u))
		got, err := v.Neighbors(uint32(u))
		if err != nil {
			t.Fatalf("Neighbors(%d): %v", u, err)
		}
		if len(got) != len(want) {
			t.Fatalf("user %d: %d neighbors, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d neighbor %d = %+v, want %+v", u, i, got[i], want[i])
			}
		}
	}
}

// TestShardedNeighborsRouting checks that Neighbors answers come from
// the owning shard with correctly relabeled global IDs: every neighbor
// must share the owner shard with none other than... be a user the same
// shard owns, and be a valid, distinct global ID.
func TestShardedNeighborsRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := randShardDataset(rng, 80)
	const shards = 4
	pool, err := NewShardedMaintainer(d, shards, Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	v := pool.View()
	for g := 0; g < d.NumUsers(); g++ {
		owner := shard.Owner(uint32(g), shards)
		nbs, err := v.Neighbors(uint32(g))
		if err != nil {
			t.Fatalf("Neighbors(%d): %v", g, err)
		}
		for _, nb := range nbs {
			if nb.ID == uint32(g) {
				t.Fatalf("user %d lists itself", g)
			}
			if int(nb.ID) >= d.NumUsers() {
				t.Fatalf("user %d neighbor %d out of range", g, nb.ID)
			}
			if shard.Owner(nb.ID, shards) != owner {
				t.Fatalf("user %d (shard %d) lists %d (shard %d): shard graphs must be shard-local",
					g, owner, nb.ID, shard.Owner(nb.ID, shards))
			}
		}
	}
	if _, err := v.Neighbors(uint32(d.NumUsers())); !errors.Is(err, shard.ErrNotFound) {
		t.Fatalf("Neighbors(out of range) error = %v, want ErrNotFound", err)
	}
}

// TestShardedInsertAndRatingsMatchSingle drives the same mutation
// stream through a single Maintainer and a pool and checks the exact
// query surface stays identical — the datasets evolve in lockstep, so
// exact queries (which depend only on the data, not the graphs) must
// too.
func TestShardedInsertAndRatingsMatchSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	d := randShardDataset(rng, 40)
	opts := Options{K: 4}
	single, err := NewMaintainer(cloneDataset(d), opts)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewShardedMaintainer(d, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Inserts: IDs must agree with the single maintainer's sequence.
	var batch []Profile
	for i := 0; i < 12; i++ {
		batch = append(batch, randQuery(rng, d))
	}
	singleIDs, err := single.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	poolIDs, err := pool.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range singleIDs {
		if poolIDs[i] != singleIDs[i] {
			t.Fatalf("insert %d: pool assigned ID %d, single %d", i, poolIDs[i], singleIDs[i])
		}
	}
	// Ratings + rebuild on both sides.
	for i := 0; i < 20; i++ {
		u := uint32(rng.Intn(single.Dataset().NumUsers()))
		it := uint32(rng.Intn(d.NumItems()))
		r := float64(1 + rng.Intn(5))
		if err := single.AddRating(u, it, r); err != nil {
			t.Fatal(err)
		}
		if err := pool.AddRating(u, it, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := single.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	if err := pool.Rebuild(nil); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 12; q++ {
		profile := randQuery(rng, d)
		want, err := single.Snapshot().Query(profile, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.View().Query(profile, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("query %d diverged after mutations\n got: %v\nwant: %v", q, got, want)
		}
	}
	c := pool.Counters()
	if c.Inserts != 12 {
		t.Errorf("pool counters record %d inserts, want 12", c.Inserts)
	}
	if c.Rebuilds == 0 || c.RebuiltUsers == 0 {
		t.Errorf("pool counters record no rebuild work: %+v", c)
	}
}

// cloneDataset deep-copies a dataset so two maintainers can mutate
// independent replicas of the same population.
func cloneDataset(d *Dataset) *Dataset {
	profiles := make([]Profile, d.NumUsers())
	for i, u := range d.Users {
		profiles[i] = u.Clone()
	}
	nd, err := dataset.New(d.Name, profiles, d.NumItems())
	if err != nil {
		panic(err)
	}
	nd.EnsureItemProfiles()
	return nd
}

// TestShardedPersistRoundTrip checks Save/LoadShardedMaintainer: the
// reloaded pool must serve identical neighbor lists and queries, and
// stay mutable.
func TestShardedPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	d := randShardDataset(rng, 60)
	pool, err := NewShardedMaintainer(d, 4, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := pool.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadShardedMaintainer(dir, Options{})
	if err != nil {
		t.Fatalf("LoadShardedMaintainer: %v", err)
	}
	if loaded.NumUsers() != pool.NumUsers() || loaded.K() != pool.K() || loaded.NumShards() != pool.NumShards() {
		t.Fatalf("loaded pool shape = (%d, %d, %d), want (%d, %d, %d)",
			loaded.NumUsers(), loaded.K(), loaded.NumShards(), pool.NumUsers(), pool.K(), pool.NumShards())
	}
	v, lv := pool.View(), loaded.View()
	for g := 0; g < pool.NumUsers(); g++ {
		want, err := v.Neighbors(uint32(g))
		if err != nil {
			t.Fatal(err)
		}
		got, err := lv.Neighbors(uint32(g))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("user %d neighbors diverged after reload\n got: %v\nwant: %v", g, got, want)
		}
	}
	for q := 0; q < 8; q++ {
		profile := randQuery(rng, d)
		want, err := v.Query(profile, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lv.Query(profile, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("query %d diverged after reload\n got: %v\nwant: %v", q, got, want)
		}
	}
	// The mapped load path must recover the identical pool.
	mapped, err := LoadShardedMaintainerMapped(dir, Options{})
	if err != nil {
		t.Fatalf("LoadShardedMaintainerMapped: %v", err)
	}
	mv := mapped.View()
	for g := 0; g < pool.NumUsers(); g++ {
		want, err := v.Neighbors(uint32(g))
		if err != nil {
			t.Fatal(err)
		}
		got, err := mv.Neighbors(uint32(g))
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("user %d neighbors diverged under mapped reload\n got: %v\nwant: %v", g, got, want)
		}
	}

	// The reloaded pool is live: inserts continue the global sequence.
	id, err := loaded.Insert(randQuery(rng, d))
	if err != nil {
		t.Fatalf("insert into reloaded pool: %v", err)
	}
	if int(id) != pool.NumUsers() {
		t.Fatalf("reloaded pool assigned ID %d, want %d", id, pool.NumUsers())
	}
	if _, err := loaded.View().Neighbors(id); err != nil {
		t.Fatalf("Neighbors(new user): %v", err)
	}

	// Re-saving into the same directory (after mutations) must produce a
	// checkpoint that loads the new state — periodic checkpointing reuses
	// one directory.
	if err := loaded.Save(dir); err != nil {
		t.Fatalf("re-save into existing dir: %v", err)
	}
	again, err := LoadShardedMaintainer(dir, Options{})
	if err != nil {
		t.Fatalf("reload after re-save: %v", err)
	}
	if again.NumUsers() != loaded.NumUsers() {
		t.Fatalf("re-saved pool has %d users, want %d", again.NumUsers(), loaded.NumUsers())
	}
}

// TestLoadShardedMaintainerRejectsTampering checks the fail-fast paths:
// a manifest over a different population must be rejected.
func TestLoadShardedMaintainerRejectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d := randShardDataset(rng, 30)
	pool, err := NewShardedMaintainer(d, 2, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := pool.Save(dir); err != nil {
		t.Fatal(err)
	}
	other, err := NewShardedMaintainer(randShardDataset(rng, 29), 2, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := other.Save(dir2); err != nil {
		t.Fatal(err)
	}
	// Splice shard files from a different population under dir's manifest.
	for i := 0; i < 2; i++ {
		if err := copyFile(t, dir2, dir, shard.GraphFile(i)); err != nil {
			t.Fatal(err)
		}
		if err := copyFile(t, dir2, dir, shard.DataFile(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadShardedMaintainer(dir, Options{}); err == nil {
		t.Fatal("LoadShardedMaintainer must reject shard files from a different population")
	}
}

func copyFile(t *testing.T, fromDir, toDir, name string) error {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(fromDir, name))
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(toDir, name), raw, 0o644)
}

// TestShardedEmptyShards covers populations smaller than the shard
// count: some shards stay empty, and everything still works.
func TestShardedEmptyShards(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	d := randShardDataset(rng, 3)
	pool, err := NewShardedMaintainer(d, 8, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := pool.View()
	for g := 0; g < 3; g++ {
		if _, err := v.Neighbors(uint32(g)); err != nil {
			t.Fatalf("Neighbors(%d): %v", g, err)
		}
	}
	if _, err := v.Query(randQuery(rng, d), 2, -1); err != nil {
		t.Fatalf("Query: %v", err)
	}
	dir := t.TempDir()
	if err := pool.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedMaintainer(dir, Options{}); err != nil {
		t.Fatalf("reload with empty shards: %v", err)
	}
}

func TestNewShardedMaintainerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	d := randShardDataset(rng, 10)
	if _, err := NewShardedMaintainer(d, 0, Options{K: 2}); err == nil {
		t.Error("shards = 0 must be rejected")
	}
	if _, err := NewShardedMaintainer(d, shard.MaxShards+1, Options{K: 2}); err == nil {
		t.Error("shards > MaxShards must be rejected")
	}
	if _, err := NewShardedMaintainer(d, 2, Options{K: 2, Algorithm: NNDescent}); err == nil {
		t.Error("non-KIFF algorithm must be rejected")
	}
}

// TestShardedPoolRace is the -race stress test: concurrent inserts,
// rating updates, rebuilds, queries, neighbor reads and stats reads
// across shards. Correctness here is "no race, no panic, monotonic
// population"; the exactness properties are pinned by the quiescent
// tests above.
func TestShardedPoolRace(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	d := randShardDataset(rng, 40)
	pool, err := NewShardedMaintainer(d, 4, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers    = 4
		perWriter  = 25
		readers    = 4
		raters     = 2
		perRater   = 20
		rebuilders = 1
	)
	var wgW, wgR sync.WaitGroup
	stop := make(chan struct{})
	// Inserters: each streams profiles through Insert/InsertBatch.
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(seed int64) {
			defer wgW.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				if i%5 == 0 {
					batch := []Profile{randQuery(r, d), randQuery(r, d)}
					if _, err := pool.InsertBatch(batch); err != nil {
						t.Errorf("InsertBatch: %v", err)
						return
					}
				} else if _, err := pool.Insert(randQuery(r, d)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(int64(100 + w))
	}
	// Raters + rebuilders churn existing neighborhoods.
	for w := 0; w < raters; w++ {
		wgW.Add(1)
		go func(seed int64) {
			defer wgW.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perRater; i++ {
				u := uint32(r.Intn(40)) // the initial population is always valid
				if err := pool.AddRating(u, uint32(r.Intn(d.NumItems())), float64(1+r.Intn(5))); err != nil {
					t.Errorf("AddRating: %v", err)
					return
				}
			}
		}(int64(200 + w))
	}
	for w := 0; w < rebuilders; w++ {
		wgW.Add(1)
		go func() {
			defer wgW.Done()
			for i := 0; i < 10; i++ {
				if err := pool.Rebuild(nil); err != nil {
					t.Errorf("Rebuild: %v", err)
					return
				}
			}
		}()
	}
	// Readers: views, queries, neighbors, stats, all while writes run.
	for w := 0; w < readers; w++ {
		wgR.Add(1)
		go func(seed int64) {
			defer wgR.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := pool.View()
				if v.NumUsers() < 40 {
					t.Errorf("view lost users: %d < 40", v.NumUsers())
					return
				}
				if _, err := v.Query(randQuery(r, d), 3, -1); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
				g := uint32(r.Intn(v.NumUsers()))
				if _, err := v.Neighbors(g); err != nil && !errors.Is(err, shard.ErrPending) {
					t.Errorf("Neighbors(%d): %v", g, err)
					return
				}
				if st := pool.ShardStats(); len(st) != 4 {
					t.Errorf("ShardStats returned %d entries", len(st))
					return
				}
				pool.Counters()
				pool.Version()
			}
		}(int64(300 + w))
	}
	// Readers run for the whole write phase, then stop.
	wgW.Wait()
	close(stop)
	wgR.Wait()

	// Each writer iteration is one Insert, except every 5th which is an
	// InsertBatch of two profiles.
	want := 40 + writers*(perWriter-perWriter/5) + writers*(perWriter/5)*2
	if got := pool.NumUsers(); got != want {
		t.Fatalf("pool has %d users after the stress run, want %d", got, want)
	}
	// Quiesced: every user must now be fully visible.
	v := pool.View()
	for g := 0; g < pool.NumUsers(); g++ {
		if _, err := v.Neighbors(uint32(g)); err != nil {
			t.Fatalf("Neighbors(%d) after quiesce: %v", g, err)
		}
	}
}
