package kiff

import (
	"fmt"
	"io"

	"kiff/internal/core"
	"kiff/internal/dataset"
	"kiff/internal/knngraph"
	"kiff/internal/similarity"
)

// Snapshot is an immutable, consistent view of a maintained KNN graph and
// the dataset state it was built against: the serving-side counterpart of
// the Maintainer. The Maintainer publishes a fresh Snapshot through an
// atomic pointer after every mutation batch (Insert, InsertBatch,
// Rebuild), so any number of reader goroutines can call Neighbors and
// Query lock-free — and keep using the Snapshot they hold for as long as
// they like — while the single writer keeps maintaining the live graph.
//
// Consistency contract: the graph and dataset inside one Snapshot belong
// to the same publication point. Rating changes recorded by AddRating
// appear in the *next* published snapshot's dataset; the neighborhoods
// they invalidate are refreshed by Rebuild, exactly as in the live graph.
type Snapshot struct {
	version uint64
	graph   *Graph
	data    *DatasetView
	index   *Index
}

// Version returns the publication sequence number: 1 for the snapshot
// published by NewMaintainer, +1 for each republication. Readers can use
// it to detect staleness cheaply.
func (s *Snapshot) Version() uint64 { return s.version }

// NumUsers returns the number of users covered by the snapshot.
func (s *Snapshot) NumUsers() int { return s.data.NumUsers() }

// K returns the neighborhood size of the snapshot graph.
func (s *Snapshot) K() int { return s.graph.K() }

// Graph returns the immutable KNN graph of the snapshot.
func (s *Snapshot) Graph() *Graph { return s.graph }

// Dataset returns the frozen dataset view the snapshot was published
// against. Treat it as read-only: mutate only through the Maintainer.
func (s *Snapshot) Dataset() *DatasetView { return s.data }

// Profile returns user u's frozen profile (do not mutate) and whether u
// exists in the snapshot. Safe for any number of concurrent callers.
func (s *Snapshot) Profile(u uint32) (Profile, bool) {
	if int(u) >= s.data.NumUsers() {
		return Profile{}, false
	}
	return s.data.User(u), true
}

// Neighbors returns user u's neighbor list in the snapshot graph (do not
// mutate). Safe for any number of concurrent callers.
func (s *Snapshot) Neighbors(u uint32) []Neighbor { return s.graph.Neighbors(u) }

// Query returns the k users most similar to an arbitrary profile under
// the maintained metric, using KIFF's counting-phase pruning against the
// snapshot's frozen item-profile index. budget bounds similarity
// evaluations as in Index.Query (negative = exact). Safe for any number
// of concurrent callers.
func (s *Snapshot) Query(profile Profile, k, budget int) ([]Neighbor, error) {
	return s.index.Query(profile, k, budget)
}

// WriteGraphTo serializes the snapshot graph in the binary graph format
// — the handoff from a maintaining process to serving processes.
func (s *Snapshot) WriteGraphTo(w io.Writer) (int64, error) { return s.graph.WriteTo(w) }

// NewSnapshot assembles a serving Snapshot (version 1) directly from an
// already-built graph and its dataset — the read-only fast path of a
// serving process that loads a checkpoint (LoadGraphMapped +
// LoadDatasetMapped) and never mutates it, skipping the Maintainer
// entirely. The graph must cover exactly the dataset's users; the
// dataset's item-profile index is built if missing (the only O(|E|) cost
// on this path). Options supplies the query metric, as in Build.
//
// The caller must not mutate d afterwards: a static snapshot freezes a
// shallow view, and there is no writer to publish successors. For a
// mutable server, wrap the pair in NewMaintainerFromGraph instead.
func NewSnapshot(g *Graph, d *Dataset, opts Options) (*Snapshot, error) {
	if g.NumUsers() != d.NumUsers() {
		return nil, fmt.Errorf("kiff: snapshot: graph covers %d users, dataset has %d (was the graph saved from a different dataset?)",
			g.NumUsers(), d.NumUsers())
	}
	metricName := opts.Metric
	if metricName == "" {
		metricName = "cosine"
	}
	metric, err := similarity.ByName(metricName)
	if err != nil {
		return nil, err
	}
	return newSnapshot(1, g, d.View(), metric), nil
}

// newSnapshot assembles a Snapshot from an already-exported graph and
// dataset view. Called by the writer only. Publication is copy-on-write
// end to end: the graph is patched page-by-page from its predecessor
// (knngraph.PatchFrom), the view shares clean header pages with the
// previous view, and the query index is an O(1) wrapper over the view —
// so the cost is O(dirty pages), not O(|U|·k + |I|). The first
// publication (no predecessor) is a full export.
func newSnapshot(version uint64, g *knngraph.Graph, view *dataset.View, metric similarity.Metric) *Snapshot {
	return &Snapshot{
		version: version,
		graph:   g,
		data:    view,
		index:   core.NewViewIndex(view, metric),
	}
}
