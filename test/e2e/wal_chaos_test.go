package e2e

import (
	"fmt"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// The zero-loss chaos oracle: the same black-box action stream as
// runChaos, but the kiffserve under test runs with -wal, which upgrades
// the crash contract from "roll back to the last acknowledged
// checkpoint" to "lose nothing acknowledged, ever". The in-process
// oracle therefore NEVER restarts — it just keeps applying mutations —
// and after every SIGKILL the resurrected server must agree with it
// exactly, including one crash forced mid-append (a torn final log
// frame the recovery path must truncate).

func TestChaosWALUnsharded(t *testing.T) { runChaosWAL(t, false) }
func TestChaosWALSharded(t *testing.T)   { runChaosWAL(t, true) }

// startWAL boots a crash-lossless incarnation: a stable -checkpoint
// root and -wal directory across restarts (the server scans for the
// newest complete generation and replays the log itself), with the
// cold-start source flags passed every time — they only matter on the
// very first boot, before any checkpoint exists.
func (s *sut) startWAL(gpath, dpath string) {
	s.gen++
	args := []string{
		"-queue", fmt.Sprint(chaosQueueDepth),
		"-checkpoint", s.ckptRoot,
		"-wal", s.walDir,
		"-wal-sync", "always",
	}
	if s.sharded {
		args = append(args, "-data", dpath, "-shards", fmt.Sprint(chaosShards), "-k", fmt.Sprint(chaosK))
	} else {
		args = append(args, "-graph", gpath, "-data", dpath)
	}
	s.p = startServer(s.t, s.bin, args...)
}

func runChaosWAL(t *testing.T, sharded bool) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short (CI runs it in the e2e-chaos job)")
	}
	seed := envInt64("KIFF_CHAOS_SEED", defaultChaosSeed)
	n := int(envInt64("KIFF_CHAOS_ACTIONS", defaultChaosActions))
	t.Logf("zero-loss chaos run: seed=%d actions=%d sharded=%v (reproduce: KIFF_CHAOS_SEED=%d KIFF_CHAOS_ACTIONS=%d go test -run %s ./test/e2e/)",
		seed, n, sharded, seed, n, t.Name())

	serveBin, knnBin := buildBinaries(t)
	work := t.TempDir()
	edges := writeSeedEdgeList(t, work, seed)
	gpath := filepath.Join(work, "graph.kfg")
	dpath := filepath.Join(work, "data.kfd")
	runKiffknn(t, knnBin, edges, chaosK, gpath, dpath)

	// The oracle runs WAL-less and restart-less: with zero loss on the
	// other side there is nothing to mirror a crash with.
	orc := newOracle(t, gpath, dpath, filepath.Join(work, "oracle-ckpt"), chaosQueueDepth)
	s := &sut{t: t, bin: serveBin, sharded: sharded,
		ckptRoot: filepath.Join(work, "sut-ckpt"), walDir: filepath.Join(work, "sut-wal")}
	s.startWAL(gpath, dpath)

	u1, _, _ := healthz(t, s.url())
	u2, _, _ := healthz(t, orc.url())
	if u1 != chaosInitialUsers || u2 != chaosInitialUsers {
		t.Fatalf("boot populations: sut=%d oracle=%d, want %d", u1, u2, chaosInitialUsers)
	}

	actions := GenStream(StreamConfig{
		Seed:         seed,
		N:            n,
		InitialUsers: chaosInitialUsers,
		Items:        chaosItems,
		QueueDepth:   chaosQueueDepth,
		Restarts:     true,
		ReadonlyFlip: false, // -readonly is incompatible with -wal
		ZeroLoss:     true,
	})

	var restarts, backpressures, checkpoints int
	for i, a := range actions {
		switch a.Kind {
		case ActAddUser:
			body := map[string]any{"profile": a.Profile}
			st1, b1 := doJSON(t, http.MethodPost, s.url()+"/users", body)
			st2, b2 := doJSON(t, http.MethodPost, orc.url()+"/users", body)
			if st1 != http.StatusCreated || st2 != http.StatusCreated {
				t.Fatalf("action %d AddUser: statuses sut=%d oracle=%d", i, st1, st2)
			}
			if id1, id2 := jsonField(t, b1, "id"), jsonField(t, b2, "id"); id1 != id2 {
				t.Fatalf("action %d AddUser: ids diverged sut=%s oracle=%s", i, id1, id2)
			}
		case ActAddRating:
			body := map[string]any{"user": a.User, "item": a.Item, "rating": a.Rating}
			st1, b1 := doJSON(t, http.MethodPost, s.url()+"/ratings", body)
			st2, _ := doJSON(t, http.MethodPost, orc.url()+"/ratings", body)
			if st1 != http.StatusOK || st2 != http.StatusOK {
				t.Fatalf("action %d AddRating %+v: statuses sut=%d oracle=%d (%s)", i, body, st1, st2, b1)
			}
		case ActQuery:
			body := map[string]any{"profile": a.Query, "k": a.K}
			st1, b1 := doJSON(t, http.MethodPost, s.url()+"/query", body)
			st2, b2 := doJSON(t, http.MethodPost, orc.url()+"/query", body)
			if st1 != http.StatusOK || st2 != http.StatusOK {
				t.Fatalf("action %d Query: statuses sut=%d oracle=%d", i, st1, st2)
			}
			if r1, r2 := jsonField(t, b1, "results"), jsonField(t, b2, "results"); r1 != r2 {
				t.Fatalf("action %d Query diverged\n sut:    %s\n oracle: %s", i, r1, r2)
			}
		case ActNeighbors:
			path := fmt.Sprintf("/neighbors/%d", a.Target)
			st1, b1 := doJSON(t, http.MethodGet, s.url()+path, nil)
			st2, b2 := doJSON(t, http.MethodGet, orc.url()+path, nil)
			if st1 != st2 {
				t.Fatalf("action %d Neighbors(%d): statuses sut=%d oracle=%d", i, a.Target, st1, st2)
			}
			if st1 != http.StatusOK {
				t.Fatalf("action %d Neighbors(%d): status %d (generator promised a live user)", i, a.Target, st1)
			}
			if !sharded {
				if n1, n2 := jsonField(t, b1, "neighbors"), jsonField(t, b2, "neighbors"); n1 != n2 {
					t.Fatalf("action %d Neighbors(%d) diverged\n sut:    %s\n oracle: %s", i, a.Target, n1, n2)
				}
			} else if jsonField(t, b1, "neighbors") == "" {
				t.Fatalf("action %d Neighbors(%d): sharded reply missing neighbors: %s", i, a.Target, b1)
			}
		case ActCheckpoint:
			// Only the system under test checkpoints: it rotates the log
			// (the crash-recovery artifact being exercised); the oracle
			// has no crashes to recover from.
			checkpoints++
			checkpoint(t, s.url())
		case ActBackpressure:
			backpressures++
			s.runBackpressure(t, i, a, orc)
		case ActKillRestart:
			// The zero-loss contract, mid-stream: SIGKILL, restart with the
			// same stable directories, and the server must come back with
			// every acknowledged mutation — the oracle keeps running as the
			// definition of "everything acknowledged".
			restarts++
			s.p.kill(t)
			s.startWAL(gpath, dpath)
			u1, _, _ := healthz(t, s.url())
			u2, _, _ := healthz(t, orc.url())
			if u1 != u2 {
				t.Fatalf("action %d KillRestart: lost acknowledged mutations: sut=%d users, oracle=%d", i, u1, u2)
			}
		}
	}
	if restarts == 0 || backpressures == 0 || checkpoints == 0 {
		t.Fatalf("stream exercised %d restarts, %d backpressure episodes, %d checkpoints; all must be ≥ 1",
			restarts, backpressures, checkpoints)
	}
	t.Logf("zero-loss action stream done: %d actions, %d kill+restarts, %d backpressure episodes, %d checkpoints",
		len(actions), restarts, backpressures, checkpoints)

	// --- Forced mid-append crash: the torn-tail recovery path, live ------
	s.tornAppendCrash(t, orc, gpath, dpath)

	// --- Convergence: byte-identical to the never-restarted oracle ------
	u1, _, _ = healthz(t, s.url())
	u2, _, _ = healthz(t, orc.url())
	if u1 != u2 {
		t.Fatalf("final populations diverged: sut=%d oracle=%d", u1, u2)
	}
	if !sharded {
		for u := 0; u < u1; u++ {
			path := fmt.Sprintf("/neighbors/%d", u)
			_, b1 := doJSON(t, http.MethodGet, s.url()+path, nil)
			_, b2 := doJSON(t, http.MethodGet, orc.url()+path, nil)
			if n1, n2 := jsonField(t, b1, "neighbors"), jsonField(t, b2, "neighbors"); n1 != n2 {
				t.Fatalf("final neighbors(%d) diverged\n sut:    %s\n oracle: %s", u, n1, n2)
			}
		}
	}
	probes := 20
	if sharded {
		probes = 30
	}
	prng := rand.New(rand.NewSource(seed*31 + 17))
	for p := 0; p < probes; p++ {
		profile := map[uint32]float64{}
		for len(profile) < 2+prng.Intn(4) {
			profile[uint32(prng.Intn(chaosItems))] = float64(1 + prng.Intn(5))
		}
		body := map[string]any{"profile": profile, "k": 3 + prng.Intn(6)}
		_, b1 := doJSON(t, http.MethodPost, s.url()+"/query", body)
		_, b2 := doJSON(t, http.MethodPost, orc.url()+"/query", body)
		if r1, r2 := jsonField(t, b1, "results"), jsonField(t, b2, "results"); r1 != r2 {
			t.Fatalf("final probe %d diverged\n sut:    %s\n oracle: %s", p, r1, r2)
		}
	}
	t.Logf("converged: %d users byte-identical to a never-restarted oracle, %d probe queries byte-identical", u1, probes)
}

// tornAppendCrash exercises the hardest recovery case end-to-end: arm
// the one-shot wal_tear fault, send one insert — the server writes half
// of that record's log frame and SIGKILLs itself before acknowledging —
// then restart and require (a) the torn frame was physically truncated,
// (b) the unacknowledged insert is gone (it must NOT reach the oracle),
// and (c) nothing acknowledged before it was lost.
func (s *sut) tornAppendCrash(t *testing.T, orc *oracle, gpath, dpath string) {
	t.Helper()
	before, _, _ := healthz(t, s.url())
	if st, b := doJSON(t, http.MethodPost, s.url()+"/faults", map[string]any{"wal_tear": true}); st != http.StatusOK {
		t.Fatalf("torn append: arming failed: %d %s", st, b)
	}
	st, body, err := tryJSON(http.MethodPost, s.url()+"/users", map[string]any{"profile": map[uint32]float64{1: 3, 4: 2}})
	if err == nil && st == http.StatusCreated {
		t.Fatalf("torn append: the doomed insert was acknowledged (%d %s) — ack must follow the append", st, body)
	}
	select {
	case <-s.p.exitc:
	case <-time.After(30 * time.Second):
		t.Fatalf("torn append: server did not die\n%s", s.p.stderrText())
	}
	if ee, ok := s.p.exitErr.(*exec.ExitError); !ok || ee.ExitCode() != 3 {
		t.Fatalf("torn append: exit = %v, want exit status 3 (the injected mid-append kill)\n%s",
			s.p.exitErr, s.p.stderrText())
	}
	s.startWAL(gpath, dpath)
	replayed, truncated, _ := walStats(t, s.url())
	if truncated == 0 {
		t.Fatalf("torn append: recovery truncated 0 bytes — the half-written frame was not detected (replayed=%d)\n%s",
			replayed, s.p.stderrText())
	}
	after, _, _ := healthz(t, s.url())
	if after != before {
		t.Fatalf("torn append: population %d after recovery, want %d (unacknowledged insert must vanish, acknowledged state must survive)",
			after, before)
	}
	t.Logf("torn append recovered: truncated %d bytes, replayed %d records, population intact at %d", truncated, replayed, after)
}
