package e2e

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"kiff/internal/server"
)

// Chaos run parameters. Every value that shapes the run is logged so a
// failure reproduces exactly:
//
//	KIFF_CHAOS_SEED=<seed> KIFF_CHAOS_ACTIONS=<n> go test -run TestChaos ./test/e2e/
const (
	defaultChaosSeed    = 7
	defaultChaosActions = 220 // ≥ 200 actions is the acceptance floor
	chaosInitialUsers   = 60
	chaosItems          = 40
	chaosK              = 8
	chaosQueueDepth     = 8
	chaosShards         = 4
)

// Hardened-run admission parameters. Each RateLimitBurst episode drives
// a fresh zero-refill key whose bucket holds exactly
// rateLimitBurstAllowed tokens, then keeps going: the first `allowed`
// requests must succeed and every later one must be 429 — on both sides,
// independent of wall-clock timing, because an empty bucket with rate 0
// never refills within an incarnation.
const (
	chaosWriteKey         = "chaos-write-key" // huge burst override: drives all normal traffic
	chaosReadKey          = "chaos-read-key"  // read scope: the 403 probe
	rateLimitBurstAllowed = 6
	rateLimitBurstTotal   = 8
)

func envInt64(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err == nil {
			return n
		}
	}
	return def
}

// writeSeedEdgeList materializes the initial population deterministically
// from the seed: every user rates 3–6 items.
func writeSeedEdgeList(t *testing.T, dir string, seed int64) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	var sb strings.Builder
	for u := 0; u < chaosInitialUsers; u++ {
		n := 3 + rng.Intn(4)
		seen := map[int]bool{}
		for len(seen) < n {
			it := rng.Intn(chaosItems)
			if seen[it] {
				continue
			}
			seen[it] = true
			fmt.Fprintf(&sb, "%d %d %d\n", u, it, 1+rng.Intn(5))
		}
	}
	path := filepath.Join(dir, "ratings.tsv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sut is the system under test: the kiffserve process plus everything
// needed to crash and resurrect it.
type sut struct {
	t        *testing.T
	bin      string
	sharded  bool
	ckptRoot string
	walDir   string   // set in WAL mode (startWAL); stable across restarts
	extra    []string // hardening flags (-api-keys etc.), stable across restarts
	gen      int
	p        *proc
}

// start boots a kiffserve incarnation. ckptDir == "" means the initial
// boot from the kiffknn artifacts; otherwise the server restarts from a
// checkpoint directory it previously acknowledged.
func (s *sut) start(gpath, dpath, ckptDir string) {
	s.gen++
	args := []string{
		"-queue", fmt.Sprint(chaosQueueDepth),
		// Fresh base per incarnation: checkpoint names embed the pid and
		// a per-process sequence, and a recycled pid must never let a
		// new incarnation overwrite a directory an old one handed out.
		"-checkpoint", filepath.Join(s.ckptRoot, fmt.Sprintf("gen%d", s.gen)),
	}
	switch {
	case s.sharded && ckptDir != "":
		args = append(args, "-pool", ckptDir)
	case s.sharded:
		args = append(args, "-data", dpath, "-shards", fmt.Sprint(chaosShards), "-k", fmt.Sprint(chaosK))
	case ckptDir != "":
		args = append(args,
			"-graph", filepath.Join(ckptDir, "graph.kfg"),
			"-data", filepath.Join(ckptDir, "data.kfd"))
	default:
		args = append(args, "-graph", gpath, "-data", dpath)
	}
	args = append(args, s.extra...)
	s.p = startServer(s.t, s.bin, args...)
}

func (s *sut) url() string { return s.p.url }

func TestChaosUnsharded(t *testing.T) { runChaos(t, false, false) }
func TestChaosSharded(t *testing.T)   { runChaos(t, true, false) }

// TestChaosHardened is the same unsharded chaos run with the full
// admission-control stack enabled — API keys, rate limiting, request
// logging — plus the AuthFail and RateLimitBurst stream actions. Denial
// responses (401/403/429) must be byte-identical between the system
// under test and the oracle.
func TestChaosHardened(t *testing.T) { runChaos(t, false, true) }

// runChaos is the tentpole: a real kiffserve process (unsharded or a
// -shards pool) driven by a seeded action stream, mirrored into the
// in-process oracle, through crashes, graceful flips, checkpoint
// restarts and forced backpressure — converging byte-identically.
//
// Equality contract per mode: /query answers are compared in both modes
// (an exact query is a pure function of the dataset, so sharding must
// not change a byte); /neighbors lists are compared only unsharded —
// the pool's neighborhoods are shard-local by design, so sharded
// Neighbors actions assert status and shape instead.
func runChaos(t *testing.T, sharded, hardened bool) {
	if testing.Short() {
		t.Skip("chaos run skipped in -short (CI runs it in the e2e-chaos job)")
	}
	seed := envInt64("KIFF_CHAOS_SEED", defaultChaosSeed)
	n := int(envInt64("KIFF_CHAOS_ACTIONS", defaultChaosActions))
	t.Logf("chaos run: seed=%d actions=%d sharded=%v hardened=%v (reproduce: KIFF_CHAOS_SEED=%d KIFF_CHAOS_ACTIONS=%d go test -run %s ./test/e2e/)",
		seed, n, sharded, hardened, seed, n, t.Name())

	serveBin, knnBin := buildBinaries(t)
	work := t.TempDir()
	edges := writeSeedEdgeList(t, work, seed)
	gpath := filepath.Join(work, "graph.kfg")
	dpath := filepath.Join(work, "data.kfd")
	runKiffknn(t, knnBin, edges, chaosK, gpath, dpath)

	actions := GenStream(StreamConfig{
		Seed:         seed,
		N:            n,
		InitialUsers: chaosInitialUsers,
		Items:        chaosItems,
		QueueDepth:   chaosQueueDepth,
		Restarts:     true,
		ReadonlyFlip: !sharded, // -readonly is rejected in sharded mode
		Hardened:     hardened,
	})

	// Hardened runs authenticate everything: one write key with a huge
	// burst override drives the normal traffic, a read key probes 403s,
	// and each RateLimitBurst episode gets its own zero-refill key (see
	// the constants above) — fresh per episode, so restarted bucket state
	// can never diverge the two sides. Both sides load the same file.
	var oracleMods []func(*server.Config)
	s := &sut{t: t, bin: serveBin, sharded: sharded, ckptRoot: filepath.Join(work, "sut-ckpt")}
	if hardened {
		var kb strings.Builder
		fmt.Fprintf(&kb, "write:%s:1000000\n", chaosWriteKey)
		fmt.Fprintf(&kb, "read:%s\n", chaosReadKey)
		for j := 0; j < streamStats(actions)[ActRateLimitBurst]; j++ {
			fmt.Fprintf(&kb, "read:chaos-burst-%d:%d:0\n", j, rateLimitBurstAllowed)
		}
		keysPath := filepath.Join(work, "keys.txt")
		if err := os.WriteFile(keysPath, []byte(kb.String()), 0o600); err != nil {
			t.Fatal(err)
		}
		keys, err := server.ParseAPIKeys([]byte(kb.String()))
		if err != nil {
			t.Fatal(err)
		}
		s.extra = []string{"-api-keys", keysPath, "-rate-limit", "1000", "-log-requests"}
		oracleMods = append(oracleMods, func(c *server.Config) {
			c.APIKeys = keys
			c.RateLimit = 1000
		})
		harnessKey = chaosWriteKey
		defer func() { harnessKey = "" }()
	}

	orc := newOracle(t, gpath, dpath, filepath.Join(work, "oracle-ckpt"), chaosQueueDepth, oracleMods...)
	s.start(gpath, dpath, "")

	// Boot sanity: both sides serve the same population.
	u1, _, _ := healthz(t, s.url())
	u2, _, _ := healthz(t, orc.url())
	if u1 != chaosInitialUsers || u2 != chaosInitialUsers {
		t.Fatalf("boot populations: sut=%d oracle=%d, want %d", u1, u2, chaosInitialUsers)
	}
	if hardened {
		// Auth really is on: an unauthenticated read must be rejected by
		// both sides before any stream traffic flows.
		st1, _, _ := doJSONKeyed(t, http.MethodGet, s.url()+"/stats", "", nil)
		st2, _, _ := doJSONKeyed(t, http.MethodGet, orc.url()+"/stats", "", nil)
		if st1 != http.StatusUnauthorized || st2 != http.StatusUnauthorized {
			t.Fatalf("unauthenticated probe: sut=%d oracle=%d, want 401/401", st1, st2)
		}
	}

	// Both sides take an initial checkpoint so the first KillRestart
	// always has an acknowledged state to reload.
	lastSutCkpt := checkpoint(t, s.url())
	lastOrcCkpt := checkpoint(t, orc.url())

	var restarts, backpressures, authFails, rateBursts int
	for i, a := range actions {
		switch a.Kind {
		case ActAddUser:
			body := map[string]any{"profile": a.Profile}
			st1, b1 := doJSON(t, http.MethodPost, s.url()+"/users", body)
			st2, b2 := doJSON(t, http.MethodPost, orc.url()+"/users", body)
			if st1 != http.StatusCreated || st2 != http.StatusCreated {
				t.Fatalf("action %d AddUser: statuses sut=%d oracle=%d", i, st1, st2)
			}
			if id1, id2 := jsonField(t, b1, "id"), jsonField(t, b2, "id"); id1 != id2 {
				t.Fatalf("action %d AddUser: ids diverged sut=%s oracle=%s", i, id1, id2)
			}
		case ActAddRating:
			body := map[string]any{"user": a.User, "item": a.Item, "rating": a.Rating}
			st1, b1 := doJSON(t, http.MethodPost, s.url()+"/ratings", body)
			st2, _ := doJSON(t, http.MethodPost, orc.url()+"/ratings", body)
			if st1 != http.StatusOK || st2 != http.StatusOK {
				t.Fatalf("action %d AddRating %+v: statuses sut=%d oracle=%d (%s)", i, body, st1, st2, b1)
			}
		case ActQuery:
			body := map[string]any{"profile": a.Query, "k": a.K}
			st1, b1 := doJSON(t, http.MethodPost, s.url()+"/query", body)
			st2, b2 := doJSON(t, http.MethodPost, orc.url()+"/query", body)
			if st1 != http.StatusOK || st2 != http.StatusOK {
				t.Fatalf("action %d Query: statuses sut=%d oracle=%d", i, st1, st2)
			}
			if r1, r2 := jsonField(t, b1, "results"), jsonField(t, b2, "results"); r1 != r2 {
				t.Fatalf("action %d Query diverged\n sut:    %s\n oracle: %s", i, r1, r2)
			}
		case ActNeighbors:
			path := fmt.Sprintf("/neighbors/%d", a.Target)
			st1, b1 := doJSON(t, http.MethodGet, s.url()+path, nil)
			st2, b2 := doJSON(t, http.MethodGet, orc.url()+path, nil)
			if st1 != st2 {
				t.Fatalf("action %d Neighbors(%d): statuses sut=%d oracle=%d", i, a.Target, st1, st2)
			}
			if st1 != http.StatusOK {
				t.Fatalf("action %d Neighbors(%d): status %d (generator promised a live user)", i, a.Target, st1)
			}
			if !sharded {
				if n1, n2 := jsonField(t, b1, "neighbors"), jsonField(t, b2, "neighbors"); n1 != n2 {
					t.Fatalf("action %d Neighbors(%d) diverged\n sut:    %s\n oracle: %s", i, a.Target, n1, n2)
				}
			} else if jsonField(t, b1, "neighbors") == "" {
				t.Fatalf("action %d Neighbors(%d): sharded reply missing neighbors: %s", i, a.Target, b1)
			}
		case ActCheckpoint:
			lastSutCkpt = checkpoint(t, s.url())
			lastOrcCkpt = checkpoint(t, orc.url())
		case ActBackpressure:
			backpressures++
			s.runBackpressure(t, i, a, orc)
		case ActKillRestart:
			restarts++
			s.p.kill(t)
			s.start(gpath, dpath, lastSutCkpt)
			orc.restart(lastOrcCkpt)
			u1, _, _ := healthz(t, s.url())
			u2, _, _ := healthz(t, orc.url())
			if u1 != u2 {
				t.Fatalf("action %d KillRestart: populations diverged sut=%d oracle=%d", i, u1, u2)
			}
		case ActReadonlyFlip:
			// Checkpoint, come back read-only (mutations must 403, reads
			// must still match), then come back mutable.
			lastSutCkpt = checkpoint(t, s.url())
			lastOrcCkpt = checkpoint(t, orc.url())
			s.p.terminate(t)
			ro := startServer(t, s.bin, append([]string{"-readonly",
				"-graph", filepath.Join(lastSutCkpt, "graph.kfg"),
				"-data", filepath.Join(lastSutCkpt, "data.kfd")}, s.extra...)...)
			if st, _ := doJSON(t, http.MethodPost, ro.url+"/users", map[string]any{"profile": map[uint32]float64{1: 1}}); st != http.StatusForbidden {
				t.Fatalf("action %d ReadonlyFlip: mutation returned %d, want 403", i, st)
			}
			_, b1 := doJSON(t, http.MethodGet, ro.url+"/neighbors/0", nil)
			_, b2 := doJSON(t, http.MethodGet, orc.url()+"/neighbors/0", nil)
			if n1, n2 := jsonField(t, b1, "neighbors"), jsonField(t, b2, "neighbors"); n1 != n2 {
				t.Fatalf("action %d ReadonlyFlip: read-only neighbors diverged\n sut:    %s\n oracle: %s", i, n1, n2)
			}
			ro.terminate(t)
			s.start(gpath, dpath, lastSutCkpt)
		case ActAuthFail:
			// A denied mutation: 401 for an unknown key, 403 for the
			// read-scoped key. The error bodies embed only the key's digest
			// prefix — identical on both sides — so whole bodies compare.
			authFails++
			key, want := "no-such-key", http.StatusUnauthorized
			if a.Variant == 1 {
				key, want = chaosReadKey, http.StatusForbidden
			}
			body := map[string]any{"profile": a.Profile}
			st1, h1, b1 := doJSONKeyed(t, http.MethodPost, s.url()+"/users", key, body)
			st2, h2, b2 := doJSONKeyed(t, http.MethodPost, orc.url()+"/users", key, body)
			if st1 != want || st2 != want {
				t.Fatalf("action %d AuthFail(v%d): statuses sut=%d oracle=%d, want %d", i, a.Variant, st1, st2, want)
			}
			if string(b1) != string(b2) {
				t.Fatalf("action %d AuthFail(v%d) bodies diverged\n sut:    %s\n oracle: %s", i, a.Variant, b1, b2)
			}
			if want == http.StatusUnauthorized &&
				(h1.Get("WWW-Authenticate") == "" || h1.Get("WWW-Authenticate") != h2.Get("WWW-Authenticate")) {
				t.Fatalf("action %d AuthFail: WWW-Authenticate sut=%q oracle=%q", i, h1.Get("WWW-Authenticate"), h2.Get("WWW-Authenticate"))
			}
		case ActRateLimitBurst:
			// Drive a fresh zero-refill key past its bucket on both sides:
			// exactly rateLimitBurstAllowed requests pass, the rest are 429
			// with the capped Retry-After — deterministically.
			key := fmt.Sprintf("chaos-burst-%d", rateBursts)
			rateBursts++
			body := map[string]any{"profile": a.Query, "k": a.K}
			for r := 0; r < rateLimitBurstTotal; r++ {
				st1, h1, b1 := doJSONKeyed(t, http.MethodPost, s.url()+"/query", key, body)
				st2, _, b2 := doJSONKeyed(t, http.MethodPost, orc.url()+"/query", key, body)
				if st1 != st2 {
					t.Fatalf("action %d RateLimitBurst req %d: statuses sut=%d oracle=%d", i, r, st1, st2)
				}
				if r < rateLimitBurstAllowed {
					if st1 != http.StatusOK {
						t.Fatalf("action %d RateLimitBurst req %d: status %d inside the bucket", i, r, st1)
					}
					if r1, r2 := jsonField(t, b1, "results"), jsonField(t, b2, "results"); r1 != r2 {
						t.Fatalf("action %d RateLimitBurst req %d diverged\n sut:    %s\n oracle: %s", i, r, r1, r2)
					}
				} else {
					if st1 != http.StatusTooManyRequests {
						t.Fatalf("action %d RateLimitBurst req %d: status %d past the bucket, want 429", i, r, st1)
					}
					if string(b1) != string(b2) {
						t.Fatalf("action %d RateLimitBurst req %d 429 bodies diverged\n sut:    %s\n oracle: %s", i, r, b1, b2)
					}
					if ra := h1.Get("Retry-After"); ra != "3600" {
						t.Fatalf("action %d RateLimitBurst req %d: Retry-After %q, want capped 3600 (zero refill)", i, r, ra)
					}
				}
			}
		}
	}

	if restarts == 0 || backpressures == 0 {
		t.Fatalf("stream exercised %d restarts and %d backpressure episodes; both must be ≥ 1", restarts, backpressures)
	}
	if hardened && (authFails == 0 || rateBursts == 0) {
		t.Fatalf("hardened stream exercised %d auth failures and %d rate bursts; both must be ≥ 1", authFails, rateBursts)
	}
	t.Logf("chaos run done: %d actions, %d kill+restarts, %d backpressure episodes, %d auth failures, %d rate bursts",
		len(actions), restarts, backpressures, authFails, rateBursts)

	if hardened {
		// The hardened meters surfaced through /metrics. Counters are
		// per-incarnation (a restart zeroes them), so provoke one fresh
		// forbidden denial before scraping rather than relying on where
		// the stream's denials landed relative to the last restart.
		if st, _, _ := doJSONKeyed(t, http.MethodPost, s.url()+"/users", chaosReadKey,
			map[string]any{"profile": map[uint32]float64{1: 1}}); st != http.StatusForbidden {
			t.Fatalf("post-run forbidden probe: %d, want 403", st)
		}
		st, _, exp := doJSONKeyed(t, http.MethodGet, s.url()+"/metrics", chaosWriteKey, nil)
		if st != http.StatusOK {
			t.Fatalf("GET /metrics: %d", st)
		}
		for _, want := range []string{
			"kiffserve_http_requests_total{",
			"kiffserve_http_request_duration_seconds_bucket{",
			"kiffserve_rate_limited_total",
			`kiffserve_auth_failures_total{reason="forbidden"}`,
			"kiffserve_mutation_queue_capacity",
		} {
			if !strings.Contains(string(exp), want) {
				t.Fatalf("/metrics exposition missing %q", want)
			}
		}
	}

	// --- Convergence: after quiescence (every mutation acknowledged),
	// the served state must be byte-identical to the oracle.
	u1, _, _ = healthz(t, s.url())
	u2, _, _ = healthz(t, orc.url())
	if u1 != u2 {
		t.Fatalf("final populations diverged: sut=%d oracle=%d", u1, u2)
	}
	if !sharded {
		for u := 0; u < u1; u++ {
			path := fmt.Sprintf("/neighbors/%d", u)
			_, b1 := doJSON(t, http.MethodGet, s.url()+path, nil)
			_, b2 := doJSON(t, http.MethodGet, orc.url()+path, nil)
			if n1, n2 := jsonField(t, b1, "neighbors"), jsonField(t, b2, "neighbors"); n1 != n2 {
				t.Fatalf("final neighbors(%d) diverged\n sut:    %s\n oracle: %s", u, n1, n2)
			}
		}
	}
	probes := 20
	if sharded {
		probes = 30
	}
	prng := rand.New(rand.NewSource(seed*31 + 17))
	for p := 0; p < probes; p++ {
		profile := map[uint32]float64{}
		for len(profile) < 2+prng.Intn(4) {
			profile[uint32(prng.Intn(chaosItems))] = float64(1 + prng.Intn(5))
		}
		body := map[string]any{"profile": profile, "k": 3 + prng.Intn(6)}
		_, b1 := doJSON(t, http.MethodPost, s.url()+"/query", body)
		_, b2 := doJSON(t, http.MethodPost, orc.url()+"/query", body)
		if r1, r2 := jsonField(t, b1, "results"), jsonField(t, b2, "results"); r1 != r2 {
			t.Fatalf("final probe %d diverged\n sut:    %s\n oracle: %s", p, r1, r2)
		}
	}
	t.Logf("converged: %d users byte-identical, %d probe queries byte-identical", u1, probes)
}

// runBackpressure forces a queue-saturation episode: freeze the writer
// via /faults, fire a burst of concurrent inserts that overfills the
// queue, require /healthz to report degraded while reads keep working,
// then release and replay the acknowledged inserts into the oracle in
// ID order — the IDs the two sides assign must agree.
func (s *sut) runBackpressure(t *testing.T, i int, a Action, orc *oracle) {
	t.Helper()
	if st, b := doJSON(t, http.MethodPost, s.url()+"/faults", map[string]any{"hold": true}); st != http.StatusOK {
		t.Fatalf("action %d Backpressure: hold failed: %d %s", i, st, b)
	}
	type ack struct {
		status int
		id     uint64
		prof   map[uint32]float64
	}
	acks := make([]ack, len(a.Burst))
	var wg sync.WaitGroup
	for b, prof := range a.Burst {
		wg.Add(1)
		go func(b int, prof map[uint32]float64) {
			defer wg.Done()
			st, body := doJSON(t, http.MethodPost, s.url()+"/users", map[string]any{"profile": prof})
			acks[b] = ack{status: st, prof: prof}
			if st == http.StatusCreated {
				id, err := strconv.ParseUint(jsonField(t, body, "id"), 10, 32)
				if err != nil {
					t.Errorf("action %d Backpressure: bad id in %s", i, body)
					return
				}
				acks[b].id = id
			}
		}(b, prof)
	}
	// The queue must saturate: writer frozen, capacity QueueDepth, burst
	// of QueueDepth+2 (one op in the writer's hand, one producer blocked
	// on the full channel).
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, ready, depth := healthz(t, s.url())
		if ready == "degraded" {
			t.Logf("action %d Backpressure: degraded at queue depth %d", i, depth)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("action %d Backpressure: /healthz never reported degraded (depth %d)", i, depth)
		}
		time.Sleep(time.Millisecond)
	}
	// Reads must keep answering while writes are backed up.
	if st, _ := doJSON(t, http.MethodGet, s.url()+"/neighbors/0", nil); st != http.StatusOK {
		t.Fatalf("action %d Backpressure: read failed during saturation: %d", i, st)
	}
	if st, _ := doJSON(t, http.MethodPost, s.url()+"/faults", map[string]any{"hold": false}); st != http.StatusOK {
		t.Fatalf("action %d Backpressure: release failed: %d", i, st)
	}
	wg.Wait()
	for b, ak := range acks {
		if ak.status != http.StatusCreated {
			t.Fatalf("action %d Backpressure: burst insert %d: status %d", i, b, ak.status)
		}
	}
	// The concurrent burst reached the queue in nondeterministic order;
	// the server's assigned IDs define the canonical one. Replaying into
	// the oracle in ID order must reproduce the IDs exactly — both sides
	// allocate densely from the same population.
	sort.Slice(acks, func(x, y int) bool { return acks[x].id < acks[y].id })
	for _, ak := range acks {
		st, body := doJSON(t, http.MethodPost, orc.url()+"/users", map[string]any{"profile": ak.prof})
		if st != http.StatusCreated {
			t.Fatalf("action %d Backpressure: oracle replay: status %d", i, st)
		}
		oid := jsonField(t, body, "id")
		if oid != strconv.FormatUint(ak.id, 10) {
			t.Fatalf("action %d Backpressure: id diverged sut=%d oracle=%s", i, ak.id, oid)
		}
	}
}
