package e2e

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"kiff"
	"kiff/internal/server"
)

// oracle is the in-process single-maintainer reference the black-box
// servers must converge to: the same checkpoint pair, the same mutation
// stream, driven through the same HTTP surface (an httptest front-end
// over internal/server) so response bytes are comparable one-to-one.
// It checkpoints and restarts in lockstep with the system under test:
// a SIGKILL on the real server is mirrored by reloading the oracle from
// its own last acknowledged checkpoint, which keeps the two sides'
// WAL-less data loss symmetric.
type oracle struct {
	t        *testing.T
	ckptRoot string
	gen      int // incarnation counter; each gets a fresh checkpoint base
	srv      *server.Server
	ts       *httptest.Server
	queue    int
	cfgMods  []func(*server.Config) // applied on every (re)boot — hardening config
}

// newOracle boots the oracle from a checkpoint pair. cfgMods are applied
// to the server configuration on every boot, including crash restarts —
// the hardened chaos run injects its API keys and rate limits here so
// every oracle incarnation enforces exactly what the system under test's
// flags enforce.
func newOracle(t *testing.T, gpath, dpath, ckptRoot string, queue int, cfgMods ...func(*server.Config)) *oracle {
	o := &oracle{t: t, ckptRoot: ckptRoot, queue: queue, cfgMods: cfgMods}
	o.boot(gpath, dpath)
	t.Cleanup(func() { o.close() })
	return o
}

func (o *oracle) boot(gpath, dpath string) {
	t := o.t
	g, err := kiff.LoadGraph(gpath)
	if err != nil {
		t.Fatalf("oracle graph: %v", err)
	}
	d, err := kiff.LoadDataset(dpath)
	if err != nil {
		t.Fatalf("oracle dataset: %v", err)
	}
	m, err := kiff.NewMaintainerFromGraph(d, g, kiff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each incarnation checkpoints under its own base so a restarted
	// oracle (same pid, checkpoint sequence reset) can never overwrite a
	// directory an earlier incarnation handed out.
	o.gen++
	cfg := server.Config{
		Maintainer:    m,
		CheckpointDir: filepath.Join(o.ckptRoot, fmt.Sprintf("gen%d", o.gen)),
		QueueDepth:    o.queue,
	}
	for _, mod := range o.cfgMods {
		mod(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o.srv = srv
	o.ts = httptest.NewServer(srv.Handler())
}

func (o *oracle) close() {
	if o.ts != nil {
		o.ts.Close()
		o.ts = nil
	}
	if o.srv != nil {
		o.srv.Close()
		o.srv = nil
	}
}

// restart mirrors a crash: drop the live state and reload from ckptDir
// (a directory a previous POST /checkpoint on the oracle returned).
func (o *oracle) restart(ckptDir string) {
	o.close()
	o.boot(
		filepath.Join(ckptDir, server.GraphCheckpointFile),
		filepath.Join(ckptDir, server.DataCheckpointFile),
	)
}

func (o *oracle) url() string { return o.ts.URL }
