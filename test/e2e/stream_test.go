package e2e

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// ActionKind enumerates the chaos actions the generator emits.
type ActionKind int

const (
	ActAddUser ActionKind = iota
	ActAddRating
	ActQuery
	ActNeighbors
	ActCheckpoint
	ActBackpressure
	ActKillRestart
	ActReadonlyFlip
	// Hardened actions (cfg.Hardened): admission-control probes. Both
	// are read-side or denied-before-apply, so they can never diverge
	// the mutable state between the system under test and the oracle.
	ActAuthFail
	ActRateLimitBurst
)

func (k ActionKind) String() string {
	return [...]string{"AddUser", "AddRating", "Query", "Neighbors",
		"Checkpoint", "Backpressure", "KillRestart", "ReadonlyFlip",
		"AuthFail", "RateLimitBurst"}[k]
}

// Action is one step of a chaos run. Which fields are meaningful
// depends on Kind; everything is materialized at generation time so the
// stream is a pure function of its StreamConfig.
type Action struct {
	Kind    ActionKind
	Profile map[uint32]float64   // AddUser: the inserted profile
	User    uint32               // AddRating
	Item    uint32               // AddRating
	Rating  float64              // AddRating
	Query   map[uint32]float64   // Query: the probe profile
	K       int                  // Query
	Target  uint32               // Neighbors: user to look up
	Burst   []map[uint32]float64 // Backpressure: concurrent insert profiles
	Variant int                  // AuthFail: 0 = unknown key (401), 1 = read key on a mutation (403)
}

// StreamConfig parameterizes generation. Workers is deliberately
// ignored: the stream must be identical however much execution
// parallelism the harness later applies — the determinism contract the
// table test pins.
type StreamConfig struct {
	Seed         int64
	N            int  // number of actions
	InitialUsers int  // population at stream start (checkpointed)
	Items        int  // item-ID space for profiles and ratings
	QueueDepth   int  // server queue depth (sizes backpressure bursts)
	Restarts     bool // emit KillRestart/ReadonlyFlip/Checkpoint actions
	ReadonlyFlip bool // emit ReadonlyFlip (unsupported in sharded mode)
	ZeroLoss     bool // WAL mode: a KillRestart loses nothing, so no rollback
	Hardened     bool // emit AuthFail/RateLimitBurst (server must run with auth + rate limiting)
	Workers      int  // ignored; see the determinism contract above
}

// GenStream derives a deterministic action sequence from cfg. The
// generator tracks the population the way the system under test will
// experience it — inserts grow it, a KillRestart rolls it back to the
// last checkpoint — so every AddRating/Neighbors action targets a user
// that will exist when the action executes. One Backpressure and one
// KillRestart are always forced in (at N/3 and 2N/3) so even short
// streams exercise both; a Checkpoint is forced right before the first
// possible KillRestart index so a restart never has nothing to reload.
func GenStream(cfg StreamConfig) []Action {
	rng := rand.New(rand.NewSource(cfg.Seed))
	cur := cfg.InitialUsers  // live population
	last := cfg.InitialUsers // population at the last checkpoint
	profile := func() map[uint32]float64 {
		n := 2 + rng.Intn(5)
		p := make(map[uint32]float64, n)
		for len(p) < n {
			p[uint32(rng.Intn(cfg.Items))] = float64(1 + rng.Intn(5))
		}
		return p
	}
	actions := make([]Action, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		var kind ActionKind
		switch {
		case cfg.Restarts && i == cfg.N/3:
			kind = ActBackpressure
		case cfg.Restarts && i == 2*cfg.N/3-1:
			kind = ActCheckpoint
		case cfg.Restarts && i == 2*cfg.N/3:
			kind = ActKillRestart
		case cfg.Hardened && i == cfg.N/4:
			kind = ActAuthFail
		case cfg.Hardened && i == cfg.N/2:
			kind = ActRateLimitBurst
		default:
			// Weighted draw; the forced indices above are fixed by cfg
			// alone, so they never perturb the rng sequence.
			switch w := rng.Intn(100); {
			case w < 25:
				kind = ActAddUser
			case w < 55:
				kind = ActAddRating
			case w < 75:
				// Hardened streams carve the admission probes out of the top
				// of the query range, so a non-hardened config draws the
				// exact same sequence it always did.
				switch {
				case cfg.Hardened && w >= 73:
					kind = ActRateLimitBurst
				case cfg.Hardened && w >= 70:
					kind = ActAuthFail
				default:
					kind = ActQuery
				}
			case w < 88:
				kind = ActNeighbors
			case w < 93 && cfg.Restarts:
				kind = ActCheckpoint
			case w < 96 && cfg.Restarts:
				kind = ActBackpressure
			case w < 98 && cfg.Restarts:
				kind = ActKillRestart
			case w < 100 && cfg.Restarts && cfg.ReadonlyFlip:
				kind = ActReadonlyFlip
			default:
				kind = ActQuery
			}
		}
		a := Action{Kind: kind}
		switch kind {
		case ActAddUser:
			a.Profile = profile()
			cur++
		case ActAddRating:
			a.User = uint32(rng.Intn(cur))
			a.Item = uint32(rng.Intn(cfg.Items))
			a.Rating = float64(1 + rng.Intn(5))
		case ActQuery:
			a.Query = profile()
			a.K = 3 + rng.Intn(6)
		case ActNeighbors:
			a.Target = uint32(rng.Intn(cur))
		case ActCheckpoint:
			last = cur
		case ActBackpressure:
			burst := cfg.QueueDepth + 2
			a.Burst = make([]map[uint32]float64, burst)
			for b := range a.Burst {
				a.Burst[b] = profile()
			}
			cur += burst
		case ActKillRestart:
			// Without a WAL, SIGKILL forfeits everything since the last
			// acknowledged checkpoint — on both the system under test and
			// the oracle. With one (ZeroLoss), every acknowledged mutation
			// survives the crash, so the population never rolls back.
			if !cfg.ZeroLoss {
				cur = last
			}
		case ActReadonlyFlip:
			// Checkpoint, restart read-only, restart mutable: state is
			// preserved through the flip.
			last = cur
		case ActAuthFail:
			// A mutation attempt that must be denied (401 for an unknown
			// key, 403 for a read-scoped one). The profile is the payload
			// the server must refuse to apply — the population stays put.
			a.Variant = rng.Intn(2)
			a.Profile = profile()
		case ActRateLimitBurst:
			// A read burst through a zero-refill key: the first `burst`
			// requests succeed, the rest are 429 — deterministically,
			// because an empty bucket with rate 0 never refills, however
			// the wall clock drifts between the two sides.
			a.Query = profile()
			a.K = 3 + rng.Intn(6)
		}
		actions = append(actions, a)
	}
	return actions
}

// streamStats counts action kinds — the acceptance-criteria accounting.
func streamStats(actions []Action) map[ActionKind]int {
	m := make(map[ActionKind]int)
	for _, a := range actions {
		m[a.Kind]++
	}
	return m
}

// TestActionStreamDeterministic pins the reproduce-from-seed contract:
// the same seed yields a deeply equal action sequence across repeated
// generations and across worker counts, and different seeds diverge.
func TestActionStreamDeterministic(t *testing.T) {
	base := StreamConfig{
		N: 250, InitialUsers: 60, Items: 40, QueueDepth: 8,
		Restarts: true, ReadonlyFlip: true,
	}
	for _, seed := range []int64{1, 7, 12345, -99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := base
			cfg.Seed = seed
			ref := GenStream(cfg)
			// Same seed, repeated runs, any worker count: identical.
			for _, workers := range []int{0, 1, 4, 16} {
				c := cfg
				c.Workers = workers
				if got := GenStream(c); !reflect.DeepEqual(got, ref) {
					t.Fatalf("stream diverged for workers=%d", workers)
				}
			}
			// A different seed must not reproduce the stream (else the
			// "deterministic" claim is vacuous).
			c := cfg
			c.Seed = seed + 1
			if reflect.DeepEqual(GenStream(c), ref) {
				t.Fatal("seed+1 generated an identical stream")
			}
		})
	}
}

// TestActionStreamShape: generated streams respect their own
// population simulation (every rating/neighbor target below the live
// count at that index) and always include the forced crash and
// backpressure episodes.
func TestActionStreamShape(t *testing.T) {
	cfg := StreamConfig{
		Seed: 7, N: 250, InitialUsers: 60, Items: 40, QueueDepth: 8,
		Restarts: true, ReadonlyFlip: true,
	}
	actions := GenStream(cfg)
	if len(actions) != cfg.N {
		t.Fatalf("generated %d actions, want %d", len(actions), cfg.N)
	}
	cur, last := cfg.InitialUsers, cfg.InitialUsers
	for i, a := range actions {
		switch a.Kind {
		case ActAddUser:
			if len(a.Profile) == 0 {
				t.Fatalf("action %d: empty insert profile", i)
			}
			cur++
		case ActAddRating:
			if int(a.User) >= cur {
				t.Fatalf("action %d: rating targets user %d, only %d live", i, a.User, cur)
			}
		case ActQuery:
			if len(a.Query) == 0 || a.K <= 0 {
				t.Fatalf("action %d: malformed query %+v", i, a)
			}
		case ActNeighbors:
			if int(a.Target) >= cur {
				t.Fatalf("action %d: neighbors targets user %d, only %d live", i, a.Target, cur)
			}
		case ActCheckpoint:
			last = cur
		case ActBackpressure:
			if len(a.Burst) != cfg.QueueDepth+2 {
				t.Fatalf("action %d: burst of %d, want %d", i, len(a.Burst), cfg.QueueDepth+2)
			}
			cur += len(a.Burst)
		case ActKillRestart:
			cur = last
		case ActReadonlyFlip:
			last = cur
		}
	}
	stats := streamStats(actions)
	if stats[ActKillRestart] == 0 {
		t.Fatal("no KillRestart in the stream")
	}
	if stats[ActBackpressure] == 0 {
		t.Fatal("no Backpressure in the stream")
	}
	if stats[ActCheckpoint] == 0 {
		t.Fatal("no Checkpoint in the stream")
	}

	// Sharded config: readonly flips excluded, crashes still present.
	cfg.ReadonlyFlip = false
	for i, a := range GenStream(cfg) {
		if a.Kind == ActReadonlyFlip {
			t.Fatalf("action %d: ReadonlyFlip emitted with ReadonlyFlip=false", i)
		}
	}

	// Non-hardened configs must never emit admission probes — the
	// pre-hardening streams are unchanged byte for byte.
	for i, a := range actions {
		if a.Kind == ActAuthFail || a.Kind == ActRateLimitBurst {
			t.Fatalf("action %d: %v emitted with Hardened=false", i, a.Kind)
		}
	}

	// Hardened config: both probe kinds are forced in (at N/4 and N/2)
	// and every probe is well-formed.
	hcfg := cfg
	hcfg.Hardened = true
	hardened := GenStream(hcfg)
	hstats := streamStats(hardened)
	if hstats[ActAuthFail] == 0 || hstats[ActRateLimitBurst] == 0 {
		t.Fatalf("hardened stream lacks probes: %d AuthFail, %d RateLimitBurst",
			hstats[ActAuthFail], hstats[ActRateLimitBurst])
	}
	for i, a := range hardened {
		switch a.Kind {
		case ActAuthFail:
			if a.Variant != 0 && a.Variant != 1 {
				t.Fatalf("hardened action %d: AuthFail variant %d", i, a.Variant)
			}
			if len(a.Profile) == 0 {
				t.Fatalf("hardened action %d: AuthFail without a payload", i)
			}
		case ActRateLimitBurst:
			if len(a.Query) == 0 || a.K <= 0 {
				t.Fatalf("hardened action %d: malformed burst query %+v", i, a)
			}
		}
	}

	// Zero-loss config: the population simulation never rolls back on a
	// KillRestart, and targets stay valid against that stricter count.
	cfg.ZeroLoss = true
	cur = cfg.InitialUsers
	for i, a := range GenStream(cfg) {
		switch a.Kind {
		case ActAddUser:
			cur++
		case ActBackpressure:
			cur += len(a.Burst)
		case ActAddRating:
			if int(a.User) >= cur {
				t.Fatalf("zero-loss action %d: rating targets user %d, only %d live", i, a.User, cur)
			}
		case ActNeighbors:
			if int(a.Target) >= cur {
				t.Fatalf("zero-loss action %d: neighbors targets user %d, only %d live", i, a.Target, cur)
			}
		}
	}
}
